module github.com/informing-observers/informer

go 1.21
