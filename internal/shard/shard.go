// Package shard coordinates the partitioned corpus: it plans contiguous
// record-range shards, splits delta row sets per shard, k-way-merges the
// per-shard ranked candidate lists of a scatter-gather query, and keeps the
// routing metadata (source-ID ranges, kind and category sets) that lets a
// scoped query skip shards which provably cannot match.
//
// The package is deliberately engine-agnostic: it knows nothing about
// measures or assessments. internal/quality binds it to the measure-matrix
// engine (quality/shard.go), which keeps matrix internals private while the
// partitioning, merging and routing logic stays independently testable.
// Correctness contract (pinned by the cross-shard equivalence suite at the
// repo root): for any plan, scatter-gather over the shards is bit-identical
// to the unsharded evaluation, because shards are contiguous subranges of
// the global record order and the merge preserves the global strict
// ranking order.
//
//informer:deterministic
package shard

import "sort"

// Plan is a partition of n contiguous records into near-equal contiguous
// shards. Shard boundaries depend only on (n, shards) — never on content —
// so the same plan derives identically on every tick of one corpus.
type Plan struct {
	n      int
	bounds []int // len shards+1; shard s covers [bounds[s], bounds[s+1])
}

// NewPlan partitions n records into the requested number of shards,
// clamping to [1, n] (an empty corpus keeps one empty shard so callers
// never divide by zero). The first n%shards shards are one record larger.
func NewPlan(n, shards int) Plan {
	if shards < 1 {
		shards = 1
	}
	if n > 0 && shards > n {
		shards = n
	}
	p := Plan{n: n, bounds: make([]int, shards+1)}
	base, rem := 0, 0
	if shards > 0 {
		base, rem = n/shards, n%shards
	}
	lo := 0
	for s := 0; s < shards; s++ {
		p.bounds[s] = lo
		lo += base
		if s < rem {
			lo++
		}
	}
	p.bounds[shards] = n
	return p
}

// Shards returns the number of shards in the plan.
func (p Plan) Shards() int { return len(p.bounds) - 1 }

// Len returns the number of records the plan covers.
func (p Plan) Len() int { return p.n }

// Bounds returns shard s's record range [lo, hi).
func (p Plan) Bounds(s int) (lo, hi int) { return p.bounds[s], p.bounds[s+1] }

// Of returns the shard owning global row index `row`.
func (p Plan) Of(row int) int {
	// bounds is ascending; find the last bound <= row.
	s := sort.SearchInts(p.bounds, row+1) - 1
	if s < 0 {
		s = 0
	}
	if s >= p.Shards() {
		s = p.Shards() - 1
	}
	return s
}

// SplitRows groups ascending global row indices per shard, localized to
// each shard's own range (global row -> row - lo). Out-of-range rows are
// dropped. The result has one (possibly nil) slice per shard.
func (p Plan) SplitRows(rows []int) [][]int {
	out := make([][]int, p.Shards())
	for _, row := range rows {
		if row < 0 || row >= p.n {
			continue
		}
		s := p.Of(row)
		out[s] = append(out[s], row-p.bounds[s])
	}
	return out
}

// MergeK merges the per-shard sorted lists into one list ordered by less
// (less(a, b) means a ranks strictly before b), keeping at most limit items
// (0 = all). Lists must each already be sorted by less; ties across lists
// cannot occur when less is a strict total order, which the quality
// engine's (key desc, ID asc) candidate order guarantees — so the merge is
// deterministic for any shard count.
func MergeK[T any](lists [][]T, less func(a, b T) bool, limit int) []T {
	total := 0
	live := 0
	for _, l := range lists {
		total += len(l)
		if len(l) > 0 {
			live++
		}
	}
	if limit <= 0 || limit > total {
		limit = total
	}
	out := make([]T, 0, limit)
	if live == 1 {
		// Single contributing list: the merge is a bounded copy.
		for _, l := range lists {
			if len(l) > 0 {
				return append(out, l[:limit]...)
			}
		}
	}
	heads := make([]int, len(lists))
	for len(out) < limit {
		best := -1
		for i, l := range lists {
			if heads[i] >= len(l) {
				continue
			}
			if best < 0 || less(l[heads[i]], lists[best][heads[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, lists[best][heads[best]])
		heads[best]++
	}
	return out
}

// Router is the per-shard routing metadata of a sharded corpus: the record
// ID range plus the kind and content-category sets present in each shard.
// CanMatch prunes shards that provably contain no record matching a query
// scope. Sets are conservative supersets — updates only ever union new
// values in — so a stale entry can cost a wasted scan but never a wrong
// answer. A Router is immutable once published; Derive copies the shards a
// tick is about to touch so concurrent readers of the previous round are
// never disturbed.
type Router struct {
	minID, maxID []int
	kinds        []map[string]bool
	cats         []map[string]bool
}

// NewRouter returns an empty router for the given shard count.
func NewRouter(shards int) *Router {
	rt := &Router{
		minID: make([]int, shards),
		maxID: make([]int, shards),
		kinds: make([]map[string]bool, shards),
		cats:  make([]map[string]bool, shards),
	}
	for s := range rt.minID {
		rt.minID[s], rt.maxID[s] = -1, -1
	}
	return rt
}

// Shards returns the router's shard count.
func (rt *Router) Shards() int { return len(rt.minID) }

// Note records one record's identity in shard s's metadata.
func (rt *Router) Note(s, id int, kind string) {
	if rt.minID[s] < 0 || id < rt.minID[s] {
		rt.minID[s] = id
	}
	if id > rt.maxID[s] {
		rt.maxID[s] = id
	}
	if kind != "" {
		if rt.kinds[s] == nil {
			rt.kinds[s] = make(map[string]bool, 4)
		}
		rt.kinds[s][kind] = true
	}
}

// NoteCategory records one content category in shard s's metadata.
func (rt *Router) NoteCategory(s int, cat string) {
	if rt.cats[s] == nil {
		rt.cats[s] = make(map[string]bool, 8)
	}
	rt.cats[s][cat] = true
}

// Derive returns a router sharing every untouched shard's sets with the
// receiver but owning fresh copies for the listed shards, so a tick can
// union new metadata into them while readers of the previous round keep
// using the receiver.
func (rt *Router) Derive(dirtyShards []int) *Router {
	n := rt.Shards()
	nr := &Router{
		minID: append([]int(nil), rt.minID...),
		maxID: append([]int(nil), rt.maxID...),
		kinds: append([]map[string]bool(nil), rt.kinds...),
		cats:  append([]map[string]bool(nil), rt.cats...),
	}
	for _, s := range dirtyShards {
		if s < 0 || s >= n {
			continue
		}
		nr.kinds[s] = copySet(rt.kinds[s])
		nr.cats[s] = copySet(rt.cats[s])
	}
	return nr
}

func copySet(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	c := make(map[string]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

// CanMatch reports whether shard s could hold a record matching the scope:
// at least one requested ID inside the shard's ID range, at least one
// requested kind in its kind set, and at least one requested category in
// its category set (empty slices mean "no restriction" and never prune).
func (rt *Router) CanMatch(s int, ids []int, kinds, cats []string) bool {
	if len(ids) > 0 {
		if rt.minID[s] < 0 {
			return false // empty shard
		}
		hit := false
		for _, id := range ids {
			if id >= rt.minID[s] && id <= rt.maxID[s] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	if len(kinds) > 0 {
		hit := false
		for _, k := range kinds {
			if rt.kinds[s][k] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	if len(cats) > 0 {
		hit := false
		for _, c := range cats {
			if rt.cats[s][c] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}
