package shard

// Unit contracts of the engine-agnostic partitioning layer: plan
// arithmetic (coverage, contiguity, Of/SplitRows inverses), the k-way
// merge against a reference sort, and router pruning soundness (a pruned
// shard never holds a matching record). The end-to-end guarantee — that
// scatter-gather over these pieces is bit-identical to the unsharded
// engine — is pinned by the equivalence suite at the repo root.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestPlanPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {0, 5}, {1, 1}, {1, 4}, {2, 7}, {10, 1}, {10, 2}, {10, 3},
		{10, 7}, {10, 10}, {10, 16}, {100, 7}, {1000, 16}, {5, -3},
	} {
		p := NewPlan(tc.n, tc.shards)
		if p.Len() != tc.n {
			t.Fatalf("NewPlan(%d,%d): Len %d", tc.n, tc.shards, p.Len())
		}
		ns := p.Shards()
		if ns < 1 {
			t.Fatalf("NewPlan(%d,%d): %d shards", tc.n, tc.shards, ns)
		}
		if tc.n > 0 && ns > tc.n {
			t.Fatalf("NewPlan(%d,%d): %d shards exceeds record count", tc.n, tc.shards, ns)
		}
		// Shards are contiguous, cover [0, n) exactly, and are near-equal:
		// sizes differ by at most one.
		prevHi, minSz, maxSz := 0, tc.n+1, -1
		for s := 0; s < ns; s++ {
			lo, hi := p.Bounds(s)
			if lo != prevHi || hi < lo {
				t.Fatalf("NewPlan(%d,%d): shard %d bounds [%d,%d) after %d", tc.n, tc.shards, s, lo, hi, prevHi)
			}
			if sz := hi - lo; sz < minSz {
				minSz = sz
			} else if sz > maxSz {
				maxSz = sz
			}
			if sz := hi - lo; sz > maxSz {
				maxSz = sz
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("NewPlan(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.shards, prevHi, tc.n)
		}
		if tc.n > 0 && maxSz-minSz > 1 {
			t.Fatalf("NewPlan(%d,%d): shard sizes range [%d,%d], want near-equal", tc.n, tc.shards, minSz, maxSz)
		}
		// Of agrees with Bounds for every row.
		for row := 0; row < tc.n; row++ {
			s := p.Of(row)
			if lo, hi := p.Bounds(s); row < lo || row >= hi {
				t.Fatalf("NewPlan(%d,%d): Of(%d)=%d but bounds are [%d,%d)", tc.n, tc.shards, row, s, lo, hi)
			}
		}
	}
}

func TestPlanSplitRows(t *testing.T) {
	p := NewPlan(10, 3) // bounds 0,4,7,10
	split := p.SplitRows([]int{0, 3, 4, 6, 9, -1, 10, 42})
	want := [][]int{{0, 3}, {0, 2}, {2}}
	if !reflect.DeepEqual(split, want) {
		t.Fatalf("SplitRows: got %v, want %v", split, want)
	}
	// Localized rows invert back to the exact global rows.
	var back []int
	for s, rows := range split {
		lo, _ := p.Bounds(s)
		for _, r := range rows {
			back = append(back, lo+r)
		}
	}
	if !reflect.DeepEqual(back, []int{0, 3, 4, 6, 9}) {
		t.Fatalf("SplitRows did not localize invertibly: %v", back)
	}
}

func TestMergeKAgainstSort(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nLists := 1 + rng.Intn(6)
		lists := make([][]int, nLists)
		var all []int
		next := 0 // strictly increasing values: a strict total order with no cross-list ties
		for len(all) < rng.Intn(40) {
			next += 1 + rng.Intn(3)
			i := rng.Intn(nLists)
			lists[i] = append(lists[i], next)
			all = append(all, next)
		}
		for _, l := range lists {
			sort.Ints(l)
		}
		sort.Ints(all)
		for _, limit := range []int{0, 1, 3, len(all), len(all) + 5} {
			got := MergeK(lists, less, limit)
			want := all
			if limit > 0 && limit < len(all) {
				want = all[:limit]
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d limit %d: MergeK %v, want %v (lists %v)", trial, limit, got, want, lists)
			}
		}
	}
}

func TestRouterPruningSound(t *testing.T) {
	rt := NewRouter(3)
	// Shard 0: ids 1-3, blogs about food. Shard 1: ids 10-20, forums about
	// travel and food. Shard 2: left empty.
	rt.Note(0, 1, "blog")
	rt.Note(0, 3, "blog")
	rt.NoteCategory(0, "food")
	rt.Note(1, 10, "forum")
	rt.Note(1, 20, "forum")
	rt.NoteCategory(1, "travel")
	rt.NoteCategory(1, "food")

	for _, tc := range []struct {
		s     int
		ids   []int
		kinds []string
		cats  []string
		want  bool
	}{
		{0, nil, nil, nil, true},                // no restriction never prunes
		{2, nil, nil, nil, true},                // even on an empty shard
		{0, []int{2}, nil, nil, true},           // in range (supersets may admit absent ids)
		{0, []int{7}, nil, nil, false},          // outside the id range
		{2, []int{1}, nil, nil, false},          // empty shard + id scope
		{0, nil, []string{"forum"}, nil, false}, // kind not present
		{1, nil, []string{"forum", "blog"}, nil, true},
		{0, nil, nil, []string{"travel"}, false}, // category not present
		{1, nil, nil, []string{"travel"}, true},
		{1, []int{15}, []string{"forum"}, []string{"food"}, true},
		{1, []int{15}, []string{"forum"}, []string{"sports"}, false}, // one failing axis prunes
	} {
		if got := rt.CanMatch(tc.s, tc.ids, tc.kinds, tc.cats); got != tc.want {
			t.Errorf("CanMatch(%d, %v, %v, %v) = %v, want %v", tc.s, tc.ids, tc.kinds, tc.cats, got, tc.want)
		}
	}
}

func TestRouterDeriveIsolation(t *testing.T) {
	rt := NewRouter(2)
	rt.Note(0, 5, "blog")
	rt.NoteCategory(0, "food")
	rt.Note(1, 9, "forum")

	nr := rt.Derive([]int{0})
	nr.Note(0, 50, "microblog")
	nr.NoteCategory(0, "travel")

	// The parent's shard-0 sets are untouched by the derived router's unions.
	if rt.CanMatch(0, nil, []string{"microblog"}, nil) {
		t.Fatal("Derive leaked a kind union into the parent router")
	}
	if rt.CanMatch(0, nil, nil, []string{"travel"}) {
		t.Fatal("Derive leaked a category union into the parent router")
	}
	if !nr.CanMatch(0, []int{50}, []string{"microblog"}, []string{"travel"}) {
		t.Fatal("derived router lost its own unions")
	}
	// Untouched shard 1 is shared and still answers identically.
	if !nr.CanMatch(1, []int{9}, []string{"forum"}, nil) {
		t.Fatal("derived router lost the clean shard's metadata")
	}
}
