package analytics

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
)

func testPanel(t *testing.T, n int) (*webgen.World, *Panel) {
	t.Helper()
	world := webgen.Generate(webgen.Config{Seed: 8, NumSources: n})
	return world, Build(world, 99)
}

func TestPanelDeterministic(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 8, NumSources: 30})
	a := Build(world, 1)
	b := Build(world, 1)
	for i := 0; i < 30; i++ {
		ma, _ := a.BySource(i)
		mb, _ := b.BySource(i)
		if ma != mb {
			t.Fatalf("panel not deterministic at source %d", i)
		}
	}
}

func TestTrafficRankIsPermutation(t *testing.T) {
	_, p := testPanel(t, 50)
	seen := make([]int, 0, 50)
	for i := 0; i < 50; i++ {
		m, ok := p.BySource(i)
		if !ok {
			t.Fatalf("missing source %d", i)
		}
		seen = append(seen, m.TrafficRank)
	}
	sort.Ints(seen)
	for i, r := range seen {
		if r != i+1 {
			t.Fatalf("ranks are not a permutation of 1..50: %v", seen)
		}
	}
}

func TestRankOneHasMostVisitors(t *testing.T) {
	_, p := testPanel(t, 50)
	var best Metrics
	for i := 0; i < 50; i++ {
		m, _ := p.BySource(i)
		if m.TrafficRank == 1 {
			best = m
		}
	}
	for i := 0; i < 50; i++ {
		m, _ := p.BySource(i)
		if m.DailyVisitors > best.DailyVisitors {
			t.Errorf("source with rank %d has more visitors than rank 1", m.TrafficRank)
		}
	}
}

func TestMetricsSanity(t *testing.T) {
	world, p := testPanel(t, 40)
	for i := 0; i < 40; i++ {
		m, _ := p.BySource(i)
		if m.BounceRate < 0 || m.BounceRate > 1 {
			t.Errorf("bounce rate %v out of range", m.BounceRate)
		}
		if m.DailyVisitors <= 0 || m.DailyPageViews < m.DailyVisitors {
			t.Errorf("visitors/pageviews inconsistent: %v / %v", m.DailyVisitors, m.DailyPageViews)
		}
		if m.AvgTimeOnSite <= 0 {
			t.Errorf("time on site %v", m.AvgTimeOnSite)
		}
		if m.PageViewsPerVisitor < 1 {
			t.Errorf("pages per visitor %v < 1", m.PageViewsPerVisitor)
		}
		if m.InboundLinks != len(world.Sources[i].Inbound) {
			t.Errorf("inbound mismatch at %d", i)
		}
		if m.FeedSubscribers != world.Sources[i].FeedSubscribers {
			t.Errorf("subscribers mismatch at %d", i)
		}
		if m.NewDiscussionsPerDay <= 0 {
			t.Errorf("new discussions per day %v", m.NewDiscussionsPerDay)
		}
	}
}

func TestLatentsDriveMetrics(t *testing.T) {
	world, p := testPanel(t, 400)
	var tLat, visitors, eLat, bounce, dwell []float64
	for i, src := range world.Sources {
		m, _ := p.BySource(i)
		tLat = append(tLat, src.Latent.Traffic)
		visitors = append(visitors, m.DailyVisitors)
		eLat = append(eLat, src.Latent.Engagement)
		bounce = append(bounce, m.BounceRate)
		dwell = append(dwell, m.AvgTimeOnSite)
	}
	if r, _ := stats.Spearman(tLat, visitors); r < 0.7 {
		t.Errorf("traffic latent vs visitors rho = %v, want strong", r)
	}
	if r, _ := stats.Spearman(eLat, bounce); r > -0.5 {
		t.Errorf("engagement vs bounce rho = %v, want strongly negative", r)
	}
	if r, _ := stats.Spearman(eLat, dwell); r < 0.5 {
		t.Errorf("engagement vs dwell rho = %v, want strongly positive", r)
	}
	// Cross-factor independence: traffic latent should not predict bounce.
	if r, _ := stats.Spearman(tLat, bounce); r > 0.2 || r < -0.2 {
		t.Errorf("traffic vs bounce rho = %v, want ~0", r)
	}
}

func TestByHost(t *testing.T) {
	world, p := testPanel(t, 10)
	m, ok := p.ByHost(world.Sources[3].Host)
	if !ok || m.Host != world.Sources[3].Host {
		t.Errorf("ByHost failed: %+v %v", m, ok)
	}
	if _, ok := p.ByHost("nonexistent.test"); ok {
		t.Error("unknown host should miss")
	}
	if _, ok := p.BySource(-1); ok {
		t.Error("negative id should miss")
	}
	if p.Len() != 10 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestPanelHTTPHandler(t *testing.T) {
	world, p := testPanel(t, 5)
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics?host=" + world.Sources[2].Host)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	want, _ := p.BySource(2)
	if m != want {
		t.Errorf("HTTP metrics = %+v, want %+v", m, want)
	}

	resp2, err := http.Get(ts.URL + "/metrics?host=missing.test")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("missing host status = %d, want 404", resp2.StatusCode)
	}
}

func TestSampleGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	if got := sampleGeometric(rng, 0); got != 0 {
		t.Errorf("mean 0 must give 0, got %d", got)
	}
	// Empirical mean close to the requested mean.
	const mean = 2.5
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(sampleGeometric(rng, mean))
	}
	if got := sum / n; got < mean*0.9 || got > mean*1.1 {
		t.Errorf("empirical mean %v, want ~%v", got, mean)
	}
}
