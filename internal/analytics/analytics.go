// Package analytics is the traffic-panel substitute for the external
// services the paper relies on for the non-crawlable measures of Table 1:
// Alexa (traffic rank, daily visitors, daily page views, bounce rate,
// average time on site) and Feedburner (feed subscriptions). This is
// substitution S3 in DESIGN.md.
//
// Rather than asserting panel numbers directly from the latent factors, the
// panel simulates a session log per source (visits with page counts and
// dwell times) and derives bounce rate, time on site and page views per
// visitor from that log, the way a measurement panel would.
package analytics

import (
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"sort"

	"github.com/informing-observers/informer/internal/webgen"
)

// Metrics is the panel's view of one source.
type Metrics struct {
	Host string `json:"host"`
	// TrafficRank is 1-based: 1 is the highest-traffic source in the
	// corpus (Alexa convention: lower is better).
	TrafficRank int `json:"traffic_rank"`
	// DailyVisitors and DailyPageViews are panel extrapolations.
	DailyVisitors  float64 `json:"daily_visitors"`
	DailyPageViews float64 `json:"daily_page_views"`
	// BounceRate is the fraction of single-page sessions, in [0, 1].
	BounceRate float64 `json:"bounce_rate"`
	// AvgTimeOnSite is the mean session duration in seconds.
	AvgTimeOnSite float64 `json:"avg_time_on_site_s"`
	// PageViewsPerVisitor is DailyPageViews / DailyVisitors.
	PageViewsPerVisitor float64 `json:"page_views_per_visitor"`
	// InboundLinks mirrors Alexa's "sites linking in".
	InboundLinks int `json:"inbound_links"`
	// FeedSubscribers mirrors the Feedburner subscription count.
	FeedSubscribers int `json:"feed_subscribers"`
	// NewDiscussionsPerDay is the panel's activity estimate, the measure
	// the paper sources from Alexa for the Time x Liveliness cell.
	NewDiscussionsPerDay float64 `json:"new_discussions_per_day"`
}

// Panel holds metrics for every source of a world.
type Panel struct {
	metrics []Metrics
	byHost  map[string]int
	// activityNoise[i] is the multiplicative panel noise drawn for source
	// i's NewDiscussionsPerDay estimate. It is retained so Refresh can
	// re-derive the per-day activity after an Advance tick bit-identically
	// to a full Build with the same seed, without replaying the session
	// simulation.
	activityNoise []float64
}

// sessionsPerSource is the fixed per-source sample size of the simulated
// visit log. Panels estimate ratios (bounce, dwell) from samples; 150
// sessions keeps estimates noisy-but-informative like real panel data.
const sessionsPerSource = 150

// Build simulates the panel for a world. The seed controls panel noise
// independently of world generation.
func Build(world *webgen.World, seed int64) *Panel {
	rng := rand.New(rand.NewSource(seed))
	p := &Panel{byHost: make(map[string]int, len(world.Sources))}
	type ranked struct {
		id    int
		score float64
	}
	ranks := make([]ranked, 0, len(world.Sources))

	for _, src := range world.Sources {
		lat := src.Latent
		m := Metrics{
			Host:            src.Host,
			InboundLinks:    len(src.Inbound),
			FeedSubscribers: src.FeedSubscribers,
		}

		// Visit-log simulation: page counts follow a geometric-ish law
		// whose mean grows with engagement; dwell time per page likewise.
		var totalPages, bounces int
		var totalDwell float64
		meanExtraPages := 1.2 * math.Exp(0.6*lat.Engagement)
		for s := 0; s < sessionsPerSource; s++ {
			pages := 1 + sampleGeometric(rng, meanExtraPages)
			if pages == 1 {
				bounces++
			}
			dwellPerPage := 45 * math.Exp(0.7*lat.Engagement+0.35*rng.NormFloat64())
			totalPages += pages
			totalDwell += float64(pages) * dwellPerPage
		}
		m.BounceRate = float64(bounces) / sessionsPerSource
		m.AvgTimeOnSite = totalDwell / sessionsPerSource
		pagesPerSession := float64(totalPages) / sessionsPerSource

		m.DailyVisitors = 800 * math.Exp(1.1*lat.Traffic+0.3*rng.NormFloat64())
		m.DailyPageViews = m.DailyVisitors * pagesPerSession
		m.PageViewsPerVisitor = pagesPerSession

		// Activity estimate: discussions per day over the world timeline,
		// with panel noise.
		noise := math.Exp(0.1 * rng.NormFloat64())
		m.NewDiscussionsPerDay = float64(len(src.Discussions)) / world.Days() * noise

		p.activityNoise = append(p.activityNoise, noise)
		p.metrics = append(p.metrics, m)
		p.byHost[src.Host] = src.ID
		ranks = append(ranks, ranked{id: src.ID, score: m.DailyVisitors})
	}

	sort.Slice(ranks, func(i, j int) bool { return ranks[i].score > ranks[j].score })
	for pos, r := range ranks {
		p.metrics[r.id].TrafficRank = pos + 1
	}
	return p
}

// sampleGeometric draws a geometric-ish count with the given mean.
func sampleGeometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Geometric with success probability 1/(1+mean) has mean `mean`.
	p := 1 / (1 + mean)
	n := 0
	for rng.Float64() > p {
		n++
		if n > 1000 {
			break
		}
	}
	return n
}

// Refresh re-derives the panel for an advanced world without replaying the
// session simulation. The panel's session log (visitors, bounce rate,
// dwell) depends only on the seed and the sources' latent factors, so it
// is reusable as-is; only the per-day activity estimate moves with the
// timeline (each source's discussion count over the grown window, scaled
// by the retained noise draw). The result is bit-identical to
// Build(world, seed) with the original seed — the substrate for
// incremental corpus advancement. The receiver is left untouched for
// concurrent readers of the pre-advance snapshot.
func (p *Panel) Refresh(world *webgen.World) *Panel {
	np := &Panel{
		metrics:       append([]Metrics(nil), p.metrics...),
		byHost:        p.byHost,
		activityNoise: p.activityNoise,
	}
	for i, src := range world.Sources {
		if i >= len(np.metrics) {
			break
		}
		np.metrics[i].NewDiscussionsPerDay = float64(len(src.Discussions)) / world.Days() * np.activityNoise[i]
	}
	return np
}

// BySource returns the metrics of source id.
func (p *Panel) BySource(id int) (Metrics, bool) {
	if id < 0 || id >= len(p.metrics) {
		return Metrics{}, false
	}
	return p.metrics[id], true
}

// ByHost returns the metrics of the source serving the given host.
func (p *Panel) ByHost(host string) (Metrics, bool) {
	id, ok := p.byHost[host]
	if !ok {
		return Metrics{}, false
	}
	return p.metrics[id], true
}

// Len returns the number of sources the panel covers.
func (p *Panel) Len() int { return len(p.metrics) }

// Handler exposes the panel as a JSON API: GET /metrics?host=HOST, matching
// how the paper's framework queried Alexa as an external service.
func (p *Panel) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		host := r.URL.Query().Get("host")
		m, ok := p.ByHost(host)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(m); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
