package search

import (
	"math"
	"testing"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
)

func testEngine(t *testing.T, n int) (*webgen.World, *Engine) {
	t.Helper()
	world := webgen.Generate(webgen.Config{Seed: 4, NumSources: n})
	panel := analytics.Build(world, 40)
	return world, NewEngine(world, panel, Config{Seed: 17})
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The Duomo, in MILAN! x 42 metro-station")
	want := []string{"the", "duomo", "in", "milan", "metro", "station"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if Tokenize("") != nil {
		t.Error("empty text should yield no tokens")
	}
	if Tokenize("a b c") != nil {
		t.Error("single letters should be dropped")
	}
}

func TestSearchReturnsRelevantSources(t *testing.T) {
	world, e := testEngine(t, 150)
	results := e.Search("duomo museum landmark", 20)
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if len(results) > 20 {
		t.Fatalf("k not respected: %d", len(results))
	}
	// Scores descending.
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	// Every result must actually mention a query term.
	for _, r := range results {
		s := world.Sources[r.SourceID]
		text := docText(s)
		found := false
		for _, tok := range []string{"duomo", "museum", "landmark"} {
			if containsToken(text, tok) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("result %d does not mention query terms", r.SourceID)
		}
	}
}

func containsToken(text, tok string) bool {
	for _, tk := range Tokenize(text) {
		if tk == tok {
			return true
		}
	}
	return false
}

func TestSearchDeterministic(t *testing.T) {
	_, e := testEngine(t, 100)
	a := e.Search("hotel metro", 10)
	b := e.Search("hotel metro", 10)
	if len(a) != len(b) {
		t.Fatal("result lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same query must give identical results")
		}
	}
}

func TestSearchKindsFilter(t *testing.T) {
	world, e := testEngine(t, 200)
	results := e.SearchKinds("park square garden", 50, []webgen.SourceKind{webgen.Blog, webgen.Forum})
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		k := world.Sources[r.SourceID].Kind
		if k != webgen.Blog && k != webgen.Forum {
			t.Errorf("result %d has kind %v", r.SourceID, k)
		}
	}
}

func TestSearchNoMatches(t *testing.T) {
	_, e := testEngine(t, 50)
	if got := e.Search("zzzqqqxxx", 10); len(got) != 0 {
		t.Errorf("expected no results, got %d", len(got))
	}
}

func TestTrafficPriorInfluencesRanking(t *testing.T) {
	// With zero noise and zero relevance differences, higher traffic
	// should rank first. Query with a term every source shares: the
	// location home name appears in most sources' locations.
	world := webgen.Generate(webgen.Config{Seed: 6, NumSources: 300})
	panel := analytics.Build(world, 41)
	e := NewEngine(world, panel, Config{Seed: 1, NoiseSigma: 1e-9})
	results := e.Search("milan", 100)
	if len(results) < 30 {
		t.Skip("not enough matches for the prior test")
	}
	var ranks, visitors []float64
	for pos, r := range results {
		m, _ := panel.BySource(r.SourceID)
		ranks = append(ranks, float64(pos))
		visitors = append(visitors, m.DailyVisitors)
	}
	rho, err := stats.Spearman(ranks, visitors)
	if err != nil {
		t.Fatal(err)
	}
	if rho > -0.25 {
		t.Errorf("position vs visitors rho = %v, want clearly negative (more traffic -> earlier)", rho)
	}
}

func TestPageRankBasics(t *testing.T) {
	// Star graph: everyone links to node 0.
	adj := [][]int{1: {0}, 2: {0}, 3: {0}, 4: {0}}
	adj[0] = nil
	pr := PageRank(adj, 0.85, 50)
	var sum float64
	for _, v := range pr {
		if v <= 0 {
			t.Errorf("pagerank value %v <= 0", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("pagerank sums to %v, want 1", sum)
	}
	for i := 1; i < 5; i++ {
		if pr[0] <= pr[i] {
			t.Errorf("hub rank %v not above leaf rank %v", pr[0], pr[i])
		}
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// Ring: all nodes equal.
	adj := [][]int{{1}, {2}, {3}, {0}}
	pr := PageRank(adj, 0.85, 100)
	for i := 1; i < len(pr); i++ {
		if math.Abs(pr[i]-pr[0]) > 1e-9 {
			t.Errorf("ring not uniform: %v", pr)
		}
	}
}

func TestPageRankEmptyAndDefaults(t *testing.T) {
	if PageRank(nil, 0.85, 10) != nil {
		t.Error("empty graph should return nil")
	}
	// Degenerate damping and iters fall back to defaults without panic.
	pr := PageRank([][]int{{1}, {0}}, 0, 0)
	if len(pr) != 2 {
		t.Errorf("pr = %v", pr)
	}
}

func TestPageRankScoresCopy(t *testing.T) {
	_, e := testEngine(t, 20)
	pr := e.PageRankScores()
	pr[0] = 999
	if e.PageRankScores()[0] == 999 {
		t.Error("PageRankScores must return a copy")
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("abc") != hashString("abc") {
		t.Error("hash not stable")
	}
	if hashString("abc") == hashString("abd") {
		t.Error("suspicious collision")
	}
}
