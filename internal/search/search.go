// Package search implements the search-engine baseline that substitutes for
// Google in the ranking-comparison experiment of Section 4.1 (substitution
// S4 in DESIGN.md). It combines classic components — a tokenizer, an
// inverted index with TF-IDF scoring, PageRank over the corpus link graph —
// with a traffic prior, reflecting the paper's empirical finding that
// Google's ordering is driven by traffic and inbound links rather than by
// participation or engagement (which the default weights mildly penalise,
// mirroring thin-content demotion of heavily conversational pages).
//
// Per-query noise keeps top-k orderings relevance-dominated, which is what
// produces the low per-measure Kendall tau of Section 4.1 while pooled
// regressions still recover the component-level signs of Table 3.
package search

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
)

// Config weights the composite ranking signal.
type Config struct {
	// Seed drives per-query noise.
	Seed int64
	// RelevanceWeight scales TF-IDF (default 1.0).
	RelevanceWeight float64
	// PageRankWeight scales the standardized log-PageRank prior (default 0.35).
	PageRankWeight float64
	// TrafficWeight scales the standardized log-visitors prior (default 0.45).
	TrafficWeight float64
	// ParticipationPenalty demotes heavily conversational sources
	// (default 0.15).
	ParticipationPenalty float64
	// EngagementPenalty demotes long-dwell sources (default 0.10).
	EngagementPenalty float64
	// NoiseSigma is the per-(query, document) score jitter (default 0.35).
	NoiseSigma float64
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64
	// Conjunctive requires documents to match every query token (AND
	// semantics, the behaviour of mainstream engines for short queries).
	// The default is disjunctive (any token).
	Conjunctive bool
}

func (c Config) withDefaults() Config {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.RelevanceWeight, 1.0)
	def(&c.PageRankWeight, 0.35)
	def(&c.TrafficWeight, 0.45)
	def(&c.ParticipationPenalty, 0.15)
	def(&c.EngagementPenalty, 0.10)
	def(&c.NoiseSigma, 0.35)
	def(&c.Damping, 0.85)
	return c
}

// Result is one ranked hit.
type Result struct {
	SourceID int
	Score    float64
}

type posting struct {
	doc int
	tf  float64
}

// Engine is an immutable index over a world, safe for concurrent searches.
type Engine struct {
	cfg      Config
	world    *webgen.World
	index    map[string][]posting
	docNorm  []float64 // sqrt(total term count) per doc
	idf      map[string]float64
	prior    []float64 // static per-source prior (traffic, pagerank, penalties)
	pagerank []float64
	kinds    []webgen.SourceKind
}

// NewEngine indexes the world and precomputes priors.
func NewEngine(world *webgen.World, panel *analytics.Panel, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:     cfg,
		world:   world,
		index:   make(map[string][]posting),
		docNorm: make([]float64, len(world.Sources)),
		idf:     make(map[string]float64),
		kinds:   make([]webgen.SourceKind, len(world.Sources)),
	}
	e.buildIndex()
	e.pagerank = PageRank(adjacency(world), cfg.Damping, 40)
	e.buildPrior(panel)
	for i, s := range world.Sources {
		e.kinds[i] = s.Kind
	}
	return e
}

// Tokenize lowercases and splits text into letter runs.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
			continue
		}
		if b.Len() > 1 { // drop single letters
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	if b.Len() > 1 {
		tokens = append(tokens, b.String())
	}
	return tokens
}

// docText collects the indexable text of a source: name, description,
// locations, discussion titles and tags. Comment bodies are intentionally
// excluded — search engines weigh page titles and site descriptors far more
// than buried comment text, and the corpus may omit bodies entirely.
func docText(s *webgen.Source) string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte(' ')
	b.WriteString(s.Description)
	for _, l := range s.Locations {
		b.WriteByte(' ')
		b.WriteString(l)
	}
	for _, d := range s.Discussions {
		b.WriteByte(' ')
		b.WriteString(d.Title)
		if d.Category != "" {
			b.WriteByte(' ')
			b.WriteString(d.Category)
		}
		for _, t := range d.Tags {
			b.WriteByte(' ')
			b.WriteString(t)
		}
	}
	return b.String()
}

func (e *Engine) buildIndex() {
	n := len(e.world.Sources)
	df := map[string]int{}
	for _, s := range e.world.Sources {
		counts := map[string]int{}
		total := 0
		for _, tok := range Tokenize(docText(s)) {
			counts[tok]++
			total++
		}
		for tok, c := range counts {
			e.index[tok] = append(e.index[tok], posting{doc: s.ID, tf: float64(c)})
			df[tok]++
		}
		e.docNorm[s.ID] = math.Sqrt(float64(total) + 1)
	}
	for tok, d := range df {
		e.idf[tok] = math.Log(float64(n+1) / (float64(d) + 0.5))
	}
}

// buildPrior computes the static per-source score component.
func (e *Engine) buildPrior(panel *analytics.Panel) {
	n := len(e.world.Sources)
	logVisitors := make([]float64, n)
	logPR := make([]float64, n)
	logCPD := make([]float64, n) // comments per discussion, observable proxy of participation
	logDwell := make([]float64, n)
	for i, s := range e.world.Sources {
		m, _ := panel.BySource(i)
		logVisitors[i] = math.Log1p(m.DailyVisitors)
		logPR[i] = math.Log(e.pagerank[i] + 1e-12)
		cpd := 0.0
		if len(s.Discussions) > 0 {
			cpd = float64(s.CommentCount()) / float64(len(s.Discussions))
		}
		logCPD[i] = math.Log1p(cpd)
		logDwell[i] = math.Log1p(m.AvgTimeOnSite)
	}
	zV := stats.Standardize(logVisitors)
	zP := stats.Standardize(logPR)
	zC := stats.Standardize(logCPD)
	zD := stats.Standardize(logDwell)
	e.prior = make([]float64, n)
	for i := range e.prior {
		e.prior[i] = e.cfg.TrafficWeight*zV[i] +
			e.cfg.PageRankWeight*zP[i] -
			e.cfg.ParticipationPenalty*zC[i] -
			e.cfg.EngagementPenalty*zD[i]
	}
}

// Search returns the top-k sources for the query across all source kinds.
func (e *Engine) Search(query string, k int) []Result {
	return e.SearchKinds(query, k, nil)
}

// SearchKinds returns the top-k sources restricted to the given kinds
// (nil means all kinds). Section 4.1 restricts results to blogs and forums.
func (e *Engine) SearchKinds(query string, k int, kinds []webgen.SourceKind) []Result {
	tokens := Tokenize(query)
	n := len(e.world.Sources)
	rel := make([]float64, n)
	hits := make([]int, n)
	for _, tok := range tokens {
		idf := e.idf[tok]
		for _, p := range e.index[tok] {
			rel[p.doc] += (1 + math.Log(p.tf)) * idf / e.docNorm[p.doc]
			hits[p.doc]++
		}
	}
	need := 1
	if e.cfg.Conjunctive {
		need = len(tokens)
	}
	allowed := func(id int) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, kk := range kinds {
			if e.kinds[id] == kk {
				return true
			}
		}
		return false
	}
	// Per-query deterministic noise: hash the query into a seed.
	rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(hashString(query))))
	results := make([]Result, 0, 64)
	for id := 0; id < n; id++ {
		if hits[id] < need || !allowed(id) {
			continue
		}
		score := e.cfg.RelevanceWeight*rel[id] + e.prior[id] + e.cfg.NoiseSigma*rng.NormFloat64()
		results = append(results, Result{SourceID: id, Score: score})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].SourceID < results[j].SourceID
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// PageRankScores returns the engine's PageRank vector (sums to 1).
func (e *Engine) PageRankScores() []float64 {
	return append([]float64(nil), e.pagerank...)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// adjacency extracts the outbound adjacency list of a world.
func adjacency(w *webgen.World) [][]int {
	adj := make([][]int, len(w.Sources))
	for i, s := range w.Sources {
		adj[i] = s.Outbound
	}
	return adj
}

// PageRank runs damped power iteration over an outbound adjacency list.
// Dangling mass is redistributed uniformly. The result sums to 1.
func PageRank(adj [][]int, damping float64, iters int) []float64 {
	n := len(adj)
	if n == 0 {
		return nil
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iters <= 0 {
		iters = 40
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - damping) / float64(n)
		var dangling float64
		for i := range next {
			next[i] = base
		}
		for i, outs := range adj {
			if len(outs) == 0 {
				dangling += rank[i]
				continue
			}
			share := damping * rank[i] / float64(len(outs))
			for _, j := range outs {
				next[j] += share
			}
		}
		spread := damping * dangling / float64(n)
		for i := range next {
			next[i] += spread
		}
		rank, next = next, rank
	}
	return rank
}
