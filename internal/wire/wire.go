// Package wire defines the structured-data payloads that the synthetic
// Web 2.0 sources embed in their pages (in the style of JSON-LD data
// islands) and that the crawler extracts. It is the one shared contract
// between internal/webserve (producer) and internal/crawler (consumer);
// everything else about a page is presentation.
package wire

import "time"

// SourceInfo is the machine-readable header a source exposes on its index
// page.
type SourceInfo struct {
	ID              int       `json:"id"`
	Name            string    `json:"name"`
	Host            string    `json:"host"`
	Kind            string    `json:"kind"`
	Description     string    `json:"description"`
	Founded         time.Time `json:"founded"`
	FeedSubscribers int       `json:"feed_subscribers"`
	Locations       []string  `json:"locations,omitempty"`
	// OutboundHosts are the hosts this source links to; the crawler
	// aggregates them into inbound-link counts.
	OutboundHosts  []string `json:"outbound_hosts,omitempty"`
	DiscussionIDs  []int    `json:"discussion_ids"`
	OpenDiscussion int      `json:"open_discussions"`
}

// Discussion is the machine-readable payload of a discussion page.
type Discussion struct {
	ID       int       `json:"id"`
	SourceID int       `json:"source_id"`
	Title    string    `json:"title"`
	Category string    `json:"category,omitempty"`
	Opened   time.Time `json:"opened"`
	Open     bool      `json:"open"`
	Tags     []string  `json:"tags,omitempty"`
	Comments []Comment `json:"comments"`
}

// Comment is one contribution inside a Discussion payload.
type Comment struct {
	ID        int       `json:"id"`
	Author    string    `json:"author"`
	AuthorID  int       `json:"author_id"`
	Posted    time.Time `json:"posted"`
	Body      string    `json:"body,omitempty"`
	Tags      []string  `json:"tags,omitempty"`
	Replies   int       `json:"replies"`
	Feedbacks int       `json:"feedbacks"`
	Reads     int       `json:"reads"`
	Lat       *float64  `json:"lat,omitempty"`
	Lon       *float64  `json:"lon,omitempty"`
}
