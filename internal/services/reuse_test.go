package services

// Satellite pin: Env.Advance's score join stops rebuilding unchanged
// per-record assessments at sparse churn. When the tick kept the epoch
// still and the repaired engine's benchmarks are bitwise unchanged, clean
// rows' Assessments (and so their Raw/Normalized maps) ride into the next
// Env by reference — only the dirty rows are re-assessed. The test scans
// a fixed seed range for a sparse tick whose licence engages and pins
// pointer identity; it fails loudly if no seed engages, so the fast path
// cannot silently rot into never firing.

import (
	"testing"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/webgen"
)

func TestAdvanceReusesCleanAssessments(t *testing.T) {
	engaged := false
	for seed := int64(1); seed <= 20 && !engaged; seed++ {
		world := webgen.Generate(webgen.Config{
			Seed: seed, NumSources: 40, NumUsers: 120, CommentText: true,
		})
		panel := analytics.Build(world, seed+100)
		di := quality.DomainOfInterest{Categories: world.Categories}
		env := NewEnv(world, panel, di)

		// A sparse tick: same-day churn restricted to two sources keeps
		// the epoch still and usually leaves the corpus-wide benchmark
		// quantiles untouched.
		w2, delta := webgen.AdvanceSameDay(world, seed+500, []int{0, 1})
		ne := env.Advance(w2, panel.Refresh(w2), delta)

		if delta.EpochMoved() || !ne.Sources.BenchmarksEqual(env.Sources) {
			continue // licence did not engage under this seed; try the next
		}
		dirty := map[int]bool{}
		for _, id := range delta.DirtySourceIDs() {
			dirty[id] = true
		}
		clean := 0
		for row, a := range ne.sourceAssessments {
			if dirty[env.SourceRecords[row].ID] {
				continue
			}
			clean++
			if a != env.sourceAssessments[row] {
				t.Fatalf("seed %d: clean row %d re-assessed (licence held: epoch still, benchmarks equal)", seed, row)
			}
		}
		if clean == 0 {
			continue // every row dirty; nothing to pin under this seed
		}
		engaged = true

		// The reused snapshot must still be correct: scores equal a full
		// re-assessment.
		fresh := ne.Sources.AssessAll(ne.SourceRecords)
		for i, a := range fresh {
			if got := ne.sourceAssessments[i]; got.Score != a.Score || got.ID != a.ID {
				t.Fatalf("seed %d: reused assessment diverges on row %d: %v vs %v", seed, i, got.Score, a.Score)
			}
		}
	}
	if !engaged {
		t.Fatal("no seed in 1..20 produced a sparse tick with equal benchmarks and clean rows; the reuse fast path never engaged")
	}
}
