// Package services provides the concrete mashup components of the paper's
// framework (Section 5): data services wrapping the filtered authoritative
// sources, quality-based selection services, the influencer filter, and the
// sentiment analysis service. Together with the generic viewers of
// internal/mashup they are the building blocks of Figure 1's dashboard.
//
// Components share an Env — the assessed world — and register into a
// mashup.Registry under these type names:
//
//	comments           data service emitting comment items from sources
//	quality-filter     keeps comments from sources above a quality bar
//	influencer-filter  keeps comments authored by detected influencers;
//	                   also exposes an "influencers" output port
//	sentiment          scores comments; exposes an "indicators" port
package services

import (
	"fmt"
	"sort"
	"strings"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/webgen"
)

// CorrelationCounts supplies a source's correlation counters (indexed
// comments and near-duplicates among them) from the correlation engine's
// dedup index — the raw inputs of the src.originality measure. The
// callback is invoked only during Env construction and Env.Advance, both
// of which run under the facade's writer lock, so it may read the
// writer-owned index directly.
type CorrelationCounts func(sourceID int) (correlated, duplicates int)

// Env is the assessed world every domain component draws from: the corpus,
// its analytics panel, the DI, and the derived quality assessments.
type Env struct {
	World *webgen.World
	Panel *analytics.Panel
	DI    quality.DomainOfInterest

	SourceRecords      []*quality.SourceRecord
	Sources            *quality.SourceAssessor
	SourceScores       map[int]float64 // source ID -> overall quality score
	ContributorRecords []*quality.ContributorRecord
	Contributors       *quality.ContributorAssessor
	Analyzer           *sentiment.Analyzer

	// Correlation, when set, fills the per-record correlation counters
	// before assessment; carried across Advance.
	Correlation CorrelationCounts

	// contribIx keeps the per-user activity aggregation incremental
	// across Advance ticks.
	contribIx *quality.ContributorIndex

	// sourceAssessments caches the per-row source assessments backing
	// SourceScores, row-aligned with SourceRecords, so a sparse-churn
	// Advance can reuse clean rows' assessment maps by reference instead
	// of rebuilding every map only to read one float from it.
	sourceAssessments []*quality.Assessment
}

// NewEnv assesses the world once and returns the shared environment.
func NewEnv(world *webgen.World, panel *analytics.Panel, di quality.DomainOfInterest) *Env {
	return NewEnvOpts(world, panel, di, nil)
}

// NewEnvOpts is NewEnv with explicit assessor options — the hook through
// which the facade's shard-count knob (AssessorOptions.Shards) reaches
// both assessors. opts may be nil for defaults; it applies to sources and
// contributors alike.
func NewEnvOpts(world *webgen.World, panel *analytics.Panel, di quality.DomainOfInterest, opts *quality.AssessorOptions) *Env {
	return NewEnvCorrelated(world, panel, di, opts, nil)
}

// NewEnvCorrelated is NewEnvOpts with a correlation-counter source: the
// counters are joined into every source record before the assessor
// derives its benchmarks, so src.originality flows through the columnar
// pipeline like any other measure. counts may be nil (the measure stays
// undefined on every record).
func NewEnvCorrelated(world *webgen.World, panel *analytics.Panel, di quality.DomainOfInterest, opts *quality.AssessorOptions, counts CorrelationCounts) *Env {
	env := &Env{
		World:       world,
		Panel:       panel,
		DI:          di,
		Analyzer:    sentiment.NewAnalyzer(),
		Correlation: counts,
	}
	env.SourceRecords = quality.SourceRecordsFromWorld(world, panel)
	if counts != nil {
		for _, r := range env.SourceRecords {
			r.CorrelatedComments, r.DuplicateComments = counts(r.ID)
		}
	}
	env.Sources = quality.NewSourceAssessor(env.SourceRecords, di, opts)
	env.sourceAssessments = env.Sources.AssessAll(env.SourceRecords)
	env.SourceScores = make(map[int]float64, len(env.SourceRecords))
	for _, a := range env.sourceAssessments {
		env.SourceScores[a.ID] = a.Score
	}
	env.contribIx = quality.NewContributorIndex(world)
	env.ContributorRecords = env.contribIx.Records()
	env.Contributors = quality.NewContributorAssessor(env.ContributorRecords, di, opts)
	return env
}

// Advance derives the environment of an incrementally advanced world: the
// records of the delta's dirty sources and contributors are rebuilt or
// additively updated, the assessors repair their measure matrices via
// UpdateRows instead of re-evaluating the corpus, and the source-score
// join is re-read from the updated assessor. The delta may span several
// coalesced ticks (webgen.Delta.Merge) — dirty sets union and the epoch
// flag composes, so one repair over the spanning delta equals repairing
// each tick in turn. Every derived number is bit-identical to NewEnv over
// the same world and panel; the receiver is left untouched, still serving
// readers of the pre-advance snapshot.
func (env *Env) Advance(world *webgen.World, panel *analytics.Panel, delta *webgen.Delta) *Env {
	ne := &Env{
		World:       world,
		Panel:       panel,
		DI:          env.DI,
		Analyzer:    env.Analyzer,
		Correlation: env.Correlation,
	}
	records, dirtyRows := quality.UpdateSourceRecordsFromWorld(env.SourceRecords, world, panel, delta.DirtySourceIDs())
	ne.SourceRecords = records
	if env.Correlation != nil {
		// Correlation counters only move for sources the tick dirtied
		// (duplicate verdicts are written on the newer comment and never
		// revised), so clean rows' counters ride the shared record.
		for _, row := range dirtyRows {
			records[row].CorrelatedComments, records[row].DuplicateComments = env.Correlation(records[row].ID)
		}
	}
	// A per-source tick (webgen.AdvanceSource) can raise the corpus-global
	// MaxOpenDiscussions high-water mark without moving the epoch. That
	// denominator feeds time-sensitive source measures on EVERY row, so the
	// repair must re-evaluate them corpus-wide exactly as an epoch move
	// would — otherwise non-dirty rows keep values computed against the old
	// ceiling and diverge from a fresh rebuild.
	srcReEval := delta.EpochMoved()
	if len(env.SourceRecords) > 0 && env.SourceRecords[0].MaxOpenDiscussions != world.MaxOpenDiscussions {
		srcReEval = true
	}
	ne.Sources = env.Sources.UpdateRows(records, dirtyRows, srcReEval)
	// Score join. At sparse churn, a clean row's full Assessment is
	// unchanged — its raw observations did not move and, when the repaired
	// benchmarks come out bitwise identical, neither did its
	// normalisation — so the cached assessment is reused by reference and
	// only dirty rows re-assess (served from the repaired matrix). Any
	// doubt (epoch moved, benchmarks shifted, row count changed) falls
	// back to the full rebuild.
	ne.SourceScores = make(map[int]float64, len(records))
	if !srcReEval && len(env.sourceAssessments) == len(records) && ne.Sources.BenchmarksEqual(env.Sources) {
		as := make([]*quality.Assessment, len(records))
		copy(as, env.sourceAssessments)
		for _, row := range dirtyRows {
			as[row] = ne.Sources.Assess(records[row])
		}
		ne.sourceAssessments = as
	} else {
		ne.sourceAssessments = ne.Sources.AssessAll(records)
	}
	for _, a := range ne.sourceAssessments {
		ne.SourceScores[a.ID] = a.Score
	}
	ix, contribDirty := env.contribIx.Apply(world, delta)
	ne.contribIx = ix
	ne.ContributorRecords = ix.Records()
	ne.Contributors = env.Contributors.UpdateRows(ne.ContributorRecords, contribDirty, delta.EpochMoved())
	return ne
}

// Register adds all domain component types to the registry.
func Register(reg *mashup.Registry, env *Env) {
	reg.MustRegister("comments", func(p mashup.Params) (mashup.Component, error) {
		return newCommentSource(env, p)
	})
	reg.MustRegister("quality-filter", func(p mashup.Params) (mashup.Component, error) {
		return newQualityFilter(env, p)
	})
	reg.MustRegister("influencer-filter", func(p mashup.Params) (mashup.Component, error) {
		return newInfluencerFilter(env, p)
	})
	reg.MustRegister("sentiment", func(p mashup.Params) (mashup.Component, error) {
		return newSentimentService(env, p), nil
	})
	RegisterAnalysis(reg, env)
}

// NewRegistry returns a registry with both the generic builtins and the
// domain components bound to env.
func NewRegistry(env *Env) *mashup.Registry {
	reg := mashup.NewRegistry()
	mashup.RegisterBuiltins(reg)
	Register(reg, env)
	return reg
}

// commentItem flattens one comment into a mashup item. Field names are the
// package-wide convention viewers rely on.
func commentItem(env *Env, src *webgen.Source, d *webgen.Discussion, c *webgen.Comment) mashup.Item {
	authorName := ""
	if u := env.World.User(c.UserID); u != nil {
		authorName = u.Name
	}
	it := mashup.Item{
		"source_id": src.ID,
		"source":    src.Name,
		"kind":      src.Kind.String(),
		"category":  d.Category,
		"title":     d.Title,
		"author":    authorName,
		"author_id": c.UserID,
		"text":      c.Body,
		"posted":    c.Posted,
		"replies":   c.Replies,
		"feedbacks": c.Feedbacks,
		"quality":   env.SourceScores[src.ID],
	}
	if c.Geo != nil {
		it["lat"] = c.Geo.Lat
		it["lon"] = c.Geo.Lon
	}
	return it
}

// commentSource is the data service over the world's comments.
// Params: "kind" restricts the source kind (e.g. "social-network",
// "review-site"); "source_ids" lists explicit sources; "top_sources"
// selects the N best sources by quality within the kind (the paper's
// "wrappers defined on top of the filtered authoritative sources");
// "categories" restricts to DI categories; "limit" caps emitted comments.
type commentSource struct {
	env   *Env
	items []mashup.Item
}

func newCommentSource(env *Env, p mashup.Params) (mashup.Component, error) {
	kind := p.String("kind", "")
	ids := map[int]bool{}
	if raw, ok := p["source_ids"]; ok {
		switch v := raw.(type) {
		case []any:
			for _, e := range v {
				f, ok := e.(float64)
				if !ok {
					return nil, fmt.Errorf("comments: source_ids must be numbers")
				}
				ids[int(f)] = true
			}
		case []int:
			for _, e := range v {
				ids[e] = true
			}
		default:
			return nil, fmt.Errorf("comments: bad source_ids type %T", raw)
		}
	}
	cats := map[string]bool{}
	for _, c := range p.StringSlice("categories") {
		cats[c] = true
	}
	topSources := p.Int("top_sources", 0)
	limit := p.Int("limit", 0)

	// Candidate sources. A top_sources selection compiles to a quality
	// Query executed by the source assessor — the scope predicates and the
	// top-k bound run below the ranking, over the cached measure matrix,
	// instead of sorting every source's score here. Explicit IDs take
	// precedence over the kind restriction, as they always have.
	var candidates []*webgen.Source
	if topSources > 0 {
		q := quality.Query{TopK: topSources, Fields: quality.ProjectScores}
		if len(ids) > 0 {
			for id := range ids {
				q.IDs = append(q.IDs, id)
			}
		} else if kind != "" {
			q.Kinds = []string{kind}
		}
		res, err := env.Sources.Query(env.SourceRecords, q)
		if err != nil {
			return nil, fmt.Errorf("comments: %w", err)
		}
		for _, a := range res.Items {
			candidates = append(candidates, env.World.Source(a.ID))
		}
	} else {
		for _, s := range env.World.Sources {
			if len(ids) > 0 {
				if ids[s.ID] {
					candidates = append(candidates, s)
				}
				continue
			}
			if kind == "" || s.Kind.String() == kind {
				candidates = append(candidates, s)
			}
		}
	}

	cs := &commentSource{env: env}
	for _, s := range candidates {
		for _, d := range s.Discussions {
			if len(cats) > 0 && !cats[d.Category] {
				continue
			}
			for _, c := range d.Comments {
				cs.items = append(cs.items, commentItem(env, s, d, c))
				if limit > 0 && len(cs.items) >= limit {
					return cs, nil
				}
			}
		}
	}
	return cs, nil
}

func (cs *commentSource) Process(*mashup.Context, mashup.Inputs) (mashup.Outputs, error) {
	return mashup.Outputs{"out": cs.items}, nil
}

// qualityFilter keeps comment items whose source clears a quality bar.
// Params: "min_quality" (float, default 0.5) thresholds the overall score;
// "min_dim.<dimension>" and "min_att.<attribute>" (floats) additionally
// threshold per-axis averages (e.g. "min_dim.time": 0.4). The thresholds
// compile to one quality.Query executed at instantiation, so filtering a
// comment stream costs a set lookup per item, not a re-assessment. Items
// from sources outside the corpus fall back to their own "quality" field
// against min_quality.
type qualityFilter struct {
	env  *Env
	min  float64
	pass map[int]bool // corpus source IDs clearing the compiled query
}

func newQualityFilter(env *Env, p mashup.Params) (*qualityFilter, error) {
	f := &qualityFilter{env: env, min: p.Float("min_quality", 0.5)}
	q := quality.Query{MinScore: f.min, Fields: quality.ProjectScores}
	for key, raw := range p {
		val, isNum := numParam(raw)
		switch {
		case strings.HasPrefix(key, "min_dim."):
			d, ok := quality.ParseDimension(strings.TrimPrefix(key, "min_dim."))
			if !ok || !isNum {
				return nil, fmt.Errorf("quality-filter: bad threshold %s=%v", key, raw)
			}
			if q.MinDimension == nil {
				q.MinDimension = map[quality.Dimension]float64{}
			}
			q.MinDimension[d] = val
		case strings.HasPrefix(key, "min_att."):
			at, ok := quality.ParseAttribute(strings.TrimPrefix(key, "min_att."))
			if !ok || !isNum {
				return nil, fmt.Errorf("quality-filter: bad threshold %s=%v", key, raw)
			}
			if q.MinAttribute == nil {
				q.MinAttribute = map[quality.Attribute]float64{}
			}
			q.MinAttribute[at] = val
		}
	}
	res, err := env.Sources.Query(env.SourceRecords, q)
	if err != nil {
		return nil, fmt.Errorf("quality-filter: %w", err)
	}
	f.pass = make(map[int]bool, len(res.Items))
	for _, a := range res.Items {
		f.pass[a.ID] = true
	}
	return f, nil
}

// numParam coerces a mashup param to float64 with the same int/float
// tolerance as mashup.Params.Float (JSON decodes numbers as float64;
// Go-built Params may carry untyped int literals).
func numParam(raw any) (float64, bool) {
	switch v := raw.(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	default:
		return 0, false
	}
}

func (f *qualityFilter) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	var out []mashup.Item
	for _, it := range in.All() {
		if sid, ok := it.Float("source_id"); ok {
			if _, inCorpus := f.env.SourceScores[int(sid)]; inCorpus {
				if f.pass[int(sid)] {
					out = append(out, it)
				}
				continue
			}
		}
		if q, ok := it.Float("quality"); ok && q >= f.min {
			out = append(out, it)
		}
	}
	return mashup.Outputs{"out": out}, nil
}

// influencerFilter keeps comments authored by the detected influencers and
// additionally exposes the influencer roster on the "influencers" port —
// the component at the heart of Figure 1.
// Params: "top" (default 10), "strategy" ("combined", "by-activity",
// "by-relative"), "min_interactions".
type influencerFilter struct {
	env      *Env
	topSet   map[int]bool
	roster   []mashup.Item
	strategy quality.InfluencerStrategy
}

func newInfluencerFilter(env *Env, p mashup.Params) (mashup.Component, error) {
	var strat quality.InfluencerStrategy
	switch s := p.String("strategy", "combined"); s {
	case "combined":
		strat = quality.Combined
	case "by-activity":
		strat = quality.ByActivity
	case "by-relative":
		strat = quality.ByRelative
	default:
		return nil, fmt.Errorf("influencer-filter: unknown strategy %q", s)
	}
	f := &influencerFilter{env: env, topSet: map[int]bool{}, strategy: strat}
	infs := quality.Influencers(env.Contributors, env.ContributorRecords, quality.InfluencerOptions{
		Strategy:        strat,
		TopK:            p.Int("top", 10),
		MinInteractions: p.Int("min_interactions", 0),
	})
	for _, inf := range infs {
		f.topSet[inf.Record.ID] = true
		item := mashup.Item{
			"author_id": inf.Record.ID,
			"name":      inf.Record.Name,
			"title":     inf.Record.Name,
			"score":     inf.InfluenceScore,
		}
		if lat, lon, ok := lastGeo(env, inf.Record.ID); ok {
			item["lat"] = lat
			item["lon"] = lon
		}
		f.roster = append(f.roster, item)
	}
	return f, nil
}

// lastGeo finds the most recent geo-tagged comment of a user, giving the
// influencer a map location as in Figure 1.
func lastGeo(env *Env, userID int) (lat, lon float64, ok bool) {
	var best *webgen.Comment
	for _, s := range env.World.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.UserID != userID || c.Geo == nil {
					continue
				}
				if best == nil || c.Posted.After(best.Posted) {
					best = c
				}
			}
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.Geo.Lat, best.Geo.Lon, true
}

func (f *influencerFilter) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	var out []mashup.Item
	for _, it := range in.All() {
		id, ok := it.Float("author_id")
		if ok && f.topSet[int(id)] {
			out = append(out, it)
		}
	}
	return mashup.Outputs{"out": out, "influencers": f.roster}, nil
}

// sentimentService scores each comment item (adding "sentiment" and
// "polarity" fields) and aggregates per-category indicators on the
// "indicators" port. When "weigh_by_quality" is true (default), indicator
// values are source-quality-weighted per Section 6.
type sentimentService struct {
	env            *Env
	weighByQuality bool
}

func newSentimentService(env *Env, p mashup.Params) *sentimentService {
	weigh := true
	if b, ok := p["weigh_by_quality"].(bool); ok {
		weigh = b
	}
	return &sentimentService{env: env, weighByQuality: weigh}
}

func (s *sentimentService) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	items := in.All()
	scored := make([]mashup.Item, 0, len(items))
	// Per category and source: accumulate for weighting.
	type cell struct {
		sum float64
		n   int
	}
	byCatSource := map[string]map[int]*cell{}
	for _, it := range items {
		text, _ := it["text"].(string)
		sc := s.env.Analyzer.Score(text)
		out := it.Clone()
		out["sentiment"] = sc.Value
		out["polarity"] = sc.Polarity()
		scored = append(scored, out)

		cat, _ := it["category"].(string)
		sid := -1
		if f, ok := it.Float("source_id"); ok {
			sid = int(f)
		}
		m := byCatSource[cat]
		if m == nil {
			m = map[int]*cell{}
			byCatSource[cat] = m
		}
		c := m[sid]
		if c == nil {
			c = &cell{}
			m[sid] = c
		}
		c.sum += sc.Value
		c.n++
	}

	cats := make([]string, 0, len(byCatSource))
	for cat := range byCatSource {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	var indicators []mashup.Item
	for _, cat := range cats {
		var entries []sentiment.SourceSentiment
		total := 0
		for sid, c := range byCatSource[cat] {
			qual := 1.0
			if s.weighByQuality {
				if q, ok := s.env.SourceScores[sid]; ok {
					qual = q
				}
			}
			entries = append(entries, sentiment.SourceSentiment{
				SourceID: sid,
				Quality:  qual,
				Mean:     c.sum / float64(c.n),
				N:        c.n,
			})
			total += c.n
		}
		label := cat
		if label == "" {
			label = "(off-topic)"
		}
		indicators = append(indicators, mashup.Item{
			"label": label,
			"value": sentiment.QualityWeighted(entries),
			"n":     total,
		})
	}
	return mashup.Outputs{"out": scored, "indicators": indicators}, nil
}
