package services

import (
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/mashup"
)

func TestCategoryFilter(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	f, err := reg.New("category-filter", mashup.Params{"categories": []any{"place", "pulse"}})
	if err != nil {
		t.Fatal(err)
	}
	items := []mashup.Item{
		{"category": "place", "title": "a"},
		{"category": "people", "title": "b"},
		{"category": "pulse", "title": "c"},
		{"category": "", "title": "offtopic"},
	}
	out, err := f.Process(&mashup.Context{}, mashup.Inputs{"in": items})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 2 {
		t.Errorf("filtered = %v", out["out"])
	}
	if _, err := reg.New("category-filter", mashup.Params{}); err == nil {
		t.Error("missing categories should fail")
	}
}

func TestFreshnessFilterAbsoluteWindow(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	f, err := reg.New("freshness-filter", mashup.Params{
		"after":  "2011-09-01T00:00:00Z",
		"before": "2011-09-30T00:00:00Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(day int) mashup.Item {
		return mashup.Item{"posted": time.Date(2011, 9, day, 12, 0, 0, 0, time.UTC), "title": "x"}
	}
	items := []mashup.Item{
		mk(5), mk(15),
		{"posted": time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC)},  // too old
		{"posted": time.Date(2011, 10, 5, 0, 0, 0, 0, time.UTC)}, // too new
		{"title": "no timestamp"},
	}
	out, err := f.Process(&mashup.Context{}, mashup.Inputs{"in": items})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 2 {
		t.Errorf("windowed = %d items, want 2", len(out["out"]))
	}
}

func TestFreshnessFilterLastDays(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	f, err := reg.New("freshness-filter", mashup.Params{"last_days": 7})
	if err != nil {
		t.Fatal(err)
	}
	newest := time.Date(2011, 9, 30, 0, 0, 0, 0, time.UTC)
	items := []mashup.Item{
		{"posted": newest},
		{"posted": newest.AddDate(0, 0, -3)},
		{"posted": newest.AddDate(0, 0, -10)}, // outside the last 7 days
	}
	out, _ := f.Process(&mashup.Context{}, mashup.Inputs{"in": items})
	if len(out["out"]) != 2 {
		t.Errorf("last_days = %d items, want 2", len(out["out"]))
	}
	// RFC3339 string timestamps also work.
	out, _ = f.Process(&mashup.Context{}, mashup.Inputs{"in": []mashup.Item{
		{"posted": "2011-09-29T00:00:00Z"},
		{"posted": "2011-01-01T00:00:00Z"},
	}})
	if len(out["out"]) != 1 {
		t.Errorf("string timestamps = %d items, want 1", len(out["out"]))
	}
}

func TestFreshnessFilterConfigErrors(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	if _, err := reg.New("freshness-filter", mashup.Params{}); err == nil {
		t.Error("empty config should fail")
	}
	if _, err := reg.New("freshness-filter", mashup.Params{"after": "not-a-time"}); err == nil {
		t.Error("bad after should fail")
	}
	if _, err := reg.New("freshness-filter", mashup.Params{"before": "also-bad"}); err == nil {
		t.Error("bad before should fail")
	}
}

func TestBuzzwordsService(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	bw, err := reg.New("buzzwords", mashup.Params{"top": 5})
	if err != nil {
		t.Fatal(err)
	}
	// Foreground: a synthetic stream with an injected buzzing term.
	var items []mashup.Item
	for i := 0; i < 40; i++ {
		items = append(items, mashup.Item{"text": "transport strike chaos near the station"})
	}
	out, err := bw.Process(&mashup.Context{}, mashup.Inputs{"in": items})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) == 0 || len(out["out"]) > 5 {
		t.Fatalf("buzz terms = %d", len(out["out"]))
	}
	found := false
	for _, it := range out["out"] {
		if it["label"] == "strike" || it["label"] == "chaos" {
			found = true
		}
		if _, ok := it.Float("value"); !ok {
			t.Error("buzz item missing score")
		}
	}
	if !found {
		t.Errorf("injected buzz terms not detected: %v", out["out"])
	}
}

func TestBuzzwordsInComposition(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	comp := `{
	  "name": "buzz-dashboard",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"kind": "forum"}},
	    {"id": "fresh", "type": "freshness-filter", "params": {"last_days": 60}},
	    {"id": "bw", "type": "buzzwords", "params": {"top": 8}},
	    {"id": "view", "type": "indicator-viewer", "title": "Buzz"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "fresh.in"},
	    {"from": "fresh.out", "to": "bw.in"},
	    {"from": "bw.out", "to": "view.in"}
	  ]
	}`
	parsed, err := mashup.ParseComposition([]byte(comp))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mashup.NewRuntime(parsed, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// The view may legitimately be empty (fresh comments may not buzz
	// against the whole corpus), but the pipeline must execute cleanly.
}

func TestSentimentTrendService(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	tr, err := reg.New("sentiment-trend", mashup.Params{"bucket_days": 14})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := reg.New("comments", nil)
	all, _ := src.Process(&mashup.Context{}, mashup.Inputs{})
	out, err := tr.Process(&mashup.Context{}, mashup.Inputs{"in": all["out"]})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) == 0 {
		t.Fatal("no trend items")
	}
	for _, it := range out["out"] {
		if _, ok := it["label"].(string); !ok {
			t.Error("trend item missing label")
		}
		if _, ok := it.Float("value"); !ok {
			t.Error("trend item missing slope")
		}
		if _, ok := it["alert"].(bool); !ok {
			t.Error("trend item missing alert flag")
		}
		if p, ok := it.Float("p"); !ok || p < 0 || p > 1 {
			t.Errorf("trend p-value wrong: %v", it["p"])
		}
	}
}

func TestSentimentTrendInComposition(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	comp := `{
	  "name": "trend-watch",
	  "components": [
	    {"id": "src", "type": "comments", "params": {"top_sources": 15}},
	    {"id": "tr", "type": "sentiment-trend", "params": {"bucket_days": 30}},
	    {"id": "view", "type": "indicator-viewer", "title": "Sentiment trends"}
	  ],
	  "wires": [
	    {"from": "src.out", "to": "tr.in"},
	    {"from": "tr.out", "to": "view.in"}
	  ]
	}`
	parsed, err := mashup.ParseComposition([]byte(comp))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mashup.NewRuntime(parsed, reg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.View("view"); !ok || len(v.Items) == 0 {
		t.Fatal("trend dashboard empty")
	}
}
