package services

import (
	"fmt"
	"sort"
	"time"

	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/sentiment"
)

// RegisterAnalysis adds the remaining Section 5 analysis services to the
// registry:
//
//	category-filter    simple filter on an interesting content category
//	freshness-filter   keeps comments within a specified time interval
//	buzzwords          content-based feature extraction (buzz words)
//	sentiment-trend    per-category sentiment trajectories with alerting
//
// Register (services.go) wires them automatically via NewRegistry.
func RegisterAnalysis(reg *mashup.Registry, env *Env) {
	reg.MustRegister("category-filter", func(p mashup.Params) (mashup.Component, error) {
		return newCategoryFilter(p)
	})
	reg.MustRegister("freshness-filter", func(p mashup.Params) (mashup.Component, error) {
		return newFreshnessFilter(p)
	})
	reg.MustRegister("buzzwords", func(p mashup.Params) (mashup.Component, error) {
		return newBuzzwords(env, p), nil
	})
	reg.MustRegister("sentiment-trend", func(p mashup.Params) (mashup.Component, error) {
		return newSentimentTrend(env, p), nil
	})
}

// categoryFilter keeps comment items belonging to the given categories —
// the paper's "an interesting content category" selection criterion.
// Params: "categories": ["place", ...].
type categoryFilter struct {
	allowed map[string]bool
}

func newCategoryFilter(p mashup.Params) (mashup.Component, error) {
	cats := p.StringSlice("categories")
	if len(cats) == 0 {
		return nil, fmt.Errorf("category-filter: missing categories parameter")
	}
	f := &categoryFilter{allowed: map[string]bool{}}
	for _, c := range cats {
		f.allowed[c] = true
	}
	return f, nil
}

func (f *categoryFilter) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	var out []mashup.Item
	for _, it := range in.All() {
		if cat, _ := it["category"].(string); f.allowed[cat] {
			out = append(out, it)
		}
	}
	return mashup.Outputs{"out": out}, nil
}

// freshnessFilter keeps comments posted within a time interval — the
// paper's "freshness of contents based on a specified time interval".
// Params: "after" / "before" (RFC 3339) or "last_days" (relative to the
// newest item in the stream).
type freshnessFilter struct {
	after, before time.Time
	lastDays      float64
}

func newFreshnessFilter(p mashup.Params) (mashup.Component, error) {
	f := &freshnessFilter{lastDays: p.Float("last_days", 0)}
	if s := p.String("after", ""); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return nil, fmt.Errorf("freshness-filter: bad after: %w", err)
		}
		f.after = t
	}
	if s := p.String("before", ""); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return nil, fmt.Errorf("freshness-filter: bad before: %w", err)
		}
		f.before = t
	}
	if f.after.IsZero() && f.before.IsZero() && f.lastDays <= 0 {
		return nil, fmt.Errorf("freshness-filter: provide after, before or last_days")
	}
	return f, nil
}

func itemTime(it mashup.Item) (time.Time, bool) {
	switch v := it["posted"].(type) {
	case time.Time:
		return v, true
	case string:
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			return time.Time{}, false
		}
		return t, true
	default:
		return time.Time{}, false
	}
}

func (f *freshnessFilter) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	items := in.All()
	after, before := f.after, f.before
	if f.lastDays > 0 {
		var newest time.Time
		for _, it := range items {
			if ts, ok := itemTime(it); ok && ts.After(newest) {
				newest = ts
			}
		}
		if !newest.IsZero() {
			after = newest.Add(-time.Duration(f.lastDays * 24 * float64(time.Hour)))
		}
	}
	var out []mashup.Item
	for _, it := range items {
		ts, ok := itemTime(it)
		if !ok {
			continue
		}
		if !after.IsZero() && ts.Before(after) {
			continue
		}
		if !before.IsZero() && ts.After(before) {
			continue
		}
		out = append(out, it)
	}
	return mashup.Outputs{"out": out}, nil
}

// buzzwords extracts the terms that buzz in the incoming comment stream
// against the whole corpus as background — the paper's "feature extraction
// for buzz word identification" analysis service. Emits indicator-shaped
// items {label, value, fg, bg} on "out".
// Params: "top" (default 10), "min_count" (default 2).
type buzzwords struct {
	env      *Env
	top      int
	minCount int
	bg       *buzz.Counts
}

func newBuzzwords(env *Env, p mashup.Params) *buzzwords {
	b := &buzzwords{
		env:      env,
		top:      p.Int("top", 10),
		minCount: p.Int("min_count", 2),
		bg:       buzz.NewCounts(),
	}
	// Background model: every comment in the corpus.
	for _, s := range env.World.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				b.bg.Add(c.Body)
			}
		}
	}
	return b
}

func (b *buzzwords) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	fg := buzz.NewCounts()
	for _, it := range in.All() {
		if text, _ := it["text"].(string); text != "" {
			fg.Add(text)
		}
	}
	var out []mashup.Item
	for _, term := range buzz.TopTerms(fg, b.bg, b.top, b.minCount) {
		out = append(out, mashup.Item{
			"label": term.Word,
			"title": term.Word,
			"value": term.Score,
			"fg":    term.FgCount,
			"bg":    term.BgCount,
		})
	}
	return mashup.Outputs{"out": out}, nil
}

// sentimentTrend buckets incoming comments into time windows per category,
// fits sentiment trends, and emits one item per category with the slope,
// significance and an "alert" flag — the Section 5 early-warning analysis
// ("stop negative sentiment before a large-scale diffusion").
// Params: "bucket_days" (default 7), "alpha" (default 0.05).
type sentimentTrend struct {
	env    *Env
	bucket time.Duration
	alpha  float64
}

func newSentimentTrend(env *Env, p mashup.Params) *sentimentTrend {
	return &sentimentTrend{
		env:    env,
		bucket: time.Duration(p.Float("bucket_days", 7) * 24 * float64(time.Hour)),
		alpha:  p.Float("alpha", 0.05),
	}
}

func (s *sentimentTrend) Process(_ *mashup.Context, in mashup.Inputs) (mashup.Outputs, error) {
	var items []sentiment.TimedText
	for _, it := range in.All() {
		text, _ := it["text"].(string)
		cat, _ := it["category"].(string)
		ts, ok := itemTime(it)
		if !ok || text == "" {
			continue
		}
		items = append(items, sentiment.TimedText{Category: cat, Text: text, Posted: ts})
	}
	trends := s.env.Analyzer.Trends(items, s.bucket)
	cats := make([]string, 0, len(trends))
	for cat := range trends {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	var out []mashup.Item
	for _, cat := range cats {
		tr := trends[cat]
		label := cat
		if label == "" {
			label = "(off-topic)"
		}
		out = append(out, mashup.Item{
			"label":   label,
			"title":   label,
			"value":   tr.Slope,
			"p":       tr.SlopePValue,
			"alert":   tr.Alert(s.alpha),
			"buckets": len(tr.Points),
		})
	}
	return mashup.Outputs{"out": out}, nil
}
