package services

import (
	"strings"
	"testing"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/webgen"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	world := webgen.Generate(webgen.Config{
		Seed:        51,
		NumSources:  40,
		NumUsers:    120,
		CommentText: true,
	})
	panel := analytics.Build(world, 151)
	di := quality.DomainOfInterest{Categories: world.Categories}
	return NewEnv(world, panel, di)
}

func TestNewEnvAssessesEverything(t *testing.T) {
	env := testEnv(t)
	if len(env.SourceScores) != 40 {
		t.Fatalf("source scores = %d", len(env.SourceScores))
	}
	for id, s := range env.SourceScores {
		if s < 0 || s > 1 {
			t.Errorf("source %d score %v out of range", id, s)
		}
	}
	if len(env.ContributorRecords) != 120 {
		t.Errorf("contributor records = %d", len(env.ContributorRecords))
	}
	if env.Contributors == nil || env.Analyzer == nil {
		t.Error("env incomplete")
	}
}

func TestCommentSourceByKind(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	c, err := reg.New("comments", mashup.Params{"kind": "forum"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Process(&mashup.Context{}, mashup.Inputs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) == 0 {
		t.Fatal("no forum comments")
	}
	for _, it := range out["out"] {
		if it["kind"] != "forum" {
			t.Errorf("leaked kind %v", it["kind"])
		}
		if _, ok := it["text"].(string); !ok {
			t.Error("missing text field")
		}
		if _, ok := it.Float("quality"); !ok {
			t.Error("missing quality field")
		}
	}
}

func TestCommentSourceTopSources(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	c, err := reg.New("comments", mashup.Params{"top_sources": 3})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Process(&mashup.Context{}, mashup.Inputs{})
	seen := map[int]bool{}
	for _, it := range out["out"] {
		id, _ := it.Float("source_id")
		seen[int(id)] = true
	}
	if len(seen) > 3 {
		t.Errorf("top_sources leaked %d sources", len(seen))
	}
	// The selected sources must be the globally best-scoring ones.
	var best []int
	for id := range env.SourceScores {
		best = append(best, id)
	}
	// Find the maximum score among non-selected; must not exceed the
	// minimum among selected.
	minSel, maxUnsel := 2.0, -1.0
	for id, s := range env.SourceScores {
		if seen[id] {
			if s < minSel {
				minSel = s
			}
		} else if s > maxUnsel {
			maxUnsel = s
		}
	}
	_ = best
	if maxUnsel > minSel {
		t.Errorf("top_sources not quality-ordered: unselected %v > selected %v", maxUnsel, minSel)
	}
}

func TestCommentSourceExplicitIDsAndLimit(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	c, err := reg.New("comments", mashup.Params{"source_ids": []any{float64(0), float64(1)}, "limit": 5})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Process(&mashup.Context{}, mashup.Inputs{})
	if len(out["out"]) > 5 {
		t.Errorf("limit not applied: %d", len(out["out"]))
	}
	for _, it := range out["out"] {
		id, _ := it.Float("source_id")
		if int(id) != 0 && int(id) != 1 {
			t.Errorf("leaked source %v", id)
		}
	}
	if _, err := reg.New("comments", mashup.Params{"source_ids": []any{"x"}}); err == nil {
		t.Error("bad source_ids should fail")
	}
}

func TestQualityFilter(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	f, _ := reg.New("quality-filter", mashup.Params{"min_quality": 0.5})
	items := []mashup.Item{
		{"title": "good", "quality": 0.9},
		{"title": "bad", "quality": 0.2},
		{"title": "no-quality-field"},
	}
	out, err := f.Process(&mashup.Context{}, mashup.Inputs{"in": items})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 1 || out["out"][0]["title"] != "good" {
		t.Errorf("filtered = %v", out["out"])
	}
}

func TestInfluencerFilter(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	f, err := reg.New("influencer-filter", mashup.Params{"top": 5})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := reg.New("comments", mashup.Params{})
	all, _ := src.Process(&mashup.Context{}, mashup.Inputs{})
	out, err := f.Process(&mashup.Context{}, mashup.Inputs{"in": all["out"]})
	if err != nil {
		t.Fatal(err)
	}
	roster := out["influencers"]
	if len(roster) == 0 || len(roster) > 5 {
		t.Fatalf("roster = %d", len(roster))
	}
	rosterIDs := map[int]bool{}
	for _, r := range roster {
		id, _ := r.Float("author_id")
		rosterIDs[int(id)] = true
		if _, ok := r.Float("score"); !ok {
			t.Error("roster item missing score")
		}
	}
	if len(out["out"]) == 0 {
		t.Fatal("no influencer comments survived")
	}
	for _, it := range out["out"] {
		id, _ := it.Float("author_id")
		if !rosterIDs[int(id)] {
			t.Errorf("comment by non-influencer %v passed", id)
		}
	}
	if len(out["out"]) >= len(all["out"]) {
		t.Error("filter did not reduce the stream")
	}
}

func TestInfluencerFilterBadStrategy(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	if _, err := reg.New("influencer-filter", mashup.Params{"strategy": "magic"}); err == nil {
		t.Error("unknown strategy should fail")
	}
	if _, err := reg.New("influencer-filter", mashup.Params{"strategy": "by-activity"}); err != nil {
		t.Errorf("by-activity should work: %v", err)
	}
}

func TestSentimentService(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	s, _ := reg.New("sentiment", nil)
	src, _ := reg.New("comments", mashup.Params{"kind": "blog"})
	all, _ := src.Process(&mashup.Context{}, mashup.Inputs{})
	out, err := s.Process(&mashup.Context{}, mashup.Inputs{"in": all["out"]})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != len(all["out"]) {
		t.Fatalf("scored %d of %d", len(out["out"]), len(all["out"]))
	}
	for _, it := range out["out"] {
		v, ok := it.Float("sentiment")
		if !ok || v < -1 || v > 1 {
			t.Errorf("sentiment field wrong: %v", it["sentiment"])
		}
		if _, ok := it["polarity"].(int); !ok {
			t.Error("missing polarity")
		}
	}
	if len(out["indicators"]) == 0 {
		t.Fatal("no indicators")
	}
	for _, ind := range out["indicators"] {
		if _, ok := ind["label"].(string); !ok {
			t.Error("indicator missing label")
		}
		v, ok := ind.Float("value")
		if !ok || v < -1 || v > 1 {
			t.Errorf("indicator value %v", ind["value"])
		}
	}
}

func TestSentimentGroundTruthAgreement(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	s, _ := reg.New("sentiment", nil)
	src, _ := reg.New("comments", nil)
	all, _ := src.Process(&mashup.Context{}, mashup.Inputs{})
	out, _ := s.Process(&mashup.Context{}, mashup.Inputs{"in": all["out"]})

	// Compare scored polarity against the generator's ground truth.
	truth := map[int]int{}
	for _, srcW := range env.World.Sources {
		for _, d := range srcW.Discussions {
			for _, c := range d.Comments {
				truth[c.ID] = c.Polarity
			}
		}
	}
	// Items don't carry comment IDs, so rebuild by matching: instead,
	// check aggregate agreement — the share of nonzero polarities that
	// match the generator's distribution sign-wise.
	var scoredPos, scoredNeg int
	for _, it := range out["out"] {
		switch it["polarity"].(int) {
		case 1:
			scoredPos++
		case -1:
			scoredNeg++
		}
	}
	var truePos, trueNeg int
	for _, p := range truth {
		switch p {
		case 1:
			truePos++
		case -1:
			trueNeg++
		}
	}
	// Shares within 15 percentage points of ground truth.
	n := float64(len(out["out"]))
	tp, tn := float64(truePos)/float64(len(truth)), float64(trueNeg)/float64(len(truth))
	if diff := float64(scoredPos)/n - tp; diff < -0.15 || diff > 0.15 {
		t.Errorf("positive share off: scored %.2f vs truth %.2f", float64(scoredPos)/n, tp)
	}
	if diff := float64(scoredNeg)/n - tn; diff < -0.15 || diff > 0.15 {
		t.Errorf("negative share off: scored %.2f vs truth %.2f", float64(scoredNeg)/n, tn)
	}
}

// TestFigureOneComposition wires the full Figure 1 dashboard: two data
// sources (social-network and review-site, the Twitter and TripAdvisor
// stand-ins), influencer filtering, synced list + map viewers, and a posts
// list that narrows when an influencer is selected.
func TestFigureOneComposition(t *testing.T) {
	env := testEnv(t)
	reg := NewRegistry(env)
	compJSON := `{
	  "name": "figure-1",
	  "components": [
	    {"id": "twitter", "type": "comments", "params": {"kind": "social-network"}},
	    {"id": "tripadvisor", "type": "comments", "params": {"kind": "review-site"}},
	    {"id": "merge", "type": "union"},
	    {"id": "inf", "type": "influencer-filter", "params": {"top": 8}},
	    {"id": "infList", "type": "list-viewer", "title": "Influencers"},
	    {"id": "infMap", "type": "map-viewer", "title": "Influencer locations"},
	    {"id": "postSel", "type": "event-filter", "params": {"item_key": "author_id", "payload_key": "author_id"}},
	    {"id": "postList", "type": "list-viewer", "title": "Posts"},
	    {"id": "postMap", "type": "map-viewer", "title": "Post locations"}
	  ],
	  "wires": [
	    {"from": "twitter.out", "to": "merge.in"},
	    {"from": "tripadvisor.out", "to": "merge.in2"},
	    {"from": "merge.out", "to": "inf.in"},
	    {"from": "inf.influencers", "to": "infList.in"},
	    {"from": "inf.influencers", "to": "infMap.in"},
	    {"from": "inf.out", "to": "postSel.in"},
	    {"from": "postSel.out", "to": "postList.in"},
	    {"from": "postSel.out", "to": "postMap.in"}
	  ],
	  "sync": [
	    {"source": "infList", "event": "select", "target": "postSel"}
	  ]
	}`
	comp, err := mashup.ParseComposition([]byte(compJSON))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mashup.NewRuntime(comp, reg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	infList, _ := d.View("infList")
	if len(infList.Items) == 0 {
		t.Fatal("no influencers in list")
	}
	postList, _ := d.View("postList")
	allPosts := len(postList.Items)
	if allPosts == 0 {
		t.Fatal("no influencer posts")
	}

	// Select the first influencer: the posts list must narrow to theirs.
	selected := infList.Items[0]
	d, err = rt.Emit(mashup.Event{Source: "infList", Name: "select", Payload: selected})
	if err != nil {
		t.Fatal(err)
	}
	postList, _ = d.View("postList")
	if len(postList.Items) == 0 {
		t.Fatal("selection produced no posts")
	}
	wantID, _ := selected.Float("author_id")
	for _, it := range postList.Items {
		gotID, _ := it.Float("author_id")
		if gotID != wantID {
			t.Errorf("post by %v leaked into selection of %v", gotID, wantID)
		}
	}
	if strings.TrimSpace(d.Render()) == "" {
		t.Error("dashboard renders empty")
	}
}
