package textgen

import (
	"strings"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 50; i++ {
		sa := a.Sentence("place", 1)
		sb := b.Sentence("place", 1)
		if sa != sb {
			t.Fatalf("same seed diverged: %q vs %q", sa, sb)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 30; i++ {
		if a.Sentence("pulse", 0) == b.Sentence("pulse", 0) {
			same++
		}
	}
	if same == 30 {
		t.Error("different seeds produced identical streams")
	}
}

func TestSentencePolarityWords(t *testing.T) {
	g := New(7)
	pos := map[string]bool{}
	for _, w := range PositiveWords() {
		pos[w] = true
	}
	neg := map[string]bool{}
	for _, w := range NegativeWords() {
		neg[w] = true
	}
	containsAny := func(s string, set map[string]bool) bool {
		for _, w := range strings.Fields(strings.ToLower(strings.Trim(s, "."))) {
			if set[strings.Trim(w, ".,")] {
				return true
			}
		}
		return false
	}
	for i := 0; i < 50; i++ {
		s := g.Sentence("place", 1)
		if !containsAny(s, pos) {
			t.Errorf("positive sentence lacks positive word: %q", s)
		}
		if containsAny(s, neg) {
			t.Errorf("positive sentence contains negative word: %q", s)
		}
		s = g.Sentence("place", -1)
		if !containsAny(s, neg) {
			t.Errorf("negative sentence lacks negative word: %q", s)
		}
	}
}

func TestSentenceContainsCategoryMarker(t *testing.T) {
	g := New(9)
	for _, cat := range Categories() {
		terms := map[string]bool{}
		for _, w := range CategoryTerms(cat) {
			terms[w] = true
		}
		for i := 0; i < 20; i++ {
			s := strings.ToLower(g.Sentence(cat, 0))
			found := false
			for w := range terms {
				if strings.Contains(s, w) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("sentence for %q lacks a marker: %q", cat, s)
			}
		}
	}
}

func TestOffTopicAvoidsMarkers(t *testing.T) {
	g := New(11)
	for i := 0; i < 30; i++ {
		s := strings.ToLower(g.OffTopicComment(2))
		for _, cat := range Categories() {
			for _, w := range CategoryTerms(cat) {
				if strings.Contains(s, w) {
					t.Errorf("off-topic comment contains %q marker %q: %q", cat, w, s)
				}
			}
		}
	}
}

func TestNegatedSentenceContainsNegator(t *testing.T) {
	g := New(13)
	negs := Negators()
	for i := 0; i < 20; i++ {
		s := g.NegatedSentence("people", 1)
		found := false
		for _, n := range negs {
			if strings.Contains(s, " "+n+" ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("negated sentence lacks a negator: %q", s)
		}
	}
}

func TestCommentSentenceCount(t *testing.T) {
	g := New(15)
	c := g.Comment("pulse", 1, 4)
	if n := strings.Count(c, "."); n != 4 {
		t.Errorf("comment has %d sentences, want 4: %q", n, c)
	}
	// Zero means 1..3 sentences.
	c = g.Comment("pulse", 1, 0)
	if n := strings.Count(c, "."); n < 1 || n > 3 {
		t.Errorf("auto comment has %d sentences", n)
	}
}

func TestTags(t *testing.T) {
	g := New(17)
	tags := g.Tags("place", 4)
	if len(tags) != 4 {
		t.Fatalf("got %d tags, want 4", len(tags))
	}
	if tags[0] != "place" {
		t.Errorf("first tag should be the category, got %q", tags[0])
	}
	seen := map[string]bool{}
	for _, tag := range tags {
		if seen[tag] {
			t.Errorf("duplicate tag %q", tag)
		}
		seen[tag] = true
	}
}

func TestTagsZero(t *testing.T) {
	g := New(18)
	if tags := g.Tags("place", 0); len(tags) != 0 {
		t.Errorf("Tags(0) = %v", tags)
	}
}

func TestTitleCapitalized(t *testing.T) {
	g := New(19)
	for i := 0; i < 10; i++ {
		ti := g.Title("presence")
		if ti == "" || ti[0] < 'A' || ti[0] > 'Z' {
			t.Errorf("title not capitalized: %q", ti)
		}
	}
}

func TestUserNameFormat(t *testing.T) {
	g := New(21)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		u := g.UserName()
		if len(u) < 5 {
			t.Errorf("suspicious username %q", u)
		}
		seen[u] = true
	}
	if len(seen) < 10 {
		t.Errorf("usernames not diverse enough: %d distinct in 50", len(seen))
	}
}

func TestLexicaAreCopies(t *testing.T) {
	p := PositiveWords()
	p[0] = "mutated"
	if PositiveWords()[0] == "mutated" {
		t.Error("PositiveWords must return a copy")
	}
	ct := CategoryTerms("place")
	ct[0] = "mutated"
	if CategoryTerms("place")[0] == "mutated" {
		t.Error("CategoryTerms must return a copy")
	}
}

func TestCategoriesStable(t *testing.T) {
	c := Categories()
	if len(c) != 6 {
		t.Fatalf("expected the 6 Anholt categories, got %v", c)
	}
	c[0] = "mutated"
	if Categories()[0] == "mutated" {
		t.Error("Categories must return a copy")
	}
}
