// Package textgen synthesizes deterministic, category-topical English-like
// text for the synthetic Web 2.0 corpus. The generated comments carry
// controllable sentiment polarity by drawing from positive/negative opinion
// lexica that the sentiment analyzer (internal/sentiment) also understands,
// so end-to-end sentiment experiments have a known ground truth.
package textgen

import (
	"math/rand"
	"strings"
)

// Category names follow the Anholt competitive-identity model the paper
// adopts for its tourism Domain of Interest (footnote 2 of the paper).
var AnholtCategories = []string{
	"presence", "place", "potential", "pulse", "people", "prerequisites",
}

// categoryTerms are topic words that mark a sentence as belonging to a
// content category. The crawler-side relevance measures detect categories
// by these markers.
var categoryTerms = map[string][]string{
	"presence":      {"reputation", "landmark", "fame", "icon", "skyline", "cathedral", "duomo", "museum"},
	"place":         {"park", "square", "district", "architecture", "street", "garden", "canal", "piazza"},
	"potential":     {"business", "startup", "investment", "conference", "expo", "university", "opportunity", "job"},
	"pulse":         {"nightlife", "concert", "festival", "fashion", "event", "gallery", "aperitivo", "show"},
	"people":        {"locals", "hospitality", "community", "guide", "crowd", "staff", "waiter", "host"},
	"prerequisites": {"hotel", "transport", "metro", "airport", "taxi", "wifi", "accommodation", "restaurant"},
}

var positiveWords = []string{
	"wonderful", "excellent", "amazing", "great", "lovely", "fantastic",
	"charming", "delightful", "superb", "friendly", "clean", "beautiful",
	"impressive", "outstanding", "pleasant", "memorable", "stunning", "perfect",
}

var negativeWords = []string{
	"terrible", "awful", "disappointing", "dirty", "overpriced", "rude",
	"crowded", "noisy", "mediocre", "poor", "horrible", "unpleasant",
	"chaotic", "bland", "unfriendly", "dreadful", "shabby", "broken",
}

var neutralAdjectives = []string{
	"large", "small", "old", "new", "central", "typical", "famous", "local",
	"modern", "historic", "busy", "quiet",
}

var commonNouns = []string{
	"visit", "trip", "experience", "tour", "stay", "walk", "afternoon",
	"morning", "weekend", "evening", "day", "view",
}

var commonVerbs = []string{
	"visited", "enjoyed", "explored", "discovered", "recommended", "booked",
	"found", "tried", "loved", "reviewed", "described", "compared",
}

var connectives = []string{
	"and", "but", "while", "although", "because", "so",
}

var intensifiers = []string{"very", "really", "quite", "extremely", "rather"}

var negators = []string{"not", "never", "hardly"}

// Generator produces deterministic text from its own random stream.
type Generator struct {
	rng *rand.Rand
}

// New returns a Generator seeded with the given seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// NewFromRand returns a Generator drawing from an existing random stream.
func NewFromRand(rng *rand.Rand) *Generator { return &Generator{rng: rng} }

// Categories returns the list of known content categories.
func Categories() []string {
	return append([]string(nil), AnholtCategories...)
}

// CategoryTerms returns the topical marker words of a category (nil for an
// unknown category).
func CategoryTerms(category string) []string {
	terms := categoryTerms[category]
	return append([]string(nil), terms...)
}

// PositiveWords and NegativeWords expose copies of the opinion lexica so the
// sentiment package can share ground truth with the generator.
func PositiveWords() []string { return append([]string(nil), positiveWords...) }

// NegativeWords returns a copy of the negative opinion lexicon.
func NegativeWords() []string { return append([]string(nil), negativeWords...) }

// Intensifiers returns a copy of the intensifier list.
func Intensifiers() []string { return append([]string(nil), intensifiers...) }

// Negators returns a copy of the negator list.
func Negators() []string { return append([]string(nil), negators...) }

func (g *Generator) pick(words []string) string {
	return words[g.rng.Intn(len(words))]
}

// topicTerm returns a marker word for the category, falling back to a
// common noun when the category is unknown.
func (g *Generator) topicTerm(category string) string {
	if terms, ok := categoryTerms[category]; ok {
		return g.pick(terms)
	}
	return g.pick(commonNouns)
}

// Sentence produces one topical sentence for the category with the given
// polarity: negative < 0, neutral == 0, positive > 0.
func (g *Generator) Sentence(category string, polarity int) string {
	var adj string
	switch {
	case polarity > 0:
		adj = g.pick(positiveWords)
	case polarity < 0:
		adj = g.pick(negativeWords)
	default:
		adj = g.pick(neutralAdjectives)
	}
	if g.rng.Float64() < 0.25 {
		adj = g.pick(intensifiers) + " " + adj
	}
	subject := g.topicTerm(category)
	verb := g.pick(commonVerbs)
	noun := g.pick(commonNouns)
	switch g.rng.Intn(3) {
	case 0:
		return "The " + subject + " was " + adj + " during our " + noun + "."
	case 1:
		return "We " + verb + " the " + subject + " and it felt " + adj + "."
	default:
		return "A " + adj + " " + subject + " made the " + noun + " special."
	}
}

// NegatedSentence produces a sentence whose surface polarity word is negated
// ("not wonderful"), used to test the sentiment analyzer's negation
// handling.
func (g *Generator) NegatedSentence(category string, polarity int) string {
	var adj string
	if polarity > 0 {
		adj = g.pick(positiveWords)
	} else {
		adj = g.pick(negativeWords)
	}
	subject := g.topicTerm(category)
	return "The " + subject + " was " + g.pick(negators) + " " + adj + "."
}

// Comment produces a multi-sentence comment about the category with an
// overall polarity. Sentences lean toward the requested polarity but a
// minority may be neutral, mimicking real comments.
func (g *Generator) Comment(category string, polarity int, sentences int) string {
	if sentences <= 0 {
		sentences = 1 + g.rng.Intn(3)
	}
	parts := make([]string, 0, sentences)
	for i := 0; i < sentences; i++ {
		p := polarity
		if g.rng.Float64() < 0.3 {
			p = 0
		}
		parts = append(parts, g.Sentence(category, p))
	}
	return strings.Join(parts, " ")
}

// OffTopicComment produces a comment that matches no category's markers,
// used to exercise the paper's redefined accuracy measure (out-of-scope
// discussions count as errors).
func (g *Generator) OffTopicComment(sentences int) string {
	if sentences <= 0 {
		sentences = 1 + g.rng.Intn(2)
	}
	parts := make([]string, 0, sentences)
	for i := 0; i < sentences; i++ {
		parts = append(parts, "My "+g.pick(commonNouns)+" was "+g.pick(neutralAdjectives)+
			" "+g.pick(connectives)+" I "+g.pick(commonVerbs)+" nothing in particular.")
	}
	return strings.Join(parts, " ")
}

// Title produces a short discussion title for a category.
func (g *Generator) Title(category string) string {
	return capitalize(g.topicTerm(category)) + " " + g.pick([]string{
		"impressions", "tips", "review", "thoughts", "advice", "question", "report",
	})
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Tags produces n distinct tags mixing the category name with topical terms.
func (g *Generator) Tags(category string, n int) []string {
	seen := map[string]bool{}
	tags := make([]string, 0, n)
	if n > 0 {
		tags = append(tags, category)
		seen[category] = true
	}
	terms := categoryTerms[category]
	for len(tags) < n {
		var tag string
		if len(terms) > 0 && g.rng.Float64() < 0.7 {
			tag = g.pick(terms)
		} else {
			tag = g.pick(commonNouns)
		}
		if !seen[tag] {
			seen[tag] = true
			tags = append(tags, tag)
		}
		if len(seen) >= len(terms)+len(commonNouns) {
			break
		}
	}
	return tags
}

// syndicationLeads are the short attribution markers a syndicated copy
// is prefixed with — single tokens, RT-style, so a prefixed copy keeps
// every original shingle and gains exactly one: it lands near — but not
// at — its original's simhash, the paraphrase tier of the correlation
// engine's ground truth. Multi-word leads would shift enough shingles to
// push short comments past the story tier entirely.
var syndicationLeads = []string{
	"RT:",
	"Via:",
	"Repost:",
	"Quoting:",
	"Syndicated:",
}

// SyndicationLead produces the attribution phrase prefixed to a
// syndicated (near-duplicate) copy of another source's comment.
func (g *Generator) SyndicationLead() string {
	return g.pick(syndicationLeads)
}

// UserName produces a deterministic pseudonymous user handle.
func (g *Generator) UserName() string {
	first := []string{"milan", "travel", "urban", "city", "euro", "globe", "vista", "meta", "nova", "terra"}
	second := []string{"fan", "walker", "guide", "nomad", "scout", "critic", "pilgrim", "seeker", "voyager", "insider"}
	return g.pick(first) + g.pick(second) + string(rune('0'+g.rng.Intn(10))) + string(rune('0'+g.rng.Intn(10)))
}
