// Package buzz implements the content-based analysis service the paper's
// Section 5 lists alongside filtering and quality selection: "feature
// extraction for buzz word identification". Buzz words are terms whose
// frequency in a foreground stream (a category, a time window, a source) is
// anomalously high against a background corpus, scored with the Dunning
// log-likelihood ratio — the standard keyword-extraction statistic for
// exactly this task.
package buzz

import (
	"math"
	"sort"
	"strings"
)

// stopwords are high-frequency function words excluded from buzz scoring.
var stopwords = map[string]bool{
	"the": true, "and": true, "was": true, "our": true, "it": true,
	"a": true, "an": true, "of": true, "in": true, "to": true, "we": true,
	"during": true, "made": true, "felt": true, "but": true, "while": true,
	"because": true, "so": true, "although": true, "not": true, "never": true,
	"hardly": true, "very": true, "really": true, "quite": true,
	"extremely": true, "rather": true, "special": true, "is": true,
	"that": true, "this": true, "i": true, "my": true, "nothing": true,
	"particular": true,
}

// Term is one scored buzz word.
type Term struct {
	Word string
	// Score is the Dunning log-likelihood ratio of the foreground
	// frequency against the background (higher = more distinctive).
	Score float64
	// FgCount and BgCount are the raw occurrence counts.
	FgCount, BgCount int
}

// Counts is a simple term-frequency accumulator.
type Counts struct {
	freq  map[string]int
	total int
}

// NewCounts returns an empty accumulator.
func NewCounts() *Counts { return &Counts{freq: map[string]int{}} }

// Add tokenizes text and accumulates non-stopword terms.
func (c *Counts) Add(text string) {
	for _, tok := range tokenize(text) {
		if stopwords[tok] || len(tok) < 3 {
			continue
		}
		c.freq[tok]++
		c.total++
	}
}

// Merge folds another accumulator into c. Term frequencies are integral,
// so the result is independent of merge order — parallel scanners can
// accumulate partial Counts and fold them in any sequence.
func (c *Counts) Merge(other *Counts) {
	if other == nil {
		return
	}
	for term, n := range other.freq {
		c.freq[term] += n
	}
	c.total += other.total
}

// Total returns the accumulated token count.
func (c *Counts) Total() int { return c.total }

// Count returns the occurrences of one term.
func (c *Counts) Count(term string) int { return c.freq[term] }

// tokenize lowercases and splits into letter runs.
func tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
			continue
		}
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	if b.Len() > 0 {
		tokens = append(tokens, b.String())
	}
	return tokens
}

// TopTerms scores every foreground term against the background and returns
// the k most distinctive ones (ties broken alphabetically for
// determinism). Terms must appear at least minCount times in the
// foreground; background-only terms never buzz.
func TopTerms(fg, bg *Counts, k, minCount int) []Term {
	if minCount <= 0 {
		minCount = 2
	}
	var terms []Term
	for word, fc := range fg.freq {
		if fc < minCount {
			continue
		}
		bc := bg.freq[word]
		score := logLikelihoodRatio(fc, fg.total, bc, bg.total)
		// Only overrepresented terms buzz: require fg rate > bg rate.
		if fg.total == 0 || bg.total == 0 {
			continue
		}
		if float64(fc)/float64(fg.total) <= float64(bc)/float64(bg.total) {
			continue
		}
		terms = append(terms, Term{Word: word, Score: score, FgCount: fc, BgCount: bc})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Score != terms[j].Score {
			return terms[i].Score > terms[j].Score
		}
		return terms[i].Word < terms[j].Word
	})
	if k > 0 && len(terms) > k {
		terms = terms[:k]
	}
	return terms
}

// logLikelihoodRatio is Dunning's G² statistic for a term occurring a
// times in a corpus of size n1 and b times in a corpus of size n2.
func logLikelihoodRatio(a, n1, b, n2 int) float64 {
	if n1 == 0 || n2 == 0 {
		return 0
	}
	e1 := float64(n1) * float64(a+b) / float64(n1+n2)
	e2 := float64(n2) * float64(a+b) / float64(n1+n2)
	g := 2 * (xlogx(float64(a), e1) + xlogx(float64(b), e2))
	if math.IsNaN(g) || g < 0 {
		return 0
	}
	return g
}

// xlogx computes x * ln(x/e), with the 0*ln(0) = 0 convention.
func xlogx(x, e float64) float64 {
	if x == 0 || e == 0 {
		return 0
	}
	return x * math.Log(x/e)
}
