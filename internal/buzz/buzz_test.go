package buzz

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCountsBasics(t *testing.T) {
	c := NewCounts()
	c.Add("The duomo was wonderful, the duomo was crowded!")
	if c.Count("duomo") != 2 {
		t.Errorf("duomo count = %d", c.Count("duomo"))
	}
	if c.Count("the") != 0 {
		t.Error("stopwords must not count")
	}
	if c.Count("it") != 0 {
		t.Error("short words must not count")
	}
	if c.Total() != 4 { // duomo x2, wonderful, crowded
		t.Errorf("total = %d, want 4", c.Total())
	}
}

func TestCountsMerge(t *testing.T) {
	a, b := NewCounts(), NewCounts()
	a.Add("duomo wonderful duomo")
	b.Add("duomo crowded")
	whole := NewCounts()
	whole.Add("duomo wonderful duomo")
	whole.Add("duomo crowded")
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.Count("duomo") != whole.Count("duomo") || a.Total() != whole.Total() {
		t.Errorf("merged counts = (%d, %d), want (%d, %d)",
			a.Count("duomo"), a.Total(), whole.Count("duomo"), whole.Total())
	}
}

func TestTopTermsFindsInjectedBuzz(t *testing.T) {
	bg := NewCounts()
	fg := NewCounts()
	base := "the hotel was clean and the metro was busy and the park was lovely"
	for i := 0; i < 200; i++ {
		bg.Add(base)
		fg.Add(base)
	}
	// Inject a buzzing term into the foreground only.
	for i := 0; i < 50; i++ {
		fg.Add("strike strike transport strike")
	}
	top := TopTerms(fg, bg, 5, 2)
	if len(top) == 0 {
		t.Fatal("no buzz terms found")
	}
	if top[0].Word != "strike" {
		t.Errorf("top buzz = %q, want strike (list: %v)", top[0].Word, top)
	}
	if top[0].FgCount != 150 || top[0].BgCount != 0 {
		t.Errorf("counts = %d/%d", top[0].FgCount, top[0].BgCount)
	}
	// "transport" buzzes too, behind "strike".
	found := false
	for _, tm := range top {
		if tm.Word == "transport" {
			found = true
		}
	}
	if !found {
		t.Error("transport should buzz as well")
	}
}

func TestTopTermsIgnoresUnderrepresented(t *testing.T) {
	bg := NewCounts()
	fg := NewCounts()
	for i := 0; i < 100; i++ {
		bg.Add("festival festival festival concert")
		// concert rate in fg (1/4) equals bg (1/4): not overrepresented.
		fg.Add("concert museum museum museum")
	}
	for _, tm := range TopTerms(fg, bg, 10, 2) {
		if tm.Word == "festival" {
			t.Error("background-only term must not buzz")
		}
		if tm.Word == "concert" {
			t.Error("term with equal fg and bg rates must not buzz")
		}
	}
}

func TestTopTermsMinCount(t *testing.T) {
	bg := NewCounts()
	bg.Add("hotel hotel hotel hotel")
	fg := NewCounts()
	fg.Add("rare hotel hotel")
	for _, tm := range TopTerms(fg, bg, 10, 2) {
		if tm.Word == "rare" {
			t.Error("singleton must not pass minCount=2")
		}
	}
	// With minCount 1 it may appear.
	top := TopTerms(fg, bg, 10, 1)
	found := false
	for _, tm := range top {
		if tm.Word == "rare" {
			found = true
		}
	}
	if !found {
		t.Error("minCount=1 should admit the singleton")
	}
}

func TestTopTermsKBound(t *testing.T) {
	bg := NewCounts()
	fg := NewCounts()
	bg.Add("filler filler filler")
	fg.Add(strings.Repeat("alpha beta gamma delta epsilon ", 5))
	top := TopTerms(fg, bg, 2, 2)
	if len(top) > 2 {
		t.Errorf("k not respected: %d", len(top))
	}
}

func TestTopTermsEmptyInputs(t *testing.T) {
	if got := TopTerms(NewCounts(), NewCounts(), 5, 1); len(got) != 0 {
		t.Errorf("empty corpora should yield nothing: %v", got)
	}
}

func TestLogLikelihoodProperties(t *testing.T) {
	// G² is non-negative and zero when rates are equal.
	f := func(a, b uint8) bool {
		fa, fb := int(a)+1, int(b)+1
		g := logLikelihoodRatio(fa, fa*10, fb, fb*10)
		// Equal rates (a/10a == b/10b): statistic ~ 0.
		if g > 1e-9 {
			return false
		}
		// Unequal: still non-negative.
		return logLikelihoodRatio(fa, 1000, fb, 50) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotoneInOverrepresentation(t *testing.T) {
	// More foreground occurrences of the same term (same totals) cannot
	// lower the score.
	prev := -1.0
	for fc := 5; fc <= 50; fc += 5 {
		g := logLikelihoodRatio(fc, 1000, 5, 1000)
		if g < prev-1e-9 {
			t.Errorf("score decreased at fc=%d: %v < %v", fc, g, prev)
		}
		prev = g
	}
}
