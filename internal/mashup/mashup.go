// Package mashup implements the quality-driven mashup framework of
// Section 5 (substitution S6 in DESIGN.md for the DashMash platform of
// reference [9]). It provides the component model — data services, filters,
// analyzers and viewers wired into event-aware dataflow graphs — a JSON
// composition DSL, a registry of component types, and a runtime executor
// with the viewer-synchronisation semantics Figure 1 relies on (selecting
// an influencer in a list refreshes the synced map and post viewers).
//
// The package is domain-agnostic: concrete components wrapping the quality
// model, the sentiment analyzer and the data sources live in
// internal/services and register themselves into a Registry.
package mashup

import (
	"errors"
	"fmt"
	"sort"
)

// Item is the unit of data flowing along wires: a flat record. Components
// agree on field names by convention (documented per component type).
type Item map[string]any

// Clone returns a shallow copy of the item.
func (it Item) Clone() Item {
	out := make(Item, len(it))
	for k, v := range it {
		out[k] = v
	}
	return out
}

// String returns the item's "title" or "text" field when present, for
// rendering.
func (it Item) String() string {
	for _, k := range []string{"title", "text", "name"} {
		if v, ok := it[k].(string); ok && v != "" {
			return v
		}
	}
	return fmt.Sprintf("%v", map[string]any(it))
}

// Float fetches a numeric field, accepting the numeric types JSON decoding
// and Go literals produce.
func (it Item) Float(key string) (float64, bool) {
	switch v := it[key].(type) {
	case float64:
		return v, true
	case float32:
		return float64(v), true
	case int:
		return float64(v), true
	case int64:
		return float64(v), true
	default:
		return 0, false
	}
}

// Params are the JSON-decoded configuration of one component instance.
type Params map[string]any

// Float fetches a numeric parameter with a default.
func (p Params) Float(key string, def float64) float64 {
	switch v := p[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	default:
		return def
	}
}

// Int fetches an integer parameter with a default.
func (p Params) Int(key string, def int) int {
	switch v := p[key].(type) {
	case float64:
		return int(v)
	case int:
		return v
	default:
		return def
	}
}

// String fetches a string parameter with a default.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// StringSlice fetches a string-list parameter ([]any from JSON or
// []string from Go code).
func (p Params) StringSlice(key string) []string {
	switch v := p[key].(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	default:
		return nil
	}
}

// Inputs maps input port names to the items arriving on them.
type Inputs map[string][]Item

// All concatenates every input port in deterministic port order (the
// common case for components with one logical input).
func (in Inputs) All() []Item {
	ports := make([]string, 0, len(in))
	for p := range in {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	var out []Item
	for _, p := range ports {
		out = append(out, in[p]...)
	}
	return out
}

// Outputs maps output port names to produced items.
type Outputs map[string][]Item

// Event is a user-interface event (e.g. a selection in a viewer) that
// propagates along sync couplings.
type Event struct {
	// Source is the component ID that emitted the event.
	Source string
	// Name is the event type, e.g. "select".
	Name string
	// Payload is the item the event is about.
	Payload Item
}

// Context carries per-run information into components.
type Context struct {
	// Event is non-nil when this component is the target of a sync
	// coupling fired by the given event; the component decides how to
	// react (typically by filtering to the selection).
	Event *Event
}

// Component is one node of a mashup. Process consumes the items on its
// input ports and produces items on its output ports. Data services ignore
// inputs; viewers typically pass items through after recording their view.
type Component interface {
	Process(ctx *Context, in Inputs) (Outputs, error)
}

// Viewer is implemented by components that render a view; the runtime
// collects views into the Dashboard after each run.
type Viewer interface {
	Component
	View() View
}

// View is a rendered widget state.
type View struct {
	ComponentID string
	Title       string
	Kind        string // "list", "map", "indicator", ...
	Items       []Item
	// Rendered is a plain-text rendering for terminal dashboards.
	Rendered string
}

// Factory builds a component instance from its parameters.
type Factory func(p Params) (Component, error)

// Registry maps component type names to factories.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: map[string]Factory{}}
}

// ErrDuplicateType is returned when registering a type name twice.
var ErrDuplicateType = errors.New("mashup: duplicate component type")

// ErrUnknownType is returned when a composition references an unregistered
// component type.
var ErrUnknownType = errors.New("mashup: unknown component type")

// Register adds a component type.
func (r *Registry) Register(typeName string, f Factory) error {
	if _, dup := r.factories[typeName]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateType, typeName)
	}
	r.factories[typeName] = f
	return nil
}

// MustRegister is Register that panics on error, for package-level setup.
func (r *Registry) MustRegister(typeName string, f Factory) {
	if err := r.Register(typeName, f); err != nil {
		panic(err)
	}
}

// New instantiates a component of the given type.
func (r *Registry) New(typeName string, p Params) (Component, error) {
	f, ok := r.factories[typeName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	return f(p)
}

// Types lists registered type names, sorted.
func (r *Registry) Types() []string {
	out := make([]string, 0, len(r.factories))
	for t := range r.factories {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
