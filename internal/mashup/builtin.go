package mashup

import (
	"fmt"
	"sort"
	"strings"
)

// RegisterBuiltins registers the domain-agnostic component types every
// composition can use: static sources, set operations, filters, sorting,
// limiting, event-driven selection filters, and the three generic viewers
// (list, map, indicator).
func RegisterBuiltins(reg *Registry) {
	reg.MustRegister("static-source", newStaticSource)
	reg.MustRegister("union", newUnion)
	reg.MustRegister("field-filter", newFieldFilter)
	reg.MustRegister("sort", newSort)
	reg.MustRegister("limit", newLimit)
	reg.MustRegister("event-filter", newEventFilter)
	reg.MustRegister("list-viewer", newListViewer)
	reg.MustRegister("map-viewer", newMapViewer)
	reg.MustRegister("indicator-viewer", newIndicatorViewer)
}

// staticSource emits a fixed item list (params: "items": [...]), mainly
// for tests and demo compositions.
type staticSource struct{ items []Item }

func newStaticSource(p Params) (Component, error) {
	raw, ok := p["items"].([]any)
	if !ok {
		if pre, ok2 := p["items"].([]Item); ok2 {
			return &staticSource{items: pre}, nil
		}
		return nil, fmt.Errorf("static-source: missing items parameter")
	}
	src := &staticSource{}
	for i, e := range raw {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("static-source: item %d is not an object", i)
		}
		src.items = append(src.items, Item(m))
	}
	return src, nil
}

func (s *staticSource) Process(*Context, Inputs) (Outputs, error) {
	return Outputs{"out": s.items}, nil
}

// union concatenates all inputs.
type union struct{}

func newUnion(Params) (Component, error) { return union{}, nil }

func (union) Process(_ *Context, in Inputs) (Outputs, error) {
	return Outputs{"out": in.All()}, nil
}

// fieldFilter keeps items satisfying field <op> value
// (ops: eq, ne, gt, gte, lt, lte, contains).
type fieldFilter struct {
	field, op string
	value     any
}

func newFieldFilter(p Params) (Component, error) {
	f := &fieldFilter{
		field: p.String("field", ""),
		op:    p.String("op", "eq"),
		value: p["value"],
	}
	if f.field == "" {
		return nil, fmt.Errorf("field-filter: missing field parameter")
	}
	switch f.op {
	case "eq", "ne", "gt", "gte", "lt", "lte", "contains":
	default:
		return nil, fmt.Errorf("field-filter: unknown op %q", f.op)
	}
	return f, nil
}

func (f *fieldFilter) Process(_ *Context, in Inputs) (Outputs, error) {
	var out []Item
	for _, it := range in.All() {
		if f.match(it) {
			out = append(out, it)
		}
	}
	return Outputs{"out": out}, nil
}

func (f *fieldFilter) match(it Item) bool {
	switch f.op {
	case "contains":
		s, _ := it[f.field].(string)
		want, _ := f.value.(string)
		return strings.Contains(strings.ToLower(s), strings.ToLower(want))
	case "eq", "ne":
		eq := equalValues(it[f.field], f.value)
		if f.op == "eq" {
			return eq
		}
		return !eq
	default:
		a, okA := it.Float(f.field)
		b, okB := toFloat(f.value)
		if !okA || !okB {
			return false
		}
		switch f.op {
		case "gt":
			return a > b
		case "gte":
			return a >= b
		case "lt":
			return a < b
		default:
			return a <= b
		}
	}
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

func equalValues(a, b any) bool {
	if fa, ok := toFloat(a); ok {
		if fb, ok2 := toFloat(b); ok2 {
			return fa == fb
		}
	}
	return fmt.Sprintf("%v", a) == fmt.Sprintf("%v", b)
}

// sortComponent orders items by a field (params: "by", "desc").
type sortComponent struct {
	by   string
	desc bool
}

func newSort(p Params) (Component, error) {
	s := &sortComponent{by: p.String("by", "")}
	if s.by == "" {
		return nil, fmt.Errorf("sort: missing by parameter")
	}
	if d, ok := p["desc"].(bool); ok {
		s.desc = d
	}
	return s, nil
}

func (s *sortComponent) Process(_ *Context, in Inputs) (Outputs, error) {
	items := append([]Item(nil), in.All()...)
	sort.SliceStable(items, func(i, j int) bool {
		a, okA := items[i].Float(s.by)
		b, okB := items[j].Float(s.by)
		var less bool
		switch {
		case okA && okB:
			less = a < b
		default:
			less = fmt.Sprintf("%v", items[i][s.by]) < fmt.Sprintf("%v", items[j][s.by])
		}
		if s.desc {
			return !less
		}
		return less
	})
	return Outputs{"out": items}, nil
}

// limit truncates to the first n items (param "n", default 10).
type limit struct{ n int }

func newLimit(p Params) (Component, error) {
	n := p.Int("n", 10)
	if n < 0 {
		return nil, fmt.Errorf("limit: negative n")
	}
	return &limit{n: n}, nil
}

func (l *limit) Process(_ *Context, in Inputs) (Outputs, error) {
	items := in.All()
	if len(items) > l.n {
		items = items[:l.n]
	}
	return Outputs{"out": items}, nil
}

// eventFilter passes everything through until it receives a sync event;
// then it keeps only the items whose item_key matches the event payload's
// payload_key. This is the generic coupling used to narrow a posts view to
// the influencer selected in another viewer.
type eventFilter struct {
	itemKey, payloadKey string
}

func newEventFilter(p Params) (Component, error) {
	f := &eventFilter{
		itemKey:    p.String("item_key", "id"),
		payloadKey: p.String("payload_key", ""),
	}
	if f.payloadKey == "" {
		f.payloadKey = f.itemKey
	}
	return f, nil
}

func (f *eventFilter) Process(ctx *Context, in Inputs) (Outputs, error) {
	items := in.All()
	if ctx == nil || ctx.Event == nil || ctx.Event.Payload == nil {
		return Outputs{"out": items}, nil
	}
	want, ok := ctx.Event.Payload[f.payloadKey]
	if !ok {
		return Outputs{"out": items}, nil
	}
	var out []Item
	for _, it := range items {
		if equalValues(it[f.itemKey], want) {
			out = append(out, it)
		}
	}
	return Outputs{"out": out}, nil
}

// listViewer renders items as numbered lines and passes them through.
type listViewer struct {
	title  string
	fields []string
	items  []Item
}

func newListViewer(p Params) (Component, error) {
	return &listViewer{
		title:  p.String("title", ""),
		fields: p.StringSlice("fields"),
	}, nil
}

func (v *listViewer) Process(_ *Context, in Inputs) (Outputs, error) {
	v.items = in.All()
	return Outputs{"out": v.items}, nil
}

func (v *listViewer) View() View {
	var b strings.Builder
	for i, it := range v.items {
		if len(v.fields) > 0 {
			parts := make([]string, 0, len(v.fields))
			for _, f := range v.fields {
				parts = append(parts, fmt.Sprintf("%s=%v", f, it[f]))
			}
			fmt.Fprintf(&b, "%2d. %s\n", i+1, strings.Join(parts, " "))
		} else {
			fmt.Fprintf(&b, "%2d. %s\n", i+1, it.String())
		}
	}
	if len(v.items) == 0 {
		b.WriteString("(empty)\n")
	}
	return View{Title: v.title, Kind: "list", Items: v.items, Rendered: b.String()}
}

// mapViewer renders geo-tagged items ("lat"/"lon" fields) as coordinates,
// the terminal stand-in for Figure 1's Google Maps widgets.
type mapViewer struct {
	title string
	items []Item
}

func newMapViewer(p Params) (Component, error) {
	return &mapViewer{title: p.String("title", "")}, nil
}

func (v *mapViewer) Process(_ *Context, in Inputs) (Outputs, error) {
	v.items = nil
	for _, it := range in.All() {
		if _, ok := it.Float("lat"); !ok {
			continue
		}
		if _, ok := it.Float("lon"); !ok {
			continue
		}
		v.items = append(v.items, it)
	}
	return Outputs{"out": v.items}, nil
}

func (v *mapViewer) View() View {
	var b strings.Builder
	for _, it := range v.items {
		lat, _ := it.Float("lat")
		lon, _ := it.Float("lon")
		fmt.Fprintf(&b, "pin (%.4f, %.4f) %s\n", lat, lon, it.String())
	}
	if len(v.items) == 0 {
		b.WriteString("(no geo-tagged items)\n")
	}
	return View{Title: v.title, Kind: "map", Items: v.items, Rendered: b.String()}
}

// indicatorViewer renders label/value pairs ("label", "value" fields), the
// widget for sentiment indicators.
type indicatorViewer struct {
	title string
	items []Item
}

func newIndicatorViewer(p Params) (Component, error) {
	return &indicatorViewer{title: p.String("title", "")}, nil
}

func (v *indicatorViewer) Process(_ *Context, in Inputs) (Outputs, error) {
	v.items = in.All()
	return Outputs{"out": v.items}, nil
}

func (v *indicatorViewer) View() View {
	var b strings.Builder
	for _, it := range v.items {
		label, _ := it["label"].(string)
		if label == "" {
			label = it.String()
		}
		if val, ok := it.Float("value"); ok {
			fmt.Fprintf(&b, "%-24s %+.3f\n", label, val)
		} else {
			fmt.Fprintf(&b, "%-24s %v\n", label, it["value"])
		}
	}
	if len(v.items) == 0 {
		b.WriteString("(no indicators)\n")
	}
	return View{Title: v.title, Kind: "indicator", Items: v.items, Rendered: b.String()}
}
