package mashup

import (
	"fmt"
	"sort"
	"strings"
)

// Runtime is an instantiated, executable composition.
type Runtime struct {
	comp       *Composition
	components map[string]Component
	order      []string            // topological execution order
	inWires    map[string][]Wire   // target component -> incoming wires
	downstream map[string][]string // component -> direct successors
	syncs      []Sync
	// lastOutputs caches each component's outputs from the latest run so
	// event propagation can re-run only the affected subgraph.
	lastOutputs map[string]Outputs
}

// NewRuntime instantiates every component of the composition from the
// registry and prepares the execution plan.
func NewRuntime(comp *Composition, reg *Registry) (*Runtime, error) {
	if err := comp.Validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		comp:        comp,
		components:  map[string]Component{},
		inWires:     map[string][]Wire{},
		downstream:  map[string][]string{},
		syncs:       comp.Syncs,
		lastOutputs: map[string]Outputs{},
	}
	for _, spec := range comp.Components {
		c, err := reg.New(spec.Type, spec.Params)
		if err != nil {
			return nil, fmt.Errorf("mashup: component %q: %w", spec.ID, err)
		}
		rt.components[spec.ID] = c
	}
	for _, w := range comp.Wires {
		toComp, _ := endpoint(w.To, "in")
		fromComp, _ := endpoint(w.From, "out")
		rt.inWires[toComp] = append(rt.inWires[toComp], w)
		rt.downstream[fromComp] = append(rt.downstream[fromComp], toComp)
	}
	order, err := rt.topoOrder()
	if err != nil {
		return nil, err
	}
	rt.order = order
	return rt, nil
}

// topoOrder computes a deterministic topological order (Kahn's algorithm
// with lexicographic tie-breaking).
func (rt *Runtime) topoOrder() ([]string, error) {
	indeg := map[string]int{}
	for id := range rt.components {
		indeg[id] = 0
	}
	for to, wires := range rt.inWires {
		indeg[to] = len(wires)
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		succs := append([]string(nil), rt.downstream[id]...)
		sort.Strings(succs)
		for _, s := range succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
				sort.Strings(ready)
			}
		}
	}
	if len(order) != len(rt.components) {
		return nil, fmt.Errorf("mashup: dataflow cycle in composition %q", rt.comp.Name)
	}
	return order, nil
}

// gatherInputs assembles a component's inputs from the cached outputs of
// its upstream wires.
func (rt *Runtime) gatherInputs(id string) Inputs {
	in := Inputs{}
	for _, w := range rt.inWires[id] {
		fromComp, fromPort := endpoint(w.From, "out")
		_, toPort := endpoint(w.To, "in")
		if outs, ok := rt.lastOutputs[fromComp]; ok {
			in[toPort] = append(in[toPort], outs[fromPort]...)
		}
	}
	return in
}

// Run executes the full dataflow and returns the dashboard.
func (rt *Runtime) Run() (*Dashboard, error) {
	return rt.run(rt.order, map[string]*Event{})
}

// Emit fires an event (e.g. a selection in a viewer) and re-runs the sync
// targets and everything downstream of them, mirroring the live viewer
// synchronisation of the paper's composition environment. Components not
// affected keep their previous outputs and views.
func (rt *Runtime) Emit(ev Event) (*Dashboard, error) {
	if _, ok := rt.components[ev.Source]; !ok {
		return nil, fmt.Errorf("mashup: event from unknown component %q", ev.Source)
	}
	if ev.Name == "" {
		ev.Name = "select"
	}
	targets := map[string]*Event{}
	for _, s := range rt.syncs {
		evName := s.Event
		if evName == "" {
			evName = "select"
		}
		if s.Source == ev.Source && evName == ev.Name {
			e := ev
			targets[s.Target] = &e
		}
	}
	if len(targets) == 0 {
		return rt.Dashboard(), nil
	}
	// Affected = sync targets plus all their descendants.
	affected := map[string]bool{}
	var mark func(string)
	mark = func(id string) {
		if affected[id] {
			return
		}
		affected[id] = true
		for _, s := range rt.downstream[id] {
			mark(s)
		}
	}
	for t := range targets {
		mark(t)
	}
	var subset []string
	for _, id := range rt.order {
		if affected[id] {
			subset = append(subset, id)
		}
	}
	return rt.run(subset, targets)
}

// run executes the given components in order, with per-component events.
func (rt *Runtime) run(ids []string, events map[string]*Event) (*Dashboard, error) {
	for _, id := range ids {
		ctx := &Context{Event: events[id]}
		outs, err := rt.components[id].Process(ctx, rt.gatherInputs(id))
		if err != nil {
			return nil, fmt.Errorf("mashup: component %q: %w", id, err)
		}
		if outs == nil {
			outs = Outputs{}
		}
		rt.lastOutputs[id] = outs
	}
	return rt.Dashboard(), nil
}

// Component returns an instantiated component by ID (nil if unknown),
// letting callers inspect viewer state directly.
func (rt *Runtime) Component(id string) Component { return rt.components[id] }

// Outputs returns the cached outputs of a component from the latest run.
func (rt *Runtime) Outputs(id string) Outputs { return rt.lastOutputs[id] }

// Dashboard assembles the current views of all viewer components, in
// composition declaration order.
func (rt *Runtime) Dashboard() *Dashboard {
	d := &Dashboard{Name: rt.comp.Name}
	for _, spec := range rt.comp.Components {
		if v, ok := rt.components[spec.ID].(Viewer); ok {
			view := v.View()
			view.ComponentID = spec.ID
			if view.Title == "" {
				view.Title = spec.Title
			}
			d.Views = append(d.Views, view)
		}
	}
	return d
}

// Dashboard is the rendered state of all viewers after a run.
type Dashboard struct {
	Name  string
	Views []View
}

// Render produces a terminal-friendly rendering of the whole dashboard.
func (d *Dashboard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", d.Name)
	for _, v := range d.Views {
		title := v.Title
		if title == "" {
			title = v.ComponentID
		}
		fmt.Fprintf(&b, "\n--- %s [%s] ---\n", title, v.Kind)
		b.WriteString(v.Rendered)
		if !strings.HasSuffix(v.Rendered, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// View looks up a view by component ID.
func (d *Dashboard) View(componentID string) (View, bool) {
	for _, v := range d.Views {
		if v.ComponentID == componentID {
			return v, true
		}
	}
	return View{}, false
}
