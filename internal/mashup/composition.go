package mashup

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ComponentSpec declares one component instance in a composition.
type ComponentSpec struct {
	ID     string `json:"id"`
	Type   string `json:"type"`
	Params Params `json:"params,omitempty"`
	Title  string `json:"title,omitempty"`
}

// Wire connects an output port to an input port, in "component.port"
// notation; the port defaults to "out" / "in" when omitted.
type Wire struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Sync couples a viewer event to a target component, the mechanism behind
// Figure 1's synchronised viewers.
type Sync struct {
	// Source is the component whose events trigger the coupling.
	Source string `json:"source"`
	// Event is the event name (default "select").
	Event string `json:"event,omitempty"`
	// Target is the component re-run with the event in context.
	Target string `json:"target"`
}

// Composition is the declarative mashup description — the artifact an
// end user assembles in the paper's composition environment.
type Composition struct {
	Name       string          `json:"name"`
	Components []ComponentSpec `json:"components"`
	Wires      []Wire          `json:"wires,omitempty"`
	Syncs      []Sync          `json:"sync,omitempty"`
}

// ParseComposition decodes and validates a JSON composition.
func ParseComposition(data []byte) (*Composition, error) {
	var c Composition
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("mashup: parse composition: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MarshalJSON renders the composition back to DSL form (Composition
// already serialises naturally; this is a convenience for tooling).
func (c *Composition) Marshal() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// endpoint splits "component.port" into its parts, applying the default
// port.
func endpoint(s, defaultPort string) (comp, port string) {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, defaultPort
}

// Validate checks structural integrity: unique non-empty IDs, wire
// endpoints referencing declared components, acyclic dataflow, and sync
// rules referencing declared components.
func (c *Composition) Validate() error {
	if len(c.Components) == 0 {
		return fmt.Errorf("mashup: composition %q has no components", c.Name)
	}
	ids := map[string]bool{}
	for _, spec := range c.Components {
		if spec.ID == "" {
			return fmt.Errorf("mashup: component with empty id in %q", c.Name)
		}
		if strings.ContainsRune(spec.ID, '.') {
			return fmt.Errorf("mashup: component id %q must not contain '.'", spec.ID)
		}
		if ids[spec.ID] {
			return fmt.Errorf("mashup: duplicate component id %q", spec.ID)
		}
		if spec.Type == "" {
			return fmt.Errorf("mashup: component %q has no type", spec.ID)
		}
		ids[spec.ID] = true
	}
	adj := map[string][]string{}
	for _, w := range c.Wires {
		fromComp, _ := endpoint(w.From, "out")
		toComp, _ := endpoint(w.To, "in")
		if !ids[fromComp] {
			return fmt.Errorf("mashup: wire from unknown component %q", fromComp)
		}
		if !ids[toComp] {
			return fmt.Errorf("mashup: wire to unknown component %q", toComp)
		}
		if fromComp == toComp {
			return fmt.Errorf("mashup: self-wire on %q", fromComp)
		}
		adj[fromComp] = append(adj[fromComp], toComp)
	}
	if cycle := findCycle(adj); cycle != "" {
		return fmt.Errorf("mashup: dataflow cycle through %q", cycle)
	}
	for _, s := range c.Syncs {
		if !ids[s.Source] {
			return fmt.Errorf("mashup: sync from unknown component %q", s.Source)
		}
		if !ids[s.Target] {
			return fmt.Errorf("mashup: sync to unknown component %q", s.Target)
		}
	}
	return nil
}

// findCycle returns a node on a directed cycle, or "".
func findCycle(adj map[string][]string) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range adj[n] {
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for n := range adj {
		if color[n] == white && visit(n) {
			return n
		}
	}
	return ""
}
