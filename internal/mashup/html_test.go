package mashup

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderHTML(t *testing.T) {
	d := &Dashboard{
		Name: "demo <dash>",
		Views: []View{
			{ComponentID: "l", Title: "List", Kind: "list", Items: []Item{
				{"title": "first <item>"},
			}},
			{ComponentID: "m", Title: "Map", Kind: "map", Items: []Item{
				{"title": "pin", "lat": 45.4, "lon": 9.1},
			}},
			{ComponentID: "i", Title: "Ind", Kind: "indicator", Items: []Item{
				{"label": "place", "value": 0.25},
				{"label": "odd", "value": "n/a"},
			}},
			{ComponentID: "e", Kind: "list"}, // empty, untitled
		},
	}
	out := d.RenderHTML()
	for _, frag := range []string{
		"<!DOCTYPE html>",
		"demo &lt;dash&gt;", // escaped
		"first &lt;item&gt;",
		"45.4000", "9.1000",
		"+0.250",
		"n/a",
		"(empty)",
		"<h2>e", // falls back to component ID
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("HTML missing %q", frag)
		}
	}
	if strings.Contains(out, "<item>") {
		t.Error("unescaped user content in HTML")
	}
}

func TestRenderHTMLEmptyKinds(t *testing.T) {
	d := &Dashboard{Name: "x", Views: []View{
		{ComponentID: "m", Kind: "map"},
		{ComponentID: "i", Kind: "indicator"},
	}}
	out := d.RenderHTML()
	if !strings.Contains(out, "no geo-tagged items") || !strings.Contains(out, "no indicators") {
		t.Error("empty placeholders missing")
	}
}

// TestCompositionFuzz feeds randomly shaped compositions through the
// validator and runtime: they must either be rejected with an error or run
// cleanly — never panic.
func TestCompositionFuzz(t *testing.T) {
	reg := NewRegistry()
	RegisterBuiltins(reg)
	types := []string{"union", "limit", "list-viewer", "sort", "event-filter", "nonexistent"}
	f := func(ids []uint8, wireFrom, wireTo []uint8, nameByte uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on fuzzed composition: %v", r)
			}
		}()
		if len(ids) == 0 || len(ids) > 8 {
			return true
		}
		comp := &Composition{Name: string(rune('a' + nameByte%26))}
		for i, b := range ids {
			spec := ComponentSpec{
				ID:   string(rune('a' + b%10)),
				Type: types[int(b)%len(types)],
			}
			if spec.Type == "sort" {
				spec.Params = Params{"by": "title"}
			}
			_ = i
			comp.Components = append(comp.Components, spec)
		}
		n := len(comp.Components)
		for i := 0; i < len(wireFrom) && i < len(wireTo) && i < 6; i++ {
			comp.Wires = append(comp.Wires, Wire{
				From: comp.Components[int(wireFrom[i])%n].ID,
				To:   comp.Components[int(wireTo[i])%n].ID,
			})
		}
		rt, err := NewRuntime(comp, reg)
		if err != nil {
			return true // rejected is fine
		}
		_, err = rt.Run()
		return err == nil || true // errors fine; panics are the failure mode
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
