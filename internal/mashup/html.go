package mashup

import (
	"fmt"
	"html"
	"strings"
)

// RenderHTML produces a self-contained HTML page of the dashboard, with one
// card per viewer: lists as ordered lists, maps as coordinate tables,
// indicators as label/value tables. It is the browser-facing counterpart of
// Render for the terminal — the paper's dashboards were web pages.
func (d *Dashboard) RenderHTML() string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>")
	fmt.Fprintf(&b, "<title>%s</title>", html.EscapeString(d.Name))
	b.WriteString(`<style>
body { font-family: sans-serif; margin: 1.5rem; background: #f6f6f6; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: 1rem; margin-bottom: 1rem; }
.card h2 { margin: 0 0 .6rem 0; font-size: 1.05rem; }
.kind { color: #888; font-size: .8rem; margin-left: .5rem; }
table { border-collapse: collapse; }
td, th { padding: .2rem .6rem; border-bottom: 1px solid #eee; text-align: left; }
.empty { color: #999; font-style: italic; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(d.Name))
	for _, v := range d.Views {
		title := v.Title
		if title == "" {
			title = v.ComponentID
		}
		fmt.Fprintf(&b, `<div class="card"><h2>%s<span class="kind">%s</span></h2>`,
			html.EscapeString(title), html.EscapeString(v.Kind))
		switch v.Kind {
		case "map":
			renderMapHTML(&b, v)
		case "indicator":
			renderIndicatorHTML(&b, v)
		default:
			renderListHTML(&b, v)
		}
		b.WriteString("</div>\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func renderListHTML(b *strings.Builder, v View) {
	if len(v.Items) == 0 {
		b.WriteString(`<p class="empty">(empty)</p>`)
		return
	}
	b.WriteString("<ol>")
	for _, it := range v.Items {
		fmt.Fprintf(b, "<li>%s</li>", html.EscapeString(it.String()))
	}
	b.WriteString("</ol>")
}

func renderMapHTML(b *strings.Builder, v View) {
	if len(v.Items) == 0 {
		b.WriteString(`<p class="empty">(no geo-tagged items)</p>`)
		return
	}
	b.WriteString("<table><tr><th>lat</th><th>lon</th><th>item</th></tr>")
	for _, it := range v.Items {
		lat, _ := it.Float("lat")
		lon, _ := it.Float("lon")
		fmt.Fprintf(b, "<tr><td>%.4f</td><td>%.4f</td><td>%s</td></tr>",
			lat, lon, html.EscapeString(it.String()))
	}
	b.WriteString("</table>")
}

func renderIndicatorHTML(b *strings.Builder, v View) {
	if len(v.Items) == 0 {
		b.WriteString(`<p class="empty">(no indicators)</p>`)
		return
	}
	b.WriteString("<table><tr><th>label</th><th>value</th></tr>")
	for _, it := range v.Items {
		label, _ := it["label"].(string)
		if label == "" {
			label = it.String()
		}
		if val, ok := it.Float("value"); ok {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%+.3f</td></tr>", html.EscapeString(label), val)
		} else {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td></tr>",
				html.EscapeString(label), html.EscapeString(fmt.Sprintf("%v", it["value"])))
		}
	}
	b.WriteString("</table>")
}
