package mashup

import (
	"errors"
	"strings"
	"testing"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	RegisterBuiltins(reg)
	return reg
}

func TestRegistryDuplicateAndUnknown(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("x", func(Params) (Component, error) { return union{}, nil }); err != nil {
		t.Fatal(err)
	}
	err := reg.Register("x", func(Params) (Component, error) { return union{}, nil })
	if !errors.Is(err, ErrDuplicateType) {
		t.Errorf("err = %v, want duplicate", err)
	}
	if _, err := reg.New("nope", nil); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want unknown", err)
	}
	if len(reg.Types()) != 1 || reg.Types()[0] != "x" {
		t.Errorf("Types = %v", reg.Types())
	}
}

func TestItemHelpers(t *testing.T) {
	it := Item{"title": "hello", "score": 1.5, "n": 2}
	if it.String() != "hello" {
		t.Errorf("String = %q", it.String())
	}
	if v, ok := it.Float("score"); !ok || v != 1.5 {
		t.Error("Float(score) wrong")
	}
	if v, ok := it.Float("n"); !ok || v != 2 {
		t.Error("Float(int) wrong")
	}
	if _, ok := it.Float("title"); ok {
		t.Error("Float(string) should fail")
	}
	clone := it.Clone()
	clone["title"] = "mutated"
	if it["title"] != "hello" {
		t.Error("Clone aliases the original")
	}
	anon := Item{"x": 1}
	if anon.String() == "" {
		t.Error("String must render something for title-less items")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"f": 2.5, "i": float64(7), "s": "str", "list": []any{"a", "b", 3}}
	if p.Float("f", 0) != 2.5 || p.Float("missing", 9) != 9 {
		t.Error("Float wrong")
	}
	if p.Int("i", 0) != 7 || p.Int("missing", 4) != 4 {
		t.Error("Int wrong")
	}
	if p.String("s", "") != "str" || p.String("missing", "d") != "d" {
		t.Error("String wrong")
	}
	if got := p.StringSlice("list"); len(got) != 2 || got[0] != "a" {
		t.Errorf("StringSlice = %v", got)
	}
	if p.StringSlice("missing") != nil {
		t.Error("missing slice should be nil")
	}
}

const pipelineJSON = `{
  "name": "test-pipeline",
  "components": [
    {"id": "src", "type": "static-source", "params": {"items": [
      {"title": "a", "score": 3},
      {"title": "b", "score": 1},
      {"title": "c", "score": 2}
    ]}},
    {"id": "srt", "type": "sort", "params": {"by": "score", "desc": true}},
    {"id": "top", "type": "limit", "params": {"n": 2}},
    {"id": "view", "type": "list-viewer", "title": "Top items"}
  ],
  "wires": [
    {"from": "src.out", "to": "srt.in"},
    {"from": "srt.out", "to": "top.in"},
    {"from": "top.out", "to": "view.in"}
  ]
}`

func TestPipelineEndToEnd(t *testing.T) {
	comp, err := ParseComposition([]byte(pipelineJSON))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(comp, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	v, ok := d.View("view")
	if !ok {
		t.Fatal("missing view")
	}
	if len(v.Items) != 2 {
		t.Fatalf("view has %d items", len(v.Items))
	}
	if v.Items[0]["title"] != "a" || v.Items[1]["title"] != "c" {
		t.Errorf("sorted+limited wrong: %v", v.Items)
	}
	if v.Title != "Top items" {
		t.Errorf("title = %q", v.Title)
	}
	if !strings.Contains(d.Render(), "Top items") {
		t.Error("render missing title")
	}
}

func TestCompositionValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"empty", `{"name":"x","components":[]}`},
		{"dup id", `{"name":"x","components":[{"id":"a","type":"union"},{"id":"a","type":"union"}]}`},
		{"no type", `{"name":"x","components":[{"id":"a"}]}`},
		{"dot id", `{"name":"x","components":[{"id":"a.b","type":"union"}]}`},
		{"bad wire from", `{"name":"x","components":[{"id":"a","type":"union"}],"wires":[{"from":"zz.out","to":"a.in"}]}`},
		{"bad wire to", `{"name":"x","components":[{"id":"a","type":"union"}],"wires":[{"from":"a.out","to":"zz.in"}]}`},
		{"self wire", `{"name":"x","components":[{"id":"a","type":"union"}],"wires":[{"from":"a.out","to":"a.in"}]}`},
		{"cycle", `{"name":"x","components":[{"id":"a","type":"union"},{"id":"b","type":"union"}],"wires":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`},
		{"bad sync source", `{"name":"x","components":[{"id":"a","type":"union"}],"sync":[{"source":"zz","target":"a"}]}`},
		{"bad sync target", `{"name":"x","components":[{"id":"a","type":"union"}],"sync":[{"source":"a","target":"zz"}]}`},
		{"unknown field", `{"name":"x","components":[{"id":"a","type":"union"}],"bogus":1}`},
		{"not json", `nope`},
	}
	for _, c := range cases {
		if _, err := ParseComposition([]byte(c.json)); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestRuntimeUnknownComponentType(t *testing.T) {
	comp := &Composition{
		Name:       "x",
		Components: []ComponentSpec{{ID: "a", Type: "not-registered"}},
	}
	if _, err := NewRuntime(comp, testRegistry(t)); err == nil {
		t.Fatal("expected error for unregistered type")
	}
}

func TestFieldFilterOps(t *testing.T) {
	reg := testRegistry(t)
	items := []Item{
		{"name": "alpha", "v": 1.0},
		{"name": "beta", "v": 2.0},
		{"name": "gamma", "v": 3.0},
	}
	run := func(params Params) []Item {
		t.Helper()
		c, err := reg.New("field-filter", params)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Process(&Context{}, Inputs{"in": items})
		if err != nil {
			t.Fatal(err)
		}
		return out["out"]
	}
	if got := run(Params{"field": "v", "op": "gt", "value": 1.5}); len(got) != 2 {
		t.Errorf("gt: %v", got)
	}
	if got := run(Params{"field": "v", "op": "lte", "value": 2.0}); len(got) != 2 {
		t.Errorf("lte: %v", got)
	}
	if got := run(Params{"field": "name", "op": "eq", "value": "beta"}); len(got) != 1 {
		t.Errorf("eq: %v", got)
	}
	if got := run(Params{"field": "name", "op": "ne", "value": "beta"}); len(got) != 2 {
		t.Errorf("ne: %v", got)
	}
	if got := run(Params{"field": "name", "op": "contains", "value": "AMM"}); len(got) != 1 {
		t.Errorf("contains: %v", got)
	}
	// Config errors.
	if _, err := reg.New("field-filter", Params{"op": "eq"}); err == nil {
		t.Error("missing field should fail")
	}
	if _, err := reg.New("field-filter", Params{"field": "x", "op": "magic"}); err == nil {
		t.Error("unknown op should fail")
	}
}

func TestUnionMergesPorts(t *testing.T) {
	c, _ := testRegistry(t).New("union", nil)
	out, err := c.Process(&Context{}, Inputs{
		"a": {{"title": "1"}},
		"b": {{"title": "2"}, {"title": "3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 3 {
		t.Errorf("union = %v", out["out"])
	}
}

func TestEventFilterSelection(t *testing.T) {
	c, err := testRegistry(t).New("event-filter", Params{"item_key": "author", "payload_key": "name"})
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{
		{"author": "alice", "title": "p1"},
		{"author": "bob", "title": "p2"},
		{"author": "alice", "title": "p3"},
	}
	// Without an event: pass-through.
	out, _ := c.Process(&Context{}, Inputs{"in": items})
	if len(out["out"]) != 3 {
		t.Fatalf("pass-through = %v", out["out"])
	}
	// With a selection event: narrowed to alice.
	ev := &Event{Source: "list", Name: "select", Payload: Item{"name": "alice"}}
	out, _ = c.Process(&Context{Event: ev}, Inputs{"in": items})
	if len(out["out"]) != 2 {
		t.Fatalf("selected = %v", out["out"])
	}
	// Payload missing the key: pass-through.
	ev2 := &Event{Source: "list", Name: "select", Payload: Item{"other": 1}}
	out, _ = c.Process(&Context{Event: ev2}, Inputs{"in": items})
	if len(out["out"]) != 3 {
		t.Error("missing payload key should pass everything")
	}
}

const syncedJSON = `{
  "name": "synced",
  "components": [
    {"id": "posts", "type": "static-source", "params": {"items": [
      {"author": "alice", "title": "alice post 1", "lat": 45.46, "lon": 9.19},
      {"author": "bob", "title": "bob post", "lat": 41.90, "lon": 12.49},
      {"author": "alice", "title": "alice post 2"}
    ]}},
    {"id": "sel", "type": "event-filter", "params": {"item_key": "author", "payload_key": "author"}},
    {"id": "list", "type": "list-viewer", "title": "Posts"},
    {"id": "map", "type": "map-viewer", "title": "Locations"}
  ],
  "wires": [
    {"from": "posts.out", "to": "sel.in"},
    {"from": "sel.out", "to": "list.in"},
    {"from": "sel.out", "to": "map.in"}
  ],
  "sync": [
    {"source": "list", "event": "select", "target": "sel"}
  ]
}`

func TestViewerSynchronisation(t *testing.T) {
	comp, err := ParseComposition([]byte(syncedJSON))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(comp, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.View("list"); len(v.Items) != 3 {
		t.Fatalf("initial list = %d items", len(v.Items))
	}
	if v, _ := d.View("map"); len(v.Items) != 2 {
		t.Fatalf("initial map = %d pins (only geo-tagged)", len(v.Items))
	}

	// Select alice in the list: the event-filter narrows, and both viewers
	// downstream refresh — Figure 1's synchronised viewing.
	d, err = rt.Emit(Event{Source: "list", Name: "select", Payload: Item{"author": "alice"}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.View("list"); len(v.Items) != 2 {
		t.Errorf("after select, list = %d items", len(v.Items))
	}
	if v, _ := d.View("map"); len(v.Items) != 1 {
		t.Errorf("after select, map = %d pins", len(v.Items))
	}

	// An event with no matching sync rule leaves everything unchanged.
	d, err = rt.Emit(Event{Source: "map", Name: "select", Payload: Item{"author": "bob"}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.View("list"); len(v.Items) != 2 {
		t.Error("unrelated event must not re-run the graph")
	}

	// Events from unknown components are rejected.
	if _, err := rt.Emit(Event{Source: "ghost"}); err == nil {
		t.Error("expected error for unknown event source")
	}
}

func TestIndicatorViewer(t *testing.T) {
	c, _ := testRegistry(t).New("indicator-viewer", Params{"title": "Sentiment"})
	out, err := c.Process(&Context{}, Inputs{"in": {
		{"label": "place", "value": 0.42},
		{"label": "pulse", "value": -0.1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 2 {
		t.Error("indicator must pass items through")
	}
	v := c.(Viewer).View()
	if !strings.Contains(v.Rendered, "place") || !strings.Contains(v.Rendered, "+0.420") {
		t.Errorf("rendered = %q", v.Rendered)
	}
	if v.Kind != "indicator" {
		t.Errorf("kind = %q", v.Kind)
	}
}

func TestEmptyViewersRender(t *testing.T) {
	reg := testRegistry(t)
	for _, typ := range []string{"list-viewer", "map-viewer", "indicator-viewer"} {
		c, _ := reg.New(typ, nil)
		if _, err := c.Process(&Context{}, Inputs{}); err != nil {
			t.Fatal(err)
		}
		if v := c.(Viewer).View(); v.Rendered == "" {
			t.Errorf("%s renders empty string for empty input", typ)
		}
	}
}

func TestLimitAndSortConfig(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.New("limit", Params{"n": -1}); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := reg.New("sort", Params{}); err == nil {
		t.Error("sort without by should fail")
	}
	// String sort falls back to lexicographic.
	c, _ := reg.New("sort", Params{"by": "name"})
	out, _ := c.Process(&Context{}, Inputs{"in": {
		{"name": "b"}, {"name": "a"}, {"name": "c"},
	}})
	if out["out"][0]["name"] != "a" || out["out"][2]["name"] != "c" {
		t.Errorf("lexicographic sort wrong: %v", out["out"])
	}
}

func TestStaticSourceErrors(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.New("static-source", Params{}); err == nil {
		t.Error("missing items should fail")
	}
	if _, err := reg.New("static-source", Params{"items": []any{"not an object"}}); err == nil {
		t.Error("non-object item should fail")
	}
	// Pre-built []Item is accepted (for Go-side composition).
	c, err := reg.New("static-source", Params{"items": []Item{{"title": "x"}}})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Process(&Context{}, Inputs{})
	if len(out["out"]) != 1 {
		t.Error("prebuilt items lost")
	}
}

func TestCompositionMarshalRoundTrip(t *testing.T) {
	comp, err := ParseComposition([]byte(pipelineJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := comp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseComposition(data)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != comp.Name || len(again.Components) != len(comp.Components) || len(again.Wires) != len(comp.Wires) {
		t.Error("round trip lost structure")
	}
}

func TestDefaultPortsInWires(t *testing.T) {
	// Wires without explicit ports default to out/in.
	j := `{
	  "name": "defaults",
	  "components": [
	    {"id": "src", "type": "static-source", "params": {"items": [{"title": "x"}]}},
	    {"id": "view", "type": "list-viewer"}
	  ],
	  "wires": [{"from": "src", "to": "view"}]
	}`
	comp, err := ParseComposition([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(comp, testRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.View("view"); len(v.Items) != 1 {
		t.Errorf("default ports lost items: %v", v.Items)
	}
}
