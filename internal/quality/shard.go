package quality

// The sharded scatter-gather engine: the corpus is partitioned into
// contiguous record-range shards (internal/shard plans the ranges and
// carries the routing metadata), each owning its own measure matrix,
// ranked spine parts and incremental-update path. Reads become
// scatter-gather plans — per-shard bounded scans merged k-way into the
// global ranking — and a tick's update cost concentrates on the shards its
// delta actually touched.
//
// The correctness contract is bit-identity with the single-matrix engine,
// and it rests on three facts:
//
//  1. Benchmarks are corpus-global. Shard matrices are filled without
//     benchmarks; a second phase gathers every measure's defined values
//     across the shards in global record order — the exact sequence the
//     unsharded construction feeds sort.Float64s — into one ledger of
//     sorted columns, and every shard engine shares the ledger's benchmark
//     slice. Normalized values are therefore bitwise the same numbers.
//  2. The candidate order (key desc, ID asc) is a strict total order, so
//     the k-way merge of per-shard ranked lists is deterministic and equal
//     to ranking the union; a per-shard bound of k keeps every candidate
//     the global top k can need.
//  3. The pagination arithmetic — scan prelude, window clipping, cursor
//     derivation — is the same code (planScan, clipWindow, windowResult,
//     sliceSpineWindow) both engines call.
//
// The randomized cross-shard equivalence suite at the repo root pins all
// of this at shard counts {1, 2, 7, 16}.

import (
	"sort"

	"github.com/informing-observers/informer/internal/parallel"
	"github.com/informing-observers/informer/internal/shard"
	"github.com/informing-observers/informer/internal/stats"
)

// benchLedger is the corpus-global normalisation state of a sharded
// engine: one ascending-sorted column of defined values per measure (the
// same slice a single-matrix engine would retain) and the benchmarks read
// from it. It is repaired incrementally on update — batch remove+insert
// from the dirty rows' old and new values — so maintaining corpus-global
// benchmarks never costs a corpus-wide re-evaluation.
type benchLedger struct {
	sorted     [][]float64
	benchmarks []Benchmark
}

// noteSourceRoute records a source record's routing identity — ID, kind,
// and the categories it is active in — in its shard's router entry.
func noteSourceRoute(rt *shard.Router, s int, r *SourceRecord) {
	rt.Note(s, r.ID, r.Kind)
	for i := range r.Discussions {
		rt.NoteCategory(s, r.Discussions[i].Category)
	}
}

// noteContributorRoute records a contributor's routing identity.
// Contributors have no kind; categories come from where they commented.
func noteContributorRoute(rt *shard.Router, s int, r *ContributorRecord) {
	rt.Note(s, r.ID, "")
	for cat, n := range r.CommentsByCategory {
		if n > 0 {
			rt.NoteCategory(s, cat)
		}
	}
}

// shardedEngine implements engineAPI over a sharded corpus. Records keep
// their global construction order; shard s owns the contiguous row range
// plan.Bounds(s). All candidate rows, cursors and totals are global, so
// results interoperate freely with single-matrix ones.
//
//informer:snapshot
type shardedEngine[R any] struct {
	di    DomainOfInterest
	opts  AssessorOptions
	infos []measureInfo
	evals []func(*R, *DomainOfInterest) (float64, bool)
	ident func(*R) (int, string)
	note  func(*shard.Router, int, *R)

	plan    shard.Plan
	engines []*matrixEngine[R] // one per shard; benchmarks slice shared from the ledger
	router  *shard.Router
	ledger  *benchLedger
	// col routes a record ID to its global row. It is keyed by ID, not
	// pointer, because it only picks the shard engine that serves a
	// record — the shard's own pointer-keyed map still decides between
	// matrix read and direct evaluation, and every shard normalizes
	// against the same global benchmarks, so routing can never change a
	// result. ID→row never changes while the corpus keeps its shape, so
	// shape-preserving updates share the map instead of rebuilding it.
	col map[int]int

	// Update provenance for spine carry/repair, mirroring matrixEngine's:
	// dirtyLocal[s] holds the producing update's dirty rows local to shard
	// s (nil slices for clean shards).
	fresh          bool
	lastEpochMoved bool
	benchChanged   bool
	dirtyLocal     [][]int

	counters *spineCounters
}

// newShardedEngine partitions the corpus and builds one fill-only matrix
// per shard, then runs the two-phase benchmark gather so normalisation
// stays corpus-global.
//
//informer:mutates constructor fills the coordinator before it is published
func newShardedEngine[R any](
	corpus []*R,
	di DomainOfInterest,
	opts AssessorOptions,
	infos []measureInfo,
	evals []func(*R, *DomainOfInterest) (float64, bool),
	ident func(*R) (int, string),
	note func(*shard.Router, int, *R),
) *shardedEngine[R] {
	s := &shardedEngine[R]{
		di: di, opts: opts, infos: infos, evals: evals, ident: ident, note: note,
		plan:     shard.NewPlan(len(corpus), opts.Shards),
		fresh:    true,
		counters: &spineCounters{},
	}
	ns := s.plan.Shards()
	s.engines = make([]*matrixEngine[R], ns)
	// Phase 1: fill each shard's matrix. The fill already fans out across
	// the worker pool per shard, so the shard loop stays sequential.
	for sh := 0; sh < ns; sh++ {
		lo, hi := s.plan.Bounds(sh)
		s.engines[sh] = newMatrixEngineNoBench(corpus[lo:hi], di, opts, infos, evals, ident)
	}
	// Phase 2: corpus-global gather — per measure, defined values across
	// shards in global record order, sorted once, benchmarks read from the
	// sort. Identical input sequence to the unsharded construction ⇒
	// identical column ⇒ identical benchmarks.
	nm := len(infos)
	led := &benchLedger{sorted: make([][]float64, nm), benchmarks: make([]Benchmark, nm)}
	parallel.ForEachChunk(nm, opts.Workers, func(mlo, mhi int) {
		for m := mlo; m < mhi; m++ {
			led.sorted[m], led.benchmarks[m] = gatherColumn(s.engines, m, len(corpus), opts)
		}
	})
	s.ledger = led
	for _, eng := range s.engines {
		eng.benchmarks = led.benchmarks
	}
	// Routing metadata and the global ID→row map.
	rt := shard.NewRouter(ns)
	s.col = make(map[int]int, len(corpus))
	for sh := 0; sh < ns; sh++ {
		lo, hi := s.plan.Bounds(sh)
		for row := lo; row < hi; row++ {
			id, _ := ident(corpus[row])
			s.col[id] = row
			note(rt, sh, corpus[row])
		}
	}
	s.router = rt
	return s
}

// gatherColumn collects measure m's defined values across the shard
// engines in global record order and sorts them — the corpus-global
// column a single matrix would have produced.
func gatherColumn[R any](engines []*matrixEngine[R], m, n int, opts AssessorOptions) ([]float64, Benchmark) {
	values := make([]float64, 0, n)
	for _, eng := range engines {
		vrow, prow := eng.vals[m], eng.present[m]
		for c := range prow {
			if prow[c] {
				values = append(values, vrow[c])
			}
		}
	}
	sort.Float64s(values)
	return values, benchmarkFromPresorted(values, opts)
}

// shardOf routes a record to the engine owning its row; off-corpus records
// fall back to shard 0, whose direct-evaluation path normalizes against
// the same shared global benchmarks as every other shard.
func (s *shardedEngine[R]) shardOf(r *R) *matrixEngine[R] {
	id, _ := s.ident(r)
	if row, ok := s.col[id]; ok {
		return s.engines[s.plan.Of(row)]
	}
	return s.engines[0]
}

func (s *shardedEngine[R]) assess(r *R) *Assessment {
	return s.shardOf(r).assess(r)
}

func (s *shardedEngine[R]) assessAll(records []*R) []*Assessment {
	out := make([]*Assessment, len(records))
	parallel.ForEachChunk(len(records), s.opts.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = s.assess(records[i])
		}
	})
	return out
}

func (s *shardedEngine[R]) rank(records []*R) []*Assessment {
	out := s.assessAll(records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (s *shardedEngine[R]) benchmarkAt(m int) Benchmark { return s.ledger.benchmarks[m] }

func (s *shardedEngine[R]) measurePos(id string) int { return s.engines[0].measurePos(id) }

func (s *shardedEngine[R]) shardCount() int { return s.plan.Shards() }

func (s *shardedEngine[R]) spineStats() *spineCounters { return s.counters }

// candBetter is MergeK's order: a ranks strictly before b.
func candBetter(a, b leanCand) bool { return candWorse(b, a) }

// rankTopK is the scatter-gather query plan: every shard the router cannot
// prune runs the same bounded lean scan over its own record range (rows
// offset to global), the per-shard rankings are merged k-way under the
// global strict order, and the shared clipping/materialization arithmetic
// finishes the window. A per-shard bound of `bound` loses nothing: any
// candidate in the global best `bound` is in its own shard's best `bound`.
func (s *shardedEngine[R]) rankTopK(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*QueryResult, error) {
	rq, err := s.engines[0].resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if rq.unmatchable {
		return &QueryResult{Items: []*Assessment{}}, nil
	}
	p := planScan(q)
	parts, totals := s.scatter(records, q, rq, keep, spamIdx, p, nil)
	merged := shard.MergeK(parts, candBetter, p.bound)
	merged = clipWindow(merged, q, p)
	return s.finishWindow(records, merged, p.start, sum(totals), q), nil
}

// scatter runs the per-shard scans of one query evaluation in parallel.
// Shards the router proves scope-incompatible are skipped: they cannot
// contain a match, so they contribute zero candidates and zero total.
// scanned, when non-nil, gets a counter bump per shard actually scanned.
func (s *shardedEngine[R]) scatter(records []*R, q Query, rq *resolvedQuery, keep func(*R) bool, spamIdx []int, p scanPlan, onScan func(sh int)) (parts [][]leanCand, totals []int) {
	ns := s.plan.Shards()
	parts = make([][]leanCand, ns)
	totals = make([]int, ns)
	parallel.ForEachChunk(ns, s.opts.Workers, func(lo, hi int) {
		for sh := lo; sh < hi; sh++ {
			if !s.router.CanMatch(sh, q.IDs, q.Kinds, q.Categories) {
				continue
			}
			if onScan != nil {
				onScan(sh)
			}
			rlo, rhi := s.plan.Bounds(sh)
			cands, total := s.engines[sh].scanMatches(records[rlo:rhi], rlo, q, rq, keep, spamIdx, p.after, p.bound, p.collect)
			// The bounded heap is heap-ordered; rank it best-first for the
			// merge (k log k per shard).
			sort.Slice(cands, func(i, j int) bool { return candWorse(cands[j], cands[i]) })
			parts[sh], totals[sh] = cands, total
		}
	})
	return parts, totals
}

// spine evaluates the standing query per shard — unbounded, fully ranked —
// and keeps the per-shard decomposition on the Spine so the next round can
// carry clean shards and repair dirty ones.
func (s *shardedEngine[R]) spine(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*Spine, error) {
	rq, err := s.engines[0].resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if rq.unmatchable {
		return &Spine{}, nil
	}
	p := scanPlan{collect: true}
	parts, totals := s.scatter(records, q, rq, keep, spamIdx, p, func(int) { s.counters.scans.Add(1) })
	merged := shard.MergeK(parts, candBetter, 0)
	return &Spine{cands: merged, total: sum(totals), parts: parts, totals: totals}, nil
}

// window slices a page out of a sharded spine with the shared arithmetic
// and materializes each row on its owning shard.
func (s *shardedEngine[R]) window(records []*R, sp *Spine, q Query) (*QueryResult, error) {
	cands, start, err := sliceSpineWindow(sp, q)
	if err != nil {
		return nil, err
	}
	return s.finishWindow(records, cands, start, sp.total, q), nil
}

// repairSpine is the dirty-shard evaluation path of a standing query: when
// the producing update moved no benchmark and no epoch, clean shards'
// ranked parts are carried forward untouched (a map lookup, not a scan)
// and only dirty shards repair — drop dirty rows, re-evaluate them,
// re-insert. A tick dirtying one shard of N costs one repair and N-1
// carries; the SpineStats counters record exactly that.
func (s *shardedEngine[R]) repairSpine(records []*R, prev *Spine, q Query, keep func(*R) bool, spamIdx []int) (*Spine, bool) {
	ns := s.plan.Shards()
	if prev == nil || s.fresh || s.lastEpochMoved || s.benchChanged {
		return nil, false
	}
	if len(prev.parts) != ns || len(prev.totals) != ns {
		return nil, false // unsharded or differently-sharded spine: no carry
	}
	rq, err := s.engines[0].resolveQuery(q)
	if err != nil || rq.unmatchable {
		return nil, false
	}
	parts := make([][]leanCand, ns)
	totals := make([]int, ns)
	for sh := 0; sh < ns; sh++ {
		if len(s.dirtyLocal[sh]) == 0 {
			parts[sh], totals[sh] = prev.parts[sh], prev.totals[sh]
			s.counters.carries.Add(1)
			continue
		}
		rlo, _ := s.plan.Bounds(sh)
		parts[sh] = s.engines[sh].repairCands(records, rlo, s.dirtyLocal[sh], prev.parts[sh], q, rq, keep, spamIdx)
		totals[sh] = len(parts[sh])
		s.counters.repairs.Add(1)
	}
	merged := shard.MergeK(parts, candBetter, 0)
	return &Spine{cands: merged, total: sum(totals), parts: parts, totals: totals}, true
}

// finishWindow materializes a page of global-row candidates, routing each
// record to its owning shard's matrix, and assembles the shared envelope.
func (s *shardedEngine[R]) finishWindow(records []*R, cands []leanCand, start, total int, q Query) *QueryResult {
	items := make([]*Assessment, len(cands))
	parallel.ForEachChunk(len(cands), s.opts.Workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := cands[j].row
			items[j] = s.engines[s.plan.Of(row)].assessProject(records[row], q.Fields)
		}
	})
	return windowResult(items, cands, start, total, q)
}

// update derives the engine for an advanced corpus. Only shards the delta
// touched (plus every shard when the epoch moved, since time-sensitive
// columns shift wholesale) rebuild their matrices; clean shards share
// their columns and only remap record pointers. The benchmark ledger is
// repaired from the dirty rows' old and new values in one batch merge per
// measure — O(column + dirty) instead of O(corpus × measures) — and the
// router unions the dirty shards' new routing facts copy-on-write, so
// concurrent readers of the previous snapshot never see a mutation.
//
//informer:mutates fills the derived successor coordinator before it is published
func (s *shardedEngine[R]) update(corpus []*R, dirty []int, epochMoved bool) engineAPI[R] {
	n := s.plan.Len()
	if len(corpus) != n {
		// Population changed shape: rebuild from scratch (same knobs).
		return newShardedEngine(corpus, s.di, s.opts, s.infos, s.evals, s.ident, s.note)
	}
	ns := s.plan.Shards()
	split := s.plan.SplitRows(dirty)
	ne := &shardedEngine[R]{
		di: s.di, opts: s.opts, infos: s.infos, evals: s.evals, ident: s.ident, note: s.note,
		plan:           s.plan,
		lastEpochMoved: epochMoved,
		dirtyLocal:     split,
		counters:       &spineCounters{},
	}
	var dirtyShards []int
	for sh := 0; sh < ns; sh++ {
		if len(split[sh]) > 0 {
			dirtyShards = append(dirtyShards, sh)
		}
	}
	// Phase 1: repair the touched shards' matrices (all of them when the
	// epoch moved — every time-sensitive column shifts).
	ne.engines = make([]*matrixEngine[R], ns)
	cur := make([]*matrixEngine[R], ns) // matrix to read post-update values from
	for sh := 0; sh < ns; sh++ {
		cur[sh] = s.engines[sh]
		if len(split[sh]) > 0 || epochMoved {
			lo, hi := s.plan.Bounds(sh)
			ne.engines[sh] = s.engines[sh].updateRowsNoBench(corpus[lo:hi], split[sh], epochMoved)
			cur[sh] = ne.engines[sh]
		}
	}
	// Phase 2: repair the global ledger. Per measure: epoch-moved
	// time-sensitive columns re-gather wholesale (their values shifted for
	// every record); heavy dirt re-sorts; sparse dirt batch-repairs the
	// retained sorted column from the dirty rows' old and new values.
	nm := len(s.infos)
	led := &benchLedger{sorted: make([][]float64, nm), benchmarks: make([]Benchmark, nm)}
	parallel.ForEachChunk(nm, s.opts.Workers, func(mlo, mhi int) {
		for m := mlo; m < mhi; m++ {
			switch {
			case s.infos[m].timeSensitive && epochMoved, len(dirty)*resortDenominator > n:
				led.sorted[m], led.benchmarks[m] = gatherColumn(cur, m, n, s.opts)
			default:
				var removes, inserts []float64
				for _, sh := range dirtyShards {
					oldE, newE := s.engines[sh], ne.engines[sh]
					if len(split[sh]) > 0 && &newE.vals[m][0] == &oldE.vals[m][0] {
						continue // row still shared: no cell of this measure moved
					}
					for _, c := range split[sh] {
						oldV, oldOk := oldE.vals[m][c], oldE.present[m][c]
						v, ok := newE.vals[m][c], newE.present[m][c]
						if ok == oldOk && (!ok || v == oldV) {
							continue // value unchanged: column unaffected
						}
						if oldOk {
							removes = append(removes, oldV)
						}
						if ok {
							inserts = append(inserts, v)
						}
					}
				}
				col := stats.SortedBatchRepair(s.ledger.sorted[m], removes, inserts)
				led.sorted[m] = col
				if len(removes) == 0 && len(inserts) == 0 {
					led.benchmarks[m] = s.ledger.benchmarks[m]
				} else {
					led.benchmarks[m] = benchmarkFromPresorted(col, s.opts)
				}
			}
		}
	})
	ne.ledger = led
	ne.benchChanged = !benchmarksEqual(s.ledger.benchmarks, led.benchmarks)
	if !ne.benchChanged {
		// Bitwise-unchanged benchmarks: keep the previous slice object so
		// untouched engines and the ledger stay coherent by identity.
		led.benchmarks = s.ledger.benchmarks
	}
	for sh := 0; sh < ns; sh++ {
		if ne.engines[sh] != nil {
			ne.engines[sh].benchmarks = led.benchmarks
			continue
		}
		// Clean shard: share its matrix, remap the refreshed record
		// pointers onto it.
		lo, hi := s.plan.Bounds(sh)
		ne.engines[sh] = s.engines[sh].remap(corpus[lo:hi], led.benchmarks)
	}
	// Routing metadata: union only the dirty rows' current facts into
	// copy-on-write set copies; clean shards share the old sets. The sets
	// grow monotonically — a kind or category a refreshed record dropped
	// lingers in its shard's set — which is sound (the router is a
	// may-match filter; stale facts only forfeit pruning opportunities,
	// never rows) and keeps routing maintenance O(dirty), not O(shard).
	rt := s.router.Derive(dirtyShards)
	for _, sh := range dirtyShards {
		lo, _ := s.plan.Bounds(sh)
		for _, c := range split[sh] {
			s.note(rt, sh, corpus[lo+c])
		}
	}
	ne.router = rt
	// Same shape, same IDs, same rows: the routing map carries over.
	ne.col = s.col
	return ne
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
