package quality

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

func TestSourceRecordsFromWorld(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 31, NumSources: 25})
	panel := analytics.Build(w, 131)
	records := SourceRecordsFromWorld(w, panel)
	if len(records) != 25 {
		t.Fatalf("records = %d", len(records))
	}
	for i, r := range records {
		src := w.Sources[i]
		if r.ID != src.ID || r.Host != src.Host {
			t.Fatalf("record %d identity mismatch", i)
		}
		if len(r.Discussions) != len(src.Discussions) {
			t.Errorf("record %d: %d discussions, want %d", i, len(r.Discussions), len(src.Discussions))
		}
		if r.TotalComments() != src.CommentCount() {
			t.Errorf("record %d comment count mismatch", i)
		}
		if r.OpenDiscussions() != src.OpenDiscussions() {
			t.Errorf("record %d open mismatch", i)
		}
		if r.InboundLinks != len(src.Inbound) {
			t.Errorf("record %d inbound mismatch", i)
		}
		if r.MaxOpenDiscussions != w.MaxOpenDiscussions {
			t.Errorf("record %d MaxOpenDiscussions = %d", i, r.MaxOpenDiscussions)
		}
		m, _ := panel.BySource(i)
		if r.Panel.TrafficRank != m.TrafficRank || r.Panel.BounceRate != m.BounceRate {
			t.Errorf("record %d panel mismatch", i)
		}
	}
}

// TestCrawledRecordsMatchWorldRecords is the key integration property: the
// measure inputs assembled from a genuine HTTP crawl must equal the ones
// assembled directly from the in-memory world.
func TestCrawledRecordsMatchWorldRecords(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 32, NumSources: 12, CommentText: true})
	panel := analytics.Build(w, 132)
	ts := httptest.NewServer(webserve.New(w))
	defer ts.Close()

	snap, err := crawler.Crawl(context.Background(), crawler.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Errs) > 0 {
		t.Fatalf("crawl errors: %v", snap.Errs)
	}
	fromCrawl := SourceRecordsFromSnapshot(snap, panel, w.Config.End, w.Days())
	fromWorld := SourceRecordsFromWorld(w, panel)
	if len(fromCrawl) != len(fromWorld) {
		t.Fatalf("lengths differ: %d vs %d", len(fromCrawl), len(fromWorld))
	}

	di := DomainOfInterest{Categories: w.Categories}
	for i := range fromWorld {
		for _, m := range SourceMeasures() {
			vw, okw := m.Eval(fromWorld[i], &di)
			vc, okc := m.Eval(fromCrawl[i], &di)
			if okw != okc {
				t.Errorf("source %d measure %s: definedness differs (world %v, crawl %v)", i, m.ID, okw, okc)
				continue
			}
			if !okw {
				continue
			}
			diff := vw - vc
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-9 {
				t.Errorf("source %d measure %s: world %v != crawl %v", i, m.ID, vw, vc)
			}
		}
	}
}

func TestContributorRecordsFromWorld(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 33, NumSources: 30, NumUsers: 80})
	recs := ContributorRecordsFromWorld(w)
	if len(recs) != 80 {
		t.Fatalf("records = %d", len(recs))
	}
	// Cross-check one aggregate: total interactions across users equals
	// total comments across sources.
	totalComments := 0
	for _, s := range w.Sources {
		totalComments += s.CommentCount()
	}
	totalInteractions := 0
	totalOpened := 0
	totalDiscussions := 0
	for _, r := range recs {
		totalInteractions += r.Interactions
		totalOpened += r.DiscussionsOpened
		if r.Interactions != r.TotalComments() {
			t.Errorf("user %d: interactions %d != comments %d", r.ID, r.Interactions, r.TotalComments())
		}
		if r.DiscussionsTouched > r.Interactions {
			t.Errorf("user %d touched more discussions than comments made", r.ID)
		}
	}
	for _, s := range w.Sources {
		totalDiscussions += len(s.Discussions)
	}
	if totalInteractions != totalComments {
		t.Errorf("interactions %d != comments %d", totalInteractions, totalComments)
	}
	if totalOpened != totalDiscussions {
		t.Errorf("opened %d != discussions %d", totalOpened, totalDiscussions)
	}
}

func TestContributorRecordsFromWorldSpamFlag(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 34, NumSources: 20, NumUsers: 100, SpamRate: 0.3})
	recs := ContributorRecordsFromWorld(w)
	spam := 0
	for i, r := range recs {
		if r.Spammer != w.Users[i].Spammer {
			t.Fatalf("spam flag lost for user %d", i)
		}
		if r.Spammer {
			spam++
		}
	}
	if spam == 0 {
		t.Error("no spammers carried through")
	}
}

func TestContributorRecordsFromSocial(t *testing.T) {
	ds := social.Generate(social.Config{Seed: 35, NumAccounts: 100})
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	recs := ContributorRecordsFromSocial(ds, obs)
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		a := ds.Accounts[i]
		if r.Interactions != a.Interactions {
			t.Errorf("account %d interactions mismatch", i)
		}
		if r.RepliesReceived != a.MentionsReceived || r.FeedbacksReceived != a.RetweetsReceived {
			t.Errorf("account %d reactions mismatch", i)
		}
		// Relative measures must agree with the social package's own.
		if a.Interactions > 0 {
			m, _ := ContributorMeasureByID("usr.authority.relevance")
			v, ok := m.Eval(r, &DomainOfInterest{})
			if !ok || v != a.RelativeMentions() {
				t.Errorf("account %d relative mentions: %v vs %v", i, v, a.RelativeMentions())
			}
		}
	}
}
