package quality

// Incremental-vs-rebuild equivalence of the delta-aware assessment path:
// UpdateRows must produce numbers bit-identical to a from-scratch assessor
// over the same records — for partial dirt (sorted-column repair), full
// dirt (threshold re-sort), and pure time advancement (time-sensitive
// re-evaluation) — and the pre-advance assessor must keep serving its
// original snapshot.

import (
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/webgen"
)

// advancedWorldRecords generates a world, advances it, and returns the
// pre-advance records plus everything needed to build the post-advance
// ones.
func advancedWorld(t *testing.T, n int, seed int64, days int) (*webgen.World, *webgen.World, *webgen.Delta, *analytics.Panel, *analytics.Panel) {
	t.Helper()
	w := webgen.Generate(webgen.Config{Seed: seed, NumSources: n})
	panel := analytics.Build(w, seed+1000)
	nw, delta := webgen.Advance(w, days, seed+2000)
	return w, nw, delta, panel, panel.Refresh(nw)
}

func assertAssessorsEqual(t *testing.T, got *SourceAssessor, want *SourceAssessor, records []*SourceRecord) {
	t.Helper()
	for _, m := range SourceMeasures() {
		gb, gok := got.Benchmark(m.ID)
		wb, wok := want.Benchmark(m.ID)
		if gok != wok || gb != wb {
			t.Fatalf("benchmark %s: got %+v, want %+v", m.ID, gb, wb)
		}
	}
	rankedEqual(t, got.Rank(records), want.Rank(records))
	rankedEqual(t, got.AssessAll(records), want.AssessAll(records))
}

func TestUpdateRowsPartialMatchesRebuild(t *testing.T) {
	w, nw, delta, panel, npanel := advancedWorld(t, 80, 501, 7)
	di := defaultDI()
	oldRecords := SourceRecordsFromWorld(w, panel)
	base := NewSourceAssessor(oldRecords, di, nil)

	records, dirtyRows := UpdateSourceRecordsFromWorld(oldRecords, nw, npanel, delta.DirtySourceIDs())
	if len(dirtyRows) == 0 || len(dirtyRows) == len(records) {
		t.Fatalf("want partial dirt for this seed, got %d/%d dirty rows", len(dirtyRows), len(records))
	}
	// The refreshed records must equal a from-scratch walk of the new world.
	wantRecords := SourceRecordsFromWorld(nw, npanel)
	for i := range records {
		if !reflect.DeepEqual(records[i], wantRecords[i]) {
			t.Fatalf("record %d differs from rebuild:\n got  %+v\n want %+v", i, records[i], wantRecords[i])
		}
	}

	inc := base.UpdateRows(records, dirtyRows, delta.EpochMoved())
	fresh := NewSourceAssessor(records, di, nil)
	assertAssessorsEqual(t, inc, fresh, records)
}

func TestUpdateRowsAllDirtyMatchesRebuild(t *testing.T) {
	w, nw, _, panel, npanel := advancedWorld(t, 40, 503, 7)
	di := defaultDI()
	oldRecords := SourceRecordsFromWorld(w, panel)
	base := NewSourceAssessor(oldRecords, di, nil)

	// Force the 100%-dirty path regardless of what the tick touched: every
	// record rebuilt, every row re-evaluated (the threshold re-sort branch).
	allIDs := make([]int, len(oldRecords))
	for i, r := range oldRecords {
		allIDs[i] = r.ID
	}
	records, dirtyRows := UpdateSourceRecordsFromWorld(oldRecords, nw, npanel, allIDs)
	if len(dirtyRows) != len(records) {
		t.Fatalf("dirty rows = %d, want all %d", len(dirtyRows), len(records))
	}
	inc := base.UpdateRows(records, dirtyRows, true)
	fresh := NewSourceAssessor(records, di, nil)
	assertAssessorsEqual(t, inc, fresh, records)
}

// TestUpdateRowsTimeOnly pins the epoch semantics: a tick that touched no
// source content still moves the observation instant, so time-sensitive
// measures shift for every record while content measures keep their
// benchmarks bit-for-bit.
func TestUpdateRowsTimeOnly(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 505, NumSources: 50})
	panel := analytics.Build(w, 1505)
	di := defaultDI()
	oldRecords := SourceRecordsFromWorld(w, panel)
	base := NewSourceAssessor(oldRecords, di, nil)

	// Move only the clock: same content, later End.
	nw := &webgen.World{
		Config:             w.Config,
		Categories:         w.Categories,
		Sources:            w.Sources,
		Users:              w.Users,
		MaxOpenDiscussions: w.MaxOpenDiscussions,
	}
	nw.Config.End = w.Config.End.AddDate(0, 0, 30)
	npanel := panel.Refresh(nw)
	records, dirtyRows := UpdateSourceRecordsFromWorld(oldRecords, nw, npanel, nil)
	if len(dirtyRows) != 0 {
		t.Fatalf("no source changed, got %d dirty rows", len(dirtyRows))
	}
	inc := base.UpdateRows(records, nil, true)
	fresh := NewSourceAssessor(records, di, nil)
	assertAssessorsEqual(t, inc, fresh, records)

	// Time-sensitive benchmarks moved; the old assessor still serves the
	// old snapshot.
	ob, _ := base.Benchmark("src.time.breadth")
	nb, _ := inc.Benchmark("src.time.breadth")
	if ob == nb {
		t.Error("30 days should move the thread-age benchmark")
	}
	oldAgain, _ := base.Benchmark("src.time.breadth")
	if oldAgain != ob {
		t.Error("pre-advance assessor mutated by UpdateRows")
	}
}

func TestContributorUpdateRowsMatchesRebuild(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 507, NumSources: 40, NumUsers: 160})
	di := defaultDI()
	ix := NewContributorIndex(w)
	base := NewContributorAssessor(ix.Records(), di, nil)

	nw, delta := webgen.Advance(w, 10, 607)
	nix, dirtyRows := ix.Apply(nw, delta)
	records := nix.Records()

	// Index application must equal a from-scratch world walk.
	want := ContributorRecordsFromWorld(nw)
	for i := range records {
		if !reflect.DeepEqual(records[i], want[i]) {
			t.Fatalf("contributor record %d differs from rebuild:\n got  %+v\n want %+v", i, records[i], want[i])
		}
	}
	if len(dirtyRows) == 0 {
		t.Fatal("10-day tick should dirty some contributors")
	}

	inc := base.UpdateRows(records, dirtyRows, delta.EpochMoved())
	fresh := NewContributorAssessor(records, di, nil)
	rankedEqual(t, inc.Rank(records), fresh.Rank(records))
	for _, m := range ContributorMeasures() {
		gb, gok := inc.Benchmark(m.ID)
		wb, wok := fresh.Benchmark(m.ID)
		if gok != wok || gb != wb {
			t.Fatalf("benchmark %s: got %+v, want %+v", m.ID, gb, wb)
		}
	}
}

// TestUpdateRowsChained pins correctness across consecutive ticks: repair
// over repair must still equal a from-scratch rebuild.
func TestUpdateRowsChained(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 509, NumSources: 60})
	panel := analytics.Build(w, 1509)
	di := defaultDI()
	records := SourceRecordsFromWorld(w, panel)
	assessor := NewSourceAssessor(records, di, nil)

	for tick := 0; tick < 3; tick++ {
		nw, delta := webgen.Advance(w, 4, int64(700+tick))
		npanel := panel.Refresh(nw)
		var dirtyRows []int
		records, dirtyRows = UpdateSourceRecordsFromWorld(records, nw, npanel, delta.DirtySourceIDs())
		assessor = assessor.UpdateRows(records, dirtyRows, delta.EpochMoved())
		w, panel = nw, npanel
	}
	fresh := NewSourceAssessor(records, di, nil)
	assertAssessorsEqual(t, assessor, fresh, records)
}

// TestUpdateRowsPreservesReceiver pins the snapshot contract needed for
// concurrent readers: deriving an updated assessor must not change any
// number served by the original.
func TestUpdateRowsPreservesReceiver(t *testing.T) {
	w, nw, delta, panel, npanel := advancedWorld(t, 50, 511, 7)
	di := defaultDI()
	oldRecords := SourceRecordsFromWorld(w, panel)
	base := NewSourceAssessor(oldRecords, di, nil)
	before := base.Rank(oldRecords)

	records, dirtyRows := UpdateSourceRecordsFromWorld(oldRecords, nw, npanel, delta.DirtySourceIDs())
	base.UpdateRows(records, dirtyRows, delta.EpochMoved())

	rankedEqual(t, base.Rank(oldRecords), before)
}
