package quality

// Equivalence guarantees of the measure-matrix engine (matrix.go): the
// worker pool must never change any published number, and measure Eval
// closures must run exactly once per corpus record per assessor lifetime.

import (
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// contribWorld generates a synthetic world with users for contributor
// records.
func contribWorld(t *testing.T, sources, users int, seed int64) *webgen.World {
	t.Helper()
	return webgen.Generate(webgen.Config{Seed: seed, NumSources: sources, NumUsers: users})
}

// rankedEqual deep-compares two rankings including every map.
func rankedEqual(t *testing.T, got, want []*Assessment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("ranking length %d != %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("assessment %d differs:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func TestSourceRankParallelMatchesSingleWorker(t *testing.T) {
	records := worldRecords(t, 120, 7)
	di := defaultDI()
	parallel := NewSourceAssessor(records, di, &AssessorOptions{Workers: 8})
	serial := NewSourceAssessor(records, di, &AssessorOptions{Workers: 1})
	rankedEqual(t, parallel.Rank(records), serial.Rank(records))

	pa := parallel.AssessAll(records)
	sa := serial.AssessAll(records)
	rankedEqual(t, pa, sa)
	for i, r := range records {
		if pa[i].ID != r.ID {
			t.Fatalf("AssessAll order broken at %d: got ID %d, want %d", i, pa[i].ID, r.ID)
		}
	}
	for _, m := range SourceMeasures() {
		pb, pok := parallel.Benchmark(m.ID)
		sb, sok := serial.Benchmark(m.ID)
		if pok != sok || pb != sb {
			t.Fatalf("benchmark %s differs: %+v vs %+v", m.ID, pb, sb)
		}
	}
}

func TestContributorRankParallelMatchesSingleWorker(t *testing.T) {
	world := contribWorld(t, 60, 250, 9)
	records := ContributorRecordsFromWorld(world)
	di := defaultDI()
	parallel := NewContributorAssessor(records, di, &AssessorOptions{Workers: 8})
	serial := NewContributorAssessor(records, di, &AssessorOptions{Workers: 1})
	rankedEqual(t, parallel.Rank(records), serial.Rank(records))
}

// TestSourceEvalRunsOncePerRecord pins the tentpole contract: the cached
// matrix means a measure's Eval runs once per corpus record when the
// assessor is built, and never again for Assess/Rank over those records.
func TestSourceEvalRunsOncePerRecord(t *testing.T) {
	records := worldRecords(t, 40, 11)
	var calls atomic.Int64
	counting := SourceMeasure{
		ID:             "test.counting",
		Description:    "counts Eval invocations",
		Dimension:      Accuracy,
		Attribute:      Relevance,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			calls.Add(1)
			return float64(r.ID), true
		},
	}
	a := NewSourceAssessor(records, defaultDI(), &AssessorOptions{
		ExtraSourceMeasures: []SourceMeasure{counting},
	})
	if got := calls.Load(); got != int64(len(records)) {
		t.Fatalf("construction ran Eval %d times, want %d", got, len(records))
	}
	a.Rank(records)
	a.Rank(records)
	for _, r := range records {
		a.Assess(r)
	}
	if got := calls.Load(); got != int64(len(records)) {
		t.Fatalf("Eval ran %d times after Rank+Assess, want exactly %d (once per record)", got, len(records))
	}
	// A record outside the corpus cannot be served from the matrix and
	// must fall back to direct evaluation.
	outside := *records[0]
	a.Assess(&outside)
	if got := calls.Load(); got != int64(len(records))+1 {
		t.Fatalf("outside-corpus Assess ran Eval %d times total, want %d", got, len(records)+1)
	}
}

func TestContributorEvalRunsOncePerRecord(t *testing.T) {
	world := contribWorld(t, 30, 120, 13)
	records := ContributorRecordsFromWorld(world)
	var calls atomic.Int64
	counting := ContributorMeasure{
		ID:             "test.counting",
		Description:    "counts Eval invocations",
		Dimension:      Accuracy,
		Attribute:      Relevance,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			calls.Add(1)
			return float64(r.ID), true
		},
	}
	a := NewContributorAssessor(records, defaultDI(), &AssessorOptions{
		ExtraContributorMeasures: []ContributorMeasure{counting},
	})
	a.Rank(records)
	for _, r := range records {
		a.Assess(r)
	}
	if got := calls.Load(); got != int64(len(records)) {
		t.Fatalf("Eval ran %d times, want exactly %d (once per record)", got, len(records))
	}
}

// TestExtensionMeasureWithCustomAxes pins the extensibility contract: a
// caller-defined measure may carry a Dimension/Attribute outside the stock
// enums (the paper's "new quality dimensions" extension) without breaking
// assessment.
func TestExtensionMeasureWithCustomAxes(t *testing.T) {
	records := worldRecords(t, 20, 23)
	customDim := Dimension(numDimensions + 2)
	customAtt := Attribute(numAttributes + 1)
	extra := SourceMeasure{
		ID:             "test.custom.axes",
		Description:    "extension measure on caller-defined axes",
		Dimension:      customDim,
		Attribute:      customAtt,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.ID % 7), true
		},
	}
	a := NewSourceAssessor(records, defaultDI(), &AssessorOptions{
		ExtraSourceMeasures: []SourceMeasure{extra},
	})
	for _, as := range a.Rank(records) {
		if _, ok := as.Raw["test.custom.axes"]; !ok {
			t.Fatal("extension measure missing from Raw")
		}
		if _, ok := as.DimensionScores[customDim]; !ok {
			t.Fatalf("custom dimension missing from DimensionScores: %v", as.DimensionScores)
		}
		if _, ok := as.AttributeScores[customAtt]; !ok {
			t.Fatalf("custom attribute missing from AttributeScores: %v", as.AttributeScores)
		}
	}
}

// TestAssessOutsideCorpusMatchesCached checks the fallback path computes
// the same assessment as the cache for an identical record.
func TestAssessOutsideCorpusMatchesCached(t *testing.T) {
	records := worldRecords(t, 50, 17)
	a := NewSourceAssessor(records, defaultDI(), nil)
	for _, r := range records[:10] {
		copyRec := *r
		got := a.Assess(&copyRec)
		want := a.Assess(r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fallback assessment differs for record %d:\n got  %+v\n want %+v", r.ID, got, want)
		}
	}
}
