package quality

import "sort"

// InfluencerStrategy selects how influence is scored. Section 3.2 argues
// that distinguishing absolute interaction volumes from relative (per-
// contribution) reaction rates both identifies users who trigger reactions
// efficiently and filters spammers and bots, whose absolute volume is high
// but whose relative reactions are near zero.
type InfluencerStrategy int

const (
	// ByActivity ranks by absolute interaction volume only (the naive
	// baseline the paper criticises: spammers score high).
	ByActivity InfluencerStrategy = iota
	// ByRelative ranks by per-contribution reaction rates only (penalises
	// prolific-but-ignored users, but also buries steady high-volume
	// contributors).
	ByRelative
	// Combined multiplies normalised absolute and relative signals — the
	// paper's "smart combination".
	Combined
)

// String implements fmt.Stringer.
func (s InfluencerStrategy) String() string {
	switch s {
	case ByActivity:
		return "by-activity"
	case ByRelative:
		return "by-relative"
	case Combined:
		return "combined"
	default:
		return "unknown"
	}
}

// InfluencerOptions configures detection.
type InfluencerOptions struct {
	Strategy InfluencerStrategy
	// TopK bounds the result (0 = all, ranked).
	TopK int
	// MinInteractions drops users below a floor of absolute activity
	// before scoring (default 1).
	MinInteractions int
}

// relativeReactionMeasures are the normalised per-contribution reaction
// rates forming the relative influence signal — the quantity that stays
// near zero for spammers and bots however high their absolute volume.
// Influencers' Combined strategy multiplies it in, and Query's
// MinSpamResistance predicate thresholds it directly.
var relativeReactionMeasures = []string{
	"usr.authority.relevance",
	"usr.dependability.relevance",
}

// Influencer is one detected opinion leader.
type Influencer struct {
	Record *ContributorRecord
	// Assessment is the full Table 2 evaluation.
	Assessment *Assessment
	// InfluenceScore is the strategy-specific ranking score in [0, 1].
	InfluenceScore float64
}

// Influencers detects opinion leaders among the contributors using the
// given assessor for normalisation. Results are best-first.
func Influencers(a *ContributorAssessor, records []*ContributorRecord, opts InfluencerOptions) []Influencer {
	minInteractions := opts.MinInteractions
	if minInteractions <= 0 {
		minInteractions = 1
	}
	kept := make([]*ContributorRecord, 0, len(records))
	for _, r := range records {
		if r.Interactions >= minInteractions {
			kept = append(kept, r)
		}
	}
	assessments := a.AssessAll(kept)
	out := make([]Influencer, 0, len(kept))
	for i, r := range kept {
		as := assessments[i]
		// Absolute signal: the user's own contribution volume and its raw
		// visibility. Reactions received stay out of this signal — they
		// belong to the relative side, which is exactly what lets the
		// combination expose spammers (huge own volume, no reactions).
		abs := avgOf(as.Normalized,
			"usr.completeness.activity",
			"usr.time.activity",
		)
		// Relative signal: normalised per-contribution reaction rates.
		rel := avgOf(as.Normalized, relativeReactionMeasures...)
		var score float64
		switch opts.Strategy {
		case ByActivity:
			score = abs
		case ByRelative:
			score = rel
		default:
			score = abs * rel
		}
		out = append(out, Influencer{Record: r, Assessment: as, InfluenceScore: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InfluenceScore != out[j].InfluenceScore {
			return out[i].InfluenceScore > out[j].InfluenceScore
		}
		return out[i].Record.ID < out[j].Record.ID
	})
	if opts.TopK > 0 && len(out) > opts.TopK {
		out = out[:opts.TopK]
	}
	return out
}

// avgOf averages the values present among the given keys.
func avgOf(m map[string]float64, keys ...string) float64 {
	var sum float64
	n := 0
	for _, k := range keys {
		if v, ok := m[k]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
