package quality

import "sort"

// InfluencerStrategy selects how influence is scored. Section 3.2 argues
// that distinguishing absolute interaction volumes from relative (per-
// contribution) reaction rates both identifies users who trigger reactions
// efficiently and filters spammers and bots, whose absolute volume is high
// but whose relative reactions are near zero.
type InfluencerStrategy int

const (
	// ByActivity ranks by absolute interaction volume only (the naive
	// baseline the paper criticises: spammers score high).
	ByActivity InfluencerStrategy = iota
	// ByRelative ranks by per-contribution reaction rates only (penalises
	// prolific-but-ignored users, but also buries steady high-volume
	// contributors).
	ByRelative
	// Combined multiplies normalised absolute and relative signals — the
	// paper's "smart combination".
	Combined
)

// String implements fmt.Stringer.
func (s InfluencerStrategy) String() string {
	switch s {
	case ByActivity:
		return "by-activity"
	case ByRelative:
		return "by-relative"
	case Combined:
		return "combined"
	default:
		return "unknown"
	}
}

// InfluencerOptions configures detection.
type InfluencerOptions struct {
	Strategy InfluencerStrategy
	// TopK bounds the result (0 = all, ranked).
	TopK int
	// MinInteractions drops users below a floor of absolute activity
	// before scoring (default 1).
	MinInteractions int
}

// relativeReactionMeasures are the normalised per-contribution reaction
// rates forming the relative influence signal — the quantity that stays
// near zero for spammers and bots however high their absolute volume.
// Influencers' Combined strategy multiplies it in, and Query's
// MinSpamResistance predicate thresholds it directly.
var relativeReactionMeasures = []string{
	"usr.authority.relevance",
	"usr.dependability.relevance",
}

// Influencer is one detected opinion leader.
type Influencer struct {
	Record *ContributorRecord
	// Assessment is the full Table 2 evaluation.
	Assessment *Assessment
	// InfluenceScore is the strategy-specific ranking score in [0, 1].
	InfluenceScore float64
}

// Influencers detects opinion leaders among the contributors using the
// given assessor for normalisation. Results are best-first.
func Influencers(a *ContributorAssessor, records []*ContributorRecord, opts InfluencerOptions) []Influencer {
	minInteractions := opts.MinInteractions
	if minInteractions <= 0 {
		minInteractions = 1
	}
	kept := make([]*ContributorRecord, 0, len(records))
	for _, r := range records {
		if r.Interactions >= minInteractions {
			kept = append(kept, r)
		}
	}
	assessments := a.AssessAll(kept)
	out := make([]Influencer, 0, len(kept))
	for i, r := range kept {
		as := assessments[i]
		out = append(out, Influencer{Record: r, Assessment: as,
			InfluenceScore: scoreInfluencer(as, opts.Strategy)})
	}
	sortInfluencers(out)
	if opts.TopK > 0 && len(out) > opts.TopK {
		out = out[:opts.TopK]
	}
	return out
}

// scoreInfluencer computes the strategy-specific influence score from a
// contributor's assessment.
func scoreInfluencer(as *Assessment, strategy InfluencerStrategy) float64 {
	// Absolute signal: the user's own contribution volume and its raw
	// visibility. Reactions received stay out of this signal — they
	// belong to the relative side, which is exactly what lets the
	// combination expose spammers (huge own volume, no reactions).
	abs := avgOf(as.Normalized,
		"usr.completeness.activity",
		"usr.time.activity",
	)
	// Relative signal: normalised per-contribution reaction rates.
	rel := avgOf(as.Normalized, relativeReactionMeasures...)
	switch strategy {
	case ByActivity:
		return abs
	case ByRelative:
		return rel
	default:
		return abs * rel
	}
}

func sortInfluencers(out []Influencer) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].InfluenceScore != out[j].InfluenceScore {
			return out[i].InfluenceScore > out[j].InfluenceScore
		}
		return out[i].Record.ID < out[j].Record.ID
	})
}

// RepairInfluencers derives the current round's roster from prev — the
// FULL roster (TopK == 0) the previous round's assessor produced — by
// re-scoring only the contributors a tick dirtied. The caller must hold
// the repair licence: the epoch did not move and a.BenchmarksEqual(the
// previous assessor) — then a clean contributor's record, assessment and
// score are all unchanged and ride over by reference; dirty contributors
// are re-assessed against the current matrix, re-applying the
// MinInteractions floor (newly qualifying contributors join, disqualified
// ones drop). The result is identical to Influencers(a, records, opts)
// with TopK == 0.
func RepairInfluencers(prev []Influencer, a *ContributorAssessor, records []*ContributorRecord, dirty []int, opts InfluencerOptions) []Influencer {
	minInteractions := opts.MinInteractions
	if minInteractions <= 0 {
		minInteractions = 1
	}
	byID := make(map[int]*ContributorRecord, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	dirtySet := make(map[int]bool, len(dirty))
	for _, id := range dirty {
		dirtySet[id] = true
	}
	out := make([]Influencer, 0, len(prev)+len(dirty))
	for _, inf := range prev {
		id := inf.Record.ID
		if dirtySet[id] {
			continue // re-scored below
		}
		if rec, ok := byID[id]; ok {
			// Clean row: the record content is unchanged; refresh the
			// pointer to the current round's record and keep the shared
			// assessment and score.
			inf.Record = rec
			out = append(out, inf)
		}
	}
	for _, id := range dirty {
		r, ok := byID[id]
		if !ok || r.Interactions < minInteractions {
			continue
		}
		as := a.Assess(r)
		out = append(out, Influencer{Record: r, Assessment: as,
			InfluenceScore: scoreInfluencer(as, opts.Strategy)})
	}
	sortInfluencers(out)
	return out
}

// avgOf averages the values present among the given keys.
func avgOf(m map[string]float64, keys ...string) float64 {
	var sum float64
	n := 0
	for _, k := range keys {
		if v, ok := m[k]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
