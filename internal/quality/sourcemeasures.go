package quality

// SourceMeasure is one non-N/A cell of Table 1: a named, documented
// evaluator over a SourceRecord. Eval returns ok=false when the measure is
// undefined for the record (e.g. a ratio with an empty denominator).
type SourceMeasure struct {
	// ID is stable and hierarchical, e.g. "src.accuracy.relevance".
	ID          string
	Description string
	Dimension   Dimension
	Attribute   Attribute
	Provenance  Provenance
	// DomainDependent marks the italic cells: measures whose value depends
	// on the Domain of Interest.
	DomainDependent bool
	// HigherIsBetter orients normalisation; e.g. traffic rank and bounce
	// rate improve downward.
	HigherIsBetter bool
	// TimeSensitive marks measures whose value can change when the
	// observation instant moves even though the record's own content did
	// not: ages measured from ObservedAt, per-day rates over the window,
	// and comparisons against corpus-wide bases (MaxOpenDiscussions, the
	// panel's per-day activity estimate). Incremental advancement
	// (UpdateRows) re-evaluates these for every record on each tick;
	// everything else is re-evaluated only for dirty records.
	TimeSensitive bool
	Eval          func(r *SourceRecord, di *DomainOfInterest) (float64, bool)
}

// relevantDiscussion reports whether d belongs to the DI (category and time
// window).
func relevantDiscussion(d *DiscussionStat, di *DomainOfInterest) bool {
	return di.InCategory(d.Category) && di.InWindow(d.Opened)
}

// sourceMeasures is the full Table 1 catalogue, in row-major table order.
var sourceMeasures = []SourceMeasure{
	{
		ID:              "src.accuracy.relevance",
		Description:     "open discussions covering the DI content categories over total discussions",
		Dimension:       Accuracy,
		Attribute:       Relevance,
		Provenance:      Crawling,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *SourceRecord, di *DomainOfInterest) (float64, bool) {
			total, covered := 0, 0
			for i := range r.Discussions {
				d := &r.Discussions[i]
				if !d.Open {
					continue
				}
				total++
				if relevantDiscussion(d, di) {
					covered++
				}
			}
			if total == 0 {
				return 0, false
			}
			return float64(covered) / float64(total), true
		},
	},
	{
		ID:              "src.accuracy.breadth",
		Description:     "average number of comments per DI content category",
		Dimension:       Accuracy,
		Attribute:       Breadth,
		Provenance:      Crawling,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *SourceRecord, di *DomainOfInterest) (float64, bool) {
			perCat := map[string]int{}
			for i := range r.Discussions {
				d := &r.Discussions[i]
				if !relevantDiscussion(d, di) {
					continue
				}
				perCat[d.Category] += len(d.Comments)
			}
			if len(perCat) == 0 {
				return 0, false
			}
			total := 0
			for _, n := range perCat {
				total += n
			}
			return float64(total) / float64(len(perCat)), true
		},
	},
	{
		ID:              "src.completeness.relevance",
		Description:     "centrality: number of DI content categories covered",
		Dimension:       Completeness,
		Attribute:       Relevance,
		Provenance:      Crawling,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *SourceRecord, di *DomainOfInterest) (float64, bool) {
			cats := map[string]bool{}
			for i := range r.Discussions {
				d := &r.Discussions[i]
				if relevantDiscussion(d, di) {
					cats[d.Category] = true
				}
			}
			return float64(len(cats)), true
		},
	},
	{
		ID:              "src.completeness.breadth",
		Description:     "open discussions per DI content category",
		Dimension:       Completeness,
		Attribute:       Breadth,
		Provenance:      Crawling,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *SourceRecord, di *DomainOfInterest) (float64, bool) {
			perCat := map[string]int{}
			for i := range r.Discussions {
				d := &r.Discussions[i]
				if d.Open && relevantDiscussion(d, di) {
					perCat[d.Category]++
				}
			}
			if len(perCat) == 0 {
				return 0, false
			}
			total := 0
			for _, n := range perCat {
				total += n
			}
			return float64(total) / float64(len(perCat)), true
		},
	},
	{
		ID:             "src.completeness.traffic",
		TimeSensitive:  true,
		Description:    "open discussions compared to the largest Web blog/forum",
		Dimension:      Completeness,
		Attribute:      Traffic,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if r.MaxOpenDiscussions == 0 {
				return 0, false
			}
			return float64(r.OpenDiscussions()) / float64(r.MaxOpenDiscussions), true
		},
	},
	{
		ID:             "src.completeness.liveliness",
		Description:    "number of comments per user",
		Dimension:      Completeness,
		Attribute:      Liveliness,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			users := r.DistinctCommenters()
			if users == 0 {
				return 0, false
			}
			return float64(r.TotalComments()) / float64(users), true
		},
	},
	{
		ID:            "src.time.breadth",
		TimeSensitive: true,
		Description:   "average age of discussion threads (days)",
		Dimension:     Time,
		Attribute:     Breadth,
		Provenance:    Crawling,
		// Fresher threads respond to newer issues; large average age means
		// a stale board, so the measure improves downward.
		HigherIsBetter: false,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if len(r.Discussions) == 0 || r.ObservedAt.IsZero() {
				return 0, false
			}
			var sum float64
			for i := range r.Discussions {
				sum += r.ObservedAt.Sub(r.Discussions[i].Opened).Hours() / 24
			}
			return sum / float64(len(r.Discussions)), true
		},
	},
	{
		ID:             "src.time.traffic",
		Description:    "traffic rank (panel; 1 = most traffic)",
		Dimension:      Time,
		Attribute:      Traffic,
		Provenance:     Panel,
		HigherIsBetter: false,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if r.Panel.TrafficRank <= 0 {
				return 0, false
			}
			return float64(r.Panel.TrafficRank), true
		},
	},
	{
		ID:             "src.time.liveliness",
		TimeSensitive:  true,
		Description:    "average number of newly opened discussions per day (panel)",
		Dimension:      Time,
		Attribute:      Liveliness,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return r.Panel.NewDiscussionsPerDay, true
		},
	},
	{
		ID:             "src.interpretability.breadth",
		Description:    "average number of distinct tags per post",
		Dimension:      Interpretability,
		Attribute:      Breadth,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			posts, tags := 0, 0
			for i := range r.Discussions {
				d := &r.Discussions[i]
				posts++
				tags += d.TagCount
				for j := range d.Comments {
					posts++
					tags += d.Comments[j].TagCount
				}
			}
			if posts == 0 {
				return 0, false
			}
			return float64(tags) / float64(posts), true
		},
	},
	{
		ID:             "src.authority.relevance.inbound",
		Description:    "number of inbound links (panel)",
		Dimension:      Authority,
		Attribute:      Relevance,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.InboundLinks), true
		},
	},
	{
		ID:             "src.authority.relevance.subscriptions",
		Description:    "number of feed subscriptions (Feedburner substitute)",
		Dimension:      Authority,
		Attribute:      Relevance,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.FeedSubscribers), true
		},
	},
	{
		ID:             "src.authority.traffic.visitors",
		Description:    "daily visitors (panel)",
		Dimension:      Authority,
		Attribute:      Traffic,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return r.Panel.DailyVisitors, true
		},
	},
	{
		ID:             "src.authority.traffic.pageviews",
		Description:    "daily page views (panel)",
		Dimension:      Authority,
		Attribute:      Traffic,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return r.Panel.DailyPageViews, true
		},
	},
	{
		ID:             "src.authority.traffic.timeonsite",
		Description:    "average time spent on site, seconds (panel)",
		Dimension:      Authority,
		Attribute:      Traffic,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return r.Panel.AvgTimeOnSiteSeconds, true
		},
	},
	{
		ID:             "src.authority.liveliness",
		Description:    "daily page views per daily visitor (panel)",
		Dimension:      Authority,
		Attribute:      Liveliness,
		Provenance:     Panel,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if r.Panel.DailyVisitors <= 0 {
				return 0, false
			}
			return r.Panel.DailyPageViews / r.Panel.DailyVisitors, true
		},
	},
	{
		ID:             "src.dependability.relevance",
		Description:    "bounce rate (panel)",
		Dimension:      Dependability,
		Attribute:      Relevance,
		Provenance:     Panel,
		HigherIsBetter: false,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			return r.Panel.BounceRate, true
		},
	},
	{
		ID:             "src.dependability.breadth",
		Description:    "number of comments per discussion",
		Dimension:      Dependability,
		Attribute:      Breadth,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if len(r.Discussions) == 0 {
				return 0, false
			}
			return float64(r.TotalComments()) / float64(len(r.Discussions)), true
		},
	},
	{
		ID:             "src.dependability.liveliness",
		TimeSensitive:  true,
		Description:    "average number of comments per discussion per day",
		Dimension:      Dependability,
		Attribute:      Liveliness,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if len(r.Discussions) == 0 || r.ObservedAt.IsZero() {
				return 0, false
			}
			var sum float64
			n := 0
			for i := range r.Discussions {
				d := &r.Discussions[i]
				ageDays := r.ObservedAt.Sub(d.Opened).Hours() / 24
				if ageDays < 1 {
					ageDays = 1
				}
				sum += float64(len(d.Comments)) / ageDays
				n++
			}
			if n == 0 {
				return 0, false
			}
			return sum / float64(n), true
		},
	},
	{
		// Joined in by the correlation engine (internal/correlate,
		// DESIGN.md section 14): not one of the paper's original 19, but it
		// flows through the same columnar/benchmark/sorted-column pipeline
		// as every Table 1 measure, so it is queryable, sortable, and
		// standing-query-filterable in both the single-matrix and sharded
		// engines.
		ID:             "src.originality",
		Description:    "share of the source's indexed comments that are not near-duplicates of earlier material on other sources",
		Dimension:      Accuracy,
		Attribute:      Relevance,
		Provenance:     Crawling,
		HigherIsBetter: true,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if r.CorrelatedComments == 0 {
				return 0, false // no index ran (or no text): undefined, not zero
			}
			return float64(r.CorrelatedComments-r.DuplicateComments) / float64(r.CorrelatedComments), true
		},
	},
}

// SourceMeasures returns the Table 1 measure catalogue (a copy).
func SourceMeasures() []SourceMeasure {
	return append([]SourceMeasure(nil), sourceMeasures...)
}

// SourceMeasureByID looks up one measure.
func SourceMeasureByID(id string) (SourceMeasure, bool) {
	for _, m := range sourceMeasures {
		if m.ID == id {
			return m, true
		}
	}
	return SourceMeasure{}, false
}

// TableThreeMeasureIDs lists, in the paper's Table 3 order, the ten
// domain-independent measures the factor analysis of Section 4.1 retains
// (Google ranking is domain-independent, so domain-dependent measures were
// excluded).
func TableThreeMeasureIDs() []string {
	return []string{
		"src.time.traffic",                 // traffic rank
		"src.authority.traffic.visitors",   // daily visitors
		"src.authority.traffic.pageviews",  // daily page views
		"src.authority.relevance.inbound",  // number of inbound links
		"src.completeness.traffic",         // open discussions vs largest
		"src.time.liveliness",              // new opened discussions per day
		"src.dependability.breadth",        // comments per discussion
		"src.dependability.liveliness",     // comments per discussion per day
		"src.dependability.relevance",      // bounce rate
		"src.authority.traffic.timeonsite", // average time spent on site
	}
}
