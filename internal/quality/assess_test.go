package quality

import (
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/webgen"
)

func worldRecords(t *testing.T, n int, seed int64) []*SourceRecord {
	t.Helper()
	w := webgen.Generate(webgen.Config{Seed: seed, NumSources: n})
	panel := analytics.Build(w, seed+1000)
	return SourceRecordsFromWorld(w, panel)
}

func defaultDI() DomainOfInterest {
	return DomainOfInterest{Categories: []string{"presence", "place", "potential", "pulse", "people", "prerequisites"}}
}

func TestSourceAssessorScoresInRange(t *testing.T) {
	records := worldRecords(t, 80, 21)
	a := NewSourceAssessor(records, defaultDI(), nil)
	for _, r := range records {
		as := a.Assess(r)
		if as.Score < 0 || as.Score > 1 {
			t.Errorf("score %v out of [0,1]", as.Score)
		}
		for id, n := range as.Normalized {
			if n < 0 || n > 1 {
				t.Errorf("normalized %s = %v out of range", id, n)
			}
		}
		for d, s := range as.DimensionScores {
			if s < 0 || s > 1 {
				t.Errorf("dimension %v score %v out of range", d, s)
			}
		}
		for at, s := range as.AttributeScores {
			if s < 0 || s > 1 {
				t.Errorf("attribute %v score %v out of range", at, s)
			}
		}
	}
}

func TestSourceAssessorRankDeterministicAndSorted(t *testing.T) {
	records := worldRecords(t, 60, 22)
	a := NewSourceAssessor(records, defaultDI(), nil)
	r1 := a.Rank(records)
	r2 := a.Rank(records)
	if len(r1) != 60 {
		t.Fatalf("ranked %d", len(r1))
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Fatal("ranking not deterministic")
		}
		if i > 0 && r1[i].Score > r1[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestBenchmarksFromCorpusQuantiles(t *testing.T) {
	records := worldRecords(t, 100, 23)
	a := NewSourceAssessor(records, defaultDI(), nil)
	b, ok := a.Benchmark("src.authority.traffic.visitors")
	if !ok {
		t.Fatal("missing benchmark")
	}
	if b.Lo >= b.Hi {
		t.Errorf("benchmark degenerate: %+v", b)
	}
	// Quantile benchmarks must be tighter than min/max.
	plain := NewSourceAssessor(records, defaultDI(), &AssessorOptions{PlainMinMax: true})
	pb, _ := plain.Benchmark("src.authority.traffic.visitors")
	if !(pb.Lo <= b.Lo && pb.Hi >= b.Hi) {
		t.Errorf("plain min/max %+v should bracket quantile benchmark %+v", pb, b)
	}
}

func TestWeightsChangeScores(t *testing.T) {
	records := worldRecords(t, 50, 24)
	di := defaultDI()
	base := NewSourceAssessor(records, di, nil)
	// Weight traffic measures to zero: sources strong only in traffic
	// should drop.
	weights := map[string]float64{}
	for _, m := range SourceMeasures() {
		if m.Attribute == Traffic {
			weights[m.ID] = 0
		}
	}
	noTraffic := NewSourceAssessor(records, di, &AssessorOptions{Weights: weights})
	changed := false
	for _, r := range records {
		if base.Assess(r).Score != noTraffic.Assess(r).Score {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("weights had no effect")
	}
}

func TestHighLatentSourcesScoreHigher(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 25, NumSources: 300})
	panel := analytics.Build(w, 1025)
	records := SourceRecordsFromWorld(w, panel)
	a := NewSourceAssessor(records, defaultDI(), nil)
	// Sources in the top latent decile (sum of factors) should
	// outrank the bottom decile on average.
	type pair struct {
		latent float64
		score  float64
	}
	pairs := make([]pair, len(records))
	for i, r := range records {
		s := w.Sources[i]
		pairs[i] = pair{
			latent: s.Latent.Traffic + s.Latent.Participation + s.Latent.Engagement,
			score:  a.Assess(r).Score,
		}
	}
	var hi, lo float64
	var nHi, nLo int
	for _, p := range pairs {
		if p.latent > 1.5 {
			hi += p.score
			nHi++
		}
		if p.latent < -1.5 {
			lo += p.score
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Skip("degenerate latent split")
	}
	if hi/float64(nHi) <= lo/float64(nLo) {
		t.Errorf("high-latent sources score %.3f, low %.3f", hi/float64(nHi), lo/float64(nLo))
	}
}

func TestContributorAssessor(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 26, NumSources: 60, NumUsers: 150})
	recs := ContributorRecordsFromWorld(w)
	a := NewContributorAssessor(recs, defaultDI(), nil)
	ranked := a.Rank(recs)
	if len(ranked) != 150 {
		t.Fatalf("ranked %d contributors", len(ranked))
	}
	for i, as := range ranked {
		if as.Score < 0 || as.Score > 1 {
			t.Errorf("score %v out of range", as.Score)
		}
		if i > 0 && as.Score > ranked[i-1].Score {
			t.Fatal("not sorted")
		}
	}
	if _, ok := a.Benchmark("usr.completeness.activity"); !ok {
		t.Error("missing contributor benchmark")
	}
}

func TestContributorMeasureValues(t *testing.T) {
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	r := &ContributorRecord{
		ID:     7,
		Name:   "alice",
		Joined: obs.AddDate(0, 0, -100),
		CommentsByCategory: map[string]int{
			"place": 6,
			"pulse": 2,
			"":      2, // off-topic
		},
		DiscussionsOpened:  3,
		DiscussionsTouched: 5,
		Interactions:       10,
		RepliesReceived:    20,
		FeedbacksReceived:  5,
		ReadsReceived:      100,
		TagCount:           15,
		ObservedAt:         obs,
	}
	di := &DomainOfInterest{Categories: []string{"place", "pulse"}}
	eval := func(id string) (float64, bool) {
		m, ok := ContributorMeasureByID(id)
		if !ok {
			t.Fatalf("unknown %q", id)
		}
		return m.Eval(r, di)
	}
	// Accuracy x Breadth: (6+2)/2 categories = 4.
	if v, _ := eval("usr.accuracy.breadth"); v != 4 {
		t.Errorf("accuracy.breadth = %v, want 4", v)
	}
	// Centrality: 2 DI categories (off-topic excluded).
	if v, _ := eval("usr.completeness.relevance"); v != 2 {
		t.Errorf("centrality = %v, want 2", v)
	}
	if v, _ := eval("usr.completeness.breadth"); v != 3 {
		t.Errorf("opened = %v, want 3", v)
	}
	if v, _ := eval("usr.completeness.activity"); v != 10 {
		t.Errorf("interactions = %v, want 10", v)
	}
	// Interactions per discussion: 10/5.
	if v, _ := eval("usr.completeness.liveliness"); v != 2 {
		t.Errorf("interactions per discussion = %v, want 2", v)
	}
	if v, _ := eval("usr.time.breadth"); v != 100 {
		t.Errorf("age = %v, want 100", v)
	}
	if v, _ := eval("usr.time.activity"); v != 100 {
		t.Errorf("reads = %v, want 100", v)
	}
	// Interactions per day: 10/100.
	if v, _ := eval("usr.time.liveliness"); v != 0.1 {
		t.Errorf("interactions/day = %v, want 0.1", v)
	}
	// Tags per post: 15/10 comments.
	if v, _ := eval("usr.interpretability.breadth"); v != 1.5 {
		t.Errorf("tags per post = %v, want 1.5", v)
	}
	// Replies per comment: 20/10.
	if v, _ := eval("usr.authority.relevance"); v != 2 {
		t.Errorf("replies per comment = %v, want 2", v)
	}
	if v, _ := eval("usr.authority.activity"); v != 20 {
		t.Errorf("replies = %v, want 20", v)
	}
	// Feedbacks per comment: 5/10.
	if v, _ := eval("usr.dependability.relevance"); v != 0.5 {
		t.Errorf("feedbacks per comment = %v, want 0.5", v)
	}
	// Comments per discussion: 10 comments / 5 discussions.
	if v, _ := eval("usr.dependability.breadth"); v != 2 {
		t.Errorf("comments per discussion = %v, want 2", v)
	}
	if v, _ := eval("usr.dependability.activity"); v != 5 {
		t.Errorf("feedbacks = %v, want 5", v)
	}
	// Interactions per discussion per day: 10/5/100.
	if v, _ := eval("usr.dependability.liveliness"); v != 0.02 {
		t.Errorf("dep.liveliness = %v, want 0.02", v)
	}
}

func TestContributorMeasureNA(t *testing.T) {
	empty := &ContributorRecord{ID: 1, CommentsByCategory: map[string]int{}}
	di := &DomainOfInterest{}
	for _, id := range []string{
		"usr.accuracy.breadth", "usr.completeness.liveliness",
		"usr.time.breadth", "usr.time.liveliness",
		"usr.interpretability.breadth", "usr.authority.relevance",
		"usr.dependability.relevance", "usr.dependability.breadth",
		"usr.dependability.liveliness",
	} {
		m, _ := ContributorMeasureByID(id)
		if _, ok := m.Eval(empty, di); ok {
			t.Errorf("measure %q should be N/A on empty record", id)
		}
	}
}

func TestAgeDays(t *testing.T) {
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	r := &ContributorRecord{Joined: obs.AddDate(0, 0, -30), ObservedAt: obs}
	if got := r.AgeDays(); got != 30 {
		t.Errorf("age = %v, want 30", got)
	}
	r2 := &ContributorRecord{}
	if r2.AgeDays() != 0 {
		t.Error("zero times must give zero age")
	}
	// Joined after observation (clock skew): clamp to 0.
	r3 := &ContributorRecord{Joined: obs.AddDate(0, 0, 5), ObservedAt: obs}
	if r3.AgeDays() != 0 {
		t.Error("negative age must clamp to 0")
	}
}
