package quality

// Query canonicalization: a stable, injective string form of a Query used
// as the cache key of the per-snapshot query result cache (DESIGN.md
// section 8). Two Queries that differ only in the representation of their
// sets — ID/category/kind order, duplicates — canonicalize identically;
// float thresholds are keyed by their exact bit patterns so keys never
// collide across semantically different bars.

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// CanonicalKey returns the canonical cache key of q. The key is stable
// across processes (no pointers, no map iteration order) and covers every
// field of the query, including the pagination window and the projection —
// identical keys mean identical execution results against one snapshot.
func (q Query) CanonicalKey() string {
	var b strings.Builder
	b.Grow(128)
	b.WriteString("ids=")
	writeCanonicalInts(&b, q.IDs)
	b.WriteString(";cat=")
	writeCanonicalStrings(&b, q.Categories)
	b.WriteString(";kind=")
	writeCanonicalStrings(&b, q.Kinds)
	b.WriteString(";score=")
	writeBits(&b, q.MinScore)
	b.WriteString(";spam=")
	writeBits(&b, q.MinSpamResistance)
	b.WriteString(";dim=")
	dims := make([]int, 0, len(q.MinDimension))
	for d := range q.MinDimension {
		dims = append(dims, int(d))
	}
	sort.Ints(dims)
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(d))
		b.WriteByte(':')
		writeBits(&b, q.MinDimension[Dimension(d)])
	}
	b.WriteString(";att=")
	atts := make([]int, 0, len(q.MinAttribute))
	for at := range q.MinAttribute {
		atts = append(atts, int(at))
	}
	sort.Ints(atts)
	for i, at := range atts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(at))
		b.WriteByte(':')
		writeBits(&b, q.MinAttribute[Attribute(at)])
	}
	b.WriteString(";meas=")
	meas := make([]string, 0, len(q.MinMeasure))
	for id := range q.MinMeasure {
		meas = append(meas, id)
	}
	sort.Strings(meas)
	for i, id := range meas {
		if i > 0 {
			b.WriteByte(',')
		}
		// Measure IDs are caller strings: length-prefix them so an ID
		// containing the separators cannot forge another key.
		b.WriteString(strconv.Itoa(len(id)))
		b.WriteByte('#')
		b.WriteString(id)
		b.WriteByte(':')
		writeBits(&b, q.MinMeasure[id])
	}
	b.WriteString(";sort=")
	b.WriteString(strconv.Itoa(int(q.Sort.By)))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(int(q.Sort.Dimension)))
	b.WriteByte(':')
	b.WriteString(strconv.Itoa(int(q.Sort.Attribute)))
	b.WriteString(";k=")
	b.WriteString(strconv.Itoa(q.TopK))
	b.WriteString(";off=")
	b.WriteString(strconv.Itoa(q.Offset))
	b.WriteString(";lim=")
	b.WriteString(strconv.Itoa(q.Limit))
	b.WriteString(";after=")
	if q.After != nil {
		writeBits(&b, q.After.Key)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(q.After.ID))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(q.After.Pos))
	}
	b.WriteString(";fields=")
	b.WriteString(strconv.Itoa(int(q.Fields)))
	return b.String()
}

// Windowless strips the pagination window and projection from q: the part
// of the query whose ranked spine is shared by every page of a walk. Its
// CanonicalKey is the spine cache key.
func (q Query) Windowless() Query {
	q.TopK, q.Offset, q.Limit, q.After, q.Fields = 0, 0, 0, nil, ProjectFull
	return q
}

// writeBits writes a float's exact bit pattern — injective, unlike any
// decimal formatting. Negative zero is folded onto positive zero: the two
// compare equal in every predicate, so keying them apart would only split
// the cache.
func writeBits(b *strings.Builder, v float64) {
	if v == 0 {
		v = 0
	}
	b.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
}

// writeCanonicalInts writes a sorted, deduplicated int set.
func writeCanonicalInts(b *strings.Builder, xs []int) {
	if len(xs) == 0 {
		return
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	prev := 0
	for i, x := range sorted {
		if i > 0 && x == prev {
			continue
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(x))
		prev = x
	}
}

// writeCanonicalStrings writes a sorted, deduplicated, length-prefixed
// string set (length prefixes keep the key injective for strings that
// contain the separators).
func writeCanonicalStrings(b *strings.Builder, xs []string) {
	if len(xs) == 0 {
		return
	}
	sorted := append([]string(nil), xs...)
	sort.Strings(sorted)
	prev := ""
	for i, x := range sorted {
		if i > 0 && x == prev {
			continue
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(len(x)))
		b.WriteByte('#')
		b.WriteString(x)
		prev = x
	}
}
