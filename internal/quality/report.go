package quality

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report is a serialisable snapshot of a ranking run: the DI it was scoped
// to, the benchmarks used for normalisation, and the ordered assessments.
// Reports let monitoring deployments archive each assessment round and
// diff rankings over time.
type Report struct {
	Kind        string               `json:"kind"` // "sources" or "contributors"
	GeneratedAt time.Time            `json:"generated_at"`
	DI          reportDI             `json:"domain_of_interest"`
	Benchmarks  map[string]Benchmark `json:"benchmarks"`
	Entries     []ReportEntry        `json:"entries"`
}

type reportDI struct {
	Categories []string  `json:"categories,omitempty"`
	Start      time.Time `json:"start,omitempty"`
	End        time.Time `json:"end,omitempty"`
	Locations  []string  `json:"locations,omitempty"`
}

// ReportEntry is one ranked item.
type ReportEntry struct {
	Rank       int                `json:"rank"`
	ID         int                `json:"id"`
	Name       string             `json:"name"`
	Score      float64            `json:"score"`
	Raw        map[string]float64 `json:"raw"`
	Normalized map[string]float64 `json:"normalized"`
}

// NewSourceReport assembles a report from a source assessor and its ranked
// assessments.
func NewSourceReport(a *SourceAssessor, ranked []*Assessment, at time.Time) *Report {
	r := &Report{
		Kind:        "sources",
		GeneratedAt: at,
		DI: reportDI{
			Categories: a.DI.Categories,
			Start:      a.DI.Start,
			End:        a.DI.End,
			Locations:  a.DI.Locations,
		},
		Benchmarks: map[string]Benchmark{},
	}
	for id, b := range a.benchmarks {
		r.Benchmarks[id] = b
	}
	fillEntries(r, ranked)
	return r
}

// NewContributorReport assembles a report from a contributor assessor and
// its ranked assessments.
func NewContributorReport(a *ContributorAssessor, ranked []*Assessment, at time.Time) *Report {
	r := &Report{
		Kind:        "contributors",
		GeneratedAt: at,
		DI: reportDI{
			Categories: a.DI.Categories,
			Start:      a.DI.Start,
			End:        a.DI.End,
			Locations:  a.DI.Locations,
		},
		Benchmarks: map[string]Benchmark{},
	}
	for id, b := range a.benchmarks {
		r.Benchmarks[id] = b
	}
	fillEntries(r, ranked)
	return r
}

func fillEntries(r *Report, ranked []*Assessment) {
	for i, a := range ranked {
		r.Entries = append(r.Entries, ReportEntry{
			Rank:       i + 1,
			ID:         a.ID,
			Name:       a.Name,
			Score:      a.Score,
			Raw:        a.Raw,
			Normalized: a.Normalized,
		})
	}
}

// WriteJSON serialises the report.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("quality: write report: %w", err)
	}
	return nil
}

// ReadReport parses a report previously written with WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("quality: read report: %w", err)
	}
	if r.Kind != "sources" && r.Kind != "contributors" {
		return nil, fmt.Errorf("quality: unknown report kind %q", r.Kind)
	}
	return &r, nil
}

// RankShift compares two reports and returns, per item name, the rank
// change (positive = climbed). Items present in only one report are
// skipped — callers watching churn should inspect Entries directly.
func RankShift(old, new *Report) map[string]int {
	oldRank := map[string]int{}
	for _, e := range old.Entries {
		oldRank[e.Name] = e.Rank
	}
	shift := map[string]int{}
	for _, e := range new.Entries {
		if prev, ok := oldRank[e.Name]; ok {
			shift[e.Name] = prev - e.Rank
		}
	}
	return shift
}
