package quality

// The measure-matrix engine is the shared assessment core behind
// SourceAssessor and ContributorAssessor. Constructing an assessor runs
// every catalogue measure over every corpus record exactly once, in a
// deterministic parallel fan-out, and caches the raw values in a columnar
// [measure][record] matrix. Benchmarks are derived from the matrix with a
// single sort per measure, and Assess/Rank serve corpus records straight
// from the cache — no Eval closure ever runs twice for the same record
// during an assessor's lifetime.

import (
	"sort"

	"github.com/informing-observers/informer/internal/parallel"
	"github.com/informing-observers/informer/internal/stats"
)

// numDimensions and numAttributes bound the fixed-size accumulators of the
// allocation-lean assessment path.
const (
	numDimensions = int(Dependability) + 1
	numAttributes = int(Liveliness) + 1
)

// measureInfo is the record-type-independent metadata of one catalogue
// measure, indexed by catalogue position.
type measureInfo struct {
	id             string
	dimension      Dimension
	attribute      Attribute
	higherIsBetter bool
	// timeSensitive measures are re-evaluated for every record on an
	// incremental update whose tick moved the observation instant; the
	// others only for dirty records (see updateRows).
	timeSensitive bool
}

// matrixEngine evaluates a measure catalogue over a corpus once and serves
// assessments from the cached values. R is the record type (SourceRecord or
// ContributorRecord).
type matrixEngine[R any] struct {
	di    DomainOfInterest
	opts  AssessorOptions
	infos []measureInfo
	evals []func(*R, *DomainOfInterest) (float64, bool)
	ident func(*R) (id int, name string)

	weights    []float64   // per measure, resolved once from opts
	benchmarks []Benchmark // per measure, derived from the matrix

	// dimOff/nDims and attOff/nAtts size the per-axis accumulators.
	// Catalogue measures fit the stock enums, but ExtraSourceMeasures /
	// ExtraContributorMeasures may carry caller-defined Dimension or
	// Attribute values outside them (the paper's "new quality dimensions"
	// extension); the offsets map any such value into a dense index.
	dimOff, nDims int
	attOff, nAtts int

	nRecords int
	col      map[*R]int // corpus record -> matrix column
	vals     []float64  // vals[m*nRecords+c]: raw value of measure m on record c
	present  []bool     // present[m*nRecords+c]: measure defined for record

	// sorted[m] holds measure m's defined values in ascending order — the
	// exact slice the benchmark quantiles were read from. It is retained
	// so updateRows can repair it (remove+insert) instead of re-sorting
	// when only a few records changed. Engines and their sorted columns
	// are immutable after construction; updateRows copies before editing.
	sorted [][]float64
}

// newMatrixEngine fills the matrix and derives the benchmarks.
func newMatrixEngine[R any](
	corpus []*R,
	di DomainOfInterest,
	opts AssessorOptions,
	infos []measureInfo,
	evals []func(*R, *DomainOfInterest) (float64, bool),
	ident func(*R) (int, string),
) *matrixEngine[R] {
	nm, nr := len(infos), len(corpus)
	e := &matrixEngine[R]{
		di:       di,
		opts:     opts,
		infos:    infos,
		evals:    evals,
		ident:    ident,
		weights:  make([]float64, nm),
		nRecords: nr,
		col:      make(map[*R]int, nr),
		vals:     make([]float64, nm*nr),
		present:  make([]bool, nm*nr),
	}
	minDim, maxDim := Dimension(0), Dimension(numDimensions-1)
	minAtt, maxAtt := Attribute(0), Attribute(numAttributes-1)
	for i := range infos {
		e.weights[i] = opts.weight(infos[i].id)
		if d := infos[i].dimension; d < minDim {
			minDim = d
		} else if d > maxDim {
			maxDim = d
		}
		if at := infos[i].attribute; at < minAtt {
			minAtt = at
		} else if at > maxAtt {
			maxAtt = at
		}
	}
	e.dimOff, e.nDims = -int(minDim), int(maxDim-minDim)+1
	e.attOff, e.nAtts = -int(minAtt), int(maxAtt-minAtt)+1
	for c, r := range corpus {
		e.col[r] = c
	}
	// Fill the matrix: workers own contiguous record chunks, every cell is
	// written exactly once, so the result is independent of scheduling.
	e.forEachChunk(nr, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			r := corpus[c]
			for m := range evals {
				if v, ok := evals[m](r, &e.di); ok {
					e.vals[m*nr+c] = v
					e.present[m*nr+c] = true
				}
			}
		}
	})
	// Benchmarks: per measure, gather the defined values in record order
	// and sort once; Lo and Hi both read from the same sorted slice, which
	// is retained for incremental repair.
	e.benchmarks = make([]Benchmark, nm)
	e.sorted = make([][]float64, nm)
	e.forEachChunk(nm, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			values := make([]float64, 0, nr)
			for c := 0; c < nr; c++ {
				if e.present[m*nr+c] {
					values = append(values, e.vals[m*nr+c])
				}
			}
			sort.Float64s(values)
			e.sorted[m] = values
			e.benchmarks[m] = benchmarkFromPresorted(values, opts)
		}
	})
	return e
}

// benchmarkFromPresorted derives a Benchmark from an ascending-sorted value
// slice.
func benchmarkFromPresorted(values []float64, opts AssessorOptions) Benchmark {
	if len(values) == 0 {
		return Benchmark{}
	}
	if opts.PlainMinMax {
		return Benchmark{Lo: values[0], Hi: values[len(values)-1]}
	}
	q := stats.SortedQuantiles(values, opts.BenchmarkLoQ, opts.BenchmarkHiQ)
	return Benchmark{Lo: q[0], Hi: q[1]}
}

// resortDenominator bounds the remove+insert repair: past nRecords /
// resortDenominator dirty records, re-sorting the whole column is cheaper
// (and allocation-flatter) than O(dirty) memmoves over it.
const resortDenominator = 8

// updateRows derives a new engine for an advanced corpus: same record
// population (by position), where the records listed in dirty changed
// content and — when epochMoved — the observation instant moved, which
// shifts every time-sensitive measure. Dirty rows are re-evaluated for all
// measures; clean rows only for time-sensitive ones. Per-measure sorted
// columns are repaired with remove+insert (full re-sort past a dirtiness
// threshold) and the benchmarks re-read from the repaired sort, so every
// derived number is bit-identical to a from-scratch rebuild over the same
// records. The receiver is left untouched and keeps serving concurrent
// readers.
//
// corpus must have the same length and ordering as the construction
// corpus; records not in dirty must hold the same measure inputs as before
// (up to time-sensitive fields). If the population changed shape, fall
// back to building a fresh engine.
func (e *matrixEngine[R]) updateRows(corpus []*R, dirty []int, epochMoved bool) *matrixEngine[R] {
	nm, nr := len(e.infos), e.nRecords
	if len(corpus) != nr {
		return newMatrixEngine(corpus, e.di, e.opts, e.infos, e.evals, e.ident)
	}
	ne := &matrixEngine[R]{
		di:      e.di,
		opts:    e.opts,
		infos:   e.infos,
		evals:   e.evals,
		ident:   e.ident,
		weights: e.weights,
		dimOff:  e.dimOff, nDims: e.nDims,
		attOff: e.attOff, nAtts: e.nAtts,
		nRecords:   nr,
		col:        make(map[*R]int, nr),
		vals:       append([]float64(nil), e.vals...),
		present:    append([]bool(nil), e.present...),
		benchmarks: append([]Benchmark(nil), e.benchmarks...),
		sorted:     make([][]float64, nm),
	}
	for c, r := range corpus {
		ne.col[r] = c
	}
	// Each worker owns a contiguous chunk of measure columns; columns are
	// independent, so the result cannot depend on scheduling.
	e.forEachChunk(nm, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			switch {
			case e.infos[m].timeSensitive && epochMoved:
				// The instant moved under every record: recompute the
				// column wholesale, exactly like construction.
				values := make([]float64, 0, nr)
				for c := 0; c < nr; c++ {
					v, ok := e.evals[m](corpus[c], &ne.di)
					ne.vals[m*nr+c], ne.present[m*nr+c] = v, ok
					if ok {
						values = append(values, v)
					}
				}
				sort.Float64s(values)
				ne.sorted[m] = values
				ne.benchmarks[m] = benchmarkFromPresorted(values, ne.opts)
			case len(dirty)*resortDenominator > nr:
				// Dirtiness threshold exceeded: re-evaluate the dirty rows
				// and re-sort the column from scratch.
				for _, c := range dirty {
					ne.vals[m*nr+c], ne.present[m*nr+c] = e.evals[m](corpus[c], &ne.di)
				}
				values := make([]float64, 0, nr)
				for c := 0; c < nr; c++ {
					if ne.present[m*nr+c] {
						values = append(values, ne.vals[m*nr+c])
					}
				}
				sort.Float64s(values)
				ne.sorted[m] = values
				ne.benchmarks[m] = benchmarkFromPresorted(values, ne.opts)
			default:
				// Sparse dirt: repair the retained sorted column by
				// remove+insert and re-read the quantiles.
				col := e.sorted[m]
				copied := false
				for _, c := range dirty {
					oldV, oldOk := e.vals[m*nr+c], e.present[m*nr+c]
					v, ok := e.evals[m](corpus[c], &ne.di)
					ne.vals[m*nr+c], ne.present[m*nr+c] = v, ok
					if ok == oldOk && (!ok || v == oldV) {
						continue // value unchanged: sorted column unaffected
					}
					if !copied {
						col = append(make([]float64, 0, len(col)+len(dirty)), col...)
						copied = true
					}
					if oldOk {
						col, _ = stats.SortedRemove(col, oldV)
					}
					if ok {
						col = stats.SortedInsert(col, v)
					}
				}
				ne.sorted[m] = col
				if copied {
					ne.benchmarks[m] = benchmarkFromPresorted(col, ne.opts)
				}
			}
		}
	})
	return ne
}

// forEachChunk fans fn out over the assessor's worker pool with
// deterministic contiguous chunking (see internal/parallel).
func (e *matrixEngine[R]) forEachChunk(n int, fn func(lo, hi int)) {
	parallel.ForEachChunk(n, e.opts.Workers, fn)
}

// assess builds the public Assessment for one record. Corpus records are
// served from the matrix; unknown records fall back to evaluating the
// catalogue directly (still once per call). The arithmetic — accumulation
// order, weighting, per-axis averaging — mirrors the historical sequential
// implementation exactly, so scores are bit-for-bit reproducible.
func (e *matrixEngine[R]) assess(r *R) *Assessment {
	return e.assessProject(r, ProjectFull)
}

// assessProject is assess with a projection: ProjectScores skips the
// per-measure Raw/Normalized maps (the query serving path).
func (e *matrixEngine[R]) assessProject(r *R, fields Projection) *Assessment {
	nm, nr := len(e.infos), e.nRecords

	raw := make([]float64, nm)
	def := make([]bool, nm)
	if c, cached := e.col[r]; cached {
		for m := 0; m < nm; m++ {
			raw[m] = e.vals[m*nr+c]
			def[m] = e.present[m*nr+c]
		}
	} else {
		for m := range e.evals {
			raw[m], def[m] = e.evals[m](r, &e.di)
		}
	}

	norm := make([]float64, nm)
	// Stock catalogues index straight into the stack arrays; engines with
	// out-of-enum extension measures spill to heap slices of the right size.
	var dimSumArr, dimNArr [numDimensions]float64
	var attSumArr, attNArr [numAttributes]float64
	dimSum, dimN := dimSumArr[:], dimNArr[:]
	attSum, attN := attSumArr[:], attNArr[:]
	if e.nDims > numDimensions {
		dimSum, dimN = make([]float64, e.nDims), make([]float64, e.nDims)
	}
	if e.nAtts > numAttributes {
		attSum, attN = make([]float64, e.nAtts), make([]float64, e.nAtts)
	}
	var wSum, wTotal float64
	defined := 0
	for m := 0; m < nm; m++ {
		if !def[m] {
			continue
		}
		defined++
		info := &e.infos[m]
		n := e.benchmarks[m].Normalize(raw[m], info.higherIsBetter)
		norm[m] = n
		w := e.weights[m]
		wSum += w * n
		wTotal += w
		d := int(info.dimension) + e.dimOff
		dimSum[d] += n
		dimN[d]++
		at := int(info.attribute) + e.attOff
		attSum[at] += n
		attN[at]++
	}

	id, name := e.ident(r)
	out := &Assessment{ID: id, Name: name}
	if fields == ProjectFull {
		out.Raw = make(map[string]float64, defined)
		out.Normalized = make(map[string]float64, defined)
		for m := 0; m < nm; m++ {
			if def[m] {
				out.Raw[e.infos[m].id] = raw[m]
				out.Normalized[e.infos[m].id] = norm[m]
			}
		}
	}
	if wTotal > 0 {
		out.Score = wSum / wTotal
	}
	nDim, nAtt := 0, 0
	for d := range dimN {
		if dimN[d] > 0 {
			nDim++
		}
	}
	for at := range attN {
		if attN[at] > 0 {
			nAtt++
		}
	}
	out.DimensionScores = make(map[Dimension]float64, nDim)
	for d := range dimN {
		if dimN[d] > 0 {
			out.DimensionScores[Dimension(d-e.dimOff)] = dimSum[d] / dimN[d]
		}
	}
	out.AttributeScores = make(map[Attribute]float64, nAtt)
	for at := range attN {
		if attN[at] > 0 {
			out.AttributeScores[Attribute(at-e.attOff)] = attSum[at] / attN[at]
		}
	}
	return out
}

// assessAll assesses records in input order with the worker pool; the
// output slot of each record is fixed by its position, so the result is
// identical for any worker count.
func (e *matrixEngine[R]) assessAll(records []*R) []*Assessment {
	out := make([]*Assessment, len(records))
	e.forEachChunk(len(records), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.assess(records[i])
		}
	})
	return out
}

// rank assesses all records in parallel and merges deterministically:
// score descending, ID ascending.
func (e *matrixEngine[R]) rank(records []*R) []*Assessment {
	out := e.assessAll(records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// benchmarkIndex exposes the derived benchmark of the measure at catalogue
// position m.
func (e *matrixEngine[R]) benchmarkAt(m int) Benchmark { return e.benchmarks[m] }
