package quality

// The measure-matrix engine is the shared assessment core behind
// SourceAssessor and ContributorAssessor. Constructing an assessor runs
// every catalogue measure over every corpus record exactly once, in a
// deterministic parallel fan-out, and caches the raw values in a columnar
// [measure][record] matrix. Benchmarks are derived from the matrix with a
// single sort per measure, and Assess/Rank serve corpus records straight
// from the cache — no Eval closure ever runs twice for the same record
// during an assessor's lifetime.

import (
	"sort"
	"sync/atomic"

	"github.com/informing-observers/informer/internal/parallel"
	"github.com/informing-observers/informer/internal/stats"
)

// numDimensions and numAttributes bound the fixed-size accumulators of the
// allocation-lean assessment path.
const (
	numDimensions = int(Dependability) + 1
	numAttributes = int(Liveliness) + 1
)

// measureInfo is the record-type-independent metadata of one catalogue
// measure, indexed by catalogue position.
type measureInfo struct {
	id             string
	dimension      Dimension
	attribute      Attribute
	higherIsBetter bool
	// timeSensitive measures are re-evaluated for every record on an
	// incremental update whose tick moved the observation instant; the
	// others only for dirty records (see updateRows).
	timeSensitive bool
}

// engineAPI is the assessment-engine surface the assessors program
// against. Two implementations exist: the single measure matrix below
// (today's default, AssessorOptions.Shards <= 1) and the sharded
// scatter-gather engine of shard.go (Shards >= 2). The assessors never
// know which one they hold, so every public method — Assess, Rank, Query,
// Spine, UpdateRows — works identically at any shard count, and the
// cross-shard equivalence suite pins the outputs bit-identical.
type engineAPI[R any] interface {
	assess(r *R) *Assessment
	assessAll(records []*R) []*Assessment
	rank(records []*R) []*Assessment
	benchmarkAt(m int) Benchmark
	measurePos(id string) int
	rankTopK(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*QueryResult, error)
	spine(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*Spine, error)
	window(records []*R, sp *Spine, q Query) (*QueryResult, error)
	repairSpine(records []*R, prev *Spine, q Query, keep func(*R) bool, spamIdx []int) (*Spine, bool)
	update(corpus []*R, dirty []int, epochMoved bool) engineAPI[R]
	shardCount() int
	spineStats() *spineCounters
}

// SpineStats counts the standing-spine evaluation work an assessor has
// performed since it was derived — the observability hook behind the
// dirty-shard evaluation pins: a tick that dirties one shard of N must
// cost one Repair (or Scan) plus N-1 Carries, never N Scans.
type SpineStats struct {
	// Scans counts full shard scans (fresh spine evaluations, one per
	// shard actually scanned — routed-out shards never count).
	Scans int64
	// Repairs counts per-shard spine repairs: dirty rows re-evaluated and
	// re-inserted into the carried ranked order instead of re-scanning.
	Repairs int64
	// Carries counts per-shard spines reused untouched from the previous
	// round (clean shard, benchmarks unchanged).
	Carries int64
}

// spineCounters is the atomic backing store of SpineStats; engines share
// one per derivation behind a pointer (atomic types must not be copied).
type spineCounters struct {
	scans, repairs, carries atomic.Int64
}

func (c *spineCounters) stats() SpineStats {
	return SpineStats{Scans: c.scans.Load(), Repairs: c.repairs.Load(), Carries: c.carries.Load()}
}

// matrixEngine evaluates a measure catalogue over a corpus once and serves
// assessments from the cached values. R is the record type (SourceRecord or
// ContributorRecord).
//
//informer:snapshot
type matrixEngine[R any] struct {
	di    DomainOfInterest
	opts  AssessorOptions
	infos []measureInfo
	evals []func(*R, *DomainOfInterest) (float64, bool)
	ident func(*R) (id int, name string)

	weights    []float64   // per measure, resolved once from opts
	benchmarks []Benchmark // per measure, derived from the matrix

	// dimOff/nDims and attOff/nAtts size the per-axis accumulators.
	// Catalogue measures fit the stock enums, but ExtraSourceMeasures /
	// ExtraContributorMeasures may carry caller-defined Dimension or
	// Attribute values outside them (the paper's "new quality dimensions"
	// extension); the offsets map any such value into a dense index.
	dimOff, nDims int
	attOff, nAtts int

	nRecords int
	recs     []*R       // the corpus the engine was built (or last derived) over
	col      map[*R]int // corpus record -> matrix column; never mutated after construction, so derivations with identical record pointers share it
	// vals[m][c] / present[m][c]: the raw value of measure m on record c
	// and whether the measure is defined there, stored measure-major. Rows
	// are immutable once an engine is published: derive shares every row
	// header with its parent and the update paths copy a measure's row
	// only before the first cell that actually changes, so a sparse tick
	// allocates columns only for the measures it really moved.
	vals    [][]float64
	present [][]bool

	// sorted[m] holds measure m's defined values in ascending order — the
	// exact slice the benchmark quantiles were read from. It is retained
	// so updateRows can repair it (remove+insert) instead of re-sorting
	// when only a few records changed. Engines and their sorted columns
	// are immutable after construction; updateRows copies before editing.
	// Shard-member engines leave it nil: their benchmarks come from the
	// corpus-global ledger (shard.go), which owns the sorted columns.
	sorted [][]float64

	// Incremental-update provenance, read by repairSpine: the rows the
	// producing update dirtied, whether its tick moved the observation
	// instant, and whether any benchmark changed bitwise. A from-scratch
	// construction has no predecessor (fresh) and can never carry a spine
	// forward.
	fresh          bool
	lastDirty      []int
	lastEpochMoved bool
	benchChanged   bool

	counters *spineCounters
}

// newMatrixEngine fills the matrix and derives the benchmarks.
//
//informer:mutates constructor fills the engine before it is published
func newMatrixEngine[R any](
	corpus []*R,
	di DomainOfInterest,
	opts AssessorOptions,
	infos []measureInfo,
	evals []func(*R, *DomainOfInterest) (float64, bool),
	ident func(*R) (int, string),
) *matrixEngine[R] {
	e := newMatrixEngineNoBench(corpus, di, opts, infos, evals, ident)
	// Benchmarks: per measure, gather the defined values in record order
	// and sort once; Lo and Hi both read from the same sorted slice, which
	// is retained for incremental repair.
	nm, nr := len(infos), e.nRecords
	e.benchmarks = make([]Benchmark, nm)
	e.sorted = make([][]float64, nm)
	e.forEachChunk(nm, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			vrow, prow := e.vals[m], e.present[m]
			values := make([]float64, 0, nr)
			for c := 0; c < nr; c++ {
				if prow[c] {
					values = append(values, vrow[c])
				}
			}
			sort.Float64s(values)
			e.sorted[m] = values
			e.benchmarks[m] = benchmarkFromPresorted(values, opts)
		}
	})
	return e
}

// newMatrixEngineNoBench fills the matrix only: shard-member engines get
// their benchmarks assigned by the sharded coordinator's corpus-global
// ledger (the two-phase gather of shard.go), so normalisation stays
// corpus-global however the records are partitioned.
//
//informer:mutates constructor fills the engine before it is published
func newMatrixEngineNoBench[R any](
	corpus []*R,
	di DomainOfInterest,
	opts AssessorOptions,
	infos []measureInfo,
	evals []func(*R, *DomainOfInterest) (float64, bool),
	ident func(*R) (int, string),
) *matrixEngine[R] {
	nm, nr := len(infos), len(corpus)
	e := &matrixEngine[R]{
		di:       di,
		opts:     opts,
		infos:    infos,
		evals:    evals,
		ident:    ident,
		weights:  make([]float64, nm),
		nRecords: nr,
		recs:     corpus,
		col:      make(map[*R]int, nr),
		vals:     makeRows[float64](nm, nr),
		present:  makeRows[bool](nm, nr),
		fresh:    true,
		counters: &spineCounters{},
	}
	minDim, maxDim := Dimension(0), Dimension(numDimensions-1)
	minAtt, maxAtt := Attribute(0), Attribute(numAttributes-1)
	for i := range infos {
		e.weights[i] = opts.weight(infos[i].id)
		if d := infos[i].dimension; d < minDim {
			minDim = d
		} else if d > maxDim {
			maxDim = d
		}
		if at := infos[i].attribute; at < minAtt {
			minAtt = at
		} else if at > maxAtt {
			maxAtt = at
		}
	}
	e.dimOff, e.nDims = -int(minDim), int(maxDim-minDim)+1
	e.attOff, e.nAtts = -int(minAtt), int(maxAtt-minAtt)+1
	for c, r := range corpus {
		e.col[r] = c
	}
	// Fill the matrix: workers own contiguous record chunks, every cell is
	// written exactly once, so the result is independent of scheduling.
	e.forEachChunk(nr, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			r := corpus[c]
			for m := range evals {
				if v, ok := evals[m](r, &e.di); ok {
					e.vals[m][c] = v
					e.present[m][c] = true
				}
			}
		}
	})
	return e
}

// makeRows allocates an nm-row, nr-column measure-major matrix over one
// flat backing array (one allocation, full-capped rows so an append can
// never bleed into a neighbour).
func makeRows[T any](nm, nr int) [][]T {
	rows := make([][]T, nm)
	flat := make([]T, nm*nr)
	for m := range rows {
		rows[m] = flat[m*nr : (m+1)*nr : (m+1)*nr]
	}
	return rows
}

// benchmarkFromPresorted derives a Benchmark from an ascending-sorted value
// slice.
func benchmarkFromPresorted(values []float64, opts AssessorOptions) Benchmark {
	if len(values) == 0 {
		return Benchmark{}
	}
	if opts.PlainMinMax {
		return Benchmark{Lo: values[0], Hi: values[len(values)-1]}
	}
	q := stats.SortedQuantiles(values, opts.BenchmarkLoQ, opts.BenchmarkHiQ)
	return Benchmark{Lo: q[0], Hi: q[1]}
}

// benchmarksEqual reports bitwise equality of two benchmark slices — the
// gate for carrying ranked spines across ticks: any benchmark movement
// shifts every normalized value, so a carried ranking would be stale.
func benchmarksEqual(a, b []Benchmark) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resortDenominator bounds the remove+insert repair: past nRecords /
// resortDenominator dirty records, re-sorting the whole column is cheaper
// (and allocation-flatter) than O(dirty) memmoves over it.
const resortDenominator = 8

// updateRows derives a new engine for an advanced corpus: same record
// population (by position), where the records listed in dirty changed
// content and — when epochMoved — the observation instant moved, which
// shifts every time-sensitive measure. Dirty rows are re-evaluated for all
// measures; clean rows only for time-sensitive ones. Per-measure sorted
// columns are repaired with remove+insert (full re-sort past a dirtiness
// threshold) and the benchmarks re-read from the repaired sort, so every
// derived number is bit-identical to a from-scratch rebuild over the same
// records. The receiver is left untouched and keeps serving concurrent
// readers.
//
// corpus must have the same length and ordering as the construction
// corpus; records not in dirty must hold the same measure inputs as before
// (up to time-sensitive fields). If the population changed shape, fall
// back to building a fresh engine.
//
//informer:mutates fills the derived successor engine before it is published
func (e *matrixEngine[R]) updateRows(corpus []*R, dirty []int, epochMoved bool) *matrixEngine[R] {
	nm, nr := len(e.infos), e.nRecords
	if len(corpus) != nr {
		return newMatrixEngine(corpus, e.di, e.opts, e.infos, e.evals, e.ident)
	}
	ne := e.derive(corpus, dirty, epochMoved)
	ne.benchmarks = append([]Benchmark(nil), e.benchmarks...)
	ne.sorted = make([][]float64, nm)
	// Each worker owns a contiguous chunk of measure columns; columns are
	// independent, so the result cannot depend on scheduling.
	e.forEachChunk(nm, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			switch {
			case e.infos[m].timeSensitive && epochMoved:
				// The instant moved under every record: recompute the
				// column wholesale, exactly like construction, into a
				// fresh row (the parent's stays shared and untouched).
				vrow := make([]float64, nr)
				prow := make([]bool, nr)
				values := make([]float64, 0, nr)
				for c := 0; c < nr; c++ {
					v, ok := e.evals[m](corpus[c], &ne.di)
					vrow[c], prow[c] = v, ok
					if ok {
						values = append(values, v)
					}
				}
				ne.vals[m], ne.present[m] = vrow, prow
				sort.Float64s(values)
				ne.sorted[m] = values
				ne.benchmarks[m] = benchmarkFromPresorted(values, ne.opts)
			case len(dirty)*resortDenominator > nr:
				// Dirtiness threshold exceeded: re-evaluate the dirty rows
				// (copy-on-first-change) and re-sort the column from scratch.
				rowsOwned := false
				for _, c := range dirty {
					v, ok := e.evals[m](corpus[c], &ne.di)
					if ok == e.present[m][c] && (!ok || v == e.vals[m][c]) {
						continue // cell unchanged: keep sharing the row
					}
					if !rowsOwned {
						ne.cowRows(m)
						rowsOwned = true
					}
					ne.vals[m][c], ne.present[m][c] = v, ok
				}
				vrow, prow := ne.vals[m], ne.present[m]
				values := make([]float64, 0, nr)
				for c := 0; c < nr; c++ {
					if prow[c] {
						values = append(values, vrow[c])
					}
				}
				sort.Float64s(values)
				ne.sorted[m] = values
				ne.benchmarks[m] = benchmarkFromPresorted(values, ne.opts)
			default:
				// Sparse dirt: repair the retained sorted column by
				// remove+insert and re-read the quantiles. Matrix rows and
				// the sorted column are both copy-on-first-change.
				col := e.sorted[m]
				copied := false
				rowsOwned := false
				for _, c := range dirty {
					oldV, oldOk := e.vals[m][c], e.present[m][c]
					v, ok := e.evals[m](corpus[c], &ne.di)
					if ok == oldOk && (!ok || v == oldV) {
						continue // value unchanged: row and column unaffected
					}
					if !rowsOwned {
						ne.cowRows(m)
						rowsOwned = true
					}
					ne.vals[m][c], ne.present[m][c] = v, ok
					if !copied {
						col = append(make([]float64, 0, len(col)+len(dirty)), col...)
						copied = true
					}
					if oldOk {
						col, _ = stats.SortedRemove(col, oldV)
					}
					if ok {
						col = stats.SortedInsert(col, v)
					}
				}
				ne.sorted[m] = col
				if copied {
					ne.benchmarks[m] = benchmarkFromPresorted(col, ne.opts)
				}
			}
		}
	})
	ne.benchChanged = !benchmarksEqual(e.benchmarks, ne.benchmarks)
	return ne
}

// updateRowsNoBench is updateRows for shard-member engines: it repairs the
// raw matrix (dirty rows for every measure; every row for time-sensitive
// measures when the epoch moved) but leaves benchmarks and sorted columns
// alone — the sharded coordinator repairs its corpus-global ledger from
// the old and new matrices afterwards and assigns the shared benchmarks.
//
//informer:mutates fills the derived successor engine before it is published
func (e *matrixEngine[R]) updateRowsNoBench(corpus []*R, dirty []int, epochMoved bool) *matrixEngine[R] {
	nm, nr := len(e.infos), e.nRecords
	ne := e.derive(corpus, dirty, epochMoved)
	e.forEachChunk(nm, func(lo, hi int) {
		for m := lo; m < hi; m++ {
			if e.infos[m].timeSensitive && epochMoved {
				vrow := make([]float64, nr)
				prow := make([]bool, nr)
				for c := 0; c < nr; c++ {
					vrow[c], prow[c] = e.evals[m](corpus[c], &ne.di)
				}
				ne.vals[m], ne.present[m] = vrow, prow
				continue
			}
			rowsOwned := false
			for _, c := range dirty {
				v, ok := e.evals[m](corpus[c], &ne.di)
				if ok == e.present[m][c] && (!ok || v == e.vals[m][c]) {
					continue // cell unchanged: keep sharing the row
				}
				if !rowsOwned {
					ne.cowRows(m)
					rowsOwned = true
				}
				ne.vals[m][c], ne.present[m][c] = v, ok
			}
		}
	})
	return ne
}

// derive clones the engine's immutable metadata plus a fresh copy of the
// matrix for an update over the given corpus, recording the update's
// provenance for repairSpine.
//
//informer:mutates initialises the clone before it is published
func (e *matrixEngine[R]) derive(corpus []*R, dirty []int, epochMoved bool) *matrixEngine[R] {
	ne := &matrixEngine[R]{
		di:      e.di,
		opts:    e.opts,
		infos:   e.infos,
		evals:   e.evals,
		ident:   e.ident,
		weights: e.weights,
		dimOff:  e.dimOff, nDims: e.nDims,
		attOff: e.attOff, nAtts: e.nAtts,
		nRecords:       e.nRecords,
		recs:           corpus,
		vals:           append([][]float64(nil), e.vals...),
		present:        append([][]bool(nil), e.present...),
		lastDirty:      dirty,
		lastEpochMoved: epochMoved,
		counters:       &spineCounters{},
	}
	ne.col = e.shareOrRebuildCol(corpus)
	return ne
}

// cowRows takes ownership of measure m's matrix rows in a freshly derived
// engine: derive shares every row header with its parent, so the first
// cell an update actually changes copies the value and presence rows
// together. Callers track ownership per measure (each measure is repaired
// by exactly one worker) and call this at most once.
//
//informer:mutates copy-on-write step on a not-yet-published derived engine
func (e *matrixEngine[R]) cowRows(m int) {
	e.vals[m] = append([]float64(nil), e.vals[m]...)
	e.present[m] = append([]bool(nil), e.present[m]...)
}

// shareOrRebuildCol returns the record→column map for a derivation over
// corpus: when every record pointer is unchanged from the engine's own
// corpus — the common case for clean shards and in-place churn — the
// existing map is shared (it is never mutated after construction);
// otherwise a fresh map is built for the refreshed pointers.
func (e *matrixEngine[R]) shareOrRebuildCol(corpus []*R) map[*R]int {
	if len(corpus) == len(e.recs) {
		same := true
		for i := range corpus {
			if corpus[i] != e.recs[i] {
				same = false
				break
			}
		}
		if same {
			return e.col
		}
	}
	col := make(map[*R]int, len(corpus))
	for c, r := range corpus {
		col[r] = c
	}
	return col
}

// remap returns a shallow derivation of a clean shard-member engine for
// the current round's record pointers: matrix, sorted columns and weights
// are shared (the shard's content did not change, so they are still
// exact), the record→column map is shared or rebuilt depending on whether
// the pointers actually moved, and the corpus-global benchmark slice
// swapped in. The receiver keeps serving readers of the previous snapshot
// untouched.
//
//informer:mutates fills the derived successor engine before it is published
func (e *matrixEngine[R]) remap(corpus []*R, benchmarks []Benchmark) *matrixEngine[R] {
	ne := new(matrixEngine[R])
	*ne = *e
	ne.benchmarks = benchmarks
	ne.recs = corpus
	ne.col = e.shareOrRebuildCol(corpus)
	ne.fresh = false
	ne.lastDirty = nil
	ne.lastEpochMoved = false
	ne.benchChanged = false
	ne.counters = &spineCounters{}
	return ne
}

// update implements engineAPI for the single-matrix engine.
func (e *matrixEngine[R]) update(corpus []*R, dirty []int, epochMoved bool) engineAPI[R] {
	return e.updateRows(corpus, dirty, epochMoved)
}

// shardCount implements engineAPI: a single matrix is one shard.
func (e *matrixEngine[R]) shardCount() int { return 1 }

// spineStats implements engineAPI.
func (e *matrixEngine[R]) spineStats() *spineCounters { return e.counters }

// forEachChunk fans fn out over the assessor's worker pool with
// deterministic contiguous chunking (see internal/parallel).
func (e *matrixEngine[R]) forEachChunk(n int, fn func(lo, hi int)) {
	parallel.ForEachChunk(n, e.opts.Workers, fn)
}

// assess builds the public Assessment for one record. Corpus records are
// served from the matrix; unknown records fall back to evaluating the
// catalogue directly (still once per call). The arithmetic — accumulation
// order, weighting, per-axis averaging — mirrors the historical sequential
// implementation exactly, so scores are bit-for-bit reproducible.
func (e *matrixEngine[R]) assess(r *R) *Assessment {
	return e.assessProject(r, ProjectFull)
}

// assessProject is assess with a projection: ProjectScores skips the
// per-measure Raw/Normalized maps (the query serving path).
func (e *matrixEngine[R]) assessProject(r *R, fields Projection) *Assessment {
	nm := len(e.infos)

	raw := make([]float64, nm)
	def := make([]bool, nm)
	if c, cached := e.col[r]; cached {
		for m := 0; m < nm; m++ {
			raw[m] = e.vals[m][c]
			def[m] = e.present[m][c]
		}
	} else {
		for m := range e.evals {
			raw[m], def[m] = e.evals[m](r, &e.di)
		}
	}

	norm := make([]float64, nm)
	// Stock catalogues index straight into the stack arrays; engines with
	// out-of-enum extension measures spill to heap slices of the right size.
	var dimSumArr, dimNArr [numDimensions]float64
	var attSumArr, attNArr [numAttributes]float64
	dimSum, dimN := dimSumArr[:], dimNArr[:]
	attSum, attN := attSumArr[:], attNArr[:]
	if e.nDims > numDimensions {
		dimSum, dimN = make([]float64, e.nDims), make([]float64, e.nDims)
	}
	if e.nAtts > numAttributes {
		attSum, attN = make([]float64, e.nAtts), make([]float64, e.nAtts)
	}
	var wSum, wTotal float64
	defined := 0
	for m := 0; m < nm; m++ {
		if !def[m] {
			continue
		}
		defined++
		info := &e.infos[m]
		n := e.benchmarks[m].Normalize(raw[m], info.higherIsBetter)
		norm[m] = n
		w := e.weights[m]
		wSum += w * n
		wTotal += w
		d := int(info.dimension) + e.dimOff
		dimSum[d] += n
		dimN[d]++
		at := int(info.attribute) + e.attOff
		attSum[at] += n
		attN[at]++
	}

	id, name := e.ident(r)
	out := &Assessment{ID: id, Name: name}
	if fields == ProjectFull {
		out.Raw = make(map[string]float64, defined)
		out.Normalized = make(map[string]float64, defined)
		for m := 0; m < nm; m++ {
			if def[m] {
				out.Raw[e.infos[m].id] = raw[m]
				out.Normalized[e.infos[m].id] = norm[m]
			}
		}
	}
	if wTotal > 0 {
		out.Score = wSum / wTotal
	}
	nDim, nAtt := 0, 0
	for d := range dimN {
		if dimN[d] > 0 {
			nDim++
		}
	}
	for at := range attN {
		if attN[at] > 0 {
			nAtt++
		}
	}
	out.DimensionScores = make(map[Dimension]float64, nDim)
	for d := range dimN {
		if dimN[d] > 0 {
			out.DimensionScores[Dimension(d-e.dimOff)] = dimSum[d] / dimN[d]
		}
	}
	out.AttributeScores = make(map[Attribute]float64, nAtt)
	for at := range attN {
		if attN[at] > 0 {
			out.AttributeScores[Attribute(at-e.attOff)] = attSum[at] / attN[at]
		}
	}
	return out
}

// assessAll assesses records in input order with the worker pool; the
// output slot of each record is fixed by its position, so the result is
// identical for any worker count.
func (e *matrixEngine[R]) assessAll(records []*R) []*Assessment {
	out := make([]*Assessment, len(records))
	e.forEachChunk(len(records), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.assess(records[i])
		}
	})
	return out
}

// rank assesses all records in parallel and merges deterministically:
// score descending, ID ascending.
func (e *matrixEngine[R]) rank(records []*R) []*Assessment {
	out := e.assessAll(records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// benchmarkIndex exposes the derived benchmark of the measure at catalogue
// position m.
func (e *matrixEngine[R]) benchmarkAt(m int) Benchmark { return e.benchmarks[m] }
