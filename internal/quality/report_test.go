package quality

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSourceReportRoundTrip(t *testing.T) {
	records := worldRecords(t, 25, 91)
	a := NewSourceAssessor(records, defaultDI(), nil)
	ranked := a.Rank(records)
	at := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	rep := NewSourceReport(a, ranked, at)

	if rep.Kind != "sources" || len(rep.Entries) != 25 {
		t.Fatalf("report: %s / %d entries", rep.Kind, len(rep.Entries))
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("no benchmarks serialised")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != rep.Kind || len(back.Entries) != len(rep.Entries) {
		t.Fatal("round trip lost structure")
	}
	for i := range rep.Entries {
		if back.Entries[i].Rank != rep.Entries[i].Rank ||
			back.Entries[i].Name != rep.Entries[i].Name ||
			back.Entries[i].Score != rep.Entries[i].Score {
			t.Fatalf("entry %d differs", i)
		}
	}
	if !back.GeneratedAt.Equal(at) {
		t.Errorf("timestamp lost: %v", back.GeneratedAt)
	}
}

func TestContributorReport(t *testing.T) {
	recs := influencerFixture()
	a := NewContributorAssessor(recs, DomainOfInterest{}, nil)
	rep := NewContributorReport(a, a.Rank(recs), time.Now())
	if rep.Kind != "contributors" || len(rep.Entries) != len(recs) {
		t.Fatalf("report: %s / %d", rep.Kind, len(rep.Entries))
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadReport(strings.NewReader(`{"kind":"martians"}`)); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestRankShift(t *testing.T) {
	old := &Report{Entries: []ReportEntry{
		{Rank: 1, Name: "a"}, {Rank: 2, Name: "b"}, {Rank: 3, Name: "c"},
	}}
	new_ := &Report{Entries: []ReportEntry{
		{Rank: 1, Name: "b"}, {Rank: 2, Name: "a"}, {Rank: 3, Name: "d"},
	}}
	shift := RankShift(old, new_)
	if shift["b"] != 1 {
		t.Errorf("b shift = %d, want +1", shift["b"])
	}
	if shift["a"] != -1 {
		t.Errorf("a shift = %d, want -1", shift["a"])
	}
	if _, ok := shift["c"]; ok {
		t.Error("dropped item must not appear")
	}
	if _, ok := shift["d"]; ok {
		t.Error("new item must not appear")
	}
}

func TestExtraSourceMeasures(t *testing.T) {
	records := worldRecords(t, 30, 92)
	custom := SourceMeasure{
		ID:             "src.custom.offtopicshare",
		Description:    "share of off-topic discussions (a new dependability angle)",
		Dimension:      Dependability,
		Attribute:      Relevance,
		Provenance:     Crawling,
		HigherIsBetter: false,
		Eval: func(r *SourceRecord, _ *DomainOfInterest) (float64, bool) {
			if len(r.Discussions) == 0 {
				return 0, false
			}
			off := 0
			for i := range r.Discussions {
				if r.Discussions[i].Category == "" {
					off++
				}
			}
			return float64(off) / float64(len(r.Discussions)), true
		},
	}
	a := NewSourceAssessor(records, defaultDI(), &AssessorOptions{
		ExtraSourceMeasures: []SourceMeasure{custom},
	})
	as := a.Assess(records[0])
	if _, ok := as.Raw["src.custom.offtopicshare"]; !ok {
		t.Fatal("custom measure not evaluated")
	}
	if _, ok := a.Benchmark("src.custom.offtopicshare"); !ok {
		t.Fatal("custom measure has no benchmark")
	}
	// The catalogue itself is untouched.
	if _, ok := SourceMeasureByID("src.custom.offtopicshare"); ok {
		t.Error("custom measure leaked into the global catalogue")
	}
	plain := NewSourceAssessor(records, defaultDI(), nil)
	if _, ok := plain.Assess(records[0]).Raw["src.custom.offtopicshare"]; ok {
		t.Error("custom measure leaked into other assessors")
	}
}

func TestExtraContributorMeasures(t *testing.T) {
	recs := influencerFixture()
	custom := ContributorMeasure{
		ID:             "usr.custom.readrate",
		Description:    "reads per interaction",
		Dimension:      Time,
		Attribute:      Activity,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			if r.Interactions == 0 {
				return 0, false
			}
			return float64(r.ReadsReceived) / float64(r.Interactions), true
		},
	}
	a := NewContributorAssessor(recs, DomainOfInterest{}, &AssessorOptions{
		ExtraContributorMeasures: []ContributorMeasure{custom},
	})
	as := a.Assess(recs[0])
	if _, ok := as.Raw["usr.custom.readrate"]; !ok {
		t.Fatal("custom contributor measure not evaluated")
	}
}
