// Package quality implements the paper's primary contribution: the quality
// model for Web 2.0 sources (Table 1) and contributors (Table 2).
//
// The model crosses data-quality dimensions (accuracy, completeness, time,
// interpretability, authority, dependability — from Batini et al.'s
// classification, revisited for user-generated content) with Web 2.0
// attributes (relevance, breadth of contributions, traffic/activity,
// liveliness). Every non-N/A cell of the paper's tables is a named Measure
// with a provenance ("crawling" vs the analytics panel, mirroring the
// paper's crawling vs www.alexa.com distinction) and a domain-dependence
// flag (the italic cells).
//
// Assessment follows Section 3.1: measures are evaluated against raw
// observation records, normalised against benchmarks derived from
// highly-ranked sources in the corpus, and aggregated as a weighted
// average. A Domain of Interest (DI) — categories, time window, locations —
// scopes the domain-dependent measures.
//
//informer:deterministic
package quality

import (
	"fmt"
	"time"
)

// Dimension is a data-quality dimension (the rows of Tables 1 and 2).
type Dimension int

const (
	Accuracy Dimension = iota
	Completeness
	Time
	Interpretability
	Authority
	Dependability
)

// String implements fmt.Stringer.
func (d Dimension) String() string {
	switch d {
	case Accuracy:
		return "accuracy"
	case Completeness:
		return "completeness"
	case Time:
		return "time"
	case Interpretability:
		return "interpretability"
	case Authority:
		return "authority"
	case Dependability:
		return "dependability"
	default:
		return fmt.Sprintf("Dimension(%d)", int(d))
	}
}

// Dimensions lists all dimensions in table order.
func Dimensions() []Dimension {
	return []Dimension{Accuracy, Completeness, Time, Interpretability, Authority, Dependability}
}

// Attribute is a Web 2.0 quality attribute (the columns of Tables 1 and 2).
// Traffic applies to sources; Activity is its contributor-level counterpart
// (Section 3.2 renames it because individual users have interaction volume,
// not site traffic).
type Attribute int

const (
	Relevance Attribute = iota
	Breadth
	Traffic
	Activity
	Liveliness
)

// String implements fmt.Stringer.
func (a Attribute) String() string {
	switch a {
	case Relevance:
		return "relevance"
	case Breadth:
		return "breadth"
	case Traffic:
		return "traffic"
	case Activity:
		return "activity"
	case Liveliness:
		return "liveliness"
	default:
		return fmt.Sprintf("Attribute(%d)", int(a))
	}
}

// SourceAttributes lists Table 1's columns in order.
func SourceAttributes() []Attribute {
	return []Attribute{Relevance, Breadth, Traffic, Liveliness}
}

// ContributorAttributes lists Table 2's columns in order.
func ContributorAttributes() []Attribute {
	return []Attribute{Relevance, Breadth, Activity, Liveliness}
}

// Provenance records where a measure's raw data comes from, mirroring the
// parenthetical source annotations in Table 1.
type Provenance int

const (
	// Crawling means the value is computed from crawled content.
	Crawling Provenance = iota
	// Panel means the value comes from the external analytics panel
	// (the Alexa / Feedburner substitute).
	Panel
)

// String implements fmt.Stringer.
func (p Provenance) String() string {
	if p == Panel {
		return "panel"
	}
	return "crawling"
}

// DomainOfInterest is the analysis context of Section 3:
// DI = {<c1..cn>, t, <l1..lm>}. The zero value means "no restriction".
type DomainOfInterest struct {
	// Categories are the content categories relevant to the analysis.
	Categories []string
	// Start and End bound the time interval t; zero values are open.
	Start, End time.Time
	// Locations further scope the analysis geographically.
	Locations []string
}

// CategorySet returns the category set, or nil when unrestricted.
func (di *DomainOfInterest) CategorySet() map[string]bool {
	if len(di.Categories) == 0 {
		return nil
	}
	set := make(map[string]bool, len(di.Categories))
	for _, c := range di.Categories {
		set[c] = true
	}
	return set
}

// InCategory reports whether a content category belongs to the DI. An
// unrestricted DI accepts every non-empty category; the empty category
// (off-topic content) never matches.
func (di *DomainOfInterest) InCategory(category string) bool {
	if category == "" {
		return false
	}
	if len(di.Categories) == 0 {
		return true
	}
	for _, c := range di.Categories {
		if c == category {
			return true
		}
	}
	return false
}

// InWindow reports whether t falls inside the DI time interval.
func (di *DomainOfInterest) InWindow(t time.Time) bool {
	if !di.Start.IsZero() && t.Before(di.Start) {
		return false
	}
	if !di.End.IsZero() && t.After(di.End) {
		return false
	}
	return true
}
