package quality

import (
	"testing"
	"time"
)

func TestDimensionStrings(t *testing.T) {
	want := []string{"accuracy", "completeness", "time", "interpretability", "authority", "dependability"}
	for i, d := range Dimensions() {
		if d.String() != want[i] {
			t.Errorf("dimension %d = %q, want %q", i, d.String(), want[i])
		}
	}
	if Dimension(99).String() == "" {
		t.Error("unknown dimension should render")
	}
}

func TestAttributeStrings(t *testing.T) {
	if Relevance.String() != "relevance" || Breadth.String() != "breadth" ||
		Traffic.String() != "traffic" || Activity.String() != "activity" ||
		Liveliness.String() != "liveliness" {
		t.Error("attribute strings wrong")
	}
	if len(SourceAttributes()) != 4 || len(ContributorAttributes()) != 4 {
		t.Error("attribute lists wrong")
	}
	// Table 1 has Traffic; Table 2 replaces it with Activity.
	if SourceAttributes()[2] != Traffic || ContributorAttributes()[2] != Activity {
		t.Error("traffic/activity swap wrong")
	}
}

func TestProvenanceString(t *testing.T) {
	if Crawling.String() != "crawling" || Panel.String() != "panel" {
		t.Error("provenance strings wrong")
	}
}

func TestDomainOfInterestCategory(t *testing.T) {
	di := &DomainOfInterest{Categories: []string{"place", "pulse"}}
	if !di.InCategory("place") || di.InCategory("people") {
		t.Error("category matching wrong")
	}
	if di.InCategory("") {
		t.Error("off-topic must never match")
	}
	open := &DomainOfInterest{}
	if !open.InCategory("anything") || open.InCategory("") {
		t.Error("unrestricted DI wrong")
	}
	set := di.CategorySet()
	if len(set) != 2 || !set["pulse"] {
		t.Errorf("CategorySet = %v", set)
	}
	if open.CategorySet() != nil {
		t.Error("unrestricted set should be nil")
	}
}

func TestDomainOfInterestWindow(t *testing.T) {
	start := time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)
	di := &DomainOfInterest{Start: start, End: end}
	if di.InWindow(start.AddDate(0, 0, -1)) {
		t.Error("before start should fail")
	}
	if !di.InWindow(start.AddDate(0, 1, 0)) {
		t.Error("inside window should pass")
	}
	if di.InWindow(end.AddDate(0, 0, 1)) {
		t.Error("after end should fail")
	}
	open := &DomainOfInterest{}
	if !open.InWindow(time.Now()) {
		t.Error("open window should accept everything")
	}
}

func TestMeasureCatalogueSizes(t *testing.T) {
	// Table 1 has 19 non-N/A measures (authority x relevance holds two and
	// authority x traffic three); the correlation engine joins a 20th
	// (src.originality). Table 2 has 15.
	if got := len(SourceMeasures()); got != 20 {
		t.Errorf("source measures = %d, want 20", got)
	}
	if got := len(ContributorMeasures()); got != 15 {
		t.Errorf("contributor measures = %d, want 15", got)
	}
}

func TestMeasureIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range SourceMeasures() {
		if seen[m.ID] {
			t.Errorf("duplicate measure ID %q", m.ID)
		}
		seen[m.ID] = true
		if _, ok := SourceMeasureByID(m.ID); !ok {
			t.Errorf("measure %q not resolvable", m.ID)
		}
		if m.Description == "" {
			t.Errorf("measure %q lacks description", m.ID)
		}
	}
	for _, m := range ContributorMeasures() {
		if seen[m.ID] {
			t.Errorf("duplicate measure ID %q", m.ID)
		}
		seen[m.ID] = true
		if _, ok := ContributorMeasureByID(m.ID); !ok {
			t.Errorf("measure %q not resolvable", m.ID)
		}
	}
	if _, ok := SourceMeasureByID("nope"); ok {
		t.Error("unknown source measure resolved")
	}
	if _, ok := ContributorMeasureByID("nope"); ok {
		t.Error("unknown contributor measure resolved")
	}
}

func TestTableThreeMeasuresAreDomainIndependent(t *testing.T) {
	ids := TableThreeMeasureIDs()
	if len(ids) != 10 {
		t.Fatalf("Table 3 retains 10 measures, got %d", len(ids))
	}
	for _, id := range ids {
		m, ok := SourceMeasureByID(id)
		if !ok {
			t.Errorf("unknown Table 3 measure %q", id)
			continue
		}
		if m.DomainDependent {
			t.Errorf("measure %q is domain-dependent; Table 3 excludes those", id)
		}
	}
}

func TestBenchmarkNormalize(t *testing.T) {
	b := Benchmark{Lo: 10, Hi: 20}
	cases := []struct {
		v      float64
		higher bool
		want   float64
	}{
		{10, true, 0},
		{20, true, 1},
		{15, true, 0.5},
		{5, true, 0},   // clamped below
		{100, true, 1}, // clamped above
		{15, false, 0.5},
		{10, false, 1},
		{20, false, 0},
	}
	for _, c := range cases {
		if got := b.Normalize(c.v, c.higher); got != c.want {
			t.Errorf("Normalize(%v, %v) = %v, want %v", c.v, c.higher, got, c.want)
		}
	}
	// Degenerate benchmark.
	d := Benchmark{Lo: 5, Hi: 5}
	if got := d.Normalize(5, true); got != 0.5 {
		t.Errorf("degenerate Normalize = %v, want 0.5", got)
	}
}

// fixtureSourceRecord builds a hand-computable record:
//   - 2 open discussions in "place" (3 and 1 comments), 1 closed in "pulse"
//     (2 comments), 1 open off-topic (no comments).
func fixtureSourceRecord() *SourceRecord {
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	day := func(d int) time.Time { return obs.AddDate(0, 0, -d) }
	return &SourceRecord{
		ID:   1,
		Name: "fixture",
		Host: "fixture.test",
		Discussions: []DiscussionStat{
			{Category: "place", Opened: day(10), Open: true, TagCount: 2, Comments: []CommentStat{
				{AuthorID: 1, Posted: day(9), TagCount: 1, Replies: 2, Feedbacks: 1, Reads: 5},
				{AuthorID: 2, Posted: day(8), TagCount: 0, Replies: 0, Feedbacks: 0, Reads: 3},
				{AuthorID: 1, Posted: day(7), TagCount: 1, Replies: 1, Feedbacks: 2, Reads: 2},
			}},
			{Category: "place", Opened: day(20), Open: true, TagCount: 1, Comments: []CommentStat{
				{AuthorID: 3, Posted: day(19), TagCount: 2, Replies: 0, Feedbacks: 0, Reads: 1},
			}},
			{Category: "pulse", Opened: day(40), Open: false, TagCount: 3, Comments: []CommentStat{
				{AuthorID: 2, Posted: day(39), TagCount: 0},
				{AuthorID: 3, Posted: day(38), TagCount: 1},
			}},
			{Category: "", Opened: day(5), Open: true, TagCount: 1},
		},
		InboundLinks:    7,
		FeedSubscribers: 40,
		Panel: PanelStat{
			TrafficRank:          3,
			DailyVisitors:        1000,
			DailyPageViews:       2500,
			BounceRate:           0.4,
			AvgTimeOnSiteSeconds: 120,
			PageViewsPerVisitor:  2.5,
			NewDiscussionsPerDay: 0.5,
		},
		ObservedAt:         obs,
		WindowDays:         180,
		MaxOpenDiscussions: 10,
	}
}

func evalSource(t *testing.T, id string, r *SourceRecord, di *DomainOfInterest) (float64, bool) {
	t.Helper()
	m, ok := SourceMeasureByID(id)
	if !ok {
		t.Fatalf("unknown measure %q", id)
	}
	return m.Eval(r, di)
}

func TestSourceMeasureValues(t *testing.T) {
	r := fixtureSourceRecord()
	di := &DomainOfInterest{Categories: []string{"place", "pulse"}}

	// Accuracy x Relevance: 2 open DI discussions out of 3 open.
	if v, ok := evalSource(t, "src.accuracy.relevance", r, di); !ok || v != 2.0/3.0 {
		t.Errorf("accuracy.relevance = %v, %v; want 2/3", v, ok)
	}
	// Accuracy x Breadth: comments per DI category: place 4, pulse 2 -> 3.
	if v, ok := evalSource(t, "src.accuracy.breadth", r, di); !ok || v != 3 {
		t.Errorf("accuracy.breadth = %v, want 3", v)
	}
	// Completeness x Relevance: centrality = 2 categories covered.
	if v, ok := evalSource(t, "src.completeness.relevance", r, di); !ok || v != 2 {
		t.Errorf("centrality = %v, want 2", v)
	}
	// Completeness x Breadth: open DI discussions per category: place has
	// 2 open, pulse none open -> 2/1 = 2.
	if v, ok := evalSource(t, "src.completeness.breadth", r, di); !ok || v != 2 {
		t.Errorf("completeness.breadth = %v, want 2", v)
	}
	// Completeness x Traffic: 3 open / max 10.
	if v, ok := evalSource(t, "src.completeness.traffic", r, di); !ok || v != 0.3 {
		t.Errorf("completeness.traffic = %v, want 0.3", v)
	}
	// Completeness x Liveliness: 6 comments / 3 distinct users.
	if v, ok := evalSource(t, "src.completeness.liveliness", r, di); !ok || v != 2 {
		t.Errorf("comments per user = %v, want 2", v)
	}
	// Time x Breadth: mean age of (10, 20, 40, 5) = 18.75 days.
	if v, ok := evalSource(t, "src.time.breadth", r, di); !ok || v != 18.75 {
		t.Errorf("thread age = %v, want 18.75", v)
	}
	// Time x Traffic: rank 3.
	if v, ok := evalSource(t, "src.time.traffic", r, di); !ok || v != 3 {
		t.Errorf("traffic rank = %v, want 3", v)
	}
	// Interpretability: tags (2+1+3+1 discussion + 1+0+1+2+0+1 comments) =
	// 12 over 4 discussions + 6 comments = 10 posts.
	if v, ok := evalSource(t, "src.interpretability.breadth", r, di); !ok || v != 1.2 {
		t.Errorf("tags per post = %v, want 1.2", v)
	}
	// Authority measures pass the panel through.
	if v, _ := evalSource(t, "src.authority.relevance.inbound", r, di); v != 7 {
		t.Errorf("inbound = %v", v)
	}
	if v, _ := evalSource(t, "src.authority.relevance.subscriptions", r, di); v != 40 {
		t.Errorf("subscriptions = %v", v)
	}
	if v, _ := evalSource(t, "src.authority.traffic.visitors", r, di); v != 1000 {
		t.Errorf("visitors = %v", v)
	}
	if v, _ := evalSource(t, "src.authority.liveliness", r, di); v != 2.5 {
		t.Errorf("pages per visitor = %v", v)
	}
	// Dependability x Breadth: 6 comments / 4 discussions.
	if v, _ := evalSource(t, "src.dependability.breadth", r, di); v != 1.5 {
		t.Errorf("comments per discussion = %v, want 1.5", v)
	}
	// Dependability x Relevance: bounce rate.
	if v, _ := evalSource(t, "src.dependability.relevance", r, di); v != 0.4 {
		t.Errorf("bounce = %v", v)
	}
	// Dependability x Liveliness: mean of per-thread comments/age:
	// 3/10 + 1/20 + 2/40 + 0/5 = 0.3+0.05+0.05+0 = 0.4 / 4 = 0.1.
	if v, _ := evalSource(t, "src.dependability.liveliness", r, di); v < 0.1-1e-12 || v > 0.1+1e-12 {
		t.Errorf("comments per discussion per day = %v, want 0.1", v)
	}
}

func TestSourceMeasureDIRestriction(t *testing.T) {
	r := fixtureSourceRecord()
	// Restrict DI to pulse only: centrality becomes 1, accuracy.relevance
	// 0/3 (no open pulse discussions).
	di := &DomainOfInterest{Categories: []string{"pulse"}}
	if v, _ := evalSource(t, "src.completeness.relevance", r, di); v != 1 {
		t.Errorf("centrality = %v, want 1", v)
	}
	if v, ok := evalSource(t, "src.accuracy.relevance", r, di); !ok || v != 0 {
		t.Errorf("accuracy.relevance = %v, want 0", v)
	}
	// Time-window restriction: only discussions opened in the last 15
	// days count (place day-10 and off-topic day-5, but off-topic has no
	// category).
	diTime := &DomainOfInterest{Start: r.ObservedAt.AddDate(0, 0, -15)}
	if v, _ := evalSource(t, "src.completeness.relevance", r, diTime); v != 1 {
		t.Errorf("windowed centrality = %v, want 1", v)
	}
}

func TestSourceMeasureNA(t *testing.T) {
	empty := &SourceRecord{ID: 9, ObservedAt: time.Now()}
	di := &DomainOfInterest{}
	for _, id := range []string{
		"src.accuracy.relevance", "src.accuracy.breadth",
		"src.completeness.breadth", "src.completeness.traffic",
		"src.completeness.liveliness", "src.time.breadth",
		"src.time.traffic", "src.interpretability.breadth",
		"src.dependability.breadth", "src.dependability.liveliness",
		"src.authority.liveliness",
	} {
		if _, ok := evalSource(t, id, empty, di); ok {
			t.Errorf("measure %q should be N/A on an empty record", id)
		}
	}
	// Centrality is defined (zero) even on an empty record.
	if v, ok := evalSource(t, "src.completeness.relevance", empty, di); !ok || v != 0 {
		t.Errorf("centrality on empty = %v, %v", v, ok)
	}
}
