package quality

// Window diffing backs the /api/v1/watch endpoint and the monitoring
// demos: observers tracking a standing quality-filtered feed want the rank
// movement of their window across assessment rounds — who entered, who
// left, who moved — not the full re-ranking (Lerman's social-browsing
// observation; DESIGN.md section 8).

// WindowChange is one row's movement between two ranked windows of the
// same query. Ranks are 1-based window positions; a zero rank means the
// row was absent from that window.
type WindowChange struct {
	ID   int
	Name string
	// OldRank is the row's position in the older window (0 = entered).
	OldRank int
	// NewRank is the row's position in the newer window (0 = left).
	NewRank int
	// Score is the row's overall quality score in the newer window, or in
	// the older one for rows that left.
	Score float64
}

// Event classifies the change: "entered", "left" or "moved".
func (c WindowChange) Event() string {
	switch {
	case c.OldRank == 0:
		return "entered"
	case c.NewRank == 0:
		return "left"
	default:
		return "moved"
	}
}

// DiffWindows diffs two ranked windows of one query evaluated on two
// assessment rounds and returns only the rows whose window membership or
// rank changed: rows present in new but not old ("entered"), present in
// both at different positions ("moved"), and present only in old
// ("left"). Rows holding their exact rank are omitted — the delta is
// empty when the window did not move. Changes are ordered by new rank,
// with departed rows last in old-rank order, so the delta is
// deterministic for any input pair.
func DiffWindows(old, new []*Assessment) []WindowChange {
	oldRank := make(map[int]int, len(old))
	for i, a := range old {
		oldRank[a.ID] = i + 1
	}
	changes := make([]WindowChange, 0, len(old)+len(new))
	inNew := make(map[int]bool, len(new))
	for i, a := range new {
		inNew[a.ID] = true
		nr := i + 1
		or := oldRank[a.ID]
		if or == nr {
			continue
		}
		changes = append(changes, WindowChange{ID: a.ID, Name: a.Name, OldRank: or, NewRank: nr, Score: a.Score})
	}
	for i, a := range old {
		if !inNew[a.ID] {
			changes = append(changes, WindowChange{ID: a.ID, Name: a.Name, OldRank: i + 1, Score: a.Score})
		}
	}
	return changes
}
