package quality

// ContributorMeasure is one non-N/A cell of Table 2, evaluated over a
// ContributorRecord.
type ContributorMeasure struct {
	ID              string
	Description     string
	Dimension       Dimension
	Attribute       Attribute
	DomainDependent bool
	HigherIsBetter  bool
	// TimeSensitive marks measures whose value moves with the observation
	// instant (account ages, per-day interaction rates) even when the
	// contributor gained no new activity; see SourceMeasure.TimeSensitive.
	TimeSensitive bool
	Eval          func(r *ContributorRecord, di *DomainOfInterest) (float64, bool)
}

// diComments sums the contributor's comments in DI categories, and counts
// the DI categories covered.
func diComments(r *ContributorRecord, di *DomainOfInterest) (total, categories int) {
	for cat, n := range r.CommentsByCategory {
		if !di.InCategory(cat) {
			continue
		}
		total += n
		categories++
	}
	return total, categories
}

// contributorMeasures is the full Table 2 catalogue, in row-major order.
var contributorMeasures = []ContributorMeasure{
	{
		ID:              "usr.accuracy.breadth",
		Description:     "average number of comments per DI content category",
		Dimension:       Accuracy,
		Attribute:       Breadth,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *ContributorRecord, di *DomainOfInterest) (float64, bool) {
			total, cats := diComments(r, di)
			if cats == 0 {
				return 0, false
			}
			return float64(total) / float64(cats), true
		},
	},
	{
		ID:              "usr.completeness.relevance",
		Description:     "centrality: number of DI content categories covered",
		Dimension:       Completeness,
		Attribute:       Relevance,
		DomainDependent: true,
		HigherIsBetter:  true,
		Eval: func(r *ContributorRecord, di *DomainOfInterest) (float64, bool) {
			_, cats := diComments(r, di)
			return float64(cats), true
		},
	},
	{
		ID:             "usr.completeness.breadth",
		Description:    "number of discussions opened by the user",
		Dimension:      Completeness,
		Attribute:      Breadth,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.DiscussionsOpened), true
		},
	},
	{
		ID:             "usr.completeness.activity",
		Description:    "total number of interactions",
		Dimension:      Completeness,
		Attribute:      Activity,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.Interactions), true
		},
	},
	{
		// The paper's cell reads "average number of interactions per
		// user"; at the single-contributor level we interpret it as the
		// user's interactions per discussion they participate in.
		ID:             "usr.completeness.liveliness",
		Description:    "average interactions per discussion participated in",
		Dimension:      Completeness,
		Attribute:      Liveliness,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			if r.DiscussionsTouched == 0 {
				return 0, false
			}
			return float64(r.Interactions) / float64(r.DiscussionsTouched), true
		},
	},
	{
		ID:            "usr.time.breadth",
		TimeSensitive: true,
		Description:   "age of the user (days since joining)",
		Dimension:     Time,
		Attribute:     Breadth,
		// Longer-standing members are more established contributors.
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			age := r.AgeDays()
			if age == 0 {
				return 0, false
			}
			return age, true
		},
	},
	{
		ID:             "usr.time.activity",
		Description:    "number of times the user's comments are read by others",
		Dimension:      Time,
		Attribute:      Activity,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.ReadsReceived), true
		},
	},
	{
		ID:             "usr.time.liveliness",
		TimeSensitive:  true,
		Description:    "average number of new interactions per day",
		Dimension:      Time,
		Attribute:      Liveliness,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			age := r.AgeDays()
			if age <= 0 {
				return 0, false
			}
			return float64(r.Interactions) / age, true
		},
	},
	{
		ID:             "usr.interpretability.breadth",
		Description:    "average number of distinct tags per post",
		Dimension:      Interpretability,
		Attribute:      Breadth,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			posts := r.TotalComments()
			if posts == 0 {
				return 0, false
			}
			return float64(r.TagCount) / float64(posts), true
		},
	},
	{
		ID:             "usr.authority.relevance",
		Description:    "average number of replies received per comment",
		Dimension:      Authority,
		Attribute:      Relevance,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			if r.Interactions == 0 {
				return 0, false
			}
			return float64(r.RepliesReceived) / float64(r.Interactions), true
		},
	},
	{
		ID:             "usr.authority.activity",
		Description:    "number of received replies",
		Dimension:      Authority,
		Attribute:      Activity,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.RepliesReceived), true
		},
	},
	{
		ID:             "usr.dependability.relevance",
		Description:    "average number of feedbacks received per comment",
		Dimension:      Dependability,
		Attribute:      Relevance,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			if r.Interactions == 0 {
				return 0, false
			}
			return float64(r.FeedbacksReceived) / float64(r.Interactions), true
		},
	},
	{
		ID:             "usr.dependability.breadth",
		Description:    "comments per discussion participated in",
		Dimension:      Dependability,
		Attribute:      Breadth,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			if r.DiscussionsTouched == 0 {
				return 0, false
			}
			return float64(r.TotalComments()) / float64(r.DiscussionsTouched), true
		},
	},
	{
		ID:             "usr.dependability.activity",
		Description:    "number of feedbacks received",
		Dimension:      Dependability,
		Attribute:      Activity,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			return float64(r.FeedbacksReceived), true
		},
	},
	{
		ID:             "usr.dependability.liveliness",
		TimeSensitive:  true,
		Description:    "average interactions per discussion per day",
		Dimension:      Dependability,
		Attribute:      Liveliness,
		HigherIsBetter: true,
		Eval: func(r *ContributorRecord, _ *DomainOfInterest) (float64, bool) {
			age := r.AgeDays()
			if age <= 0 || r.DiscussionsTouched == 0 {
				return 0, false
			}
			return float64(r.Interactions) / float64(r.DiscussionsTouched) / age, true
		},
	},
}

// ContributorMeasures returns the Table 2 measure catalogue (a copy).
func ContributorMeasures() []ContributorMeasure {
	return append([]ContributorMeasure(nil), contributorMeasures...)
}

// ContributorMeasureByID looks up one measure.
func ContributorMeasureByID(id string) (ContributorMeasure, bool) {
	for _, m := range contributorMeasures {
		if m.ID == id {
			return m, true
		}
	}
	return ContributorMeasure{}, false
}
