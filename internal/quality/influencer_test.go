package quality

import (
	"testing"
	"time"
)

// influencerFixture builds a population with three behavioural archetypes:
// genuine influencers (high volume, high reactions), spammers (high volume,
// no reactions), and lurkers (low volume).
func influencerFixture() []*ContributorRecord {
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	mk := func(id, interactions, replies, feedbacks int, spam bool) *ContributorRecord {
		return &ContributorRecord{
			ID:                 id,
			Name:               "u",
			Joined:             obs.AddDate(0, 0, -200),
			CommentsByCategory: map[string]int{"place": interactions},
			DiscussionsTouched: interactions/2 + 1,
			Interactions:       interactions,
			RepliesReceived:    replies,
			FeedbacksReceived:  feedbacks,
			ObservedAt:         obs,
			Spammer:            spam,
		}
	}
	var recs []*ContributorRecord
	// 5 genuine influencers: volume 100, 300 replies, 200 feedbacks.
	for i := 0; i < 5; i++ {
		recs = append(recs, mk(i, 100, 300, 200, false))
	}
	// 5 spammers: volume 500, almost no reactions.
	for i := 5; i < 10; i++ {
		recs = append(recs, mk(i, 500, 2, 1, true))
	}
	// 20 lurkers: volume 3, a couple reactions.
	for i := 10; i < 30; i++ {
		recs = append(recs, mk(i, 3, 2, 1, false))
	}
	return recs
}

func TestInfluencersByActivityPromotesSpam(t *testing.T) {
	recs := influencerFixture()
	a := NewContributorAssessor(recs, DomainOfInterest{}, nil)
	top := Influencers(a, recs, InfluencerOptions{Strategy: ByActivity, TopK: 5})
	spam := 0
	for _, inf := range top {
		if inf.Record.Spammer {
			spam++
		}
	}
	// The naive volume ranking is dominated by spammers — the failure mode
	// Section 3.2 warns about.
	if spam < 3 {
		t.Errorf("expected spam-dominated top-5 under ByActivity, got %d spammers", spam)
	}
}

func TestInfluencersCombinedFiltersSpam(t *testing.T) {
	recs := influencerFixture()
	a := NewContributorAssessor(recs, DomainOfInterest{}, nil)
	top := Influencers(a, recs, InfluencerOptions{Strategy: Combined, TopK: 5})
	if len(top) != 5 {
		t.Fatalf("top = %d", len(top))
	}
	for _, inf := range top {
		if inf.Record.Spammer {
			t.Errorf("spammer %d survived the combined strategy", inf.Record.ID)
		}
	}
	// All five genuine influencers make the cut.
	ids := map[int]bool{}
	for _, inf := range top {
		ids[inf.Record.ID] = true
	}
	for i := 0; i < 5; i++ {
		if !ids[i] {
			t.Errorf("genuine influencer %d missing from top-5", i)
		}
	}
}

func TestInfluencersSortedAndBounded(t *testing.T) {
	recs := influencerFixture()
	a := NewContributorAssessor(recs, DomainOfInterest{}, nil)
	all := Influencers(a, recs, InfluencerOptions{Strategy: Combined})
	if len(all) != len(recs) {
		t.Fatalf("unbounded result = %d, want %d", len(all), len(recs))
	}
	for i := 1; i < len(all); i++ {
		if all[i].InfluenceScore > all[i-1].InfluenceScore {
			t.Fatal("not sorted")
		}
	}
	for _, inf := range all {
		if inf.InfluenceScore < 0 || inf.InfluenceScore > 1 {
			t.Errorf("score %v out of range", inf.InfluenceScore)
		}
		if inf.Assessment == nil {
			t.Error("missing assessment")
		}
	}
}

func TestInfluencersMinInteractions(t *testing.T) {
	recs := influencerFixture()
	a := NewContributorAssessor(recs, DomainOfInterest{}, nil)
	got := Influencers(a, recs, InfluencerOptions{Strategy: Combined, MinInteractions: 50})
	for _, inf := range got {
		if inf.Record.Interactions < 50 {
			t.Errorf("record with %d interactions passed the floor", inf.Record.Interactions)
		}
	}
	// Zero-interaction users are always dropped.
	zero := append(recs, &ContributorRecord{ID: 99, CommentsByCategory: map[string]int{}})
	got = Influencers(a, zero, InfluencerOptions{})
	for _, inf := range got {
		if inf.Record.ID == 99 {
			t.Error("zero-interaction user detected as influencer")
		}
	}
}

func TestInfluencerStrategyString(t *testing.T) {
	if ByActivity.String() != "by-activity" || ByRelative.String() != "by-relative" || Combined.String() != "combined" {
		t.Error("strategy strings wrong")
	}
	if InfluencerStrategy(9).String() != "unknown" {
		t.Error("unknown strategy should say so")
	}
}

func TestAvgOf(t *testing.T) {
	m := map[string]float64{"a": 1, "b": 3}
	if got := avgOf(m, "a", "b"); got != 2 {
		t.Errorf("avgOf = %v", got)
	}
	if got := avgOf(m, "a", "missing"); got != 1 {
		t.Errorf("avgOf with missing = %v", got)
	}
	if got := avgOf(m, "missing"); got != 0 {
		t.Errorf("avgOf all missing = %v", got)
	}
}
