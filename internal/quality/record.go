package quality

import "time"

// CommentStat is the per-comment observation a measure can see.
type CommentStat struct {
	AuthorID  int
	Posted    time.Time
	TagCount  int
	Replies   int
	Feedbacks int
	Reads     int
}

// DiscussionStat is the per-discussion observation.
type DiscussionStat struct {
	Category string // "" = off-topic
	Opened   time.Time
	Open     bool
	TagCount int
	Comments []CommentStat
}

// PanelStat carries the analytics-panel metrics for a source (Table 1's
// "www.alexa.com" and Feedburner cells).
type PanelStat struct {
	TrafficRank          int
	DailyVisitors        float64
	DailyPageViews       float64
	BounceRate           float64
	AvgTimeOnSiteSeconds float64
	PageViewsPerVisitor  float64
	NewDiscussionsPerDay float64
}

// SourceRecord is the raw observation of one Web 2.0 source, assembled from
// crawled content plus the analytics panel. Measures are pure functions of
// this record (plus the DI), so records can come from a live crawl, the
// in-memory world, or any future backend.
type SourceRecord struct {
	ID              int
	Name            string
	Host            string
	Kind            string
	Founded         time.Time
	Discussions     []DiscussionStat
	InboundLinks    int
	FeedSubscribers int
	Panel           PanelStat
	// ObservedAt is the reference instant for age computations.
	ObservedAt time.Time
	// WindowDays is the observation window length for per-day rates.
	WindowDays float64
	// MaxOpenDiscussions is the open-discussion count of the largest
	// source in the corpus, the paper's base for the "compared to largest
	// Web blog/forum" measure.
	MaxOpenDiscussions int
	// CorrelatedComments / DuplicateComments feed src.originality: how
	// many of the source's comments the correlation engine indexed, and
	// how many of those it flagged as near-duplicates of earlier material
	// on other sources. Both zero (measure undefined) when the corpus
	// carries no comment text or no correlation index runs.
	CorrelatedComments int
	DuplicateComments  int
}

// OpenDiscussions counts open discussion threads.
func (r *SourceRecord) OpenDiscussions() int {
	n := 0
	for _, d := range r.Discussions {
		if d.Open {
			n++
		}
	}
	return n
}

// TotalComments counts comments across all discussions.
func (r *SourceRecord) TotalComments() int {
	n := 0
	for _, d := range r.Discussions {
		n += len(d.Comments)
	}
	return n
}

// DistinctCommenters counts distinct comment authors.
func (r *SourceRecord) DistinctCommenters() int {
	seen := map[int]bool{}
	for _, d := range r.Discussions {
		for _, c := range d.Comments {
			seen[c.AuthorID] = true
		}
	}
	return len(seen)
}

// ContributorRecord is the raw observation of one contributor, aggregated
// across the sources (or the microblog stream) they participate in.
type ContributorRecord struct {
	ID     int
	Name   string
	Joined time.Time
	// CommentsByCategory counts the user's comments per content category
	// (the empty key collects off-topic comments).
	CommentsByCategory map[string]int
	// DiscussionsOpened counts threads the user started.
	DiscussionsOpened int
	// DiscussionsTouched counts distinct threads the user commented in.
	DiscussionsTouched int
	// Interactions is the user's total contribution count (comments,
	// posts, retweets made — the paper's generic social interaction).
	Interactions int
	// RepliesReceived, FeedbacksReceived and ReadsReceived count the
	// reactions the user's contributions attracted.
	RepliesReceived   int
	FeedbacksReceived int
	ReadsReceived     int
	// TagCount is the total number of tags across the user's posts.
	TagCount int
	// ObservedAt is the reference instant for age computations.
	ObservedAt time.Time
	// Spammer is ground truth carried through for robustness experiments
	// only; no measure reads it.
	Spammer bool
}

// TotalComments sums CommentsByCategory.
func (r *ContributorRecord) TotalComments() int {
	n := 0
	for _, c := range r.CommentsByCategory {
		n += c
	}
	return n
}

// AgeDays returns the account age at observation time, in days.
func (r *ContributorRecord) AgeDays() float64 {
	if r.Joined.IsZero() || r.ObservedAt.IsZero() {
		return 0
	}
	d := r.ObservedAt.Sub(r.Joined).Hours() / 24
	if d < 0 {
		return 0
	}
	return d
}
