package quality

// Benchmark is the normalisation interval of one measure, derived (per
// Section 3.1) from "the assessment of well-known, highly-ranked sources":
// Hi is a high quantile of the corpus values, Lo a low quantile. Values are
// min-max scaled into [0, 1] against this interval with clamping (so a
// source better than the benchmark saturates at 1).
type Benchmark struct {
	Lo, Hi float64
}

// Normalize maps a raw value into [0, 1], flipping orientation for
// measures that improve downward.
func (b Benchmark) Normalize(v float64, higherIsBetter bool) float64 {
	var n float64
	switch {
	case b.Hi == b.Lo:
		n = 0.5 // degenerate benchmark: every source looks the same
	default:
		n = (v - b.Lo) / (b.Hi - b.Lo)
	}
	if n < 0 {
		n = 0
	}
	if n > 1 {
		n = 1
	}
	if !higherIsBetter {
		n = 1 - n
	}
	return n
}

// AssessorOptions tunes assessment.
type AssessorOptions struct {
	// Weights are per-measure aggregation weights (default 1 each).
	Weights map[string]float64
	// BenchmarkLoQ and BenchmarkHiQ are the corpus quantiles defining the
	// normalisation interval (defaults 0.10 and 0.90). The high quantile
	// plays the paper's "well-known, highly-ranked sources" role; the
	// winsorised tails keep single outliers from flattening everyone else.
	BenchmarkLoQ, BenchmarkHiQ float64
	// PlainMinMax replaces quantile benchmarks with corpus min/max
	// (the normalisation ablation in bench_test.go).
	PlainMinMax bool
	// Workers bounds the assessment worker pool (0 = GOMAXPROCS). Results
	// are identical for any value; 1 forces the sequential path.
	Workers int
	// Shards partitions the corpus into that many contiguous record-range
	// shards, each owning its own measure matrix, spine cache and
	// incremental-update path; queries become scatter-gather plans with
	// routing-based shard pruning, and a tick's update cost scales with the
	// dirty shards, not the corpus (DESIGN.md section 11). Benchmarks stay
	// corpus-global via a two-phase gather, so every output — assessments,
	// rankings, query windows, cursors — is bit-identical for any value.
	// 0 or 1 selects the single-matrix engine (today's behaviour).
	Shards int
	// ExtraSourceMeasures extends the Table 1 catalogue with caller-
	// defined measures — the paper's "extension towards new kinds of
	// domains, quality dimensions and analyses". IDs must not collide
	// with catalogue IDs. Only read by NewSourceAssessor.
	ExtraSourceMeasures []SourceMeasure
	// ExtraContributorMeasures likewise extends the Table 2 catalogue.
	// Only read by NewContributorAssessor.
	ExtraContributorMeasures []ContributorMeasure
}

func (o AssessorOptions) withDefaults() AssessorOptions {
	if o.BenchmarkLoQ == 0 {
		o.BenchmarkLoQ = 0.10
	}
	if o.BenchmarkHiQ == 0 {
		o.BenchmarkHiQ = 0.90
	}
	return o
}

func (o AssessorOptions) weight(id string) float64 {
	if o.Weights == nil {
		return 1
	}
	if w, ok := o.Weights[id]; ok {
		return w
	}
	return 1
}

// Assessment is the quality evaluation of one source or contributor.
type Assessment struct {
	ID   int
	Name string
	// Raw holds the measured values; measures undefined for this record
	// are absent.
	Raw map[string]float64
	// Normalized holds benchmark-normalised values in [0, 1].
	Normalized map[string]float64
	// Score is the weighted average of the normalised measures.
	Score float64
	// DimensionScores and AttributeScores average the normalised measures
	// along the two axes of the model, enabling the "orthogonal analysis
	// services" of Section 5.
	DimensionScores map[Dimension]float64
	AttributeScores map[Attribute]float64
}

// SourceAssessor assesses SourceRecords against a DI with benchmarks
// derived from a reference corpus. Construction evaluates every Table 1
// measure over every corpus record exactly once (see matrix.go); Assess
// and Rank serve corpus records from that cache. The assessor is therefore
// a snapshot: mutating a corpus record after construction does not change
// its assessment — derive a new assessor to re-observe, either from
// scratch or incrementally via UpdateRows (as Corpus.Advance does).
type SourceAssessor struct {
	DI         DomainOfInterest
	opts       AssessorOptions
	measures   []SourceMeasure
	engine     engineAPI[SourceRecord]
	benchmarks map[string]Benchmark
}

// NewSourceAssessor derives benchmarks from the corpus and returns an
// assessor. opts may be nil for defaults.
func NewSourceAssessor(corpus []*SourceRecord, di DomainOfInterest, opts *AssessorOptions) *SourceAssessor {
	o := AssessorOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	measures := sourceMeasures
	if len(o.ExtraSourceMeasures) > 0 {
		measures = append(append([]SourceMeasure(nil), sourceMeasures...), o.ExtraSourceMeasures...)
	}
	infos := make([]measureInfo, len(measures))
	evals := make([]func(*SourceRecord, *DomainOfInterest) (float64, bool), len(measures))
	for i, m := range measures {
		infos[i] = measureInfo{id: m.ID, dimension: m.Dimension, attribute: m.Attribute, higherIsBetter: m.HigherIsBetter, timeSensitive: m.TimeSensitive}
		evals[i] = m.Eval
	}
	a := &SourceAssessor{DI: di, opts: o, measures: measures}
	ident := func(r *SourceRecord) (int, string) { return r.ID, r.Name }
	if o.Shards > 1 {
		a.engine = newShardedEngine(corpus, di, o, infos, evals, ident, noteSourceRoute)
	} else {
		a.engine = newMatrixEngine(corpus, di, o, infos, evals, ident)
	}
	a.benchmarks = make(map[string]Benchmark, len(measures))
	for i, m := range measures {
		a.benchmarks[m.ID] = a.engine.benchmarkAt(i)
	}
	return a
}

// Benchmark exposes the derived normalisation interval of a measure.
func (a *SourceAssessor) Benchmark(id string) (Benchmark, bool) {
	b, ok := a.benchmarks[id]
	return b, ok
}

// BenchmarksEqual reports whether this assessor's normalisation intervals
// are bitwise identical to prev's. When true, any record whose raw
// observations did not change assesses to exactly the same result under
// both assessors — the licence for reusing a clean row's Assessment by
// reference across an Advance (and likewise an influencer roster entry).
func (a *SourceAssessor) BenchmarksEqual(prev *SourceAssessor) bool {
	return benchmarkMapsEqual(a.benchmarks, prev.benchmarks)
}

// Assess returns the full Table 1 evaluation of the record. Corpus records
// are served from the construction-time matrix (their state as of
// NewSourceAssessor); records outside the corpus are evaluated directly.
func (a *SourceAssessor) Assess(r *SourceRecord) *Assessment {
	return a.engine.assess(r)
}

// AssessAll assesses every record, preserving input order. Work fans out
// across the assessor's worker pool; the output is identical for any
// worker count.
func (a *SourceAssessor) AssessAll(records []*SourceRecord) []*Assessment {
	return a.engine.assessAll(records)
}

// Rank assesses all records and returns them best-first (ties broken by ID
// for determinism).
func (a *SourceAssessor) Rank(records []*SourceRecord) []*Assessment {
	return a.engine.rank(records)
}

// UpdateRows derives a new assessor for an incrementally advanced corpus
// (the monitoring scenario): corpus is the refreshed record slice — same
// sources, same order — dirtyRows indexes the records whose content
// changed, and epochMoved reports whether the observation instant moved
// (which shifts every time-sensitive measure, so those are re-evaluated
// for all records). Only dirty rows are re-evaluated for content measures;
// per-measure sorted columns are repaired in place of a full re-sort and
// the benchmarks re-derived from them. The result is bit-identical to
// NewSourceAssessor over the same records, and the receiver stays valid
// for concurrent readers of the pre-advance snapshot.
func (a *SourceAssessor) UpdateRows(corpus []*SourceRecord, dirtyRows []int, epochMoved bool) *SourceAssessor {
	na := &SourceAssessor{DI: a.DI, opts: a.opts, measures: a.measures}
	na.engine = a.engine.update(corpus, dirtyRows, epochMoved)
	na.benchmarks = make(map[string]Benchmark, len(a.measures))
	for i, m := range a.measures {
		na.benchmarks[m.ID] = na.engine.benchmarkAt(i)
	}
	return na
}

// ShardCount reports how many shards the assessor's engine partitions the
// corpus into (1 for the single-matrix engine).
func (a *SourceAssessor) ShardCount() int { return a.engine.shardCount() }

// SpineStats reports the standing-spine evaluation work this assessor has
// performed since it was derived: full scans, incremental repairs, and
// clean-shard carries. The dirty-shard concurrency tests pin these.
func (a *SourceAssessor) SpineStats() SpineStats { return a.engine.spineStats().stats() }

// RepairSpine derives the current round's spine for q from prev — built by
// this assessor's predecessor over the previous round's records — by
// re-evaluating only the rows the producing UpdateRows dirtied. ok is
// false whenever a carry could be stale (fresh assessor, epoch moved,
// benchmarks changed, invalid query); fall back to Spine then. On success
// the result is bit-identical to a fresh Spine call.
func (a *SourceAssessor) RepairSpine(records []*SourceRecord, prev *Spine, q Query) (*Spine, bool) {
	if q.MinSpamResistance > 0 {
		return nil, false
	}
	return a.engine.repairSpine(records, prev, q, sourceKeep(q), nil)
}

// ContributorAssessor assesses ContributorRecords (Table 2) with the same
// cached-matrix engine as SourceAssessor.
type ContributorAssessor struct {
	DI         DomainOfInterest
	opts       AssessorOptions
	measures   []ContributorMeasure
	engine     engineAPI[ContributorRecord]
	benchmarks map[string]Benchmark
}

// NewContributorAssessor derives benchmarks from the contributor corpus.
func NewContributorAssessor(corpus []*ContributorRecord, di DomainOfInterest, opts *AssessorOptions) *ContributorAssessor {
	o := AssessorOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	measures := contributorMeasures
	if len(o.ExtraContributorMeasures) > 0 {
		measures = append(append([]ContributorMeasure(nil), contributorMeasures...), o.ExtraContributorMeasures...)
	}
	infos := make([]measureInfo, len(measures))
	evals := make([]func(*ContributorRecord, *DomainOfInterest) (float64, bool), len(measures))
	for i, m := range measures {
		infos[i] = measureInfo{id: m.ID, dimension: m.Dimension, attribute: m.Attribute, higherIsBetter: m.HigherIsBetter, timeSensitive: m.TimeSensitive}
		evals[i] = m.Eval
	}
	a := &ContributorAssessor{DI: di, opts: o, measures: measures}
	ident := func(r *ContributorRecord) (int, string) { return r.ID, r.Name }
	if o.Shards > 1 {
		a.engine = newShardedEngine(corpus, di, o, infos, evals, ident, noteContributorRoute)
	} else {
		a.engine = newMatrixEngine(corpus, di, o, infos, evals, ident)
	}
	a.benchmarks = make(map[string]Benchmark, len(measures))
	for i, m := range measures {
		a.benchmarks[m.ID] = a.engine.benchmarkAt(i)
	}
	return a
}

// Benchmark exposes the derived normalisation interval of a measure.
func (a *ContributorAssessor) Benchmark(id string) (Benchmark, bool) {
	b, ok := a.benchmarks[id]
	return b, ok
}

// BenchmarksEqual reports whether this assessor's normalisation intervals
// are bitwise identical to prev's; see SourceAssessor.BenchmarksEqual.
func (a *ContributorAssessor) BenchmarksEqual(prev *ContributorAssessor) bool {
	return benchmarkMapsEqual(a.benchmarks, prev.benchmarks)
}

// benchmarkMapsEqual compares two benchmark maps bitwise. Map-range order
// does not escape: the result folds into a single bool.
func benchmarkMapsEqual(a, b map[string]Benchmark) bool {
	if len(a) != len(b) {
		return false
	}
	for id, ba := range a {
		bb, ok := b[id]
		if !ok || ba != bb {
			return false
		}
	}
	return true
}

// Assess returns the full Table 2 evaluation of the record. Corpus records
// are served from the construction-time matrix; records outside the corpus
// are evaluated directly.
func (a *ContributorAssessor) Assess(r *ContributorRecord) *Assessment {
	return a.engine.assess(r)
}

// AssessAll assesses every record, preserving input order.
func (a *ContributorAssessor) AssessAll(records []*ContributorRecord) []*Assessment {
	return a.engine.assessAll(records)
}

// Rank assesses all records and returns them best-first.
func (a *ContributorAssessor) Rank(records []*ContributorRecord) []*Assessment {
	return a.engine.rank(records)
}

// UpdateRows derives a new assessor for an incrementally advanced
// contributor population; see SourceAssessor.UpdateRows.
func (a *ContributorAssessor) UpdateRows(corpus []*ContributorRecord, dirtyRows []int, epochMoved bool) *ContributorAssessor {
	na := &ContributorAssessor{DI: a.DI, opts: a.opts, measures: a.measures}
	na.engine = a.engine.update(corpus, dirtyRows, epochMoved)
	na.benchmarks = make(map[string]Benchmark, len(a.measures))
	for i, m := range a.measures {
		na.benchmarks[m.ID] = na.engine.benchmarkAt(i)
	}
	return na
}

// ShardCount reports how many shards the assessor's engine partitions the
// corpus into (1 for the single-matrix engine).
func (a *ContributorAssessor) ShardCount() int { return a.engine.shardCount() }

// SpineStats reports the standing-spine evaluation work this assessor has
// performed since it was derived; see SourceAssessor.SpineStats.
func (a *ContributorAssessor) SpineStats() SpineStats { return a.engine.spineStats().stats() }

// RepairSpine derives the current round's contributor spine from prev via
// the dirty rows of the producing UpdateRows; see
// SourceAssessor.RepairSpine.
func (a *ContributorAssessor) RepairSpine(records []*ContributorRecord, prev *Spine, q Query) (*Spine, bool) {
	if len(q.Kinds) > 0 {
		return nil, false
	}
	return a.engine.repairSpine(records, prev, q, contributorKeep(q), a.spamIdx(q))
}
