package quality

import (
	"sort"

	"github.com/informing-observers/informer/internal/stats"
)

// Benchmark is the normalisation interval of one measure, derived (per
// Section 3.1) from "the assessment of well-known, highly-ranked sources":
// Hi is a high quantile of the corpus values, Lo a low quantile. Values are
// min-max scaled into [0, 1] against this interval with clamping (so a
// source better than the benchmark saturates at 1).
type Benchmark struct {
	Lo, Hi float64
}

// Normalize maps a raw value into [0, 1], flipping orientation for
// measures that improve downward.
func (b Benchmark) Normalize(v float64, higherIsBetter bool) float64 {
	var n float64
	switch {
	case b.Hi == b.Lo:
		n = 0.5 // degenerate benchmark: every source looks the same
	default:
		n = (v - b.Lo) / (b.Hi - b.Lo)
	}
	if n < 0 {
		n = 0
	}
	if n > 1 {
		n = 1
	}
	if !higherIsBetter {
		n = 1 - n
	}
	return n
}

// AssessorOptions tunes assessment.
type AssessorOptions struct {
	// Weights are per-measure aggregation weights (default 1 each).
	Weights map[string]float64
	// BenchmarkLoQ and BenchmarkHiQ are the corpus quantiles defining the
	// normalisation interval (defaults 0.10 and 0.90). The high quantile
	// plays the paper's "well-known, highly-ranked sources" role; the
	// winsorised tails keep single outliers from flattening everyone else.
	BenchmarkLoQ, BenchmarkHiQ float64
	// PlainMinMax replaces quantile benchmarks with corpus min/max
	// (the normalisation ablation in bench_test.go).
	PlainMinMax bool
	// ExtraSourceMeasures extends the Table 1 catalogue with caller-
	// defined measures — the paper's "extension towards new kinds of
	// domains, quality dimensions and analyses". IDs must not collide
	// with catalogue IDs. Only read by NewSourceAssessor.
	ExtraSourceMeasures []SourceMeasure
	// ExtraContributorMeasures likewise extends the Table 2 catalogue.
	// Only read by NewContributorAssessor.
	ExtraContributorMeasures []ContributorMeasure
}

func (o AssessorOptions) withDefaults() AssessorOptions {
	if o.BenchmarkLoQ == 0 {
		o.BenchmarkLoQ = 0.10
	}
	if o.BenchmarkHiQ == 0 {
		o.BenchmarkHiQ = 0.90
	}
	return o
}

func (o AssessorOptions) weight(id string) float64 {
	if o.Weights == nil {
		return 1
	}
	if w, ok := o.Weights[id]; ok {
		return w
	}
	return 1
}

// benchmarkFrom derives a Benchmark from observed values.
func benchmarkFrom(values []float64, opts AssessorOptions) Benchmark {
	if len(values) == 0 {
		return Benchmark{}
	}
	if opts.PlainMinMax {
		return Benchmark{Lo: stats.Min(values), Hi: stats.Max(values)}
	}
	return Benchmark{
		Lo: stats.Quantile(values, opts.BenchmarkLoQ),
		Hi: stats.Quantile(values, opts.BenchmarkHiQ),
	}
}

// Assessment is the quality evaluation of one source or contributor.
type Assessment struct {
	ID   int
	Name string
	// Raw holds the measured values; measures undefined for this record
	// are absent.
	Raw map[string]float64
	// Normalized holds benchmark-normalised values in [0, 1].
	Normalized map[string]float64
	// Score is the weighted average of the normalised measures.
	Score float64
	// DimensionScores and AttributeScores average the normalised measures
	// along the two axes of the model, enabling the "orthogonal analysis
	// services" of Section 5.
	DimensionScores map[Dimension]float64
	AttributeScores map[Attribute]float64
}

// SourceAssessor assesses SourceRecords against a DI with benchmarks
// derived from a reference corpus.
type SourceAssessor struct {
	DI         DomainOfInterest
	opts       AssessorOptions
	measures   []SourceMeasure
	benchmarks map[string]Benchmark
}

// NewSourceAssessor derives benchmarks from the corpus and returns an
// assessor. opts may be nil for defaults.
func NewSourceAssessor(corpus []*SourceRecord, di DomainOfInterest, opts *AssessorOptions) *SourceAssessor {
	o := AssessorOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	measures := sourceMeasures
	if len(o.ExtraSourceMeasures) > 0 {
		measures = append(append([]SourceMeasure(nil), sourceMeasures...), o.ExtraSourceMeasures...)
	}
	a := &SourceAssessor{
		DI:         di,
		opts:       o,
		measures:   measures,
		benchmarks: make(map[string]Benchmark, len(measures)),
	}
	for _, m := range a.measures {
		var values []float64
		for _, r := range corpus {
			if v, ok := m.Eval(r, &a.DI); ok {
				values = append(values, v)
			}
		}
		a.benchmarks[m.ID] = benchmarkFrom(values, o)
	}
	return a
}

// Benchmark exposes the derived normalisation interval of a measure.
func (a *SourceAssessor) Benchmark(id string) (Benchmark, bool) {
	b, ok := a.benchmarks[id]
	return b, ok
}

// Assess evaluates every Table 1 measure on the record.
func (a *SourceAssessor) Assess(r *SourceRecord) *Assessment {
	out := &Assessment{
		ID:         r.ID,
		Name:       r.Name,
		Raw:        map[string]float64{},
		Normalized: map[string]float64{},
	}
	dimSum := map[Dimension]float64{}
	dimN := map[Dimension]float64{}
	attSum := map[Attribute]float64{}
	attN := map[Attribute]float64{}
	var wSum, wTotal float64
	for _, m := range a.measures {
		v, ok := m.Eval(r, &a.DI)
		if !ok {
			continue
		}
		out.Raw[m.ID] = v
		n := a.benchmarks[m.ID].Normalize(v, m.HigherIsBetter)
		out.Normalized[m.ID] = n
		w := a.opts.weight(m.ID)
		wSum += w * n
		wTotal += w
		dimSum[m.Dimension] += n
		dimN[m.Dimension]++
		attSum[m.Attribute] += n
		attN[m.Attribute]++
	}
	if wTotal > 0 {
		out.Score = wSum / wTotal
	}
	out.DimensionScores = map[Dimension]float64{}
	for d, s := range dimSum {
		out.DimensionScores[d] = s / dimN[d]
	}
	out.AttributeScores = map[Attribute]float64{}
	for at, s := range attSum {
		out.AttributeScores[at] = s / attN[at]
	}
	return out
}

// Rank assesses all records and returns them best-first (ties broken by ID
// for determinism).
func (a *SourceAssessor) Rank(records []*SourceRecord) []*Assessment {
	out := make([]*Assessment, 0, len(records))
	for _, r := range records {
		out = append(out, a.Assess(r))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// ContributorAssessor assesses ContributorRecords (Table 2).
type ContributorAssessor struct {
	DI         DomainOfInterest
	opts       AssessorOptions
	measures   []ContributorMeasure
	benchmarks map[string]Benchmark
}

// NewContributorAssessor derives benchmarks from the contributor corpus.
func NewContributorAssessor(corpus []*ContributorRecord, di DomainOfInterest, opts *AssessorOptions) *ContributorAssessor {
	o := AssessorOptions{}
	if opts != nil {
		o = *opts
	}
	o = o.withDefaults()
	measures := contributorMeasures
	if len(o.ExtraContributorMeasures) > 0 {
		measures = append(append([]ContributorMeasure(nil), contributorMeasures...), o.ExtraContributorMeasures...)
	}
	a := &ContributorAssessor{
		DI:         di,
		opts:       o,
		measures:   measures,
		benchmarks: make(map[string]Benchmark, len(measures)),
	}
	for _, m := range a.measures {
		var values []float64
		for _, r := range corpus {
			if v, ok := m.Eval(r, &a.DI); ok {
				values = append(values, v)
			}
		}
		a.benchmarks[m.ID] = benchmarkFrom(values, o)
	}
	return a
}

// Benchmark exposes the derived normalisation interval of a measure.
func (a *ContributorAssessor) Benchmark(id string) (Benchmark, bool) {
	b, ok := a.benchmarks[id]
	return b, ok
}

// Assess evaluates every Table 2 measure on the record.
func (a *ContributorAssessor) Assess(r *ContributorRecord) *Assessment {
	out := &Assessment{
		ID:         r.ID,
		Name:       r.Name,
		Raw:        map[string]float64{},
		Normalized: map[string]float64{},
	}
	dimSum := map[Dimension]float64{}
	dimN := map[Dimension]float64{}
	attSum := map[Attribute]float64{}
	attN := map[Attribute]float64{}
	var wSum, wTotal float64
	for _, m := range a.measures {
		v, ok := m.Eval(r, &a.DI)
		if !ok {
			continue
		}
		out.Raw[m.ID] = v
		n := a.benchmarks[m.ID].Normalize(v, m.HigherIsBetter)
		out.Normalized[m.ID] = n
		w := a.opts.weight(m.ID)
		wSum += w * n
		wTotal += w
		dimSum[m.Dimension] += n
		dimN[m.Dimension]++
		attSum[m.Attribute] += n
		attN[m.Attribute]++
	}
	if wTotal > 0 {
		out.Score = wSum / wTotal
	}
	out.DimensionScores = map[Dimension]float64{}
	for d, s := range dimSum {
		out.DimensionScores[d] = s / dimN[d]
	}
	out.AttributeScores = map[Attribute]float64{}
	for at, s := range attSum {
		out.AttributeScores[at] = s / attN[at]
	}
	return out
}

// Rank assesses all records and returns them best-first.
func (a *ContributorAssessor) Rank(records []*ContributorRecord) []*Assessment {
	out := make([]*Assessment, 0, len(records))
	for _, r := range records {
		out = append(out, a.Assess(r))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}
