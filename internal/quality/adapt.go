package quality

import (
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/webgen"
)

// panelStat converts an analytics metric to the record form.
func panelStat(m analytics.Metrics) PanelStat {
	return PanelStat{
		TrafficRank:          m.TrafficRank,
		DailyVisitors:        m.DailyVisitors,
		DailyPageViews:       m.DailyPageViews,
		BounceRate:           m.BounceRate,
		AvgTimeOnSiteSeconds: m.AvgTimeOnSite,
		PageViewsPerVisitor:  m.PageViewsPerVisitor,
		NewDiscussionsPerDay: m.NewDiscussionsPerDay,
	}
}

// SourceRecordsFromWorld builds assessment records directly from an
// in-memory world plus its analytics panel. The paper's large statistical
// experiments use this path ("manual inspection or automated crawling");
// SourceRecordsFromSnapshot is the genuinely crawled equivalent.
func SourceRecordsFromWorld(w *webgen.World, panel *analytics.Panel) []*SourceRecord {
	records := make([]*SourceRecord, 0, len(w.Sources))
	for _, s := range w.Sources {
		m, _ := panel.BySource(s.ID)
		r := &SourceRecord{
			ID:                 s.ID,
			Name:               s.Name,
			Host:               s.Host,
			Kind:               s.Kind.String(),
			Founded:            s.Founded,
			InboundLinks:       len(s.Inbound),
			FeedSubscribers:    s.FeedSubscribers,
			Panel:              panelStat(m),
			ObservedAt:         w.Config.End,
			WindowDays:         w.Days(),
			MaxOpenDiscussions: w.MaxOpenDiscussions,
		}
		for _, d := range s.Discussions {
			ds := DiscussionStat{
				Category: d.Category,
				Opened:   d.Opened,
				Open:     d.Open,
				TagCount: len(d.Tags),
			}
			for _, c := range d.Comments {
				ds.Comments = append(ds.Comments, CommentStat{
					AuthorID:  c.UserID,
					Posted:    c.Posted,
					TagCount:  len(c.Tags),
					Replies:   c.Replies,
					Feedbacks: c.Feedbacks,
					Reads:     c.Reads,
				})
			}
			r.Discussions = append(r.Discussions, ds)
		}
		records = append(records, r)
	}
	return records
}

// SourceRecordsFromSnapshot builds assessment records from a crawl
// snapshot, joining each crawled source with the analytics panel by host.
// observedAt is the crawl instant; windowDays the content window to assume
// for per-day rates.
func SourceRecordsFromSnapshot(snap *crawler.Snapshot, panel *analytics.Panel, observedAt time.Time, windowDays float64) []*SourceRecord {
	maxOpen := 0
	type pre struct {
		rec  *SourceRecord
		open int
	}
	pres := make([]pre, 0, len(snap.Sources))
	for _, sc := range snap.Sources {
		r := &SourceRecord{
			ID:              sc.Info.ID,
			Name:            sc.Info.Name,
			Host:            sc.Info.Host,
			Kind:            sc.Info.Kind,
			Founded:         sc.Info.Founded,
			InboundLinks:    sc.InboundLinks,
			FeedSubscribers: sc.Info.FeedSubscribers,
			ObservedAt:      observedAt,
			WindowDays:      windowDays,
		}
		if m, ok := panel.ByHost(sc.Info.Host); ok {
			r.Panel = panelStat(m)
		}
		open := 0
		for _, d := range sc.Discussions {
			ds := DiscussionStat{
				Category: d.Category,
				Opened:   d.Opened,
				Open:     d.Open,
				TagCount: len(d.Tags),
			}
			if d.Open {
				open++
			}
			for _, c := range d.Comments {
				ds.Comments = append(ds.Comments, CommentStat{
					AuthorID:  c.AuthorID,
					Posted:    c.Posted,
					TagCount:  len(c.Tags),
					Replies:   c.Replies,
					Feedbacks: c.Feedbacks,
					Reads:     c.Reads,
				})
			}
			r.Discussions = append(r.Discussions, ds)
		}
		if open > maxOpen {
			maxOpen = open
		}
		pres = append(pres, pre{rec: r, open: open})
	}
	records := make([]*SourceRecord, 0, len(pres))
	for _, p := range pres {
		p.rec.MaxOpenDiscussions = maxOpen
		records = append(records, p.rec)
	}
	return records
}

// ContributorRecordsFromWorld aggregates per-user activity across all
// sources of a world into contributor records.
func ContributorRecordsFromWorld(w *webgen.World) []*ContributorRecord {
	recs := make([]*ContributorRecord, len(w.Users))
	for i, u := range w.Users {
		recs[i] = &ContributorRecord{
			ID:                 u.ID,
			Name:               u.Name,
			Joined:             u.Joined,
			CommentsByCategory: map[string]int{},
			ObservedAt:         w.Config.End,
			Spammer:            u.Spammer,
		}
	}
	touched := make(map[int]map[int]bool) // user -> discussion set
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			if opener := w.User(d.OpenerID); opener != nil {
				recs[opener.ID].DiscussionsOpened++
			}
			for _, c := range d.Comments {
				r := recs[c.UserID]
				r.CommentsByCategory[d.Category]++
				r.Interactions++
				r.RepliesReceived += c.Replies
				r.FeedbacksReceived += c.Feedbacks
				r.ReadsReceived += c.Reads
				r.TagCount += len(c.Tags)
				set := touched[c.UserID]
				if set == nil {
					set = map[int]bool{}
					touched[c.UserID] = set
				}
				set[d.ID] = true
			}
		}
	}
	for uid, set := range touched {
		recs[uid].DiscussionsTouched = len(set)
	}
	return recs
}

// ContributorRecordsFromSocial maps microblog accounts to contributor
// records. Each tweet counts as its own (micro-)discussion, the service-
// agnostic reading of Section 3.2's interaction model.
func ContributorRecordsFromSocial(ds *social.Dataset, observedAt time.Time) []*ContributorRecord {
	recs := make([]*ContributorRecord, 0, len(ds.Accounts))
	for _, a := range ds.Accounts {
		recs = append(recs, &ContributorRecord{
			ID:                 a.ID,
			Name:               a.Handle,
			Joined:             a.Joined,
			CommentsByCategory: map[string]int{"": a.Interactions},
			DiscussionsOpened:  a.Interactions,
			DiscussionsTouched: a.Interactions,
			Interactions:       a.Interactions,
			RepliesReceived:    a.MentionsReceived,
			FeedbacksReceived:  a.RetweetsReceived,
			ObservedAt:         observedAt,
		})
	}
	return recs
}
