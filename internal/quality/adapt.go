package quality

import (
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/webgen"
)

// panelStat converts an analytics metric to the record form.
func panelStat(m analytics.Metrics) PanelStat {
	return PanelStat{
		TrafficRank:          m.TrafficRank,
		DailyVisitors:        m.DailyVisitors,
		DailyPageViews:       m.DailyPageViews,
		BounceRate:           m.BounceRate,
		AvgTimeOnSiteSeconds: m.AvgTimeOnSite,
		PageViewsPerVisitor:  m.PageViewsPerVisitor,
		NewDiscussionsPerDay: m.NewDiscussionsPerDay,
	}
}

// SourceRecordsFromWorld builds assessment records directly from an
// in-memory world plus its analytics panel. The paper's large statistical
// experiments use this path ("manual inspection or automated crawling");
// SourceRecordsFromSnapshot is the genuinely crawled equivalent.
func SourceRecordsFromWorld(w *webgen.World, panel *analytics.Panel) []*SourceRecord {
	records := make([]*SourceRecord, 0, len(w.Sources))
	for _, s := range w.Sources {
		records = append(records, buildSourceRecord(s, w, panel))
	}
	return records
}

// buildSourceRecord assembles the full observation record of one source —
// the shared builder behind the from-scratch and incremental paths, so
// both produce identical values.
func buildSourceRecord(s *webgen.Source, w *webgen.World, panel *analytics.Panel) *SourceRecord {
	m, _ := panel.BySource(s.ID)
	r := &SourceRecord{
		ID:                 s.ID,
		Name:               s.Name,
		Host:               s.Host,
		Kind:               s.Kind.String(),
		Founded:            s.Founded,
		InboundLinks:       len(s.Inbound),
		FeedSubscribers:    s.FeedSubscribers,
		Panel:              panelStat(m),
		ObservedAt:         w.Config.End,
		WindowDays:         w.Days(),
		MaxOpenDiscussions: w.MaxOpenDiscussions,
	}
	r.Discussions = buildDiscussionStats(s)
	return r
}

func buildDiscussionStats(s *webgen.Source) []DiscussionStat {
	out := make([]DiscussionStat, 0, len(s.Discussions))
	for _, d := range s.Discussions {
		ds := DiscussionStat{
			Category: d.Category,
			Opened:   d.Opened,
			Open:     d.Open,
			TagCount: len(d.Tags),
		}
		for _, c := range d.Comments {
			ds.Comments = append(ds.Comments, CommentStat{
				AuthorID:  c.UserID,
				Posted:    c.Posted,
				TagCount:  len(c.Tags),
				Replies:   c.Replies,
				Feedbacks: c.Feedbacks,
				Reads:     c.Reads,
			})
		}
		out = append(out, ds)
	}
	return out
}

// UpdateSourceRecordsFromWorld refreshes observation records after an
// Advance tick without re-walking the whole corpus. Every record is
// shallow-copied (the pre-advance slice stays immutable for concurrent
// readers) with its observation metadata refreshed — ObservedAt,
// WindowDays, MaxOpenDiscussions and the panel join, the inputs that move
// with the timeline for every source — while only the records of dirty
// sources rebuild their discussion statistics. The result is bit-identical
// to SourceRecordsFromWorld over the advanced world; the second return
// value lists the row indices of the dirty records, ready for
// SourceAssessor.UpdateRows.
func UpdateSourceRecordsFromWorld(old []*SourceRecord, w *webgen.World, panel *analytics.Panel, dirtySourceIDs []int) ([]*SourceRecord, []int) {
	rowByID := make(map[int]int, len(old))
	for i, r := range old {
		rowByID[r.ID] = i
	}
	records := make([]*SourceRecord, len(old))
	for i, r := range old {
		nr := new(SourceRecord)
		*nr = *r
		m, _ := panel.BySource(nr.ID)
		nr.Panel = panelStat(m)
		nr.ObservedAt = w.Config.End
		nr.WindowDays = w.Days()
		nr.MaxOpenDiscussions = w.MaxOpenDiscussions
		records[i] = nr
	}
	dirtyRows := make([]int, 0, len(dirtySourceIDs))
	for _, id := range dirtySourceIDs {
		row, ok := rowByID[id]
		if !ok {
			continue // source unknown to this corpus (defensive)
		}
		records[row].Discussions = buildDiscussionStats(w.Source(id))
		dirtyRows = append(dirtyRows, row)
	}
	return records, dirtyRows
}

// SourceRecordsFromSnapshot builds assessment records from a crawl
// snapshot, joining each crawled source with the analytics panel by host.
// observedAt is the crawl instant; windowDays the content window to assume
// for per-day rates.
func SourceRecordsFromSnapshot(snap *crawler.Snapshot, panel *analytics.Panel, observedAt time.Time, windowDays float64) []*SourceRecord {
	maxOpen := 0
	type pre struct {
		rec  *SourceRecord
		open int
	}
	pres := make([]pre, 0, len(snap.Sources))
	for _, sc := range snap.Sources {
		r := &SourceRecord{
			ID:              sc.Info.ID,
			Name:            sc.Info.Name,
			Host:            sc.Info.Host,
			Kind:            sc.Info.Kind,
			Founded:         sc.Info.Founded,
			InboundLinks:    sc.InboundLinks,
			FeedSubscribers: sc.Info.FeedSubscribers,
			ObservedAt:      observedAt,
			WindowDays:      windowDays,
		}
		if m, ok := panel.ByHost(sc.Info.Host); ok {
			r.Panel = panelStat(m)
		}
		open := 0
		for _, d := range sc.Discussions {
			ds := DiscussionStat{
				Category: d.Category,
				Opened:   d.Opened,
				Open:     d.Open,
				TagCount: len(d.Tags),
			}
			if d.Open {
				open++
			}
			for _, c := range d.Comments {
				ds.Comments = append(ds.Comments, CommentStat{
					AuthorID:  c.AuthorID,
					Posted:    c.Posted,
					TagCount:  len(c.Tags),
					Replies:   c.Replies,
					Feedbacks: c.Feedbacks,
					Reads:     c.Reads,
				})
			}
			r.Discussions = append(r.Discussions, ds)
		}
		if open > maxOpen {
			maxOpen = open
		}
		pres = append(pres, pre{rec: r, open: open})
	}
	records := make([]*SourceRecord, 0, len(pres))
	for _, p := range pres {
		p.rec.MaxOpenDiscussions = maxOpen
		records = append(records, p.rec)
	}
	return records
}

// ContributorRecordsFromWorld aggregates per-user activity across all
// sources of a world into contributor records.
func ContributorRecordsFromWorld(w *webgen.World) []*ContributorRecord {
	return NewContributorIndex(w).Records()
}

// ContributorIndex holds the contributor records of a world together with
// the per-user touched-discussion sets needed to keep DiscussionsTouched
// exact under incremental advancement. Contributor activity is purely
// additive across Advance ticks (existing comments are immutable), so a
// delta applies as counter increments plus set insertions — no world
// re-walk. An index is immutable once built; Apply returns a new one
// sharing every clean record and set.
type ContributorIndex struct {
	records []*ContributorRecord
	touched []map[int]bool // user row -> set of discussion IDs commented in
}

// NewContributorIndex walks the world once and builds the index.
func NewContributorIndex(w *webgen.World) *ContributorIndex {
	recs := make([]*ContributorRecord, len(w.Users))
	for i, u := range w.Users {
		recs[i] = &ContributorRecord{
			ID:                 u.ID,
			Name:               u.Name,
			Joined:             u.Joined,
			CommentsByCategory: map[string]int{},
			ObservedAt:         w.Config.End,
			Spammer:            u.Spammer,
		}
	}
	touched := make([]map[int]bool, len(w.Users))
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			if opener := w.User(d.OpenerID); opener != nil {
				recs[opener.ID].DiscussionsOpened++
			}
			for _, c := range d.Comments {
				r := recs[c.UserID]
				r.CommentsByCategory[d.Category]++
				r.Interactions++
				r.RepliesReceived += c.Replies
				r.FeedbacksReceived += c.Feedbacks
				r.ReadsReceived += c.Reads
				r.TagCount += len(c.Tags)
				set := touched[c.UserID]
				if set == nil {
					set = map[int]bool{}
					touched[c.UserID] = set
				}
				set[d.ID] = true
			}
		}
	}
	for uid, set := range touched {
		recs[uid].DiscussionsTouched = len(set)
	}
	return &ContributorIndex{records: recs, touched: touched}
}

// Records exposes the contributor records, ordered by user ID.
func (ix *ContributorIndex) Records() []*ContributorRecord { return ix.records }

// Apply folds an Advance delta into the index: every record is
// shallow-copied with the new observation instant (account ages move for
// everyone) and the records of contributors with fresh activity get their
// counters, category map and touched set updated. Results are bit-identical
// to NewContributorIndex over the advanced world. The returned row indices
// of the dirty contributors feed ContributorAssessor.UpdateRows; the
// receiver stays untouched for concurrent readers.
func (ix *ContributorIndex) Apply(w *webgen.World, delta *webgen.Delta) (*ContributorIndex, []int) {
	dirtyIDs := delta.DirtyContributorIDs()
	nix := &ContributorIndex{
		records: make([]*ContributorRecord, len(ix.records)),
		touched: append([]map[int]bool(nil), ix.touched...),
	}
	for i, r := range ix.records {
		nr := new(ContributorRecord)
		*nr = *r
		nr.ObservedAt = w.Config.End
		nix.records[i] = nr
	}
	dirtyRows := make([]int, 0, len(dirtyIDs))
	for _, id := range dirtyIDs {
		if id < 0 || id >= len(nix.records) {
			continue
		}
		dirtyRows = append(dirtyRows, id)
		r := nix.records[id]
		cats := make(map[string]int, len(r.CommentsByCategory)+1)
		for k, v := range r.CommentsByCategory {
			cats[k] = v
		}
		r.CommentsByCategory = cats
		set := make(map[int]bool, len(nix.touched[id])+1)
		for k := range nix.touched[id] {
			set[k] = true
		}
		nix.touched[id] = set
	}
	delta.ForEachNewDiscussion(func(_ int, d *webgen.Discussion) {
		if d.OpenerID >= 0 && d.OpenerID < len(nix.records) {
			nix.records[d.OpenerID].DiscussionsOpened++
		}
	})
	delta.ForEachNewComment(func(_ int, d *webgen.Discussion, c *webgen.Comment) {
		if c.UserID < 0 || c.UserID >= len(nix.records) {
			return
		}
		r := nix.records[c.UserID]
		r.CommentsByCategory[d.Category]++
		r.Interactions++
		r.RepliesReceived += c.Replies
		r.FeedbacksReceived += c.Feedbacks
		r.ReadsReceived += c.Reads
		r.TagCount += len(c.Tags)
		nix.touched[c.UserID][d.ID] = true
		r.DiscussionsTouched = len(nix.touched[c.UserID])
	})
	return nix, dirtyRows
}

// ContributorRecordsFromSocial maps microblog accounts to contributor
// records. Each tweet counts as its own (micro-)discussion, the service-
// agnostic reading of Section 3.2's interaction model.
func ContributorRecordsFromSocial(ds *social.Dataset, observedAt time.Time) []*ContributorRecord {
	recs := make([]*ContributorRecord, 0, len(ds.Accounts))
	for _, a := range ds.Accounts {
		recs = append(recs, &ContributorRecord{
			ID:                 a.ID,
			Name:               a.Handle,
			Joined:             a.Joined,
			CommentsByCategory: map[string]int{"": a.Interactions},
			DiscussionsOpened:  a.Interactions,
			DiscussionsTouched: a.Interactions,
			Interactions:       a.Interactions,
			RepliesReceived:    a.MentionsReceived,
			FeedbacksReceived:  a.RetweetsReceived,
			ObservedAt:         observedAt,
		})
	}
	return recs
}
