package quality

// Query execution contracts: every filter/sort/pagination combination must
// be bit-identical to the reference plan — Rank everything, filter the
// materialized assessments by the same predicates, slice the window. The
// bounded-heap path and the full-sort path must agree with each other and
// with that reference for any k.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// referenceQuery executes q the slow way: full Rank, post-filter on the
// materialized assessments, re-sort by the requested axis, slice.
func referenceQuery(a *SourceAssessor, records []*SourceRecord, q Query) *QueryResult {
	keep := sourceKeep(q)
	var matches []*Assessment
	for _, r := range records {
		if keep != nil && !keep(r) {
			continue
		}
		as := a.Assess(r)
		if as.Score < q.MinScore {
			continue
		}
		ok := true
		for d, v := range q.MinDimension {
			if s, present := as.DimensionScores[d]; !present || s < v {
				ok = false
			}
		}
		for at, v := range q.MinAttribute {
			if s, present := as.AttributeScores[at]; !present || s < v {
				ok = false
			}
		}
		for id, v := range q.MinMeasure {
			if n, present := as.Normalized[id]; !present || n < v {
				ok = false
			}
		}
		if ok {
			matches = append(matches, as)
		}
	}
	key := func(as *Assessment) float64 {
		switch q.Sort.By {
		case SortByDimension:
			return as.DimensionScores[q.Sort.Dimension]
		case SortByAttribute:
			return as.AttributeScores[q.Sort.Attribute]
		default:
			return as.Score
		}
	}
	// Insertion sort keeps the reference implementation independent of the
	// engine's comparator code.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0; j-- {
			ki, kj := key(matches[j]), key(matches[j-1])
			if ki > kj || (ki == kj && matches[j].ID < matches[j-1].ID) {
				matches[j], matches[j-1] = matches[j-1], matches[j]
			} else {
				break
			}
		}
	}
	total := len(matches)
	if q.TopK > 0 && len(matches) > q.TopK {
		matches = matches[:q.TopK]
	}
	offset := q.Offset
	if offset > len(matches) {
		offset = len(matches)
	}
	matches = matches[offset:]
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	if matches == nil {
		matches = []*Assessment{}
	}
	return &QueryResult{Items: matches, Total: total}
}

func TestQueryMatchesReference(t *testing.T) {
	records := worldRecords(t, 120, 31)
	a := NewSourceAssessor(records, defaultDI(), nil)
	timeDim := Time
	cases := map[string]Query{
		"zero":            {},
		"top-k":           {TopK: 10},
		"min-score":       {MinScore: 0.5},
		"min-score-top-k": {MinScore: 0.45, TopK: 7},
		"dimension-bar":   {MinDimension: map[Dimension]float64{timeDim: 0.4}, TopK: 12},
		"attribute-bar":   {MinAttribute: map[Attribute]float64{Traffic: 0.3}},
		"measure-bar":     {MinMeasure: map[string]float64{"src.time.liveliness": 0.2}, TopK: 20},
		"sort-dimension":  {Sort: SortKey{By: SortByDimension, Dimension: Authority}, TopK: 15},
		"sort-attribute":  {Sort: SortKey{By: SortByAttribute, Attribute: Liveliness}, TopK: 15},
		"paged":           {MinScore: 0.3, Offset: 10, Limit: 10},
		"paged-top-k":     {TopK: 30, Offset: 5, Limit: 10},
		"offset-past-end": {TopK: 5, Offset: 50, Limit: 10},
		"kind-scope":      {Kinds: []string{"blog", "forum"}, TopK: 10},
		"category-scope":  {Categories: []string{"place"}, MinScore: 0.2},
		"id-scope":        {IDs: []int{1, 3, 5, 7, 11, 13, 17}, TopK: 4},
	}
	for name, q := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := a.Query(records, q)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceQuery(a, records, q)
			if got.Total != want.Total {
				t.Fatalf("total = %d, want %d", got.Total, want.Total)
			}
			if !reflect.DeepEqual(got.Items, want.Items) {
				if len(got.Items) != len(want.Items) {
					t.Fatalf("items = %d, want %d", len(got.Items), len(want.Items))
				}
				for i := range got.Items {
					if !reflect.DeepEqual(got.Items[i], want.Items[i]) {
						t.Fatalf("item %d:\n got  %+v\n want %+v", i, got.Items[i], want.Items[i])
					}
				}
			}
		})
	}
}

// TestQueryHeapMatchesFullSort sweeps k across heap sizes (including k >=
// matches, where the heap never evicts) pinning heap/full-sort agreement.
func TestQueryHeapMatchesFullSort(t *testing.T) {
	records := worldRecords(t, 90, 33)
	a := NewSourceAssessor(records, defaultDI(), nil)
	full, err := a.Query(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7, 10, 45, 89, 90, 200} {
		got := a.RankTopK(records, k)
		want := full.Items
		if k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: heap selection disagrees with full sort", k)
		}
	}
}

func TestQueryRankTopKMatchesRankPrefix(t *testing.T) {
	records := worldRecords(t, 70, 35)
	a := NewSourceAssessor(records, defaultDI(), nil)
	ranked := a.Rank(records)
	top := a.RankTopK(records, 10)
	if !reflect.DeepEqual(top, ranked[:10]) {
		t.Fatal("RankTopK(10) is not the prefix of Rank")
	}
}

func TestQueryScoresProjection(t *testing.T) {
	records := worldRecords(t, 40, 37)
	a := NewSourceAssessor(records, defaultDI(), nil)
	res, err := a.Query(records, Query{TopK: 5, Fields: ProjectScores})
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := a.Query(records, Query{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, as := range res.Items {
		if as.Raw != nil || as.Normalized != nil {
			t.Fatal("ProjectScores must skip the per-measure maps")
		}
		full := fullRes.Items[i]
		if as.ID != full.ID || as.Score != full.Score ||
			!reflect.DeepEqual(as.DimensionScores, full.DimensionScores) ||
			!reflect.DeepEqual(as.AttributeScores, full.AttributeScores) {
			t.Fatal("projection changed the scores")
		}
	}
}

func TestQueryErrors(t *testing.T) {
	records := worldRecords(t, 20, 39)
	a := NewSourceAssessor(records, defaultDI(), nil)
	if _, err := a.Query(records, Query{MinMeasure: map[string]float64{"no.such.measure": 0.5}}); err == nil {
		t.Error("unknown measure must error")
	}
	if _, err := a.Query(records, Query{Sort: SortKey{By: SortBy(99)}}); err == nil {
		t.Error("unknown sort key must error")
	}
	if _, err := a.Query(records, Query{MinSpamResistance: 0.5}); err == nil {
		t.Error("spam resistance on a source query must error")
	}
}

func TestContributorQuerySpamResistance(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 41, NumSources: 60, NumUsers: 200, SpamRate: 0.25})
	records := ContributorRecordsFromWorld(w)
	a := NewContributorAssessor(records, DomainOfInterest{Categories: w.Categories}, nil)

	if _, err := a.Query(records, Query{Kinds: []string{"blog"}}); err == nil {
		t.Error("kinds on a contributor query must error")
	}

	all, err := a.Query(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	resistant, err := a.Query(records, Query{MinSpamResistance: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if resistant.Total == 0 || resistant.Total >= all.Total {
		t.Fatalf("spam-resistance did not narrow: %d of %d", resistant.Total, all.Total)
	}
	// The predicate thresholds the relative reaction signal, so every
	// survivor must clear it on the materialized measures too.
	for _, as := range resistant.Items {
		if avgOf(as.Normalized, relativeReactionMeasures...) < 0.35 {
			t.Fatalf("%s survived with weak relative signal", as.Name)
		}
	}
	// And the spammer share among survivors must not exceed the unfiltered
	// share (Section 3.2's robustness claim).
	spamShare := func(items []*Assessment) float64 {
		byID := map[int]*ContributorRecord{}
		for _, r := range records {
			byID[r.ID] = r
		}
		spam := 0
		for _, as := range items {
			if byID[as.ID].Spammer {
				spam++
			}
		}
		return float64(spam) / float64(len(items))
	}
	if s, u := spamShare(resistant.Items), spamShare(all.Items); s > u {
		t.Errorf("spam share rose under the resistance predicate: %.3f > %.3f", s, u)
	}
}

// TestQueryAfterUpdateRows pins that the lean query path reads the
// repaired matrix, not stale construction state.
func TestQueryAfterUpdateRows(t *testing.T) {
	w, w2, delta, panel, panel2 := advancedWorld(t, 40, 43, 5)
	if w2 == w {
		t.Fatal("tick changed nothing; pick another seed")
	}
	records := SourceRecordsFromWorld(w, panel)
	a := NewSourceAssessor(records, defaultDI(), nil)

	records2, dirty := UpdateSourceRecordsFromWorld(records, w2, panel2, delta.DirtySourceIDs())
	updated := a.UpdateRows(records2, dirty, delta.EpochMoved())

	fresh := NewSourceAssessor(records2, defaultDI(), nil)
	q := Query{MinScore: 0.35, TopK: 12}
	got, err := updated.Query(records2, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Query(records2, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatal("query over an incrementally updated assessor diverges from a rebuild")
	}
}

func TestParseDimensionAttribute(t *testing.T) {
	for _, d := range Dimensions() {
		got, ok := ParseDimension(d.String())
		if !ok || got != d {
			t.Errorf("ParseDimension(%q) = %v, %v", d.String(), got, ok)
		}
	}
	if _, ok := ParseDimension("nope"); ok {
		t.Error("bad dimension name must not parse")
	}
	for _, at := range []Attribute{Relevance, Breadth, Traffic, Activity, Liveliness} {
		got, ok := ParseAttribute(at.String())
		if !ok || got != at {
			t.Errorf("ParseAttribute(%q) = %v, %v", at.String(), got, ok)
		}
	}
	if _, ok := ParseAttribute("nope"); ok {
		t.Error("bad attribute name must not parse")
	}
}

// --- Keyset pagination, spine/window and randomized equivalence ---------

// sourceCategories and sourceKinds are the scope vocabularies of the
// generated worlds, used by the randomized query generator.
var (
	randQueryCategories = []string{"presence", "place", "potential", "pulse", "people", "prerequisites"}
	randQueryKinds      = []string{"blog", "forum", "review-site", "social-network"}
)

// randomQuery draws one query: scopes, per-axis predicates, sort, k,
// window and projection all randomized. Cursor-free — walks derive their
// cursors from execution.
func randomQuery(rng *rand.Rand) Query {
	var q Query
	if rng.Intn(4) == 0 {
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			q.IDs = append(q.IDs, rng.Intn(160))
		}
	}
	if rng.Intn(4) == 0 {
		q.Categories = append(q.Categories, randQueryCategories[rng.Intn(len(randQueryCategories))])
		if rng.Intn(2) == 0 {
			q.Categories = append(q.Categories, randQueryCategories[rng.Intn(len(randQueryCategories))])
		}
	}
	if rng.Intn(4) == 0 {
		q.Kinds = append(q.Kinds, randQueryKinds[rng.Intn(len(randQueryKinds))])
		if rng.Intn(2) == 0 {
			q.Kinds = append(q.Kinds, randQueryKinds[rng.Intn(len(randQueryKinds))])
		}
	}
	if rng.Intn(2) == 0 {
		q.MinScore = rng.Float64() * 0.7
	}
	if rng.Intn(4) == 0 {
		dims := Dimensions()
		q.MinDimension = map[Dimension]float64{dims[rng.Intn(len(dims))]: rng.Float64() * 0.6}
	}
	if rng.Intn(4) == 0 {
		atts := []Attribute{Relevance, Breadth, Traffic, Liveliness}
		q.MinAttribute = map[Attribute]float64{atts[rng.Intn(len(atts))]: rng.Float64() * 0.6}
	}
	if rng.Intn(5) == 0 {
		q.MinMeasure = map[string]float64{"src.time.liveliness": rng.Float64() * 0.5}
	}
	switch rng.Intn(4) {
	case 0:
		dims := Dimensions()
		q.Sort = SortKey{By: SortByDimension, Dimension: dims[rng.Intn(len(dims))]}
	case 1:
		atts := []Attribute{Relevance, Breadth, Traffic, Liveliness}
		q.Sort = SortKey{By: SortByAttribute, Attribute: atts[rng.Intn(len(atts))]}
	}
	if rng.Intn(2) == 0 {
		q.TopK = 1 + rng.Intn(60)
	}
	if rng.Intn(2) == 0 {
		q.Offset = rng.Intn(25)
	}
	if rng.Intn(2) == 0 {
		q.Limit = 1 + rng.Intn(20)
	}
	if rng.Intn(3) == 0 {
		q.Fields = ProjectScores
	}
	return q
}

// TestQueryRandomizedEquivalence pins ~200 seeded-random queries
// bit-identical across all three execution plans: the lean rankTopK pass,
// the naive reference plan (full Rank, post-filter, re-sort, slice), and
// the spine+window path the facade cache serves from.
func TestQueryRandomizedEquivalence(t *testing.T) {
	records := worldRecords(t, 160, 47)
	a := NewSourceAssessor(records, defaultDI(), nil)
	rng := rand.New(rand.NewSource(4711))
	for i := 0; i < 200; i++ {
		q := randomQuery(rng)
		got, err := a.Query(records, q)
		if err != nil {
			t.Fatalf("query %d (%+v): %v", i, q, err)
		}
		// Reference plan (always materializes full assessments).
		qFull := q
		qFull.Fields = ProjectFull
		gotFull, err := a.Query(records, qFull)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceQuery(a, records, qFull)
		if gotFull.Total != want.Total {
			t.Fatalf("query %d (%+v): total %d, want %d", i, q, gotFull.Total, want.Total)
		}
		if !reflect.DeepEqual(gotFull.Items, want.Items) {
			t.Fatalf("query %d (%+v): engine diverges from reference plan", i, q)
		}
		// Spine + window plan must reproduce the engine result exactly,
		// including Start and the resume cursor.
		sp, err := a.Spine(records, q)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Total() != got.Total {
			t.Fatalf("query %d: spine total %d, want %d", i, sp.Total(), got.Total)
		}
		wres, err := a.Window(records, sp, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wres, got) {
			t.Fatalf("query %d (%+v): spine window diverges from rankTopK\n spine: %+v\n rank:  %+v",
				i, q, wres, got)
		}
	}
}

// walkOffsets pages through q with the deprecated offset shim.
func walkOffsets(t *testing.T, a *SourceAssessor, records []*SourceRecord, q Query, limit int) []*Assessment {
	t.Helper()
	items := []*Assessment{}
	for off := 0; off < 100000; off += limit {
		qq := q
		qq.Offset, qq.Limit, qq.After = off, limit, nil
		res, err := a.Query(records, qq)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, res.Items...)
		if len(res.Items) < limit {
			break
		}
	}
	return items
}

// walkCursor pages through q by chaining each page's resume cursor,
// executing either through rankTopK or through a shared spine.
func walkCursor(t *testing.T, a *SourceAssessor, records []*SourceRecord, q Query, limit int, viaSpine bool) []*Assessment {
	t.Helper()
	var sp *Spine
	if viaSpine {
		var err error
		if sp, err = a.Spine(records, q); err != nil {
			t.Fatal(err)
		}
	}
	items := []*Assessment{}
	var cur *Cursor
	for pages := 0; pages < 100000; pages++ {
		qq := q
		qq.Offset, qq.Limit, qq.After = 0, limit, cur
		var res *QueryResult
		var err error
		if viaSpine {
			res, err = a.Window(records, sp, qq)
		} else {
			res, err = a.Query(records, qq)
		}
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, res.Items...)
		if res.Next == nil {
			return items
		}
		if len(res.Items) == 0 {
			t.Fatal("empty page with a resume cursor")
		}
		cur = res.Next
	}
	t.Fatal("cursor walk did not terminate")
	return nil
}

// TestQueryCursorWalkEquivalence is the keyset-pagination acceptance
// contract at the engine level: for randomized queries, a chained-cursor
// walk (through both execution plans) is bit-identical to a full-offset
// walk and to the unwindowed ranking.
func TestQueryCursorWalkEquivalence(t *testing.T) {
	records := worldRecords(t, 140, 49)
	a := NewSourceAssessor(records, defaultDI(), nil)
	rng := rand.New(rand.NewSource(1337))
	for i := 0; i < 60; i++ {
		q := randomQuery(rng)
		q.Offset, q.Limit = 0, 0
		limit := 1 + rng.Intn(13)

		full, err := a.Query(records, q)
		if err != nil {
			t.Fatal(err)
		}
		offsetWalk := walkOffsets(t, a, records, q, limit)
		cursorWalk := walkCursor(t, a, records, q, limit, false)
		spineWalk := walkCursor(t, a, records, q, limit, true)
		if !reflect.DeepEqual(offsetWalk, full.Items) {
			t.Fatalf("query %d (%+v, limit %d): offset walk diverges from the full ranking", i, q, limit)
		}
		if !reflect.DeepEqual(cursorWalk, full.Items) {
			t.Fatalf("query %d (%+v, limit %d): cursor walk diverges from the full ranking", i, q, limit)
		}
		if !reflect.DeepEqual(spineWalk, full.Items) {
			t.Fatalf("query %d (%+v, limit %d): spine cursor walk diverges from the full ranking", i, q, limit)
		}
	}
}

// TestQueryCursorSemantics pins the cursor edge cases: budget exhaustion
// under TopK, the offset exclusivity error, invalid cursors, and Total
// stability across a walk.
func TestQueryCursorSemantics(t *testing.T) {
	records := worldRecords(t, 80, 51)
	a := NewSourceAssessor(records, defaultDI(), nil)

	res, err := a.Query(records, Query{TopK: 10, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 4 || res.Next == nil || res.Next.Pos != 4 {
		t.Fatalf("first page: %d items, next %+v", len(res.Items), res.Next)
	}
	// Every page of one walk reports the same pre-pagination Total.
	page2, err := a.Query(records, Query{TopK: 10, Limit: 4, After: res.Next})
	if err != nil {
		t.Fatal(err)
	}
	if page2.Total != res.Total || page2.Start != 4 {
		t.Fatalf("page 2: total %d (want %d), start %d", page2.Total, res.Total, page2.Start)
	}
	// TopK budget: the walk stops at k across pages, not k per page.
	page3, err := a.Query(records, Query{TopK: 10, Limit: 4, After: page2.Next})
	if err != nil {
		t.Fatal(err)
	}
	if len(page3.Items) != 2 || page3.Next != nil {
		t.Fatalf("page 3 must close the k=10 walk: %d items, next %+v", len(page3.Items), page3.Next)
	}
	// A cursor whose Pos already consumed the budget yields an empty page.
	spent, err := a.Query(records, Query{TopK: 10, Limit: 4, After: &Cursor{Key: 0.1, ID: 3, Pos: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(spent.Items) != 0 || spent.Next != nil {
		t.Fatal("exhausted budget must yield an empty final page")
	}

	if _, err := a.Query(records, Query{Offset: 3, After: &Cursor{}}); err == nil {
		t.Error("cursor plus offset must error")
	}
	if _, err := a.Query(records, Query{After: &Cursor{Key: math.NaN()}}); err == nil {
		t.Error("NaN cursor key must error")
	}
	if _, err := a.Query(records, Query{After: &Cursor{ID: -1}}); err == nil {
		t.Error("negative cursor ID must error")
	}
	sp, err := a.Spine(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Window(records, sp, Query{Offset: 3, After: &Cursor{}}); err == nil {
		t.Error("window with cursor plus offset must error")
	}
}

// TestQueryCanonicalKey pins the cache-key contract: representation
// differences (set order, duplicates) canonicalize identically, while
// semantic differences never collide.
func TestQueryCanonicalKey(t *testing.T) {
	a := Query{IDs: []int{5, 3, 5}, Categories: []string{"pulse", "place"}, MinScore: 0.5, TopK: 10}
	b := Query{IDs: []int{3, 5}, Categories: []string{"place", "pulse", "place"}, MinScore: 0.5, TopK: 10}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("set order and duplicates must not change the canonical key")
	}
	distinct := []Query{
		{},
		{MinScore: 0.5},
		{MinScore: 0.5000000001},
		{TopK: 10},
		{Limit: 10},
		{Offset: 10},
		{Fields: ProjectScores},
		{Categories: []string{"place"}},
		{Kinds: []string{"place"}},
		{IDs: []int{1}},
		{MinDimension: map[Dimension]float64{Time: 0.5}},
		{MinAttribute: map[Attribute]float64{Traffic: 0.5}},
		{MinMeasure: map[string]float64{"src.time.liveliness": 0.5}},
		{MinSpamResistance: 0.5},
		{Sort: SortKey{By: SortByDimension, Dimension: Time}},
		{After: &Cursor{Key: 0.5, ID: 1, Pos: 3}},
		{After: &Cursor{Key: 0.5, ID: 1, Pos: 4}},
	}
	seen := map[string]int{}
	for i, q := range distinct {
		key := q.CanonicalKey()
		if j, dup := seen[key]; dup {
			t.Fatalf("queries %d and %d collide on %q", i, j, key)
		}
		seen[key] = i
	}
	// Windowless strips exactly the pagination and projection fields.
	wq := Query{MinScore: 0.3, TopK: 5, Offset: 2, Limit: 3, After: &Cursor{Pos: 2}, Fields: ProjectScores}
	if wq.Windowless().CanonicalKey() != (Query{MinScore: 0.3}).CanonicalKey() {
		t.Fatal("Windowless must strip the window and projection only")
	}
}

// TestDiffWindows pins the watch delta semantics on a crafted pair.
func TestDiffWindows(t *testing.T) {
	as := func(id int, score float64) *Assessment {
		return &Assessment{ID: id, Name: fmt.Sprintf("s%d", id), Score: score}
	}
	old := []*Assessment{as(1, 0.9), as(2, 0.8), as(3, 0.7), as(4, 0.6)}
	new := []*Assessment{as(1, 0.9), as(3, 0.85), as(5, 0.75), as(2, 0.65)}
	got := DiffWindows(old, new)
	want := []WindowChange{
		{ID: 3, Name: "s3", OldRank: 3, NewRank: 2, Score: 0.85},
		{ID: 5, Name: "s5", OldRank: 0, NewRank: 3, Score: 0.75},
		{ID: 2, Name: "s2", OldRank: 2, NewRank: 4, Score: 0.65},
		{ID: 4, Name: "s4", OldRank: 4, NewRank: 0, Score: 0.6},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diff:\n got  %+v\n want %+v", got, want)
	}
	for i, ev := range []string{"moved", "entered", "moved", "left"} {
		if got[i].Event() != ev {
			t.Errorf("change %d: event %q, want %q", i, got[i].Event(), ev)
		}
	}
	if d := DiffWindows(old, old); len(d) != 0 {
		t.Fatalf("identical windows must diff empty, got %+v", d)
	}
}

// TestQueryExtremeWindowValuesDoNotPanic pins the overflow guards: a
// forged cursor plus a huge TopK, or an offset+limit sum past MaxInt,
// must degrade to sane windows (empty or clamped), never to a negative
// slice bound or heap index panic — both were reachable over HTTP.
func TestQueryExtremeWindowValuesDoNotPanic(t *testing.T) {
	records := worldRecords(t, 30, 53)
	a := NewSourceAssessor(records, defaultDI(), nil)

	// Huge TopK with a cursor that sorts after everything: the window is
	// empty, on both execution plans.
	forged := &Cursor{Key: math.Inf(-1), ID: 0, Pos: 0}
	res, err := a.Query(records, Query{TopK: math.MaxInt, After: forged})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 || res.Next != nil {
		t.Fatalf("forged trailing cursor must close the walk: %d items", len(res.Items))
	}
	sp, err := a.Spine(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	wres, err := a.Window(records, sp, Query{TopK: math.MaxInt, After: forged})
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Items) != 0 || wres.Next != nil {
		t.Fatalf("window plan: forged trailing cursor must close the walk: %d items", len(wres.Items))
	}

	// offset+limit past MaxInt must not wrap the heap bound negative.
	res, err = a.Query(records, Query{Offset: math.MaxInt - 5, Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 0 {
		t.Fatalf("absurd offset must return an empty page, got %d items", len(res.Items))
	}
	wres, err = a.Window(records, sp, Query{Offset: math.MaxInt - 5, Limit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Items) != 0 {
		t.Fatalf("window plan: absurd offset must return an empty page, got %d items", len(wres.Items))
	}

	// A cursor Pos near MaxInt without TopK: the page serves, and the
	// saturated consumed count closes the walk instead of wrapping into a
	// bogus resume cursor.
	res, err = a.Query(records, Query{After: &Cursor{Key: math.Inf(1), ID: 0, Pos: math.MaxInt - 1}, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Next != nil {
		t.Fatal("saturated walk position must not emit a resume cursor")
	}
}
