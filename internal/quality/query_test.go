package quality

// Query execution contracts: every filter/sort/pagination combination must
// be bit-identical to the reference plan — Rank everything, filter the
// materialized assessments by the same predicates, slice the window. The
// bounded-heap path and the full-sort path must agree with each other and
// with that reference for any k.

import (
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

// referenceQuery executes q the slow way: full Rank, post-filter on the
// materialized assessments, re-sort by the requested axis, slice.
func referenceQuery(a *SourceAssessor, records []*SourceRecord, q Query) *QueryResult {
	keep := sourceKeep(q)
	var matches []*Assessment
	for _, r := range records {
		if keep != nil && !keep(r) {
			continue
		}
		as := a.Assess(r)
		if as.Score < q.MinScore {
			continue
		}
		ok := true
		for d, v := range q.MinDimension {
			if s, present := as.DimensionScores[d]; !present || s < v {
				ok = false
			}
		}
		for at, v := range q.MinAttribute {
			if s, present := as.AttributeScores[at]; !present || s < v {
				ok = false
			}
		}
		for id, v := range q.MinMeasure {
			if n, present := as.Normalized[id]; !present || n < v {
				ok = false
			}
		}
		if ok {
			matches = append(matches, as)
		}
	}
	key := func(as *Assessment) float64 {
		switch q.Sort.By {
		case SortByDimension:
			return as.DimensionScores[q.Sort.Dimension]
		case SortByAttribute:
			return as.AttributeScores[q.Sort.Attribute]
		default:
			return as.Score
		}
	}
	// Insertion sort keeps the reference implementation independent of the
	// engine's comparator code.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0; j-- {
			ki, kj := key(matches[j]), key(matches[j-1])
			if ki > kj || (ki == kj && matches[j].ID < matches[j-1].ID) {
				matches[j], matches[j-1] = matches[j-1], matches[j]
			} else {
				break
			}
		}
	}
	total := len(matches)
	if q.TopK > 0 && len(matches) > q.TopK {
		matches = matches[:q.TopK]
	}
	offset := q.Offset
	if offset > len(matches) {
		offset = len(matches)
	}
	matches = matches[offset:]
	if q.Limit > 0 && len(matches) > q.Limit {
		matches = matches[:q.Limit]
	}
	if matches == nil {
		matches = []*Assessment{}
	}
	return &QueryResult{Items: matches, Total: total}
}

func TestQueryMatchesReference(t *testing.T) {
	records := worldRecords(t, 120, 31)
	a := NewSourceAssessor(records, defaultDI(), nil)
	timeDim := Time
	cases := map[string]Query{
		"zero":            {},
		"top-k":           {TopK: 10},
		"min-score":       {MinScore: 0.5},
		"min-score-top-k": {MinScore: 0.45, TopK: 7},
		"dimension-bar":   {MinDimension: map[Dimension]float64{timeDim: 0.4}, TopK: 12},
		"attribute-bar":   {MinAttribute: map[Attribute]float64{Traffic: 0.3}},
		"measure-bar":     {MinMeasure: map[string]float64{"src.time.liveliness": 0.2}, TopK: 20},
		"sort-dimension":  {Sort: SortKey{By: SortByDimension, Dimension: Authority}, TopK: 15},
		"sort-attribute":  {Sort: SortKey{By: SortByAttribute, Attribute: Liveliness}, TopK: 15},
		"paged":           {MinScore: 0.3, Offset: 10, Limit: 10},
		"paged-top-k":     {TopK: 30, Offset: 5, Limit: 10},
		"offset-past-end": {TopK: 5, Offset: 50, Limit: 10},
		"kind-scope":      {Kinds: []string{"blog", "forum"}, TopK: 10},
		"category-scope":  {Categories: []string{"place"}, MinScore: 0.2},
		"id-scope":        {IDs: []int{1, 3, 5, 7, 11, 13, 17}, TopK: 4},
	}
	for name, q := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := a.Query(records, q)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceQuery(a, records, q)
			if got.Total != want.Total {
				t.Fatalf("total = %d, want %d", got.Total, want.Total)
			}
			if !reflect.DeepEqual(got.Items, want.Items) {
				if len(got.Items) != len(want.Items) {
					t.Fatalf("items = %d, want %d", len(got.Items), len(want.Items))
				}
				for i := range got.Items {
					if !reflect.DeepEqual(got.Items[i], want.Items[i]) {
						t.Fatalf("item %d:\n got  %+v\n want %+v", i, got.Items[i], want.Items[i])
					}
				}
			}
		})
	}
}

// TestQueryHeapMatchesFullSort sweeps k across heap sizes (including k >=
// matches, where the heap never evicts) pinning heap/full-sort agreement.
func TestQueryHeapMatchesFullSort(t *testing.T) {
	records := worldRecords(t, 90, 33)
	a := NewSourceAssessor(records, defaultDI(), nil)
	full, err := a.Query(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 7, 10, 45, 89, 90, 200} {
		got := a.RankTopK(records, k)
		want := full.Items
		if k < len(want) {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: heap selection disagrees with full sort", k)
		}
	}
}

func TestQueryRankTopKMatchesRankPrefix(t *testing.T) {
	records := worldRecords(t, 70, 35)
	a := NewSourceAssessor(records, defaultDI(), nil)
	ranked := a.Rank(records)
	top := a.RankTopK(records, 10)
	if !reflect.DeepEqual(top, ranked[:10]) {
		t.Fatal("RankTopK(10) is not the prefix of Rank")
	}
}

func TestQueryScoresProjection(t *testing.T) {
	records := worldRecords(t, 40, 37)
	a := NewSourceAssessor(records, defaultDI(), nil)
	res, err := a.Query(records, Query{TopK: 5, Fields: ProjectScores})
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := a.Query(records, Query{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, as := range res.Items {
		if as.Raw != nil || as.Normalized != nil {
			t.Fatal("ProjectScores must skip the per-measure maps")
		}
		full := fullRes.Items[i]
		if as.ID != full.ID || as.Score != full.Score ||
			!reflect.DeepEqual(as.DimensionScores, full.DimensionScores) ||
			!reflect.DeepEqual(as.AttributeScores, full.AttributeScores) {
			t.Fatal("projection changed the scores")
		}
	}
}

func TestQueryErrors(t *testing.T) {
	records := worldRecords(t, 20, 39)
	a := NewSourceAssessor(records, defaultDI(), nil)
	if _, err := a.Query(records, Query{MinMeasure: map[string]float64{"no.such.measure": 0.5}}); err == nil {
		t.Error("unknown measure must error")
	}
	if _, err := a.Query(records, Query{Sort: SortKey{By: SortBy(99)}}); err == nil {
		t.Error("unknown sort key must error")
	}
	if _, err := a.Query(records, Query{MinSpamResistance: 0.5}); err == nil {
		t.Error("spam resistance on a source query must error")
	}
}

func TestContributorQuerySpamResistance(t *testing.T) {
	w := webgen.Generate(webgen.Config{Seed: 41, NumSources: 60, NumUsers: 200, SpamRate: 0.25})
	records := ContributorRecordsFromWorld(w)
	a := NewContributorAssessor(records, DomainOfInterest{Categories: w.Categories}, nil)

	if _, err := a.Query(records, Query{Kinds: []string{"blog"}}); err == nil {
		t.Error("kinds on a contributor query must error")
	}

	all, err := a.Query(records, Query{})
	if err != nil {
		t.Fatal(err)
	}
	resistant, err := a.Query(records, Query{MinSpamResistance: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if resistant.Total == 0 || resistant.Total >= all.Total {
		t.Fatalf("spam-resistance did not narrow: %d of %d", resistant.Total, all.Total)
	}
	// The predicate thresholds the relative reaction signal, so every
	// survivor must clear it on the materialized measures too.
	for _, as := range resistant.Items {
		if avgOf(as.Normalized, relativeReactionMeasures...) < 0.35 {
			t.Fatalf("%s survived with weak relative signal", as.Name)
		}
	}
	// And the spammer share among survivors must not exceed the unfiltered
	// share (Section 3.2's robustness claim).
	spamShare := func(items []*Assessment) float64 {
		byID := map[int]*ContributorRecord{}
		for _, r := range records {
			byID[r.ID] = r
		}
		spam := 0
		for _, as := range items {
			if byID[as.ID].Spammer {
				spam++
			}
		}
		return float64(spam) / float64(len(items))
	}
	if s, u := spamShare(resistant.Items), spamShare(all.Items); s > u {
		t.Errorf("spam share rose under the resistance predicate: %.3f > %.3f", s, u)
	}
}

// TestQueryAfterUpdateRows pins that the lean query path reads the
// repaired matrix, not stale construction state.
func TestQueryAfterUpdateRows(t *testing.T) {
	w, w2, delta, panel, panel2 := advancedWorld(t, 40, 43, 5)
	if w2 == w {
		t.Fatal("tick changed nothing; pick another seed")
	}
	records := SourceRecordsFromWorld(w, panel)
	a := NewSourceAssessor(records, defaultDI(), nil)

	records2, dirty := UpdateSourceRecordsFromWorld(records, w2, panel2, delta.DirtySourceIDs())
	updated := a.UpdateRows(records2, dirty, delta.EpochMoved())

	fresh := NewSourceAssessor(records2, defaultDI(), nil)
	q := Query{MinScore: 0.35, TopK: 12}
	got, err := updated.Query(records2, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Query(records2, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total != want.Total || !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatal("query over an incrementally updated assessor diverges from a rebuild")
	}
}

func TestParseDimensionAttribute(t *testing.T) {
	for _, d := range Dimensions() {
		got, ok := ParseDimension(d.String())
		if !ok || got != d {
			t.Errorf("ParseDimension(%q) = %v, %v", d.String(), got, ok)
		}
	}
	if _, ok := ParseDimension("nope"); ok {
		t.Error("bad dimension name must not parse")
	}
	for _, at := range []Attribute{Relevance, Breadth, Traffic, Activity, Liveliness} {
		got, ok := ParseAttribute(at.String())
		if !ok || got != at {
			t.Errorf("ParseAttribute(%q) = %v, %v", at.String(), got, ok)
		}
	}
	if _, ok := ParseAttribute("nope"); ok {
		t.Error("bad attribute name must not parse")
	}
}
