package quality

// Query is the declarative read request of the quality-driven filtering
// stack — the paper's headline consumption pattern ("observers consume
// filtered, ranked slices, not whole corpora") as a first-class value. One
// Query scopes the candidate records, filters them by quality predicates,
// ranks the survivors by a chosen axis and returns a paginated window —
// and the same value is understood by every layer: the assessors execute
// it below ranking (bounded top-k selection over the cached measure matrix
// instead of sorting all N assessments), the mashup data services compile
// their parameters to it, and internal/apiserve binds it from HTTP query
// strings (DESIGN.md section 7).
//
// The zero Query matches every record, ranks by overall score and returns
// everything — exactly the historical Rank behaviour.

import (
	"fmt"
	"sort"
)

// Projection selects how much of each Assessment a query materializes.
type Projection int

const (
	// ProjectFull materializes the complete Assessment, including the
	// per-measure Raw and Normalized maps.
	ProjectFull Projection = iota
	// ProjectScores skips the per-measure maps and keeps only Score,
	// DimensionScores and AttributeScores — the serving-path projection
	// (roughly halves the allocation cost per returned item).
	ProjectScores
)

// SortBy names the ranking axis of a Query.
type SortBy int

const (
	// SortByScore ranks by the overall weighted score (the default).
	SortByScore SortBy = iota
	// SortByDimension ranks by one data-quality dimension's average.
	SortByDimension
	// SortByAttribute ranks by one Web 2.0 attribute's average.
	SortByAttribute
)

// SortKey is the ranking axis: the overall score, one dimension or one
// attribute. Ranking is always best-first with ties broken by ascending ID
// (the historical Rank order); records for which the axis is undefined
// sort last.
type SortKey struct {
	By        SortBy
	Dimension Dimension // read when By == SortByDimension
	Attribute Attribute // read when By == SortByAttribute
}

// Query is a composable read request over an assessed corpus. Fields
// combine with AND semantics; zero values mean "no restriction". Build one
// literally or through the fluent builder in the root informer package.
type Query struct {
	// IDs restricts candidates to the given record IDs (a search result
	// set, a crawl frontier, an explicit watchlist).
	IDs []int
	// Categories restricts candidates to records active in at least one of
	// the given content categories: sources with a discussion in a
	// category, contributors with a comment in one.
	Categories []string
	// Kinds restricts source candidates by source kind ("blog", "forum",
	// "review-site", "social-network"). Source queries only.
	Kinds []string

	// MinScore keeps records whose overall weighted score clears the bar.
	MinScore float64
	// MinDimension keeps records whose per-dimension average clears the
	// bar; records lacking the dimension entirely never match.
	MinDimension map[Dimension]float64
	// MinAttribute likewise thresholds per-attribute averages.
	MinAttribute map[Attribute]float64
	// MinMeasure thresholds individual normalized measure values by
	// catalogue ID; unknown IDs are an error.
	MinMeasure map[string]float64
	// MinSpamResistance keeps contributors whose relative reaction signal
	// (the per-contribution reaction rates of Section 3.2, the quantity
	// that is near zero for spammers and bots regardless of their volume)
	// clears the bar. Contributor queries only.
	MinSpamResistance float64

	// Sort is the ranking axis (zero value: overall score, best first).
	Sort SortKey
	// TopK bounds the ranked selection to the k best matches before
	// pagination (0 = unbounded). Execution with a bound never sorts the
	// full corpus: matches stream through a bounded heap and only the
	// winners are materialized.
	TopK int
	// Offset and Limit window the ranked matches for pagination.
	Offset, Limit int
	// Fields selects the materialization (ProjectFull or ProjectScores).
	Fields Projection
}

// QueryResult is one executed Query.
type QueryResult struct {
	// Items is the requested window of the ranked matches, best first.
	Items []*Assessment
	// Total counts every record matching the scope and predicates, before
	// top-k selection and pagination — the pagination envelope's total.
	Total int
}

// Query executes q over the records: scope and predicates filter below the
// ranking, the survivors are ranked by q.Sort, and only the requested
// window is materialized. With a selection bound (TopK and/or Limit) the
// matches stream through a bounded heap — O(N log k) with O(k)
// materializations — instead of assessing and sorting the whole corpus.
// Results are bit-identical to filtering and slicing Rank's output.
func (a *SourceAssessor) Query(records []*SourceRecord, q Query) (*QueryResult, error) {
	if q.MinSpamResistance > 0 {
		return nil, fmt.Errorf("quality: MinSpamResistance applies to contributor queries only")
	}
	return a.engine.rankTopK(records, q, sourceKeep(q), nil)
}

// RankTopK returns the k best records, best first — shorthand for a Query
// with only TopK set.
func (a *SourceAssessor) RankTopK(records []*SourceRecord, k int) []*Assessment {
	res, err := a.Query(records, Query{TopK: k})
	if err != nil {
		panic(err) // unreachable: a bare top-k query cannot be invalid
	}
	return res.Items
}

// Query executes q over contributor records; see SourceAssessor.Query.
// Contributor queries additionally understand MinSpamResistance; Kinds is
// rejected (contributors have no source kind).
func (a *ContributorAssessor) Query(records []*ContributorRecord, q Query) (*QueryResult, error) {
	if len(q.Kinds) > 0 {
		return nil, fmt.Errorf("quality: Kinds applies to source queries only")
	}
	var spamIdx []int
	if q.MinSpamResistance > 0 {
		for _, id := range relativeReactionMeasures {
			if m := a.engine.measurePos(id); m >= 0 {
				spamIdx = append(spamIdx, m)
			}
		}
	}
	return a.engine.rankTopK(records, q, contributorKeep(q), spamIdx)
}

// RankTopK returns the k best contributors, best first.
func (a *ContributorAssessor) RankTopK(records []*ContributorRecord, k int) []*Assessment {
	res, err := a.Query(records, Query{TopK: k})
	if err != nil {
		panic(err) // unreachable: a bare top-k query cannot be invalid
	}
	return res.Items
}

// sourceKeep compiles the source-scope fields into a record predicate, or
// nil when the query is unscoped.
func sourceKeep(q Query) func(*SourceRecord) bool {
	if len(q.IDs) == 0 && len(q.Categories) == 0 && len(q.Kinds) == 0 {
		return nil
	}
	idSet := intSet(q.IDs)
	kindSet := stringSet(q.Kinds)
	catSet := stringSet(q.Categories)
	return func(r *SourceRecord) bool {
		if idSet != nil && !idSet[r.ID] {
			return false
		}
		if kindSet != nil && !kindSet[r.Kind] {
			return false
		}
		if catSet != nil {
			found := false
			for i := range r.Discussions {
				if catSet[r.Discussions[i].Category] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
}

// contributorKeep compiles the contributor-scope fields into a predicate.
func contributorKeep(q Query) func(*ContributorRecord) bool {
	if len(q.IDs) == 0 && len(q.Categories) == 0 {
		return nil
	}
	idSet := intSet(q.IDs)
	catSet := stringSet(q.Categories)
	return func(r *ContributorRecord) bool {
		if idSet != nil && !idSet[r.ID] {
			return false
		}
		if catSet != nil {
			found := false
			for cat, n := range r.CommentsByCategory {
				if n > 0 && catSet[cat] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
}

func intSet(xs []int) map[int]bool {
	if len(xs) == 0 {
		return nil
	}
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

func stringSet(xs []string) map[string]bool {
	if len(xs) == 0 {
		return nil
	}
	s := make(map[string]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// leanBuf holds the reusable scratch of the lean (map-free) evaluation of
// one record during a query scan. Reusing one buffer across the scan keeps
// the filter-and-rank pass allocation-free.
type leanBuf struct {
	raw            []float64
	def            []bool
	norm           []float64
	dimSum, dimCnt []float64
	attSum, attCnt []float64
	score          float64
}

func (e *matrixEngine[R]) newLeanBuf() *leanBuf {
	nm := len(e.infos)
	return &leanBuf{
		raw:    make([]float64, nm),
		def:    make([]bool, nm),
		norm:   make([]float64, nm),
		dimSum: make([]float64, e.nDims),
		dimCnt: make([]float64, e.nDims),
		attSum: make([]float64, e.nAtts),
		attCnt: make([]float64, e.nAtts),
	}
}

// leanEval computes one record's score, axis accumulators and normalized
// values into b without building any maps. The arithmetic — accumulation
// order, weighting, normalisation — is exactly assessProject's, so every
// number a query filters or sorts on is bit-identical to the materialized
// Assessment.
func (e *matrixEngine[R]) leanEval(r *R, b *leanBuf) {
	nm, nr := len(e.infos), e.nRecords
	if c, cached := e.col[r]; cached {
		for m := 0; m < nm; m++ {
			b.raw[m] = e.vals[m*nr+c]
			b.def[m] = e.present[m*nr+c]
		}
	} else {
		for m := range e.evals {
			b.raw[m], b.def[m] = e.evals[m](r, &e.di)
		}
	}
	for i := range b.dimSum {
		b.dimSum[i], b.dimCnt[i] = 0, 0
	}
	for i := range b.attSum {
		b.attSum[i], b.attCnt[i] = 0, 0
	}
	var wSum, wTotal float64
	for m := 0; m < nm; m++ {
		if !b.def[m] {
			b.norm[m] = 0
			continue
		}
		info := &e.infos[m]
		n := e.benchmarks[m].Normalize(b.raw[m], info.higherIsBetter)
		b.norm[m] = n
		w := e.weights[m]
		wSum += w * n
		wTotal += w
		b.dimSum[int(info.dimension)+e.dimOff] += n
		b.dimCnt[int(info.dimension)+e.dimOff]++
		b.attSum[int(info.attribute)+e.attOff] += n
		b.attCnt[int(info.attribute)+e.attOff]++
	}
	b.score = 0
	if wTotal > 0 {
		b.score = wSum / wTotal
	}
}

// leanCand is one match surviving the predicates: its sort key and the
// identifiers needed to rank and materialize it.
type leanCand struct {
	key float64
	id  int
	row int
}

// candWorse orders candidates for selection: a is worse than b when its
// key is lower, or equal with a higher ID (ranking is best-first, ties by
// ascending ID).
func candWorse(a, b leanCand) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id > b.id
}

// axisThreshold is a resolved per-axis predicate (dense index + bar).
type axisThreshold struct {
	idx int
	v   float64
}

// rankTopK executes a query over the engine: one lean pass evaluates
// scope, predicates and sort key per record straight from the cached
// matrix (no maps, no Assessment structs), a bounded heap keeps the best
// candidates when the query carries a selection bound, and only the final
// window is materialized — in parallel, with the requested projection.
func (e *matrixEngine[R]) rankTopK(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*QueryResult, error) {
	// Resolve predicate and sort targets against the catalogue up front.
	type measureThreshold struct {
		m int
		v float64
	}
	var minMeasure []measureThreshold
	if len(q.MinMeasure) > 0 {
		ids := make([]string, 0, len(q.MinMeasure))
		for id := range q.MinMeasure {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			m := e.measurePos(id)
			if m < 0 {
				return nil, fmt.Errorf("quality: unknown measure %q in query", id)
			}
			minMeasure = append(minMeasure, measureThreshold{m, q.MinMeasure[id]})
		}
	}
	var minDim, minAtt []axisThreshold
	unmatchable := false
	for d, v := range q.MinDimension {
		idx := int(d) + e.dimOff
		if idx < 0 || idx >= e.nDims {
			unmatchable = true // dimension absent from the catalogue
			continue
		}
		minDim = append(minDim, axisThreshold{idx, v})
	}
	for at, v := range q.MinAttribute {
		idx := int(at) + e.attOff
		if idx < 0 || idx >= e.nAtts {
			unmatchable = true
			continue
		}
		minAtt = append(minAtt, axisThreshold{idx, v})
	}
	sortDim, sortAtt := -1, -1
	switch q.Sort.By {
	case SortByScore:
	case SortByDimension:
		sortDim = int(q.Sort.Dimension) + e.dimOff
		if sortDim < 0 || sortDim >= e.nDims {
			return nil, fmt.Errorf("quality: sort dimension %s not in catalogue", q.Sort.Dimension)
		}
	case SortByAttribute:
		sortAtt = int(q.Sort.Attribute) + e.attOff
		if sortAtt < 0 || sortAtt >= e.nAtts {
			return nil, fmt.Errorf("quality: sort attribute %s not in catalogue", q.Sort.Attribute)
		}
	default:
		return nil, fmt.Errorf("quality: unknown sort key %d", q.Sort.By)
	}
	if unmatchable {
		return &QueryResult{Items: []*Assessment{}}, nil
	}

	offset := q.Offset
	if offset < 0 {
		offset = 0
	}
	// bound is how many ranked candidates the window can possibly need:
	// min(TopK, Offset+Limit) of the set values; 0 keeps every match.
	bound := 0
	if q.TopK > 0 {
		bound = q.TopK
	}
	if q.Limit > 0 {
		if w := offset + q.Limit; bound == 0 || w < bound {
			bound = w
		}
	}

	// Lean scan: predicates and sort keys straight off the matrix.
	buf := e.newLeanBuf()
	var cands []leanCand
	if bound > 0 {
		cands = make([]leanCand, 0, bound)
	}
	total := 0
scan:
	for i, r := range records {
		if keep != nil && !keep(r) {
			continue
		}
		e.leanEval(r, buf)
		if buf.score < q.MinScore {
			continue
		}
		for _, th := range minDim {
			if buf.dimCnt[th.idx] == 0 || buf.dimSum[th.idx]/buf.dimCnt[th.idx] < th.v {
				continue scan
			}
		}
		for _, th := range minAtt {
			if buf.attCnt[th.idx] == 0 || buf.attSum[th.idx]/buf.attCnt[th.idx] < th.v {
				continue scan
			}
		}
		for _, th := range minMeasure {
			if !buf.def[th.m] || buf.norm[th.m] < th.v {
				continue scan
			}
		}
		if q.MinSpamResistance > 0 {
			var sum float64
			n := 0
			for _, m := range spamIdx {
				if buf.def[m] {
					sum += buf.norm[m]
					n++
				}
			}
			if n == 0 || sum/float64(n) < q.MinSpamResistance {
				continue
			}
		}
		total++
		key := buf.score
		switch {
		case sortDim >= 0:
			key = 0
			if buf.dimCnt[sortDim] > 0 {
				key = buf.dimSum[sortDim] / buf.dimCnt[sortDim]
			}
		case sortAtt >= 0:
			key = 0
			if buf.attCnt[sortAtt] > 0 {
				key = buf.attSum[sortAtt] / buf.attCnt[sortAtt]
			}
		}
		id, _ := e.ident(r)
		c := leanCand{key: key, id: id, row: i}
		if bound == 0 {
			cands = append(cands, c)
			continue
		}
		// Bounded min-heap of the best `bound` candidates: the root is the
		// worst kept; a better candidate replaces it.
		if len(cands) < bound {
			cands = append(cands, c)
			siftUp(cands, len(cands)-1)
		} else if candWorse(cands[0], c) {
			cands[0] = c
			siftDown(cands, 0)
		}
	}

	// Rank the survivors best-first (k log k — tiny in the bounded case).
	sort.Slice(cands, func(i, j int) bool { return candWorse(cands[j], cands[i]) })

	// Pagination window.
	if offset >= len(cands) {
		cands = cands[:0]
	} else {
		cands = cands[offset:]
	}
	if q.Limit > 0 && len(cands) > q.Limit {
		cands = cands[:q.Limit]
	}

	// Materialize only the window, in parallel, with the projection.
	items := make([]*Assessment, len(cands))
	e.forEachChunk(len(cands), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			items[j] = e.assessProject(records[cands[j].row], q.Fields)
		}
	})
	return &QueryResult{Items: items, Total: total}, nil
}

// siftUp restores the min-heap property (candWorse order) after an append.
func siftUp(h []leanCand, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !candWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []leanCand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && candWorse(h[l], h[worst]) {
			worst = l
		}
		if r < len(h) && candWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// measurePos returns the catalogue position of a measure ID, or -1.
func (e *matrixEngine[R]) measurePos(id string) int {
	for m := range e.infos {
		if e.infos[m].id == id {
			return m
		}
	}
	return -1
}

// ParseDimension resolves a dimension by its String name ("accuracy",
// "time", ...) — the inverse used by HTTP query binding.
func ParseDimension(s string) (Dimension, bool) {
	for _, d := range Dimensions() {
		if d.String() == s {
			return d, true
		}
	}
	return 0, false
}

// ParseAttribute resolves an attribute by its String name ("relevance",
// "traffic", ...).
func ParseAttribute(s string) (Attribute, bool) {
	for _, a := range []Attribute{Relevance, Breadth, Traffic, Activity, Liveliness} {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}
