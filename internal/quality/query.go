package quality

// Query is the declarative read request of the quality-driven filtering
// stack — the paper's headline consumption pattern ("observers consume
// filtered, ranked slices, not whole corpora") as a first-class value. One
// Query scopes the candidate records, filters them by quality predicates,
// ranks the survivors by a chosen axis and returns a paginated window —
// and the same value is understood by every layer: the assessors execute
// it below ranking (bounded top-k selection over the cached measure matrix
// instead of sorting all N assessments), the mashup data services compile
// their parameters to it, and internal/apiserve binds it from HTTP query
// strings (DESIGN.md sections 7 and 8).
//
// The zero Query matches every record, ranks by overall score and returns
// everything — exactly the historical Rank behaviour.
//
// Pagination comes in two forms. Offset/Limit is the deprecated shim: each
// page re-selects the offset+limit best matches. Keyset pagination
// (Query.After, a Cursor naming the last row already consumed) is the
// scale-out path: page N+1 costs the same lean pass as page 1 because the
// scan skips — never ranks — everything at or before the cursor. Executed
// results report the resume cursor of the next page in QueryResult.Next.

import (
	"fmt"
	"math"
	"sort"
)

// Projection selects how much of each Assessment a query materializes.
type Projection int

const (
	// ProjectFull materializes the complete Assessment, including the
	// per-measure Raw and Normalized maps.
	ProjectFull Projection = iota
	// ProjectScores skips the per-measure maps and keeps only Score,
	// DimensionScores and AttributeScores — the serving-path projection
	// (roughly halves the allocation cost per returned item).
	ProjectScores
)

// SortBy names the ranking axis of a Query.
type SortBy int

const (
	// SortByScore ranks by the overall weighted score (the default).
	SortByScore SortBy = iota
	// SortByDimension ranks by one data-quality dimension's average.
	SortByDimension
	// SortByAttribute ranks by one Web 2.0 attribute's average.
	SortByAttribute
)

// SortKey is the ranking axis: the overall score, one dimension or one
// attribute. Ranking is always best-first with ties broken by ascending ID
// (the historical Rank order); records for which the axis is undefined
// sort last.
type SortKey struct {
	By        SortBy
	Dimension Dimension // read when By == SortByDimension
	Attribute Attribute // read when By == SortByAttribute
}

// Cursor is a keyset-pagination bound: the ranked position of the last row
// a walk has consumed. Key is that row's sort-axis value and ID its record
// ID — together they name one position in the strict (key desc, ID asc)
// ranking order, so "everything after the cursor" is well defined even if
// rows enter or leave the ranking between pages. Pos is the number of rows
// consumed before the resumed page; it budgets TopK across pages and is
// advisory (resume correctness comes from Key and ID alone).
//
// Cursors are produced by query execution (QueryResult.Next) and consumed
// via Query.After; the HTTP layer transports them as opaque strings
// (internal/apiserve, DESIGN.md section 8).
type Cursor struct {
	Key float64
	ID  int
	Pos int
}

// Query is a composable read request over an assessed corpus. Fields
// combine with AND semantics; zero values mean "no restriction". Build one
// literally or through the fluent builder in the root informer package.
type Query struct {
	// IDs restricts candidates to the given record IDs (a search result
	// set, a crawl frontier, an explicit watchlist).
	IDs []int
	// Categories restricts candidates to records active in at least one of
	// the given content categories: sources with a discussion in a
	// category, contributors with a comment in one.
	Categories []string
	// Kinds restricts source candidates by source kind ("blog", "forum",
	// "review-site", "social-network"). Source queries only.
	Kinds []string

	// MinScore keeps records whose overall weighted score clears the bar.
	MinScore float64
	// MinDimension keeps records whose per-dimension average clears the
	// bar; records lacking the dimension entirely never match.
	MinDimension map[Dimension]float64
	// MinAttribute likewise thresholds per-attribute averages.
	MinAttribute map[Attribute]float64
	// MinMeasure thresholds individual normalized measure values by
	// catalogue ID; unknown IDs are an error.
	MinMeasure map[string]float64
	// MinSpamResistance keeps contributors whose relative reaction signal
	// (the per-contribution reaction rates of Section 3.2, the quantity
	// that is near zero for spammers and bots regardless of their volume)
	// clears the bar. Contributor queries only.
	MinSpamResistance float64

	// Sort is the ranking axis (zero value: overall score, best first).
	Sort SortKey
	// TopK bounds the ranked selection to the k best matches before
	// pagination (0 = unbounded). Execution with a bound never sorts the
	// full corpus: matches stream through a bounded heap and only the
	// winners are materialized.
	TopK int
	// Offset and Limit window the ranked matches for pagination.
	Offset, Limit int
	// After resumes a keyset-paginated walk strictly after the cursor's
	// ranked position (see Cursor). Mutually exclusive with Offset.
	After *Cursor
	// Fields selects the materialization (ProjectFull or ProjectScores).
	Fields Projection
}

// QueryResult is one executed Query.
type QueryResult struct {
	// Items is the requested window of the ranked matches, best first.
	Items []*Assessment
	// Total counts every record matching the scope and predicates, before
	// top-k selection and pagination — the pagination envelope's total.
	// The cursor never narrows it: every page of one walk reports the same
	// Total.
	Total int
	// Start is the rank index of the window's first item: the clamped
	// Offset, or the cursor's Pos on a resumed page.
	Start int
	// Next resumes the walk on the following page (set it as the next
	// Query's After). Nil when the walk is exhausted — the window reached
	// Total, the TopK bound, or came back empty.
	Next *Cursor
}

// Query executes q over the records: scope and predicates filter below the
// ranking, the survivors are ranked by q.Sort, and only the requested
// window is materialized. With a selection bound (TopK and/or Limit) the
// matches stream through a bounded heap — O(N log k) with O(k)
// materializations — instead of assessing and sorting the whole corpus.
// Results are bit-identical to filtering and slicing Rank's output.
func (a *SourceAssessor) Query(records []*SourceRecord, q Query) (*QueryResult, error) {
	if q.MinSpamResistance > 0 {
		return nil, fmt.Errorf("quality: MinSpamResistance applies to contributor queries only")
	}
	return a.engine.rankTopK(records, q, sourceKeep(q), nil)
}

// Spine evaluates q's scope, predicates and sort over every record and
// returns the full ranked candidate list — the standing-filter evaluation
// of the filter-placement idea: rank once per assessment round, then fan
// any number of windows (offset pages, cursor pages, watch diffs) out of
// it via Window at O(window) cost each. TopK, Offset, Limit, After and
// Fields are ignored here; they apply at Window time.
func (a *SourceAssessor) Spine(records []*SourceRecord, q Query) (*Spine, error) {
	if q.MinSpamResistance > 0 {
		return nil, fmt.Errorf("quality: MinSpamResistance applies to contributor queries only")
	}
	return a.engine.spine(records, q, sourceKeep(q), nil)
}

// Window slices one page out of a previously built Spine and materializes
// it under q's TopK/Offset/Limit/After/Fields. The spine must have been
// built by this assessor over the same records with the same scope,
// predicates and sort; the result is then bit-identical to Query(records,
// q) at a fraction of the cost.
func (a *SourceAssessor) Window(records []*SourceRecord, sp *Spine, q Query) (*QueryResult, error) {
	return a.engine.window(records, sp, q)
}

// RankTopK returns the k best records, best first — shorthand for a Query
// with only TopK set.
func (a *SourceAssessor) RankTopK(records []*SourceRecord, k int) []*Assessment {
	res, err := a.Query(records, Query{TopK: k})
	if err != nil {
		panic(err) // unreachable: a bare top-k query cannot be invalid
	}
	return res.Items
}

// Query executes q over contributor records; see SourceAssessor.Query.
// Contributor queries additionally understand MinSpamResistance; Kinds is
// rejected (contributors have no source kind).
func (a *ContributorAssessor) Query(records []*ContributorRecord, q Query) (*QueryResult, error) {
	if len(q.Kinds) > 0 {
		return nil, fmt.Errorf("quality: Kinds applies to source queries only")
	}
	return a.engine.rankTopK(records, q, contributorKeep(q), a.spamIdx(q))
}

// Spine ranks every contributor matching q's scope and predicates; see
// SourceAssessor.Spine.
func (a *ContributorAssessor) Spine(records []*ContributorRecord, q Query) (*Spine, error) {
	if len(q.Kinds) > 0 {
		return nil, fmt.Errorf("quality: Kinds applies to source queries only")
	}
	return a.engine.spine(records, q, contributorKeep(q), a.spamIdx(q))
}

// Window slices one page out of a contributor Spine; see
// SourceAssessor.Window.
func (a *ContributorAssessor) Window(records []*ContributorRecord, sp *Spine, q Query) (*QueryResult, error) {
	return a.engine.window(records, sp, q)
}

// spamIdx resolves the relative-reaction measure positions backing the
// MinSpamResistance predicate, or nil when the predicate is unset.
func (a *ContributorAssessor) spamIdx(q Query) []int {
	if q.MinSpamResistance <= 0 {
		return nil
	}
	var idx []int
	for _, id := range relativeReactionMeasures {
		if m := a.engine.measurePos(id); m >= 0 {
			idx = append(idx, m)
		}
	}
	return idx
}

// RankTopK returns the k best contributors, best first.
func (a *ContributorAssessor) RankTopK(records []*ContributorRecord, k int) []*Assessment {
	res, err := a.Query(records, Query{TopK: k})
	if err != nil {
		panic(err) // unreachable: a bare top-k query cannot be invalid
	}
	return res.Items
}

// sourceKeep compiles the source-scope fields into a record predicate, or
// nil when the query is unscoped.
func sourceKeep(q Query) func(*SourceRecord) bool {
	if len(q.IDs) == 0 && len(q.Categories) == 0 && len(q.Kinds) == 0 {
		return nil
	}
	idSet := intSet(q.IDs)
	kindSet := stringSet(q.Kinds)
	catSet := stringSet(q.Categories)
	return func(r *SourceRecord) bool {
		if idSet != nil && !idSet[r.ID] {
			return false
		}
		if kindSet != nil && !kindSet[r.Kind] {
			return false
		}
		if catSet != nil {
			found := false
			for i := range r.Discussions {
				if catSet[r.Discussions[i].Category] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
}

// contributorKeep compiles the contributor-scope fields into a predicate.
func contributorKeep(q Query) func(*ContributorRecord) bool {
	if len(q.IDs) == 0 && len(q.Categories) == 0 {
		return nil
	}
	idSet := intSet(q.IDs)
	catSet := stringSet(q.Categories)
	return func(r *ContributorRecord) bool {
		if idSet != nil && !idSet[r.ID] {
			return false
		}
		if catSet != nil {
			found := false
			for cat, n := range r.CommentsByCategory {
				if n > 0 && catSet[cat] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
}

func intSet(xs []int) map[int]bool {
	if len(xs) == 0 {
		return nil
	}
	s := make(map[int]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

func stringSet(xs []string) map[string]bool {
	if len(xs) == 0 {
		return nil
	}
	s := make(map[string]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// leanBuf holds the reusable scratch of the lean (map-free) evaluation of
// one record during a query scan. Reusing one buffer across the scan keeps
// the filter-and-rank pass allocation-free.
type leanBuf struct {
	raw            []float64
	def            []bool
	norm           []float64
	dimSum, dimCnt []float64
	attSum, attCnt []float64
	score          float64
}

func (e *matrixEngine[R]) newLeanBuf() *leanBuf {
	nm := len(e.infos)
	return &leanBuf{
		raw:    make([]float64, nm),
		def:    make([]bool, nm),
		norm:   make([]float64, nm),
		dimSum: make([]float64, e.nDims),
		dimCnt: make([]float64, e.nDims),
		attSum: make([]float64, e.nAtts),
		attCnt: make([]float64, e.nAtts),
	}
}

// leanEval computes one record's score, axis accumulators and normalized
// values into b without building any maps. The arithmetic — accumulation
// order, weighting, normalisation — is exactly assessProject's, so every
// number a query filters or sorts on is bit-identical to the materialized
// Assessment.
func (e *matrixEngine[R]) leanEval(r *R, b *leanBuf) {
	nm := len(e.infos)
	if c, cached := e.col[r]; cached {
		for m := 0; m < nm; m++ {
			b.raw[m] = e.vals[m][c]
			b.def[m] = e.present[m][c]
		}
	} else {
		for m := range e.evals {
			b.raw[m], b.def[m] = e.evals[m](r, &e.di)
		}
	}
	for i := range b.dimSum {
		b.dimSum[i], b.dimCnt[i] = 0, 0
	}
	for i := range b.attSum {
		b.attSum[i], b.attCnt[i] = 0, 0
	}
	var wSum, wTotal float64
	for m := 0; m < nm; m++ {
		if !b.def[m] {
			b.norm[m] = 0
			continue
		}
		info := &e.infos[m]
		n := e.benchmarks[m].Normalize(b.raw[m], info.higherIsBetter)
		b.norm[m] = n
		w := e.weights[m]
		wSum += w * n
		wTotal += w
		b.dimSum[int(info.dimension)+e.dimOff] += n
		b.dimCnt[int(info.dimension)+e.dimOff]++
		b.attSum[int(info.attribute)+e.attOff] += n
		b.attCnt[int(info.attribute)+e.attOff]++
	}
	b.score = 0
	if wTotal > 0 {
		b.score = wSum / wTotal
	}
}

// leanCand is one match surviving the predicates: its sort key and the
// identifiers needed to rank and materialize it.
type leanCand struct {
	key float64
	id  int
	row int
}

// candWorse orders candidates for selection: a is worse than b when its
// key is lower, or equal with a higher ID (ranking is best-first, ties by
// ascending ID).
func candWorse(a, b leanCand) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.id > b.id
}

// axisThreshold is a resolved per-axis predicate (dense index + bar).
type axisThreshold struct {
	idx int
	v   float64
}

// measureThreshold is a resolved per-measure predicate (catalogue position
// + bar).
type measureThreshold struct {
	m int
	v float64
}

// resolvedQuery holds a Query's predicate and sort targets resolved against
// the engine's catalogue — the once-per-execution part of the lean scan.
type resolvedQuery struct {
	minMeasure       []measureThreshold
	minDim, minAtt   []axisThreshold
	sortDim, sortAtt int
	// unmatchable flags a per-axis predicate on an axis absent from the
	// catalogue: no record can ever clear it.
	unmatchable bool
}

// resolveQuery resolves predicate and sort targets against the catalogue.
func (e *matrixEngine[R]) resolveQuery(q Query) (*resolvedQuery, error) {
	rq := &resolvedQuery{sortDim: -1, sortAtt: -1}
	if len(q.MinMeasure) > 0 {
		ids := make([]string, 0, len(q.MinMeasure))
		for id := range q.MinMeasure {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			m := e.measurePos(id)
			if m < 0 {
				return nil, fmt.Errorf("quality: unknown measure %q in query", id)
			}
			rq.minMeasure = append(rq.minMeasure, measureThreshold{m, q.MinMeasure[id]})
		}
	}
	for d, v := range q.MinDimension {
		idx := int(d) + e.dimOff
		if idx < 0 || idx >= e.nDims {
			rq.unmatchable = true // dimension absent from the catalogue
			continue
		}
		rq.minDim = append(rq.minDim, axisThreshold{idx, v})
	}
	sort.Slice(rq.minDim, func(i, j int) bool { return rq.minDim[i].idx < rq.minDim[j].idx })
	for at, v := range q.MinAttribute {
		idx := int(at) + e.attOff
		if idx < 0 || idx >= e.nAtts {
			rq.unmatchable = true
			continue
		}
		rq.minAtt = append(rq.minAtt, axisThreshold{idx, v})
	}
	sort.Slice(rq.minAtt, func(i, j int) bool { return rq.minAtt[i].idx < rq.minAtt[j].idx })
	switch q.Sort.By {
	case SortByScore:
	case SortByDimension:
		rq.sortDim = int(q.Sort.Dimension) + e.dimOff
		if rq.sortDim < 0 || rq.sortDim >= e.nDims {
			return nil, fmt.Errorf("quality: sort dimension %s not in catalogue", q.Sort.Dimension)
		}
	case SortByAttribute:
		rq.sortAtt = int(q.Sort.Attribute) + e.attOff
		if rq.sortAtt < 0 || rq.sortAtt >= e.nAtts {
			return nil, fmt.Errorf("quality: sort attribute %s not in catalogue", q.Sort.Attribute)
		}
	default:
		return nil, fmt.Errorf("quality: unknown sort key %d", q.Sort.By)
	}
	if q.After != nil && (math.IsNaN(q.After.Key) || q.After.ID < 0) {
		return nil, fmt.Errorf("quality: invalid resume cursor")
	}
	if q.After != nil && q.Offset > 0 {
		return nil, fmt.Errorf("quality: cursor and offset pagination are mutually exclusive")
	}
	return rq, nil
}

// evalCand evaluates one record against the resolved scope and predicates
// using buf as scratch. When the record matches, its ranked candidate —
// sort key, record ID, row index — is returned with ok true. This is the
// per-record body of every scan, repair and re-evaluation path, so each of
// them filters and ranks with bit-identical arithmetic.
func (e *matrixEngine[R]) evalCand(r *R, row int, q Query, rq *resolvedQuery, keep func(*R) bool, spamIdx []int, buf *leanBuf) (leanCand, bool) {
	if keep != nil && !keep(r) {
		return leanCand{}, false
	}
	e.leanEval(r, buf)
	if buf.score < q.MinScore {
		return leanCand{}, false
	}
	for _, th := range rq.minDim {
		if buf.dimCnt[th.idx] == 0 || buf.dimSum[th.idx]/buf.dimCnt[th.idx] < th.v {
			return leanCand{}, false
		}
	}
	for _, th := range rq.minAtt {
		if buf.attCnt[th.idx] == 0 || buf.attSum[th.idx]/buf.attCnt[th.idx] < th.v {
			return leanCand{}, false
		}
	}
	for _, th := range rq.minMeasure {
		if !buf.def[th.m] || buf.norm[th.m] < th.v {
			return leanCand{}, false
		}
	}
	if q.MinSpamResistance > 0 {
		var sum float64
		n := 0
		for _, m := range spamIdx {
			if buf.def[m] {
				sum += buf.norm[m]
				n++
			}
		}
		if n == 0 || sum/float64(n) < q.MinSpamResistance {
			return leanCand{}, false
		}
	}
	key := buf.score
	switch {
	case rq.sortDim >= 0:
		key = 0
		if buf.dimCnt[rq.sortDim] > 0 {
			key = buf.dimSum[rq.sortDim] / buf.dimCnt[rq.sortDim]
		}
	case rq.sortAtt >= 0:
		key = 0
		if buf.attCnt[rq.sortAtt] > 0 {
			key = buf.attSum[rq.sortAtt] / buf.attCnt[rq.sortAtt]
		}
	}
	id, _ := e.ident(r)
	return leanCand{key: key, id: id, row: row}, true
}

// scanMatches is the lean pass shared by rankTopK and spine: predicates
// and sort keys straight off the cached matrix, no maps, no Assessment
// structs. Every match counts toward total; when collect is set, the
// candidates ranking strictly after the after-bound are kept — all of
// them when bound == 0, the best `bound` through a min-heap otherwise.
// rowOff shifts stored row indices: a shard engine scanning its local
// record slice passes its global range start so candidates carry global
// rows and merge directly into the corpus-wide ranking.
func (e *matrixEngine[R]) scanMatches(records []*R, rowOff int, q Query, rq *resolvedQuery, keep func(*R) bool, spamIdx []int, after *leanCand, bound int, collect bool) ([]leanCand, int) {
	buf := e.newLeanBuf()
	var cands []leanCand
	if collect && bound > 0 {
		capHint := bound
		if capHint > len(records) {
			capHint = len(records) // never keep more candidates than records
		}
		cands = make([]leanCand, 0, capHint)
	}
	total := 0
	for i, r := range records {
		c, ok := e.evalCand(r, rowOff+i, q, rq, keep, spamIdx, buf)
		if !ok {
			continue
		}
		total++
		if !collect {
			continue
		}
		if after != nil && !candWorse(c, *after) {
			// At or before the resume cursor: already consumed by an
			// earlier page. Counted in total, never ranked.
			continue
		}
		if bound == 0 {
			cands = append(cands, c)
			continue
		}
		// Bounded min-heap of the best `bound` candidates: the root is the
		// worst kept; a better candidate replaces it.
		if len(cands) < bound {
			cands = append(cands, c)
			siftUp(cands, len(cands)-1)
		} else if candWorse(cands[0], c) {
			cands[0] = c
			siftDown(cands, 0)
		}
	}
	return cands, total
}

// scanPlan is the resolved pagination prelude of one rankTopK execution:
// how the scan bounds its candidate collection and how the collected
// ranking is clipped into the requested window afterwards. Deriving it
// once — and sharing the derivation between the single-matrix engine and
// the sharded scatter-gather plan — is what keeps the two plans'
// windowing arithmetic provably identical.
type scanPlan struct {
	// start is the rank index of the window's first item: the clamped
	// offset, or the cursor's Pos on a resumed page.
	start int
	// offset is the clamped q.Offset (0 on the cursor path).
	offset int
	// collect is false when the TopK budget is already exhausted: the scan
	// only counts matches.
	collect bool
	// bound caps how many ranked candidates the window can possibly need
	// (0 = keep all matches).
	bound int
	// after is the cursor's ranked position, nil for offset pagination.
	after *leanCand
}

// planScan derives the pagination prelude from a resolved query.
func planScan(q Query) scanPlan {
	p := scanPlan{collect: true}
	if p.offset = q.Offset; p.offset < 0 {
		p.offset = 0
	}
	// start is the rank index of the window's first item; budget the
	// remaining TopK allowance (-1 = unbounded); after the cursor bound.
	p.start = p.offset
	budget := -1
	if q.After != nil {
		if p.start = q.After.Pos; p.start < 0 {
			p.start = 0
		}
		p.after = &leanCand{key: q.After.Key, id: q.After.ID}
	}
	if q.TopK > 0 {
		if budget = q.TopK - p.start; budget < 0 {
			budget = 0
		}
		if q.After == nil {
			budget = q.TopK // the offset path slices the prefix off after the scan
		}
	}
	p.collect = budget != 0
	// bound is how many ranked candidates the window can possibly need.
	if budget > 0 {
		p.bound = budget
	}
	if q.Limit > 0 {
		w := q.Limit
		if q.After == nil {
			if w > math.MaxInt-p.offset {
				w = math.MaxInt // offset+limit would overflow: effectively unbounded
			} else {
				w += p.offset
			}
		}
		if p.bound == 0 || w < p.bound {
			p.bound = w
		}
	}
	return p
}

// clipWindow cuts the ranked, best-first candidate list down to the
// requested page: the cursor path already cut its prefix during the scan,
// the offset path slices it here; Limit bounds the page width.
func clipWindow(cands []leanCand, q Query, p scanPlan) []leanCand {
	if q.After == nil {
		if p.offset >= len(cands) {
			cands = cands[:0]
		} else {
			cands = cands[p.offset:]
		}
	}
	if q.Limit > 0 && len(cands) > q.Limit {
		cands = cands[:q.Limit]
	}
	return cands
}

// rankTopK executes a query over the engine: one lean pass evaluates
// scope, predicates and sort key per record straight from the cached
// matrix, a bounded heap keeps the best candidates when the query carries
// a selection bound, and only the final window is materialized — in
// parallel, with the requested projection. A resume cursor (q.After) makes
// the pass skip everything at or before the cursor's ranked position, so a
// keyset-paginated page N+1 costs exactly one lean pass plus one page of
// materializations, never the prefix.
func (e *matrixEngine[R]) rankTopK(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*QueryResult, error) {
	rq, err := e.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if rq.unmatchable {
		return &QueryResult{Items: []*Assessment{}}, nil
	}
	p := planScan(q)
	cands, total := e.scanMatches(records, 0, q, rq, keep, spamIdx, p.after, p.bound, p.collect)

	// Rank the survivors best-first (k log k — tiny in the bounded case).
	sort.Slice(cands, func(i, j int) bool { return candWorse(cands[j], cands[i]) })

	cands = clipWindow(cands, q, p)
	return e.finishWindow(records, cands, p.start, total, q), nil
}

// Spine is the fully ranked candidate list of one (scope, predicates,
// sort) evaluation over a record set: every match, best first, before any
// TopK/pagination windowing. Build it once per assessment round per
// standing query and slice windows out of it with Window.
type Spine struct {
	cands []leanCand
	total int
	// parts and totals are the per-shard decomposition of a spine built by
	// the sharded engine: parts[s] holds shard s's ranked candidates
	// (cands is their k-way merge) and totals[s] its match count. The next
	// assessment round carries clean shards' parts forward untouched and
	// repairs only the dirty ones. Nil on single-matrix spines.
	parts  [][]leanCand
	totals []int
}

// Total counts the matches in the spine.
func (sp *Spine) Total() int { return sp.total }

// spine runs the lean pass unbounded and fully ranks the matches.
func (e *matrixEngine[R]) spine(records []*R, q Query, keep func(*R) bool, spamIdx []int) (*Spine, error) {
	rq, err := e.resolveQuery(q)
	if err != nil {
		return nil, err
	}
	if rq.unmatchable {
		return &Spine{}, nil
	}
	e.counters.scans.Add(1)
	cands, total := e.scanMatches(records, 0, q, rq, keep, spamIdx, nil, 0, true)
	sort.Slice(cands, func(i, j int) bool { return candWorse(cands[j], cands[i]) })
	return &Spine{cands: cands, total: total}, nil
}

// repairSpine derives the current round's spine for q from the previous
// round's instead of re-scanning the corpus — the LastDelta carry-forward:
// the rows the engine's producing update dirtied are dropped from the
// carried ranking, re-evaluated against the current matrix, and the
// survivors re-inserted at their ranked positions, at O(prev + dirty·log)
// instead of O(corpus) cost. It refuses (ok false) whenever a carried key
// could be stale: a from-scratch engine, a tick that moved the observation
// instant (every time-sensitive value shifted), or bitwise-moved
// benchmarks (every normalized value shifted). prev must be a spine for
// the same scope/predicates/sort built against this engine's predecessor;
// records must be the current corpus in construction order. The result is
// bit-identical to a fresh spine scan — pinned by the repaired-vs-fresh
// equivalence test.
func (e *matrixEngine[R]) repairSpine(records []*R, prev *Spine, q Query, keep func(*R) bool, spamIdx []int) (*Spine, bool) {
	if prev == nil || e.fresh || e.lastEpochMoved || e.benchChanged {
		return nil, false
	}
	rq, err := e.resolveQuery(q)
	if err != nil || rq.unmatchable {
		return nil, false
	}
	e.counters.repairs.Add(1)
	cands := e.repairCands(records, 0, e.lastDirty, prev.cands, q, rq, keep, spamIdx)
	return &Spine{cands: cands, total: len(cands)}, true
}

// repairCands is the shared core of spine repair: drop the dirty rows'
// carried candidates, re-evaluate the dirty records against the current
// matrix, and re-insert the survivors at their ranked positions. rowOff is
// the engine's global record-range start (0 for the single-matrix engine,
// the shard's range start for a shard member); dirtyLocal indexes records
// relative to it, while prev, records and the result all use global rows.
func (e *matrixEngine[R]) repairCands(records []*R, rowOff int, dirtyLocal []int, prev []leanCand, q Query, rq *resolvedQuery, keep func(*R) bool, spamIdx []int) []leanCand {
	dirty := make(map[int]bool, len(dirtyLocal))
	for _, c := range dirtyLocal {
		dirty[rowOff+c] = true
	}
	// Carry every clean row's candidate; dirty rows re-qualify from scratch.
	cands := make([]leanCand, 0, len(prev)+len(dirtyLocal))
	for _, c := range prev {
		if !dirty[c.row] {
			cands = append(cands, c)
		}
	}
	buf := e.newLeanBuf()
	for _, c0 := range dirtyLocal {
		row := rowOff + c0
		if row < 0 || row >= len(records) {
			continue
		}
		c, ok := e.evalCand(records[row], row, q, rq, keep, spamIdx, buf)
		if !ok {
			continue
		}
		i := sort.Search(len(cands), func(i int) bool { return candWorse(cands[i], c) })
		cands = append(cands, leanCand{})
		copy(cands[i+1:], cands[i:])
		cands[i] = c
	}
	return cands
}

// window slices q's page out of a ranked spine: offset indexes directly,
// a cursor binary-searches its strict ranked position, and only the page
// is materialized. Results are bit-identical to rankTopK over the same
// records and query.
func (e *matrixEngine[R]) window(records []*R, sp *Spine, q Query) (*QueryResult, error) {
	cands, start, err := sliceSpineWindow(sp, q)
	if err != nil {
		return nil, err
	}
	return e.finishWindow(records, cands, start, sp.total, q), nil
}

// sliceSpineWindow locates q's page inside a ranked spine — shared,
// engine-independent arithmetic: offset indexes directly, a cursor
// binary-searches its strict ranked position, TopK and Limit bound the
// page end.
func sliceSpineWindow(sp *Spine, q Query) (cands []leanCand, start int, err error) {
	if q.After != nil && (math.IsNaN(q.After.Key) || q.After.ID < 0) {
		return nil, 0, fmt.Errorf("quality: invalid resume cursor")
	}
	if q.After != nil && q.Offset > 0 {
		return nil, 0, fmt.Errorf("quality: cursor and offset pagination are mutually exclusive")
	}
	n := len(sp.cands)
	var idx int
	if q.After != nil {
		a := leanCand{key: q.After.Key, id: q.After.ID}
		idx = sort.Search(n, func(i int) bool { return candWorse(sp.cands[i], a) })
		if start = q.After.Pos; start < 0 {
			start = 0
		}
	} else {
		if start = q.Offset; start < 0 {
			start = 0
		}
		if idx = start; idx > n {
			idx = n
		}
	}
	// Bound the page end by the TopK budget and the Limit, comparing page
	// widths (end-idx, at most n) rather than absolute indices so huge
	// TopK/Limit values cannot overflow idx+width.
	end := n
	if q.TopK > 0 {
		budget := q.TopK - start
		if budget < 0 {
			budget = 0
		}
		if budget < end-idx {
			end = idx + budget
		}
	}
	if q.Limit > 0 && q.Limit < end-idx {
		end = idx + q.Limit
	}
	if idx > end {
		idx = end
	}
	return sp.cands[idx:end], start, nil
}

// finishWindow materializes the windowed candidates — in parallel, with
// the requested projection — and derives the resume cursor of the next
// page.
func (e *matrixEngine[R]) finishWindow(records []*R, cands []leanCand, start, total int, q Query) *QueryResult {
	items := make([]*Assessment, len(cands))
	e.forEachChunk(len(cands), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			items[j] = e.assessProject(records[cands[j].row], q.Fields)
		}
	})
	return windowResult(items, cands, start, total, q)
}

// windowResult assembles the QueryResult envelope around a materialized
// page and derives the next page's resume cursor — shared by the
// single-matrix and sharded engines so both emit byte-identical envelopes.
func windowResult(items []*Assessment, cands []leanCand, start, total int, q Query) *QueryResult {
	effTotal := total
	if q.TopK > 0 && q.TopK < effTotal {
		effTotal = q.TopK
	}
	consumed := start + len(items)
	if consumed < start {
		consumed = math.MaxInt // absurd cursor Pos: saturate instead of wrapping
	}
	var next *Cursor
	if len(items) > 0 && consumed < effTotal {
		last := cands[len(cands)-1]
		next = &Cursor{Key: last.key, ID: last.id, Pos: consumed}
	}
	return &QueryResult{Items: items, Total: total, Start: start, Next: next}
}

// siftUp restores the min-heap property (candWorse order) after an append.
func siftUp(h []leanCand, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !candWorse(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []leanCand, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h) && candWorse(h[l], h[worst]) {
			worst = l
		}
		if r < len(h) && candWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// measurePos returns the catalogue position of a measure ID, or -1.
func (e *matrixEngine[R]) measurePos(id string) int {
	for m := range e.infos {
		if e.infos[m].id == id {
			return m
		}
	}
	return -1
}

// ParseDimension resolves a dimension by its String name ("accuracy",
// "time", ...) — the inverse used by HTTP query binding.
func ParseDimension(s string) (Dimension, bool) {
	for _, d := range Dimensions() {
		if d.String() == s {
			return d, true
		}
	}
	return 0, false
}

// ParseAttribute resolves an attribute by its String name ("relevance",
// "traffic", ...).
func ParseAttribute(s string) (Attribute, bool) {
	for _, a := range []Attribute{Relevance, Breadth, Traffic, Activity, Liveliness} {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}
