package sentiment

import (
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// declineFixture builds a stream whose "place" sentiment deteriorates week
// by week while "pulse" stays flat-positive.
func declineFixture() []TimedText {
	g := textgen.New(55)
	start := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	var items []TimedText
	for week := 0; week < 8; week++ {
		ts := start.AddDate(0, 0, 7*week)
		// place: positive share decays with the week.
		for i := 0; i < 30; i++ {
			pol := 1
			if i < week*4 { // growing negative share
				pol = -1
			}
			items = append(items, TimedText{
				Category: "place",
				Text:     g.Comment("place", pol, 2),
				Posted:   ts.Add(time.Duration(i) * time.Hour),
			})
		}
		// pulse: steady positive.
		for i := 0; i < 20; i++ {
			items = append(items, TimedText{
				Category: "pulse",
				Text:     g.Comment("pulse", 1, 2),
				Posted:   ts.Add(time.Duration(i) * time.Hour),
			})
		}
	}
	return items
}

func TestTrendsDetectDecline(t *testing.T) {
	a := NewAnalyzer()
	trends := a.Trends(declineFixture(), 7*24*time.Hour)

	place, ok := trends["place"]
	if !ok {
		t.Fatal("no place trend")
	}
	if len(place.Points) != 8 {
		t.Fatalf("place buckets = %d, want 8", len(place.Points))
	}
	if place.Slope >= 0 {
		t.Errorf("place slope = %v, want negative", place.Slope)
	}
	if !place.Alert(0.05) {
		t.Errorf("deteriorating category must alert (slope %v, p %v)", place.Slope, place.SlopePValue)
	}

	pulse := trends["pulse"]
	if pulse.Alert(0.05) {
		t.Errorf("flat positive category must not alert (slope %v, p %v)", pulse.Slope, pulse.SlopePValue)
	}
	// First bucket of place is clearly better than the last.
	if place.Points[0].Mean <= place.Points[len(place.Points)-1].Mean {
		t.Error("bucket means do not reflect the decline")
	}
}

func TestTrendsBucketAssignment(t *testing.T) {
	a := NewAnalyzer()
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	items := []TimedText{
		{Category: "x", Text: "wonderful", Posted: start},
		{Category: "x", Text: "terrible", Posted: start.AddDate(0, 0, 8)}, // next weekly bucket
	}
	trends := a.Trends(items, 7*24*time.Hour)
	x := trends["x"]
	if len(x.Points) != 2 {
		t.Fatalf("buckets = %d, want 2", len(x.Points))
	}
	if !(x.Points[0].Mean > 0 && x.Points[1].Mean < 0) {
		t.Errorf("bucket means wrong: %+v", x.Points)
	}
	// Two buckets: not enough for a slope; no alert either way.
	if x.SlopePValue != 1 {
		t.Errorf("2-bucket p-value = %v, want 1", x.SlopePValue)
	}
	if x.Alert(0.05) {
		t.Error("insufficient evidence must not alert")
	}
}

func TestTrendsZeroTimestampSkipped(t *testing.T) {
	a := NewAnalyzer()
	items := []TimedText{
		{Category: "x", Text: "wonderful"}, // zero time: skipped
		{Category: "x", Text: "lovely", Posted: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)},
	}
	trends := a.Trends(items, 0) // zero bucket width defaults to a week
	if got := trends["x"]; len(got.Points) != 1 || got.Points[0].N != 1 {
		t.Errorf("trend = %+v", got)
	}
}

func TestTrendAlertDefaults(t *testing.T) {
	tr := Trend{Slope: -0.2, SlopePValue: 0.01}
	if !tr.Alert(0) {
		t.Error("alpha 0 should default to 0.05")
	}
	if (Trend{Slope: 0.2, SlopePValue: 0.001}).Alert(0.05) {
		t.Error("improving trend must not alert")
	}
}
