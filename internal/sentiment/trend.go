package sentiment

import (
	"sort"
	"time"

	"github.com/informing-observers/informer/internal/stats"
)

// TimedText is a text with its category and timestamp, the input to trend
// analysis.
type TimedText struct {
	Category string
	Text     string
	Posted   time.Time
}

// TrendPoint is one time bucket of a sentiment series.
type TrendPoint struct {
	Start time.Time
	Mean  float64
	N     int
}

// Trend is the sentiment trajectory of one category: bucketed means plus a
// fitted linear slope. It implements the early-warning analysis Section 5
// motivates — "catch hot trends or stop negative sentiment before a
// large-scale diffusion of the users' opinion".
type Trend struct {
	Category string
	Points   []TrendPoint
	// Slope is the change of mean sentiment per bucket, from an OLS fit;
	// SlopePValue is its two-sided significance.
	Slope       float64
	SlopePValue float64
}

// Alert reports whether the trend calls for attention: a significant
// (p < alpha) negative slope — sentiment deteriorating.
func (t Trend) Alert(alpha float64) bool {
	if alpha <= 0 {
		alpha = 0.05
	}
	return t.Slope < 0 && t.SlopePValue < alpha
}

// Trends buckets the texts per category into windows of the given width
// and fits a linear trend per category. Categories with fewer than three
// non-empty buckets get a zero slope with p-value 1 (no evidence either
// way). Buckets are aligned to the earliest timestamp.
func (a *Analyzer) Trends(items []TimedText, bucket time.Duration) map[string]Trend {
	if bucket <= 0 {
		bucket = 7 * 24 * time.Hour
	}
	var origin time.Time
	for _, it := range items {
		if origin.IsZero() || it.Posted.Before(origin) {
			origin = it.Posted
		}
	}
	type agg struct {
		sum float64
		n   int
	}
	byCat := map[string]map[int]*agg{}
	for _, it := range items {
		if it.Posted.IsZero() {
			continue
		}
		b := int(it.Posted.Sub(origin) / bucket)
		m := byCat[it.Category]
		if m == nil {
			m = map[int]*agg{}
			byCat[it.Category] = m
		}
		cell := m[b]
		if cell == nil {
			cell = &agg{}
			m[b] = cell
		}
		cell.sum += a.Score(it.Text).Value
		cell.n++
	}

	out := map[string]Trend{}
	for cat, buckets := range byCat {
		idxs := make([]int, 0, len(buckets))
		for b := range buckets {
			idxs = append(idxs, b)
		}
		sort.Ints(idxs)
		tr := Trend{Category: cat, SlopePValue: 1}
		var xs, ys []float64
		for _, b := range idxs {
			cell := buckets[b]
			tr.Points = append(tr.Points, TrendPoint{
				Start: origin.Add(time.Duration(b) * bucket),
				Mean:  cell.sum / float64(cell.n),
				N:     cell.n,
			})
			xs = append(xs, float64(b))
			ys = append(ys, cell.sum/float64(cell.n))
		}
		if len(xs) >= 3 {
			if slope, p, _, err := stats.SimpleOLS(ys, xs); err == nil {
				tr.Slope = slope
				tr.SlopePValue = p
			}
		}
		out[cat] = tr
	}
	return out
}
