// Package sentiment implements the lexicon-based sentiment analysis that
// the paper's Section 6 application plugs into its mashups (substitution S7
// in DESIGN.md for the authors' proprietary semantic analyser). Comment
// scores aggregate into per-category indicators, and source-level
// indicators combine into an overall assessment weighted by source quality
// — "the overall sentiment assessment is weighed with respect to the
// quality of the Web sources".
package sentiment

import (
	"maps"
	"strings"
	"sync"

	"github.com/informing-observers/informer/internal/textgen"
)

// Lexicon maps opinion words to polarities, plus negators and
// intensifiers.
type Lexicon struct {
	polarity     map[string]float64
	negators     map[string]bool
	intensifiers map[string]float64
}

// defaultLexiconOnce memoizes the vocabulary build: analyzers are created
// on hot paths (one per corpus environment, historically one per
// SentimentByCategory call), and the underlying word lists never change.
var (
	defaultLexiconOnce sync.Once
	defaultLexiconVal  *Lexicon
)

// sharedDefaultLexicon returns the memoized default lexicon. It must be
// treated as immutable: NewAnalyzer hands it to analyzers that only read
// it, which also makes them safe for concurrent use.
func sharedDefaultLexicon() *Lexicon {
	defaultLexiconOnce.Do(func() {
		l := &Lexicon{
			polarity:     map[string]float64{},
			negators:     map[string]bool{},
			intensifiers: map[string]float64{},
		}
		for _, w := range textgen.PositiveWords() {
			l.polarity[w] = 1
		}
		for _, w := range textgen.NegativeWords() {
			l.polarity[w] = -1
		}
		for _, w := range textgen.Negators() {
			l.negators[w] = true
		}
		for _, w := range textgen.Intensifiers() {
			l.intensifiers[w] = 1.5
		}
		defaultLexiconVal = l
	})
	return defaultLexiconVal
}

// DefaultLexicon returns a lexicon over the same opinion vocabulary the
// synthetic corpus generator writes with, giving experiments a known
// ground truth while remaining a perfectly ordinary lexicon scorer for any
// other text. The vocabulary is built once; callers get their own copy, so
// Add never leaks customisations into other analyzers.
func DefaultLexicon() *Lexicon {
	base := sharedDefaultLexicon()
	return &Lexicon{
		polarity:     maps.Clone(base.polarity),
		negators:     maps.Clone(base.negators),
		intensifiers: maps.Clone(base.intensifiers),
	}
}

// Add registers an opinion word with the given polarity weight.
func (l *Lexicon) Add(word string, polarity float64) {
	l.polarity[strings.ToLower(word)] = polarity
}

// Score is the sentiment evaluation of one text.
type Score struct {
	// Value is the net sentiment in [-1, 1]: hit-weighted average of
	// matched opinion words.
	Value float64
	// Positive and Negative count matched opinion words by orientation
	// after negation handling.
	Positive, Negative int
	// Tokens is the total token count.
	Tokens int
}

// Polarity discretises the score: +1 / 0 / -1 with a small neutral
// dead-zone.
func (s Score) Polarity() int {
	switch {
	case s.Value > 0.1:
		return 1
	case s.Value < -0.1:
		return -1
	default:
		return 0
	}
}

// Analyzer scores texts against a lexicon.
type Analyzer struct {
	lex *Lexicon
	// NegationWindow is how many tokens a negator affects (default 3).
	NegationWindow int
}

// NewAnalyzer returns an Analyzer over the (shared, memoized) default
// lexicon. Analyzers only read their lexicon, so they are safe for
// concurrent use from multiple goroutines.
func NewAnalyzer() *Analyzer { return &Analyzer{lex: sharedDefaultLexicon(), NegationWindow: 3} }

// NewAnalyzerWithLexicon returns an Analyzer over a custom lexicon.
func NewAnalyzerWithLexicon(l *Lexicon) *Analyzer {
	return &Analyzer{lex: l, NegationWindow: 3}
}

// tokenize lowercases and splits into letter runs (apostrophes dropped).
func tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	for _, r := range strings.ToLower(text) {
		if r >= 'a' && r <= 'z' {
			b.WriteRune(r)
			continue
		}
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	if b.Len() > 0 {
		tokens = append(tokens, b.String())
	}
	return tokens
}

// Score evaluates one text: opinion words count toward the net value, a
// preceding negator within the window flips them, a preceding intensifier
// amplifies them.
func (a *Analyzer) Score(text string) Score {
	tokens := tokenize(text)
	s := Score{Tokens: len(tokens)}
	var total, weight float64
	negateUntil := -1
	intensify := 1.0
	window := a.NegationWindow
	if window <= 0 {
		window = 3
	}
	for i, tok := range tokens {
		if a.lex.negators[tok] {
			negateUntil = i + window
			continue
		}
		if f, ok := a.lex.intensifiers[tok]; ok {
			intensify = f
			continue
		}
		p, ok := a.lex.polarity[tok]
		if !ok {
			intensify = 1.0
			continue
		}
		v := p * intensify
		if i <= negateUntil {
			v = -v
		}
		if v > 0 {
			s.Positive++
		} else if v < 0 {
			s.Negative++
		}
		total += v
		weight += intensify
		intensify = 1.0
	}
	if weight > 0 {
		s.Value = total / weight
		if s.Value > 1 {
			s.Value = 1
		}
		if s.Value < -1 {
			s.Value = -1
		}
	}
	return s
}

// Indicator is a per-category sentiment summary, the unit Section 6's
// dashboards display.
type Indicator struct {
	Category string
	// Mean is the average comment score in [-1, 1].
	Mean float64
	// PositiveShare and NegativeShare are comment fractions by polarity.
	PositiveShare, NegativeShare float64
	// N is the number of scored comments.
	N int
}

// CategorizedText is a text with its content category, the input to
// indicator aggregation.
type CategorizedText struct {
	Category string
	Text     string
}

// Indicators scores all texts and aggregates per category.
func (a *Analyzer) Indicators(items []CategorizedText) map[string]Indicator {
	type agg struct {
		sum      float64
		pos, neg int
		n        int
	}
	byCat := map[string]*agg{}
	for _, it := range items {
		sc := a.Score(it.Text)
		g := byCat[it.Category]
		if g == nil {
			g = &agg{}
			byCat[it.Category] = g
		}
		g.sum += sc.Value
		switch sc.Polarity() {
		case 1:
			g.pos++
		case -1:
			g.neg++
		}
		g.n++
	}
	out := make(map[string]Indicator, len(byCat))
	for cat, g := range byCat {
		out[cat] = Indicator{
			Category:      cat,
			Mean:          g.sum / float64(g.n),
			PositiveShare: float64(g.pos) / float64(g.n),
			NegativeShare: float64(g.neg) / float64(g.n),
			N:             g.n,
		}
	}
	return out
}

// SourceSentiment pairs a source's sentiment indicator with its quality
// score for weighting.
type SourceSentiment struct {
	SourceID int
	Quality  float64
	Mean     float64
	N        int
}

// QualityWeighted combines per-source sentiment means into one overall
// assessment, weighting each source by its quality score (clamped at 0).
// It returns 0 for an empty or zero-quality input.
func QualityWeighted(items []SourceSentiment) float64 {
	var num, den float64
	for _, it := range items {
		q := it.Quality
		if q < 0 {
			q = 0
		}
		num += q * it.Mean
		den += q
	}
	if den == 0 {
		return 0
	}
	return num / den
}
