package sentiment

import (
	"math"
	"testing"

	"github.com/informing-observers/informer/internal/textgen"
)

func TestScoreBasicPolarity(t *testing.T) {
	a := NewAnalyzer()
	if s := a.Score("The hotel was wonderful and the staff friendly."); s.Polarity() != 1 {
		t.Errorf("positive text scored %v", s)
	}
	if s := a.Score("A terrible, overpriced experience."); s.Polarity() != -1 {
		t.Errorf("negative text scored %v", s)
	}
	if s := a.Score("We walked to the station and took a train."); s.Polarity() != 0 {
		t.Errorf("neutral text scored %v", s)
	}
}

func TestScoreEmpty(t *testing.T) {
	a := NewAnalyzer()
	s := a.Score("")
	if s.Value != 0 || s.Tokens != 0 || s.Polarity() != 0 {
		t.Errorf("empty text: %+v", s)
	}
}

func TestNegationFlips(t *testing.T) {
	a := NewAnalyzer()
	pos := a.Score("The room was wonderful.")
	neg := a.Score("The room was not wonderful.")
	if pos.Polarity() != 1 {
		t.Fatalf("baseline positive failed: %+v", pos)
	}
	if neg.Polarity() != -1 {
		t.Errorf("negated positive should be negative: %+v", neg)
	}
	doublePos := a.Score("The food was not terrible.")
	if doublePos.Polarity() != 1 {
		t.Errorf("negated negative should be positive: %+v", doublePos)
	}
}

func TestNegationWindowBounded(t *testing.T) {
	a := NewAnalyzer()
	// Negator far from the opinion word: window (3) exceeded, no flip.
	s := a.Score("It was not the case that during our long stay everything felt wonderful.")
	if s.Polarity() != 1 {
		t.Errorf("out-of-window negation should not flip: %+v", s)
	}
}

func TestIntensifierAmplifies(t *testing.T) {
	a := NewAnalyzer()
	plain := a.Score("The view was lovely but the metro was dirty and the food was dirty.")
	boosted := a.Score("The view was extremely lovely but the metro was dirty and the food was dirty.")
	if !(boosted.Value > plain.Value) {
		t.Errorf("intensifier should push the mixed score up: %v vs %v", boosted.Value, plain.Value)
	}
}

func TestScoreBounds(t *testing.T) {
	a := NewAnalyzer()
	s := a.Score("wonderful wonderful wonderful excellent amazing")
	if s.Value > 1 || s.Value < -1 {
		t.Errorf("score out of bounds: %v", s.Value)
	}
	if s.Positive != 5 || s.Negative != 0 {
		t.Errorf("counters: %+v", s)
	}
}

func TestCustomLexicon(t *testing.T) {
	l := DefaultLexicon()
	l.Add("meh", -0.5)
	a := NewAnalyzerWithLexicon(l)
	if s := a.Score("it was meh"); s.Polarity() != -1 {
		t.Errorf("custom word not applied: %+v", s)
	}
}

// TestGroundTruthRecovery checks the loop the experiments rely on: text
// generated with a known polarity is scored back with the right sign most
// of the time.
func TestGroundTruthRecovery(t *testing.T) {
	g := textgen.New(77)
	a := NewAnalyzer()
	correct, total := 0, 0
	for i := 0; i < 200; i++ {
		for _, pol := range []int{1, -1} {
			text := g.Comment("place", pol, 3)
			got := a.Score(text).Polarity()
			if got == pol {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("ground truth accuracy %.2f, want >= 0.9", acc)
	}
}

func TestNegatedGroundTruth(t *testing.T) {
	g := textgen.New(78)
	a := NewAnalyzer()
	correct, total := 0, 0
	for i := 0; i < 100; i++ {
		// NegatedSentence(cat, +1) writes "not <positive>", i.e. a negative
		// statement.
		text := g.NegatedSentence("people", 1)
		if a.Score(text).Polarity() == -1 {
			correct++
		}
		total++
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Errorf("negation accuracy %.2f", acc)
	}
}

func TestIndicators(t *testing.T) {
	a := NewAnalyzer()
	items := []CategorizedText{
		{Category: "place", Text: "The park was wonderful."},
		{Category: "place", Text: "The square was terrible."},
		{Category: "place", Text: "The garden was lovely."},
		{Category: "pulse", Text: "The concert was awful."},
	}
	ind := a.Indicators(items)
	if len(ind) != 2 {
		t.Fatalf("indicators: %v", ind)
	}
	place := ind["place"]
	if place.N != 3 {
		t.Errorf("place N = %d", place.N)
	}
	if !(place.Mean > 0) {
		t.Errorf("place mean = %v, want positive", place.Mean)
	}
	if math.Abs(place.PositiveShare-2.0/3.0) > 1e-9 {
		t.Errorf("positive share = %v", place.PositiveShare)
	}
	pulse := ind["pulse"]
	if pulse.Mean >= 0 || pulse.NegativeShare != 1 {
		t.Errorf("pulse indicator: %+v", pulse)
	}
}

func TestQualityWeighted(t *testing.T) {
	items := []SourceSentiment{
		{SourceID: 1, Quality: 0.9, Mean: 1},
		{SourceID: 2, Quality: 0.1, Mean: -1},
	}
	got := QualityWeighted(items)
	want := (0.9 - 0.1) / 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted = %v, want %v", got, want)
	}
	if QualityWeighted(nil) != 0 {
		t.Error("empty input should give 0")
	}
	// Negative quality clamps to zero weight.
	got = QualityWeighted([]SourceSentiment{
		{Quality: -5, Mean: 1},
		{Quality: 1, Mean: 0.5},
	})
	if got != 0.5 {
		t.Errorf("clamped = %v, want 0.5", got)
	}
	if QualityWeighted([]SourceSentiment{{Quality: 0, Mean: 1}}) != 0 {
		t.Error("all-zero quality should give 0")
	}
}

func TestQualityWeightingChangesVerdict(t *testing.T) {
	// The paper's motivation: a low-quality source with extreme sentiment
	// should not dominate. Unweighted mean is negative; quality-weighted
	// is positive.
	items := []SourceSentiment{
		{SourceID: 1, Quality: 0.95, Mean: 0.4, N: 500},
		{SourceID: 2, Quality: 0.05, Mean: -0.9, N: 20},
		{SourceID: 3, Quality: 0.05, Mean: -0.9, N: 20},
	}
	var unweighted float64
	for _, it := range items {
		unweighted += it.Mean
	}
	unweighted /= float64(len(items))
	weighted := QualityWeighted(items)
	if unweighted >= 0 {
		t.Fatalf("fixture broken: unweighted = %v", unweighted)
	}
	if weighted <= 0 {
		t.Errorf("quality weighting should rescue the verdict: %v", weighted)
	}
}
