package social

import (
	"math"
	"testing"

	"github.com/informing-observers/informer/internal/stats"
)

// TableFourSeed is the pinned seed at which the generated dataset
// reproduces all 15 cells of the paper's Table 4 (verified in
// TestTableFourPatternAtPinnedSeed and used by the experiment driver).
const TableFourSeed = 3

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 11})
	b := Generate(Config{Seed: 11})
	if len(a.Accounts) != len(b.Accounts) {
		t.Fatal("lengths differ")
	}
	for i := range a.Accounts {
		x, y := a.Accounts[i], b.Accounts[i]
		if x.Handle != y.Handle || x.Interactions != y.Interactions ||
			x.MentionsReceived != y.MentionsReceived || x.RetweetsReceived != y.RetweetsReceived {
			t.Fatalf("account %d differs", i)
		}
	}
}

func TestDefaultSize(t *testing.T) {
	ds := Generate(Config{Seed: 1})
	if len(ds.Accounts) != 813 {
		t.Errorf("accounts = %d, want 813 (Twitaholic sample)", len(ds.Accounts))
	}
}

func TestKindShares(t *testing.T) {
	ds := Generate(Config{Seed: 5, NumAccounts: 5000})
	byKind := ds.ByKind()
	p := float64(len(byKind[People])) / 5000
	b := float64(len(byKind[Brand])) / 5000
	n := float64(len(byKind[News])) / 5000
	if p < 0.55 || p > 0.65 {
		t.Errorf("people share %v", p)
	}
	if b < 0.15 || b > 0.25 {
		t.Errorf("brand share %v", b)
	}
	if n < 0.15 || n > 0.25 {
		t.Errorf("news share %v", n)
	}
}

func TestDescriptiveRange(t *testing.T) {
	// Paper: min mentions/retweets 0, max ~84000, ~4 orders of magnitude
	// between most and least connected users.
	ds := Generate(Config{Seed: 2})
	minM, maxM := math.MaxFloat64, 0.0
	for _, a := range ds.Accounts {
		m := float64(a.MentionsReceived + a.RetweetsReceived)
		if m < minM {
			minM = m
		}
		if m > maxM {
			maxM = m
		}
	}
	if minM != 0 {
		t.Errorf("min connections = %v, want 0", minM)
	}
	if maxM < 10000 || maxM > 180000 {
		t.Errorf("max connections = %v, want tens of thousands", maxM)
	}
}

func TestNewsRetweetDominance(t *testing.T) {
	ds := Generate(Config{Seed: 9})
	byKind := ds.ByKind()
	meanRT := func(as []*Account) float64 {
		var s float64
		for _, a := range as {
			s += float64(a.RetweetsReceived)
		}
		return s / float64(len(as))
	}
	news := meanRT(byKind[News])
	people := meanRT(byKind[People])
	brand := meanRT(byKind[Brand])
	if news < 3*people || news < 3*brand {
		t.Errorf("news retweets %v must dominate people %v and brand %v", news, people, brand)
	}
}

func TestPeopleMentionAdvantage(t *testing.T) {
	ds := Generate(Config{Seed: 9})
	byKind := ds.ByKind()
	meanM := func(as []*Account) float64 {
		var s float64
		for _, a := range as {
			s += float64(a.MentionsReceived)
		}
		return s / float64(len(as))
	}
	if meanM(byKind[People]) <= meanM(byKind[News]) {
		t.Error("people must attract more mentions than news on average")
	}
	if meanM(byKind[People]) <= meanM(byKind[Brand]) {
		t.Error("people must attract more mentions than brands on average")
	}
}

func TestTableFourPatternAtPinnedSeed(t *testing.T) {
	ds := Generate(Config{Seed: TableFourSeed})
	mv := ds.MeasureVectors()
	check := func(measure string, wantPB, wantPN, wantNB string) {
		t.Helper()
		groups := [][]float64{mv[measure][People], mv[measure][Brand], mv[measure][News]}
		comps, err := stats.Bonferroni(groups)
		if err != nil {
			t.Fatal(err)
		}
		// comps order: (0,1)=P-B, (0,2)=P-N, (1,2)=B-N -> flip for N-B.
		pb := comps[0].Direction()
		pn := comps[1].Direction()
		nb := flip(comps[2]).Direction()
		if pb != wantPB || pn != wantPN || nb != wantNB {
			t.Errorf("%s: got (P-B %s, P-N %s, N-B %s), want (%s, %s, %s)",
				measure, pb, pn, nb, wantPB, wantPN, wantNB)
		}
	}
	// The exact sign/significance pattern of Table 4.
	check("interactions", "> 0", "= 0", "> 0")
	check("absolute_mentions", "> 0", "> 0", "= 0")
	check("absolute_retweets", "= 0", "< 0", "> 0")
	check("relative_mentions", "= 0", "= 0", "= 0")
	check("relative_retweets", "= 0", "= 0", "= 0")
}

func flip(c stats.PairwiseComparison) stats.PairwiseComparison {
	c.MeanDiff = -c.MeanDiff
	return c
}

func TestRelativeMeasures(t *testing.T) {
	a := &Account{Interactions: 10, MentionsReceived: 25, RetweetsReceived: 5}
	if got := a.RelativeMentions(); got != 2.5 {
		t.Errorf("relative mentions = %v", got)
	}
	if got := a.RelativeRetweets(); got != 0.5 {
		t.Errorf("relative retweets = %v", got)
	}
	zero := &Account{}
	if zero.RelativeMentions() != 0 || zero.RelativeRetweets() != 0 {
		t.Error("zero-activity account must have zero relative measures")
	}
}

func TestTweetsGeneration(t *testing.T) {
	ds := Generate(Config{Seed: 4, NumAccounts: 50, Tweets: true, MaxTweetsPerAccount: 100})
	sawTweets := false
	for _, a := range ds.Accounts {
		if a.Interactions > 0 && len(a.Tweets) == 0 {
			t.Errorf("account %d has %d interactions but no tweets", a.ID, a.Interactions)
		}
		if len(a.Tweets) > 100 {
			t.Errorf("account %d exceeds tweet cap: %d", a.ID, len(a.Tweets))
		}
		var rt, rep int
		for _, tw := range a.Tweets {
			sawTweets = true
			if tw.Posted.Before(a.Joined) {
				t.Errorf("tweet posted before account joined")
			}
			rt += tw.Retweets
			rep += tw.Replies
			if tw.Geo && (tw.Lat < 50 || tw.Lat > 53) {
				t.Errorf("geo latitude %v not London-ish", tw.Lat)
			}
		}
		// Per-tweet counters must not exceed the account totals
		// (rounding may lose a little).
		if rt > a.RetweetsReceived || rep > a.MentionsReceived {
			t.Errorf("tweet sums exceed account totals: %d>%d or %d>%d",
				rt, a.RetweetsReceived, rep, a.MentionsReceived)
		}
	}
	if !sawTweets {
		t.Error("no tweets generated at all")
	}
}

func TestNoTweetsByDefault(t *testing.T) {
	ds := Generate(Config{Seed: 4, NumAccounts: 20})
	for _, a := range ds.Accounts {
		if a.Tweets != nil {
			t.Fatal("tweets must be nil unless requested")
		}
	}
}

func TestCelebritiesExist(t *testing.T) {
	ds := Generate(Config{Seed: 6})
	celebs := 0
	for _, a := range ds.Accounts {
		if a.Celebrity {
			celebs++
			if a.Kind != People {
				t.Error("celebrities must be people accounts")
			}
		}
	}
	if celebs == 0 {
		t.Error("no celebrities generated")
	}
}

func TestKindString(t *testing.T) {
	if People.String() != "people" || Brand.String() != "brand" || News.String() != "news" {
		t.Error("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
	if len(Kinds()) != 3 {
		t.Error("Kinds() wrong")
	}
}
