// Package social simulates the microblog dataset behind the contributors'
// quality validation (Section 4.2, Table 4): the Twitaholic list of the 813
// most influential London Twitter accounts, hand-annotated as people,
// brands, or news sources. This is substitution S5 in DESIGN.md.
//
// The generator encodes the class behaviours the paper attributes to each
// account kind rather than the test outcomes themselves:
//
//   - news feeds publish constantly and their stories are mass-retweeted;
//   - people tweet as much as news accounts and attract conversational
//     replies (mentions); a small celebrity minority tweets rarely but
//     attracts enormous reaction volumes — the ratio outliers that make
//     *relative* interaction measures statistically indistinguishable
//     across classes ("even sources that have higher absolute volumes do
//     not have the ability to spread all content");
//   - brands interact least.
//
// Counts are heavy-tailed lognormals with a zero-inflation floor, matching
// the paper's descriptives (minimum 0, maximum ~84 000, about 4 orders of
// magnitude between the most and least connected users).
package social

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Kind is the annotated account type of Table 4.
type Kind int

const (
	People Kind = iota
	Brand
	News
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case People:
		return "people"
	case Brand:
		return "brand"
	case News:
		return "news"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all account kinds in display order.
func Kinds() []Kind { return []Kind{People, Brand, News} }

// Tweet is one post in an account's stream (generated only when
// Config.Tweets is set).
type Tweet struct {
	ID        int
	Posted    time.Time
	Retweets  int
	Replies   int
	Geo       bool // whether the tweet is geo-tagged
	Lat, Lon  float64
	Sentiment int // ground-truth polarity -1/0/+1, for dashboard demos
}

// Account is one microblog user.
type Account struct {
	ID        int
	Handle    string
	Kind      Kind
	Location  string
	Joined    time.Time
	Celebrity bool
	Followers int
	// Interactions is the number of generated tweets, including retweets
	// the account itself makes — the paper's activity notion for Twitter.
	Interactions int
	// MentionsReceived is the number of replies received from others
	// (the paper's "absolute mentions").
	MentionsReceived int
	// RetweetsReceived is the number of feedbacks received (the paper's
	// "absolute retweets").
	RetweetsReceived int
	// Tweets is the per-post stream; nil unless Config.Tweets.
	Tweets []Tweet
}

// RelativeMentions is the average number of replies received per generated
// tweet (the paper's "relative mentions"). Zero-activity accounts yield 0.
func (a *Account) RelativeMentions() float64 {
	if a.Interactions == 0 {
		return 0
	}
	return float64(a.MentionsReceived) / float64(a.Interactions)
}

// RelativeRetweets is the average number of feedbacks received per
// generated tweet (the paper's "relative retweets").
func (a *Account) RelativeRetweets() float64 {
	if a.Interactions == 0 {
		return 0
	}
	return float64(a.RetweetsReceived) / float64(a.Interactions)
}

// Dataset is the annotated account collection.
type Dataset struct {
	Accounts []*Account
}

// Config controls dataset generation.
type Config struct {
	Seed int64
	// NumAccounts defaults to 813, the Twitaholic sample size.
	NumAccounts int
	// PeopleShare and BrandShare partition accounts (news gets the rest).
	// Defaults: 60% people, 20% brand, 20% news.
	PeopleShare, BrandShare float64
	// CelebrityRate is the fraction of people accounts with celebrity
	// behaviour (default 3%).
	CelebrityRate float64
	// Tweets materialises per-post streams (capped at MaxTweetsPerAccount)
	// in addition to the aggregate counters.
	Tweets              bool
	MaxTweetsPerAccount int
	// Location labels accounts; defaults to "london".
	Location string
}

func (c Config) withDefaults() Config {
	if c.NumAccounts == 0 {
		c.NumAccounts = 813
	}
	if c.PeopleShare == 0 {
		c.PeopleShare = 0.60
	}
	if c.BrandShare == 0 {
		c.BrandShare = 0.20
	}
	if c.CelebrityRate == 0 {
		c.CelebrityRate = 0.05
	}
	if c.MaxTweetsPerAccount == 0 {
		c.MaxTweetsPerAccount = 400
	}
	if c.Location == "" {
		c.Location = "london"
	}
	return c
}

// classParams hold the lognormal location parameters (log scale) per kind.
// Sigmas are shared so class differences come from the locations; the
// celebrity mixture supplies the cross-class ratio outliers.
type classParams struct {
	muInteractions float64
	muMentions     float64
	muRetweets     float64
}

var params = map[Kind]classParams{
	// People tweet like news accounts, attract the most replies, and are
	// retweeted modestly. (The location is slightly above News' to offset
	// the celebrity minority, which tweets rarely.)
	People: {muInteractions: 6.15, muMentions: 5.8, muRetweets: 4.7},
	// Brands are the least interactive on every axis.
	Brand: {muInteractions: 5.1, muMentions: 5.3, muRetweets: 4.9},
	// News sources tweet constantly and are mass-retweeted, but attract
	// few conversational replies.
	News: {muInteractions: 6.1, muMentions: 5.4, muRetweets: 7.9},
}

const (
	sigmaInteractions = 1.3
	sigmaMentions     = 0.9
	sigmaRetweets     = 1.15
	zeroInflation     = 0.04

	// Celebrity mixture: rare posters with enormous reaction volumes.
	celebMuInteractions = 3.2
	celebMuReactions    = 8.4
)

// Generate builds the annotated dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{}
	base := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)

	for i := 0; i < cfg.NumAccounts; i++ {
		var kind Kind
		switch r := rng.Float64(); {
		case r < cfg.PeopleShare:
			kind = People
		case r < cfg.PeopleShare+cfg.BrandShare:
			kind = Brand
		default:
			kind = News
		}
		p := params[kind]
		a := &Account{
			ID:       i,
			Handle:   fmt.Sprintf("@%s_%s_%03d", kind, cfg.Location, i),
			Kind:     kind,
			Location: cfg.Location,
			Joined:   base.AddDate(0, 0, -(30 + rng.Intn(1500))),
		}

		if kind == People && rng.Float64() < cfg.CelebrityRate {
			// Celebrity: rarely tweets, reactions are enormous.
			a.Celebrity = true
			a.Interactions = drawCount(rng, celebMuInteractions, 1.0, 0)
			a.MentionsReceived = drawCount(rng, celebMuReactions, 0.9, zeroInflation)
			a.RetweetsReceived = drawCount(rng, celebMuReactions, 0.9, zeroInflation)
		} else {
			a.Interactions = drawCount(rng, p.muInteractions, sigmaInteractions, 0.01)
			a.MentionsReceived = drawCount(rng, p.muMentions, sigmaMentions, zeroInflation)
			a.RetweetsReceived = drawCount(rng, p.muRetweets, sigmaRetweets, zeroInflation)
		}
		a.Followers = drawCount(rng, 8.0+0.5*float64(boolToInt(kind == News || a.Celebrity)), 1.4, 0)

		if cfg.Tweets {
			a.Tweets = genTweets(rng, a, cfg, base)
		}
		ds.Accounts = append(ds.Accounts, a)
	}
	return ds
}

// drawCount samples a zero-inflated lognormal count capped at 90 000,
// keeping the corpus within the descriptive range the paper reports.
func drawCount(rng *rand.Rand, mu, sigma, zeroRate float64) int {
	if rng.Float64() < zeroRate {
		return 0
	}
	v := math.Exp(mu + sigma*rng.NormFloat64())
	if v > 90000 {
		v = 90000
	}
	return int(math.Round(v))
}

// genTweets materialises a per-post stream consistent with the aggregate
// counters: tweet-level retweet/reply counts sum (approximately) to the
// account totals, with the heavy concentration on a few posts that the
// paper highlights.
func genTweets(rng *rand.Rand, a *Account, cfg Config, end time.Time) []Tweet {
	n := a.Interactions
	if n > cfg.MaxTweetsPerAccount {
		n = cfg.MaxTweetsPerAccount
	}
	if n == 0 {
		return nil
	}
	tweets := make([]Tweet, n)
	// Distribute total reactions over tweets with Zipf-like concentration.
	wRetweets := make([]float64, n)
	wReplies := make([]float64, n)
	var sumRT, sumRep float64
	for i := range tweets {
		wRetweets[i] = math.Pow(rng.Float64(), 3) // cubing concentrates mass
		wReplies[i] = math.Pow(rng.Float64(), 2)
		sumRT += wRetweets[i]
		sumRep += wReplies[i]
	}
	span := end.Sub(a.Joined)
	for i := range tweets {
		rt, rep := 0, 0
		if sumRT > 0 {
			rt = int(float64(a.RetweetsReceived) * wRetweets[i] / sumRT)
		}
		if sumRep > 0 {
			rep = int(float64(a.MentionsReceived) * wReplies[i] / sumRep)
		}
		tweets[i] = Tweet{
			ID:       a.ID*1_000_000 + i,
			Posted:   a.Joined.Add(time.Duration(rng.Float64() * float64(span))),
			Retweets: rt,
			Replies:  rep,
		}
		if rng.Float64() < 0.25 {
			tweets[i].Geo = true
			tweets[i].Lat = 51.5074 + 0.08*rng.NormFloat64()
			tweets[i].Lon = -0.1278 + 0.12*rng.NormFloat64()
		}
		switch r := rng.Float64(); {
		case r < 0.40:
			tweets[i].Sentiment = 1
		case r < 0.72:
			tweets[i].Sentiment = 0
		default:
			tweets[i].Sentiment = -1
		}
	}
	return tweets
}

// ByKind partitions accounts per kind, preserving order.
func (d *Dataset) ByKind() map[Kind][]*Account {
	out := map[Kind][]*Account{}
	for _, a := range d.Accounts {
		out[a.Kind] = append(out[a.Kind], a)
	}
	return out
}

// MeasureVectors extracts the five Table 4 measures grouped by kind, in
// Kinds() order: interactions, absolute mentions, absolute retweets,
// relative mentions, relative retweets.
func (d *Dataset) MeasureVectors() map[string]map[Kind][]float64 {
	out := map[string]map[Kind][]float64{
		"interactions":      {},
		"absolute_mentions": {},
		"absolute_retweets": {},
		"relative_mentions": {},
		"relative_retweets": {},
	}
	for _, a := range d.Accounts {
		out["interactions"][a.Kind] = append(out["interactions"][a.Kind], float64(a.Interactions))
		out["absolute_mentions"][a.Kind] = append(out["absolute_mentions"][a.Kind], float64(a.MentionsReceived))
		out["absolute_retweets"][a.Kind] = append(out["absolute_retweets"][a.Kind], float64(a.RetweetsReceived))
		out["relative_mentions"][a.Kind] = append(out["relative_mentions"][a.Kind], a.RelativeMentions())
		out["relative_retweets"][a.Kind] = append(out["relative_retweets"][a.Kind], a.RelativeRetweets())
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
