package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBackoffRamp pins the deterministic exponential ramp and its cap.
func TestBackoffRamp(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 60, 60}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if d := (Policy{}).Backoff(3); d != 0 {
		t.Errorf("zero policy Backoff = %v, want 0", d)
	}
}

// TestBackoffJitterBounds: jittered backoffs stay within the policy band.
func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{Base: 20 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.Backoff(1) // deterministic part: 40ms
		lo, hi := 20*time.Millisecond, 40*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("jittered Backoff(1) = %v outside [%v, %v]", d, lo, hi)
		}
	}
}

// TestDoRetriesTransient: Do keeps trying transient failures up to the
// attempt bound and reports the last error.
func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 3}, func(context.Context) error {
		calls++
		return fmt.Errorf("boom %d", calls)
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if err == nil || err.Error() != "boom 3" {
		t.Fatalf("err = %v, want last attempt's error", err)
	}

	calls = 0
	if err := Do(context.Background(), Policy{Attempts: 5}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}); err != nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want success on third", err, calls)
	}
}

// TestDoPermanentFastFail: a Permanent error stops the loop and is
// returned unwrapped.
func TestDoPermanentFastFail(t *testing.T) {
	sentinel := errors.New("status 404")
	calls := 0
	err := Do(context.Background(), Policy{Attempts: 5}, func(context.Context) error {
		calls++
		return Permanent(sentinel)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent errors)", calls)
	}
	if !errors.Is(err, sentinel) || IsPermanent(err) {
		t.Fatalf("err = %v, want unwrapped sentinel", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

// TestDoContextCancel: cancellation interrupts the backoff pause.
func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- Do(ctx, Policy{Attempts: 10, Base: time.Hour}, func(context.Context) error {
			calls++
			return errors.New("transient")
		})
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("want an error after cancellation")
		}
		if calls != 1 {
			t.Fatalf("calls = %d, want 1 (cancelled during first backoff)", calls)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
}

// TestJitterSpread: a caller-owned source behaves like a uniform [0,1)
// draw — every value in range, consecutive draws distinct (the Weyl
// step never repeats within 2^64 calls), the mean near 1/2 — and two
// independently seeded sources produce different sequences, so the
// fleet-decorrelation property survives the switch off math/rand.
func TestJitterSpread(t *testing.T) {
	const n = 4096
	j := NewJitter()
	sum, prev := 0.0, -1.0
	for i := 0; i < n; i++ {
		f := j.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("jitter draw = %v outside [0, 1)", f)
		}
		if f == prev {
			t.Fatalf("consecutive draws collided at %v", f)
		}
		prev = f
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("jitter mean = %v, want ~0.5", mean)
	}
	a, b := NewJitter(), NewJitter()
	if a.float64() == b.float64() && a.float64() == b.float64() {
		t.Fatal("independently seeded sources replayed the same sequence")
	}
}

// BenchmarkBackoffParallel is the contention receipt for caller-owned
// jitter: every goroutine of a failing fleet draws backoffs at once,
// exactly the access pattern that used to funnel through the package-
// global math/rand source. "local" holds one Jitter per goroutine (the
// Do / per-sink-worker pattern); "seeded-per-call" is the stateless
// Backoff fallback, paying one shared atomic step per draw.
func BenchmarkBackoffParallel(b *testing.B) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	b.Run("local", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			j := NewJitter()
			var sink time.Duration
			for i := 0; pb.Next(); i++ {
				sink += p.BackoffWith(i&7, &j)
			}
			_ = sink
		})
	})
	b.Run("seeded-per-call", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			var sink time.Duration
			for i := 0; pb.Next(); i++ {
				sink += p.Backoff(i & 7)
			}
			_ = sink
		})
	})
}
