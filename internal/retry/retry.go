// Package retry is the shared bounded-retry policy of the outbound HTTP
// paths: the crawler's page fetches and the push-delivery engine's sink
// attempts (internal/deliver) both face the same transient-failure shape —
// 5xx bursts, net timeouts, connection drops — and should heal it the same
// way: a bounded number of attempts separated by exponential backoff with
// jitter, aborting early for errors that will not heal on retry (client
// errors, cancelled contexts).
//
// The policy is pure arithmetic (Backoff) plus two small compositions over
// it: Sleep (one context-aware backoff pause) and Do (the full
// attempt/backoff loop with permanent-error fast-fail). Callers that need
// to interleave their own state between attempts — the delivery engine
// threads a circuit breaker through its loop — use Backoff/Sleep directly.
//
//informer:strict-errors
package retry

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Policy bounds one retried operation. The zero value is usable and means
// "one attempt, no backoff": retries are always opt-in.
type Policy struct {
	// Attempts is the total number of tries, first one included
	// (minimum 1; 0 reads as 1).
	Attempts int
	// Base is the backoff before the second attempt; each further backoff
	// multiplies by Factor (default 2) and is capped at Max (no cap when
	// zero).
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the randomized fraction of each backoff, 0..1: the pause
	// becomes backoff*(1-Jitter) + rand*backoff*Jitter, so a fleet of
	// failing callers decorrelates instead of retrying in lockstep.
	Jitter float64
}

// max attempts guard: a Policy built from user input (flags, JSON) cannot
// spin forever between two ticks.
const maxAttempts = 64

// attempts normalizes the configured attempt bound.
func (p Policy) attempts() int {
	switch {
	case p.Attempts < 1:
		return 1
	case p.Attempts > maxAttempts:
		return maxAttempts
	}
	return p.Attempts
}

// Jitter is a caller-owned source for the randomized backoff fraction: a
// splitmix64 state the owner advances locally, with no shared memory
// touched per draw. The package-global math/rand it replaces hands every
// draw to one process-wide source — under a 5xx burst, hundreds of
// delivery and crawler goroutines back off at once, all funneled through
// that single source (a mutex convoy when legacy-seeded, shared state
// either way). A Jitter lives on its owner's stack or struct: Do keeps
// one per invocation, a long-lived worker keeps one per goroutine.
//
// The zero value is NOT usable — it would replay the same sequence in
// every owner and re-correlate the fleet the jitter exists to spread out.
// Use NewJitter.
type Jitter struct{ state uint64 }

// jitterSeq seeds new Jitters: each NewJitter takes one atomic step on a
// Weyl sequence, so concurrently created sources start decorrelated. The
// per-process random offset keeps a fleet of restarting processes from
// sharing sequences, as the auto-seeded global source did.
var jitterSeq atomic.Uint64

func init() {
	jitterSeq.Store(uint64(time.Now().UnixNano()))
}

// NewJitter returns an independently seeded jitter source. The only
// cross-goroutine touch is this one seeding step; every later draw is
// local to the returned value.
func NewJitter() Jitter {
	return Jitter{state: jitterSeq.Add(0x9E3779B97F4A7C15)}
}

// float64 returns a uniform draw in [0, 1): one splitmix64 step on the
// local state.
func (j *Jitter) float64() float64 {
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Backoff returns the pause after the given 0-based failed attempt:
// Backoff(0) separates attempts one and two. The exponential ramp is
// deterministic; only the jitter fraction is randomized, from a source
// seeded per call. Loops drawing repeatedly should hold a Jitter and use
// BackoffWith, as Do does.
func (p Policy) Backoff(attempt int) time.Duration {
	j := NewJitter()
	return p.BackoffWith(attempt, &j)
}

// BackoffWith is Backoff drawing from the caller's jitter source — the
// allocation- and contention-free form for retry loops and per-sink
// worker goroutines.
func (p Policy) BackoffWith(attempt int, j *Jitter) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		frac := p.Jitter
		if frac > 1 {
			frac = 1
		}
		d = d*(1-frac) + j.float64()*d*frac
	}
	return time.Duration(d)
}

// Sleep pauses for Backoff(attempt) or until the context is cancelled,
// whichever comes first, returning the context's error on cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	j := NewJitter()
	return p.SleepWith(ctx, attempt, &j)
}

// SleepWith is Sleep drawing from the caller's jitter source.
func (p Policy) SleepWith(ctx context.Context, attempt int, j *Jitter) error {
	d := p.BackoffWith(attempt, j)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error as not worth retrying; see Permanent.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do stops retrying immediately — the
// crawler's "client errors won't heal on retry" fast-fail. Do unwraps the
// marker before returning, so callers never see it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs f up to p.Attempts times, sleeping the policy's backoff between
// failures. It stops early — returning the unwrapped error — when f
// reports a Permanent error or the context is cancelled; otherwise it
// returns f's last error (nil on success).
func Do(ctx context.Context, p Policy, f func(ctx context.Context) error) error {
	var lastErr error
	j := NewJitter()
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if attempt > 0 {
			if err := p.SleepWith(ctx, attempt-1, &j); err != nil {
				return err
			}
		}
		err := f(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}
