// Package retry is the shared bounded-retry policy of the outbound HTTP
// paths: the crawler's page fetches and the push-delivery engine's sink
// attempts (internal/deliver) both face the same transient-failure shape —
// 5xx bursts, net timeouts, connection drops — and should heal it the same
// way: a bounded number of attempts separated by exponential backoff with
// jitter, aborting early for errors that will not heal on retry (client
// errors, cancelled contexts).
//
// The policy is pure arithmetic (Backoff) plus two small compositions over
// it: Sleep (one context-aware backoff pause) and Do (the full
// attempt/backoff loop with permanent-error fast-fail). Callers that need
// to interleave their own state between attempts — the delivery engine
// threads a circuit breaker through its loop — use Backoff/Sleep directly.
//
//informer:strict-errors
package retry

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy bounds one retried operation. The zero value is usable and means
// "one attempt, no backoff": retries are always opt-in.
type Policy struct {
	// Attempts is the total number of tries, first one included
	// (minimum 1; 0 reads as 1).
	Attempts int
	// Base is the backoff before the second attempt; each further backoff
	// multiplies by Factor (default 2) and is capped at Max (no cap when
	// zero).
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the randomized fraction of each backoff, 0..1: the pause
	// becomes backoff*(1-Jitter) + rand*backoff*Jitter, so a fleet of
	// failing callers decorrelates instead of retrying in lockstep.
	Jitter float64
}

// max attempts guard: a Policy built from user input (flags, JSON) cannot
// spin forever between two ticks.
const maxAttempts = 64

// attempts normalizes the configured attempt bound.
func (p Policy) attempts() int {
	switch {
	case p.Attempts < 1:
		return 1
	case p.Attempts > maxAttempts:
		return maxAttempts
	}
	return p.Attempts
}

// Backoff returns the pause after the given 0-based failed attempt:
// Backoff(0) separates attempts one and two. The exponential ramp is
// deterministic; only the jitter fraction is randomized.
func (p Policy) Backoff(attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		j := p.Jitter
		if j > 1 {
			j = 1
		}
		d = d*(1-j) + rand.Float64()*d*j
	}
	return time.Duration(d)
}

// Sleep pauses for Backoff(attempt) or until the context is cancelled,
// whichever comes first, returning the context's error on cancellation.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	d := p.Backoff(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error as not worth retrying; see Permanent.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an error so Do stops retrying immediately — the
// crawler's "client errors won't heal on retry" fast-fail. Do unwraps the
// marker before returning, so callers never see it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// Do runs f up to p.Attempts times, sleeping the policy's backoff between
// failures. It stops early — returning the unwrapped error — when f
// reports a Permanent error or the context is cancelled; otherwise it
// returns f's last error (nil on success).
func Do(ctx context.Context, p Policy, f func(ctx context.Context) error) error {
	var lastErr error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if attempt > 0 {
			if err := p.Sleep(ctx, attempt-1); err != nil {
				return err
			}
		}
		err := f(ctx)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return lastErr
}
