package correlate

import (
	"fmt"
	"sort"

	"github.com/informing-observers/informer/internal/webgen"
)

// comEntry is the per-comment state the index keeps: the signature, the
// comment's provenance, and its immutable duplicate verdict. A comment is
// a duplicate iff, at insertion time, some *earlier* (lower-ID) comment
// from a *different* source sits within DupHamming of it — a source
// quoting itself is not syndication. Comment IDs are append-only and
// monotone across Advance/AdvanceSameDay/AdvanceSource (every tick
// allocates past the corpus-wide maximum), so "earlier" is well defined
// and a verdict never changes once written; per-source counters can only
// move for sources the tick dirtied.
type comEntry struct {
	sig     uint64
	source  int32
	disc    int32
	posted  int64 // UnixNano
	dup     bool
	indexed bool
}

// edge is one story-tier candidate pair buffered for the batch merge.
type edge struct{ a, b int32 }

// cluster aggregates one story-tier union-find component with at least
// two members. Members and latest are maintained incrementally;
// sources stays sorted ascending and deduplicated. The member list is an
// unordered set (merges swap small-to-large), so nothing derived from it
// may depend on its order — materialize sorts what it publishes.
type cluster struct {
	members []int32
	sources []int32
	latest  int64
}

// Index is the correlation engine's mutable working state: the banded
// near-duplicate index plus the two-tier union-find clustering over it.
// It is writer-owned — the facade mutates it only under its writer lock,
// exactly like the ingestion accumulator — and publishes immutable
// StorySet snapshots for readers. It is NOT safe for concurrent use.
type Index struct {
	entries []comEntry                   // indexed by comment ID
	buckets [numBands]map[uint16][]int32 // band value -> comment IDs, insertion order

	dupParent   []int32 // duplicate-tier union-find (micro-clusters)
	storyParent []int32 // story-tier union-find (stories)
	dupMerges   int

	pending []edge // story-tier-only edges awaiting the batch merge pass

	clusters map[int32]*cluster // story-tier roots with >= 2 members
	touched  map[int32]bool     // roots whose cluster changed since the last materialize
	dead     map[int32]bool     // roots merged away since the last materialize

	corrBySource []int // indexed comments per source
	dupBySource  []int // duplicate comments per source

	stories *StorySet // last materialized snapshot
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	ix := &Index{
		clusters: map[int32]*cluster{},
		touched:  map[int32]bool{},
		dead:     map[int32]bool{},
		stories:  emptyStorySet(),
	}
	for b := range ix.buckets {
		ix.buckets[b] = map[uint16][]int32{}
	}
	return ix
}

// Stats summarises the index for tests and dashboards.
type Stats struct {
	Indexed       int // comments carrying a signature
	Duplicates    int // comments flagged as near-duplicates of earlier material elsewhere
	MicroClusters int // duplicate-tier components
	StoryClusters int // story-tier components with >= 2 members
}

// Stats reports the current index statistics.
func (ix *Index) Stats() Stats {
	s := Stats{StoryClusters: len(ix.clusters)}
	for i := range ix.entries {
		if ix.entries[i].indexed {
			s.Indexed++
			if ix.entries[i].dup {
				s.Duplicates++
			}
		}
	}
	s.MicroClusters = s.Indexed - ix.dupMerges
	return s
}

// Counts reports a source's correlation counters: how many of its
// comments the index carries and how many of those are near-duplicates of
// earlier material on other sources. These are the numerator inputs of
// the src.originality measure.
func (ix *Index) Counts(sourceID int) (correlated, duplicates int) {
	if sourceID < 0 || sourceID >= len(ix.corrBySource) {
		return 0, 0
	}
	return ix.corrBySource[sourceID], ix.dupBySource[sourceID]
}

// Stories returns the StorySet materialized by the last Build/Fold.
func (ix *Index) Stories() *StorySet { return ix.stories }

// newComment is one comment queued for insertion.
type newComment struct {
	id     int32
	source int32
	disc   int32
	posted int64
	body   string
}

// Build indexes an entire world from scratch and materializes its
// StorySet. The index must be empty; incremental maintenance goes through
// Fold. Comments are inserted in ascending ID order — the same order Fold
// sees them over any tick sequence producing the same world — which is
// what makes a Fold-maintained index bit-identical to Build.
func (ix *Index) Build(w *webgen.World) *StorySet {
	if len(ix.entries) != 0 {
		panic("correlate: Build on a non-empty index (use Fold)")
	}
	var coms []newComment
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				coms = append(coms, newComment{
					id: int32(c.ID), source: int32(s.ID), disc: int32(d.ID),
					posted: c.Posted.UnixNano(), body: c.Body,
				})
			}
		}
	}
	return ix.fold(w, coms)
}

// Fold repairs the index for one published tick: only the delta's new
// comments are hashed and inserted, then the buffered story-tier edges
// batch-merge and the StorySet re-materializes copy-on-write (untouched
// stories are shared with the previous set). The delta may span several
// coalesced ticks (webgen.Delta.Merge); ForEachNewComment visits every
// new comment exactly once.
func (ix *Index) Fold(w *webgen.World, delta *webgen.Delta) *StorySet {
	var coms []newComment
	delta.ForEachNewComment(func(sourceID int, d *webgen.Discussion, c *webgen.Comment) {
		coms = append(coms, newComment{
			id: int32(c.ID), source: int32(sourceID), disc: int32(d.ID),
			posted: c.Posted.UnixNano(), body: c.Body,
		})
	})
	return ix.fold(w, coms)
}

// fold inserts a batch of comments in ID order, runs the story-tier batch
// merge, and materializes the next StorySet.
//
//informer:mutates swaps in the successor StorySet before it is published
func (ix *Index) fold(w *webgen.World, coms []newComment) *StorySet {
	// Delta visit order is generation order (new-discussion comments before
	// grown ones), not global ID order; sort so insertion order — and with
	// it every "earlier comment" verdict — matches a from-scratch Build.
	sort.Slice(coms, func(i, j int) bool { return coms[i].id < coms[j].id })
	if n := len(w.Sources); n > len(ix.corrBySource) {
		ix.corrBySource = append(ix.corrBySource, make([]int, n-len(ix.corrBySource))...)
		ix.dupBySource = append(ix.dupBySource, make([]int, n-len(ix.dupBySource))...)
	}
	seen := map[int32]struct{}{}
	for _, nc := range coms {
		ix.insert(nc, seen)
	}
	// Batch merge pass: fold the buffered loose-tier edges into the story
	// union-find. Union order cannot influence the result — roots are
	// minimum member IDs and member/source aggregates are sets.
	for _, e := range ix.pending {
		ix.storyUnion(e.a, e.b)
	}
	ix.pending = ix.pending[:0]
	ix.stories = ix.materialize(ix.stories)
	return ix.stories
}

// insert hashes one comment, probes the banded buckets for candidates,
// writes the duplicate verdict and the union-find edges, and registers
// the comment in the buckets. seen is a caller-owned scratch set, cleared
// per insertion.
func (ix *Index) insert(nc newComment, seen map[int32]struct{}) {
	if int(nc.id) < len(ix.entries) && (ix.entries[nc.id].indexed || ix.entries[nc.id].source != 0 || ix.entries[nc.id].sig != 0) {
		panic(fmt.Sprintf("correlate: comment %d inserted twice", nc.id))
	}
	for int(nc.id) >= len(ix.entries) {
		ix.entries = append(ix.entries, comEntry{})
		ix.dupParent = append(ix.dupParent, int32(len(ix.dupParent)))
		ix.storyParent = append(ix.storyParent, int32(len(ix.storyParent)))
	}
	e := &ix.entries[nc.id]
	e.source, e.disc, e.posted = nc.source, nc.disc, nc.posted
	if nc.body == "" {
		return // nothing to correlate; stays un-indexed and uncounted
	}
	e.sig = Simhash(nc.body)
	e.indexed = true

	clear(seen)
	for b := 0; b < numBands; b++ {
		key := band(e.sig, b)
		// Multi-probe: the exact band value plus every single-bit
		// variation. Signatures register only under exact values, so two
		// signatures whose band differs by <= 1 bit still meet — the
		// probe set that makes duplicate-tier recall a pigeonhole
		// guarantee (see the parameter block in simhash.go).
		ix.probe(b, key, e, nc.id, seen)
		for bit := 0; bit < bandBits; bit++ {
			ix.probe(b, key^(1<<uint(bit)), e, nc.id, seen)
		}
	}
	for b := 0; b < numBands; b++ {
		key := band(e.sig, b)
		ix.buckets[b][key] = append(ix.buckets[b][key], nc.id)
	}
	ix.corrBySource[nc.source]++
	if e.dup {
		ix.dupBySource[nc.source]++
	}
}

// probe scans one band bucket for candidates of the comment being
// inserted, writing duplicate verdicts and union-find edges for every
// in-tier hit. seen dedupes candidates across the insertion's 68 probes.
func (ix *Index) probe(b int, key uint16, e *comEntry, id int32, seen map[int32]struct{}) {
	for _, cand := range ix.buckets[b][key] {
		if _, dup := seen[cand]; dup {
			continue
		}
		seen[cand] = struct{}{}
		ce := &ix.entries[cand]
		h := hamming(e.sig, ce.sig)
		if h > StoryHamming {
			continue
		}
		if h <= DupHamming {
			if !e.dup && ce.source != e.source {
				e.dup = true
			}
			ix.dupUnion(id, cand)
			ix.storyUnion(id, cand)
		} else {
			ix.pending = append(ix.pending, edge{id, cand})
		}
	}
}

// find resolves a union-find root with path compression. The root of any
// component is always its minimum member ID (see union), so roots — and
// everything derived from them — are invariant under union order.
func find(parent []int32, x int32) int32 {
	root := x
	for parent[root] != root {
		root = parent[root]
	}
	for parent[x] != root {
		parent[x], x = root, parent[x]
	}
	return root
}

// dupUnion merges two duplicate-tier components.
func (ix *Index) dupUnion(a, b int32) {
	ra, rb := find(ix.dupParent, a), find(ix.dupParent, b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	ix.dupParent[rb] = ra
	ix.dupMerges++
}

// storyUnion merges two story-tier components, keeping the minimum ID as
// root and folding the loser's aggregates into the winner's cluster.
func (ix *Index) storyUnion(a, b int32) {
	ra, rb := find(ix.storyParent, a), find(ix.storyParent, b)
	if ra == rb {
		return
	}
	if ra > rb {
		ra, rb = rb, ra // ra wins: component roots are minimum member IDs
	}
	ix.storyParent[rb] = ra
	win, lose := ix.clusters[ra], ix.clusters[rb]
	switch {
	case win == nil && lose == nil:
		win = &cluster{members: []int32{ra, rb}}
		win.latest = maxI64(ix.entries[ra].posted, ix.entries[rb].posted)
		win.sources = insertSource(insertSource(nil, ix.entries[ra].source), ix.entries[rb].source)
		ix.clusters[ra] = win
	case lose == nil: // singleton rb joins ra's cluster
		win.members = append(win.members, rb)
		win.sources = insertSource(win.sources, ix.entries[rb].source)
		win.latest = maxI64(win.latest, ix.entries[rb].posted)
	case win == nil: // singleton ra absorbs rb's cluster (ra keeps the root)
		lose.members = append(lose.members, ra)
		lose.sources = insertSource(lose.sources, ix.entries[ra].source)
		lose.latest = maxI64(lose.latest, ix.entries[ra].posted)
		ix.clusters[ra] = lose
		delete(ix.clusters, rb)
	default: // two real clusters: small-to-large member merge
		if len(lose.members) > len(win.members) {
			win.members, lose.members = lose.members, win.members
		}
		win.members = append(win.members, lose.members...)
		for _, s := range lose.sources {
			win.sources = insertSource(win.sources, s)
		}
		win.latest = maxI64(win.latest, lose.latest)
		delete(ix.clusters, rb)
	}
	ix.touched[ra] = true
	if ix.touched[rb] {
		delete(ix.touched, rb)
	}
	ix.dead[rb] = true
}

// insertSource adds a source ID to a sorted-unique set.
func insertSource(set []int32, s int32) []int32 {
	i := sort.Search(len(set), func(i int) bool { return set[i] >= s })
	if i < len(set) && set[i] == s {
		return set
	}
	set = append(set, 0)
	copy(set[i+1:], set[i:])
	set[i] = s
	return set
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
