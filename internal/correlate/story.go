package correlate

import (
	"sort"
	"time"
)

// Story is one cross-source cluster: at least two distinct sources whose
// comments fall within the story tier of one another. Its identity is the
// minimum member comment ID — stable across fold orders, tick coalescing
// and shard counts, because it depends only on the final near-dup graph.
type Story struct {
	// ID is the minimum member comment ID (the union-find root).
	ID int
	// SourceID and DiscussionID locate the representative discussion: the
	// one carrying the story's earliest (root) comment.
	SourceID     int
	DiscussionID int
	// Sources lists the distinct member source IDs, ascending.
	Sources []int
	// Size is the number of member comments.
	Size int
	// Latest is the freshest member comment's timestamp.
	Latest time.Time
}

// StorySet is an immutable snapshot of the story clusters at one corpus
// version. Sets materialize copy-on-write: stories untouched by a tick
// are shared (by pointer) with the previous set.
//
//informer:snapshot
type StorySet struct {
	byID    map[int]*Story
	ordered []*Story // Latest desc, ID asc
}

func emptyStorySet() *StorySet {
	return &StorySet{byID: map[int]*Story{}}
}

// Len reports the number of stories.
func (ss *StorySet) Len() int {
	if ss == nil {
		return 0
	}
	return len(ss.ordered)
}

// Story returns the story with the given id, if any.
func (ss *StorySet) Story(id int) (*Story, bool) {
	if ss == nil {
		return nil, false
	}
	st, ok := ss.byID[id]
	return st, ok
}

// All returns the stories ordered by freshness (Latest desc, ID asc).
// The returned slice is shared — callers must not mutate it.
func (ss *StorySet) All() []*Story {
	if ss == nil {
		return nil
	}
	return ss.ordered
}

// StoryCursor is a keyset-pagination position: the (Latest, ID) key of
// the last story already served.
type StoryCursor struct {
	LatestNano int64
	ID         int
}

// StoryQuery selects and paginates stories.
type StoryQuery struct {
	// Limit caps the page size; <=0 means 10.
	Limit int
	// MinSources keeps only stories spanning at least this many distinct
	// sources; values below 2 mean 2 (a story is cross-source by
	// definition).
	MinSources int
	// After resumes strictly after a cursor position.
	After *StoryCursor
}

// StoryPage is one page of query results.
type StoryPage struct {
	Stories []*Story
	// Total counts every story matching the filter, not just this page.
	Total int
	// Next resumes after the last story of this page; nil when exhausted.
	Next *StoryCursor
}

// Query pages through the set in freshness order (Latest desc, ID asc)
// with keyset semantics: a cursor names a position, not an offset, so
// pages stay stable as older stories change behind the reader.
func (ss *StorySet) Query(q StoryQuery) *StoryPage {
	limit := q.Limit
	if limit <= 0 {
		limit = 10
	}
	minSources := q.MinSources
	if minSources < 2 {
		minSources = 2
	}
	page := &StoryPage{}
	if ss == nil {
		return page
	}
	started := q.After == nil
	for _, st := range ss.ordered {
		if len(st.Sources) < minSources {
			continue
		}
		page.Total++
		if !started {
			n := st.Latest.UnixNano()
			if n < q.After.LatestNano || (n == q.After.LatestNano && st.ID > q.After.ID) {
				started = true
			} else {
				continue
			}
		}
		if len(page.Stories) < limit {
			page.Stories = append(page.Stories, st)
		} else if page.Next == nil {
			last := page.Stories[len(page.Stories)-1]
			page.Next = &StoryCursor{LatestNano: last.Latest.UnixNano(), ID: last.ID}
		}
	}
	return page
}

// materialize publishes the next StorySet from the index's touched/dead
// root bookkeeping, sharing untouched stories with prev, then resets the
// bookkeeping. Member source sets are already sorted; the ordered slice
// is fully re-sorted (story counts are small — hundreds, not hundreds of
// thousands).
//
//informer:mutates builds the successor snapshot before it is published
func (ix *Index) materialize(prev *StorySet) *StorySet {
	if len(ix.touched) == 0 && len(ix.dead) == 0 {
		return prev
	}
	next := &StorySet{byID: make(map[int]*Story, len(prev.byID))}
	for id, st := range prev.byID {
		next.byID[id] = st
	}
	for r := range ix.dead {
		delete(next.byID, int(r))
	}
	for r := range ix.touched {
		if ix.dead[r] {
			continue
		}
		cl := ix.clusters[r]
		if cl == nil || len(cl.sources) < 2 {
			// Touched but single-source (e.g. a source near-duplicating
			// itself): a cluster, not a story.
			delete(next.byID, int(r))
			continue
		}
		next.byID[int(r)] = ix.buildStory(r, cl)
	}
	next.ordered = make([]*Story, 0, len(next.byID))
	for _, st := range next.byID {
		next.ordered = append(next.ordered, st)
	}
	// Map-range order above is scheduling-dependent; the sort below is
	// total (Latest desc, then ID asc), so no map order escapes.
	sort.Slice(next.ordered, func(i, j int) bool {
		a, b := next.ordered[i], next.ordered[j]
		if !a.Latest.Equal(b.Latest) {
			return a.Latest.After(b.Latest)
		}
		return a.ID < b.ID
	})
	ix.touched = map[int32]bool{}
	ix.dead = map[int32]bool{}
	return next
}

// buildStory renders a cluster rooted at r as its immutable Story. The
// cluster's source set is already sorted ascending (insertSource keeps it
// so), which the Story inherits.
func (ix *Index) buildStory(r int32, cl *cluster) *Story {
	sources := make([]int, len(cl.sources))
	for i, s := range cl.sources {
		sources[i] = int(s)
	}
	return &Story{
		ID:           int(r),
		SourceID:     int(ix.entries[r].source),
		DiscussionID: int(ix.entries[r].disc),
		Sources:      sources,
		Size:         len(cl.members),
		Latest:       time.Unix(0, cl.latest).UTC(),
	}
}
