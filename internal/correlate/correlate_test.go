package correlate

import (
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
)

func TestSimhashBasics(t *testing.T) {
	if Simhash("") != 0 {
		t.Error("empty text should hash to 0")
	}
	a := Simhash("the cathedral square fills with tourists every morning")
	if a == 0 {
		t.Fatal("non-empty text hashed to 0")
	}
	if b := Simhash("the cathedral square fills with tourists every morning"); b != a {
		t.Error("identical text must produce identical signatures")
	}
	// Case and punctuation do not change the token stream.
	if b := Simhash("The cathedral square fills, with tourists — every morning!"); b != a {
		t.Errorf("tokenization should ignore case and punctuation: %x vs %x", a, Simhash("The cathedral square fills, with tourists — every morning!"))
	}
	// A single-token lead keeps every original shingle and adds one: the
	// signatures stay within the story tier while a different text does
	// not.
	c := Simhash("rt: the cathedral square fills with tourists every morning")
	if h := hamming(a, c); h > StoryHamming {
		t.Errorf("prefixed copy at hamming %d, want <= %d", h, StoryHamming)
	}
	d := Simhash("flight delays cascade through the northern hub all winter")
	if h := hamming(a, d); h <= StoryHamming {
		t.Errorf("unrelated text at hamming %d, want > %d", h, StoryHamming)
	}
}

func TestBandsCoverSignature(t *testing.T) {
	sig := uint64(0xdeadbeefcafef00d)
	var rebuilt uint64
	for i := 0; i < numBands; i++ {
		rebuilt |= uint64(band(sig, i)) << (uint(i) * bandBits)
	}
	if rebuilt != sig {
		t.Fatalf("bands lose bits: %x != %x", rebuilt, sig)
	}
}

// syndicatedWorld generates a corpus with known cross-source copies.
func syndicatedWorld(seed int64, n int) *webgen.World {
	return webgen.Generate(webgen.Config{
		Seed: seed, NumSources: n, CommentText: true, SyndicationRate: 0.25,
	})
}

// TestVerbatimCopiesFlagged pins the guaranteed-recall tier: every
// comment whose body is an exact copy of an earlier comment on another
// source (hamming 0 <= DupHamming, pigeonhole-covered by the bands) must
// carry the duplicate verdict.
func TestVerbatimCopiesFlagged(t *testing.T) {
	w := syndicatedWorld(1201, 60)
	ix := NewIndex()
	ix.Build(w)

	type first struct {
		source int
		id     int
	}
	firstBody := map[string]first{}
	type com struct {
		id     int
		source int
		body   string
	}
	var all []com
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				all = append(all, com{c.ID, s.ID, c.Body})
			}
		}
	}
	// Ground truth in ID order: the index's "earlier" axis.
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].id < all[i].id {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	wantDups := 0
	for _, c := range all {
		if c.body == "" {
			continue
		}
		if f, ok := firstBody[c.body]; ok {
			if f.source != c.source {
				wantDups++
				if !ix.entries[c.id].dup {
					t.Errorf("comment %d (source %d) is a verbatim copy of earlier material on source %d but carries no dup verdict", c.id, c.source, f.source)
				}
			}
			continue
		}
		firstBody[c.body] = first{c.source, c.id}
	}
	if wantDups == 0 {
		t.Fatal("fixture produced no verbatim cross-source copies; raise SyndicationRate or the world size")
	}
	st := ix.Stats()
	if st.Duplicates < wantDups {
		t.Errorf("Stats().Duplicates = %d, want >= %d verbatim copies", st.Duplicates, wantDups)
	}
	if st.StoryClusters == 0 {
		t.Error("no story clusters over a syndicating corpus")
	}
}

// TestNearDuplicateRecallPinned pins the two tiers on a fixed seed:
// syndicated copies — half verbatim, half lead-prefixed paraphrases —
// are overwhelmingly caught, as a duplicate verdict (guaranteed within
// DupHamming by the multi-probe) or at least as story-cluster membership
// (the approximate story tier). This pins that the fixture's paraphrases
// actually land inside the tiers rather than silently drifting out.
func TestNearDuplicateRecallPinned(t *testing.T) {
	w := syndicatedWorld(1202, 60)
	ix := NewIndex()
	ix.Build(w)
	syndicated, dupFlagged, correlated := 0, 0, 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if !c.Syndicated {
					continue
				}
				syndicated++
				if ix.entries[c.ID].dup {
					dupFlagged++
					correlated++
					continue
				}
				if ix.clusters[find(ix.storyParent, int32(c.ID))] != nil {
					correlated++
				}
			}
		}
	}
	if syndicated == 0 {
		t.Fatal("fixture produced no syndicated comments")
	}
	if ratio := float64(dupFlagged) / float64(syndicated); ratio < 0.6 {
		t.Errorf("dup tier caught %d/%d syndicated comments (%.0f%%), want >= 60%%", dupFlagged, syndicated, 100*ratio)
	}
	if ratio := float64(correlated) / float64(syndicated); ratio < 0.8 {
		t.Errorf("tiers caught %d/%d syndicated comments (%.0f%%), want >= 80%%", correlated, syndicated, 100*ratio)
	}
}

// cloneStories renders a StorySet as comparable data.
func cloneStories(ss *StorySet) []Story {
	out := make([]Story, 0, ss.Len())
	for _, st := range ss.All() {
		out = append(out, *st)
	}
	return out
}

// TestIncrementalFoldMatchesRebuild is the package-level equivalence
// core: folding each tick's delta into a live index yields bit-identical
// stories, stats and per-source counters to rebuilding from scratch on
// the ticked world.
func TestIncrementalFoldMatchesRebuild(t *testing.T) {
	w := syndicatedWorld(1203, 50)
	live := NewIndex()
	live.Build(w)

	for tick := 0; tick < 6; tick++ {
		var delta *webgen.Delta
		if tick%2 == 0 {
			w, delta = webgen.Advance(w, 1, int64(3000+tick))
		} else {
			w, delta = webgen.AdvanceSameDay(w, int64(3000+tick), nil)
		}
		live.Fold(w, delta)

		fresh := NewIndex()
		fresh.Build(w)

		if ls, fs := live.Stats(), fresh.Stats(); ls != fs {
			t.Fatalf("tick %d: stats diverge: fold %+v rebuild %+v", tick, ls, fs)
		}
		if !reflect.DeepEqual(cloneStories(live.Stories()), cloneStories(fresh.Stories())) {
			t.Fatalf("tick %d: story sets diverge", tick)
		}
		for _, s := range w.Sources {
			lc, ld := live.Counts(s.ID)
			fc, fd := fresh.Counts(s.ID)
			if lc != fc || ld != fd {
				t.Fatalf("tick %d: source %d counters diverge: fold (%d,%d) rebuild (%d,%d)", tick, s.ID, lc, ld, fc, fd)
			}
		}
	}
}

// TestStorySetCOWSharing pins the copy-on-write contract: a story no
// tick touched rides into the next snapshot by pointer, and the previous
// snapshot is never mutated.
func TestStorySetCOWSharing(t *testing.T) {
	w := syndicatedWorld(1204, 50)
	ix := NewIndex()
	prev := ix.Build(w)
	prevClone := cloneStories(prev)

	w, delta := webgen.AdvanceSameDay(w, 4001, nil)
	next := ix.Fold(w, delta)
	if next == prev {
		t.Skip("tick touched no stories; sharing is trivially total")
	}
	if !reflect.DeepEqual(cloneStories(prev), prevClone) {
		t.Fatal("fold mutated the published previous StorySet")
	}
	shared := 0
	for _, st := range prev.All() {
		if cur, ok := next.Story(st.ID); ok && cur == st {
			shared++
		}
	}
	if prev.Len() > 4 && shared == 0 {
		t.Errorf("no stories shared by pointer across a sparse tick (%d before, %d after)", prev.Len(), next.Len())
	}
}

func TestStoryQueryPagination(t *testing.T) {
	w := syndicatedWorld(1205, 80)
	ix := NewIndex()
	ss := ix.Build(w)
	full := ss.Query(StoryQuery{Limit: ss.Len() + 1})
	if full.Total != len(full.Stories) {
		t.Fatalf("unbounded query: total %d != %d stories", full.Total, len(full.Stories))
	}
	if full.Total < 3 {
		t.Skipf("only %d stories; fixture too small to paginate", full.Total)
	}
	// Ordered: latest desc, ID asc.
	for i := 1; i < len(full.Stories); i++ {
		a, b := full.Stories[i-1], full.Stories[i]
		if a.Latest.Before(b.Latest) || (a.Latest.Equal(b.Latest) && a.ID >= b.ID) {
			t.Fatalf("listing out of order at %d: (%v,%d) then (%v,%d)", i, a.Latest, a.ID, b.Latest, b.ID)
		}
	}
	// A keyset walk in pages of 2 reassembles the full listing.
	var walked []*Story
	q := StoryQuery{Limit: 2}
	for {
		pg := ss.Query(q)
		if pg.Total != full.Total {
			t.Fatalf("page total %d != %d", pg.Total, full.Total)
		}
		walked = append(walked, pg.Stories...)
		if pg.Next == nil {
			break
		}
		q.After = pg.Next
	}
	if !reflect.DeepEqual(walked, full.Stories) {
		t.Fatalf("keyset walk reassembled %d stories, full listing has %d (or order diverges)", len(walked), len(full.Stories))
	}
	// MinSources filters.
	for _, st := range ss.Query(StoryQuery{Limit: 1000, MinSources: 3}).Stories {
		if len(st.Sources) < 3 {
			t.Errorf("story %d has %d sources under MinSources=3", st.ID, len(st.Sources))
		}
	}
	// Nil-safe.
	var nilSet *StorySet
	if pg := nilSet.Query(StoryQuery{}); pg.Total != 0 || len(pg.Stories) != 0 || pg.Next != nil {
		t.Error("nil StorySet should answer an empty page")
	}
}

// TestSyndicationRateZeroDrawsNothing pins the generator gate: with the
// rate off, worlds are byte-identical to pre-correlation streams (the
// gate must not consume randomness).
func TestSyndicationRateZeroDrawsNothing(t *testing.T) {
	a := webgen.Generate(webgen.Config{Seed: 7, NumSources: 30, CommentText: true})
	b := webgen.Generate(webgen.Config{Seed: 7, NumSources: 30, CommentText: true, SyndicationRate: 0})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SyndicationRate 0 changed the generated world")
	}
}
