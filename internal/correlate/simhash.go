// Package correlate is the correlation engine: near-duplicate detection
// over comment text and incremental same-story clustering (DESIGN.md
// section 14). It answers the observer-facing gap the paper's
// source-in-isolation ranking leaves open — "seven sources, one story" —
// with the two-stage shape of a production dedup pipeline:
//
//  1. a cheap per-item near-duplicate index: a 64-bit simhash over
//     shingled comment text, bucketed by band so candidate lookup probes
//     O(1) buckets instead of the corpus;
//  2. incremental micro-clusters: a union-find over the near-dup graph at
//     the tight duplicate tier, plus a batch merge pass at the looser
//     story tier folded in at every publish.
//
// The index is delta-aware: Corpus.Advance / DrainTick hand it only the
// tick's new comments (Fold), and the repaired index, clusters and
// per-source originality counters are bit-identical to a from-scratch
// Build over the same world — the property the randomized equivalence
// suite pins. Everything here is deterministic: no clocks, no randomness,
// and no map iteration order ever escapes into cluster or story identity
// (story IDs are minimum member comment IDs, invariant under fold order).
//
//informer:deterministic
package correlate

import "strings"

// Simhash parameters. 64-bit signatures are cut into 4 bands of 16 bits
// and candidate lookup is multi-probe: each band bucket is probed at its
// exact value and at every single-bit variation (4 x 17 = 68 O(1) map
// probes), while a signature registers only under its exact band values.
// By pigeonhole, two signatures within Hamming distance 7 have some band
// differing in at most one bit, so the probe set finds every candidate
// at the duplicate tier (<= 6) with guaranteed recall. The looser story
// tier (<= 12) is evaluated over the same candidates; a pair whose every
// band differs in two or more bits is invisible to it, which keeps
// lookup O(1) at the cost of an approximate — but deterministic —
// recall at the story tier. The tiers correspond to ~0.91 and ~0.81
// bitwise signature agreement (the "~0.90 dup / ~0.82 story" similarity
// tiers): on this generator's comment lengths (~15 words), a verbatim
// copy sits at distance 0 and an RT-style lead-prefixed copy
// perturbs roughly 4-10 bits, straddling the two tiers.
const (
	shingleSize = 3 // words per shingle
	numBands    = 4
	bandBits    = 64 / numBands

	// DupHamming is the near-duplicate tier: at most this many differing
	// signature bits makes two comments duplicates of one another.
	// Recall is guaranteed (DupHamming < numBands + probeBits*numBands).
	DupHamming = 6
	// StoryHamming is the looser same-story tier (approximate recall).
	StoryHamming = 12
)

// fnv64a hashes one shingle (FNV-1a, inlined to avoid per-shingle
// allocations in the hot Build/Fold path).
func fnv64a(parts []string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i, p := range parts {
		if i > 0 {
			h ^= ' '
			h *= prime64
		}
		for j := 0; j < len(p); j++ {
			h ^= uint64(p[j])
			h *= prime64
		}
	}
	return h
}

// tokenize lowercases and splits text into word tokens (letters and
// digits; everything else separates).
func tokenize(text string) []string {
	words := make([]string, 0, 32)
	start := -1
	flush := func(end int) {
		if start >= 0 {
			words = append(words, strings.ToLower(text[start:end]))
			start = -1
		}
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
		} else {
			flush(i)
		}
	}
	flush(len(text))
	return words
}

// Simhash computes the 64-bit simhash of a text over word shingles of
// shingleSize. Texts shorter than one shingle hash as a single shingle of
// whatever words they have; the empty text hashes to 0.
func Simhash(text string) uint64 {
	words := tokenize(text)
	if len(words) == 0 {
		return 0
	}
	var counts [64]int32
	accumulate := func(h uint64) {
		for b := 0; b < 64; b++ {
			if h&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	if len(words) < shingleSize {
		accumulate(fnv64a(words))
	} else {
		for i := 0; i+shingleSize <= len(words); i++ {
			accumulate(fnv64a(words[i : i+shingleSize]))
		}
	}
	var sig uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// hamming counts differing bits between two signatures.
func hamming(a, b uint64) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// band extracts the i-th 16-bit band of a signature.
func band(sig uint64, i int) uint16 {
	return uint16(sig >> (uint(i) * bandBits))
}
