package webgen

import (
	"testing"
	"time"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 42, NumSources: 40, NumUsers: 120})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, NumSources: 20})
	b := Generate(Config{Seed: 7, NumSources: 20})
	if len(a.Sources) != len(b.Sources) {
		t.Fatal("source counts differ")
	}
	for i := range a.Sources {
		sa, sb := a.Sources[i], b.Sources[i]
		if sa.Name != sb.Name || sa.Latent != sb.Latent || len(sa.Discussions) != len(sb.Discussions) {
			t.Fatalf("source %d differs between same-seed worlds", i)
		}
		for j := range sa.Discussions {
			da, db := sa.Discussions[j], sb.Discussions[j]
			if da.Title != db.Title || len(da.Comments) != len(db.Comments) || !da.Opened.Equal(db.Opened) {
				t.Fatalf("discussion %d/%d differs", i, j)
			}
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1, NumSources: 20})
	b := Generate(Config{Seed: 2, NumSources: 20})
	same := true
	for i := range a.Sources {
		if a.Sources[i].Latent != b.Sources[i].Latent {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical latents")
	}
}

func TestWorldShape(t *testing.T) {
	w := smallWorld(t)
	if len(w.Sources) != 40 {
		t.Fatalf("sources = %d", len(w.Sources))
	}
	if len(w.Users) != 120 {
		t.Fatalf("users = %d", len(w.Users))
	}
	if len(w.Categories) != 6 {
		t.Fatalf("categories = %v", w.Categories)
	}
	totalDisc, totalCom := 0, 0
	for _, s := range w.Sources {
		if len(s.Discussions) == 0 {
			t.Errorf("source %d has no discussions", s.ID)
		}
		totalDisc += len(s.Discussions)
		totalCom += s.CommentCount()
	}
	if totalDisc < 40 || totalCom == 0 {
		t.Errorf("world too sparse: %d discussions, %d comments", totalDisc, totalCom)
	}
}

func TestTimelineBounds(t *testing.T) {
	w := smallWorld(t)
	for _, s := range w.Sources {
		if !s.Founded.Before(w.Config.Start) {
			t.Errorf("source %d founded %v after world start %v", s.ID, s.Founded, w.Config.Start)
		}
		for _, d := range s.Discussions {
			if d.Opened.Before(w.Config.Start) || d.Opened.After(w.Config.End) {
				t.Errorf("discussion %d opened outside timeline: %v", d.ID, d.Opened)
			}
			for _, c := range d.Comments {
				if c.Posted.Before(d.Opened) {
					t.Errorf("comment %d posted before its discussion opened", c.ID)
				}
				if c.Posted.After(w.Config.End) {
					t.Errorf("comment %d posted after world end", c.ID)
				}
			}
		}
	}
}

func TestLinkGraphConsistency(t *testing.T) {
	w := smallWorld(t)
	// Every outbound edge must appear in the target's inbound list, and
	// vice versa.
	inCount := map[[2]int]int{}
	for _, s := range w.Sources {
		seen := map[int]bool{}
		for _, tgt := range s.Outbound {
			if tgt == s.ID {
				t.Errorf("self link on source %d", s.ID)
			}
			if seen[tgt] {
				t.Errorf("duplicate outbound link %d -> %d", s.ID, tgt)
			}
			seen[tgt] = true
			inCount[[2]int{s.ID, tgt}]++
		}
	}
	for _, s := range w.Sources {
		for _, from := range s.Inbound {
			if inCount[[2]int{from, s.ID}] != 1 {
				t.Errorf("inbound %d -> %d without matching outbound", from, s.ID)
			}
		}
	}
	totalIn, totalOut := 0, 0
	for _, s := range w.Sources {
		totalIn += len(s.Inbound)
		totalOut += len(s.Outbound)
	}
	if totalIn != totalOut {
		t.Errorf("inbound %d != outbound %d", totalIn, totalOut)
	}
}

func TestTrafficLatentDrivesInboundLinks(t *testing.T) {
	w := Generate(Config{Seed: 9, NumSources: 300})
	// Split sources by traffic latent; the high half should attract more
	// inbound links on average (preferential attachment).
	var hi, lo float64
	var nHi, nLo int
	for _, s := range w.Sources {
		if s.Latent.Traffic > 0 {
			hi += float64(len(s.Inbound))
			nHi++
		} else {
			lo += float64(len(s.Inbound))
			nLo++
		}
	}
	if nHi == 0 || nLo == 0 {
		t.Skip("degenerate split")
	}
	if hi/float64(nHi) <= lo/float64(nLo) {
		t.Errorf("high-traffic sources average %.2f inbound vs %.2f for low-traffic",
			hi/float64(nHi), lo/float64(nLo))
	}
}

func TestParticipationLatentDrivesVolume(t *testing.T) {
	w := Generate(Config{Seed: 10, NumSources: 300})
	var hi, lo float64
	var nHi, nLo int
	for _, s := range w.Sources {
		if s.Latent.Participation > 0 {
			hi += float64(s.CommentCount())
			nHi++
		} else {
			lo += float64(s.CommentCount())
			nLo++
		}
	}
	if hi/float64(nHi) <= lo/float64(nLo) {
		t.Errorf("participation latent not driving comment volume: %.1f vs %.1f",
			hi/float64(nHi), lo/float64(nLo))
	}
}

func TestCommentTextToggle(t *testing.T) {
	w := Generate(Config{Seed: 11, NumSources: 10})
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.Body != "" {
					t.Fatal("CommentText=false must not generate bodies")
				}
			}
		}
	}
	w = Generate(Config{Seed: 11, NumSources: 10, CommentText: true})
	withBody := 0
	total := 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				total++
				if c.Body != "" {
					withBody++
				}
			}
		}
	}
	if withBody != total {
		t.Errorf("only %d/%d comments have bodies", withBody, total)
	}
}

func TestSpammersBehaviour(t *testing.T) {
	w := Generate(Config{Seed: 12, NumSources: 50, NumUsers: 400, SpamRate: 0.2})
	nSpam := 0
	for _, u := range w.Users {
		if u.Spammer {
			nSpam++
			if u.Influence > 0 {
				t.Errorf("spammer %d has positive influence %v", u.ID, u.Influence)
			}
		}
	}
	if nSpam < 40 || nSpam > 140 {
		t.Errorf("spam count %d far from expected 80", nSpam)
	}
}

func TestMaxOpenDiscussions(t *testing.T) {
	w := smallWorld(t)
	max := 0
	for _, s := range w.Sources {
		if n := s.OpenDiscussions(); n > max {
			max = n
		}
	}
	if w.MaxOpenDiscussions != max {
		t.Errorf("MaxOpenDiscussions = %d, want %d", w.MaxOpenDiscussions, max)
	}
	if max == 0 {
		t.Error("no open discussions in world")
	}
}

func TestAccessors(t *testing.T) {
	w := smallWorld(t)
	if w.Source(0) == nil || w.Source(-1) != nil || w.Source(len(w.Sources)) != nil {
		t.Error("Source accessor bounds wrong")
	}
	if w.User(0) == nil || w.User(-1) != nil || w.User(len(w.Users)) != nil {
		t.Error("User accessor bounds wrong")
	}
	if w.Days() < 179 || w.Days() > 181 {
		t.Errorf("default timeline %v days, want ~180", w.Days())
	}
}

func TestCustomTimeline(t *testing.T) {
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	w := Generate(Config{Seed: 13, NumSources: 5, Start: start})
	if !w.Config.End.Equal(start.AddDate(0, 0, 180)) {
		t.Errorf("end = %v", w.Config.End)
	}
}

func TestCategoriesAssigned(t *testing.T) {
	w := smallWorld(t)
	known := map[string]bool{"": true}
	for _, c := range w.Categories {
		known[c] = true
	}
	offTopic, total := 0, 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			total++
			if !known[d.Category] {
				t.Errorf("unknown category %q", d.Category)
			}
			if d.Category == "" {
				offTopic++
			}
		}
	}
	if offTopic == 0 {
		t.Error("expected some off-topic discussions")
	}
	if float64(offTopic) > 0.5*float64(total) {
		t.Errorf("too many off-topic: %d/%d", offTopic, total)
	}
}

func TestSourceKindString(t *testing.T) {
	if Blog.String() != "blog" || Forum.String() != "forum" ||
		ReviewSite.String() != "review-site" || SocialNetwork.String() != "social-network" {
		t.Error("SourceKind strings wrong")
	}
	if SourceKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestGeoTaggedComments(t *testing.T) {
	w := smallWorld(t)
	geo := 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.Geo != nil {
					geo++
					if c.Geo.Lat < 35 || c.Geo.Lat > 50 || c.Geo.Lon < 5 || c.Geo.Lon > 20 {
						t.Errorf("geo point out of Italy-ish bounds: %+v", c.Geo)
					}
				}
			}
		}
	}
	if geo == 0 {
		t.Error("no geo-tagged comments generated")
	}
}
