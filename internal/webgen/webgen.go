// Package webgen generates the synthetic Web 2.0 corpus that substitutes
// for the live blogs and forums crawled in the paper (substitution S1 in
// DESIGN.md). Each source is driven by three latent factors — traffic,
// participation and engagement — whose separation is exactly what the
// paper's factor analysis (Table 3) rediscovered in real data; the
// generator adds heavy-tailed noise so the statistical machinery still has
// work to do.
//
// Everything is deterministic given Config.Seed.
package webgen

import (
	"fmt"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// SourceKind classifies a Web 2.0 source, mirroring the paper's "blogs and
// forums" plus the review sites of Section 6.
type SourceKind int

const (
	Blog SourceKind = iota
	Forum
	ReviewSite
	SocialNetwork
)

// String implements fmt.Stringer.
func (k SourceKind) String() string {
	switch k {
	case Blog:
		return "blog"
	case Forum:
		return "forum"
	case ReviewSite:
		return "review-site"
	case SocialNetwork:
		return "social-network"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// Latent holds the per-source latent factors on a standard-normal scale.
// They are hidden drivers: quality measures must be computed from the
// observable corpus, never from these directly (experiments use them only
// to verify recovery).
type Latent struct {
	Traffic       float64 // drives visitors, page views, inbound links, traffic rank
	Participation float64 // drives discussion and comment volume
	Engagement    float64 // drives time-on-site and (inversely) bounce rate
}

// GeoPoint is a WGS84 coordinate used for the geo-localized posts that
// Figure 1's map viewers display.
type GeoPoint struct {
	Lat, Lon float64
}

// Comment is a user contribution inside a discussion. Social feedback
// counters model the paper's generic "interaction" notion (likes, replies,
// reads).
type Comment struct {
	ID        int
	UserID    int
	Posted    time.Time
	Body      string // empty unless Config.CommentText
	Polarity  int    // ground-truth sentiment: -1, 0, +1
	Tags      []string
	Replies   int // replies received from other users
	Feedbacks int // likes / ratings received
	Reads     int // times read by other users
	Geo       *GeoPoint
	// Syndicated marks a comment whose body copies (verbatim or with a
	// short lead-in) an earlier comment on another source; SyndicatedFrom
	// is that source's ID. Ground truth for the correlation engine — the
	// dedup index never reads these fields.
	Syndicated     bool
	SyndicatedFrom int
}

// Discussion is a thread (blog post with comments, forum topic, or review
// page).
type Discussion struct {
	ID       int
	SourceID int
	OpenerID int // user who opened the thread
	Title    string
	Category string // one of the world's categories, or "" when off-topic
	Opened   time.Time
	Open     bool
	Tags     []string
	Comments []*Comment
}

// Source is one Web 2.0 site.
type Source struct {
	ID          int
	Name        string
	Host        string // stable virtual hostname, e.g. "src0042.web20.test"
	Kind        SourceKind
	Description string
	Founded     time.Time
	Latent      Latent
	// FeedSubscribers substitutes the paper's Feedburner subscription count.
	FeedSubscribers int
	// Outbound is the list of source IDs this source links to; Inbound is
	// the reverse adjacency, filled by the generator.
	Outbound []int
	Inbound  []int
	// Locations the source focuses on (used by domain-of-interest checks).
	Locations   []string
	Discussions []*Discussion
}

// User is a member of the global contributor pool shared by all sources.
type User struct {
	ID      int
	Name    string
	Joined  time.Time
	Spammer bool
	// Latent drivers for contributor-level behaviour.
	Activity  float64 // volume of contributions
	Influence float64 // replies/feedback attracted per contribution
	Breadth   float64 // number of categories the user touches
}

// World is the full synthetic corpus.
//
//informer:snapshot
type World struct {
	Config     Config
	Categories []string
	Sources    []*Source
	Users      []*User
	// MaxOpenDiscussions is the open-discussion count of the largest
	// source, the paper's normalisation base for "number of open
	// discussions compared to largest Web blog/forum".
	MaxOpenDiscussions int
}

// Config controls world generation.
type Config struct {
	Seed       int64
	NumSources int
	NumUsers   int
	// Categories defaults to the six Anholt tourism categories.
	Categories []string
	// Locations defaults to a small set of city names; the first is the
	// "home" location most content refers to.
	Locations []string
	// Start and End bound the content timeline. Zero values default to a
	// 180-day window ending 2011-10-01 (the paper's era).
	Start, End time.Time
	// CommentText controls whether full comment bodies are generated.
	// Counting-based measures need no text; sentiment and crawling
	// experiments do.
	CommentText bool
	// SpamRate is the fraction of users behaving as spammers/bots
	// (high absolute activity, near-zero attracted interaction), used by
	// the influencer-robustness ablation.
	SpamRate float64
	// MeanDiscussions scales discussion volume per source (default 12).
	MeanDiscussions float64
	// MeanComments scales comments per discussion (default 5).
	MeanComments float64
	// ChurnScale scales the per-day activity intensity of Advance ticks
	// without touching the initial corpus volume (default 1). Monitoring
	// benchmarks use small values to model slow daily churn over a large
	// corpus.
	ChurnScale float64
	// SyndicationRate is the probability that a generated comment body is
	// replaced by a copy of an earlier comment from another source
	// (roughly half verbatim, half prefixed with a short lead-in) —
	// deterministic ground truth for near-duplicate detection. Requires
	// CommentText; 0 disables injection and leaves every existing stream
	// untouched (the gate draws no random numbers when off).
	SyndicationRate float64
}

// withDefaults fills unset Config fields.
func (c Config) withDefaults() Config {
	if c.NumSources == 0 {
		c.NumSources = 100
	}
	if c.NumUsers == 0 {
		c.NumUsers = c.NumSources * 2
	}
	if len(c.Categories) == 0 {
		c.Categories = textgen.Categories()
	}
	if len(c.Locations) == 0 {
		c.Locations = []string{
			"milan", "rome", "florence", "venice", "turin", "naples",
			"bologna", "genoa", "verona", "palermo", "bari", "trieste",
			"padua", "parma", "catania", "cagliari", "perugia", "pisa",
		}
	}
	if c.Start.IsZero() {
		c.End = time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
		c.Start = c.End.AddDate(0, 0, -180)
	} else if c.End.IsZero() {
		c.End = c.Start.AddDate(0, 0, 180)
	}
	if c.MeanDiscussions == 0 {
		c.MeanDiscussions = 12
	}
	if c.MeanComments == 0 {
		c.MeanComments = 5
	}
	return c
}

// Days returns the length of the world's timeline in days.
func (w *World) Days() float64 {
	return w.Config.End.Sub(w.Config.Start).Hours() / 24
}

// Source returns the source with the given ID, or nil.
func (w *World) Source(id int) *Source {
	if id < 0 || id >= len(w.Sources) {
		return nil
	}
	return w.Sources[id]
}

// User returns the user with the given ID, or nil.
func (w *World) User(id int) *User {
	if id < 0 || id >= len(w.Users) {
		return nil
	}
	return w.Users[id]
}

// OpenDiscussions returns the number of open discussions of s.
func (s *Source) OpenDiscussions() int {
	n := 0
	for _, d := range s.Discussions {
		if d.Open {
			n++
		}
	}
	return n
}

// CommentCount returns the total number of comments across discussions.
func (s *Source) CommentCount() int {
	n := 0
	for _, d := range s.Discussions {
		n += len(d.Comments)
	}
	return n
}
