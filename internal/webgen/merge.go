package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// IDCursor carries the next free discussion and comment IDs across a run
// of per-source ticks, so each AdvanceSource call stays O(one source)
// instead of re-scanning the whole world for the ID frontier. NewIDCursor
// scans once; AdvanceSource advances the cursor in place as it mints IDs.
// Any tick NOT threaded through the cursor (Advance, AdvanceSameDay)
// invalidates it — re-scan with NewIDCursor afterwards, or the next
// AdvanceSource would mint duplicate IDs.
type IDCursor struct {
	NextDiscussionID int
	NextCommentID    int
}

// NewIDCursor scans the world once and returns a cursor positioned just
// past its highest discussion and comment IDs.
func NewIDCursor(w *World) *IDCursor {
	cur := &IDCursor{}
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			if d.ID >= cur.NextDiscussionID {
				cur.NextDiscussionID = d.ID + 1
			}
			for _, c := range d.Comments {
				if c.ID >= cur.NextCommentID {
					cur.NextCommentID = c.ID + 1
				}
			}
		}
	}
	return cur
}

// Clone returns an independent copy of the delta: the slices and dirty
// sets are fresh, while the Discussion and Comment pointees — immutable
// once published — stay shared. Use it before Merge when the original
// per-tick delta must stay intact (the accumulator clones its first
// pending delta so later folds never mutate a delta the caller kept).
func (d *Delta) Clone() *Delta {
	nd := &Delta{
		Days:              d.Days,
		OldEnd:            d.OldEnd,
		NewEnd:            d.NewEnd,
		dirtySources:      make(map[int]bool, len(d.dirtySources)),
		dirtyContributors: make(map[int]bool, len(d.dirtyContributors)),
	}
	if len(d.Discussions) > 0 {
		nd.Discussions = append([]*Discussion(nil), d.Discussions...)
		nd.discussionSources = append([]int(nil), d.discussionSources...)
	}
	if len(d.Comments) > 0 {
		nd.Comments = append([]DeltaComment(nil), d.Comments...)
	}
	for id := range d.dirtySources {
		nd.dirtySources[id] = true
	}
	for id := range d.dirtyContributors {
		nd.dirtyContributors[id] = true
	}
	return nd
}

// Merge folds next — the delta of the tick that immediately followed the
// receiver's — into d, leaving d describing the single spanning tick from
// d's old world to next's new world. It is the delta-level analogue of
// internal/deliver's queue coalescing and carries the same
// replay-equivalence proof shape:
//
//   - the timeline composes: Days add, OldEnd stays, NewEnd advances, so
//     EpochMoved() is true iff either operand moved the epoch — a
//     same-day delta folded into a day-moving one (in either order)
//     keeps reporting the movement;
//   - dirty source/contributor sets union (a source dirtied twice is
//     dirtied once);
//   - Discussions and Comments concatenate in tick order. d keeps its own
//     Discussion pointers: when next appended comments to a discussion d
//     opened, those comments appear exactly once — in next's Comments
//     entries (whose Discussion field is next's grown copy) — and never
//     inside d's original pointer, whose comment slice predates them. So
//     ForEachNewComment over the merged delta visits every comment of the
//     span exactly once, and NewCommentCount adds up instead of
//     double-counting.
//
// Consequently every delta consumer (UpdateRows dirty sets,
// ContributorIndex counters, scan staleness) sees the merged delta as
// bit-equivalent to replaying the two ticks back to back; the randomized
// merge-vs-replay suite in advance_test.go pins this.
//
// Merge panics if the deltas are not adjacent (d.NewEnd != next.OldEnd):
// folding non-consecutive ticks has no coherent meaning.
func (d *Delta) Merge(next *Delta) {
	if !d.NewEnd.Equal(next.OldEnd) {
		panic(fmt.Sprintf("webgen: Delta.Merge of non-adjacent deltas: have ...%s, next starts %s",
			d.NewEnd.Format(time.RFC3339), next.OldEnd.Format(time.RFC3339)))
	}
	d.Days += next.Days
	d.NewEnd = next.NewEnd
	d.Discussions = append(d.Discussions, next.Discussions...)
	d.discussionSources = append(d.discussionSources, next.discussionSources...)
	d.Comments = append(d.Comments, next.Comments...)
	if d.dirtySources == nil {
		d.dirtySources = map[int]bool{}
	}
	if d.dirtyContributors == nil {
		d.dirtyContributors = map[int]bool{}
	}
	for id := range next.dirtySources {
		d.dirtySources[id] = true
	}
	for id := range next.dirtyContributors {
		d.dirtyContributors[id] = true
	}
}

// AdvanceSource generates one source's worth of fresh activity WITHOUT
// moving the world's timeline: the chosen source may open new discussions
// (backdated into the final day of the unchanged window) and its existing
// open discussions collect new comments, while every other source — and
// Config.End — stays untouched. This is the per-source poll tick of the
// adaptive ingestion scheduler (internal/ingest): hot sources take many
// AdvanceSource ticks between assessment drains, the quiet tail takes
// none, and Delta.Merge coalesces the per-source deltas into one spanning
// delta for a single UpdateRows repair.
//
// Like Advance it is copy-on-write (the input world keeps serving
// concurrent readers) and deterministic per seed. cur, when non-nil,
// supplies and receives the ID frontier so a run of polls never re-scans
// the world; a nil cursor falls back to an internal scan. An unknown
// sourceID returns the input world unchanged with an empty delta.
//
//informer:mutates copy-on-write tick fills the successor world before it is published
func AdvanceSource(w *World, sourceID int, seed int64, cur *IDCursor) (*World, *Delta) {
	end := w.Config.End
	delta := &Delta{
		Days: 0, OldEnd: end, NewEnd: end,
		dirtySources:      map[int]bool{},
		dirtyContributors: map[int]bool{},
	}
	si := -1
	for i, s := range w.Sources {
		if s.ID == sourceID {
			si = i
			break
		}
	}
	if si < 0 {
		return w, delta
	}
	if cur == nil {
		cur = NewIDCursor(w)
	}
	s := w.Sources[si]

	rng := rand.New(rand.NewSource(seed))
	tg := textgen.NewFromRand(rng)
	userWeights := make([]float64, len(w.Users))
	for i, u := range w.Users {
		userWeights[i] = math.Exp(u.Activity)
	}
	userTable := newCumulative(userWeights)
	cats := w.Categories
	churn := w.Config.ChurnScale
	if churn == 0 {
		churn = 1
	}
	// One day's worth of new-discussion intensity, mirroring Advance's
	// participation scaling spread over the original timeline.
	dailyRate := churn * w.Config.MeanDiscussions * math.Exp(0.55*s.Latent.Participation) / w.Days()
	from := end.Add(-24 * time.Hour)
	span := end.Sub(from)

	// New discussions, backdated into the window's final day so timestamps
	// stay ordered without moving the epoch.
	var newDiscs []*Discussion
	nNew := poissonish(rng, dailyRate)
	for i := 0; i < nNew; i++ {
		cat := cats[rng.Intn(len(cats))]
		opened := from.Add(time.Duration(rng.Float64() * float64(span)))
		d := &Discussion{
			ID:       cur.NextDiscussionID,
			SourceID: s.ID,
			OpenerID: userTable.pick(rng),
			Title:    tg.Title(cat),
			Category: cat,
			Opened:   opened,
			Open:     true,
			Tags:     tg.Tags(cat, 1+rng.Intn(3)),
		}
		cur.NextDiscussionID++
		delta.dirtyContributors[d.OpenerID] = true
		nCom := poissonish(rng, churn*w.Config.MeanComments*math.Exp(0.5*s.Latent.Participation)*0.5)
		for c := 0; c < nCom; c++ {
			com := newAdvanceComment(rng, w, userTable, &cur.NextCommentID, opened, end.Sub(opened))
			if w.Config.CommentText {
				com.Body = tg.Comment(cat, com.Polarity, 0)
				maybeSyndicate(w, rng, tg, s.ID, com)
			}
			delta.dirtyContributors[com.UserID] = true
			d.Comments = append(d.Comments, com)
		}
		newDiscs = append(newDiscs, d)
	}

	// Fresh comments on this source's existing open discussions, posted
	// within the final day of the unchanged window (AdvanceSameDay's shape,
	// restricted to one source).
	var grown map[int]*Discussion
	for di, d := range s.Discussions {
		if !d.Open || d.Opened.After(end) {
			continue
		}
		extra := poissonish(rng, churn*0.2*math.Exp(0.5*s.Latent.Participation))
		if extra == 0 {
			continue
		}
		cfrom := from
		if d.Opened.After(cfrom) {
			cfrom = d.Opened
		}
		nd := &Discussion{}
		*nd = *d
		nd.Comments = make([]*Comment, len(d.Comments), len(d.Comments)+extra)
		copy(nd.Comments, d.Comments)
		for c := 0; c < extra; c++ {
			com := newAdvanceComment(rng, w, userTable, &cur.NextCommentID, cfrom, end.Sub(cfrom))
			if w.Config.CommentText && d.Category != "" {
				com.Body = tg.Comment(d.Category, com.Polarity, 0)
				maybeSyndicate(w, rng, tg, s.ID, com)
			}
			nd.Comments = append(nd.Comments, com)
			delta.dirtyContributors[com.UserID] = true
			delta.Comments = append(delta.Comments, DeltaComment{SourceID: s.ID, Discussion: nd, Comment: com})
		}
		if grown == nil {
			grown = map[int]*Discussion{}
		}
		grown[di] = nd
	}

	if len(newDiscs) == 0 && len(grown) == 0 {
		return w, delta
	}
	ns := &Source{}
	*ns = *s
	ns.Discussions = make([]*Discussion, 0, len(s.Discussions)+len(newDiscs))
	for di, d := range s.Discussions {
		if nd, ok := grown[di]; ok {
			ns.Discussions = append(ns.Discussions, nd)
		} else {
			ns.Discussions = append(ns.Discussions, d)
		}
	}
	ns.Discussions = append(ns.Discussions, newDiscs...)

	nw := &World{
		Config:             w.Config,
		Categories:         w.Categories,
		Users:              w.Users,
		Sources:            make([]*Source, len(w.Sources)),
		MaxOpenDiscussions: w.MaxOpenDiscussions,
	}
	copy(nw.Sources, w.Sources)
	nw.Sources[si] = ns
	// Discussions never close, so only the polled source can raise the max.
	if n := ns.OpenDiscussions(); n > nw.MaxOpenDiscussions {
		nw.MaxOpenDiscussions = n
	}
	delta.dirtySources[s.ID] = true
	for _, d := range newDiscs {
		delta.Discussions = append(delta.Discussions, d)
		delta.discussionSources = append(delta.discussionSources, s.ID)
	}
	return nw, delta
}
