package webgen

import (
	"math/rand"
	"testing"
)

// worldCommentIDs collects every comment ID in the world.
func worldCommentIDs(w *World) map[int]bool {
	ids := map[int]bool{}
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				ids[c.ID] = true
			}
		}
	}
	return ids
}

func TestAdvanceSourceTouchesOnlyTarget(t *testing.T) {
	w := Generate(Config{Seed: 81, NumSources: 40, NumUsers: 120})
	end := w.Config.End
	target := w.Sources[7].ID

	var nw *World
	var delta *Delta
	cur := NewIDCursor(w)
	for seed := int64(0); seed < 50; seed++ {
		nw, delta = AdvanceSource(w, target, 9000+seed, cur)
		if !delta.Empty() {
			break
		}
	}
	if delta.Empty() {
		t.Fatal("no seed in 50 produced activity for the target source")
	}
	if delta.EpochMoved() || !nw.Config.End.Equal(end) {
		t.Fatal("AdvanceSource must not move the epoch")
	}
	dirty := delta.DirtySourceIDs()
	if len(dirty) != 1 || dirty[0] != target {
		t.Fatalf("dirty sources = %v, want [%d]", dirty, target)
	}
	for i, s := range nw.Sources {
		if s.ID == target {
			if s == w.Sources[i] {
				t.Fatal("dirty source shares its struct with the input world")
			}
			continue
		}
		if s != w.Sources[i] {
			t.Fatalf("untouched source %d was copied", s.ID)
		}
	}
	// Invariants: unique IDs, ordered timestamps, MaxOpenDiscussions.
	comIDs := map[int]bool{}
	discIDs := map[int]bool{}
	maxOpen := 0
	for _, s := range nw.Sources {
		open := 0
		for _, d := range s.Discussions {
			if discIDs[d.ID] {
				t.Fatalf("duplicate discussion ID %d", d.ID)
			}
			discIDs[d.ID] = true
			if d.Open {
				open++
			}
			if d.Opened.After(end) {
				t.Errorf("discussion %d opened after the unchanged end", d.ID)
			}
			for _, c := range d.Comments {
				if comIDs[c.ID] {
					t.Fatalf("duplicate comment ID %d", c.ID)
				}
				comIDs[c.ID] = true
				if c.Posted.Before(d.Opened) || c.Posted.After(end) {
					t.Errorf("comment %d outside [opened, end]", c.ID)
				}
			}
		}
		if open > maxOpen {
			maxOpen = open
		}
	}
	if nw.MaxOpenDiscussions != maxOpen {
		t.Errorf("MaxOpenDiscussions = %d, want %d", nw.MaxOpenDiscussions, maxOpen)
	}
}

func TestAdvanceSourceUnknownIDIsNoop(t *testing.T) {
	w := Generate(Config{Seed: 82, NumSources: 5})
	nw, delta := AdvanceSource(w, 999, 1, nil)
	if nw != w {
		t.Fatal("unknown source must return the input world")
	}
	if !delta.Empty() || delta.EpochMoved() {
		t.Fatal("unknown source must produce an empty delta")
	}
}

// TestAdvanceSourceCursorMatchesScan pins that threading one IDCursor
// through a run of polls mints exactly the IDs an internal re-scan would.
func TestAdvanceSourceCursorMatchesScan(t *testing.T) {
	a := Generate(Config{Seed: 83, NumSources: 20, NumUsers: 60})
	b := Generate(Config{Seed: 83, NumSources: 20, NumUsers: 60})
	cur := NewIDCursor(a)
	for i := 0; i < 8; i++ {
		id := a.Sources[(i*3)%len(a.Sources)].ID
		a, _ = AdvanceSource(a, id, int64(400+i), cur)
		b, _ = AdvanceSource(b, id, int64(400+i), nil)
	}
	aIDs, bIDs := worldCommentIDs(a), worldCommentIDs(b)
	if len(aIDs) != len(bIDs) {
		t.Fatalf("cursor run minted %d comment IDs, scan run %d", len(aIDs), len(bIDs))
	}
	for id := range aIDs {
		if !bIDs[id] {
			t.Fatalf("comment ID %d minted only with the cursor", id)
		}
	}
}

// TestMergeEpochFromEitherOperand is the satellite bugfix pin: a same-day
// delta folded into a day-moving one — in either order — must keep
// reporting the epoch movement, with the span's timeline composed.
func TestMergeEpochFromEitherOperand(t *testing.T) {
	w := Generate(Config{Seed: 84, NumSources: 30, NumUsers: 90})

	// Day-moving then same-day.
	w1, dMove := Advance(w, 3, 85)
	w2, dSame := AdvanceSameDay(w1, 86, nil)
	merged := dMove.Clone()
	merged.Merge(dSame)
	if !merged.EpochMoved() {
		t.Fatal("day-moving + same-day lost EpochMoved")
	}
	if merged.Days != 3 || !merged.OldEnd.Equal(w.Config.End) || !merged.NewEnd.Equal(w2.Config.End) {
		t.Fatalf("merged span = %d days %v..%v", merged.Days, merged.OldEnd, merged.NewEnd)
	}

	// Same-day then day-moving.
	w1b, dSameFirst := AdvanceSameDay(w, 87, nil)
	w2b, dMoveSecond := Advance(w1b, 2, 88)
	merged2 := dSameFirst.Clone()
	merged2.Merge(dMoveSecond)
	if !merged2.EpochMoved() {
		t.Fatal("same-day + day-moving lost EpochMoved")
	}
	if merged2.Days != 2 || !merged2.OldEnd.Equal(w.Config.End) || !merged2.NewEnd.Equal(w2b.Config.End) {
		t.Fatalf("merged span = %d days %v..%v", merged2.Days, merged2.OldEnd, merged2.NewEnd)
	}

	// Same-day + same-day stays unmoved.
	w1c, dA := AdvanceSameDay(w, 89, nil)
	_, dB := AdvanceSameDay(w1c, 90, nil)
	merged3 := dA.Clone()
	merged3.Merge(dB)
	if merged3.EpochMoved() {
		t.Fatal("two same-day deltas must not report EpochMoved")
	}
}

func TestMergeCloneIndependence(t *testing.T) {
	w := Generate(Config{Seed: 91, NumSources: 20, NumUsers: 60})
	w1, d1 := Advance(w, 2, 92)
	_, d2 := AdvanceSameDay(w1, 93, nil)

	beforeDirty := len(d1.DirtySourceIDs())
	beforeComments := d1.NewCommentCount()
	beforeDiscs := len(d1.Discussions)
	merged := d1.Clone()
	merged.Merge(d2)
	if len(d1.DirtySourceIDs()) != beforeDirty || d1.NewCommentCount() != beforeComments ||
		len(d1.Discussions) != beforeDiscs || d1.EpochMoved() != true {
		t.Fatal("Merge through a clone mutated the original delta")
	}
	if merged.NewCommentCount() != beforeComments+d2.NewCommentCount() {
		t.Fatalf("merged comments = %d, want %d", merged.NewCommentCount(), beforeComments+d2.NewCommentCount())
	}
}

func TestMergeNonAdjacentPanics(t *testing.T) {
	w := Generate(Config{Seed: 94, NumSources: 10})
	w1, d1 := Advance(w, 2, 95)
	w2, _ := Advance(w1, 2, 96)
	_, d3 := Advance(w2, 2, 97)
	defer func() {
		if recover() == nil {
			t.Fatal("merging non-adjacent deltas must panic")
		}
	}()
	d1.Merge(d3) // skips the w1->w2 tick
}

// TestMergeMatchesReplay is the randomized merge-vs-replay equivalence
// suite: fold a random run of day-moving, same-day and per-source ticks
// into one spanning delta and cross-check every consumer-visible facet —
// dirty sets, timeline, per-comment/per-discussion visits — against both
// the per-tick replay and a brute-force diff of the two worlds. This is
// the proof obligation behind the ingest accumulator: consumers applying
// the merged delta must see exactly what N sequential applications saw.
func TestMergeMatchesReplay(t *testing.T) {
	for run := 0; run < 12; run++ {
		rng := rand.New(rand.NewSource(int64(1000 + run*17)))
		w0 := Generate(Config{
			Seed:       int64(500 + run),
			NumSources: 25 + rng.Intn(20),
			NumUsers:   80 + rng.Intn(60),
		})
		w := w0
		cur := NewIDCursor(w)

		var merged *Delta
		var deltas []*Delta
		nTicks := 3 + rng.Intn(5)
		for i := 0; i < nTicks; i++ {
			var d *Delta
			switch rng.Intn(4) {
			case 0: // day-moving tick
				w, d = Advance(w, 1+rng.Intn(3), rng.Int63())
				cur = NewIDCursor(w) // global tick mints IDs outside the cursor
			case 1: // same-day world-wide tick
				w, d = AdvanceSameDay(w, rng.Int63(), nil)
				cur = NewIDCursor(w) // non-cursor tick invalidates the cursor
			default: // per-source polls, biased hot
				id := w.Sources[rng.Intn(1+len(w.Sources)/4)].ID
				w, d = AdvanceSource(w, id, rng.Int63(), cur)
			}
			deltas = append(deltas, d)
			if merged == nil {
				merged = d.Clone()
			} else {
				merged.Merge(d)
			}
		}

		// Timeline composition.
		wantDays, wantMoved := 0, false
		for _, d := range deltas {
			wantDays += d.Days
			wantMoved = wantMoved || d.EpochMoved()
		}
		if merged.Days != wantDays || merged.EpochMoved() != wantMoved {
			t.Fatalf("run %d: merged span %d days moved=%v, want %d/%v",
				run, merged.Days, merged.EpochMoved(), wantDays, wantMoved)
		}
		if !merged.OldEnd.Equal(w0.Config.End) || !merged.NewEnd.Equal(w.Config.End) {
			t.Fatalf("run %d: merged window %v..%v, want %v..%v",
				run, merged.OldEnd, merged.NewEnd, w0.Config.End, w.Config.End)
		}

		// Dirty sets are the union of the per-tick sets.
		wantDirty, wantUsers := map[int]bool{}, map[int]bool{}
		for _, d := range deltas {
			for _, id := range d.DirtySourceIDs() {
				wantDirty[id] = true
			}
			for _, id := range d.DirtyContributorIDs() {
				wantUsers[id] = true
			}
		}
		gotDirty := merged.DirtySourceIDs()
		if len(gotDirty) != len(wantDirty) {
			t.Fatalf("run %d: merged dirty sources = %d, want %d", run, len(gotDirty), len(wantDirty))
		}
		for _, id := range gotDirty {
			if !wantDirty[id] {
				t.Fatalf("run %d: source %d dirty in merge but in no tick", run, id)
			}
		}
		gotUsers := merged.DirtyContributorIDs()
		if len(gotUsers) != len(wantUsers) {
			t.Fatalf("run %d: merged dirty contributors = %d, want %d", run, len(gotUsers), len(wantUsers))
		}

		// Every comment of the span is visited exactly once (the
		// double-counting hazard: a later tick appending to a discussion an
		// earlier merged tick opened), and matches the brute-force world
		// diff.
		wantNew := map[int]bool{}
		for id := range worldCommentIDs(w) {
			wantNew[id] = true
		}
		for id := range worldCommentIDs(w0) {
			delete(wantNew, id)
		}
		seen := map[int]int{}
		merged.ForEachNewComment(func(sourceID int, disc *Discussion, c *Comment) {
			seen[c.ID]++
			if disc == nil || disc.SourceID != sourceID {
				t.Fatalf("run %d: comment %d carries a mismatched discussion", run, c.ID)
			}
		})
		if len(seen) != len(wantNew) {
			t.Fatalf("run %d: merged delta visits %d distinct comments, world diff has %d",
				run, len(seen), len(wantNew))
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("run %d: comment %d visited %d times (double-counted)", run, id, n)
			}
			if !wantNew[id] {
				t.Fatalf("run %d: comment %d visited but not new in the world diff", run, id)
			}
		}
		if merged.NewCommentCount() != len(wantNew) {
			t.Fatalf("run %d: NewCommentCount = %d, want %d", run, merged.NewCommentCount(), len(wantNew))
		}

		// Every discussion opened during the span is visited exactly once.
		wantDiscs := 0
		for _, d := range deltas {
			wantDiscs += len(d.Discussions)
		}
		seenDiscs := map[int]int{}
		merged.ForEachNewDiscussion(func(sourceID int, disc *Discussion) {
			seenDiscs[disc.ID]++
			if disc.SourceID != sourceID {
				t.Fatalf("run %d: discussion %d under wrong source %d", run, disc.ID, sourceID)
			}
		})
		if len(seenDiscs) != wantDiscs {
			t.Fatalf("run %d: merged delta visits %d discussions, ticks opened %d", run, len(seenDiscs), wantDiscs)
		}
		for id, n := range seenDiscs {
			if n != 1 {
				t.Fatalf("run %d: discussion %d visited %d times", run, id, n)
			}
		}
	}
}
