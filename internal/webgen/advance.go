package webgen

import (
	"math"
	"math/rand"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// Advance extends the world's timeline by the given number of days,
// generating fresh activity: new discussions open on the more participated
// sources and existing open discussions collect new comments. This is the
// substrate for the paper's monitoring scenario — re-crawling and
// re-assessing sources as "the size of this information base and its pace
// of change" evolve — and for exercising the crawler's conditional
// re-fetch path (only sources with new activity change their pages).
//
// Advance is deterministic given the seed and preserves all generator
// invariants: IDs stay globally unique, timestamps stay ordered within the
// (new) timeline, and MaxOpenDiscussions is recomputed.
func Advance(w *World, days int, seed int64) {
	if days <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	tg := textgen.NewFromRand(rng)
	oldEnd := w.Config.End
	newEnd := oldEnd.AddDate(0, 0, days)
	span := newEnd.Sub(oldEnd)

	nextDiscID, nextComID := 0, 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			if d.ID >= nextDiscID {
				nextDiscID = d.ID + 1
			}
			for _, c := range d.Comments {
				if c.ID >= nextComID {
					nextComID = c.ID + 1
				}
			}
		}
	}

	userWeights := make([]float64, len(w.Users))
	for i, u := range w.Users {
		userWeights[i] = math.Exp(u.Activity)
	}
	userTable := newCumulative(userWeights)
	cats := w.Categories

	dailyRate := func(s *Source) float64 {
		// New-discussion intensity mirrors the original generator's
		// participation scaling, spread over the original timeline.
		return w.Config.MeanDiscussions * math.Exp(0.55*s.Latent.Participation) / w.Days()
	}

	for _, s := range w.Sources {
		// New discussions for this window.
		nNew := poissonish(rng, dailyRate(s)*float64(days))
		for i := 0; i < nNew; i++ {
			cat := cats[rng.Intn(len(cats))]
			opened := oldEnd.Add(time.Duration(rng.Float64() * float64(span)))
			d := &Discussion{
				ID:       nextDiscID,
				SourceID: s.ID,
				OpenerID: userTable.pick(rng),
				Title:    tg.Title(cat),
				Category: cat,
				Opened:   opened,
				Open:     true,
				Tags:     tg.Tags(cat, 1+rng.Intn(3)),
			}
			nextDiscID++
			nCom := poissonish(rng, w.Config.MeanComments*math.Exp(0.5*s.Latent.Participation)*0.5)
			for c := 0; c < nCom; c++ {
				author := userTable.pick(rng)
				u := w.Users[author]
				com := &Comment{
					ID:        nextComID,
					UserID:    author,
					Posted:    opened.Add(time.Duration(rng.Float64() * float64(newEnd.Sub(opened)))),
					Polarity:  samplePolarity(rng),
					Replies:   poissonish(rng, 0.8*math.Exp(0.6*u.Influence)),
					Feedbacks: poissonish(rng, 1.2*math.Exp(0.7*u.Influence)),
					Reads:     poissonish(rng, 15*math.Exp(0.5*u.Influence)),
				}
				nextComID++
				if w.Config.CommentText {
					com.Body = tg.Comment(cat, com.Polarity, 0)
				}
				d.Comments = append(d.Comments, com)
			}
			s.Discussions = append(s.Discussions, d)
		}

		// Fresh comments on existing open discussions, concentrated on
		// lively sources.
		for _, d := range s.Discussions {
			if !d.Open || d.Opened.After(oldEnd) {
				continue
			}
			extra := poissonish(rng, 0.2*math.Exp(0.5*s.Latent.Participation))
			for c := 0; c < extra; c++ {
				author := userTable.pick(rng)
				u := w.Users[author]
				com := &Comment{
					ID:        nextComID,
					UserID:    author,
					Posted:    oldEnd.Add(time.Duration(rng.Float64() * float64(span))),
					Polarity:  samplePolarity(rng),
					Replies:   poissonish(rng, 0.8*math.Exp(0.6*u.Influence)),
					Feedbacks: poissonish(rng, 1.2*math.Exp(0.7*u.Influence)),
					Reads:     poissonish(rng, 15*math.Exp(0.5*u.Influence)),
				}
				nextComID++
				if w.Config.CommentText && d.Category != "" {
					com.Body = tg.Comment(d.Category, com.Polarity, 0)
				}
				d.Comments = append(d.Comments, com)
			}
		}
	}

	w.Config.End = newEnd
	w.MaxOpenDiscussions = 0
	for _, s := range w.Sources {
		if n := s.OpenDiscussions(); n > w.MaxOpenDiscussions {
			w.MaxOpenDiscussions = n
		}
	}
}
