package webgen

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// DeltaComment is one comment appended to a pre-existing discussion during
// an Advance tick.
type DeltaComment struct {
	SourceID int
	// Discussion is the post-tick discussion the comment belongs to (its
	// Category drives contributor accounting).
	Discussion *Discussion
	Comment    *Comment
}

// Delta describes exactly what one Advance tick changed, so downstream
// consumers (record building, quality matrices, facade caches) can update
// incrementally instead of re-deriving the whole corpus. A tick only ever
// appends content — existing discussions, comments, users and the link
// graph are immutable — so a Delta is purely additive.
type Delta struct {
	// Days is the tick length; OldEnd/NewEnd bound the new activity window.
	Days           int
	OldEnd, NewEnd time.Time
	// Discussions lists the discussions opened this tick (their initial
	// comments ride inside them and are NOT repeated in Comments).
	Discussions []*Discussion
	// discussionSources[i] is the source ID of Discussions[i].
	discussionSources []int
	// Comments lists the comments appended to pre-existing discussions.
	Comments []DeltaComment

	dirtySources      map[int]bool
	dirtyContributors map[int]bool
}

// Empty reports whether the tick changed nothing at all — no new content
// and no timeline movement.
func (d *Delta) Empty() bool {
	return len(d.Discussions) == 0 && len(d.Comments) == 0 && d.NewEnd.Equal(d.OldEnd)
}

// EpochMoved reports whether the tick moved the observation instant; when
// true, time-sensitive measures change for every record even if the
// record's own content did not.
func (d *Delta) EpochMoved() bool { return !d.NewEnd.Equal(d.OldEnd) }

// NewCommentCount counts every comment the tick created, including those
// inside newly opened discussions.
func (d *Delta) NewCommentCount() int {
	n := len(d.Comments)
	for _, disc := range d.Discussions {
		n += len(disc.Comments)
	}
	return n
}

// DirtySourceIDs returns the IDs of sources whose content changed,
// ascending.
func (d *Delta) DirtySourceIDs() []int {
	return sortedKeys(d.dirtySources)
}

// DirtyContributorIDs returns the IDs of users who opened a discussion or
// authored a comment this tick, ascending.
func (d *Delta) DirtyContributorIDs() []int {
	return sortedKeys(d.dirtyContributors)
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ForEachNewDiscussion visits every discussion opened this tick, in
// generation order.
func (d *Delta) ForEachNewDiscussion(fn func(sourceID int, disc *Discussion)) {
	for i, disc := range d.Discussions {
		fn(d.discussionSources[i], disc)
	}
}

// ForEachNewComment visits every comment created this tick — both the
// comments inside newly opened discussions and those appended to existing
// ones — in generation order.
func (d *Delta) ForEachNewComment(fn func(sourceID int, disc *Discussion, c *Comment)) {
	for i, disc := range d.Discussions {
		for _, c := range disc.Comments {
			fn(d.discussionSources[i], disc, c)
		}
	}
	for _, dc := range d.Comments {
		fn(dc.SourceID, dc.Discussion, dc.Comment)
	}
}

// Advance extends the world's timeline by the given number of days,
// generating fresh activity: new discussions open on the more participated
// sources and existing open discussions collect new comments. This is the
// substrate for the paper's monitoring scenario — re-crawling and
// re-assessing sources as "the size of this information base and its pace
// of change" evolve — and for exercising the crawler's conditional
// re-fetch path (only sources with new activity change their pages).
//
// Advance is copy-on-write: it returns a NEW world sharing every untouched
// Source, Discussion and Comment with the input, which stays valid and
// immutable — concurrent readers of the old world are never disturbed (the
// substrate of the facade's snapshot swap). The returned Delta records
// exactly what changed. When days <= 0 the input world is returned as is
// with an empty Delta.
//
// Advance is deterministic given the seed and preserves all generator
// invariants: IDs stay globally unique, timestamps stay ordered within the
// (new) timeline, and MaxOpenDiscussions is recomputed.
//
//informer:mutates copy-on-write tick fills the successor world before it is published
func Advance(w *World, days int, seed int64) (*World, *Delta) {
	if days <= 0 {
		return w, &Delta{OldEnd: w.Config.End, NewEnd: w.Config.End,
			dirtySources: map[int]bool{}, dirtyContributors: map[int]bool{}}
	}
	rng := rand.New(rand.NewSource(seed))
	tg := textgen.NewFromRand(rng)
	oldEnd := w.Config.End
	newEnd := oldEnd.AddDate(0, 0, days)
	span := newEnd.Sub(oldEnd)
	delta := &Delta{
		Days: days, OldEnd: oldEnd, NewEnd: newEnd,
		dirtySources:      map[int]bool{},
		dirtyContributors: map[int]bool{},
	}

	nextDiscID, nextComID := 0, 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			if d.ID >= nextDiscID {
				nextDiscID = d.ID + 1
			}
			for _, c := range d.Comments {
				if c.ID >= nextComID {
					nextComID = c.ID + 1
				}
			}
		}
	}

	userWeights := make([]float64, len(w.Users))
	for i, u := range w.Users {
		userWeights[i] = math.Exp(u.Activity)
	}
	userTable := newCumulative(userWeights)
	cats := w.Categories
	churn := w.Config.ChurnScale
	if churn == 0 {
		churn = 1
	}

	dailyRate := func(s *Source) float64 {
		// New-discussion intensity mirrors the original generator's
		// participation scaling, spread over the original timeline.
		return churn * w.Config.MeanDiscussions * math.Exp(0.55*s.Latent.Participation) / w.Days()
	}

	nw := &World{
		Config:     w.Config,
		Categories: w.Categories,
		Users:      w.Users,
		Sources:    make([]*Source, len(w.Sources)),
	}
	nw.Config.End = newEnd

	for si, s := range w.Sources {
		// New discussions for this window.
		var newDiscs []*Discussion
		nNew := poissonish(rng, dailyRate(s)*float64(days))
		for i := 0; i < nNew; i++ {
			cat := cats[rng.Intn(len(cats))]
			opened := oldEnd.Add(time.Duration(rng.Float64() * float64(span)))
			d := &Discussion{
				ID:       nextDiscID,
				SourceID: s.ID,
				OpenerID: userTable.pick(rng),
				Title:    tg.Title(cat),
				Category: cat,
				Opened:   opened,
				Open:     true,
				Tags:     tg.Tags(cat, 1+rng.Intn(3)),
			}
			nextDiscID++
			delta.dirtyContributors[d.OpenerID] = true
			nCom := poissonish(rng, churn*w.Config.MeanComments*math.Exp(0.5*s.Latent.Participation)*0.5)
			for c := 0; c < nCom; c++ {
				com := newAdvanceComment(rng, w, userTable, &nextComID, opened, newEnd.Sub(opened))
				if w.Config.CommentText {
					com.Body = tg.Comment(cat, com.Polarity, 0)
					// Donors come from the pre-tick world: stable, fully
					// populated, and every donor ID precedes the copy's.
					maybeSyndicate(w, rng, tg, s.ID, com)
				}
				delta.dirtyContributors[com.UserID] = true
				d.Comments = append(d.Comments, com)
			}
			newDiscs = append(newDiscs, d)
		}

		// Fresh comments on existing open discussions, concentrated on
		// lively sources. Touched discussions are copied, never mutated, so
		// the input world keeps serving concurrent readers.
		var grown map[int]*Discussion // index in s.Discussions -> copy
		for di, d := range s.Discussions {
			if !d.Open || d.Opened.After(oldEnd) {
				continue
			}
			extra := poissonish(rng, churn*0.2*math.Exp(0.5*s.Latent.Participation))
			if extra == 0 {
				continue
			}
			nd := &Discussion{}
			*nd = *d
			nd.Comments = make([]*Comment, len(d.Comments), len(d.Comments)+extra)
			copy(nd.Comments, d.Comments)
			for c := 0; c < extra; c++ {
				com := newAdvanceComment(rng, w, userTable, &nextComID, oldEnd, span)
				if w.Config.CommentText && d.Category != "" {
					com.Body = tg.Comment(d.Category, com.Polarity, 0)
					maybeSyndicate(w, rng, tg, s.ID, com)
				}
				nd.Comments = append(nd.Comments, com)
				delta.dirtyContributors[com.UserID] = true
				delta.Comments = append(delta.Comments, DeltaComment{SourceID: s.ID, Discussion: nd, Comment: com})
			}
			if grown == nil {
				grown = map[int]*Discussion{}
			}
			grown[di] = nd
		}

		if len(newDiscs) == 0 && len(grown) == 0 {
			nw.Sources[si] = s // untouched: share the pointer
			continue
		}
		ns := &Source{}
		*ns = *s
		ns.Discussions = make([]*Discussion, 0, len(s.Discussions)+len(newDiscs))
		for di, d := range s.Discussions {
			if nd, ok := grown[di]; ok {
				ns.Discussions = append(ns.Discussions, nd)
			} else {
				ns.Discussions = append(ns.Discussions, d)
			}
		}
		ns.Discussions = append(ns.Discussions, newDiscs...)
		nw.Sources[si] = ns
		delta.dirtySources[s.ID] = true
		for _, d := range newDiscs {
			delta.Discussions = append(delta.Discussions, d)
			delta.discussionSources = append(delta.discussionSources, s.ID)
		}
	}

	nw.MaxOpenDiscussions = 0
	for _, s := range nw.Sources {
		if n := s.OpenDiscussions(); n > nw.MaxOpenDiscussions {
			nw.MaxOpenDiscussions = n
		}
	}
	return nw, delta
}

// AdvanceSameDay generates fresh comment activity WITHOUT moving the
// world's timeline: existing open discussions collect new comments posted
// inside the last day of the unchanged window, no discussions open or
// close, and Config.End stays put — so the returned delta reports
// EpochMoved() == false and every time-sensitive measure input is
// untouched. This is the sparse-churn tick of the monitoring scenario (a
// re-crawl between daily epochs) and the substrate of the incremental
// spine-repair path, which only engages when the epoch holds still.
//
// onlySources, when non-nil, restricts the churn to the listed source IDs —
// the lever the sharded-corpus tests use to dirty exactly one chosen
// shard. Like Advance it is copy-on-write and deterministic per seed.
//
//informer:mutates copy-on-write tick fills the successor world before it is published
func AdvanceSameDay(w *World, seed int64, onlySources []int) (*World, *Delta) {
	rng := rand.New(rand.NewSource(seed))
	tg := textgen.NewFromRand(rng)
	end := w.Config.End
	delta := &Delta{
		Days: 0, OldEnd: end, NewEnd: end,
		dirtySources:      map[int]bool{},
		dirtyContributors: map[int]bool{},
	}
	var only map[int]bool
	if onlySources != nil {
		only = make(map[int]bool, len(onlySources))
		for _, id := range onlySources {
			only[id] = true
		}
	}

	nextComID := 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.ID >= nextComID {
					nextComID = c.ID + 1
				}
			}
		}
	}
	userWeights := make([]float64, len(w.Users))
	for i, u := range w.Users {
		userWeights[i] = math.Exp(u.Activity)
	}
	userTable := newCumulative(userWeights)
	churn := w.Config.ChurnScale
	if churn == 0 {
		churn = 1
	}

	nw := &World{
		Config:             w.Config,
		Categories:         w.Categories,
		Users:              w.Users,
		Sources:            make([]*Source, len(w.Sources)),
		MaxOpenDiscussions: w.MaxOpenDiscussions, // no discussion opens or closes
	}
	for si, s := range w.Sources {
		if only != nil && !only[s.ID] {
			nw.Sources[si] = s
			continue
		}
		// Fresh comments on existing open discussions, posted within the
		// final day of the unchanged window so timestamps stay ordered.
		var grown map[int]*Discussion
		for di, d := range s.Discussions {
			if !d.Open || d.Opened.After(end) {
				continue
			}
			extra := poissonish(rng, churn*0.2*math.Exp(0.5*s.Latent.Participation))
			if extra == 0 {
				continue
			}
			from := end.Add(-24 * time.Hour)
			if d.Opened.After(from) {
				from = d.Opened
			}
			nd := &Discussion{}
			*nd = *d
			nd.Comments = make([]*Comment, len(d.Comments), len(d.Comments)+extra)
			copy(nd.Comments, d.Comments)
			for c := 0; c < extra; c++ {
				com := newAdvanceComment(rng, w, userTable, &nextComID, from, end.Sub(from))
				if w.Config.CommentText && d.Category != "" {
					com.Body = tg.Comment(d.Category, com.Polarity, 0)
					maybeSyndicate(w, rng, tg, s.ID, com)
				}
				nd.Comments = append(nd.Comments, com)
				delta.dirtyContributors[com.UserID] = true
				delta.Comments = append(delta.Comments, DeltaComment{SourceID: s.ID, Discussion: nd, Comment: com})
			}
			if grown == nil {
				grown = map[int]*Discussion{}
			}
			grown[di] = nd
		}
		if len(grown) == 0 {
			nw.Sources[si] = s
			continue
		}
		ns := &Source{}
		*ns = *s
		ns.Discussions = make([]*Discussion, len(s.Discussions))
		for di, d := range s.Discussions {
			if nd, ok := grown[di]; ok {
				ns.Discussions[di] = nd
			} else {
				ns.Discussions[di] = d
			}
		}
		nw.Sources[si] = ns
		delta.dirtySources[s.ID] = true
	}
	return nw, delta
}

// newAdvanceComment draws one fresh comment, posted uniformly inside
// [from, from+window].
func newAdvanceComment(rng *rand.Rand, w *World, userTable *cumulative, nextComID *int, from time.Time, window time.Duration) *Comment {
	author := userTable.pick(rng)
	u := w.Users[author]
	com := &Comment{
		ID:        *nextComID,
		UserID:    author,
		Posted:    from.Add(time.Duration(rng.Float64() * float64(window))),
		Polarity:  samplePolarity(rng),
		Replies:   poissonish(rng, 0.8*math.Exp(0.6*u.Influence)),
		Feedbacks: poissonish(rng, 1.2*math.Exp(0.7*u.Influence)),
		Reads:     poissonish(rng, 15*math.Exp(0.5*u.Influence)),
	}
	*nextComID++
	return com
}
