package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/informing-observers/informer/internal/textgen"
)

// Generate builds a deterministic World from the configuration.
//
//informer:mutates constructor fills the world before it is published
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tg := textgen.NewFromRand(rng)

	w := &World{Config: cfg, Categories: append([]string(nil), cfg.Categories...)}

	genUsers(w, rng, tg)
	genSources(w, rng, tg)
	genLinkGraph(w, rng)
	genContent(w, rng, tg)

	for _, s := range w.Sources {
		if n := s.OpenDiscussions(); n > w.MaxOpenDiscussions {
			w.MaxOpenDiscussions = n
		}
	}
	return w
}

//informer:mutates generator stage filling the world under construction
func genUsers(w *World, rng *rand.Rand, tg *textgen.Generator) {
	cfg := w.Config
	w.Users = make([]*User, cfg.NumUsers)
	for i := range w.Users {
		u := &User{
			ID:        i,
			Name:      fmt.Sprintf("%s_%04d", tg.UserName(), i),
			Joined:    cfg.Start.AddDate(-2, 0, 0).Add(time.Duration(rng.Float64() * float64(cfg.End.Sub(cfg.Start.AddDate(-2, 0, 0))) * 0.9)),
			Activity:  rng.NormFloat64(),
			Influence: rng.NormFloat64(),
			Breadth:   rng.NormFloat64(),
		}
		if rng.Float64() < cfg.SpamRate {
			u.Spammer = true
			// Spammers and bots: hyperactive, but nobody reacts to them —
			// the asymmetry Section 3.2 argues lets relative measures
			// filter them out.
			u.Activity += 2.5
			u.Influence -= 3.5
		}
		w.Users[i] = u
	}
}

//informer:mutates generator stage filling the world under construction
func genSources(w *World, rng *rand.Rand, tg *textgen.Generator) {
	cfg := w.Config
	w.Sources = make([]*Source, cfg.NumSources)
	for i := range w.Sources {
		lat := Latent{
			Traffic:       rng.NormFloat64(),
			Participation: rng.NormFloat64(),
			Engagement:    rng.NormFloat64(),
		}
		kind := Blog
		switch r := rng.Float64(); {
		case r < 0.45:
			kind = Blog
		case r < 0.80:
			kind = Forum
		case r < 0.95:
			kind = ReviewSite
		default:
			kind = SocialNetwork
		}
		s := &Source{
			ID:              i,
			Name:            fmt.Sprintf("%s-%s-%03d", cfg.Locations[rng.Intn(len(cfg.Locations))], kind, i),
			Host:            fmt.Sprintf("src%04d.web20.test", i),
			Kind:            kind,
			Founded:         cfg.Start.AddDate(-(1 + rng.Intn(4)), 0, -rng.Intn(300)),
			Latent:          lat,
			FeedSubscribers: poissonish(rng, 40*math.Exp(1.1*lat.Traffic)),
		}
		// A source focuses on one home location plus occasionally a second
		// one, so location terms discriminate between sources in queries.
		home := rng.Intn(len(cfg.Locations))
		s.Locations = []string{cfg.Locations[home]}
		if rng.Float64() < 0.3 && len(cfg.Locations) > 1 {
			other := (home + 1 + rng.Intn(len(cfg.Locations)-1)) % len(cfg.Locations)
			s.Locations = append(s.Locations, cfg.Locations[other])
		}
		// Description mentions a couple of categories to seed the search
		// index.
		cat1 := cfg.Categories[rng.Intn(len(cfg.Categories))]
		cat2 := cfg.Categories[rng.Intn(len(cfg.Categories))]
		s.Description = tg.Sentence(cat1, 0) + " " + tg.Sentence(cat2, 0)
		w.Sources[i] = s
	}
}

// genLinkGraph wires outbound links with preferential attachment toward
// high-traffic sources, so that inbound-link counts become a noisy
// observable of the traffic latent (as they are on the real Web).
//
//informer:mutates generator stage filling the world under construction
func genLinkGraph(w *World, rng *rand.Rand) {
	n := len(w.Sources)
	if n < 2 {
		return
	}
	attract := make([]float64, n)
	for i, s := range w.Sources {
		attract[i] = math.Exp(0.9*s.Latent.Traffic + 0.4*rng.NormFloat64())
	}
	table := newCumulative(attract)
	for _, s := range w.Sources {
		out := poissonish(rng, 6)
		out = clampInt(out, 0, n-1)
		seen := map[int]bool{s.ID: true}
		for len(s.Outbound) < out {
			t := table.pick(rng)
			if seen[t] {
				// Collision on a popular target: skip rather than loop
				// forever on tiny worlds.
				if len(seen) >= n {
					break
				}
				seen[t] = true
				continue
			}
			seen[t] = true
			s.Outbound = append(s.Outbound, t)
		}
		sort.Ints(s.Outbound)
	}
	for _, s := range w.Sources {
		for _, t := range s.Outbound {
			w.Sources[t].Inbound = append(w.Sources[t].Inbound, s.ID)
		}
	}
}

// locationCoords maps the default location names to plausible coordinates
// for geo-tagged comments (Figure 1's map viewer).
var locationCoords = map[string]GeoPoint{
	"milan":    {45.4642, 9.1900},
	"rome":     {41.9028, 12.4964},
	"florence": {43.7696, 11.2558},
	"venice":   {45.4408, 12.3155},
	"turin":    {45.0703, 7.6869},
	"naples":   {40.8518, 14.2681},
	"bologna":  {44.4949, 11.3426},
	"genoa":    {44.4056, 8.9463},
	"verona":   {45.4384, 10.9916},
	"palermo":  {38.1157, 13.3615},
	"bari":     {41.1171, 16.8719},
	"trieste":  {45.6495, 13.7768},
	"padua":    {45.4064, 11.8768},
	"parma":    {44.8015, 10.3279},
	"catania":  {37.5079, 15.0830},
	"cagliari": {39.2238, 9.1217},
	"perugia":  {43.1107, 12.3908},
	"pisa":     {43.7228, 10.4017},
}

func genContent(w *World, rng *rand.Rand, tg *textgen.Generator) {
	cfg := w.Config
	cats := cfg.Categories
	days := w.Days()

	// Per-category author tables: a user may author in a category when the
	// category index falls inside their breadth-driven allowance. Weights
	// follow activity, so a small set of users dominates volume (Zipf-like
	// participation, as observed on real platforms).
	catUsers := make([][]int, len(cats))
	catWeights := make([][]float64, len(cats))
	for ci := range cats {
		for _, u := range w.Users {
			allowed := 1 + int(sigmoid(u.Breadth)*float64(len(cats)))
			// Users cover a contiguous window of categories starting at a
			// stable per-user offset, giving heterogeneous centrality.
			offset := u.ID % len(cats)
			in := false
			for k := 0; k < allowed; k++ {
				if (offset+k)%len(cats) == ci {
					in = true
					break
				}
			}
			if in {
				catUsers[ci] = append(catUsers[ci], u.ID)
				catWeights[ci] = append(catWeights[ci], math.Exp(u.Activity))
			}
		}
	}
	catTables := make([]*cumulative, len(cats))
	for ci := range cats {
		if len(catUsers[ci]) > 0 {
			catTables[ci] = newCumulative(catWeights[ci])
		}
	}
	allWeights := make([]float64, len(w.Users))
	for i, u := range w.Users {
		allWeights[i] = math.Exp(u.Activity)
	}
	allTable := newCumulative(allWeights)

	discID, comID := 0, 0
	for _, s := range w.Sources {
		// Focus: sources specialize in a small subset of categories (one
		// to three), which keeps topical queries discriminating.
		maxFocus := 3
		if maxFocus > len(cats) {
			maxFocus = len(cats)
		}
		nFocus := 1 + rng.Intn(maxFocus)
		focus := rng.Perm(len(cats))[:nFocus]
		// Per-source trait for tag richness (interpretability) and
		// off-topic rate (accuracy), independent of the three latents.
		tagRichness := 1 + 3*sigmoid(rng.NormFloat64())
		offTopicRate := 0.02 + 0.18*sigmoid(rng.NormFloat64()-1)

		nDisc := clampInt(poissonish(rng, cfg.MeanDiscussions*math.Exp(0.55*s.Latent.Participation)), 1, 250)
		for d := 0; d < nDisc; d++ {
			var cat string
			offTopic := rng.Float64() < offTopicRate
			if !offTopic {
				cat = cats[focus[rng.Intn(len(focus))]]
			}
			opened := cfg.Start.Add(time.Duration(rng.Float64() * days * float64(24*time.Hour)))
			var opener int
			ci := indexOf(cats, cat)
			if ci >= 0 && catTables[ci] != nil {
				opener = catUsers[ci][catTables[ci].pick(rng)]
			} else {
				opener = allTable.pick(rng)
			}
			disc := &Discussion{
				ID:       discID,
				SourceID: s.ID,
				OpenerID: opener,
				Opened:   opened,
				Open:     rng.Float64() < 0.7,
				Category: cat,
			}
			discID++
			if offTopic {
				disc.Title = "General chat " + fmt.Sprint(d)
				disc.Tags = []string{"offtopic"}
			} else {
				disc.Title = tg.Title(cat)
				disc.Tags = tg.Tags(cat, 1+poissonish(rng, tagRichness-1))
			}

			nCom := clampInt(poissonish(rng, cfg.MeanComments*math.Exp(0.5*s.Latent.Participation)), 0, 400)
			maxAge := cfg.End.Sub(opened)
			for c := 0; c < nCom; c++ {
				var author int
				if ci >= 0 && catTables[ci] != nil {
					author = catUsers[ci][catTables[ci].pick(rng)]
				} else {
					author = allTable.pick(rng)
				}
				u := w.Users[author]
				posted := opened.Add(time.Duration(rng.Float64() * float64(maxAge)))
				polarity := samplePolarity(rng)
				com := &Comment{
					ID:        comID,
					UserID:    author,
					Posted:    posted,
					Polarity:  polarity,
					Replies:   poissonish(rng, 0.8*math.Exp(0.6*u.Influence)),
					Feedbacks: poissonish(rng, 1.2*math.Exp(0.7*u.Influence)),
					Reads:     poissonish(rng, 15*math.Exp(0.5*u.Influence+0.3*s.Latent.Participation)),
				}
				comID++
				if !offTopic {
					com.Tags = tg.Tags(cat, poissonish(rng, tagRichness-1))
				}
				if cfg.CommentText {
					switch {
					case offTopic:
						com.Body = tg.OffTopicComment(0)
					case polarity != 0 && rng.Float64() < 0.1:
						// Express the polarity through negation ("not
						// terrible" for +1) to exercise the sentiment
						// analyzer's negation handling.
						com.Body = tg.NegatedSentence(cat, -polarity)
					default:
						com.Body = tg.Comment(cat, polarity, 0)
					}
					maybeSyndicate(w, rng, tg, s.ID, com)
				}
				if rng.Float64() < 0.3 {
					loc := s.Locations[rng.Intn(len(s.Locations))]
					if base, ok := locationCoords[loc]; ok {
						com.Geo = &GeoPoint{
							Lat: base.Lat + 0.05*rng.NormFloat64(),
							Lon: base.Lon + 0.05*rng.NormFloat64(),
						}
					}
				}
				disc.Comments = append(disc.Comments, com)
			}
			s.Discussions = append(s.Discussions, disc)
		}
	}
}

// maybeSyndicate replaces a freshly generated comment body with a copy of
// an earlier comment from another source — verbatim about half the time
// (guaranteed duplicate-tier hit), otherwise prefixed with a short
// attribution lead (a near-duplicate at the looser story tier). The donor
// is drawn uniformly from the world as populated so far; a draw landing
// on the commenting source itself, an empty discussion, or an already
// syndicated comment leaves the body as generated (still deterministic —
// the draws are consumed either way). With SyndicationRate == 0 the gate
// consumes no randomness, so pre-existing generation streams are
// byte-identical.
func maybeSyndicate(w *World, rng *rand.Rand, tg *textgen.Generator, sourceID int, com *Comment) {
	cfg := w.Config
	if cfg.SyndicationRate <= 0 || com.Body == "" {
		return
	}
	if rng.Float64() >= cfg.SyndicationRate {
		return
	}
	donor := w.Sources[rng.Intn(len(w.Sources))]
	if donor.ID == sourceID || len(donor.Discussions) == 0 {
		return
	}
	d := donor.Discussions[rng.Intn(len(donor.Discussions))]
	if len(d.Comments) == 0 {
		return
	}
	c := d.Comments[rng.Intn(len(d.Comments))]
	if c.Body == "" || c.Syndicated {
		return // copy originals only, so ground truth stays two-level
	}
	com.Syndicated = true
	com.SyndicatedFrom = donor.ID
	if rng.Float64() < 0.5 {
		com.Body = c.Body
	} else {
		com.Body = tg.SyndicationLead() + " " + c.Body
	}
}

// samplePolarity draws ground-truth comment sentiment: mostly positive or
// neutral with a meaningful negative share, like real travel feedback.
func samplePolarity(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.45:
		return 1
	case r < 0.75:
		return 0
	default:
		return -1
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}
