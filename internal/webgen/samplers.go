package webgen

import (
	"math"
	"math/rand"
)

// sigmoid maps a standard-normal latent into (0, 1).
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// logNormal draws exp(mu + sigma*Z).
func logNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// poissonish draws a non-negative integer with the given mean using a
// geometric-ish heavy tail: round(mean * lognormal noise). True Poisson is
// unnecessary; Web 2.0 count data is overdispersed and lognormal mixing
// reflects that.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	v := mean * logNormal(rng, -0.125, 0.5) // E[lognormal(-0.125, 0.5)] ~ 1
	n := int(math.Round(v))
	if n < 0 {
		n = 0
	}
	return n
}

// clampInt bounds n to [lo, hi].
func clampInt(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// zipfWeights returns weights proportional to 1/(rank+1)^s for n items.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// weightedPick draws an index proportionally to the weights. Weights must
// be non-negative and not all zero.
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// cumulative builds a prefix-sum table for repeated weighted sampling.
type cumulative struct {
	sums  []float64
	total float64
}

func newCumulative(weights []float64) *cumulative {
	sums := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		sums[i] = total
	}
	return &cumulative{sums: sums, total: total}
}

// pick draws an index in O(log n).
func (c *cumulative) pick(rng *rand.Rand) int {
	if c.total <= 0 {
		return rng.Intn(len(c.sums))
	}
	r := rng.Float64() * c.total
	lo, hi := 0, len(c.sums)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.sums[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
