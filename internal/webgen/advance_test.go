package webgen

import "testing"

func TestAdvanceGrowsWorld(t *testing.T) {
	w := Generate(Config{Seed: 61, NumSources: 60, NumUsers: 150})
	beforeDisc, beforeCom := 0, 0
	for _, s := range w.Sources {
		beforeDisc += len(s.Discussions)
		beforeCom += s.CommentCount()
	}
	oldEnd := w.Config.End

	Advance(w, 30, 991)

	if !w.Config.End.Equal(oldEnd.AddDate(0, 0, 30)) {
		t.Fatalf("end = %v", w.Config.End)
	}
	afterDisc, afterCom := 0, 0
	for _, s := range w.Sources {
		afterDisc += len(s.Discussions)
		afterCom += s.CommentCount()
	}
	if afterDisc <= beforeDisc {
		t.Errorf("no new discussions: %d -> %d", beforeDisc, afterDisc)
	}
	if afterCom <= beforeCom {
		t.Errorf("no new comments: %d -> %d", beforeCom, afterCom)
	}
}

func TestAdvanceDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 62, NumSources: 20})
	b := Generate(Config{Seed: 62, NumSources: 20})
	Advance(a, 14, 7)
	Advance(b, 14, 7)
	for i := range a.Sources {
		if len(a.Sources[i].Discussions) != len(b.Sources[i].Discussions) {
			t.Fatalf("source %d diverged", i)
		}
	}
}

func TestAdvanceKeepsInvariants(t *testing.T) {
	w := Generate(Config{Seed: 63, NumSources: 40, CommentText: true})
	Advance(w, 20, 8)

	// Unique IDs across old and new content.
	discIDs := map[int]bool{}
	comIDs := map[int]bool{}
	maxOpen := 0
	for _, s := range w.Sources {
		open := 0
		for _, d := range s.Discussions {
			if discIDs[d.ID] {
				t.Fatalf("duplicate discussion ID %d", d.ID)
			}
			discIDs[d.ID] = true
			if d.Open {
				open++
			}
			if d.Opened.After(w.Config.End) {
				t.Errorf("discussion %d opened after new end", d.ID)
			}
			for _, c := range d.Comments {
				if comIDs[c.ID] {
					t.Fatalf("duplicate comment ID %d", c.ID)
				}
				comIDs[c.ID] = true
				if c.Posted.Before(d.Opened) || c.Posted.After(w.Config.End) {
					t.Errorf("comment %d outside [opened, end]", c.ID)
				}
			}
		}
		if open > maxOpen {
			maxOpen = open
		}
	}
	if w.MaxOpenDiscussions != maxOpen {
		t.Errorf("MaxOpenDiscussions = %d, want %d", w.MaxOpenDiscussions, maxOpen)
	}
}

func TestAdvanceNoopOnZeroDays(t *testing.T) {
	w := Generate(Config{Seed: 64, NumSources: 5})
	end := w.Config.End
	before := 0
	for _, s := range w.Sources {
		before += len(s.Discussions)
	}
	Advance(w, 0, 1)
	after := 0
	for _, s := range w.Sources {
		after += len(s.Discussions)
	}
	if after != before || !w.Config.End.Equal(end) {
		t.Error("Advance(0) must be a no-op")
	}
}

func TestAdvanceGeneratesTextWhenConfigured(t *testing.T) {
	w := Generate(Config{Seed: 65, NumSources: 30, CommentText: true})
	oldEnd := w.Config.End
	Advance(w, 30, 9)
	fresh := 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.Posted.After(oldEnd) {
					fresh++
					if d.Category != "" && c.Body == "" {
						t.Error("fresh on-topic comment lacks body despite CommentText")
					}
				}
			}
		}
	}
	if fresh == 0 {
		t.Fatal("no fresh comments generated")
	}
}
