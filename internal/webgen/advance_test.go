package webgen

import "testing"

func TestAdvanceGrowsWorld(t *testing.T) {
	w := Generate(Config{Seed: 61, NumSources: 60, NumUsers: 150})
	beforeDisc, beforeCom := 0, 0
	for _, s := range w.Sources {
		beforeDisc += len(s.Discussions)
		beforeCom += s.CommentCount()
	}
	oldEnd := w.Config.End

	nw, delta := Advance(w, 30, 991)

	if !nw.Config.End.Equal(oldEnd.AddDate(0, 0, 30)) {
		t.Fatalf("end = %v", nw.Config.End)
	}
	afterDisc, afterCom := 0, 0
	for _, s := range nw.Sources {
		afterDisc += len(s.Discussions)
		afterCom += s.CommentCount()
	}
	if afterDisc <= beforeDisc {
		t.Errorf("no new discussions: %d -> %d", beforeDisc, afterDisc)
	}
	if afterCom <= beforeCom {
		t.Errorf("no new comments: %d -> %d", beforeCom, afterCom)
	}
	if got := len(delta.Discussions); got != afterDisc-beforeDisc {
		t.Errorf("delta discussions = %d, want %d", got, afterDisc-beforeDisc)
	}
	if got := delta.NewCommentCount(); got != afterCom-beforeCom {
		t.Errorf("delta comments = %d, want %d", got, afterCom-beforeCom)
	}
	if delta.Empty() {
		t.Error("a 30-day tick should not produce an empty delta")
	}
}

// TestAdvanceCopyOnWrite pins the concurrency substrate: the input world is
// never mutated, untouched sources and discussions are shared by pointer,
// and only sources in the delta's dirty set get fresh structs.
func TestAdvanceCopyOnWrite(t *testing.T) {
	w := Generate(Config{Seed: 66, NumSources: 50, NumUsers: 120})
	oldEnd := w.Config.End
	beforeDisc := make([]int, len(w.Sources))
	beforeCom := make([]int, len(w.Sources))
	for i, s := range w.Sources {
		beforeDisc[i] = len(s.Discussions)
		beforeCom[i] = s.CommentCount()
	}

	nw, delta := Advance(w, 15, 67)

	if nw == w {
		t.Fatal("Advance must return a new world for days > 0")
	}
	if !w.Config.End.Equal(oldEnd) {
		t.Fatal("input world's timeline was mutated")
	}
	dirty := map[int]bool{}
	for _, id := range delta.DirtySourceIDs() {
		dirty[id] = true
	}
	for i, s := range w.Sources {
		if len(s.Discussions) != beforeDisc[i] || s.CommentCount() != beforeCom[i] {
			t.Fatalf("input source %d was mutated", s.ID)
		}
		if dirty[s.ID] {
			if nw.Sources[i] == s {
				t.Fatalf("dirty source %d shares its struct with the input world", s.ID)
			}
			continue
		}
		if nw.Sources[i] != s {
			t.Fatalf("clean source %d was copied (ID in dirty set: %v)", s.ID, dirty[s.ID])
		}
	}
	if len(dirty) == 0 {
		t.Fatal("15-day tick dirtied no sources")
	}
	if len(dirty) == len(w.Sources) {
		t.Log("every source dirty; pointer-sharing branch unexercised at this seed")
	}
}

// TestAdvanceDeltaAccounting cross-checks the delta's dirty sets against a
// brute-force diff of the two worlds.
func TestAdvanceDeltaAccounting(t *testing.T) {
	w := Generate(Config{Seed: 68, NumSources: 40, NumUsers: 100})
	oldEnd := w.Config.End
	nw, delta := Advance(w, 20, 69)

	wantDirty := map[int]bool{}
	wantUsers := map[int]bool{}
	for i, s := range nw.Sources {
		for di, d := range s.Discussions {
			if di >= len(w.Sources[i].Discussions) { // newly opened
				wantDirty[s.ID] = true
				wantUsers[d.OpenerID] = true
			}
			for _, c := range d.Comments {
				if c.Posted.After(oldEnd) {
					wantDirty[s.ID] = true
					wantUsers[c.UserID] = true
				}
			}
		}
	}
	gotDirty := delta.DirtySourceIDs()
	if len(gotDirty) != len(wantDirty) {
		t.Fatalf("dirty sources = %d, want %d", len(gotDirty), len(wantDirty))
	}
	for _, id := range gotDirty {
		if !wantDirty[id] {
			t.Errorf("source %d marked dirty but unchanged", id)
		}
	}
	gotUsers := delta.DirtyContributorIDs()
	if len(gotUsers) != len(wantUsers) {
		t.Fatalf("dirty contributors = %d, want %d", len(gotUsers), len(wantUsers))
	}
	seen := 0
	delta.ForEachNewComment(func(sourceID int, disc *Discussion, c *Comment) {
		if c.Posted.Before(oldEnd) {
			t.Errorf("delta comment %d posted before the tick window", c.ID)
		}
		if disc == nil || disc.SourceID != sourceID {
			t.Errorf("delta comment %d carries a mismatched discussion", c.ID)
		}
		seen++
	})
	if seen != delta.NewCommentCount() {
		t.Errorf("ForEachNewComment visited %d, NewCommentCount = %d", seen, delta.NewCommentCount())
	}
}

func TestAdvanceDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 62, NumSources: 20})
	b := Generate(Config{Seed: 62, NumSources: 20})
	na, _ := Advance(a, 14, 7)
	nb, _ := Advance(b, 14, 7)
	for i := range na.Sources {
		if len(na.Sources[i].Discussions) != len(nb.Sources[i].Discussions) {
			t.Fatalf("source %d diverged", i)
		}
	}
}

func TestAdvanceKeepsInvariants(t *testing.T) {
	w := Generate(Config{Seed: 63, NumSources: 40, CommentText: true})
	w, _ = Advance(w, 20, 8)

	// Unique IDs across old and new content.
	discIDs := map[int]bool{}
	comIDs := map[int]bool{}
	maxOpen := 0
	for _, s := range w.Sources {
		open := 0
		for _, d := range s.Discussions {
			if discIDs[d.ID] {
				t.Fatalf("duplicate discussion ID %d", d.ID)
			}
			discIDs[d.ID] = true
			if d.Open {
				open++
			}
			if d.Opened.After(w.Config.End) {
				t.Errorf("discussion %d opened after new end", d.ID)
			}
			for _, c := range d.Comments {
				if comIDs[c.ID] {
					t.Fatalf("duplicate comment ID %d", c.ID)
				}
				comIDs[c.ID] = true
				if c.Posted.Before(d.Opened) || c.Posted.After(w.Config.End) {
					t.Errorf("comment %d outside [opened, end]", c.ID)
				}
			}
		}
		if open > maxOpen {
			maxOpen = open
		}
	}
	if w.MaxOpenDiscussions != maxOpen {
		t.Errorf("MaxOpenDiscussions = %d, want %d", w.MaxOpenDiscussions, maxOpen)
	}
}

func TestAdvanceNoopOnZeroDays(t *testing.T) {
	w := Generate(Config{Seed: 64, NumSources: 5})
	end := w.Config.End
	nw, delta := Advance(w, 0, 1)
	if nw != w {
		t.Fatal("Advance(0) must return the input world unchanged")
	}
	if !delta.Empty() || delta.EpochMoved() {
		t.Error("Advance(0) must produce an empty delta")
	}
	if !w.Config.End.Equal(end) {
		t.Error("Advance(0) must not move the timeline")
	}
}

func TestAdvanceChurnScale(t *testing.T) {
	base := Config{Seed: 71, NumSources: 120, NumUsers: 240}
	slow := base
	slow.ChurnScale = 0.05
	wFast := Generate(base)
	wSlow := Generate(slow)
	_, dFast := Advance(wFast, 5, 72)
	_, dSlow := Advance(wSlow, 5, 72)
	if len(dSlow.DirtySourceIDs()) >= len(dFast.DirtySourceIDs()) {
		t.Errorf("ChurnScale=0.05 should dirty fewer sources: %d vs %d",
			len(dSlow.DirtySourceIDs()), len(dFast.DirtySourceIDs()))
	}
}

func TestAdvanceGeneratesTextWhenConfigured(t *testing.T) {
	w := Generate(Config{Seed: 65, NumSources: 30, CommentText: true})
	oldEnd := w.Config.End
	w, _ = Advance(w, 30, 9)
	fresh := 0
	for _, s := range w.Sources {
		for _, d := range s.Discussions {
			for _, c := range d.Comments {
				if c.Posted.After(oldEnd) {
					fresh++
					if d.Category != "" && c.Body == "" {
						t.Error("fresh on-topic comment lacks body despite CommentText")
					}
				}
			}
		}
	}
	if fresh == 0 {
		t.Fatal("no fresh comments generated")
	}
}

// TestAdvanceSharesCleanDiscussions checks discussion-level copy-on-write:
// inside a dirty source, discussions that only existed before the tick and
// gained nothing are shared by pointer with the input world.
func TestAdvanceSharesCleanDiscussions(t *testing.T) {
	w := Generate(Config{Seed: 73, NumSources: 30})
	nw, delta := Advance(w, 10, 74)
	appended := map[*Discussion]bool{}
	for _, dc := range delta.Comments {
		appended[dc.Discussion] = true
	}
	shared, copied := 0, 0
	for i, s := range nw.Sources {
		old := w.Sources[i]
		if s == old {
			continue
		}
		for di, d := range s.Discussions {
			if di >= len(old.Discussions) {
				continue // newly opened
			}
			if d == old.Discussions[di] {
				shared++
			} else {
				copied++
				if !appended[d] {
					t.Errorf("discussion %d copied without gaining comments", d.ID)
				}
				if len(d.Comments) <= len(old.Discussions[di].Comments) {
					t.Errorf("copied discussion %d gained no comments", d.ID)
				}
			}
		}
	}
	if shared == 0 {
		t.Error("no pre-existing discussion was pointer-shared inside dirty sources")
	}
	if copied == 0 {
		t.Skip("no discussion gained comments at this seed")
	}
}
