// Package crawler fetches synthetic Web 2.0 sources over HTTP and extracts
// the machine-readable observations that the quality measures marked
// "crawling" in Tables 1 and 2 are computed from. It discovers sources via
// /sitemap.txt, walks each source's index page, pulls every discussion page
// (parsing the embedded JSON data island) and optionally the RSS feed.
//
// The crawler is deliberately conventional: frontier per source, bounded
// worker pool, per-request politeness delay, bounded retries with the
// shared exponential-backoff-plus-jitter policy of internal/retry (the
// same policy the push-delivery engine applies outbound) — transient
// failures (5xx, net timeouts) are retried, client errors fast-fail.
//
//informer:strict-errors
package crawler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"encoding/json"

	"github.com/informing-observers/informer/internal/feed"
	"github.com/informing-observers/informer/internal/retry"
	"github.com/informing-observers/informer/internal/wire"
)

// Config controls a crawl.
type Config struct {
	// BaseURL is the root of the corpus, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to a client with a 10s timeout.
	Client *http.Client
	// Workers bounds concurrent source fetches (default 8).
	Workers int
	// Delay is the politeness pause between requests of one worker.
	Delay time.Duration
	// MaxRetries bounds retries per request (default 2).
	MaxRetries int
	// FetchFeeds additionally downloads and parses each source's RSS feed.
	FetchFeeds bool
	// MaxDiscussions caps discussion pages fetched per source (0 = all).
	MaxDiscussions int
	// Cache enables conditional fetching: pages already in the cache are
	// requested with If-None-Match, and 304 responses reuse the cached
	// body. Reuse the same Cache across Crawl calls for incremental
	// re-crawls of slowly changing corpora.
	Cache *Cache
}

// Cache stores page bodies with their ETags for conditional re-crawling.
// It is safe for concurrent use by the crawl workers.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	etag string
	body []byte
}

// NewCache returns an empty page cache.
func NewCache() *Cache { return &Cache{entries: map[string]cacheEntry{}} }

func (c *Cache) get(url string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[url]
	return e, ok
}

func (c *Cache) put(url, etag string, body []byte) {
	if etag == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[url] = cacheEntry{etag: etag, body: body}
}

// Stats reports how many conditional requests were answered from the
// cache (hits: 304 responses) versus fetched fresh (misses).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached pages.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// SourceCrawl is everything observed about one source.
type SourceCrawl struct {
	Info        wire.SourceInfo
	Discussions []wire.Discussion
	Feed        *feed.Feed
	// InboundLinks is aggregated across the snapshot from other sources'
	// OutboundHosts after the crawl completes.
	InboundLinks int
}

// Snapshot is the result of a full crawl.
type Snapshot struct {
	Sources []*SourceCrawl
	// Errs records non-fatal per-page failures; the crawl keeps going.
	Errs []error
}

// Crawl walks the corpus at cfg.BaseURL and returns a Snapshot. A non-nil
// error is returned only for failures that prevent any crawling at all
// (unreachable sitemap); per-page errors are collected in Snapshot.Errs.
func Crawl(ctx context.Context, cfg Config) (*Snapshot, error) {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	base := strings.TrimSuffix(cfg.BaseURL, "/")

	sitemap, err := fetch(ctx, cfg, base+"/sitemap.txt")
	if err != nil {
		return nil, fmt.Errorf("crawler: sitemap: %w", err)
	}
	var paths []string
	for _, line := range strings.Split(string(sitemap), "\n") {
		line = strings.TrimSpace(line)
		if line != "" {
			paths = append(paths, line)
		}
	}

	snap := &Snapshot{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan string)
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range work {
				sc, errs := crawlSource(ctx, cfg, base, p)
				mu.Lock()
				if sc != nil {
					snap.Sources = append(snap.Sources, sc)
				}
				snap.Errs = append(snap.Errs, errs...)
				mu.Unlock()
			}
		}()
	}
	for _, p := range paths {
		select {
		case work <- p:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return snap, ctx.Err()
		}
	}
	close(work)
	wg.Wait()

	sort.Slice(snap.Sources, func(i, j int) bool {
		return snap.Sources[i].Info.ID < snap.Sources[j].Info.ID
	})
	aggregateInbound(snap)
	return snap, nil
}

// crawlSource walks one source subtree.
func crawlSource(ctx context.Context, cfg Config, base, path string) (*SourceCrawl, []error) {
	var errs []error
	page, err := fetch(ctx, cfg, base+path)
	if err != nil {
		return nil, []error{fmt.Errorf("crawler: index %s: %w", path, err)}
	}
	island, ok := ExtractIsland(string(page), "application/x-source-info+json")
	if !ok {
		return nil, []error{fmt.Errorf("crawler: index %s: no source-info island", path)}
	}
	var info wire.SourceInfo
	if err := unmarshalJSON(island, &info); err != nil {
		return nil, []error{fmt.Errorf("crawler: index %s: %w", path, err)}
	}
	sc := &SourceCrawl{Info: info}

	ids := info.DiscussionIDs
	if cfg.MaxDiscussions > 0 && len(ids) > cfg.MaxDiscussions {
		ids = ids[:cfg.MaxDiscussions]
	}
	for _, did := range ids {
		dpath := fmt.Sprintf("/s/%d/d/%d", info.ID, did)
		dpage, err := fetch(ctx, cfg, base+dpath)
		if err != nil {
			errs = append(errs, fmt.Errorf("crawler: %s: %w", dpath, err))
			continue
		}
		disland, ok := ExtractIsland(string(dpage), "application/x-discussion+json")
		if !ok {
			errs = append(errs, fmt.Errorf("crawler: %s: no discussion island", dpath))
			continue
		}
		var d wire.Discussion
		if err := unmarshalJSON(disland, &d); err != nil {
			errs = append(errs, fmt.Errorf("crawler: %s: %w", dpath, err))
			continue
		}
		sc.Discussions = append(sc.Discussions, d)
	}

	if cfg.FetchFeeds {
		fpath := fmt.Sprintf("/s/%d/feed.rss", info.ID)
		fdata, err := fetch(ctx, cfg, base+fpath)
		if err != nil {
			errs = append(errs, fmt.Errorf("crawler: %s: %w", fpath, err))
		} else if f, err := feed.Parse(fdata); err != nil {
			errs = append(errs, fmt.Errorf("crawler: %s: %w", fpath, err))
		} else {
			sc.Feed = f
		}
	}
	return sc, errs
}

// fetch GETs a URL with politeness delay and bounded retries: transient
// failures (5xx, net/timeout errors) go through the shared
// internal/retry exponential-backoff-plus-jitter policy; client errors
// won't heal on retry and fast-fail via retry.Permanent.
func fetch(ctx context.Context, cfg Config, url string) ([]byte, error) {
	if cfg.Delay > 0 {
		select {
		case <-time.After(cfg.Delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	pol := retry.Policy{
		Attempts: cfg.MaxRetries + 1,
		Base:     50 * time.Millisecond,
		Max:      2 * time.Second,
		Jitter:   0.5,
	}
	var body []byte
	err := retry.Do(ctx, pol, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return retry.Permanent(err)
		}
		req.Header.Set("User-Agent", "informer-crawler/1.0")
		var cached cacheEntry
		var haveCached bool
		if cfg.Cache != nil {
			if cached, haveCached = cfg.Cache.get(url); haveCached {
				req.Header.Set("If-None-Match", cached.etag)
			}
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return err // net/timeout errors are transient
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close() //informer:ignore errdrop close after full read; ReadAll already surfaced any transport error
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusNotModified && haveCached {
			cfg.Cache.mu.Lock()
			cfg.Cache.hits++
			cfg.Cache.mu.Unlock()
			body = cached.body
			return nil
		}
		if resp.StatusCode == http.StatusOK {
			if cfg.Cache != nil {
				cfg.Cache.put(url, resp.Header.Get("ETag"), b)
				cfg.Cache.mu.Lock()
				cfg.Cache.misses++
				cfg.Cache.mu.Unlock()
			}
			body = b
			return nil
		}
		statusErr := fmt.Errorf("status %d", resp.StatusCode)
		// Client errors won't heal on retry.
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return retry.Permanent(statusErr)
		}
		return statusErr
	})
	if err != nil {
		return nil, err
	}
	return body, nil
}

// aggregateInbound counts, for every crawled host, how many other sources
// list it among their outbound links.
func aggregateInbound(snap *Snapshot) {
	counts := map[string]int{}
	for _, sc := range snap.Sources {
		seen := map[string]bool{}
		for _, h := range sc.Info.OutboundHosts {
			if h == sc.Info.Host || seen[h] {
				continue
			}
			seen[h] = true
			counts[h]++
		}
	}
	for _, sc := range snap.Sources {
		sc.InboundLinks = counts[sc.Info.Host]
	}
}

// ExtractIsland returns the body of the first <script type="<mime>"> data
// island in the page.
func ExtractIsland(page, mime string) ([]byte, bool) {
	marker := `<script type="` + mime + `">`
	start := strings.Index(page, marker)
	if start < 0 {
		return nil, false
	}
	start += len(marker)
	end := strings.Index(page[start:], "</script>")
	if end < 0 {
		return nil, false
	}
	return []byte(page[start : start+end]), true
}

// ExtractLinks scans an HTML page for href attribute values. It is a
// lightweight scanner (no full HTML parse), sufficient for the corpus'
// well-formed markup and useful as a frontier fallback when a page has no
// data island.
func ExtractLinks(page string) []string {
	var links []string
	rest := page
	for {
		i := strings.Index(rest, `href="`)
		if i < 0 {
			break
		}
		rest = rest[i+len(`href="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			break
		}
		links = append(links, rest[:j])
		rest = rest[j+1:]
	}
	return links
}

var errNoJSON = errors.New("crawler: empty data island")

func unmarshalJSON(data []byte, v any) error {
	if len(data) == 0 {
		return errNoJSON
	}
	return json.Unmarshal(data, v)
}
