package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

func testWorldServer(t *testing.T, n int) (*webgen.World, *httptest.Server) {
	t.Helper()
	world := webgen.Generate(webgen.Config{Seed: 3, NumSources: n, NumUsers: 50, CommentText: true})
	ts := httptest.NewServer(webserve.New(world))
	t.Cleanup(ts.Close)
	return world, ts
}

func TestCrawlFullCorpus(t *testing.T) {
	world, ts := testWorldServer(t, 10)
	snap, err := Crawl(context.Background(), Config{BaseURL: ts.URL, FetchFeeds: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Errs) != 0 {
		t.Fatalf("crawl errors: %v", snap.Errs)
	}
	if len(snap.Sources) != 10 {
		t.Fatalf("crawled %d sources, want 10", len(snap.Sources))
	}
	for i, sc := range snap.Sources {
		src := world.Sources[i]
		if sc.Info.ID != src.ID {
			t.Fatalf("source order wrong: %d at %d", sc.Info.ID, i)
		}
		if len(sc.Discussions) != len(src.Discussions) {
			t.Errorf("source %d: %d discussions, want %d", i, len(sc.Discussions), len(src.Discussions))
		}
		if sc.Feed == nil {
			t.Errorf("source %d: missing feed", i)
		} else if len(sc.Feed.Items) != len(src.Discussions) {
			t.Errorf("source %d: feed has %d items, want %d", i, len(sc.Feed.Items), len(src.Discussions))
		}
		// Comment payloads survive.
		total := 0
		for _, d := range sc.Discussions {
			total += len(d.Comments)
		}
		if total != src.CommentCount() {
			t.Errorf("source %d: crawled %d comments, want %d", i, total, src.CommentCount())
		}
	}
}

func TestCrawlInboundAggregation(t *testing.T) {
	world, ts := testWorldServer(t, 20)
	snap, err := Crawl(context.Background(), Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	// The crawler's inbound counts must match the world's link graph
	// (dedup per source pair).
	for i, sc := range snap.Sources {
		want := len(world.Sources[i].Inbound)
		if sc.InboundLinks != want {
			t.Errorf("source %d inbound = %d, want %d", i, sc.InboundLinks, want)
		}
	}
}

func TestCrawlMaxDiscussions(t *testing.T) {
	_, ts := testWorldServer(t, 5)
	snap, err := Crawl(context.Background(), Config{BaseURL: ts.URL, MaxDiscussions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range snap.Sources {
		if len(sc.Discussions) > 2 {
			t.Errorf("source %d crawled %d discussions, cap is 2", sc.Info.ID, len(sc.Discussions))
		}
	}
}

func TestCrawlUnreachable(t *testing.T) {
	_, err := Crawl(context.Background(), Config{
		BaseURL: "http://127.0.0.1:1", // nothing listens here
		Client:  &http.Client{Timeout: 200 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("expected error for unreachable corpus")
	}
}

func TestCrawlContextCancel(t *testing.T) {
	_, ts := testWorldServer(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Crawl(ctx, Config{BaseURL: ts.URL})
	if err == nil {
		t.Fatal("expected context error")
	}
}

func TestCrawlRetriesServerErrors(t *testing.T) {
	var calls int32
	mux := http.NewServeMux()
	mux.HandleFunc("/sitemap.txt", func(w http.ResponseWriter, _ *http.Request) {
		if atomic.AddInt32(&calls, 1) < 3 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("")) // empty sitemap: crawl succeeds with 0 sources
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	snap, err := Crawl(context.Background(), Config{BaseURL: ts.URL, MaxRetries: 3})
	if err != nil {
		t.Fatalf("retry should have healed: %v", err)
	}
	if len(snap.Sources) != 0 {
		t.Errorf("sources = %d", len(snap.Sources))
	}
	if atomic.LoadInt32(&calls) != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestCrawlDoesNotRetry404(t *testing.T) {
	var calls int32
	mux := http.NewServeMux()
	mux.HandleFunc("/sitemap.txt", func(w http.ResponseWriter, _ *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.NotFound(w, nil)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	if _, err := Crawl(context.Background(), Config{BaseURL: ts.URL, MaxRetries: 5}); err == nil {
		t.Fatal("expected failure")
	}
	if atomic.LoadInt32(&calls) != 1 {
		t.Errorf("404 retried %d times, want 1 attempt", calls)
	}
}

func TestCrawlPageErrorsAreNonFatal(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/sitemap.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("/s/0/\n/s/1/\n"))
	})
	mux.HandleFunc("/s/0/", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`<html><script type="application/x-source-info+json">{"id":0,"host":"a"}</script></html>`))
	})
	// /s/1/ serves a page without an island.
	mux.HandleFunc("/s/1/", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("<html>no island</html>"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	snap, err := Crawl(context.Background(), Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Sources) != 1 {
		t.Errorf("sources = %d, want 1", len(snap.Sources))
	}
	if len(snap.Errs) != 1 {
		t.Errorf("errs = %v, want 1 error", snap.Errs)
	}
}

func TestExtractIsland(t *testing.T) {
	page := `<html><script type="application/x-discussion+json">{"id":7}</script></html>`
	data, ok := ExtractIsland(page, "application/x-discussion+json")
	if !ok || string(data) != `{"id":7}` {
		t.Errorf("got %q, %v", data, ok)
	}
	if _, ok := ExtractIsland(page, "application/other"); ok {
		t.Error("wrong mime matched")
	}
	if _, ok := ExtractIsland(`<script type="application/x-a+json">unterminated`, "application/x-a+json"); ok {
		t.Error("unterminated island matched")
	}
}

func TestExtractLinks(t *testing.T) {
	page := `<a href="/s/0/">x</a><link href="/feed.rss"/><a href="http://e.test/p">y</a>`
	links := ExtractLinks(page)
	want := []string{"/s/0/", "/feed.rss", "http://e.test/p"}
	if len(links) != len(want) {
		t.Fatalf("links = %v", links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Errorf("link %d = %q, want %q", i, links[i], want[i])
		}
	}
	if got := ExtractLinks("no links here"); got != nil {
		t.Errorf("got %v for page without links", got)
	}
}

func TestPolitenessDelay(t *testing.T) {
	_, ts := testWorldServer(t, 2)
	start := time.Now()
	_, err := Crawl(context.Background(), Config{BaseURL: ts.URL, Delay: 10 * time.Millisecond, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// At least sitemap + 2 indexes = 3 requests, each delayed 10ms.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("crawl too fast for politeness delay: %v", elapsed)
	}
}
