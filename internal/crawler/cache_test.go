package crawler

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

func TestIncrementalRecrawl(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 6, NumSources: 6, CommentText: true})
	ts := httptest.NewServer(webserve.New(world))
	defer ts.Close()

	cache := NewCache()
	cfg := Config{BaseURL: ts.URL, Cache: cache, FetchFeeds: true}

	// First crawl: everything is a miss.
	snap1, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits != 0 {
		t.Errorf("first crawl had %d cache hits", hits)
	}
	if misses == 0 {
		t.Fatal("no pages fetched")
	}
	if cache.Len() == 0 {
		t.Fatal("cache empty after crawl")
	}

	// Second crawl over an unchanged corpus: every page is a 304 hit.
	snap2, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := cache.Stats()
	if misses2 != misses {
		t.Errorf("recrawl fetched %d fresh pages, want 0 new", misses2-misses)
	}
	if hits2 == 0 {
		t.Error("recrawl produced no conditional hits")
	}

	// The two snapshots must be identical.
	if len(snap1.Sources) != len(snap2.Sources) {
		t.Fatal("snapshot sizes differ")
	}
	for i := range snap1.Sources {
		a, b := snap1.Sources[i], snap2.Sources[i]
		if a.Info.Host != b.Info.Host || len(a.Discussions) != len(b.Discussions) {
			t.Fatalf("source %d differs across recrawl", i)
		}
		for j := range a.Discussions {
			if len(a.Discussions[j].Comments) != len(b.Discussions[j].Comments) {
				t.Fatalf("discussion %d/%d differs across recrawl", i, j)
			}
		}
	}
}

func TestCacheWithoutServerSupport(t *testing.T) {
	// A server that never sets ETags: the cache stays empty and crawling
	// still works.
	world := webgen.Generate(webgen.Config{Seed: 6, NumSources: 2})
	plain := httptest.NewServer(stripETag{inner: webserve.New(world)})
	defer plain.Close()

	cache := NewCache()
	if _, err := Crawl(context.Background(), Config{BaseURL: plain.URL, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Errorf("cache stored %d entries without ETags", cache.Len())
	}
}

// stripETag is middleware that removes conditional-request support from a
// handler, simulating a server without ETags.
type stripETag struct{ inner http.Handler }

func (s stripETag) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Header.Del("If-None-Match")
	rec := httptest.NewRecorder()
	s.inner.ServeHTTP(rec, r)
	for k, vs := range rec.Header() {
		if http.CanonicalHeaderKey(k) == "Etag" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

// TestMonitoringRecrawl is the paper's monitoring loop: crawl, let the
// corpus evolve, re-crawl conditionally. Pages of unchanged sources come
// back 304; sources with fresh activity are re-fetched and the snapshot
// reflects the growth.
func TestMonitoringRecrawl(t *testing.T) {
	world := webgen.Generate(webgen.Config{Seed: 16, NumSources: 8, CommentText: true})
	// Advance is copy-on-write, so the served world is swapped between
	// crawls — the same snapshot-per-tick serving the informer facade does.
	var served atomic.Pointer[webserve.Server]
	served.Store(webserve.New(world))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Load().ServeHTTP(w, r)
	}))
	defer ts.Close()

	cache := NewCache()
	cfg := Config{BaseURL: ts.URL, Cache: cache}
	snap1, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, misses1 := cache.Stats()

	world, _ = webgen.Advance(world, 30, 161)
	served.Store(webserve.New(world))

	snap2, err := Crawl(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := cache.Stats()
	if hits2 == 0 {
		t.Error("no page stayed unchanged; expected some 304s")
	}
	if misses2 == misses1 {
		t.Error("no page changed; expected fresh fetches after Advance")
	}

	count := func(s *Snapshot) (d, c int) {
		for _, sc := range s.Sources {
			d += len(sc.Discussions)
			for _, disc := range sc.Discussions {
				c += len(disc.Comments)
			}
		}
		return d, c
	}
	d1, c1 := count(snap1)
	d2, c2 := count(snap2)
	if d2 <= d1 || c2 <= c1 {
		t.Errorf("recrawl did not observe growth: %d/%d -> %d/%d", d1, c1, d2, c2)
	}
}
