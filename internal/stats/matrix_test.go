package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("At wrong")
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set wrong")
	}
	r := m.Row(1)
	r[0] = 99 // must not alias
	if m.At(1, 0) == 99 {
		t.Error("Row must return a copy")
	}
	c := m.Col(0)
	if c[0] != 9 || c[1] != 3 {
		t.Errorf("Col = %v", c)
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
	if _, err := a.Mul(NewMatrix(3, 3)); err != ErrDimensionMismatch {
		t.Error("expected dimension mismatch")
	}
}

func TestMatrixMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		p, err := m.Mul(Identity(n))
		if err != nil {
			return false
		}
		for i := range m.Data {
			if !almostEqual(p.Data[i], m.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T().T()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("T(T(m)) != m")
		}
	}
	if m.T().Rows != 3 || m.T().Cols != 2 {
		t.Error("transpose shape wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	v, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := m.MulVec([]float64{1}); err != ErrDimensionMismatch {
		t.Error("expected mismatch")
	}
}

func TestAddSubScale(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}})
	b := MatrixFromRows([][]float64{{3, 4}})
	s, _ := a.Add(b)
	if s.At(0, 0) != 4 || s.At(0, 1) != 6 {
		t.Error("Add wrong")
	}
	d, _ := b.Sub(a)
	if d.At(0, 0) != 2 || d.At(0, 1) != 2 {
		t.Error("Sub wrong")
	}
	sc := a.Clone().Scale(10)
	if sc.At(0, 1) != 20 {
		t.Error("Scale wrong")
	}
	if a.At(0, 1) != 2 {
		t.Error("Scale must not mutate the clone source")
	}
}

func TestSolveSPD(t *testing.T) {
	// A = [[4,1],[1,3]], b = [1, 2] -> x = [1/11, 7/11].
	a := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1.0/11, 1e-12) || !almostEqual(x[1], 7.0/11, 1e-12) {
		t.Errorf("SolveSPD = %v", x)
	}
}

func TestSolveSPDNotPD(t *testing.T) {
	a := MatrixFromRows([][]float64{{0, 0}, {0, 0}})
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Error("expected error for singular matrix")
	}
}

func TestInvertSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		// Build SPD matrix as G G^T + n*I.
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		gt := g.T()
		a, _ := g.Mul(gt)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		inv, err := InvertSPD(a)
		if err != nil {
			return false
		}
		prod, _ := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(prod.At(i, j), want, 1e-8) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	if !Identity(3).IsSymmetric(0) {
		t.Error("identity must be symmetric")
	}
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Error("non-square cannot be symmetric")
	}
}

func TestMatrixString(t *testing.T) {
	s := MatrixFromRows([][]float64{{1, 2}}).String()
	if s == "" || math.IsNaN(1) {
		t.Error("String should render something")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}
