package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenDiagonal(t *testing.T) {
	a := MatrixFromRows([][]float64{{3, 0}, {0, 1}})
	e, err := EigenSymmetric(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v", e.Values)
	}
}

func TestEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	e, err := EigenSymmetric(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e.Values[0], 3, 1e-10) || !almostEqual(e.Values[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v", e.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2).
	v0 := e.Vectors.Col(0)
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-8) {
		t.Errorf("eigenvector = %v", v0)
	}
}

func TestEigenNonSquare(t *testing.T) {
	if _, err := EigenSymmetric(NewMatrix(2, 3)); err != ErrDimensionMismatch {
		t.Error("expected dimension mismatch")
	}
}

// Property: A v = lambda v, eigenvectors orthonormal, trace preserved.
func TestEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		// Random symmetric matrix.
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		e, err := EigenSymmetric(a)
		if err != nil {
			return false
		}
		// Trace = sum of eigenvalues.
		var trace, sumEig float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sumEig += e.Values[i]
		}
		if !almostEqual(trace, sumEig, 1e-8) {
			return false
		}
		// A v_i = lambda_i v_i.
		for i := 0; i < n; i++ {
			v := e.Vectors.Col(i)
			av, _ := a.MulVec(v)
			for k := 0; k < n; k++ {
				if !almostEqual(av[k], e.Values[i]*v[k], 1e-7) {
					return false
				}
			}
		}
		// Orthonormality.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var dot float64
				for k := 0; k < n; k++ {
					dot += e.Vectors.At(k, i) * e.Vectors.At(k, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(dot, want, 1e-8) {
					return false
				}
			}
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
