package stats

import "math"

// ANOVA holds the result of a one-way analysis of variance across groups,
// the omnibus test behind Table 4.
type ANOVA struct {
	FStat      float64
	PValue     float64
	DFBetween  int
	DFWithin   int
	GrandMean  float64
	GroupMeans []float64
	GroupNs    []int
	// MSWithin is the pooled within-group mean square, reused by the
	// Bonferroni pairwise comparisons.
	MSWithin float64
}

// OneWayANOVA tests whether the group means differ. Groups with fewer than
// one observation are rejected; at least two groups with two total degrees
// of freedom are required.
func OneWayANOVA(groups [][]float64) (*ANOVA, error) {
	k := len(groups)
	if k < 2 {
		return nil, ErrInsufficientData
	}
	n := 0
	for _, g := range groups {
		if len(g) == 0 {
			return nil, ErrInsufficientData
		}
		n += len(g)
	}
	if n <= k {
		return nil, ErrInsufficientData
	}

	var grandSum float64
	for _, g := range groups {
		grandSum += Sum(g)
	}
	grandMean := grandSum / float64(n)

	var ssBetween, ssWithin float64
	means := make([]float64, k)
	ns := make([]int, k)
	for i, g := range groups {
		m := Mean(g)
		means[i] = m
		ns[i] = len(g)
		d := m - grandMean
		ssBetween += float64(len(g)) * d * d
		for _, x := range g {
			e := x - m
			ssWithin += e * e
		}
	}

	dfB := k - 1
	dfW := n - k
	msB := ssBetween / float64(dfB)
	msW := ssWithin / float64(dfW)

	var f, p float64
	if msW > 0 {
		f = msB / msW
		p = FTestPValue(f, float64(dfB), float64(dfW))
	} else if msB > 0 {
		f = math.Inf(1)
		p = 0
	} else {
		p = 1
	}

	return &ANOVA{
		FStat:      f,
		PValue:     p,
		DFBetween:  dfB,
		DFWithin:   dfW,
		GrandMean:  grandMean,
		GroupMeans: means,
		GroupNs:    ns,
		MSWithin:   msW,
	}, nil
}

// PairwiseComparison is one Bonferroni-corrected post-hoc comparison between
// two groups, reported in the style of Table 4: the sign of the mean
// difference and whether it is significant after correction.
type PairwiseComparison struct {
	GroupA, GroupB int
	MeanDiff       float64
	TStat          float64
	// PValue is the Bonferroni-adjusted two-sided p-value (raw p times the
	// number of comparisons, capped at 1), matching SPSS's Bonferroni table
	// that the paper reports (note its "sig = 1.000" cells).
	PValue float64
	// Significant is PValue < alpha (alpha fixed at 0.05, the paper's
	// threshold: "values greater than 0.050 indicate that the two
	// categories have the same mean").
	Significant bool
}

// Direction renders the comparison the way Table 4 does: "> 0", "< 0" or
// "= 0" depending on significance and sign.
func (c PairwiseComparison) Direction() string {
	if !c.Significant {
		return "= 0"
	}
	if c.MeanDiff > 0 {
		return "> 0"
	}
	return "< 0"
}

// Bonferroni performs all pairwise post-hoc comparisons after a one-way
// ANOVA using the pooled within-group variance, with Bonferroni correction
// for the number of comparisons.
func Bonferroni(groups [][]float64) ([]PairwiseComparison, error) {
	a, err := OneWayANOVA(groups)
	if err != nil {
		return nil, err
	}
	k := len(groups)
	nComp := k * (k - 1) / 2
	out := make([]PairwiseComparison, 0, nComp)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			diff := a.GroupMeans[i] - a.GroupMeans[j]
			se := math.Sqrt(a.MSWithin * (1/float64(a.GroupNs[i]) + 1/float64(a.GroupNs[j])))
			var t, p float64
			if se > 0 {
				t = diff / se
				p = TTestPValue(t, float64(a.DFWithin)) * float64(nComp)
				if p > 1 {
					p = 1
				}
			} else if diff != 0 {
				t = math.Inf(1)
				p = 0
			} else {
				p = 1
			}
			out = append(out, PairwiseComparison{
				GroupA:      i,
				GroupB:      j,
				MeanDiff:    diff,
				TStat:       t,
				PValue:      p,
				Significant: p < 0.05,
			})
		}
	}
	return out, nil
}

// WelchTTest performs a two-sample t test with unequal variances (Welch).
// It is provided for robustness checks alongside the pooled-variance
// Bonferroni procedure.
func WelchTTest(a, b []float64) (t, p float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if ma == mb {
			return 0, 1, nil
		}
		return math.Inf(1), 0, nil
	}
	t = (ma - mb) / se
	// Welch–Satterthwaite degrees of freedom.
	num := (va/na + vb/nb) * (va/na + vb/nb)
	den := (va*va)/(na*na*(na-1)) + (vb*vb)/(nb*nb*(nb-1))
	df := num / den
	return t, TTestPValue(t, df), nil
}
