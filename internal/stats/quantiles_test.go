package stats

// Pins the single-sort quantile API (SortedQuantile/SortedQuantiles/
// Quantiles) bit-for-bit against the original Quantile, which the quality
// benchmark derivation depended on before the matrix refactor.

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortedQuantilesMatchQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	qs := []float64{0, 0.05, 0.10, 0.25, 0.5, 0.75, 0.90, 0.95, 1}
	for _, n := range []int{1, 2, 3, 7, 10, 101, 500} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		// Include ties: duplicate a fifth of the values.
		for i := 0; i+5 < n; i += 5 {
			xs[i+5] = xs[i]
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)

		multi := Quantiles(xs, qs...)
		multiSorted := SortedQuantiles(sorted, qs...)
		for i, q := range qs {
			want := Quantile(xs, q)
			if got := SortedQuantile(sorted, q); got != want {
				t.Fatalf("n=%d q=%v: SortedQuantile=%v, Quantile=%v", n, q, got, want)
			}
			if multi[i] != want {
				t.Fatalf("n=%d q=%v: Quantiles=%v, Quantile=%v", n, q, multi[i], want)
			}
			if multiSorted[i] != want {
				t.Fatalf("n=%d q=%v: SortedQuantiles=%v, Quantile=%v", n, q, multiSorted[i], want)
			}
		}
	}
}

func TestSortedQuantileClampsAndPanics(t *testing.T) {
	sorted := []float64{1, 2, 3}
	if SortedQuantile(sorted, -0.5) != 1 || SortedQuantile(sorted, 1.5) != 3 {
		t.Error("out-of-range q must clamp to min/max")
	}
	for name, fn := range map[string]func(){
		"SortedQuantile": func() { SortedQuantile(nil, 0.5) },
		"Quantiles":      func() { Quantiles(nil, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s of empty slice must panic", name)
				}
			}()
			fn()
		}()
	}
}
