package stats

import (
	"math/rand"
	"testing"
)

// makeLatentData builds n observations of p measures driven by k latent
// factors with noise: measure j belongs to factor j % k.
func makeLatentData(n, p, k int, noise float64, seed int64) (*Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	truth := make([]int, p)
	data := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		factors := make([]float64, k)
		for f := range factors {
			factors[f] = rng.NormFloat64()
		}
		for j := 0; j < p; j++ {
			f := j % k
			truth[j] = f
			data.Set(i, j, factors[f]+noise*rng.NormFloat64())
		}
	}
	return data, truth
}

func TestPCARecoverLatentStructure(t *testing.T) {
	data, truth := makeLatentData(500, 9, 3, 0.4, 11)
	fa, err := PrincipalComponents(data, PCAOptions{Components: 3, Varimax: true})
	if err != nil {
		t.Fatal(err)
	}
	// Measures with the same latent factor must be assigned to the same
	// component, and different factors to different components.
	compOf := map[int]int{}
	for j := 0; j < 9; j++ {
		f := truth[j]
		if c, ok := compOf[f]; ok {
			if fa.Assignment[j] != c {
				t.Errorf("measure %d (factor %d) assigned to component %d, want %d",
					j, f, fa.Assignment[j], c)
			}
		} else {
			compOf[f] = fa.Assignment[j]
		}
	}
	if len(compOf) != 3 {
		t.Errorf("expected 3 distinct components, factor->component = %v", compOf)
	}
}

func TestPCAKaiserCriterion(t *testing.T) {
	data, _ := makeLatentData(400, 8, 2, 0.3, 5)
	fa, err := PrincipalComponents(data, PCAOptions{}) // Components = 0 -> Kaiser
	if err != nil {
		t.Fatal(err)
	}
	if got := fa.Loadings.Cols; got != 2 {
		t.Errorf("Kaiser retained %d components, want 2 (eigenvalues %v)", got, fa.Eigenvalues)
	}
}

func TestPCAExplainedVariance(t *testing.T) {
	data, _ := makeLatentData(300, 6, 3, 0.5, 7)
	fa, err := PrincipalComponents(data, PCAOptions{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range fa.ExplainedVariance {
		if v < 0 || v > 1 {
			t.Errorf("explained variance %v out of range", v)
		}
		total += v
	}
	if total <= 0 || total > 1+1e-9 {
		t.Errorf("total explained = %v", total)
	}
	// Three strong latent factors should explain most variance.
	if total < 0.7 {
		t.Errorf("3 components explain only %v, want > 0.7", total)
	}
}

func TestPCAScoresShape(t *testing.T) {
	data, _ := makeLatentData(100, 5, 2, 0.5, 9)
	fa, err := PrincipalComponents(data, PCAOptions{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Scores.Rows != 100 || fa.Scores.Cols != 2 {
		t.Errorf("scores shape = %dx%d, want 100x2", fa.Scores.Rows, fa.Scores.Cols)
	}
	// Scores of the first component correlate with the data's dominant
	// direction: nonzero variance at minimum.
	if Variance(fa.Scores.Col(0)) == 0 {
		t.Error("component scores are constant")
	}
}

func TestPCAInsufficientData(t *testing.T) {
	if _, err := PrincipalComponents(NewMatrix(2, 5), PCAOptions{}); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
	if _, err := PrincipalComponents(NewMatrix(10, 1), PCAOptions{}); err != ErrInsufficientData {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestPCAComponentsCapped(t *testing.T) {
	data, _ := makeLatentData(50, 4, 2, 0.5, 13)
	fa, err := PrincipalComponents(data, PCAOptions{Components: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fa.Loadings.Cols != 4 {
		t.Errorf("components = %d, want capped at 4", fa.Loadings.Cols)
	}
}

func TestVarimaxImprovesSimplicity(t *testing.T) {
	data, _ := makeLatentData(400, 9, 3, 0.4, 17)
	plain, err := PrincipalComponents(data, PCAOptions{Components: 3, Varimax: false})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := PrincipalComponents(data, PCAOptions{Components: 3, Varimax: true})
	if err != nil {
		t.Fatal(err)
	}
	if varimaxCriterion(rotated.Loadings) < varimaxCriterion(plain.Loadings)-1e-9 {
		t.Error("varimax must not decrease the varimax criterion")
	}
}
