package stats

import "math"

// NormalCDF returns the standard normal cumulative distribution function at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the inverse standard normal CDF at p using the
// Acklam rational approximation refined with one Halley step. It panics for
// p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	// Coefficients of the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// logBeta returns log(Beta(a, b)).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegularizedIncompleteBeta returns I_x(a, b), the regularized incomplete
// beta function, computed with the Lentz continued-fraction expansion
// (Numerical Recipes betacf). Inputs: a, b > 0 and 0 <= x <= 1.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := logBeta(a, b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Use the symmetry relation for better convergence.
	frontSym := math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction of the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-30
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= t) for a Student t distribution with df degrees
// of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: StudentTCDF requires df > 0")
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom.
func TTestPValue(t, df float64) float64 {
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// FCDF returns P(X <= f) for a Fisher F distribution with (df1, df2)
// degrees of freedom.
func FCDF(f, df1, df2 float64) float64 {
	if f <= 0 {
		return 0
	}
	x := df1 * f / (df1*f + df2)
	return RegularizedIncompleteBeta(df1/2, df2/2, x)
}

// FTestPValue returns the upper-tail p-value P(X > f) of the F distribution.
func FTestPValue(f, df1, df2 float64) float64 {
	p := 1 - FCDF(f, df1, df2)
	if p < 0 {
		p = 0
	}
	return p
}
