package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDF(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.96, 0.9750021},
		{-1.96, 0.0249979},
		{3, 0.9986501},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-6) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=0")
		}
	}()
	NormalQuantile(0)
}

func TestIncompleteBetaBounds(t *testing.T) {
	if got := RegularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v, want 0", got)
	}
	if got := RegularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v, want 1", got)
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegularizedIncompleteBeta(1, 1, x); !almostEqual(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	got := RegularizedIncompleteBeta(2.5, 4.5, 0.3)
	sym := 1 - RegularizedIncompleteBeta(4.5, 2.5, 0.7)
	if !almostEqual(got, sym, 1e-12) {
		t.Errorf("symmetry violated: %v vs %v", got, sym)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// With df -> large, t CDF approaches normal CDF.
	if got := StudentTCDF(1.96, 1e6); !almostEqual(got, 0.975, 1e-3) {
		t.Errorf("t CDF large df = %v, want ~0.975", got)
	}
	// t distribution with df=1 is Cauchy: CDF(1) = 0.75.
	if got := StudentTCDF(1, 1); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("Cauchy CDF(1) = %v, want 0.75", got)
	}
	if got := StudentTCDF(0, 5); got != 0.5 {
		t.Errorf("t CDF(0) = %v, want 0.5", got)
	}
	// Critical value check: P(T <= 2.776) ~ 0.975 for df=4.
	if got := StudentTCDF(2.776, 4); !almostEqual(got, 0.975, 5e-4) {
		t.Errorf("t CDF(2.776, 4) = %v, want ~0.975", got)
	}
}

func TestTTestPValue(t *testing.T) {
	// |t| = 2.776 with df = 4 gives p ~ 0.05.
	if got := TTestPValue(2.776, 4); !almostEqual(got, 0.05, 1e-3) {
		t.Errorf("p = %v, want ~0.05", got)
	}
	if got := TTestPValue(-2.776, 4); !almostEqual(got, 0.05, 1e-3) {
		t.Errorf("p should be symmetric in t; got %v", got)
	}
	if got := TTestPValue(0, 10); got != 1 {
		t.Errorf("p(t=0) = %v, want 1", got)
	}
}

func TestFCDFKnownValues(t *testing.T) {
	// F(1, d2) is the square of a t(d2) variable: P(F <= q^2) = 2*P(T<=q)-1.
	q := 2.0
	want := 2*StudentTCDF(q, 7) - 1
	if got := FCDF(q*q, 1, 7); !almostEqual(got, want, 1e-9) {
		t.Errorf("FCDF = %v, want %v", got, want)
	}
	if got := FCDF(0, 3, 9); got != 0 {
		t.Errorf("FCDF(0) = %v, want 0", got)
	}
	// Critical value: F(0.95; 3, 10) ~ 3.708.
	if got := FCDF(3.708, 3, 10); !almostEqual(got, 0.95, 1e-3) {
		t.Errorf("FCDF(3.708;3,10) = %v, want ~0.95", got)
	}
}

func TestCDFMonotonicityProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x1 := math.Abs(math.Mod(a, 1))
		x2 := math.Abs(math.Mod(b, 1))
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		// CDFs must be monotone nondecreasing.
		return RegularizedIncompleteBeta(2, 5, x1) <= RegularizedIncompleteBeta(2, 5, x2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStudentTMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		t1 := math.Mod(a, 50)
		t2 := math.Mod(b, 50)
		if math.IsNaN(t1) || math.IsNaN(t2) {
			return true
		}
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return StudentTCDF(t1, 8) <= StudentTCDF(t2, 8)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
