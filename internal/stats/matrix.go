package stats

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64. The zero value is an empty
// matrix; use NewMatrix or MatrixFromRows to create one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a Rows x Cols matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("stats: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("stats: ragged rows in MatrixFromRows")
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, ErrDimensionMismatch
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			rowOut := out.Data[i*out.Cols : (i+1)*out.Cols]
			rowOther := other.Data[k*other.Cols : (k+1)*other.Cols]
			for j := range rowOther {
				rowOut[j] += a * rowOther[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, ErrDimensionMismatch
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Scale multiplies every element by f, in place, and returns m.
func (m *Matrix) Scale(f float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= f
	}
	return m
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, ErrDimensionMismatch
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += other.Data[i]
	}
	return out, nil
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) (*Matrix, error) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return nil, ErrDimensionMismatch
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= other.Data[i]
	}
	return out, nil
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			d := m.At(i, j) - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SolveSPD solves A x = b for symmetric positive-definite A via Cholesky
// decomposition. It is used by the OLS solver on the normal equations.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, ErrDimensionMismatch
	}
	// Cholesky: A = L L^T.
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("stats: matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// InvertSPD inverts a symmetric positive-definite matrix by solving against
// the identity columns. Used for OLS coefficient covariance.
func InvertSPD(a *Matrix) (*Matrix, error) {
	n := a.Rows
	out := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveSPD(a, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}
