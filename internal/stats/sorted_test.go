package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortedInsertRemove(t *testing.T) {
	xs := []float64{1, 3, 3, 5}
	xs = SortedInsert(xs, 3)
	want := []float64{1, 3, 3, 3, 5}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("after insert: %v", xs)
		}
	}
	xs, ok := SortedRemove(xs, 3)
	if !ok || len(xs) != 4 {
		t.Fatalf("remove failed: %v", xs)
	}
	if _, ok := SortedRemove(xs, 99); ok {
		t.Fatal("removing an absent value must report false")
	}
	xs = SortedInsert(xs, -2)
	if xs[0] != -2 {
		t.Fatalf("head insert: %v", xs)
	}
	xs = SortedInsert(xs, 100)
	if xs[len(xs)-1] != 100 {
		t.Fatalf("tail insert: %v", xs)
	}
}

func TestSortedInsertEmpty(t *testing.T) {
	xs := SortedInsert(nil, 7)
	if len(xs) != 1 || xs[0] != 7 {
		t.Fatalf("insert into nil: %v", xs)
	}
	if got, ok := SortedRemove(nil, 7); ok || len(got) != 0 {
		t.Fatal("remove from nil must be a no-op")
	}
}

// TestSortedRepairMatchesResort pins the incremental-benchmark contract:
// a randomly repaired slice is bit-identical to sorting the multiset from
// scratch, so quantiles read from it match a full recomputation.
func TestSortedRepairMatchesResort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(rng.Intn(40)) / 4 // ties on purpose
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	for step := 0; step < 500; step++ {
		i := rng.Intn(len(vals))
		old := vals[i]
		vals[i] = float64(rng.Intn(40)) / 4
		var ok bool
		sorted, ok = SortedRemove(sorted, old)
		if !ok {
			t.Fatalf("step %d: value %v missing from sorted column", step, old)
		}
		sorted = SortedInsert(sorted, vals[i])
	}

	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	if len(sorted) != len(want) {
		t.Fatalf("length drifted: %d != %d", len(sorted), len(want))
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("repair diverged at %d: %v != %v", i, sorted[i], want[i])
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if SortedQuantile(sorted, q) != SortedQuantile(want, q) {
			t.Fatalf("quantile %v diverged", q)
		}
	}
}
