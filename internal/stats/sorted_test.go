package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSortedInsertRemove(t *testing.T) {
	xs := []float64{1, 3, 3, 5}
	xs = SortedInsert(xs, 3)
	want := []float64{1, 3, 3, 3, 5}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("after insert: %v", xs)
		}
	}
	xs, ok := SortedRemove(xs, 3)
	if !ok || len(xs) != 4 {
		t.Fatalf("remove failed: %v", xs)
	}
	if _, ok := SortedRemove(xs, 99); ok {
		t.Fatal("removing an absent value must report false")
	}
	xs = SortedInsert(xs, -2)
	if xs[0] != -2 {
		t.Fatalf("head insert: %v", xs)
	}
	xs = SortedInsert(xs, 100)
	if xs[len(xs)-1] != 100 {
		t.Fatalf("tail insert: %v", xs)
	}
}

func TestSortedInsertEmpty(t *testing.T) {
	xs := SortedInsert(nil, 7)
	if len(xs) != 1 || xs[0] != 7 {
		t.Fatalf("insert into nil: %v", xs)
	}
	if got, ok := SortedRemove(nil, 7); ok || len(got) != 0 {
		t.Fatal("remove from nil must be a no-op")
	}
}

// TestSortedRepairMatchesResort pins the incremental-benchmark contract:
// a randomly repaired slice is bit-identical to sorting the multiset from
// scratch, so quantiles read from it match a full recomputation.
func TestSortedRepairMatchesResort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(rng.Intn(40)) / 4 // ties on purpose
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)

	for step := 0; step < 500; step++ {
		i := rng.Intn(len(vals))
		old := vals[i]
		vals[i] = float64(rng.Intn(40)) / 4
		var ok bool
		sorted, ok = SortedRemove(sorted, old)
		if !ok {
			t.Fatalf("step %d: value %v missing from sorted column", step, old)
		}
		sorted = SortedInsert(sorted, vals[i])
	}

	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	if len(sorted) != len(want) {
		t.Fatalf("length drifted: %d != %d", len(sorted), len(want))
	}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("repair diverged at %d: %v != %v", i, sorted[i], want[i])
		}
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if SortedQuantile(sorted, q) != SortedQuantile(want, q) {
			t.Fatalf("quantile %v diverged", q)
		}
	}
}

// TestSortedBatchRepairMatchesSequential pins the batched repair — the
// sharded ledger's single-pass column update — against the sequential
// remove/insert path on random multisets: same output bytes, fresh slice,
// untouched input.
func TestSortedBatchRepairMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(20)) / 4 // ties on purpose
		}
		sort.Float64s(xs)
		orig := append([]float64(nil), xs...)

		// Removes drawn mostly from the multiset, sometimes absent (stale
		// removes must be tolerated, like SortedRemove reporting false).
		var removes, inserts []float64
		for k := rng.Intn(8); k > 0; k-- {
			if len(xs) > 0 && rng.Intn(4) > 0 {
				removes = append(removes, xs[rng.Intn(len(xs))])
			} else {
				removes = append(removes, 99+float64(rng.Intn(5)))
			}
		}
		for k := rng.Intn(8); k > 0; k-- {
			inserts = append(inserts, float64(rng.Intn(20))/4)
		}

		want := append([]float64(nil), xs...)
		for _, v := range removes {
			want, _ = SortedRemove(want, v)
		}
		for _, v := range inserts {
			want = SortedInsert(want, v)
		}

		got := SortedBatchRepair(xs, removes, inserts)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: diverged at %d: %v != %v\n got  %v\n want %v", trial, i, got[i], want[i], got, want)
			}
		}
		for i := range orig {
			if xs[i] != orig[i] {
				t.Fatalf("trial %d: input slice mutated at %d", trial, i)
			}
		}
	}
	// Both batches empty: the input comes back as-is.
	xs := []float64{1, 2, 3}
	if got := SortedBatchRepair(xs, nil, nil); &got[0] != &xs[0] {
		t.Fatal("empty repair must return the input slice unchanged")
	}
}
