package stats

import "math"

// FactorAnalysis holds the output of a principal-component factor analysis
// as used to build Table 3: measures (columns of the input matrix) are
// reduced to a small number of components, and each measure is assigned to
// the component on which it loads most heavily.
type FactorAnalysis struct {
	// Eigenvalues of the correlation matrix, descending.
	Eigenvalues []float64
	// Loadings is a p x k matrix: Loadings[i][j] is the (rotated) loading of
	// measure i on component j.
	Loadings *Matrix
	// Scores is an n x k matrix of component scores for each observation,
	// computed from standardized data and rotated loadings.
	Scores *Matrix
	// Assignment[i] is the component index (0..k-1) on which measure i has
	// its largest absolute loading.
	Assignment []int
	// ExplainedVariance[j] is the proportion of total variance explained by
	// component j (before rotation).
	ExplainedVariance []float64
}

// PCAOptions configures PrincipalComponents.
type PCAOptions struct {
	// Components is the number of components to retain. If zero, the Kaiser
	// criterion (eigenvalue > 1) is applied.
	Components int
	// Varimax applies varimax rotation to the retained loadings, which is
	// the standard way to make principal-component "factors" interpretable
	// (each measure loads on one component), matching the paper's use of
	// factor analysis "based on the principal component technique".
	Varimax bool
}

// PrincipalComponents performs a principal-component factor analysis of the
// columns of data (n observations x p measures). Columns are standardized,
// the correlation matrix is eigendecomposed, the first k components are
// retained and optionally varimax-rotated.
func PrincipalComponents(data *Matrix, opts PCAOptions) (*FactorAnalysis, error) {
	n, p := data.Rows, data.Cols
	if n < 3 || p < 2 {
		return nil, ErrInsufficientData
	}

	// Standardize columns.
	std := NewMatrix(n, p)
	for j := 0; j < p; j++ {
		col := Standardize(data.Col(j))
		for i := 0; i < n; i++ {
			std.Set(i, j, col[i])
		}
	}

	corr, err := CorrelationMatrix(std)
	if err != nil {
		return nil, err
	}
	eig, err := EigenSymmetric(corr)
	if err != nil {
		return nil, err
	}

	k := opts.Components
	if k <= 0 {
		for _, v := range eig.Values {
			if v > 1 {
				k++
			}
		}
		if k == 0 {
			k = 1
		}
	}
	if k > p {
		k = p
	}

	// Loadings: eigenvector scaled by sqrt(eigenvalue).
	loadings := NewMatrix(p, k)
	for j := 0; j < k; j++ {
		scale := math.Sqrt(math.Max(eig.Values[j], 0))
		for i := 0; i < p; i++ {
			loadings.Set(i, j, eig.Vectors.At(i, j)*scale)
		}
	}
	if opts.Varimax && k > 1 {
		loadings = varimax(loadings)
	}

	total := float64(p)
	explained := make([]float64, k)
	for j := 0; j < k; j++ {
		explained[j] = math.Max(eig.Values[j], 0) / total
	}

	// Component scores: regression-style scores std * loadings * (L^T L)^-1
	// reduce to std * loadings for orthogonal loadings; we use the simple
	// projection which is sufficient for the downstream regressions.
	scores, err := std.Mul(loadings)
	if err != nil {
		return nil, err
	}

	assignment := make([]int, p)
	for i := 0; i < p; i++ {
		best, bestAbs := 0, -1.0
		for j := 0; j < k; j++ {
			if a := math.Abs(loadings.At(i, j)); a > bestAbs {
				bestAbs = a
				best = j
			}
		}
		assignment[i] = best
	}

	return &FactorAnalysis{
		Eigenvalues:       eig.Values,
		Loadings:          loadings,
		Scores:            scores,
		Assignment:        assignment,
		ExplainedVariance: explained,
	}, nil
}

// varimax applies the classic varimax rotation (Kaiser 1958) by iterating
// pairwise plane rotations until the varimax criterion stops improving.
func varimax(loadings *Matrix) *Matrix {
	p, k := loadings.Rows, loadings.Cols
	l := loadings.Clone()
	const maxIter = 100
	prev := varimaxCriterion(l)
	for iter := 0; iter < maxIter; iter++ {
		for a := 0; a < k-1; a++ {
			for b := a + 1; b < k; b++ {
				rotatePairVarimax(l, a, b, p)
			}
		}
		cur := varimaxCriterion(l)
		if cur-prev < 1e-10 {
			break
		}
		prev = cur
	}
	return l
}

// rotatePairVarimax finds the optimal rotation angle for columns a and b
// and applies it in place.
func rotatePairVarimax(l *Matrix, a, b, p int) {
	var u, v, num, den float64
	for i := 0; i < p; i++ {
		x, y := l.At(i, a), l.At(i, b)
		ui := x*x - y*y
		vi := 2 * x * y
		u += ui
		v += vi
		num += ui*ui - vi*vi
		den += 2 * ui * vi
	}
	fp := float64(p)
	numer := den - 2*u*v/fp
	denom := num - (u*u-v*v)/fp
	if numer == 0 && denom == 0 {
		return
	}
	phi := 0.25 * math.Atan2(numer, denom)
	c, s := math.Cos(phi), math.Sin(phi)
	for i := 0; i < p; i++ {
		x, y := l.At(i, a), l.At(i, b)
		l.Set(i, a, c*x+s*y)
		l.Set(i, b, -s*x+c*y)
	}
}

func varimaxCriterion(l *Matrix) float64 {
	p, k := l.Rows, l.Cols
	var total float64
	for j := 0; j < k; j++ {
		var s2, s4 float64
		for i := 0; i < p; i++ {
			x2 := l.At(i, j) * l.At(i, j)
			s2 += x2
			s4 += x2 * x2
		}
		total += s4 - s2*s2/float64(p)
	}
	return total
}
