package stats

import "math"

// Regression holds a fitted ordinary least-squares model y = X b + e with an
// intercept in coefficient 0.
type Regression struct {
	// Coefficients[0] is the intercept; Coefficients[i] pairs with
	// predictor column i-1.
	Coefficients []float64
	// StdErrors[i] is the standard error of Coefficients[i].
	StdErrors []float64
	// TStats[i] = Coefficients[i] / StdErrors[i].
	TStats []float64
	// PValues[i] is the two-sided p-value of TStats[i] with n-k-1 degrees
	// of freedom.
	PValues []float64
	// R2 and AdjustedR2 are the (adjusted) coefficients of determination.
	R2, AdjustedR2 float64
	// FStat and FPValue test the joint significance of all predictors.
	FStat, FPValue float64
	// DF is the residual degrees of freedom, n - k - 1.
	DF int
	// Residuals are y - X b.
	Residuals []float64
}

// OLS fits y = b0 + b1*x1 + ... + bk*xk by ordinary least squares, where
// predictors holds the design matrix without the intercept column
// (n rows x k columns). It returns coefficient estimates with standard
// errors, t statistics and two-sided p-values — the regression apparatus
// behind Table 3's "relation with Google" column.
func OLS(y []float64, predictors *Matrix) (*Regression, error) {
	n := len(y)
	if predictors.Rows != n {
		return nil, ErrDimensionMismatch
	}
	k := predictors.Cols
	if n < k+2 {
		return nil, ErrInsufficientData
	}

	// Design matrix with intercept.
	x := NewMatrix(n, k+1)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		for j := 0; j < k; j++ {
			x.Set(i, j+1, predictors.At(i, j))
		}
	}

	xt := x.T()
	xtx, err := xt.Mul(x)
	if err != nil {
		return nil, err
	}
	xty, err := xt.MulVec(y)
	if err != nil {
		return nil, err
	}
	coef, err := SolveSPD(xtx, xty)
	if err != nil {
		return nil, err
	}

	// Residuals and sums of squares.
	fitted, err := x.MulVec(coef)
	if err != nil {
		return nil, err
	}
	resid := make([]float64, n)
	meanY := Mean(y)
	var sse, sst float64
	for i := 0; i < n; i++ {
		resid[i] = y[i] - fitted[i]
		sse += resid[i] * resid[i]
		d := y[i] - meanY
		sst += d * d
	}
	df := n - k - 1
	sigma2 := sse / float64(df)

	inv, err := InvertSPD(xtx)
	if err != nil {
		return nil, err
	}
	stderrs := make([]float64, k+1)
	tstats := make([]float64, k+1)
	pvals := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		se := math.Sqrt(sigma2 * inv.At(i, i))
		stderrs[i] = se
		switch {
		case se > 0:
			tstats[i] = coef[i] / se
			pvals[i] = TTestPValue(tstats[i], float64(df))
		case coef[i] != 0:
			// Perfect fit: a nonzero coefficient with zero residual
			// variance is infinitely significant.
			tstats[i] = math.Inf(1)
			pvals[i] = 0
		default:
			pvals[i] = 1
		}
	}

	r2 := 0.0
	if sst > 0 {
		r2 = 1 - sse/sst
	}
	adjR2 := 1 - (1-r2)*float64(n-1)/float64(df)

	var fstat, fp float64
	if k > 0 && sse > 0 {
		ssr := sst - sse
		fstat = (ssr / float64(k)) / sigma2
		fp = FTestPValue(fstat, float64(k), float64(df))
	}

	return &Regression{
		Coefficients: coef,
		StdErrors:    stderrs,
		TStats:       tstats,
		PValues:      pvals,
		R2:           r2,
		AdjustedR2:   adjR2,
		FStat:        fstat,
		FPValue:      fp,
		DF:           df,
		Residuals:    resid,
	}, nil
}

// SimpleOLS fits y = a + b*x and returns the slope, its p-value and the R².
// It is a convenience wrapper used by single-predictor validation checks.
func SimpleOLS(y, x []float64) (slope, pValue, r2 float64, err error) {
	if len(y) != len(x) {
		return 0, 0, 0, ErrDimensionMismatch
	}
	m := NewMatrix(len(x), 1)
	for i, v := range x {
		m.Set(i, 0, v)
	}
	reg, err := OLS(y, m)
	if err != nil {
		return 0, 0, 0, err
	}
	return reg.Coefficients[1], reg.PValues[1], reg.R2, nil
}
