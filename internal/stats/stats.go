// Package stats implements the statistical machinery used by the paper's
// validation section (Section 4): descriptive statistics, rank and linear
// correlation (including the Kendall tau used for the ranking comparison of
// Section 4.1), principal-component factor analysis (Table 3), ordinary
// least-squares regression with significance testing (Table 3), and one-way
// ANOVA with Bonferroni post-hoc pairwise comparisons (Table 4).
//
// Everything is implemented from scratch on top of the standard library: a
// dense matrix type, a Jacobi eigensolver for symmetric matrices, and the
// incomplete beta / gamma functions that back the Student t and Fisher F
// distributions.
//
//informer:deterministic
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more observations
// than were supplied (for example a variance of a single point, or a
// regression with fewer rows than coefficients).
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrDimensionMismatch is returned when paired samples or matrix operands
// have incompatible shapes.
var ErrDimensionMismatch = errors.New("stats: dimension mismatch")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 when fewer than two observations are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population (n) variance of xs.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central order
// statistics for even n). It panics on an empty slice.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R default).
// It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedQuantile(sorted, q)
}

// SortedQuantile returns the q-th quantile of an already-sorted (ascending)
// slice, with the same type-7 interpolation as Quantile. Reading several
// quantiles from one sorted slice amortises the sort, which is what the
// quality benchmark derivation relies on. It panics on an empty slice.
func SortedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: SortedQuantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h := q * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SortedQuantiles reads multiple quantiles from an already-sorted slice.
func SortedQuantiles(sorted []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = SortedQuantile(sorted, q)
	}
	return out
}

// Quantiles sorts one copy of xs and returns the requested quantiles,
// paying for a single sort however many quantiles are read.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedQuantiles(sorted, qs...)
}

// Standardize returns (xs - mean) / stddev. When the standard deviation is
// zero the centred values are returned unscaled, so a constant column maps
// to all zeros rather than NaNs.
func Standardize(xs []float64) []float64 {
	m := Mean(xs)
	sd := StdDev(xs)
	out := make([]float64, len(xs))
	for i, x := range xs {
		if sd > 0 {
			out[i] = (x - m) / sd
		} else {
			out[i] = x - m
		}
	}
	return out
}

// Covariance returns the unbiased sample covariance of the paired samples
// xs and ys.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1), nil
}

// Describe summarises a sample.
type Describe struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Describe for xs. A zero Describe is returned for an
// empty sample.
func Summarize(xs []float64) Describe {
	if len(xs) == 0 {
		return Describe{}
	}
	return Describe{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

// Ranks assigns 1-based fractional ranks to xs (ties receive the average of
// the ranks they span), as used by Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
