package stats

import (
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a symmetric matrix: Values[i] is the
// i-th eigenvalue (descending) and Vectors column i is the corresponding
// unit eigenvector.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // n x n, column i pairs with Values[i]
}

// EigenSymmetric computes the eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. Jacobi is exact enough and perfectly
// stable for the small (p <= ~30) correlation matrices produced by the
// factor analysis of Table 3.
func EigenSymmetric(a *Matrix) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, ErrDimensionMismatch
	}
	n := a.Rows
	m := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(m)
		if off < 1e-13 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				// Rotation angle.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation to rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		vec []float64
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{val: m.At(i, i), vec: v.Col(i)}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].val > pairs[b].val })

	out := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for i, p := range pairs {
		out.Values[i] = p.val
		// Sign convention: make the largest-magnitude component positive so
		// eigenvectors are reproducible across runs.
		maxAbs, sign := 0.0, 1.0
		for _, x := range p.vec {
			if math.Abs(x) > maxAbs {
				maxAbs = math.Abs(x)
				if x < 0 {
					sign = -1
				} else {
					sign = 1
				}
			}
		}
		for k := 0; k < n; k++ {
			out.Vectors.Set(k, i, sign*p.vec[k])
		}
	}
	return out, nil
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
