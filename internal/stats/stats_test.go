package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanAndSum(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := Mean([]float64{2, 4, 6, 8}); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := PopVariance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", got)
	}
	if got := Variance(xs); !almostEqual(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if Min(xs) != 1 || Max(xs) != 9 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
	if got := Median(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Median = %v, want 4", got)
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Errorf("odd Median = %v, want 2", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range q is clamped.
	if got := Quantile(xs, -1); got != 1 {
		t.Errorf("Quantile(-1) = %v, want 1", got)
	}
}

func TestStandardize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	z := Standardize(xs)
	if !almostEqual(Mean(z), 0, 1e-12) {
		t.Errorf("standardized mean = %v, want 0", Mean(z))
	}
	if !almostEqual(StdDev(z), 1, 1e-12) {
		t.Errorf("standardized sd = %v, want 1", StdDev(z))
	}
	// Constant column: centred, not scaled, no NaNs.
	z = Standardize([]float64{7, 7, 7})
	for _, v := range z {
		if v != 0 {
			t.Errorf("constant column standardize = %v, want 0", v)
		}
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksPropertyPermutationOfOneToN(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		r := Ranks(xs)
		// Rank sum must equal n(n+1)/2 regardless of ties.
		n := float64(len(xs))
		return almostEqual(Sum(r), n*(n+1)/2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	c, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 2*Variance(xs), 1e-12) {
		t.Errorf("Covariance = %v, want %v", c, 2*Variance(xs))
	}
	if _, err := Covariance(xs, ys[:2]); err != ErrDimensionMismatch {
		t.Errorf("want dimension mismatch, got %v", err)
	}
	if _, err := Covariance([]float64{1}, []float64{1}); err != ErrInsufficientData {
		t.Errorf("want insufficient data, got %v", err)
	}
}

func TestSummarize(t *testing.T) {
	d := Summarize([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Mean != 3 || d.Min != 1 || d.Max != 5 || d.Median != 3 {
		t.Errorf("unexpected Describe: %+v", d)
	}
	if (Summarize(nil) != Describe{}) {
		t.Error("Summarize(nil) should be zero value")
	}
}

func TestSummarizeMatchesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
	}
	d := Summarize(xs)
	if !almostEqual(d.Mean, 10, 0.5) {
		t.Errorf("mean = %v, want ~10", d.Mean)
	}
	if !almostEqual(d.StdDev, 3, 0.5) {
		t.Errorf("sd = %v, want ~3", d.StdDev)
	}
}
