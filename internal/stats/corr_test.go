package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Errorf("Pearson const = (%v, %v), want (0, nil)", r, err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform gives Spearman 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", r)
	}
}

func TestKendallTauKnown(t *testing.T) {
	// Classic example: one discordant pair among 4 items.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{1, 2, 4, 3}
	tau, err := KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// 5 concordant, 1 discordant, no ties: tau = 4/6.
	if !almostEqual(tau, 4.0/6.0, 1e-12) {
		t.Errorf("tau = %v, want %v", tau, 4.0/6.0)
	}
}

func TestKendallTauPerfectAndReversed(t *testing.T) {
	xs := []float64{3, 1, 4, 1.5, 9, 2.6}
	tau, _ := KendallTau(xs, xs)
	if !almostEqual(tau, 1, 1e-12) {
		t.Errorf("tau(x,x) = %v, want 1", tau)
	}
	rev := make([]float64, len(xs))
	for i, x := range xs {
		rev[i] = -x
	}
	tau, _ = KendallTau(xs, rev)
	if !almostEqual(tau, -1, 1e-12) {
		t.Errorf("tau(x,-x) = %v, want -1", tau)
	}
}

func TestKendallTauTies(t *testing.T) {
	// With ties, tau-b stays within [-1, 1] and handles the correction.
	xs := []float64{1, 1, 2, 2}
	ys := []float64{1, 2, 1, 2}
	tau, err := KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, 0, 1e-12) {
		t.Errorf("tau = %v, want 0", tau)
	}
}

// Property: tau in [-1, 1], symmetric in its arguments, invariant under
// strictly increasing transforms.
func TestKendallTauProperties(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 2 {
			return true
		}
		xs := make([]float64, len(pairs))
		ys := make([]float64, len(pairs))
		for i, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.Abs(p[0]) > 1e100 || math.Abs(p[1]) > 1e100 {
				return true // avoid overflow in the affine transform below
			}
			xs[i], ys[i] = p[0], p[1]
		}
		t1, err1 := KendallTau(xs, ys)
		t2, err2 := KendallTau(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		if t1 < -1-1e-9 || t1 > 1+1e-9 {
			return false
		}
		if !almostEqual(t1, t2, 1e-12) {
			return false
		}
		// Monotone transform of xs: tau unchanged.
		tx := make([]float64, len(xs))
		for i, x := range xs {
			tx[i] = 3*x + 1
		}
		t3, _ := KendallTau(tx, ys)
		return almostEqual(t1, t3, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestKendallDistance(t *testing.T) {
	// Identical rankings: 0 discordant pairs.
	d, err := KendallDistance([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || d != 0 {
		t.Errorf("distance = %v, %v; want 0, nil", d, err)
	}
	// Fully reversed: n(n-1)/2.
	d, _ = KendallDistance([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1})
	if d != 6 {
		t.Errorf("reversed distance = %v, want 6", d)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 200
	data := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		data.Set(i, 0, x)
		data.Set(i, 1, x+0.1*rng.NormFloat64()) // strongly correlated with col 0
		data.Set(i, 2, rng.NormFloat64())       // independent
	}
	c, err := CorrelationMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 1 || c.At(1, 1) != 1 {
		t.Error("diagonal must be 1")
	}
	if c.At(0, 1) < 0.9 {
		t.Errorf("corr(0,1) = %v, want > 0.9", c.At(0, 1))
	}
	if math.Abs(c.At(0, 2)) > 0.25 {
		t.Errorf("corr(0,2) = %v, want ~0", c.At(0, 2))
	}
	if c.At(0, 1) != c.At(1, 0) {
		t.Error("correlation matrix must be symmetric")
	}
}

func TestCovarianceMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := NewMatrix(50, 4)
	for i := range data.Data {
		data.Data[i] = rng.NormFloat64()
	}
	c, err := CovarianceMatrix(data)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsSymmetric(1e-12) {
		t.Error("covariance matrix must be symmetric")
	}
	for j := 0; j < 4; j++ {
		if c.At(j, j) < 0 {
			t.Error("variance cannot be negative")
		}
	}
}
