package stats

import "math"

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns 0 when either sample has zero
// variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	if len(xs) < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation coefficient, i.e. the
// Pearson correlation of the fractional ranks of xs and ys.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// KendallTau returns the Kendall tau-b rank correlation coefficient of the
// paired samples xs and ys. Tau-b corrects for ties in either sample, which
// matters here because quality measures over top-20 search results routinely
// tie. The implementation is the direct O(n^2) pair scan; the samples in the
// paper's experiment are 20 items per query, so quadratic cost is irrelevant
// and the simple form keeps the tie handling transparent.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	var concordant, discordant float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			if dx == 0 || dy == 0 {
				continue // tied pairs are handled by the denominator correction
			}
			if dx*dy > 0 {
				concordant++
			} else {
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - tiedPairs(xs)) * (n0 - tiedPairs(ys)))
	if denom == 0 {
		return 0, nil
	}
	return (concordant - discordant) / denom, nil
}

// tiedPairs returns sum over tie groups of t*(t-1)/2 for the sample, the
// tie correction term of tau-b.
func tiedPairs(xs []float64) float64 {
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	var total float64
	for _, c := range counts {
		if c > 1 {
			total += float64(c*(c-1)) / 2
		}
	}
	return total
}

// KendallDistance returns the number of discordant pairs between two
// rankings expressed as position slices (xs[i] is the rank of item i under
// the first ranking, ys[i] under the second). This is the unnormalised
// Kendall tau distance.
func KendallDistance(xs, ys []float64) (int, error) {
	if len(xs) != len(ys) {
		return 0, ErrDimensionMismatch
	}
	n := len(xs)
	d := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (xs[i]-xs[j])*(ys[i]-ys[j]) < 0 {
				d++
			}
		}
	}
	return d, nil
}

// CorrelationMatrix returns the p x p Pearson correlation matrix of the
// columns of data (n rows x p columns).
func CorrelationMatrix(data *Matrix) (*Matrix, error) {
	p := data.Cols
	out := NewMatrix(p, p)
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = data.Col(j)
	}
	for i := 0; i < p; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < p; j++ {
			r, err := Pearson(cols[i], cols[j])
			if err != nil {
				return nil, err
			}
			out.Set(i, j, r)
			out.Set(j, i, r)
		}
	}
	return out, nil
}

// CovarianceMatrix returns the p x p sample covariance matrix of the columns
// of data.
func CovarianceMatrix(data *Matrix) (*Matrix, error) {
	p := data.Cols
	out := NewMatrix(p, p)
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = data.Col(j)
	}
	for i := 0; i < p; i++ {
		for j := i; j < p; j++ {
			c, err := Covariance(cols[i], cols[j])
			if err != nil {
				return nil, err
			}
			out.Set(i, j, c)
			out.Set(j, i, c)
		}
	}
	return out, nil
}
