package stats

import "sort"

// Sorted-slice repair primitives for incremental quantile maintenance.
// The quality matrix keeps one sorted column of observed values per
// measure; when a handful of corpus records change, the column is repaired
// with SortedRemove + SortedInsert instead of being re-sorted, and the
// benchmarks are re-read from the repaired slice with SortedQuantiles.
// Both operations preserve the invariant that the slice holds exactly the
// multiset of observed values in ascending order — the same array a full
// sort of the multiset would produce — so incrementally maintained
// quantiles are bit-identical to recomputed ones.

// SortedInsert inserts v into ascending-sorted xs, in place when capacity
// allows, and returns the grown slice.
func SortedInsert(xs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// SortedRemove deletes one occurrence of v from ascending-sorted xs and
// returns the shrunk slice. The second result reports whether v was found;
// when false the slice is returned unchanged.
func SortedRemove(xs []float64, v float64) ([]float64, bool) {
	i := sort.SearchFloat64s(xs, v)
	if i >= len(xs) || xs[i] != v {
		return xs, false
	}
	copy(xs[i:], xs[i+1:])
	return xs[:len(xs)-1], true
}
