package stats

import "sort"

// Sorted-slice repair primitives for incremental quantile maintenance.
// The quality matrix keeps one sorted column of observed values per
// measure; when a handful of corpus records change, the column is repaired
// with SortedRemove + SortedInsert instead of being re-sorted, and the
// benchmarks are re-read from the repaired slice with SortedQuantiles.
// Both operations preserve the invariant that the slice holds exactly the
// multiset of observed values in ascending order — the same array a full
// sort of the multiset would produce — so incrementally maintained
// quantiles are bit-identical to recomputed ones.

// SortedInsert inserts v into ascending-sorted xs, in place when capacity
// allows, and returns the grown slice.
func SortedInsert(xs []float64, v float64) []float64 {
	i := sort.SearchFloat64s(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

// SortedRemove deletes one occurrence of v from ascending-sorted xs and
// returns the shrunk slice. The second result reports whether v was found;
// when false the slice is returned unchanged.
func SortedRemove(xs []float64, v float64) ([]float64, bool) {
	i := sort.SearchFloat64s(xs, v)
	if i >= len(xs) || xs[i] != v {
		return xs, false
	}
	copy(xs[i:], xs[i+1:])
	return xs[:len(xs)-1], true
}

// SortedBatchRepair applies many removals and insertions to an
// ascending-sorted slice in one O(n + k log k) merge pass, where k is the
// batch size — the bulk counterpart of SortedRemove+SortedInsert for ticks
// whose delta spans a large column (the sharded corpus' global benchmark
// ledger repairs 100k-value columns this way instead of paying one O(n)
// memmove per changed value). removes and inserts are consumed as
// multisets; a remove with no matching element is ignored, mirroring
// SortedRemove's not-found tolerance. xs is left untouched; the result is
// a fresh slice holding exactly the repaired multiset in ascending order —
// bit-identical to re-sorting the repaired multiset from scratch.
func SortedBatchRepair(xs, removes, inserts []float64) []float64 {
	if len(removes) == 0 && len(inserts) == 0 {
		return xs
	}
	rem := append([]float64(nil), removes...)
	ins := append([]float64(nil), inserts...)
	sort.Float64s(rem)
	sort.Float64s(ins)
	// Stale removes may outnumber what the slice holds; clamp the capacity
	// hint rather than trusting the arithmetic.
	capHint := len(xs) - len(rem) + len(ins)
	if capHint < 0 {
		capHint = len(ins)
	}
	out := make([]float64, 0, capHint)
	ri, ii := 0, 0
	for _, v := range xs {
		// Emit pending insertions strictly below v first.
		for ii < len(ins) && ins[ii] < v {
			out = append(out, ins[ii])
			ii++
		}
		// A remove below v can never match anymore: drop it (not-found).
		for ri < len(rem) && rem[ri] < v {
			ri++
		}
		if ri < len(rem) && rem[ri] == v {
			ri++ // one occurrence consumed by the removal multiset
			continue
		}
		out = append(out, v)
	}
	out = append(out, ins[ii:]...)
	return out
}
