package stats

import (
	"math/rand"
	"testing"
)

func normalGroup(rng *rand.Rand, n int, mean, sd float64) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = mean + sd*rng.NormFloat64()
	}
	return g
}

func TestANOVADetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	groups := [][]float64{
		normalGroup(rng, 100, 0, 1),
		normalGroup(rng, 100, 1, 1),
		normalGroup(rng, 100, 2, 1),
	}
	a, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	if a.PValue > 1e-6 {
		t.Errorf("ANOVA missed a strong effect: p = %v", a.PValue)
	}
	if a.DFBetween != 2 || a.DFWithin != 297 {
		t.Errorf("df = (%d, %d), want (2, 297)", a.DFBetween, a.DFWithin)
	}
}

func TestANOVANullNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	groups := [][]float64{
		normalGroup(rng, 80, 5, 2),
		normalGroup(rng, 80, 5, 2),
		normalGroup(rng, 80, 5, 2),
	}
	a, err := OneWayANOVA(groups)
	if err != nil {
		t.Fatal(err)
	}
	if a.PValue < 0.001 {
		t.Errorf("false positive under the null: p = %v", a.PValue)
	}
}

func TestANOVAErrors(t *testing.T) {
	if _, err := OneWayANOVA([][]float64{{1, 2}}); err != ErrInsufficientData {
		t.Error("one group must fail")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {}}); err != ErrInsufficientData {
		t.Error("empty group must fail")
	}
	if _, err := OneWayANOVA([][]float64{{1}, {2}}); err != ErrInsufficientData {
		t.Error("n <= k must fail")
	}
}

func TestANOVAConstantGroups(t *testing.T) {
	// Zero within-variance, different means: infinite F, p = 0.
	a, err := OneWayANOVA([][]float64{{1, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a.PValue != 0 {
		t.Errorf("p = %v, want 0", a.PValue)
	}
	// Identical constants: p = 1.
	a, err = OneWayANOVA([][]float64{{3, 3}, {3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.PValue != 1 {
		t.Errorf("p = %v, want 1", a.PValue)
	}
}

func TestBonferroniPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	// Group 0 and 1 equal; group 2 much larger.
	groups := [][]float64{
		normalGroup(rng, 120, 0, 1),
		normalGroup(rng, 120, 0.05, 1),
		normalGroup(rng, 120, 3, 1),
	}
	comps, err := Bonferroni(groups)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("got %d comparisons, want 3", len(comps))
	}
	byPair := map[[2]int]PairwiseComparison{}
	for _, c := range comps {
		byPair[[2]int{c.GroupA, c.GroupB}] = c
	}
	if c := byPair[[2]int{0, 1}]; c.Significant {
		t.Errorf("0 vs 1 should be n.s., p = %v", c.PValue)
	}
	if c := byPair[[2]int{0, 2}]; !c.Significant || c.MeanDiff > 0 {
		t.Errorf("0 vs 2 should be significant negative: %+v", c)
	}
	if c := byPair[[2]int{1, 2}]; !c.Significant {
		t.Errorf("1 vs 2 should be significant: %+v", c)
	}
}

func TestPairwiseDirection(t *testing.T) {
	c := PairwiseComparison{MeanDiff: 2, Significant: true}
	if c.Direction() != "> 0" {
		t.Errorf("Direction = %q", c.Direction())
	}
	c = PairwiseComparison{MeanDiff: -2, Significant: true}
	if c.Direction() != "< 0" {
		t.Errorf("Direction = %q", c.Direction())
	}
	c = PairwiseComparison{MeanDiff: 2, Significant: false}
	if c.Direction() != "= 0" {
		t.Errorf("Direction = %q", c.Direction())
	}
}

func TestBonferroniMoreConservativeThanRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	groups := [][]float64{
		normalGroup(rng, 40, 0, 1),
		normalGroup(rng, 40, 0.5, 1),
		normalGroup(rng, 40, 1, 1),
	}
	comps, err := Bonferroni(groups)
	if err != nil {
		t.Fatal(err)
	}
	// Adjusted p must be >= the raw pooled-t p-value (x3 capped at 1).
	a, _ := OneWayANOVA(groups)
	for _, c := range comps {
		se := c.MeanDiff / c.TStat
		_ = se
		raw := TTestPValue(c.TStat, float64(a.DFWithin))
		if c.PValue < raw-1e-12 {
			t.Errorf("adjusted p %v < raw p %v", c.PValue, raw)
		}
	}
}

func TestWelchTTest(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := normalGroup(rng, 100, 0, 1)
	b := normalGroup(rng, 100, 2, 3)
	tt, p, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tt >= 0 {
		t.Errorf("t = %v, want negative", tt)
	}
	if p > 1e-4 {
		t.Errorf("p = %v, want significant", p)
	}
	// Identical constant samples.
	_, p, err = WelchTTest([]float64{1, 1, 1}, []float64{1, 1, 1})
	if err != nil || p != 1 {
		t.Errorf("constant equal samples: p = %v err = %v", p, err)
	}
	if _, _, err := WelchTTest([]float64{1}, []float64{1, 2}); err != ErrInsufficientData {
		t.Error("want insufficient data")
	}
}
