package stats

import (
	"math/rand"
	"testing"
)

func TestOLSRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 500
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	// y = 3 + 2*x1 - 1.5*x2 + eps
	for i := 0; i < n; i++ {
		x1 := rng.NormFloat64()
		x2 := rng.NormFloat64()
		x.Set(i, 0, x1)
		x.Set(i, 1, x2)
		y[i] = 3 + 2*x1 - 1.5*x2 + 0.2*rng.NormFloat64()
	}
	reg, err := OLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(reg.Coefficients[0], 3, 0.05) {
		t.Errorf("intercept = %v, want ~3", reg.Coefficients[0])
	}
	if !almostEqual(reg.Coefficients[1], 2, 0.05) {
		t.Errorf("b1 = %v, want ~2", reg.Coefficients[1])
	}
	if !almostEqual(reg.Coefficients[2], -1.5, 0.05) {
		t.Errorf("b2 = %v, want ~-1.5", reg.Coefficients[2])
	}
	if reg.PValues[1] > 1e-6 || reg.PValues[2] > 1e-6 {
		t.Errorf("strong effects should be significant: p = %v", reg.PValues)
	}
	if reg.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95", reg.R2)
	}
	if reg.FPValue > 1e-6 {
		t.Errorf("F test should reject: p = %v", reg.FPValue)
	}
}

func TestOLSNullPredictorNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 300
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		y[i] = rng.NormFloat64() // independent of x
	}
	reg, err := OLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if reg.PValues[1] < 0.001 {
		t.Errorf("independent predictor spuriously significant: p = %v", reg.PValues[1])
	}
	if reg.R2 > 0.1 {
		t.Errorf("R2 = %v for pure noise", reg.R2)
	}
}

func TestOLSDimensionErrors(t *testing.T) {
	if _, err := OLS([]float64{1, 2}, NewMatrix(3, 1)); err != ErrDimensionMismatch {
		t.Errorf("want mismatch, got %v", err)
	}
	if _, err := OLS([]float64{1, 2}, NewMatrix(2, 5)); err != ErrInsufficientData {
		t.Errorf("want insufficient, got %v", err)
	}
}

func TestOLSResidualsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 200
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		x.Set(i, 0, v)
		y[i] = 1 + v + rng.NormFloat64()
	}
	reg, err := OLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	// Residuals sum to ~0 and are orthogonal to the predictor.
	if !almostEqual(Sum(reg.Residuals), 0, 1e-8) {
		t.Errorf("residual sum = %v", Sum(reg.Residuals))
	}
	var dot float64
	for i := 0; i < n; i++ {
		dot += reg.Residuals[i] * x.At(i, 0)
	}
	if !almostEqual(dot, 0, 1e-8) {
		t.Errorf("residuals not orthogonal to predictor: %v", dot)
	}
}

func TestSimpleOLS(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 10 - 2*v
	}
	slope, p, r2, err := SimpleOLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slope, -2, 1e-9) {
		t.Errorf("slope = %v, want -2", slope)
	}
	if p > 1e-9 {
		t.Errorf("p = %v, want ~0", p)
	}
	if !almostEqual(r2, 1, 1e-9) {
		t.Errorf("r2 = %v, want 1", r2)
	}
	if _, _, _, err := SimpleOLS(y, x[:3]); err != ErrDimensionMismatch {
		t.Error("want dimension mismatch")
	}
}
