package webserve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/informing-observers/informer/internal/feed"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/wire"
)

func newTestServer(t *testing.T) (*webgen.World, *httptest.Server) {
	t.Helper()
	world := webgen.Generate(webgen.Config{Seed: 5, NumSources: 8, NumUsers: 30, CommentText: true})
	ts := httptest.NewServer(New(world))
	t.Cleanup(ts.Close)
	return world, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSitemapListsAllSources(t *testing.T) {
	world, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/sitemap.txt")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	lines := strings.Fields(body)
	if len(lines) != len(world.Sources) {
		t.Errorf("sitemap has %d lines, want %d", len(lines), len(world.Sources))
	}
	for i, l := range lines {
		want := fmt.Sprintf("/s/%d/", i)
		if l != want {
			t.Errorf("line %d = %q, want %q", i, l, want)
		}
	}
}

func TestIndexPageContainsIsland(t *testing.T) {
	world, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/s/0/")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	marker := `<script type="application/x-source-info+json">`
	i := strings.Index(body, marker)
	if i < 0 {
		t.Fatal("no source-info island")
	}
	j := strings.Index(body[i:], "</script>")
	var info wire.SourceInfo
	if err := json.Unmarshal([]byte(body[i+len(marker):i+j]), &info); err != nil {
		t.Fatal(err)
	}
	src := world.Sources[0]
	if info.ID != 0 || info.Name != src.Name || info.Host != src.Host {
		t.Errorf("island mismatch: %+v", info)
	}
	if len(info.DiscussionIDs) != len(src.Discussions) {
		t.Errorf("discussion ids = %d, want %d", len(info.DiscussionIDs), len(src.Discussions))
	}
	if info.OpenDiscussion != src.OpenDiscussions() {
		t.Errorf("open = %d, want %d", info.OpenDiscussion, src.OpenDiscussions())
	}
}

func TestDiscussionPage(t *testing.T) {
	world, ts := newTestServer(t)
	src := world.Sources[0]
	d := src.Discussions[0]
	code, body := get(t, fmt.Sprintf("%s/s/%d/d/%d", ts.URL, src.ID, d.ID))
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	marker := `<script type="application/x-discussion+json">`
	i := strings.Index(body, marker)
	if i < 0 {
		t.Fatal("no discussion island")
	}
	j := strings.Index(body[i:], "</script>")
	var wd wire.Discussion
	if err := json.Unmarshal([]byte(body[i+len(marker):i+j]), &wd); err != nil {
		t.Fatal(err)
	}
	if wd.ID != d.ID || wd.Title != d.Title || len(wd.Comments) != len(d.Comments) {
		t.Errorf("payload mismatch: %+v", wd)
	}
	for k, c := range d.Comments {
		if wd.Comments[k].Body != c.Body {
			t.Errorf("comment %d body mismatch", k)
		}
		if wd.Comments[k].Replies != c.Replies || wd.Comments[k].Feedbacks != c.Feedbacks {
			t.Errorf("comment %d counters mismatch", k)
		}
	}
}

func TestRSSFeedServed(t *testing.T) {
	world, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/s/1/feed.rss")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "rss") {
		t.Errorf("content type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body)
	f, err := feed.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != feed.FormatRSS {
		t.Errorf("format = %v", f.Format)
	}
	if len(f.Items) != len(world.Sources[1].Discussions) {
		t.Errorf("feed items = %d, want %d", len(f.Items), len(world.Sources[1].Discussions))
	}
}

func TestAtomFeedServed(t *testing.T) {
	world, ts := newTestServer(t)
	_, body := get(t, ts.URL+"/s/1/feed.atom")
	f, err := feed.Parse([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if f.Format != feed.FormatAtom {
		t.Errorf("format = %v", f.Format)
	}
	if len(f.Items) != len(world.Sources[1].Discussions) {
		t.Errorf("feed items = %d", len(f.Items))
	}
}

func TestNotFoundCases(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{
		"/s/9999/", "/s/abc/", "/s/0/d/999999", "/s/0/d/xyz", "/s/0/unknown", "/nope",
	} {
		code, _ := get(t, ts.URL+path)
		if code != 404 {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
}

func TestRootAndRobots(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/")
	if code != 200 || !strings.Contains(body, "sitemap") {
		t.Errorf("root page wrong: %d", code)
	}
	code, body = get(t, ts.URL+"/robots.txt")
	if code != 200 || !strings.Contains(body, "User-agent") {
		t.Errorf("robots wrong: %d %q", code, body)
	}
}

func TestGeoCoordinatesInPayload(t *testing.T) {
	world, ts := newTestServer(t)
	// Find a geo-tagged comment.
	for _, src := range world.Sources {
		for _, d := range src.Discussions {
			for ci, c := range d.Comments {
				if c.Geo == nil {
					continue
				}
				_, body := get(t, fmt.Sprintf("%s/s/%d/d/%d", ts.URL, src.ID, d.ID))
				marker := `<script type="application/x-discussion+json">`
				i := strings.Index(body, marker)
				j := strings.Index(body[i:], "</script>")
				var wd wire.Discussion
				if err := json.Unmarshal([]byte(body[i+len(marker):i+j]), &wd); err != nil {
					t.Fatal(err)
				}
				got := wd.Comments[ci]
				if got.Lat == nil || got.Lon == nil {
					t.Fatal("geo lost in serialization")
				}
				if *got.Lat != c.Geo.Lat || *got.Lon != c.Geo.Lon {
					t.Errorf("geo mismatch: %v,%v vs %+v", *got.Lat, *got.Lon, c.Geo)
				}
				return
			}
		}
	}
	t.Skip("no geo-tagged comments in this seed")
}

func TestETagAndNotModified(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/s/0/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on index page")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/s/0/", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp2.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body of %d bytes", len(body))
	}

	// A stale ETag gets the full page again.
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != 200 || len(body3) == 0 {
		t.Errorf("stale etag: status %d, %d bytes", resp3.StatusCode, len(body3))
	}

	// Errors are not ETagged.
	resp4, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != 404 {
		t.Errorf("status = %d", resp4.StatusCode)
	}
}
