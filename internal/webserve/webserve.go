// Package webserve exposes a webgen.World over HTTP: every synthetic source
// gets an index page, one XHTML page per discussion (with an embedded
// JSON data island carrying the machine-readable payload), and RSS/Atom
// feeds. A sitemap lists all sources so a crawler can discover them.
//
// This is substitution S2 of DESIGN.md: the crawler-facing surface of the
// live Web the paper crawled.
package webserve

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strconv"
	"strings"

	"github.com/informing-observers/informer/internal/etag"
	"github.com/informing-observers/informer/internal/feed"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/wire"
)

// Server serves a World.
type Server struct {
	world *webgen.World
	mux   *http.ServeMux
}

// New returns a Server for the given world.
func New(world *webgen.World) *Server {
	s := &Server{world: world, mux: http.NewServeMux()}
	s.mux.HandleFunc("/sitemap.txt", s.handleSitemap)
	s.mux.HandleFunc("/robots.txt", s.handleRobots)
	s.mux.HandleFunc("/s/", s.handleSource)
	s.mux.HandleFunc("/", s.handleRoot)
	return s
}

// ServeHTTP implements http.Handler. GET responses carry strong ETags
// (content hashes) and honour If-None-Match with 304 Not Modified, so
// crawlers can re-crawl incrementally.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &etagRecorder{inner: w}
	s.mux.ServeHTTP(rec, r)
	rec.flush(r)
}

// etagRecorder buffers a response, stamps an ETag over the body, and
// answers 304 when the client already holds the current version.
type etagRecorder struct {
	inner  http.ResponseWriter
	status int
	body   []byte
}

func (e *etagRecorder) Header() http.Header { return e.inner.Header() }

func (e *etagRecorder) WriteHeader(status int) { e.status = status }

func (e *etagRecorder) Write(p []byte) (int, error) {
	e.body = append(e.body, p...)
	return len(p), nil
}

func (e *etagRecorder) flush(r *http.Request) {
	status := e.status
	if status == 0 {
		status = http.StatusOK
	}
	if status == http.StatusOK && r.Method == http.MethodGet {
		tag := fmt.Sprintf("%q", etag.Hash(e.body))
		e.inner.Header().Set("ETag", tag)
		if r.Header.Get("If-None-Match") == tag {
			e.inner.WriteHeader(http.StatusNotModified)
			return
		}
	}
	e.inner.WriteHeader(status)
	e.inner.Write(e.body)
}

func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>web20.test</title></head><body>")
	fmt.Fprintf(w, "<h1>Synthetic Web 2.0 corpus</h1><p>%d sources.</p>", len(s.world.Sources))
	fmt.Fprintf(w, `<p><a href="/sitemap.txt">sitemap</a></p></body></html>`)
}

func (s *Server) handleRobots(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "User-agent: *\nAllow: /\n")
}

func (s *Server) handleSitemap(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, src := range s.world.Sources {
		fmt.Fprintf(w, "/s/%d/\n", src.ID)
	}
}

// handleSource dispatches /s/{id}/..., the per-source subtree.
func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/s/")
	parts := strings.SplitN(rest, "/", 2)
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		http.NotFound(w, r)
		return
	}
	src := s.world.Source(id)
	if src == nil {
		http.NotFound(w, r)
		return
	}
	tail := ""
	if len(parts) == 2 {
		tail = parts[1]
	}
	switch {
	case tail == "" || tail == "/":
		s.serveIndex(w, src)
	case tail == "feed.rss":
		s.serveFeed(w, src, feed.FormatRSS)
	case tail == "feed.atom":
		s.serveFeed(w, src, feed.FormatAtom)
	case strings.HasPrefix(tail, "d/"):
		did, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(tail, "d/"), "/"))
		if err != nil {
			http.NotFound(w, r)
			return
		}
		s.serveDiscussion(w, r, src, did)
	default:
		http.NotFound(w, r)
	}
}

// sourceInfo builds the wire payload for a source index page.
func (s *Server) sourceInfo(src *webgen.Source) wire.SourceInfo {
	info := wire.SourceInfo{
		ID:              src.ID,
		Name:            src.Name,
		Host:            src.Host,
		Kind:            src.Kind.String(),
		Description:     src.Description,
		Founded:         src.Founded,
		FeedSubscribers: src.FeedSubscribers,
		Locations:       src.Locations,
		OpenDiscussion:  src.OpenDiscussions(),
	}
	for _, out := range src.Outbound {
		if t := s.world.Source(out); t != nil {
			info.OutboundHosts = append(info.OutboundHosts, t.Host)
		}
	}
	for _, d := range src.Discussions {
		info.DiscussionIDs = append(info.DiscussionIDs, d.ID)
	}
	return info
}

func (s *Server) serveIndex(w http.ResponseWriter, src *webgen.Source) {
	info := s.sourceInfo(src)
	island, err := json.Marshal(info)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title>", html.EscapeString(src.Name))
	fmt.Fprintf(&b, `<link rel="alternate" type="application/rss+xml" href="/s/%d/feed.rss"/>`, src.ID)
	fmt.Fprintf(&b, `<link rel="alternate" type="application/atom+xml" href="/s/%d/feed.atom"/>`, src.ID)
	fmt.Fprint(&b, "</head><body>")
	fmt.Fprintf(&b, "<h1>%s</h1><p>%s</p>", html.EscapeString(src.Name), html.EscapeString(src.Description))
	fmt.Fprint(&b, "<ul>")
	for _, d := range src.Discussions {
		fmt.Fprintf(&b, `<li><a href="/s/%d/d/%d">%s</a></li>`, src.ID, d.ID, html.EscapeString(d.Title))
	}
	fmt.Fprint(&b, "</ul>")
	fmt.Fprintf(&b, `<script type="application/x-source-info+json">%s</script>`, island)
	fmt.Fprint(&b, "</body></html>")
	fmt.Fprint(w, b.String())
}

// discussionPayload converts a webgen discussion into its wire form.
func (s *Server) discussionPayload(d *webgen.Discussion) wire.Discussion {
	out := wire.Discussion{
		ID:       d.ID,
		SourceID: d.SourceID,
		Title:    d.Title,
		Category: d.Category,
		Opened:   d.Opened,
		Open:     d.Open,
		Tags:     d.Tags,
	}
	for _, c := range d.Comments {
		name := ""
		if u := s.world.User(c.UserID); u != nil {
			name = u.Name
		}
		wc := wire.Comment{
			ID:        c.ID,
			Author:    name,
			AuthorID:  c.UserID,
			Posted:    c.Posted,
			Body:      c.Body,
			Tags:      c.Tags,
			Replies:   c.Replies,
			Feedbacks: c.Feedbacks,
			Reads:     c.Reads,
		}
		if c.Geo != nil {
			lat, lon := c.Geo.Lat, c.Geo.Lon
			wc.Lat, wc.Lon = &lat, &lon
		}
		out.Comments = append(out.Comments, wc)
	}
	return out
}

func (s *Server) serveDiscussion(w http.ResponseWriter, r *http.Request, src *webgen.Source, did int) {
	var disc *webgen.Discussion
	for _, d := range src.Discussions {
		if d.ID == did {
			disc = d
			break
		}
	}
	if disc == nil {
		http.NotFound(w, r)
		return
	}
	payload := s.discussionPayload(disc)
	island, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>", html.EscapeString(disc.Title))
	fmt.Fprintf(&b, "<h1>%s</h1>", html.EscapeString(disc.Title))
	if disc.Category != "" {
		fmt.Fprintf(&b, `<p class="category">%s</p>`, html.EscapeString(disc.Category))
	}
	for _, c := range payload.Comments {
		fmt.Fprintf(&b, `<div class="comment"><span class="author">%s</span><p>%s</p></div>`,
			html.EscapeString(c.Author), html.EscapeString(c.Body))
	}
	fmt.Fprintf(&b, `<script type="application/x-discussion+json">%s</script>`, island)
	fmt.Fprint(&b, "</body></html>")
	fmt.Fprint(w, b.String())
}

func (s *Server) serveFeed(w http.ResponseWriter, src *webgen.Source, format feed.Format) {
	f := &feed.Feed{
		Title:       src.Name,
		Link:        fmt.Sprintf("http://%s/s/%d/", src.Host, src.ID),
		Description: src.Description,
	}
	for _, d := range src.Discussions {
		it := feed.Item{
			Title:     d.Title,
			Link:      fmt.Sprintf("/s/%d/d/%d", src.ID, d.ID),
			GUID:      fmt.Sprintf("d-%d", d.ID),
			Published: d.Opened,
		}
		if d.Category != "" {
			it.Categories = []string{d.Category}
		}
		if u := s.world.User(d.OpenerID); u != nil {
			it.Author = u.Name
		}
		f.Items = append(f.Items, it)
		if d.Opened.After(f.Updated) {
			f.Updated = d.Opened
		}
	}
	var data []byte
	var err error
	if format == feed.FormatRSS {
		w.Header().Set("Content-Type", "application/rss+xml; charset=utf-8")
		data, err = feed.MarshalRSS(f)
	} else {
		w.Header().Set("Content-Type", "application/atom+xml; charset=utf-8")
		data, err = feed.MarshalAtom(f)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
}
