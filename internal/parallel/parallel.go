// Package parallel provides the deterministic fan-out primitive shared by
// the corpus-scale scans (quality assessment, comment analytics). Work is
// split into contiguous position-indexed chunks, one per worker, so a
// function that writes results by position produces identical output for
// any worker count — parallelism can never change a published statistic.
package parallel

import (
	"runtime"
	"sync"
)

// ForEachChunk splits n items into contiguous chunks, one per worker, and
// runs fn(lo, hi) on each chunk concurrently. workers <= 0 means
// GOMAXPROCS; 1 runs inline with no goroutines. Chunk boundaries depend
// only on n and the worker count, never on scheduling.
func ForEachChunk(n, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
