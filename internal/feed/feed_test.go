package feed

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleFeed() *Feed {
	return &Feed{
		Title:       "Milan Travel Blog",
		Link:        "http://src0001.web20.test/",
		Description: "Opinions about Milan tourism",
		Updated:     time.Date(2011, 9, 30, 12, 0, 0, 0, time.UTC),
		Items: []Item{
			{
				Title:      "Duomo impressions",
				Link:       "http://src0001.web20.test/d/42",
				GUID:       "d-42",
				Author:     "travelfan01",
				Published:  time.Date(2011, 9, 1, 8, 30, 0, 0, time.UTC),
				Categories: []string{"presence", "place"},
				Summary:    "The duomo was wonderful during our visit.",
			},
			{
				Title:     "Metro advice",
				Link:      "http://src0001.web20.test/d/43",
				GUID:      "d-43",
				Published: time.Date(2011, 9, 2, 9, 0, 0, 0, time.UTC),
				Summary:   "The metro was crowded.",
			},
		},
	}
}

func TestRSSRoundTrip(t *testing.T) {
	orig := sampleFeed()
	data, err := MarshalRSS(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Format != FormatRSS {
		t.Errorf("format = %v, want rss", parsed.Format)
	}
	assertFeedEqual(t, orig, parsed)
}

func TestAtomRoundTrip(t *testing.T) {
	orig := sampleFeed()
	data, err := MarshalAtom(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Format != FormatAtom {
		t.Errorf("format = %v, want atom", parsed.Format)
	}
	// Atom has no channel description; compare the rest.
	if parsed.Title != orig.Title || parsed.Link != orig.Link {
		t.Errorf("title/link mismatch: %+v", parsed)
	}
	if len(parsed.Items) != len(orig.Items) {
		t.Fatalf("items = %d, want %d", len(parsed.Items), len(orig.Items))
	}
	for i := range orig.Items {
		a, b := orig.Items[i], parsed.Items[i]
		if a.Title != b.Title || a.Link != b.Link || a.GUID != b.GUID || a.Author != b.Author {
			t.Errorf("item %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.Published.Equal(b.Published) {
			t.Errorf("item %d time mismatch: %v vs %v", i, a.Published, b.Published)
		}
	}
}

func assertFeedEqual(t *testing.T, a, b *Feed) {
	t.Helper()
	if a.Title != b.Title || a.Link != b.Link || a.Description != b.Description {
		t.Errorf("header mismatch: %+v vs %+v", a, b)
	}
	if !a.Updated.Equal(b.Updated) {
		t.Errorf("updated mismatch: %v vs %v", a.Updated, b.Updated)
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("item counts: %d vs %d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		x, y := a.Items[i], b.Items[i]
		if x.Title != y.Title || x.Link != y.Link || x.GUID != y.GUID ||
			x.Author != y.Author || x.Summary != y.Summary {
			t.Errorf("item %d mismatch:\n%+v\n%+v", i, x, y)
		}
		if !x.Published.Equal(y.Published) {
			t.Errorf("item %d time: %v vs %v", i, x.Published, y.Published)
		}
		if len(x.Categories) != len(y.Categories) {
			t.Errorf("item %d categories: %v vs %v", i, x.Categories, y.Categories)
			continue
		}
		for j := range x.Categories {
			if x.Categories[j] != y.Categories[j] {
				t.Errorf("item %d category %d: %q vs %q", i, j, x.Categories[j], y.Categories[j])
			}
		}
	}
}

func TestParseUnknownFormat(t *testing.T) {
	_, err := Parse([]byte(`<?xml version="1.0"?><html><body/></html>`))
	if err == nil || !strings.Contains(err.Error(), "unrecognized") {
		t.Errorf("err = %v, want unknown format", err)
	}
	if _, err := Parse([]byte("not xml at all")); err == nil {
		t.Error("expected error for non-XML input")
	}
	if _, err := Parse(nil); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestParseMalformedRSS(t *testing.T) {
	if _, err := Parse([]byte(`<rss><channel><title>x</title>`)); err == nil {
		t.Error("expected error for truncated RSS")
	}
}

func TestParseTimeFormats(t *testing.T) {
	cases := []string{
		"Mon, 02 Jan 2006 15:04:05 -0700",
		"2006-01-02T15:04:05Z",
	}
	for _, c := range cases {
		if parseTime(c).IsZero() {
			t.Errorf("parseTime(%q) returned zero", c)
		}
	}
	if !parseTime("garbage").IsZero() {
		t.Error("garbage time should parse to zero")
	}
	if !parseTime("").IsZero() {
		t.Error("empty time should parse to zero")
	}
}

func TestFormatString(t *testing.T) {
	if FormatRSS.String() != "rss" || FormatAtom.String() != "atom" || FormatUnknown.String() != "unknown" {
		t.Error("Format strings wrong")
	}
}

// Property: any feed with XML-safe strings round-trips through RSS.
func TestRSSRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		// Keep the property about structure, not about XML escaping of
		// control characters (which encoding/xml rejects by design).
		var b strings.Builder
		for _, r := range s {
			if r >= 32 && r < 127 {
				b.WriteRune(r)
			}
		}
		return strings.TrimSpace(b.String())
	}
	f := func(title, link, guid, summary string, hours uint16) bool {
		orig := &Feed{
			Title: sanitize(title),
			Link:  "http://example.test/" + sanitize(link),
			Items: []Item{{
				Title:     sanitize(title) + "-item",
				GUID:      sanitize(guid),
				Summary:   sanitize(summary),
				Published: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(hours) * time.Hour),
			}},
		}
		data, err := MarshalRSS(orig)
		if err != nil {
			return false
		}
		parsed, err := Parse(data)
		if err != nil {
			return false
		}
		return parsed.Title == orig.Title &&
			len(parsed.Items) == 1 &&
			parsed.Items[0].GUID == orig.Items[0].GUID &&
			parsed.Items[0].Summary == orig.Items[0].Summary &&
			parsed.Items[0].Published.Equal(orig.Items[0].Published)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
