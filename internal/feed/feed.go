// Package feed implements RSS 2.0 and Atom 1.0 serialisation and parsing on
// top of encoding/xml. The synthetic Web 2.0 sources expose their
// discussions as feeds (internal/webserve) and the crawler consumes them
// (internal/crawler), mirroring how the paper's data services wrapped
// real-world feeds.
package feed

import (
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Format identifies a concrete feed dialect.
type Format int

const (
	FormatUnknown Format = iota
	FormatRSS
	FormatAtom
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatRSS:
		return "rss"
	case FormatAtom:
		return "atom"
	default:
		return "unknown"
	}
}

// ErrUnknownFormat is returned by Parse when the payload is neither RSS nor
// Atom.
var ErrUnknownFormat = errors.New("feed: unrecognized feed format")

// Item is a dialect-neutral feed entry.
type Item struct {
	Title      string
	Link       string
	GUID       string
	Author     string
	Published  time.Time
	Categories []string
	Summary    string
}

// Feed is a dialect-neutral feed document.
type Feed struct {
	Format      Format
	Title       string
	Link        string
	Description string
	Updated     time.Time
	Items       []Item
}

// --- RSS 2.0 wire types ---

type rssDoc struct {
	XMLName xml.Name   `xml:"rss"`
	Version string     `xml:"version,attr"`
	Channel rssChannel `xml:"channel"`
}

type rssChannel struct {
	Title       string    `xml:"title"`
	Link        string    `xml:"link"`
	Description string    `xml:"description"`
	PubDate     string    `xml:"pubDate,omitempty"`
	Items       []rssItem `xml:"item"`
}

type rssItem struct {
	Title       string   `xml:"title"`
	Link        string   `xml:"link"`
	GUID        string   `xml:"guid,omitempty"`
	Author      string   `xml:"author,omitempty"`
	PubDate     string   `xml:"pubDate,omitempty"`
	Categories  []string `xml:"category"`
	Description string   `xml:"description,omitempty"`
}

// --- Atom 1.0 wire types ---

type atomDoc struct {
	XMLName xml.Name    `xml:"http://www.w3.org/2005/Atom feed"`
	Title   string      `xml:"title"`
	Links   []atomLink  `xml:"link"`
	Updated string      `xml:"updated,omitempty"`
	Entries []atomEntry `xml:"entry"`
}

type atomLink struct {
	Href string `xml:"href,attr"`
	Rel  string `xml:"rel,attr,omitempty"`
}

type atomEntry struct {
	Title      string     `xml:"title"`
	Links      []atomLink `xml:"link"`
	ID         string     `xml:"id,omitempty"`
	Author     *atomName  `xml:"author"`
	Updated    string     `xml:"updated,omitempty"`
	Categories []atomCat  `xml:"category"`
	Summary    string     `xml:"summary,omitempty"`
}

type atomName struct {
	Name string `xml:"name"`
}

type atomCat struct {
	Term string `xml:"term,attr"`
}

// MarshalRSS renders the feed as an RSS 2.0 document.
func MarshalRSS(f *Feed) ([]byte, error) {
	doc := rssDoc{Version: "2.0", Channel: rssChannel{
		Title:       f.Title,
		Link:        f.Link,
		Description: f.Description,
	}}
	if !f.Updated.IsZero() {
		doc.Channel.PubDate = f.Updated.UTC().Format(time.RFC1123Z)
	}
	for _, it := range f.Items {
		ri := rssItem{
			Title:       it.Title,
			Link:        it.Link,
			GUID:        it.GUID,
			Author:      it.Author,
			Categories:  it.Categories,
			Description: it.Summary,
		}
		if !it.Published.IsZero() {
			ri.PubDate = it.Published.UTC().Format(time.RFC1123Z)
		}
		doc.Channel.Items = append(doc.Channel.Items, ri)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("feed: marshal rss: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// MarshalAtom renders the feed as an Atom 1.0 document.
func MarshalAtom(f *Feed) ([]byte, error) {
	doc := atomDoc{Title: f.Title}
	if f.Link != "" {
		doc.Links = []atomLink{{Href: f.Link, Rel: "alternate"}}
	}
	if !f.Updated.IsZero() {
		doc.Updated = f.Updated.UTC().Format(time.RFC3339)
	}
	for _, it := range f.Items {
		ae := atomEntry{
			Title:   it.Title,
			ID:      it.GUID,
			Summary: it.Summary,
		}
		if it.Link != "" {
			ae.Links = []atomLink{{Href: it.Link}}
		}
		if it.Author != "" {
			ae.Author = &atomName{Name: it.Author}
		}
		if !it.Published.IsZero() {
			ae.Updated = it.Published.UTC().Format(time.RFC3339)
		}
		for _, c := range it.Categories {
			ae.Categories = append(ae.Categories, atomCat{Term: c})
		}
		doc.Entries = append(doc.Entries, ae)
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("feed: marshal atom: %w", err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Parse auto-detects the dialect and parses the payload into the neutral
// model. It returns ErrUnknownFormat when the root element is neither
// <rss> nor <feed>.
func Parse(data []byte) (*Feed, error) {
	root, err := rootElement(data)
	if err != nil {
		return nil, err
	}
	switch root {
	case "rss":
		return parseRSS(data)
	case "feed":
		return parseAtom(data)
	default:
		return nil, fmt.Errorf("%w: root element %q", ErrUnknownFormat, root)
	}
}

func rootElement(data []byte) (string, error) {
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	for {
		tok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("feed: no root element: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name.Local, nil
		}
	}
}

func parseRSS(data []byte) (*Feed, error) {
	var doc rssDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("feed: parse rss: %w", err)
	}
	f := &Feed{
		Format:      FormatRSS,
		Title:       doc.Channel.Title,
		Link:        doc.Channel.Link,
		Description: doc.Channel.Description,
		Updated:     parseTime(doc.Channel.PubDate),
	}
	for _, ri := range doc.Channel.Items {
		f.Items = append(f.Items, Item{
			Title:      ri.Title,
			Link:       ri.Link,
			GUID:       ri.GUID,
			Author:     ri.Author,
			Published:  parseTime(ri.PubDate),
			Categories: ri.Categories,
			Summary:    ri.Description,
		})
	}
	return f, nil
}

func parseAtom(data []byte) (*Feed, error) {
	var doc atomDoc
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("feed: parse atom: %w", err)
	}
	f := &Feed{
		Format:  FormatAtom,
		Title:   doc.Title,
		Updated: parseTime(doc.Updated),
	}
	for _, l := range doc.Links {
		if l.Rel == "" || l.Rel == "alternate" {
			f.Link = l.Href
			break
		}
	}
	for _, ae := range doc.Entries {
		it := Item{
			Title:     ae.Title,
			GUID:      ae.ID,
			Published: parseTime(ae.Updated),
			Summary:   ae.Summary,
		}
		if ae.Author != nil {
			it.Author = ae.Author.Name
		}
		for _, l := range ae.Links {
			if l.Rel == "" || l.Rel == "alternate" {
				it.Link = l.Href
				break
			}
		}
		for _, c := range ae.Categories {
			it.Categories = append(it.Categories, c.Term)
		}
		f.Items = append(f.Items, it)
	}
	return f, nil
}

// parseTime tries the wire formats both dialects use. A zero time is
// returned for unparseable or empty values: feed timestamps in the wild are
// unreliable and the measures that use them tolerate gaps.
func parseTime(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	for _, layout := range []string{time.RFC1123Z, time.RFC1123, time.RFC3339, time.RFC822Z, time.RFC822} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC()
		}
	}
	return time.Time{}
}
