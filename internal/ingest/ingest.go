// Package ingest decouples per-source ingestion from assessment: an
// adaptive Scheduler decides when each source is worth polling (hot
// sources often, the quiet tail rarely), every poll's webgen.Delta folds
// into a pending-delta Accumulator, and an assessment tick drains the
// accumulator to run ONE UpdateRows repair over the coalesced spanning
// delta instead of N per-poll repairs. The shape mirrors
// internal/deliver's queue coalescing — keep the base, adopt the newest
// frontier, union what happened in between — and leans on the
// replay-equivalence proof pinned at webgen.Delta.Merge: consumers of the
// drained delta see exactly what N sequential applications would have
// seen (the randomized suites in advance_test.go and shard_equiv_test.go
// at the repo root pin the end-to-end bit-identity).
//
// The package is pure bookkeeping: no goroutines, no channels, no clocks
// and no randomness — callers pass explicit `now` timestamps, so every
// decision replays deterministically and the wall-clock loop stays in
// cmd/informer-serve. Neither type is internally synchronized: the
// Accumulator is serialized by the facade's writer lock (informer.go's
// advanceMu), the Scheduler by its single owning poll loop.
//
//informer:deterministic
//informer:bounded
package ingest

import (
	"fmt"
	"time"

	"github.com/informing-observers/informer/internal/webgen"
)

// Accumulator buffers the worlds and deltas of per-source ingestion ticks
// between assessment drains. It tracks the ingestion frontier (the newest
// unpublished world) and one spanning delta from the last drained world
// to that frontier; Add folds each new tick in via webgen.Delta.Merge,
// Drain hands both over and resets.
//
// The continuity invariant: every Add must depart from the current
// frontier, so base → frontier is one unbroken chain of ticks and the
// spanning delta is provably equivalent to replaying them. Add fails
// loudly on a gap rather than coalescing nonsense.
type Accumulator struct {
	base     *webgen.World // world the pending span departs from (nil = empty)
	frontier *webgen.World // newest unpublished world
	pending  *webgen.Delta // spanning delta base -> frontier
	ticks    int
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Empty reports whether no ticks are pending.
func (a *Accumulator) Empty() bool { return a.ticks == 0 }

// Ticks returns the number of per-source ticks folded since the last
// drain.
func (a *Accumulator) Ticks() int { return a.ticks }

// Frontier returns the newest unpublished world, or the given published
// world when nothing is pending — the world the next ingestion tick must
// depart from.
func (a *Accumulator) Frontier(published *webgen.World) *webgen.World {
	if a.ticks == 0 {
		return published
	}
	return a.frontier
}

// PendingComments returns the coalesced new-comment count — the
// max-pending drain trigger's unit of "how much is buffered".
func (a *Accumulator) PendingComments() int {
	if a.pending == nil {
		return 0
	}
	return a.pending.NewCommentCount()
}

// Add folds one ingestion tick (from -> to, described by d) into the
// pending span. from must be the current frontier — or, on the first Add
// after a drain, it becomes the span's base. The delta is cloned before
// the first fold so the caller's copy is never mutated by later merges.
//
//informer:mutates repoints the accumulator at unpublished pre-snapshot worlds; the worlds themselves stay immutable
func (a *Accumulator) Add(from, to *webgen.World, d *webgen.Delta) error {
	if a.ticks == 0 {
		a.base, a.frontier, a.pending, a.ticks = from, to, d.Clone(), 1
		return nil
	}
	if from != a.frontier {
		return fmt.Errorf("ingest: tick departs from a stale world: accumulator frontier has moved")
	}
	a.pending.Merge(d)
	a.frontier = to
	a.ticks++
	return nil
}

// Drain returns the frontier world, the spanning delta covering every
// tick since the last drain, and the tick count, then resets the
// accumulator. Draining an empty accumulator returns (nil, nil, 0).
//
//informer:mutates resets the accumulator's world pointers; the handed-over world stays immutable
func (a *Accumulator) Drain() (*webgen.World, *webgen.Delta, int) {
	if a.ticks == 0 {
		return nil, nil, 0
	}
	w, d, n := a.frontier, a.pending, a.ticks
	a.base, a.frontier, a.pending, a.ticks = nil, nil, nil, 0
	return w, d, n
}

// DrainPolicy decides when buffered ingestion is worth an assessment
// tick. The zero value never fires on its own — drains become explicit
// (the caller's flush, shutdown, or a fixed cadence).
type DrainPolicy struct {
	// MaxPendingTicks drains once this many per-source ticks are buffered
	// (0 = no tick-count trigger).
	MaxPendingTicks int
	// MaxPendingComments drains once the coalesced delta holds this many
	// new comments (0 = no volume trigger).
	MaxPendingComments int
	// MaxAge drains once the oldest buffered tick is older than this
	// (0 = no age trigger). Age is measured by the caller's clock: the
	// caller records when the span started buffering and passes both
	// timestamps to Due.
	MaxAge time.Duration
}

// Due reports whether a drain should fire given the buffered state:
// pendingTicks and pendingComments from the Accumulator, oldest the
// caller-recorded time of the first buffered tick, now the caller's
// current time. An empty buffer is never due.
func (p DrainPolicy) Due(pendingTicks, pendingComments int, oldest, now time.Time) bool {
	if pendingTicks == 0 {
		return false
	}
	if p.MaxPendingTicks > 0 && pendingTicks >= p.MaxPendingTicks {
		return true
	}
	if p.MaxPendingComments > 0 && pendingComments >= p.MaxPendingComments {
		return true
	}
	if p.MaxAge > 0 && !oldest.IsZero() && now.Sub(oldest) >= p.MaxAge {
		return true
	}
	return false
}
