package ingest

import "time"

// SchedulerConfig bounds the adaptive per-source poll interval.
type SchedulerConfig struct {
	// Min and Max clamp the interval (defaults 1s and 64s). A source that
	// keeps producing is polled every Min; one that stays quiet backs off
	// multiplicatively toward Max.
	Min, Max time.Duration
	// Initial is the first interval of every source (default Min), so a
	// fresh scheduler sweeps the whole corpus once before adapting.
	Initial time.Duration
}

func (c SchedulerConfig) min() time.Duration {
	if c.Min > 0 {
		return c.Min
	}
	return time.Second
}

func (c SchedulerConfig) max() time.Duration {
	if c.Max > c.min() {
		return c.Max
	}
	return 64 * c.min()
}

func (c SchedulerConfig) initial() time.Duration {
	if c.Initial > 0 {
		return c.Initial
	}
	return c.min()
}

type sourceState struct {
	id       int
	interval time.Duration
	due      time.Time
}

// Scheduler adapts each source's poll interval to its recent activity:
// a poll that found new content halves the interval (down to Min), an
// empty poll multiplies it by 3/2 (up to Max) — the additive-increase-
// flavored decrease/increase shape of adaptive samplers, deterministic
// given the observation sequence. Hot sources converge on Min-cadence
// polling while the quiet tail decays to Max, so poll budget concentrates
// where churn lives.
//
// The scheduler never touches the wall clock: Due and Observe take the
// caller's `now`, and ties resolve in registration order, so a poll loop
// replayed with the same timestamps polls the same sources in the same
// order.
type Scheduler struct {
	cfg     SchedulerConfig
	sources []sourceState
	byID    map[int]int // source ID -> index in sources (lookup only)
}

// NewScheduler registers the given source IDs, all first due at start.
func NewScheduler(ids []int, start time.Time, cfg SchedulerConfig) *Scheduler {
	s := &Scheduler{
		cfg:     cfg,
		sources: make([]sourceState, len(ids)),
		byID:    make(map[int]int, len(ids)),
	}
	for i, id := range ids {
		s.sources[i] = sourceState{id: id, interval: cfg.initial(), due: start}
		s.byID[id] = i
	}
	return s
}

// Due returns the IDs of every source whose poll is due at now, in
// registration order.
func (s *Scheduler) Due(now time.Time) []int {
	var due []int
	for i := range s.sources {
		if !s.sources[i].due.After(now) {
			due = append(due, s.sources[i].id)
		}
	}
	return due
}

// Observe records the outcome of one poll of id at now — newComments is
// the delta's fresh-comment count (0 for an empty poll) — adapts the
// source's interval and schedules its next due time.
func (s *Scheduler) Observe(id, newComments int, now time.Time) {
	i, ok := s.byID[id]
	if !ok {
		return
	}
	st := &s.sources[i]
	if newComments > 0 {
		st.interval /= 2
		if st.interval < s.cfg.min() {
			st.interval = s.cfg.min()
		}
	} else {
		st.interval += st.interval / 2
		if st.interval > s.cfg.max() {
			st.interval = s.cfg.max()
		}
	}
	st.due = now.Add(st.interval)
}

// NextDue returns the earliest upcoming due time — the poll loop's sleep
// target. ok is false when no sources are registered.
func (s *Scheduler) NextDue() (next time.Time, ok bool) {
	for i := range s.sources {
		if !ok || s.sources[i].due.Before(next) {
			next, ok = s.sources[i].due, true
		}
	}
	return next, ok
}

// Interval returns id's current poll interval (0 for an unknown ID) —
// observability for tests and the serve loop's logging.
func (s *Scheduler) Interval(id int) time.Duration {
	i, ok := s.byID[id]
	if !ok {
		return 0
	}
	return s.sources[i].interval
}
