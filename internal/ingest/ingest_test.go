package ingest

import (
	"sort"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/webgen"
)

var t0 = time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

// hotSources returns the IDs of the k sources with the most open
// discussions — the ones a per-source tick can realistically churn (the
// generator's lognormal draw makes low-participation sources almost
// always quiet, exactly the skew the scheduler exploits).
func hotSources(w *webgen.World, k int) []int {
	ids := make([]int, 0, len(w.Sources))
	for _, s := range w.Sources {
		ids = append(ids, s.ID)
	}
	sort.Slice(ids, func(i, j int) bool {
		oi := w.Source(ids[i]).OpenDiscussions()
		oj := w.Source(ids[j]).OpenDiscussions()
		if oi != oj {
			return oi > oj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}

// tickSome runs AdvanceSource until a seed produces activity, so tests
// never depend on a particular seed's poissonish draw.
func tickSome(t *testing.T, w *webgen.World, sourceID int, cur *webgen.IDCursor, seedBase int64) (*webgen.World, *webgen.Delta) {
	t.Helper()
	for seed := seedBase; seed < seedBase+500; seed++ {
		nw, d := webgen.AdvanceSource(w, sourceID, seed, cur)
		if !d.Empty() {
			return nw, d
		}
	}
	t.Fatalf("no seed in 500 produced activity for source %d", sourceID)
	return nil, nil
}

func TestAccumulatorCoalesces(t *testing.T) {
	w0 := webgen.Generate(webgen.Config{Seed: 11, NumSources: 20, NumUsers: 60})
	cur := webgen.NewIDCursor(w0)
	acc := NewAccumulator()

	if !acc.Empty() || acc.Frontier(w0) != w0 {
		t.Fatal("fresh accumulator must be empty with pass-through frontier")
	}
	if w, d, n := acc.Drain(); w != nil || d != nil || n != 0 {
		t.Fatal("draining an empty accumulator must return nothing")
	}

	hot := hotSources(w0, 2)
	w1, d1 := tickSome(t, w0, hot[0], cur, 100)
	w2, d2 := tickSome(t, w1, hot[1], cur, 200)
	w3, d3 := tickSome(t, w2, hot[0], cur, 300)

	want := d1.Clone()
	want.Merge(d2)
	want.Merge(d3)

	for _, step := range []struct {
		from, to *webgen.World
		d        *webgen.Delta
	}{{w0, w1, d1}, {w1, w2, d2}, {w2, w3, d3}} {
		if err := acc.Add(step.from, step.to, step.d); err != nil {
			t.Fatal(err)
		}
	}
	if acc.Empty() || acc.Ticks() != 3 || acc.Frontier(w0) != w3 {
		t.Fatalf("accumulator state: empty=%v ticks=%d", acc.Empty(), acc.Ticks())
	}
	if acc.PendingComments() != want.NewCommentCount() {
		t.Fatalf("PendingComments = %d, want %d", acc.PendingComments(), want.NewCommentCount())
	}

	w, d, n := acc.Drain()
	if w != w3 || n != 3 {
		t.Fatalf("Drain returned world=%p ticks=%d, want %p/3", w, n, w3)
	}
	if d.NewCommentCount() != want.NewCommentCount() ||
		len(d.DirtySourceIDs()) != len(want.DirtySourceIDs()) ||
		len(d.DirtyContributorIDs()) != len(want.DirtyContributorIDs()) {
		t.Fatal("drained delta differs from a manual clone+merge of the ticks")
	}
	if !acc.Empty() || acc.Frontier(w0) != w0 {
		t.Fatal("Drain must reset the accumulator")
	}
}

// TestAccumulatorFirstAddClones pins that folding later ticks never
// mutates the first tick's delta — the caller may have published or
// stored it.
func TestAccumulatorFirstAddClones(t *testing.T) {
	w0 := webgen.Generate(webgen.Config{Seed: 12, NumSources: 15, NumUsers: 50})
	cur := webgen.NewIDCursor(w0)
	hot := hotSources(w0, 2)
	w1, d1 := tickSome(t, w0, hot[0], cur, 400)
	w2, d2 := tickSome(t, w1, hot[1], cur, 500)

	before := d1.NewCommentCount()
	acc := NewAccumulator()
	if err := acc.Add(w0, w1, d1); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(w1, w2, d2); err != nil {
		t.Fatal(err)
	}
	if d1.NewCommentCount() != before {
		t.Fatalf("first tick's delta mutated by the fold: %d -> %d", before, d1.NewCommentCount())
	}
}

func TestAccumulatorRejectsStaleFrom(t *testing.T) {
	w0 := webgen.Generate(webgen.Config{Seed: 13, NumSources: 15, NumUsers: 50})
	cur := webgen.NewIDCursor(w0)
	hot := hotSources(w0, 2)
	w1, d1 := tickSome(t, w0, hot[0], cur, 600)
	_, dStale := tickSome(t, w0, hot[1], cur, 700) // departs from w0, not w1

	acc := NewAccumulator()
	if err := acc.Add(w0, w1, d1); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(w0, w1, dStale); err == nil {
		t.Fatal("Add must reject a tick departing from a stale world")
	}
	if acc.Ticks() != 1 {
		t.Fatalf("rejected Add changed state: ticks = %d", acc.Ticks())
	}
}

func TestSchedulerAdapts(t *testing.T) {
	cfg := SchedulerConfig{Min: time.Second, Max: 16 * time.Second, Initial: 4 * time.Second}
	s := NewScheduler([]int{0, 1, 2}, t0, cfg)

	if due := s.Due(t0); len(due) != 3 || due[0] != 0 || due[1] != 1 || due[2] != 2 {
		t.Fatalf("all sources must start due in registration order, got %v", due)
	}

	// Hot source 0 converges to Min; cold source 1 decays to Max.
	now := t0
	for i := 0; i < 10; i++ {
		s.Observe(0, 5, now)
		s.Observe(1, 0, now)
		now = now.Add(time.Second)
	}
	if got := s.Interval(0); got != cfg.Min {
		t.Errorf("hot interval = %v, want Min %v", got, cfg.Min)
	}
	if got := s.Interval(1); got != cfg.Max {
		t.Errorf("cold interval = %v, want Max %v", got, cfg.Max)
	}

	// Due respects per-source schedules: right after observing, neither 0
	// nor 1 is due, while untouched 2 still is.
	if due := s.Due(now.Add(-time.Second)); len(due) != 1 || due[0] != 2 {
		t.Fatalf("due = %v, want [2]", due)
	}
	next, ok := s.NextDue()
	if !ok || next.After(now.Add(cfg.Max)) {
		t.Fatalf("NextDue = %v ok=%v", next, ok)
	}

	// A hot source going quiet backs off again.
	cold := s.Interval(0)
	for i := 0; i < 12; i++ {
		s.Observe(0, 0, now)
	}
	if got := s.Interval(0); got <= cold {
		t.Errorf("quiet polls must raise the interval: %v -> %v", cold, got)
	}

	s.Observe(99, 1, now) // unknown ID: no-op
	if s.Interval(99) != 0 {
		t.Error("unknown ID must report zero interval")
	}
}

func TestSchedulerDefaults(t *testing.T) {
	s := NewScheduler([]int{7}, t0, SchedulerConfig{})
	if got := s.Interval(7); got != time.Second {
		t.Fatalf("default initial interval = %v, want 1s", got)
	}
	for i := 0; i < 20; i++ {
		s.Observe(7, 0, t0)
	}
	if got := s.Interval(7); got != 64*time.Second {
		t.Fatalf("default max = %v, want 64s", got)
	}
}

func TestDrainPolicyDue(t *testing.T) {
	oldest := t0
	cases := []struct {
		name            string
		p               DrainPolicy
		ticks, comments int
		now             time.Time
		want            bool
	}{
		{"empty buffer never due", DrainPolicy{MaxPendingTicks: 1}, 0, 0, t0.Add(time.Hour), false},
		{"zero policy never fires", DrainPolicy{}, 100, 1000, t0.Add(time.Hour), false},
		{"tick trigger", DrainPolicy{MaxPendingTicks: 8}, 8, 0, t0, true},
		{"tick trigger below", DrainPolicy{MaxPendingTicks: 8}, 7, 0, t0, false},
		{"comment trigger", DrainPolicy{MaxPendingComments: 50}, 1, 50, t0, true},
		{"comment trigger below", DrainPolicy{MaxPendingComments: 50}, 1, 49, t0, false},
		{"age trigger", DrainPolicy{MaxAge: time.Minute}, 1, 0, t0.Add(time.Minute), true},
		{"age trigger below", DrainPolicy{MaxAge: time.Minute}, 1, 0, t0.Add(59 * time.Second), false},
	}
	for _, tc := range cases {
		if got := tc.p.Due(tc.ticks, tc.comments, oldest, tc.now); got != tc.want {
			t.Errorf("%s: Due = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// BenchmarkAccumulatorMerge prices one fold: Add-ing a per-source tick's
// delta onto an already-spanning pending delta (slice appends + dirty-set
// unions, no world walks) — the per-poll cost continuous ingestion pays
// between drains.
func BenchmarkAccumulatorMerge(b *testing.B) {
	w0 := webgen.Generate(webgen.Config{Seed: 14, NumSources: 40, NumUsers: 120, ChurnScale: 3})
	cur := webgen.NewIDCursor(w0)
	hot := hotSources(w0, 4)
	type tick struct {
		from, to *webgen.World
		d        *webgen.Delta
	}
	var ticks []tick
	w := w0
	for i := 0; i < 16; i++ {
		nw, d := webgen.AdvanceSource(w, hot[i%len(hot)], int64(800+i), cur)
		if d.Empty() {
			continue
		}
		ticks = append(ticks, tick{w, nw, d})
		w = nw
	}
	if len(ticks) < 2 {
		b.Fatal("not enough active ticks to fold")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := NewAccumulator()
		for _, tk := range ticks {
			if err := acc.Add(tk.from, tk.to, tk.d); err != nil {
				b.Fatal(err)
			}
		}
		acc.Drain()
	}
	b.ReportMetric(float64(len(ticks)), "folds/op")
}
