package experiments

import (
	"fmt"
	"strings"

	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/stats"
)

// Table4Row is one measure row of Table 4: the three paired comparisons
// with their directions and Bonferroni-adjusted significances.
type Table4Row struct {
	Measure string
	// PeopleBrand, PeopleNews, NewsBrand render like the paper's cells,
	// e.g. "> 0 (sig = 0.002)".
	PeopleBrand, PeopleNews, NewsBrand string
	// Directions without significance annotation, for pattern checks:
	// "> 0", "< 0" or "= 0".
	DirPB, DirPN, DirNB string
}

// Table4Result reproduces Table 4 over the synthetic Twitaholic dataset.
type Table4Result struct {
	Accounts              int
	People, Brands, NewsN int
	Rows                  []Table4Row
}

// table4Measures lists the five measures in the paper's row order.
var table4Measures = []struct {
	key   string
	label string
}{
	{"interactions", "Interactions"},
	{"absolute_mentions", "Absolute mentions (replies received)"},
	{"absolute_retweets", "Absolute retweets (feedbacks)"},
	{"relative_mentions", "Relative mentions (replies per comment)"},
	{"relative_retweets", "Relative retweets (feedbacks per comment)"},
}

// RunTable4 generates the annotated account dataset at the pinned seed and
// runs the ANOVA + Bonferroni analysis of Section 4.2.
func RunTable4(seed int64, numAccounts int) (*Table4Result, error) {
	ds := social.Generate(social.Config{Seed: seed, NumAccounts: numAccounts})
	byKind := ds.ByKind()
	mv := ds.MeasureVectors()

	res := &Table4Result{
		Accounts: len(ds.Accounts),
		People:   len(byKind[social.People]),
		Brands:   len(byKind[social.Brand]),
		NewsN:    len(byKind[social.News]),
	}
	for _, m := range table4Measures {
		groups := [][]float64{
			mv[m.key][social.People],
			mv[m.key][social.Brand],
			mv[m.key][social.News],
		}
		comps, err := stats.Bonferroni(groups)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", m.key, err)
		}
		// comps order: (0,1)=people-brand, (0,2)=people-news,
		// (1,2)=brand-news (flip for news-brand).
		pb, pn, bn := comps[0], comps[1], comps[2]
		nb := bn
		nb.MeanDiff = -nb.MeanDiff
		res.Rows = append(res.Rows, Table4Row{
			Measure:     m.label,
			PeopleBrand: cellFor(pb),
			PeopleNews:  cellFor(pn),
			NewsBrand:   cellFor(nb),
			DirPB:       pb.Direction(),
			DirPN:       pn.Direction(),
			DirNB:       nb.Direction(),
		})
	}
	return res, nil
}

// cellFor renders a comparison in the paper's cell notation.
func cellFor(c stats.PairwiseComparison) string {
	sig := fmt.Sprintf("sig = %.3f", c.PValue)
	if c.PValue < 0.001 {
		sig = "sig < 0.001"
	}
	return fmt.Sprintf("%s (%s)", c.Direction(), sig)
}

// Render produces the paper-shaped Table 4.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — paired differences of means by account kind\n")
	fmt.Fprintf(&b, "accounts: %d (people %d, brand %d, news %d)\n\n",
		r.Accounts, r.People, r.Brands, r.NewsN)
	fmt.Fprintf(&b, "%-44s | %-22s | %-22s | %-22s\n", "", "people - brand", "people - news", "news - brand")
	fmt.Fprintln(&b, strings.Repeat("-", 118))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-44s | %-22s | %-22s | %-22s\n", row.Measure, row.PeopleBrand, row.PeopleNews, row.NewsBrand)
	}
	return b.String()
}
