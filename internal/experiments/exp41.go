package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/textgen"
	"github.com/informing-observers/informer/internal/webgen"
)

// categoryTerms returns the query vocabulary of a category, falling back
// to the category name itself.
func categoryTerms(cat string) []string {
	terms := textgen.CategoryTerms(cat)
	if len(terms) == 0 {
		return []string{cat}
	}
	return terms
}

// Exp41Result reproduces the ranking-comparison statistics of Section 4.1:
// per-measure Kendall tau against the search baseline, and the distribution
// of per-item rank distances between the baseline ranking and the
// quality-model re-ranking of the same top-k lists.
type Exp41Result struct {
	QueriesRun    int
	SlotsAnalyzed int
	// MeanListLen is the average result-list length (capped at top-20;
	// niche queries return fewer matches).
	MeanListLen float64
	// MeasureTaus maps each Table 3 measure to its average per-query
	// Kendall tau against the baseline ranking.
	MeasureTaus map[string]float64
	// MeanDistance is the average |position difference| per item.
	MeanDistance float64
	// DistanceVariance is its variance across items.
	DistanceVariance float64
	// PctDistGT5 / PctDistGT10 are the shares of items displaced by more
	// than 5 / 10 positions.
	PctDistGT5, PctDistGT10 float64
	// PctCoincident is the share of items keeping exactly their position.
	PctCoincident float64
}

// RunExp41 executes the Section 4.1 experiment on a workbench.
func RunExp41(wb *Workbench) (*Exp41Result, error) {
	kinds := []webgen.SourceKind{webgen.Blog, webgen.Forum}
	tauSums := map[string]float64{}
	tauCounts := map[string]float64{}
	var distances []float64
	coincident := 0
	slots := 0

	measureIDs := quality.TableThreeMeasureIDs()
	measures := make([]quality.SourceMeasure, 0, len(measureIDs))
	for _, id := range measureIDs {
		m, ok := quality.SourceMeasureByID(id)
		if !ok {
			return nil, fmt.Errorf("exp41: unknown measure %q", id)
		}
		measures = append(measures, m)
	}

	queriesRun := 0
	listLenSum := 0
	for _, q := range wb.Queries() {
		results := wb.Engine.SearchKinds(q, wb.Opts.TopK, kinds)
		if len(results) < wb.Opts.MinList {
			continue // too few matches to compare rankings meaningfully
		}
		queriesRun++
		listLenSum += len(results)

		// Baseline positions 0..k-1 and the quality re-ranking.
		k := len(results)
		type slot struct {
			sourceID int
			basePos  int
			quality  float64
		}
		list := make([]slot, k)
		for i, r := range results {
			list[i] = slot{sourceID: r.SourceID, basePos: i, quality: wb.Scores[r.SourceID]}
		}
		reranked := append([]slot(nil), list...)
		sort.SliceStable(reranked, func(a, b int) bool {
			if reranked[a].quality != reranked[b].quality {
				return reranked[a].quality > reranked[b].quality
			}
			return reranked[a].sourceID < reranked[b].sourceID
		})
		qualityPos := make(map[int]int, k)
		for pos, s := range reranked {
			qualityPos[s.sourceID] = pos
		}
		for _, s := range list {
			d := s.basePos - qualityPos[s.sourceID]
			if d < 0 {
				d = -d
			}
			distances = append(distances, float64(d))
			if d == 0 {
				coincident++
			}
			slots++
		}

		// Per-measure Kendall tau against the baseline ordering. Use
		// "rank goodness" (k - position) so a positive tau means the
		// measure agrees with the baseline.
		goodness := make([]float64, k)
		for i := range list {
			goodness[i] = float64(k - list[i].basePos)
		}
		di := quality.DomainOfInterest{Categories: wb.World.Categories}
		for _, m := range measures {
			vals := make([]float64, k)
			okAll := true
			for i, s := range list {
				v, ok := m.Eval(wb.Records[s.sourceID], &di)
				if !ok {
					okAll = false
					break
				}
				if !m.HigherIsBetter {
					v = -v
				}
				vals[i] = v
			}
			if !okAll {
				continue
			}
			tau, err := stats.KendallTau(vals, goodness)
			if err != nil {
				continue
			}
			tauSums[m.ID] += tau
			tauCounts[m.ID]++
		}
	}

	if slots == 0 {
		return nil, fmt.Errorf("exp41: no query returned at least %d results", wb.Opts.MinList)
	}
	res := &Exp41Result{
		QueriesRun:    queriesRun,
		SlotsAnalyzed: slots,
		MeanListLen:   float64(listLenSum) / float64(queriesRun),
		MeasureTaus:   map[string]float64{},
	}
	for id, sum := range tauSums {
		res.MeasureTaus[id] = sum / tauCounts[id]
	}
	res.MeanDistance = stats.Mean(distances)
	res.DistanceVariance = stats.Variance(distances)
	gt5, gt10 := 0, 0
	for _, d := range distances {
		if d > 5 {
			gt5++
		}
		if d > 10 {
			gt10++
		}
	}
	res.PctDistGT5 = float64(gt5) / float64(slots) * 100
	res.PctDistGT10 = float64(gt10) / float64(slots) * 100
	res.PctCoincident = float64(coincident) / float64(slots) * 100
	return res, nil
}

// Render produces the paper-shaped summary.
func (r *Exp41Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 4.1 — quality re-ranking vs search baseline\n")
	fmt.Fprintf(&b, "queries analysed: %d (%d result slots, mean list length %.1f)\n\n",
		r.QueriesRun, r.SlotsAnalyzed, r.MeanListLen)
	fmt.Fprintf(&b, "per-measure Kendall tau vs baseline ranking (paper: all in [-0.1, 0.1]):\n")
	ids := make([]string, 0, len(r.MeasureTaus))
	for id := range r.MeasureTaus {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  %-36s %+6.3f\n", id, r.MeasureTaus[id])
	}
	fmt.Fprintf(&b, "\nrank-distance distribution (paper: mean 4; >5 at least 35%%; >10 about 2.5%%; coincident 7-8%%):\n")
	fmt.Fprintf(&b, "  mean distance      %6.2f (variance %.2f)\n", r.MeanDistance, r.DistanceVariance)
	fmt.Fprintf(&b, "  distance > 5       %6.2f%%\n", r.PctDistGT5)
	fmt.Fprintf(&b, "  distance > 10      %6.2f%%\n", r.PctDistGT10)
	fmt.Fprintf(&b, "  coincident         %6.2f%%\n", r.PctCoincident)
	return b.String()
}
