package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// sharedWB builds the default 2400-source workbench once for the whole
// test package; the statistical experiments are read-only over it.
var (
	wbOnce sync.Once
	wb     *Workbench
)

func sharedWB(t *testing.T) *Workbench {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping corpus-scale experiment in -short mode")
	}
	wbOnce.Do(func() { wb = NewWorkbench(Options{}) })
	return wb
}

func TestWorkbenchQueriesDistinct(t *testing.T) {
	w := sharedWB(t)
	qs := w.Queries()
	if len(qs) != 120 {
		t.Fatalf("queries = %d", len(qs))
	}
	seen := map[string]bool{}
	for _, q := range qs {
		seen[q] = true
		if len(strings.Fields(q)) != 3 {
			t.Errorf("query %q should have three terms", q)
		}
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct queries out of 120", len(seen))
	}
}

func TestExp41PaperShape(t *testing.T) {
	w := sharedWB(t)
	r, err := RunExp41(w)
	if err != nil {
		t.Fatal(err)
	}
	// The paper analysed > 2000 site slots over 100+ queries.
	if r.QueriesRun < 100 {
		t.Errorf("queries run = %d, want >= 100", r.QueriesRun)
	}
	if r.SlotsAnalyzed < 1000 {
		t.Errorf("slots = %d", r.SlotsAnalyzed)
	}
	// No single measure predicts the baseline ranking: the paper reports
	// per-measure tau in [-0.1, 0.1]; we allow a slightly wider |tau| <=
	// 0.2 band and require most measures inside the paper's own band.
	inBand := 0
	for id, tau := range r.MeasureTaus {
		if math.Abs(tau) > 0.2 {
			t.Errorf("measure %s tau = %+.3f, |tau| > 0.2", id, tau)
		}
		if math.Abs(tau) <= 0.105 {
			inBand++
		}
	}
	if len(r.MeasureTaus) != 10 {
		t.Fatalf("taus for %d measures, want 10", len(r.MeasureTaus))
	}
	if inBand < 6 {
		t.Errorf("only %d/10 measures within the paper's [-0.1, 0.1] band", inBand)
	}
	// Rank-distance distribution, paper: mean 4, >5 at least 35%%, >10
	// about 2.5%%, coincident 7-8%%. Bands allow the synthetic corpus a
	// reasonable halo around the published values.
	if r.MeanDistance < 3.2 || r.MeanDistance > 5.2 {
		t.Errorf("mean distance = %.2f, want ~4", r.MeanDistance)
	}
	if r.PctDistGT5 < 25 || r.PctDistGT5 > 50 {
		t.Errorf("P(>5) = %.1f%%, want ~35%%", r.PctDistGT5)
	}
	if r.PctDistGT10 < 1 || r.PctDistGT10 > 8 {
		t.Errorf("P(>10) = %.1f%%, want ~2.5%%", r.PctDistGT10)
	}
	if r.PctCoincident < 5.5 || r.PctCoincident > 11 {
		t.Errorf("coincident = %.1f%%, want ~7-8%%", r.PctCoincident)
	}
	if !strings.Contains(r.Render(), "Kendall tau") {
		t.Error("render incomplete")
	}
}

func TestTable3PaperShape(t *testing.T) {
	w := sharedWB(t)
	r, err := RunTable3(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Components) != 3 {
		t.Fatalf("components = %d, want 3", len(r.Components))
	}
	// Componentization: exactly the paper's grouping.
	wantGroups := map[string][]string{
		"traffic": {
			"src.time.traffic",
			"src.authority.traffic.visitors",
			"src.authority.traffic.pageviews",
			"src.authority.relevance.inbound",
		},
		"participation": {
			"src.completeness.traffic",
			"src.time.liveliness",
			"src.dependability.breadth",
			"src.dependability.liveliness",
		},
		"time": {
			"src.dependability.relevance",
			"src.authority.traffic.timeonsite",
		},
	}
	for label, wantIDs := range wantGroups {
		c, ok := r.Component(label)
		if !ok {
			t.Errorf("missing component %q", label)
			continue
		}
		got := map[string]bool{}
		for _, id := range c.MeasureIDs {
			got[id] = true
		}
		if len(got) != len(wantIDs) {
			t.Errorf("%s groups %d measures, want %d: %v", label, len(got), len(wantIDs), c.MeasureIDs)
			continue
		}
		for _, id := range wantIDs {
			if !got[id] {
				t.Errorf("%s missing measure %s", label, id)
			}
		}
	}
	// Regression signs and significances, paper Table 3:
	// traffic positive sig<0.001; participation negative sig<0.010;
	// time negative sig<0.050.
	if c, _ := r.Component("traffic"); c.Coefficient <= 0 || c.PValue >= 0.001 {
		t.Errorf("traffic: coef=%v p=%v, want positive sig<0.001", c.Coefficient, c.PValue)
	}
	if c, _ := r.Component("participation"); c.Coefficient >= 0 || c.PValue >= 0.010 {
		t.Errorf("participation: coef=%v p=%v, want negative sig<0.010", c.Coefficient, c.PValue)
	}
	if c, _ := r.Component("time"); c.Coefficient >= 0 || c.PValue >= 0.050 {
		t.Errorf("time: coef=%v p=%v, want negative sig<0.050", c.Coefficient, c.PValue)
	}
	// First three eigenvalues exceed 1 (Kaiser criterion retains 3).
	for i := 0; i < 3; i++ {
		if r.Eigenvalues[i] <= 1 {
			t.Errorf("eigenvalue %d = %v, want > 1", i, r.Eigenvalues[i])
		}
	}
	if r.Eigenvalues[3] >= 1 {
		t.Errorf("4th eigenvalue = %v, want < 1 (only 3 components)", r.Eigenvalues[3])
	}
	if !strings.Contains(r.Render(), "Traffic rank") {
		t.Error("render incomplete")
	}
}

func TestTable4PaperPattern(t *testing.T) {
	r, err := RunTable4(3, 813) // the pinned Table 4 seed
	if err != nil {
		t.Fatal(err)
	}
	if r.Accounts != 813 {
		t.Errorf("accounts = %d, want 813", r.Accounts)
	}
	want := map[string][3]string{
		"Interactions":                              {"> 0", "= 0", "> 0"},
		"Absolute mentions (replies received)":      {"> 0", "> 0", "= 0"},
		"Absolute retweets (feedbacks)":             {"= 0", "< 0", "> 0"},
		"Relative mentions (replies per comment)":   {"= 0", "= 0", "= 0"},
		"Relative retweets (feedbacks per comment)": {"= 0", "= 0", "= 0"},
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		w, ok := want[row.Measure]
		if !ok {
			t.Errorf("unexpected measure %q", row.Measure)
			continue
		}
		if row.DirPB != w[0] || row.DirPN != w[1] || row.DirNB != w[2] {
			t.Errorf("%s: got (%s, %s, %s), want (%s, %s, %s)",
				row.Measure, row.DirPB, row.DirPN, row.DirNB, w[0], w[1], w[2])
		}
	}
	if !strings.Contains(r.Render(), "people - brand") {
		t.Error("render incomplete")
	}
}

func TestFigure1Interaction(t *testing.T) {
	r, err := RunFigure1(99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Influencers == 0 || r.Influencers > 10 {
		t.Errorf("influencers = %d", r.Influencers)
	}
	if r.PostsAll == 0 {
		t.Error("no posts before selection")
	}
	if r.PostsSelected == 0 || r.PostsSelected > r.PostsAll {
		t.Errorf("selection posts = %d of %d", r.PostsSelected, r.PostsAll)
	}
	if r.SelectedName == "" {
		t.Error("no selected influencer name")
	}
	for _, frag := range []string{"Influencers", "Sentiment by category", "Influencer posts"} {
		if !strings.Contains(r.InitialDashboard, frag) {
			t.Errorf("initial dashboard missing %q", frag)
		}
	}
	if !strings.Contains(r.Render(), "narrowed") {
		t.Error("render incomplete")
	}
}

func TestTable1OverCrawledCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("crawl experiment skipped in -short mode")
	}
	r, err := RunTable1(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sources != 30 {
		t.Errorf("sources = %d", r.Sources)
	}
	if r.CrawlErrs != 0 {
		t.Errorf("crawl errors = %d", r.CrawlErrs)
	}
	if len(r.Measures) != 20 {
		t.Errorf("measures = %d, want 20 (full Table 1 plus src.originality)", len(r.Measures))
	}
	for _, m := range r.Measures {
		if m.Defined == 0 {
			t.Errorf("measure %s undefined on every source", m.ID)
		}
	}
	if len(r.TopSources) == 0 {
		t.Error("no top sources")
	}
	if !strings.Contains(r.Render(), "crawled corpus") {
		t.Error("render incomplete")
	}
}

func TestTable2OverMicroblog(t *testing.T) {
	r, err := RunTable2(5, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Contributors != 200 {
		t.Errorf("contributors = %d", r.Contributors)
	}
	if len(r.Measures) != 15 {
		t.Errorf("measures = %d, want 15 (full Table 2)", len(r.Measures))
	}
	// The microblog mapping defines activity/authority/dependability
	// measures for every account with interactions; DI-dependent ones may
	// be sparse but must not be universally undefined.
	for _, m := range r.Measures {
		if m.ID == "usr.completeness.activity" && m.Defined != 200 {
			t.Errorf("activity defined on %d/200", m.Defined)
		}
	}
	if !strings.Contains(r.Render(), "microblog") {
		t.Error("render incomplete")
	}
}
