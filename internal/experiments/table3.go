package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
)

// Table3Component is one extracted component with its assigned measures —
// a row group of the paper's Table 3.
type Table3Component struct {
	// Label is the interpreted name ("traffic", "participation", "time"),
	// assigned from marker measures.
	Label string
	// MeasureIDs are the measures loading most heavily on this component.
	MeasureIDs []string
	// Coefficient, PValue and Direction come from the OLS of the search
	// ranking on the component scores.
	Coefficient float64
	PValue      float64
	Direction   string // "positive" / "negative"
	// SigBand renders the paper's significance notation, e.g. "sig < 0.001".
	SigBand string
}

// Table3Result is the factor analysis + regression of Section 4.1/Table 3.
type Table3Result struct {
	N           int // unique sources entering the analysis
	Eigenvalues []float64
	Components  []Table3Component
	R2          float64
}

// componentMarkers map a marker measure to the paper's component label.
var componentMarkers = []struct {
	measureID string
	label     string
}{
	{"src.time.traffic", "traffic"},                // traffic rank
	{"src.dependability.breadth", "participation"}, // comments per discussion
	{"src.dependability.relevance", "time"},        // bounce rate
}

// RunTable3 reproduces Table 3: collect the ten domain-independent
// measures for every source appearing in the query results, reduce them by
// principal-component factor analysis with varimax rotation, and regress
// the baseline's rank goodness on the component scores.
func RunTable3(wb *Workbench) (*Table3Result, error) {
	kinds := []webgen.SourceKind{webgen.Blog, webgen.Forum}
	// Mean baseline goodness per source across the query workload.
	posSum := map[int]float64{}
	posN := map[int]float64{}
	for _, q := range wb.Queries() {
		results := wb.Engine.SearchKinds(q, wb.Opts.TopK, kinds)
		if len(results) < wb.Opts.MinList {
			continue
		}
		for i, r := range results {
			posSum[r.SourceID] += float64(wb.Opts.TopK - i)
			posN[r.SourceID]++
		}
	}
	if len(posSum) < 30 {
		return nil, fmt.Errorf("table3: only %d sources in results", len(posSum))
	}

	ids := make([]int, 0, len(posSum))
	for id := range posSum {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	measureIDs := quality.TableThreeMeasureIDs()
	di := quality.DomainOfInterest{Categories: wb.World.Categories}
	data := stats.NewMatrix(len(ids), len(measureIDs))
	y := make([]float64, len(ids))
	rows := 0
	for _, id := range ids {
		rec := wb.Records[id]
		ok := true
		row := make([]float64, len(measureIDs))
		for j, mid := range measureIDs {
			m, _ := quality.SourceMeasureByID(mid)
			v, defined := m.Eval(rec, &di)
			if !defined {
				ok = false
				break
			}
			row[j] = v
		}
		if !ok {
			continue
		}
		copy(data.Data[rows*len(measureIDs):(rows+1)*len(measureIDs)], row)
		y[rows] = posSum[id] / posN[id]
		rows++
	}
	data = submatrix(data, rows)
	y = y[:rows]

	fa, err := stats.PrincipalComponents(data, stats.PCAOptions{Components: 3, Varimax: true})
	if err != nil {
		return nil, fmt.Errorf("table3: factor analysis: %w", err)
	}

	// Regression of goodness on the three component scores.
	reg, err := stats.OLS(y, fa.Scores)
	if err != nil {
		return nil, fmt.Errorf("table3: regression: %w", err)
	}

	// Group measures per component and label via markers.
	byComp := map[int][]string{}
	for i, mid := range measureIDs {
		c := fa.Assignment[i]
		byComp[c] = append(byComp[c], mid)
	}
	labels := map[int]string{}
	for _, marker := range componentMarkers {
		for i, mid := range measureIDs {
			if mid == marker.measureID {
				labels[fa.Assignment[i]] = marker.label
			}
		}
	}

	res := &Table3Result{N: rows, Eigenvalues: fa.Eigenvalues, R2: reg.R2}
	compIdxs := make([]int, 0, len(byComp))
	for c := range byComp {
		compIdxs = append(compIdxs, c)
	}
	sort.Ints(compIdxs)
	for _, c := range compIdxs {
		coef := reg.Coefficients[c+1]
		p := reg.PValues[c+1]
		dir := "positive"
		if coef < 0 {
			dir = "negative"
		}
		label := labels[c]
		if label == "" {
			label = fmt.Sprintf("component-%d", c+1)
		}
		res.Components = append(res.Components, Table3Component{
			Label:       label,
			MeasureIDs:  byComp[c],
			Coefficient: coef,
			PValue:      p,
			Direction:   dir,
			SigBand:     sigBand(p),
		})
	}
	return res, nil
}

// submatrix truncates a matrix to its first n rows.
func submatrix(m *stats.Matrix, n int) *stats.Matrix {
	out := stats.NewMatrix(n, m.Cols)
	copy(out.Data, m.Data[:n*m.Cols])
	return out
}

// sigBand renders p-values in the paper's banded notation.
func sigBand(p float64) string {
	switch {
	case p < 0.001:
		return "sig < 0.001"
	case p < 0.010:
		return "sig < 0.010"
	case p < 0.050:
		return "sig < 0.050"
	default:
		return fmt.Sprintf("n.s. (p = %.3f)", p)
	}
}

// Component returns the row with the given label, if present.
func (r *Table3Result) Component(label string) (Table3Component, bool) {
	for _, c := range r.Components {
		if c.Label == label {
			return c, true
		}
	}
	return Table3Component{}, false
}

// Render produces the paper-shaped Table 3.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — componentization of data quality measures (n = %d sources)\n", r.N)
	fmt.Fprintf(&b, "eigenvalues: ")
	for i, e := range r.Eigenvalues {
		if i > 0 {
			fmt.Fprint(&b, ", ")
		}
		fmt.Fprintf(&b, "%.2f", e)
	}
	fmt.Fprintf(&b, "\n\n%-34s | %-14s | %s\n", "Measures", "Component", "Relation with baseline rank")
	fmt.Fprintln(&b, strings.Repeat("-", 88))
	for _, c := range r.Components {
		rel := fmt.Sprintf("%s (%s)", c.Direction, c.SigBand)
		for i, mid := range c.MeasureIDs {
			comp, relation := "", ""
			if i == 0 {
				comp, relation = c.Label, rel
			}
			fmt.Fprintf(&b, "%-34s | %-14s | %s\n", shortMeasureName(mid), comp, relation)
		}
		fmt.Fprintln(&b, strings.Repeat("-", 88))
	}
	fmt.Fprintf(&b, "regression R^2 = %.3f\n", r.R2)
	return b.String()
}

// shortMeasureName maps measure IDs to the paper's row labels.
func shortMeasureName(id string) string {
	names := map[string]string{
		"src.time.traffic":                 "Traffic rank",
		"src.authority.traffic.visitors":   "Daily visitors",
		"src.authority.traffic.pageviews":  "Daily page views",
		"src.authority.relevance.inbound":  "Number of inbound links",
		"src.completeness.traffic":         "Open discussions vs largest",
		"src.time.liveliness":              "New discussions per day",
		"src.dependability.breadth":        "Comments per discussion",
		"src.dependability.liveliness":     "Comments per discussion/day",
		"src.dependability.relevance":      "Bounce rate",
		"src.authority.traffic.timeonsite": "Average time spent on site",
	}
	if n, ok := names[id]; ok {
		return n
	}
	return id
}
