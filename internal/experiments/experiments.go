// Package experiments contains one driver per table and figure of the
// paper's evaluation, regenerating the published statistics over the
// synthetic corpus (see DESIGN.md section 4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results). Each driver returns a
// structured result plus a Render() producing a paper-shaped ASCII table.
package experiments

import (
	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/webgen"
)

// Options configures the shared workload of the source-side experiments
// (E-4.1 and Table 3).
type Options struct {
	// Seed pins the whole pipeline (default 42).
	Seed int64
	// NumSources sizes the corpus (default 2400; the paper analysed more
	// than 2000 sites).
	NumSources int
	// NumQueries is the query workload (default 120; the paper ran "over
	// 100 queries").
	NumQueries int
	// TopK is the result-list depth (default 20, as in the paper: "the
	// first 20 blogs and forums"). Niche queries return fewer matches, as
	// on the real Web; lists shorter than MinList are discarded.
	TopK int
	// MinList is the minimum result-list length a query must produce to
	// enter the analysis (default 6).
	MinList int
	// SearchNoise overrides the baseline's per-query score jitter
	// (default 0.9). Higher noise makes within-list orderings more
	// relevance/noise-driven, the regime behind the paper's low
	// per-measure Kendall taus.
	SearchNoise float64
	// ParticipationPenalty / EngagementPenalty override the baseline's
	// demotion weights (defaults 0.30 / 0.10).
	ParticipationPenalty, EngagementPenalty float64
	// AuthorityWeight is the assessment weight given to the
	// authority-dimension measures when computing the overall quality
	// score (default 2.0). The paper leaves aggregation weights open;
	// weighting authority up reflects its "reputation as the key factor"
	// framing.
	AuthorityWeight float64
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.NumSources == 0 {
		o.NumSources = 2400
	}
	if o.NumQueries == 0 {
		o.NumQueries = 120
	}
	if o.TopK == 0 {
		o.TopK = 20
	}
	if o.MinList == 0 {
		o.MinList = 8
	}
	if o.SearchNoise == 0 {
		o.SearchNoise = 3.5
	}
	if o.ParticipationPenalty == 0 {
		o.ParticipationPenalty = 0.45
	}
	if o.EngagementPenalty == 0 {
		o.EngagementPenalty = 0.25
	}
	if o.AuthorityWeight == 0 {
		o.AuthorityWeight = 1.0
	}
	return o
}

// Workbench bundles the generated corpus with its panel, search engine and
// quality assessments, shared by E-4.1 and Table 3 so both see the same
// world.
type Workbench struct {
	Opts     Options
	World    *webgen.World
	Panel    *analytics.Panel
	Engine   *search.Engine
	Records  []*quality.SourceRecord
	Assessor *quality.SourceAssessor
	// Scores caches the overall quality score per source ID.
	Scores map[int]float64
}

// NewWorkbench builds the shared experimental setup.
func NewWorkbench(opts Options) *Workbench {
	opts = opts.withDefaults()
	world := webgen.Generate(webgen.Config{
		Seed:       opts.Seed,
		NumSources: opts.NumSources,
	})
	panel := analytics.Build(world, opts.Seed+1)
	engine := search.NewEngine(world, panel, search.Config{
		Seed:                 opts.Seed + 2,
		NoiseSigma:           opts.SearchNoise,
		ParticipationPenalty: opts.ParticipationPenalty,
		EngagementPenalty:    opts.EngagementPenalty,
		Conjunctive:          true,
	})
	records := quality.SourceRecordsFromWorld(world, panel)
	di := quality.DomainOfInterest{Categories: world.Categories}
	weights := map[string]float64{}
	for _, m := range quality.SourceMeasures() {
		if m.Dimension == quality.Authority {
			weights[m.ID] = opts.AuthorityWeight
		}
	}
	assessor := quality.NewSourceAssessor(records, di, &quality.AssessorOptions{Weights: weights})
	scores := make(map[int]float64, len(records))
	for _, a := range assessor.AssessAll(records) {
		scores[a.ID] = a.Score
	}
	return &Workbench{
		Opts:     opts,
		World:    world,
		Panel:    panel,
		Engine:   engine,
		Records:  records,
		Assessor: assessor,
		Scores:   scores,
	}
}

// Queries builds the deterministic query workload: one topical marker term
// from each of two different categories plus a location — niche,
// conjunctive queries whose result lists vary in length like the paper's
// real blog/forum queries did. Index mixing keeps queries distinct.
func (wb *Workbench) Queries() []string {
	cats := wb.World.Categories
	locs := wb.World.Config.Locations
	queries := make([]string, 0, wb.Opts.NumQueries)
	for i := 0; i < wb.Opts.NumQueries; i++ {
		catA := cats[i%len(cats)]
		catB := cats[(i+1+(i/len(cats))%(len(cats)-1))%len(cats)]
		termsA := categoryTerms(catA)
		termsB := categoryTerms(catB)
		t1 := termsA[(i/len(cats))%len(termsA)]
		t2 := termsB[(i/3)%len(termsB)]
		loc := locs[(i*7+i/len(cats))%len(locs)]
		queries = append(queries, t1+" "+t2+" "+loc)
	}
	return queries
}
