package experiments

import (
	"fmt"
	"strings"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/mashup"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/services"
	"github.com/informing-observers/informer/internal/webgen"
)

// Figure1CompositionJSON is the declarative mashup of Figure 1: comments
// from the Twitter-like and TripAdvisor-like sources are merged, filtered
// to influencers' contributions, and displayed in synchronised list and
// map viewers; selecting an influencer narrows the posts viewers; a
// sentiment service summarises the selected stream per category.
const Figure1CompositionJSON = `{
  "name": "sentiment-analysis-dashboard",
  "components": [
    {"id": "twitter", "type": "comments", "params": {"kind": "social-network"}},
    {"id": "tripadvisor", "type": "comments", "params": {"kind": "review-site"}},
    {"id": "merge", "type": "union"},
    {"id": "inf", "type": "influencer-filter", "params": {"top": 10}},
    {"id": "infList", "type": "list-viewer", "title": "Influencers", "params": {"fields": ["name", "score"]}},
    {"id": "infMap", "type": "map-viewer", "title": "Influencer locations"},
    {"id": "postSel", "type": "event-filter", "params": {"item_key": "author_id", "payload_key": "author_id"}},
    {"id": "senti", "type": "sentiment"},
    {"id": "postList", "type": "list-viewer", "title": "Influencer posts", "params": {"fields": ["author", "category", "text"]}},
    {"id": "postMap", "type": "map-viewer", "title": "Post locations"},
    {"id": "indicators", "type": "indicator-viewer", "title": "Sentiment by category"}
  ],
  "wires": [
    {"from": "twitter.out", "to": "merge.a"},
    {"from": "tripadvisor.out", "to": "merge.b"},
    {"from": "merge.out", "to": "inf.in"},
    {"from": "inf.influencers", "to": "infList.in"},
    {"from": "inf.influencers", "to": "infMap.in"},
    {"from": "inf.out", "to": "postSel.in"},
    {"from": "postSel.out", "to": "senti.in"},
    {"from": "senti.out", "to": "postList.in"},
    {"from": "senti.out", "to": "postMap.in"},
    {"from": "senti.indicators", "to": "indicators.in"}
  ],
  "sync": [
    {"source": "infList", "event": "select", "target": "postSel"}
  ]
}`

// Figure1Result is the executed dashboard plus the interaction trace.
type Figure1Result struct {
	Influencers   int
	PostsAll      int
	SelectedName  string
	PostsSelected int
	// InitialDashboard and SelectedDashboard are the rendered dashboards
	// before and after the selection event.
	InitialDashboard  string
	SelectedDashboard string
}

// RunFigure1 builds a world, assembles the Figure 1 composition, runs it,
// and replays the paper's interaction: select the top influencer and watch
// the synced viewers narrow.
func RunFigure1(seed int64, numSources int) (*Figure1Result, error) {
	if numSources == 0 {
		numSources = 120
	}
	world := webgen.Generate(webgen.Config{
		Seed:        seed,
		NumSources:  numSources,
		CommentText: true,
	})
	panel := analytics.Build(world, seed+1)
	di := quality.DomainOfInterest{Categories: world.Categories}
	env := services.NewEnv(world, panel, di)
	reg := services.NewRegistry(env)

	comp, err := mashup.ParseComposition([]byte(Figure1CompositionJSON))
	if err != nil {
		return nil, err
	}
	rt, err := mashup.NewRuntime(comp, reg)
	if err != nil {
		return nil, err
	}
	d, err := rt.Run()
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{InitialDashboard: d.Render()}
	infList, ok := d.View("infList")
	if !ok || len(infList.Items) == 0 {
		return nil, fmt.Errorf("figure1: no influencers detected")
	}
	res.Influencers = len(infList.Items)
	if postList, ok := d.View("postList"); ok {
		res.PostsAll = len(postList.Items)
	}

	selected := infList.Items[0]
	res.SelectedName, _ = selected["name"].(string)
	d, err = rt.Emit(mashup.Event{Source: "infList", Name: "select", Payload: selected})
	if err != nil {
		return nil, err
	}
	res.SelectedDashboard = d.Render()
	if postList, ok := d.View("postList"); ok {
		res.PostsSelected = len(postList.Items)
	}
	return res, nil
}

// Render summarises the run.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — sentiment-analysis mashup\n")
	fmt.Fprintf(&b, "influencers detected: %d; posts by influencers: %d\n", r.Influencers, r.PostsAll)
	fmt.Fprintf(&b, "selected %q -> synced viewers narrowed to %d posts\n\n", r.SelectedName, r.PostsSelected)
	b.WriteString(r.SelectedDashboard)
	return b.String()
}
