package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/informing-observers/informer/internal/analytics"
	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/crawler"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/social"
	"github.com/informing-observers/informer/internal/stats"
	"github.com/informing-observers/informer/internal/webgen"
	"github.com/informing-observers/informer/internal/webserve"
)

// MeasureSummary is the corpus-wide distribution of one measure.
type MeasureSummary struct {
	ID          string
	Description string
	Dimension   string
	Attribute   string
	Provenance  string
	Defined     int // records on which the measure is defined
	Stats       stats.Describe
}

// Table1Result exercises the full Table 1 measure suite over a corpus that
// is genuinely crawled over HTTP (substitution S2's proof of life).
type Table1Result struct {
	Sources    int
	CrawlErrs  int
	Measures   []MeasureSummary
	TopSources []string // best sources by overall score
}

// RunTable1 serves a world over a loopback HTTP listener, crawls it, joins
// the panel, evaluates all 20 Table 1 measures (the paper's 19 plus
// src.originality from the correlation engine) and summarises them.
func RunTable1(seed int64, numSources int) (*Table1Result, error) {
	if numSources == 0 {
		numSources = 60
	}
	world := webgen.Generate(webgen.Config{
		Seed: seed, NumSources: numSources, CommentText: true,
		// Inject syndicated copies so the originality column has spread.
		SyndicationRate: 0.1,
	})
	panel := analytics.Build(world, seed+1)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("table1: listen: %w", err)
	}
	srv := &http.Server{Handler: webserve.New(world)}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	snap, err := crawler.Crawl(ctx, crawler.Config{
		BaseURL:    "http://" + ln.Addr().String(),
		FetchFeeds: true,
	})
	if err != nil {
		return nil, fmt.Errorf("table1: crawl: %w", err)
	}
	records := quality.SourceRecordsFromSnapshot(snap, panel, world.Config.End, world.Days())
	dedup := correlate.NewIndex()
	dedup.Build(world)
	for _, r := range records {
		r.CorrelatedComments, r.DuplicateComments = dedup.Counts(r.ID)
	}
	di := quality.DomainOfInterest{Categories: world.Categories}
	assessor := quality.NewSourceAssessor(records, di, nil)
	ranked := assessor.Rank(records)

	res := &Table1Result{Sources: len(records), CrawlErrs: len(snap.Errs)}
	for i := 0; i < 5 && i < len(ranked); i++ {
		res.TopSources = append(res.TopSources, ranked[i].Name)
	}
	for _, m := range quality.SourceMeasures() {
		var values []float64
		for _, r := range records {
			if v, ok := m.Eval(r, &di); ok {
				values = append(values, v)
			}
		}
		res.Measures = append(res.Measures, MeasureSummary{
			ID:          m.ID,
			Description: m.Description,
			Dimension:   m.Dimension.String(),
			Attribute:   m.Attribute.String(),
			Provenance:  m.Provenance.String(),
			Defined:     len(values),
			Stats:       stats.Summarize(values),
		})
	}
	return res, nil
}

// Render produces the Table 1 measure matrix summary.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — source quality measures over a crawled corpus (%d sources, %d crawl errors)\n\n",
		r.Sources, r.CrawlErrs)
	fmt.Fprintf(&b, "%-36s %-16s %-11s %-9s %8s %10s %10s\n",
		"measure", "dimension", "attribute", "source", "defined", "mean", "median")
	fmt.Fprintln(&b, strings.Repeat("-", 108))
	for _, m := range r.Measures {
		fmt.Fprintf(&b, "%-36s %-16s %-11s %-9s %8d %10.3f %10.3f\n",
			m.ID, m.Dimension, m.Attribute, m.Provenance, m.Defined, m.Stats.Mean, m.Stats.Median)
	}
	fmt.Fprintf(&b, "\ntop sources by overall quality: %s\n", strings.Join(r.TopSources, ", "))
	return b.String()
}

// Table2Result exercises the full Table 2 measure suite over the microblog
// dataset.
type Table2Result struct {
	Contributors int
	Measures     []MeasureSummary
	TopNames     []string
}

// RunTable2 evaluates all 15 contributor measures on the annotated account
// dataset.
func RunTable2(seed int64, numAccounts int) (*Table2Result, error) {
	ds := social.Generate(social.Config{Seed: seed, NumAccounts: numAccounts})
	obs := time.Date(2011, 10, 1, 0, 0, 0, 0, time.UTC)
	records := quality.ContributorRecordsFromSocial(ds, obs)
	di := quality.DomainOfInterest{}
	assessor := quality.NewContributorAssessor(records, di, nil)
	ranked := assessor.Rank(records)

	res := &Table2Result{Contributors: len(records)}
	for i := 0; i < 5 && i < len(ranked); i++ {
		res.TopNames = append(res.TopNames, ranked[i].Name)
	}
	for _, m := range quality.ContributorMeasures() {
		var values []float64
		for _, r := range records {
			if v, ok := m.Eval(r, &di); ok {
				values = append(values, v)
			}
		}
		res.Measures = append(res.Measures, MeasureSummary{
			ID:          m.ID,
			Description: m.Description,
			Dimension:   m.Dimension.String(),
			Attribute:   m.Attribute.String(),
			Defined:     len(values),
			Stats:       stats.Summarize(values),
		})
	}
	sort.Slice(res.Measures, func(i, j int) bool { return res.Measures[i].ID < res.Measures[j].ID })
	return res, nil
}

// Render produces the Table 2 measure matrix summary.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — contributor quality measures over the microblog dataset (%d accounts)\n\n", r.Contributors)
	fmt.Fprintf(&b, "%-32s %-16s %-11s %8s %12s %12s\n",
		"measure", "dimension", "attribute", "defined", "mean", "median")
	fmt.Fprintln(&b, strings.Repeat("-", 96))
	for _, m := range r.Measures {
		fmt.Fprintf(&b, "%-32s %-16s %-11s %8d %12.3f %12.3f\n",
			m.ID, m.Dimension, m.Attribute, m.Defined, m.Stats.Mean, m.Stats.Median)
	}
	fmt.Fprintf(&b, "\ntop contributors by overall quality: %s\n", strings.Join(r.TopNames, ", "))
	return b.String()
}
