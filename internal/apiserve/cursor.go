package apiserve

// The wire form of quality.Cursor: an opaque, URL-safe token clients echo
// verbatim as ?cursor=. The payload is versioned, fixed-length and
// checksummed, so arbitrary bytes are rejected cleanly (never a panic,
// never a silently misparsed cursor) and every accepted token is the
// canonical encoding of its cursor — DecodeCursor and EncodeCursor are
// exact inverses on the accepted set, a property FuzzCursor pins.

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/informing-observers/informer/internal/quality"
)

// cursorVersion tags the payload layout; bump it when the layout changes
// so stale clients get a clean rejection instead of a misparse.
const cursorVersion = 1

// cursorLen is the fixed payload length: version byte, key bits, ID, Pos,
// FNV-1a checksum.
const cursorLen = 1 + 8 + 8 + 8 + 4

// cursorEncoding rejects non-canonical base64 (strict mode catches
// non-zero trailing padding bits), keeping the decode→encode round-trip
// exact.
var cursorEncoding = base64.RawURLEncoding.Strict()

// EncodeCursor renders a resume cursor as its opaque wire token.
func EncodeCursor(c quality.Cursor) string {
	buf := make([]byte, cursorLen)
	buf[0] = cursorVersion
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(c.Key))
	binary.BigEndian.PutUint64(buf[9:], uint64(c.ID))
	binary.BigEndian.PutUint64(buf[17:], uint64(c.Pos))
	h := fnv.New32a()
	h.Write(buf[:25])
	binary.BigEndian.PutUint32(buf[25:], h.Sum32())
	return cursorEncoding.EncodeToString(buf)
}

// DecodeCursor parses an opaque wire token back into a resume cursor,
// rejecting anything that is not a canonical, checksummed, in-domain
// encoding: wrong length, bad base64, unknown version, checksum mismatch,
// NaN key, or a negative ID/Pos.
func DecodeCursor(s string) (quality.Cursor, error) {
	var c quality.Cursor
	buf, err := cursorEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("bad cursor: not base64url")
	}
	if len(buf) != cursorLen {
		return c, fmt.Errorf("bad cursor: wrong length")
	}
	if buf[0] != cursorVersion {
		return c, fmt.Errorf("bad cursor: unknown version %d", buf[0])
	}
	h := fnv.New32a()
	h.Write(buf[:25])
	if binary.BigEndian.Uint32(buf[25:]) != h.Sum32() {
		return c, fmt.Errorf("bad cursor: checksum mismatch")
	}
	key := math.Float64frombits(binary.BigEndian.Uint64(buf[1:]))
	id := binary.BigEndian.Uint64(buf[9:])
	pos := binary.BigEndian.Uint64(buf[17:])
	if math.IsNaN(key) || id > math.MaxInt || pos > math.MaxInt {
		return c, fmt.Errorf("bad cursor: out of domain")
	}
	c.Key, c.ID, c.Pos = key, int(id), int(pos)
	return c, nil
}
