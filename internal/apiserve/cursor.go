package apiserve

// The wire form of quality.Cursor: an opaque, URL-safe token clients echo
// verbatim as ?cursor=. The payload is versioned, fixed-length and
// checksummed, so arbitrary bytes are rejected cleanly (never a panic,
// never a silently misparsed cursor) and every accepted token is the
// canonical encoding of its cursor — DecodeCursor and EncodeCursor are
// exact inverses on the accepted set, a property FuzzCursor pins.
//
// Version 2 tags the token with the shard count of the engine that minted
// it. The resume position itself is shard-agnostic — (key, ID, Pos) means
// the same thing under any sharding, because the scatter-gather merge is
// bit-identical to the unsharded ranking — but a token minted under one
// shard layout and replayed against another is evidence the client is
// resuming a walk across a corpus rebuild, so the serving layer fails it
// closed with 410 Gone instead of silently continuing (the same contract
// as an aged-out ?snapshot= pin). Version 1 tokens (no shard tag) are
// rejected as an unknown version.

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"github.com/informing-observers/informer/internal/quality"
)

// cursorVersion tags the payload layout; bump it when the layout changes
// so stale clients get a clean rejection instead of a misparse.
const cursorVersion = 2

// cursorLen is the fixed payload length: version byte, shard count, key
// bits, ID, Pos, FNV-1a checksum.
const cursorLen = 1 + 4 + 8 + 8 + 8 + 4

// cursorSummed is the checksummed prefix: everything but the trailing
// FNV-1a word.
const cursorSummed = cursorLen - 4

// cursorEncoding rejects non-canonical base64 (strict mode catches
// non-zero trailing padding bits), keeping the decode→encode round-trip
// exact.
var cursorEncoding = base64.RawURLEncoding.Strict()

// EncodeCursor renders a resume cursor as its opaque wire token, tagged
// with the shard count of the snapshot that minted it (values below 1
// encode as 1, the unsharded engine).
func EncodeCursor(c quality.Cursor, shards int) string {
	if shards < 1 {
		shards = 1
	}
	buf := make([]byte, cursorLen)
	buf[0] = cursorVersion
	binary.BigEndian.PutUint32(buf[1:], uint32(shards))
	binary.BigEndian.PutUint64(buf[5:], math.Float64bits(c.Key))
	binary.BigEndian.PutUint64(buf[13:], uint64(c.ID))
	binary.BigEndian.PutUint64(buf[21:], uint64(c.Pos))
	h := fnv.New32a()
	h.Write(buf[:cursorSummed])
	binary.BigEndian.PutUint32(buf[cursorSummed:], h.Sum32())
	return cursorEncoding.EncodeToString(buf)
}

// DecodeCursor parses an opaque wire token back into a resume cursor plus
// the shard count it was minted under, rejecting anything that is not a
// canonical, checksummed, in-domain encoding: wrong length, bad base64,
// unknown version (including v1 tokens from before the shard tag),
// checksum mismatch, NaN key, a zero shard count, or a negative ID/Pos.
// Whether the shard count still matches the serving snapshot is the
// caller's check (410 semantics, see checkCursorShards).
func DecodeCursor(s string) (quality.Cursor, int, error) {
	var c quality.Cursor
	buf, err := cursorEncoding.DecodeString(s)
	if err != nil {
		return c, 0, fmt.Errorf("bad cursor: not base64url")
	}
	if len(buf) != cursorLen {
		return c, 0, fmt.Errorf("bad cursor: wrong length")
	}
	if buf[0] != cursorVersion {
		return c, 0, fmt.Errorf("bad cursor: unknown version %d", buf[0])
	}
	h := fnv.New32a()
	h.Write(buf[:cursorSummed])
	if binary.BigEndian.Uint32(buf[cursorSummed:]) != h.Sum32() {
		return c, 0, fmt.Errorf("bad cursor: checksum mismatch")
	}
	shards := binary.BigEndian.Uint32(buf[1:])
	key := math.Float64frombits(binary.BigEndian.Uint64(buf[5:]))
	id := binary.BigEndian.Uint64(buf[13:])
	pos := binary.BigEndian.Uint64(buf[21:])
	if shards == 0 || math.IsNaN(key) || id > math.MaxInt || pos > math.MaxInt {
		return c, 0, fmt.Errorf("bad cursor: out of domain")
	}
	c.Key, c.ID, c.Pos = key, int(id), int(pos)
	return c, int(shards), nil
}
