package apiserve

// The /api/v1/stories endpoint: story clusters from the correlation
// engine (DESIGN.md section 14), each rendered with its member sources
// ranked by the serving snapshot's quality scores and the representative
// discussion the cluster is named after. The walk paginates by keyset
// (latest-activity desc, story ID asc) through a dedicated cursor token:
// the story ordering axis — a timestamp plus a comment-ID tiebreak — is
// not the (score, ID, rank) triple the assessment cursor carries, so the
// two codecs are separate and their token lengths differ, keeping a token
// pasted across endpoints a clean rejection rather than a misparse.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/url"
	"time"

	"github.com/informing-observers/informer/internal/correlate"
)

// StoryMember is the wire form of one source carrying a story.
type StoryMember struct {
	SourceID int     `json:"source_id"`
	Name     string  `json:"name"`
	Score    float64 `json:"score"`
}

// StoryItem is the wire form of one story cluster.
type StoryItem struct {
	ID   int `json:"id"`
	Size int `json:"size"`
	// Latest is the posting instant of the cluster's newest comment —
	// the freshness axis the listing is ordered by.
	Latest time.Time `json:"latest"`
	// Title names the representative discussion (the cluster's earliest
	// copy of the story).
	Title        string `json:"title"`
	SourceID     int    `json:"source_id"`
	DiscussionID int    `json:"discussion_id"`
	// Members lists every source carrying the story, best-assessed
	// first.
	Members []StoryMember `json:"members"`
}

// StoriesResult is one stories page, produced by the snapshot (which
// owns the world and score data the items are enriched from).
type StoriesResult struct {
	Items []StoryItem
	Total int
	Next  *correlate.StoryCursor
}

// storyCursorVersion tags the story token layout. The payload length
// (1 + 8 + 8 + 4) differs from the assessment cursor's, so the two token
// families can never decode as each other.
const storyCursorVersion = 1

const storyCursorLen = 1 + 8 + 8 + 4

const storyCursorSummed = storyCursorLen - 4

// EncodeStoryCursor renders a stories resume position as its opaque wire
// token: version byte, latest-activity nanosecond timestamp, story ID,
// FNV-1a checksum, base64url (strict, unpadded).
func EncodeStoryCursor(c correlate.StoryCursor) string {
	buf := make([]byte, storyCursorLen)
	buf[0] = storyCursorVersion
	binary.BigEndian.PutUint64(buf[1:], uint64(c.LatestNano))
	binary.BigEndian.PutUint64(buf[9:], uint64(c.ID))
	h := fnv.New32a()
	h.Write(buf[:storyCursorSummed])
	binary.BigEndian.PutUint32(buf[storyCursorSummed:], h.Sum32())
	return cursorEncoding.EncodeToString(buf)
}

// DecodeStoryCursor parses a stories token, rejecting anything that is
// not a canonical, checksummed, in-domain encoding: bad base64, wrong
// length, unknown version, checksum mismatch, or a negative story ID.
// DecodeStoryCursor and EncodeStoryCursor are exact inverses on the
// accepted set (FuzzStoryCursor pins this).
func DecodeStoryCursor(s string) (correlate.StoryCursor, error) {
	var c correlate.StoryCursor
	buf, err := cursorEncoding.DecodeString(s)
	if err != nil {
		return c, fmt.Errorf("bad cursor: not base64url")
	}
	if len(buf) != storyCursorLen {
		return c, fmt.Errorf("bad cursor: wrong length")
	}
	if buf[0] != storyCursorVersion {
		return c, fmt.Errorf("bad cursor: unknown version %d", buf[0])
	}
	h := fnv.New32a()
	h.Write(buf[:storyCursorSummed])
	if binary.BigEndian.Uint32(buf[storyCursorSummed:]) != h.Sum32() {
		return c, fmt.Errorf("bad cursor: checksum mismatch")
	}
	id := binary.BigEndian.Uint64(buf[9:])
	if id > maxIntU64 {
		return c, fmt.Errorf("bad cursor: out of domain")
	}
	c.LatestNano = int64(binary.BigEndian.Uint64(buf[1:]))
	c.ID = int(id)
	return c, nil
}

const maxIntU64 = uint64(^uint(0) >> 1)

// BindStoryQuery binds a URL query string to a stories query:
//
//	k=10             page size (default 10)
//	min_sources=2    minimum distinct sources per story (default 2)
//	cursor=<token>   keyset resume from a previous page's next_cursor
//
// Exported so tests and the fuzz harness can exercise the binding
// directly.
func BindStoryQuery(v url.Values) (correlate.StoryQuery, error) {
	var q correlate.StoryQuery
	var err error
	if q.Limit, err = intParam(v, "k", 10); err != nil {
		return q, err
	}
	if q.Limit <= 0 {
		return q, fmt.Errorf("k must be positive")
	}
	if q.MinSources, err = intParam(v, "min_sources", 2); err != nil {
		return q, err
	}
	if q.MinSources < 2 {
		return q, fmt.Errorf("min_sources must be at least 2 (a story spans sources)")
	}
	if tok := v.Get("cursor"); tok != "" {
		c, err := DecodeStoryCursor(tok)
		if err != nil {
			return q, err
		}
		q.After = &c
	}
	return q, nil
}

func handleStories(st Snapshot, v url.Values) (page, error) {
	q, err := BindStoryQuery(v)
	if err != nil {
		return page{}, err
	}
	res := st.Stories(q)
	next := ""
	if res.Next != nil {
		next = EncodeStoryCursor(*res.Next)
	}
	items := res.Items
	if items == nil {
		items = []StoryItem{}
	}
	return page{items: items, total: res.Total, next: next}, nil
}
