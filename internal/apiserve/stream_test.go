package apiserve

// Unit contracts of the /api/v1/stream SSE transport against stub
// snapshots: the sync frame, live delta frames (byte-identical to the
// watch envelopes of the same steps), catch-up on connect, Last-Event-ID
// resume, 410 for aged tokens, heartbeats and the terminal resync frame.
// End-to-end SSE-vs-long-poll equivalence over a real corpus is pinned at
// the repo root by stream_equiv_test.go.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

// sseFrame is one parsed SSE frame; comment-only frames (heartbeats) are
// skipped by readFrame but counted in comments.
type sseFrame struct {
	event, id, data string
}

// frameReader incrementally parses an SSE response body.
type frameReader struct {
	br       *bufio.Reader
	comments int
}

func newFrameReader(body *bufio.Reader) *frameReader { return &frameReader{br: body} }

func (fr *frameReader) readFrame(t *testing.T) sseFrame {
	t.Helper()
	var f sseFrame
	seen := false
	for {
		line, err := fr.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return f
			}
			continue // separator of a comment-only frame
		}
		switch {
		case strings.HasPrefix(line, ":"):
			fr.comments++
		case strings.HasPrefix(line, "event: "):
			f.event, seen = strings.TrimPrefix(line, "event: "), true
		case strings.HasPrefix(line, "id: "):
			f.id, seen = strings.TrimPrefix(line, "id: "), true
		case strings.HasPrefix(line, "data: "):
			f.data, seen = strings.TrimPrefix(line, "data: "), true
		default:
			t.Fatalf("unexpected stream line %q", line)
		}
	}
}

// openStream connects to the SSE endpoint and asserts the handshake.
func openStream(t *testing.T, base, target string, hdr map[string]string) (*http.Response, *frameReader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+target, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream handshake: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream content type %q", ct)
	}
	return resp, newFrameReader(bufio.NewReader(resp.Body))
}

// watchBody renders the watch envelope a long-poll for the same step
// would answer — the byte-identity reference of a delta frame.
func watchBody(t *testing.T, since, snapshot int64, old, new_ []*quality.Assessment) string {
	t.Helper()
	body, err := json.Marshal(NewWatchEnvelope(since, snapshot, ChangeItems(quality.DiffWindows(old, new_))))
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestStreamDeltasOverOneConnection(t *testing.T) {
	v1 := watchWindow(1, 1, 2, 3, 4)
	p := newWatchProvider(v1)
	s := New(p)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, fr := openStream(t, srv.URL, "/api/v1/stream?since=1&k=10", nil)
	defer resp.Body.Close()

	if f := fr.readFrame(t); f.event != "sync" || f.id != "1" || f.data != `{"api_version":"v1","snapshot":1}` {
		t.Fatalf("sync frame %+v", f)
	}

	// Two ticks arrive over the same connection; each delta frame is the
	// long-poll envelope of the same step, byte for byte, with the frame
	// id carrying the new since-token.
	v2 := watchWindow(2, 1, 3, 5, 2)
	p.swap(v2)
	if f := fr.readFrame(t); f.event != "" || f.id != "2" || f.data != watchBody(t, 1, 2, v1.window, v2.window) {
		t.Fatalf("first delta frame %+v", f)
	}
	v3 := watchWindow(3, 5, 1, 3, 2)
	p.swap(v3)
	if f := fr.readFrame(t); f.id != "3" || f.data != watchBody(t, 2, 3, v2.window, v3.window) {
		t.Fatalf("second delta frame %+v", f)
	}
}

func TestStreamCatchUpAndLastEventIDResume(t *testing.T) {
	v1 := watchWindow(1, 1, 2, 3)
	p := newWatchProvider(v1)
	s := New(p)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	get(t, s, "/api/v1/sources", nil) // register round 1 in the ring
	v2 := watchWindow(2, 3, 1, 2)
	p.swap(v2)

	// A connect behind the current round answers one catch-up delta
	// before going live — the same envelope watch?since=1 would answer.
	resp, fr := openStream(t, srv.URL, "/api/v1/stream?since=1&k=10", nil)
	if f := fr.readFrame(t); f.event != "sync" || f.id != "1" {
		t.Fatalf("sync frame %+v", f)
	}
	want := watchBody(t, 1, 2, v1.window, v2.window)
	if f := fr.readFrame(t); f.id != "2" || f.data != want {
		t.Fatalf("catch-up frame %+v, want data %s", f, want)
	}
	resp.Body.Close()

	// Reconnecting with Last-Event-ID instead of ?since= resumes
	// identically (the header wins over the parameter).
	resp, fr = openStream(t, srv.URL, "/api/v1/stream?k=10", map[string]string{"Last-Event-ID": "1"})
	if f := fr.readFrame(t); f.event != "sync" || f.id != "1" {
		t.Fatalf("resumed sync frame %+v", f)
	}
	if f := fr.readFrame(t); f.id != "2" || f.data != want {
		t.Fatalf("resumed catch-up frame %+v", f)
	}
	resp.Body.Close()
}

func TestStreamSinceAbsentStartsAtCurrentRound(t *testing.T) {
	v5 := watchWindow(5, 1, 2)
	p := newWatchProvider(v5)
	s := New(p)
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, fr := openStream(t, srv.URL, "/api/v1/stream?k=10", nil)
	defer resp.Body.Close()
	if f := fr.readFrame(t); f.event != "sync" || f.id != "5" || f.data != `{"api_version":"v1","snapshot":5}` {
		t.Fatalf("sync frame %+v", f)
	}
	v6 := watchWindow(6, 2, 1)
	p.swap(v6)
	if f := fr.readFrame(t); f.id != "6" || f.data != watchBody(t, 5, 6, v5.window, v6.window) {
		t.Fatalf("delta frame %+v", f)
	}
}

func TestStreamErrorsMatchWatch(t *testing.T) {
	p := newWatchProvider(watchWindow(5, 1, 2))
	s := New(p)
	defer s.Close()

	// 410 and 400 are answered before any frame, with the same semantics
	// as /api/v1/watch: aged since → Gone, unpublished since → Bad
	// Request, pagination positions rejected.
	cursorTok := EncodeCursor(quality.Cursor{Key: 0.5, ID: 1, Pos: 1}, 1)
	for target, wantCode := range map[string]int{
		"/api/v1/stream?since=1&k=10":                http.StatusGone, // never retained
		"/api/v1/stream?since=9":                     http.StatusBadRequest,
		"/api/v1/stream?since=abc":                   http.StatusBadRequest,
		"/api/v1/stream?since=5&offset=3":            http.StatusBadRequest,
		"/api/v1/stream?since=5&min_dim.z=0.5":       http.StatusBadRequest,
		"/api/v1/stream?since=5&cursor=" + cursorTok: http.StatusBadRequest,
	} {
		if rec := get(t, s, target, nil); rec.Code != wantCode {
			t.Errorf("%s: status %d, want %d", target, rec.Code, wantCode)
		}
	}
	if rec := get(t, s, "/api/v1/stream?k=10", map[string]string{"Last-Event-ID": "nope"}); rec.Code != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: status %d, want 400", rec.Code)
	}
}

func TestStreamHeartbeatsAndResyncFrame(t *testing.T) {
	p := newWatchProvider(watchWindow(1, 1, 2))
	s := New(p)
	s.StreamHeartbeat = 20 * time.Millisecond
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, fr := openStream(t, srv.URL, "/api/v1/stream?since=1&k=10", nil)
	defer resp.Body.Close()
	if f := fr.readFrame(t); f.event != "sync" {
		t.Fatalf("sync frame %+v", f)
	}

	// Let a few heartbeats pass, then shut the registry down: the stream
	// ends with a terminal resync frame — the in-stream 410.
	go func() {
		time.Sleep(120 * time.Millisecond)
		s.Close()
	}()
	f := fr.readFrame(t)
	if f.event != "resync" {
		t.Fatalf("terminal frame %+v, want resync", f)
	}
	var re StreamResync
	if err := json.Unmarshal([]byte(f.data), &re); err != nil || re.APIVersion != "v1" || re.Error == "" {
		t.Fatalf("resync payload %q (%v)", f.data, err)
	}
	if fr.comments == 0 {
		t.Fatal("no heartbeat comment arrived before the resync frame")
	}
}
