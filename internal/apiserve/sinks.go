package apiserve

// /api/v1/sinks: management surface of the push-delivery engine
// (internal/deliver, DESIGN.md section 10). Where /api/v1/stream holds a
// connection open to receive a standing query's deltas, a sink inverts
// the arrow: the server POSTs the same delta envelopes to a remote
// webhook, with per-sink queueing, coalescing, bounded retries, a circuit
// breaker and eviction — so observers that cannot hold a connection
// (serverless handlers, cross-service integrations) still ride the
// one-evaluation-per-tick fan-out.
//
//	POST   /api/v1/sinks        {"name":"...", "url":"http://...",
//	                             "query":"min_score=0.6&k=10&changes=entered"}
//	GET    /api/v1/sinks        list every sink with live delivery stats
//	GET    /api/v1/sinks/<id>   one sink's stats
//	DELETE /api/v1/sinks/<id>   detach a sink now
//
// The query string binds exactly like /api/v1/watch (scope, predicates,
// k/limit bounds, delta filters; no pagination position). The endpoints
// exist only when the provider implements SinkProvider — the informer
// facade does.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"github.com/informing-observers/informer/internal/deliver"
)

// SinkProvider is the optional provider wiring of the push-delivery
// engine: a provider owning a deliver.Manager gets the /api/v1/sinks
// management endpoints mounted over it.
type SinkProvider interface {
	Sinks() *deliver.Manager
}

// maxSinkBody bounds a sink-creation request body.
const maxSinkBody = 64 << 10

// SinkRequest is the POST /api/v1/sinks body.
type SinkRequest struct {
	// Name optionally labels the sink in listings.
	Name string `json:"name"`
	// URL is the webhook endpoint delta envelopes are POSTed to.
	URL string `json:"url"`
	// Query is the standing query in /api/v1/watch query-string form,
	// delta filters included (e.g. "min_score=0.6&k=10&changes=entered").
	Query string `json:"query"`
}

// SinkEnvelope wraps one sink's stats; SinksEnvelope wraps the listing.
type SinkEnvelope struct {
	APIVersion string            `json:"api_version"`
	Sink       deliver.SinkStats `json:"sink"`
}

type SinksEnvelope struct {
	APIVersion string              `json:"api_version"`
	Count      int                 `json:"count"`
	Sinks      []deliver.SinkStats `json:"sinks"`
}

// handleSinks serves the /api/v1/sinks collection: create and list.
func (s *Server) handleSinks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.createSink(w, r)
	case http.MethodGet, http.MethodHead:
		stats := s.sinks.Stats()
		if stats == nil {
			stats = []deliver.SinkStats{}
		}
		writeJSON(w, http.StatusOK, SinksEnvelope{APIVersion: "v1", Count: len(stats), Sinks: stats})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleSink serves one sink: stats and removal.
func (s *Server) handleSink(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/sinks/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such sink")
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		st, ok := s.sinks.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no sink %q", id))
			return
		}
		writeJSON(w, http.StatusOK, SinkEnvelope{APIVersion: "v1", Sink: st})
	case http.MethodDelete:
		if !s.sinks.Remove(id) {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no sink %q", id))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// createSink registers a webhook sink from a SinkRequest.
func (s *Server) createSink(w http.ResponseWriter, r *http.Request) {
	var req SinkRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSinkBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad sink request: %v", err))
		return
	}
	u, err := url.Parse(req.URL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad sink url %q: need an absolute http(s) URL", req.URL))
		return
	}
	v, err := url.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad sink query: %v", err))
		return
	}
	q, err := BindQuery(v)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if q.After != nil || q.Offset != 0 {
		writeError(w, http.StatusBadRequest, "standing windows do not paginate; bound them with k or limit")
		return
	}
	filter, err := BindFilter(v)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := s.sinks.Register(deliver.SinkConfig{
		Name:   req.Name,
		Sink:   &deliver.WebhookSink{URL: req.URL},
		Query:  q,
		Filter: filter,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, _ := s.sinks.Get(id)
	writeJSON(w, http.StatusCreated, SinkEnvelope{APIVersion: "v1", Sink: st})
}

// writeJSON answers one management envelope (no caching semantics: sink
// stats are live counters, not snapshot-derived state).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
