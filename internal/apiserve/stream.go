package apiserve

// /api/v1/stream: the Server-Sent Events transport of the standing-query
// subsystem (DESIGN.md section 9). Where /api/v1/watch answers one delta
// per request, a stream carries every tick's delta over one connection:
//
//	GET /api/v1/stream?since=3&min_score=0.6&k=10
//	Accept: text/event-stream
//
//	event: sync
//	id: 3
//	data: {"api_version":"v1","snapshot":3}
//
//	id: 4
//	data: {"api_version":"v1","since":3,"snapshot":4,"count":2,"changes":[...]}
//
// Each delta frame's data payload is byte-identical to the /api/v1/watch
// response body for the same since-token step, and the frame id is the
// round the delta ends at — so the standard SSE Last-Event-ID reconnect
// header doubles as the since token. An absent since starts the stream at
// the current round (the sync frame names it); a since behind the current
// round is first served one catch-up delta from the retention ring, and a
// since that aged out of the ring is 410 Gone before any frame — exactly
// the watch semantics. A subscriber that cannot keep up with the tick
// rate is dropped with a final "resync" frame (the in-stream 410): it
// reconnects with its Last-Event-ID and recovers through the same
// catch-up/410 path. Comment heartbeats keep idle connections alive.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

// defaultStreamHeartbeat keeps idle SSE connections alive through
// proxies; Server.StreamHeartbeat tunes it.
const defaultStreamHeartbeat = 15 * time.Second

// StreamSync is the data payload of the stream's opening "sync" frame:
// the round the delta stream starts from. A client that missed nothing
// (since == sync snapshot) needs no re-read.
type StreamSync struct {
	APIVersion string `json:"api_version"`
	Snapshot   int64  `json:"snapshot"`
}

// StreamResync is the data payload of a terminal "resync" frame — the
// in-stream equivalent of 410 Gone: the subscriber fell behind the tick
// rate and must re-sync from the current round.
type StreamResync struct {
	APIVersion string `json:"api_version"`
	Error      string `json:"error"`
}

// handleStream serves GET /api/v1/stream?[since=N]&<query...> as a
// Server-Sent Events feed of one standing query's per-tick window deltas;
// see the file comment for the wire protocol. The query binds exactly
// like /api/v1/watch.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	since, _, q, filter, err := bindWatchQuery(r.URL.Query(), false)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A stream holds its connection across ticks: exempt it from the
	// host server's write timeout (no-op on writers without deadline
	// support), or the timeout would sever every stream mid-flight.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	// The SSE reconnect header doubles as the since token and wins over
	// the query parameter: a browser EventSource re-sends it unasked.
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if since, err = strconv.ParseInt(lei, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad Last-Event-ID %q", lei))
			return
		}
	}

	cur := s.observe()
	if since > cur.Version() {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("snapshot %d has not been published (current is %d)", since, cur.Version()))
		return
	}
	sub, err := s.subs.SubscribeWith(q, filter)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	defer sub.Close()

	// Resolve the catch-up delta — everything between the client's since
	// and the subscription's baseline — before any byte is written, so an
	// aged since can still answer a clean 410.
	baseline := since
	if baseline == 0 {
		baseline = sub.Since()
	}
	var catchup *WatchEnvelope
	if baseline < sub.Since() {
		old, ok := s.retained(baseline)
		if !ok {
			writeError(w, http.StatusGone, fmt.Sprintf("snapshot %d is no longer retained; re-sync from the current round", baseline))
			return
		}
		oldRes, err := old.QuerySources(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		changes := filter.Apply(quality.DiffWindows(oldRes.Items, sub.Window()), oldRes.Items)
		env := NewWatchEnvelope(baseline, sub.Since(), ChangeItems(changes))
		catchup = &env
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	h.Set("X-Informer-Snapshot", strconv.FormatInt(sub.Since(), 10))
	w.WriteHeader(http.StatusOK)

	syncBody, _ := json.Marshal(StreamSync{APIVersion: "v1", Snapshot: baseline})
	writeFrame(w, "sync", strconv.FormatInt(baseline, 10), syncBody)
	if catchup != nil {
		body, err := json.Marshal(*catchup)
		if err != nil {
			return
		}
		writeFrame(w, "", strconv.FormatInt(catchup.Snapshot, 10), body)
	}
	fl.Flush()

	heartbeat := s.StreamHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultStreamHeartbeat
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Dropped (slow consumer) or registry shutdown: terminal
				// resync frame, the in-stream 410.
				msg := "subscription dropped; re-sync from the current round"
				if err := sub.Err(); err != nil {
					msg = err.Error()
				}
				body, _ := json.Marshal(StreamResync{APIVersion: "v1", Error: msg})
				writeFrame(w, "resync", "", body)
				fl.Flush()
				return
			}
			if snap, isAPI := ev.Snap.(Snapshot); isAPI {
				s.remember(snap) // keep streamed rounds addressable for reconnect catch-up
			}
			if !filter.Zero() && len(ev.Changes) == 0 {
				// Nothing passed this stream's filter: the tick costs the
				// subscriber zero bytes. A reconnect recovers any skipped
				// ids through the filtered catch-up delta above.
				continue
			}
			body, err := json.Marshal(NewWatchEnvelope(ev.Since, ev.Snapshot, ChangeItems(ev.Changes)))
			if err != nil {
				return
			}
			writeFrame(w, "", strconv.FormatInt(ev.Snapshot, 10), body)
			fl.Flush()
		case <-ticker.C:
			io.WriteString(w, ": heartbeat\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeFrame writes one SSE frame. An empty event name is the default
// "message" type (EventSource onmessage); id, when set, becomes the
// client's Last-Event-ID.
func writeFrame(w io.Writer, event, id string, data []byte) {
	if event != "" {
		fmt.Fprintf(w, "event: %s\n", event)
	}
	if id != "" {
		fmt.Fprintf(w, "id: %s\n", id)
	}
	fmt.Fprintf(w, "data: %s\n\n", data)
}
