// Package apiserve exposes quality assessments as a versioned,
// snapshot-consistent JSON HTTP API (DESIGN.md section 7) — the serving
// layer for observers who consume filtered, ranked slices of the corpus
// rather than whole assessment dumps:
//
//	GET /api/v1/sources?category=place&min_score=0.6&sort=dim.time&k=10
//	GET /api/v1/contributors?spam_resistance=0.3&k=25&fields=scores
//	GET /api/v1/influencers?strategy=combined&k=10
//	GET /api/v1/sentiment            GET /api/v1/trending?category=place
//	GET /api/v1/search?q=hotel+milan
//
// Filters are pushed down: the query string binds to a quality.Query and
// executes below the ranking inside the assessor (bounded top-k selection
// over the cached measure matrix), so the handler never materializes more
// assessments than one response page.
//
// Consistency model: every response is computed from ONE immutable
// assessment snapshot and carries its monotonic version both in the
// envelope ("snapshot") and in the X-Informer-Snapshot header, plus a
// strong content ETag honouring If-None-Match with 304. A client walking
// pages echoes the first page's token (?snapshot=N); the server retains a
// small ring of recent snapshots and keeps serving the pinned round even
// while Advance publishes new ones, so a paginated walk never mixes two
// assessment rounds. A pin that has aged out of the ring answers 410 Gone
// — the client restarts the walk on the current round.
package apiserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/etag"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
)

// Snapshot is one immutable assessment round: everything a request needs,
// answered consistently. The informer facade adapts its internal snapshot
// type to this interface; implementations must be safe for concurrent use
// and must never mutate after publication.
type Snapshot interface {
	// Version is the round's monotonic snapshot token.
	Version() int64
	QuerySources(q quality.Query) (*quality.QueryResult, error)
	QueryContributors(q quality.Query) (*quality.QueryResult, error)
	Influencers(opts quality.InfluencerOptions) []quality.Influencer
	SentimentByCategory() map[string]sentiment.Indicator
	TrendingTerms(category string, k int) []buzz.Term
	Search(query string, k int) []search.Result
}

// Provider hands out the current snapshot; the facade's atomic snapshot
// pointer sits behind it.
type Provider interface {
	Snapshot() Snapshot
}

// retainedSnapshots bounds the pin ring: how many assessment rounds stay
// addressable by ?snapshot=N after newer rounds are published. Snapshots
// are immutable and share unchanged state copy-on-write, so retention is
// cheap; the bound exists only to cap worst-case memory on fast tickers.
const retainedSnapshots = 8

// Server is the /api/v1 handler.
type Server struct {
	provider Provider
	mux      *http.ServeMux

	mu     sync.Mutex
	recent map[int64]Snapshot
	order  []int64 // retained versions, oldest first (versions are monotonic)
}

// New builds the API server over a snapshot provider. Mount it at the host
// mux root (it routes full /api/v1/... paths).
func New(p Provider) *Server {
	s := &Server{provider: p, recent: map[int64]Snapshot{}}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/api/v1/sources", s.endpoint(handleSources))
	s.mux.HandleFunc("/api/v1/contributors", s.endpoint(handleContributors))
	s.mux.HandleFunc("/api/v1/influencers", s.endpoint(handleInfluencers))
	s.mux.HandleFunc("/api/v1/sentiment", s.endpoint(handleSentiment))
	s.mux.HandleFunc("/api/v1/trending", s.endpoint(handleTrending))
	s.mux.HandleFunc("/api/v1/search", s.endpoint(handleSearch))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handlerFunc answers one endpoint from a pinned snapshot: items, the
// pre-pagination total and the window offset, or a binding/validation
// error (answered as 400).
type handlerFunc func(st Snapshot, v url.Values) (items any, total, offset int, err error)

// endpoint wraps a handler with the shared serving machinery: method
// check, snapshot resolution/pinning, envelope, ETag and 304.
func (s *Server) endpoint(fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		v := r.URL.Query()
		st, status, err := s.resolveSnapshot(v.Get("snapshot"))
		if err != nil {
			writeError(w, status, err.Error())
			return
		}
		items, total, offset, err := fn(st, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		body, err := json.Marshal(NewEnvelope(st.Version(), total, offset, items))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		tag := `"` + etag.Hash(body) + `"`
		h := w.Header()
		h.Set("Content-Type", "application/json; charset=utf-8")
		h.Set("ETag", tag)
		h.Set("X-Informer-Snapshot", strconv.FormatInt(st.Version(), 10))
		if r.Header.Get("If-None-Match") == tag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Write(body)
	}
}

// resolveSnapshot returns the snapshot a request is served from: the pinned
// round when ?snapshot=N names a retained version, the current round
// otherwise. The current round is remembered in the ring on every request,
// so any version a client has ever seen in an envelope was retained at
// that moment.
func (s *Server) resolveSnapshot(param string) (Snapshot, int, error) {
	cur := s.provider.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.recent[cur.Version()]; !seen {
		s.recent[cur.Version()] = cur
		s.order = append(s.order, cur.Version())
		for len(s.order) > retainedSnapshots {
			delete(s.recent, s.order[0])
			s.order = s.order[1:]
		}
	}
	if param == "" {
		return cur, 0, nil
	}
	want, err := strconv.ParseInt(param, 10, 64)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad snapshot token %q", param)
	}
	if pinned, ok := s.recent[want]; ok {
		return pinned, 0, nil
	}
	return nil, http.StatusGone, fmt.Errorf("snapshot %d is no longer retained; restart from the current round", want)
}

// Envelope is the pagination wrapper of every /api/v1 response.
type Envelope struct {
	APIVersion string `json:"api_version"`
	// Snapshot is the assessment round every item in this response was
	// computed from; echo it as ?snapshot=N to pin a paginated walk.
	Snapshot int64 `json:"snapshot"`
	// Total counts the matches before top-k selection and pagination
	// (sources, contributors, influencers, sentiment). Trending and
	// search are generators bounded by k at the source, so there Total
	// equals Count.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Count  int `json:"count"`
	Items  any `json:"items"`
}

// NewEnvelope wraps one response page. It is exported (with the item
// constructors below) so tests and in-process consumers can reproduce a
// response byte for byte.
func NewEnvelope(snapshot int64, total, offset int, items any) Envelope {
	count := 0
	if items != nil {
		if v := reflect.ValueOf(items); v.Kind() == reflect.Slice {
			count = v.Len()
		}
	}
	return Envelope{APIVersion: "v1", Snapshot: snapshot, Total: total, Offset: offset, Count: count, Items: items}
}

// Item is the wire form of one Assessment. Raw and Normalized appear only
// under fields=full (the ProjectFull projection).
type Item struct {
	ID         int                `json:"id"`
	Name       string             `json:"name"`
	Score      float64            `json:"score"`
	Dimensions map[string]float64 `json:"dimensions"`
	Attributes map[string]float64 `json:"attributes"`
	Raw        map[string]float64 `json:"raw,omitempty"`
	Normalized map[string]float64 `json:"normalized,omitempty"`
}

// AssessmentItems converts assessments to their wire form.
func AssessmentItems(as []*quality.Assessment) []Item {
	items := make([]Item, len(as))
	for i, a := range as {
		dims := make(map[string]float64, len(a.DimensionScores))
		for d, v := range a.DimensionScores {
			dims[d.String()] = v
		}
		atts := make(map[string]float64, len(a.AttributeScores))
		for at, v := range a.AttributeScores {
			atts[at.String()] = v
		}
		items[i] = Item{
			ID:         a.ID,
			Name:       a.Name,
			Score:      a.Score,
			Dimensions: dims,
			Attributes: atts,
			Raw:        a.Raw,
			Normalized: a.Normalized,
		}
	}
	return items
}

// InfluencerItem is the wire form of one detected opinion leader.
type InfluencerItem struct {
	ID              int     `json:"id"`
	Name            string  `json:"name"`
	Influence       float64 `json:"influence"`
	Score           float64 `json:"score"`
	Interactions    int     `json:"interactions"`
	RepliesReceived int     `json:"replies_received"`
}

// InfluencerItems converts influencers to their wire form.
func InfluencerItems(infs []quality.Influencer) []InfluencerItem {
	items := make([]InfluencerItem, len(infs))
	for i, inf := range infs {
		items[i] = InfluencerItem{
			ID:              inf.Record.ID,
			Name:            inf.Record.Name,
			Influence:       inf.InfluenceScore,
			Score:           inf.Assessment.Score,
			Interactions:    inf.Record.Interactions,
			RepliesReceived: inf.Record.RepliesReceived,
		}
	}
	return items
}

// SentimentItem is the wire form of one per-category indicator.
type SentimentItem struct {
	Category string  `json:"category"`
	Mean     float64 `json:"mean"`
	N        int     `json:"n"`
}

// SentimentItems converts (and deterministically orders) indicator maps.
func SentimentItems(ind map[string]sentiment.Indicator, categories []string) []SentimentItem {
	cats := categories
	if len(cats) == 0 {
		cats = make([]string, 0, len(ind))
		for cat := range ind {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
	}
	items := make([]SentimentItem, 0, len(cats))
	for _, cat := range cats {
		i, ok := ind[cat]
		if !ok {
			continue
		}
		items = append(items, SentimentItem{Category: cat, Mean: i.Mean, N: i.N})
	}
	return items
}

// TermItem is the wire form of one trending term.
type TermItem struct {
	Term  string  `json:"term"`
	Score float64 `json:"score"`
	Fg    int     `json:"fg"`
	Bg    int     `json:"bg"`
}

// TermItems converts buzz terms to their wire form.
func TermItems(terms []buzz.Term) []TermItem {
	items := make([]TermItem, len(terms))
	for i, t := range terms {
		items[i] = TermItem{Term: t.Word, Score: t.Score, Fg: t.FgCount, Bg: t.BgCount}
	}
	return items
}

// SearchItem is the wire form of one baseline search hit.
type SearchItem struct {
	SourceID int     `json:"source_id"`
	Score    float64 `json:"score"`
}

// SearchItems converts search results to their wire form.
func SearchItems(results []search.Result) []SearchItem {
	items := make([]SearchItem, len(results))
	for i, r := range results {
		items[i] = SearchItem{SourceID: r.SourceID, Score: r.Score}
	}
	return items
}

func handleSources(st Snapshot, v url.Values) (any, int, int, error) {
	q, err := BindQuery(v)
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := st.QuerySources(q)
	if err != nil {
		return nil, 0, 0, err
	}
	return AssessmentItems(res.Items), res.Total, q.Offset, nil
}

func handleContributors(st Snapshot, v url.Values) (any, int, int, error) {
	q, err := BindQuery(v)
	if err != nil {
		return nil, 0, 0, err
	}
	res, err := st.QueryContributors(q)
	if err != nil {
		return nil, 0, 0, err
	}
	return AssessmentItems(res.Items), res.Total, q.Offset, nil
}

func handleInfluencers(st Snapshot, v url.Values) (any, int, int, error) {
	opts := quality.InfluencerOptions{Strategy: quality.Combined}
	switch strat := v.Get("strategy"); strat {
	case "", "combined":
	case "by-activity":
		opts.Strategy = quality.ByActivity
	case "by-relative":
		opts.Strategy = quality.ByRelative
	default:
		return nil, 0, 0, fmt.Errorf("unknown strategy %q", strat)
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return nil, 0, 0, err
	}
	if opts.MinInteractions, err = intParam(v, "min_interactions", 0); err != nil {
		return nil, 0, 0, err
	}
	// Rank unbounded and truncate here, so Total keeps its envelope
	// meaning: qualifying influencers before top-k selection.
	ranked := st.Influencers(opts)
	total := len(ranked)
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return InfluencerItems(ranked), total, 0, nil
}

func handleSentiment(st Snapshot, v url.Values) (any, int, int, error) {
	items := SentimentItems(st.SentimentByCategory(), multiParam(v, "category"))
	return items, len(items), 0, nil
}

func handleTrending(st Snapshot, v url.Values) (any, int, int, error) {
	category := v.Get("category")
	if category == "" {
		return nil, 0, 0, fmt.Errorf("missing required parameter category")
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return nil, 0, 0, err
	}
	items := TermItems(st.TrendingTerms(category, k))
	return items, len(items), 0, nil
}

func handleSearch(st Snapshot, v url.Values) (any, int, int, error) {
	query := v.Get("q")
	if query == "" {
		return nil, 0, 0, fmt.Errorf("missing required parameter q")
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return nil, 0, 0, err
	}
	items := SearchItems(st.Search(query, k))
	return items, len(items), 0, nil
}

// BindQuery binds a URL query string to a quality.Query:
//
//	category=place&category=pulse     scope (repeatable)
//	kind=blog&id=3&id=17              scope (sources: kind; both repeatable)
//	min_score=0.6                     overall-score predicate
//	min_dim.time=0.5                  per-dimension predicate
//	min_att.relevance=0.4             per-attribute predicate
//	min_measure.src.time.liveliness=0.3
//	spam_resistance=0.25              contributor spam-resistance predicate
//	sort=score | dim.<name> | att.<name>
//	k=10&offset=0&limit=20            top-k bound and pagination window
//	fields=scores | full              projection (default full)
//
// Exported so tests and other mounts can reuse the binding.
func BindQuery(v url.Values) (quality.Query, error) {
	var q quality.Query
	q.Categories = multiParam(v, "category")
	q.Kinds = multiParam(v, "kind")
	for _, s := range multiParam(v, "id") {
		id, err := strconv.Atoi(s)
		if err != nil {
			return q, fmt.Errorf("bad id %q", s)
		}
		q.IDs = append(q.IDs, id)
	}
	var err error
	if q.MinScore, err = floatParam(v, "min_score", 0); err != nil {
		return q, err
	}
	if q.MinSpamResistance, err = floatParam(v, "spam_resistance", 0); err != nil {
		return q, err
	}
	// Prefixed predicate families. Iterate sorted keys so error messages
	// are deterministic.
	keys := make([]string, 0, len(v))
	for key := range v {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		switch {
		case strings.HasPrefix(key, "min_dim."):
			name := strings.TrimPrefix(key, "min_dim.")
			d, ok := quality.ParseDimension(name)
			if !ok {
				return q, fmt.Errorf("unknown dimension %q", name)
			}
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinDimension == nil {
				q.MinDimension = map[quality.Dimension]float64{}
			}
			q.MinDimension[d] = val
		case strings.HasPrefix(key, "min_att."):
			name := strings.TrimPrefix(key, "min_att.")
			at, ok := quality.ParseAttribute(name)
			if !ok {
				return q, fmt.Errorf("unknown attribute %q", name)
			}
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinAttribute == nil {
				q.MinAttribute = map[quality.Attribute]float64{}
			}
			q.MinAttribute[at] = val
		case strings.HasPrefix(key, "min_measure."):
			id := strings.TrimPrefix(key, "min_measure.")
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinMeasure == nil {
				q.MinMeasure = map[string]float64{}
			}
			q.MinMeasure[id] = val
		}
	}
	switch srt := v.Get("sort"); {
	case srt == "" || srt == "score":
	case strings.HasPrefix(srt, "dim."):
		d, ok := quality.ParseDimension(strings.TrimPrefix(srt, "dim."))
		if !ok {
			return q, fmt.Errorf("unknown sort %q", srt)
		}
		q.Sort = quality.SortKey{By: quality.SortByDimension, Dimension: d}
	case strings.HasPrefix(srt, "att."):
		at, ok := quality.ParseAttribute(strings.TrimPrefix(srt, "att."))
		if !ok {
			return q, fmt.Errorf("unknown sort %q", srt)
		}
		q.Sort = quality.SortKey{By: quality.SortByAttribute, Attribute: at}
	default:
		return q, fmt.Errorf("unknown sort %q", srt)
	}
	if q.TopK, err = intParam(v, "k", 0); err != nil {
		return q, err
	}
	if q.Offset, err = intParam(v, "offset", 0); err != nil {
		return q, err
	}
	if q.Limit, err = intParam(v, "limit", 0); err != nil {
		return q, err
	}
	switch f := v.Get("fields"); f {
	case "", "full":
		q.Fields = quality.ProjectFull
	case "scores":
		q.Fields = quality.ProjectScores
	default:
		return q, fmt.Errorf("unknown fields %q (use full or scores)", f)
	}
	return q, nil
}

// multiParam collects a repeatable parameter, also splitting on commas.
func multiParam(v url.Values, key string) []string {
	var out []string
	for _, raw := range v[key] {
		for _, part := range strings.Split(raw, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func intParam(v url.Values, key string, def int) (int, error) {
	s := v.Get(key)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", key, s)
	}
	return n, nil
}

func floatParam(v url.Values, key string, def float64) (float64, error) {
	s := v.Get(key)
	if s == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", key, s)
	}
	return f, nil
}

// writeError answers a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
