// Package apiserve exposes quality assessments as a versioned,
// snapshot-consistent JSON HTTP API (DESIGN.md section 7) — the serving
// layer for observers who consume filtered, ranked slices of the corpus
// rather than whole assessment dumps:
//
//	GET /api/v1/sources?category=place&min_score=0.6&sort=dim.time&k=10
//	GET /api/v1/contributors?spam_resistance=0.3&k=25&fields=scores
//	GET /api/v1/sources?limit=20&cursor=<next_cursor of the previous page>
//	GET /api/v1/influencers?strategy=combined&k=10
//	GET /api/v1/sentiment            GET /api/v1/trending?category=place
//	GET /api/v1/search?q=hotel+milan
//	GET /api/v1/watch?since=3&min_score=0.6&k=10&wait=30s
//	GET /api/v1/stream?since=3&min_score=0.6&k=10        (Server-Sent Events)
//
// Filters are pushed down: the query string binds to a quality.Query and
// executes below the ranking inside the assessor (bounded top-k selection
// over the cached measure matrix), so the handler never materializes more
// assessments than one response page.
//
// Pagination is keyset-first: every windowed response carries an opaque
// "next_cursor" token (the (sort key, ID) position of the last row, see
// cursor.go) and echoing it as ?cursor= resumes the walk at single-page
// cost. ?offset= remains as a deprecated shim and is served from the same
// per-snapshot ranked spine the cursor path slices, so deep offset pages
// no longer re-select their prefix.
//
// Consistency model: every response is computed from ONE immutable
// assessment snapshot and carries its monotonic version both in the
// envelope ("snapshot") and in the X-Informer-Snapshot header, plus a
// strong content ETag honouring If-None-Match with 304 and a
// Last-Modified stamp derived from the snapshot tick timeline (the moment
// the served round was first observed), honouring If-Modified-Since.
// Envelopes are gzip-compressed when the client accepts it. A client
// walking pages echoes the first page's token (?snapshot=N); the server
// retains a small ring of recent snapshots and keeps serving the pinned
// round even while Advance publishes new ones, so a paginated walk never
// mixes two assessment rounds. A pin that has aged out of the ring
// answers 410 Gone — the client restarts the walk on the current round.
//
// Standing queries are served by the subscription registry
// (internal/subscribe, DESIGN.md section 9): each distinct canonical
// query is evaluated once per published round and its window delta fans
// out to every subscriber. Two transports consume it. /api/v1/watch is
// the long-poll: it diffs one query's ranked window between the round the
// observer last saw (?since=N) and the current one, answering only the
// rows that entered, left or moved — with old and new ranks — and while
// the rounds are equal it parks on the registry until the next round or
// the ?wait= deadline. /api/v1/stream is the SSE feed: one connection
// carries the same delta envelopes tick after tick, with Last-Event-ID
// resume and heartbeats (stream.go). Both answer 410 Gone for a
// since-token that aged out of the ring, and both deliver byte-identical
// delta envelopes for the same since-token walk.
package apiserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/deliver"
	"github.com/informing-observers/informer/internal/etag"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
	"github.com/informing-observers/informer/internal/subscribe"
)

// Snapshot is one immutable assessment round: everything a request needs,
// answered consistently. The informer facade adapts its internal snapshot
// type to this interface; implementations must be safe for concurrent use
// and must never mutate after publication.
type Snapshot interface {
	// Version is the round's monotonic snapshot token.
	Version() int64
	// ShardCount is the engine sharding the round was assessed under
	// (1 = the single-matrix engine). Cursor tokens are tagged with it;
	// a token minted under a different sharding answers 410 Gone.
	ShardCount() int
	QuerySources(q quality.Query) (*quality.QueryResult, error)
	QueryContributors(q quality.Query) (*quality.QueryResult, error)
	Influencers(opts quality.InfluencerOptions) []quality.Influencer
	// Stories answers the story-cluster listing (nil-safe: a corpus
	// without comment text serves an empty result, never an error). The
	// snapshot enriches each story with member names and quality scores,
	// which live on its side of the interface.
	Stories(q correlate.StoryQuery) *StoriesResult
	SentimentByCategory() map[string]sentiment.Indicator
	TrendingTerms(category string, k int) []buzz.Term
	Search(query string, k int) []search.Result
}

// Provider hands out the current snapshot; the facade's atomic snapshot
// pointer sits behind it.
type Provider interface {
	Snapshot() Snapshot
}

// ChangeNotifier is the optional delta-driven wake-up a Provider can
// offer: Changed returns a channel that is closed when a snapshot newer
// than the current one is published. The server's subscription registry
// pumps on it; providers offering neither a notifier nor their own
// registry are observed by one registry-wide poll loop instead (the
// historical per-request poll fallback is gone).
type ChangeNotifier interface {
	Changed() <-chan struct{}
}

// SubscriptionProvider is the optional richest wiring: a provider that
// owns a standing-query subscription registry — the informer facade feeds
// its registry synchronously from Advance — hands it to the server, so
// HTTP watchers and in-process Corpus.Subscribe consumers fan out of the
// same one-evaluation-per-tick groups, and the server needs no pump at
// all.
type SubscriptionProvider interface {
	Subscriptions() *subscribe.Registry
}

// retainedSnapshots bounds the pin ring: how many assessment rounds stay
// addressable by ?snapshot=N after newer rounds are published. Snapshots
// are immutable and share unchanged state copy-on-write, so retention is
// cheap; the bound exists only to cap worst-case memory on fast tickers.
const retainedSnapshots = 8

// retained is one ring slot: the round plus the wall-clock instant the
// server first observed it — the snapshot tick timeline Last-Modified is
// derived from.
type retained struct {
	snap Snapshot
	at   time.Time
}

// Server is the /api/v1 handler.
type Server struct {
	provider Provider
	subs     *subscribe.Registry
	ownSubs  bool // the server built (and must Close) the registry
	sinks    *deliver.Manager
	mux      *http.ServeMux

	// StreamHeartbeat is the SSE comment-frame cadence keeping idle
	// /api/v1/stream connections alive through proxies. Tune it before
	// serving; the default is defaultStreamHeartbeat.
	StreamHeartbeat time.Duration

	mu     sync.Mutex
	recent map[int64]retained
	order  []int64 // retained versions, oldest first (versions are monotonic)
}

// New builds the API server over a snapshot provider. Mount it at the host
// mux root (it routes full /api/v1/... paths). Providers implementing
// SubscriptionProvider share their registry with the server; otherwise the
// server builds its own, pumped by the provider's ChangeNotifier or — for
// bare providers — by one registry-wide poll loop. Call Close when
// discarding a server over a bare/notifier provider to stop that pump.
func New(p Provider) *Server {
	s := &Server{provider: p, recent: map[int64]retained{}, StreamHeartbeat: defaultStreamHeartbeat}
	if sp, ok := p.(SubscriptionProvider); ok {
		s.subs = sp.Subscriptions()
	} else {
		opts := subscribe.Options{PollInterval: registryPollInterval}
		if n, ok := p.(ChangeNotifier); ok {
			opts.Wake, opts.PollInterval = n.Changed, 0
		}
		s.subs = subscribe.New(func() subscribe.Snapshot { return p.Snapshot() }, opts)
		s.ownSubs = true
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/api/v1/sources", s.endpoint(handleSources))
	s.mux.HandleFunc("/api/v1/contributors", s.endpoint(handleContributors))
	s.mux.HandleFunc("/api/v1/influencers", s.endpoint(handleInfluencers))
	s.mux.HandleFunc("/api/v1/stories", s.endpoint(handleStories))
	s.mux.HandleFunc("/api/v1/sentiment", s.endpoint(handleSentiment))
	s.mux.HandleFunc("/api/v1/trending", s.endpoint(handleTrending))
	s.mux.HandleFunc("/api/v1/search", s.endpoint(handleSearch))
	s.mux.HandleFunc("/api/v1/watch", s.handleWatch)
	s.mux.HandleFunc("/api/v1/stream", s.handleStream)
	// Push-sink management exists only over providers that own a delivery
	// manager; everyone else keeps 404 semantics for the paths.
	if dp, ok := p.(SinkProvider); ok {
		if s.sinks = dp.Sinks(); s.sinks != nil {
			s.mux.HandleFunc("/api/v1/sinks", s.handleSinks)
			s.mux.HandleFunc("/api/v1/sinks/", s.handleSink)
		}
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close releases the server's background resources: the subscription
// registry and its pump, when the server owns them (a registry handed in
// by a SubscriptionProvider belongs to the provider and is left alone).
func (s *Server) Close() {
	if s.ownSubs {
		s.subs.Close()
	}
}

// page is one endpoint's answer from a pinned snapshot: the items, the
// pre-pagination total, the window's rank offset and — for windowed
// endpoints — the opaque resume cursor of the next page.
type page struct {
	items  any
	total  int
	offset int
	next   string
}

// handlerFunc answers one endpoint from a pinned snapshot, or a
// binding/validation error (answered as 400).
type handlerFunc func(st Snapshot, v url.Values) (page, error)

// gzipMinSize is the smallest envelope worth compressing: below it the
// gzip framing costs more than it saves.
const gzipMinSize = 512

// endpoint wraps a handler with the shared serving machinery: method
// check, snapshot resolution/pinning, envelope, conditional serving
// (ETag/If-None-Match and Last-Modified/If-Modified-Since) and gzip.
func (s *Server) endpoint(fn handlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		v := r.URL.Query()
		st, status, err := s.resolveSnapshot(v.Get("snapshot"))
		if err != nil {
			writeError(w, status, err.Error())
			return
		}
		pg, err := fn(st, v)
		if err != nil {
			status := http.StatusBadRequest
			var se *statusError
			if errors.As(err, &se) {
				status = se.status
			}
			writeError(w, status, err.Error())
			return
		}
		body, err := json.Marshal(NewEnvelope(st.Version(), pg.total, pg.offset, pg.next, pg.items))
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		gz := acceptsGzip(r) && len(body) >= gzipMinSize
		// The ETag is strong and representation-specific: the gzip variant
		// carries a distinct tag (nginx-style suffix), so a cache can
		// never serve compressed bytes against an identity validator.
		tag := `"` + etag.Hash(body)
		if gz {
			tag += "-gzip"
		}
		tag += `"`
		h := w.Header()
		h.Set("Content-Type", "application/json; charset=utf-8")
		h.Set("Vary", "Accept-Encoding")
		h.Set("ETag", tag)
		h.Set("X-Informer-Snapshot", strconv.FormatInt(st.Version(), 10))
		modTime, haveMod := s.modTime(st.Version())
		if haveMod {
			h.Set("Last-Modified", modTime.UTC().Format(http.TimeFormat))
		}
		// Conditional serving: If-None-Match wins when present (RFC 9110);
		// If-Modified-Since compares against the round's tick instant.
		if inm := r.Header.Get("If-None-Match"); inm != "" {
			if inm == tag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		} else if ims := r.Header.Get("If-Modified-Since"); ims != "" && haveMod {
			if t, err := http.ParseTime(ims); err == nil && !modTime.Truncate(time.Second).After(t) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		if gz {
			h.Set("Content-Encoding", "gzip")
			body = gzipBytes(body)
		}
		w.Write(body)
	}
}

// acceptsGzip reports whether the request allows a gzip response body: the
// coding is listed and not refused by a zero qvalue (RFC 9110 allows up to
// three decimals, so q=0, q=0.0 and q=0.000 all opt out).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) != "gzip" {
			continue
		}
		if !hasQ {
			return true
		}
		qs := strings.TrimPrefix(strings.TrimSpace(params), "q=")
		q, err := strconv.ParseFloat(qs, 64)
		return err != nil || q > 0 // malformed qvalues read as acceptance
	}
	return false
}

// gzipBytes compresses one response body.
func gzipBytes(body []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(body)
	zw.Close()
	return buf.Bytes()
}

// observe reads the provider's current snapshot and remembers it in the
// retention ring, so any version a client has ever seen in an envelope was
// retained at that moment.
func (s *Server) observe() Snapshot {
	cur := s.provider.Snapshot()
	s.remember(cur)
	return cur
}

// remember records a round in the retention ring (first observation wins,
// stamping the round's Last-Modified instant).
func (s *Server) remember(st Snapshot) {
	if st == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, seen := s.recent[st.Version()]; !seen {
		s.recent[st.Version()] = retained{snap: st, at: time.Now()}
		s.order = append(s.order, st.Version())
		for len(s.order) > retainedSnapshots {
			delete(s.recent, s.order[0])
			s.order = s.order[1:]
		}
	}
}

// retained looks a version up in the retention ring.
func (s *Server) retained(v int64) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.recent[v]
	return rt.snap, ok
}

// modTime returns the instant a version was first observed — the round's
// position on the snapshot tick timeline.
func (s *Server) modTime(v int64) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt, ok := s.recent[v]
	return rt.at, ok
}

// resolveSnapshot returns the snapshot a request is served from: the pinned
// round when ?snapshot=N names a retained version, the current round
// otherwise.
func (s *Server) resolveSnapshot(param string) (Snapshot, int, error) {
	cur := s.observe()
	if param == "" {
		return cur, 0, nil
	}
	want, err := strconv.ParseInt(param, 10, 64)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("bad snapshot token %q", param)
	}
	if want == cur.Version() {
		return cur, 0, nil
	}
	if pinned, ok := s.retained(want); ok {
		return pinned, 0, nil
	}
	return nil, http.StatusGone, fmt.Errorf("snapshot %d is no longer retained; restart from the current round", want)
}

// Envelope is the pagination wrapper of every /api/v1 response.
type Envelope struct {
	APIVersion string `json:"api_version"`
	// Snapshot is the assessment round every item in this response was
	// computed from; echo it as ?snapshot=N to pin a paginated walk.
	Snapshot int64 `json:"snapshot"`
	// Total counts the matches before top-k selection and pagination
	// (sources, contributors, influencers, sentiment). Trending and
	// search are generators bounded by k at the source, so there Total
	// equals Count.
	Total  int `json:"total"`
	Offset int `json:"offset"`
	Count  int `json:"count"`
	// NextCursor resumes the walk on the following page when echoed as
	// ?cursor= (keyset pagination: a resumed page costs one lean pass,
	// however deep the walk is). Empty when the walk is exhausted; only
	// the windowed endpoints (sources, contributors) ever set it. Pair it
	// with ?snapshot= to keep a walk on one assessment round.
	NextCursor string `json:"next_cursor,omitempty"`
	Items      any    `json:"items"`
}

// NewEnvelope wraps one response page. It is exported (with the item
// constructors below) so tests and in-process consumers can reproduce a
// response byte for byte.
func NewEnvelope(snapshot int64, total, offset int, nextCursor string, items any) Envelope {
	count := 0
	if items != nil {
		if v := reflect.ValueOf(items); v.Kind() == reflect.Slice {
			count = v.Len()
		}
	}
	return Envelope{APIVersion: "v1", Snapshot: snapshot, Total: total, Offset: offset, Count: count, NextCursor: nextCursor, Items: items}
}

// NextCursorOf renders a query result's resume cursor in its wire form —
// the next_cursor value of the page's envelope ("" when the walk is
// done). shards is the serving snapshot's shard count, stamped into the
// token so a resume against a re-sharded corpus fails closed.
func NextCursorOf(res *quality.QueryResult, shards int) string {
	if res.Next == nil {
		return ""
	}
	return EncodeCursor(*res.Next, shards)
}

// statusError carries a non-400 HTTP status through the handler return
// path (the endpoint wrapper answers 400 for plain binding errors).
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// checkCursorShards enforces the cursor token's shard tag against the
// serving snapshot: a walk resumed across a corpus re-sharding answers
// 410 Gone, mirroring the aged-out ?snapshot= pin. Called after BindQuery
// succeeded, so the token is known to decode.
func checkCursorShards(st Snapshot, v url.Values) error {
	tok := v.Get("cursor")
	if tok == "" {
		return nil
	}
	_, shards, err := DecodeCursor(tok)
	if err != nil {
		return err
	}
	if have := st.ShardCount(); shards != have {
		return &statusError{http.StatusGone, fmt.Sprintf("cursor was minted under %d shard(s) but the corpus now has %d; restart the walk", shards, have)}
	}
	return nil
}

// Item is the wire form of one Assessment. Raw and Normalized appear only
// under fields=full (the ProjectFull projection).
type Item struct {
	ID         int                `json:"id"`
	Name       string             `json:"name"`
	Score      float64            `json:"score"`
	Dimensions map[string]float64 `json:"dimensions"`
	Attributes map[string]float64 `json:"attributes"`
	Raw        map[string]float64 `json:"raw,omitempty"`
	Normalized map[string]float64 `json:"normalized,omitempty"`
}

// AssessmentItems converts assessments to their wire form.
func AssessmentItems(as []*quality.Assessment) []Item {
	items := make([]Item, len(as))
	for i, a := range as {
		dims := make(map[string]float64, len(a.DimensionScores))
		for d, v := range a.DimensionScores {
			dims[d.String()] = v
		}
		atts := make(map[string]float64, len(a.AttributeScores))
		for at, v := range a.AttributeScores {
			atts[at.String()] = v
		}
		items[i] = Item{
			ID:         a.ID,
			Name:       a.Name,
			Score:      a.Score,
			Dimensions: dims,
			Attributes: atts,
			Raw:        a.Raw,
			Normalized: a.Normalized,
		}
	}
	return items
}

// InfluencerItem is the wire form of one detected opinion leader.
type InfluencerItem struct {
	ID              int     `json:"id"`
	Name            string  `json:"name"`
	Influence       float64 `json:"influence"`
	Score           float64 `json:"score"`
	Interactions    int     `json:"interactions"`
	RepliesReceived int     `json:"replies_received"`
}

// InfluencerItems converts influencers to their wire form.
func InfluencerItems(infs []quality.Influencer) []InfluencerItem {
	items := make([]InfluencerItem, len(infs))
	for i, inf := range infs {
		items[i] = InfluencerItem{
			ID:              inf.Record.ID,
			Name:            inf.Record.Name,
			Influence:       inf.InfluenceScore,
			Score:           inf.Assessment.Score,
			Interactions:    inf.Record.Interactions,
			RepliesReceived: inf.Record.RepliesReceived,
		}
	}
	return items
}

// SentimentItem is the wire form of one per-category indicator.
type SentimentItem struct {
	Category string  `json:"category"`
	Mean     float64 `json:"mean"`
	N        int     `json:"n"`
}

// SentimentItems converts (and deterministically orders) indicator maps.
func SentimentItems(ind map[string]sentiment.Indicator, categories []string) []SentimentItem {
	cats := categories
	if len(cats) == 0 {
		cats = make([]string, 0, len(ind))
		for cat := range ind {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
	}
	items := make([]SentimentItem, 0, len(cats))
	for _, cat := range cats {
		i, ok := ind[cat]
		if !ok {
			continue
		}
		items = append(items, SentimentItem{Category: cat, Mean: i.Mean, N: i.N})
	}
	return items
}

// TermItem is the wire form of one trending term.
type TermItem struct {
	Term  string  `json:"term"`
	Score float64 `json:"score"`
	Fg    int     `json:"fg"`
	Bg    int     `json:"bg"`
}

// TermItems converts buzz terms to their wire form.
func TermItems(terms []buzz.Term) []TermItem {
	items := make([]TermItem, len(terms))
	for i, t := range terms {
		items[i] = TermItem{Term: t.Word, Score: t.Score, Fg: t.FgCount, Bg: t.BgCount}
	}
	return items
}

// SearchItem is the wire form of one baseline search hit.
type SearchItem struct {
	SourceID int     `json:"source_id"`
	Score    float64 `json:"score"`
}

// SearchItems converts search results to their wire form.
func SearchItems(results []search.Result) []SearchItem {
	items := make([]SearchItem, len(results))
	for i, r := range results {
		items[i] = SearchItem{SourceID: r.SourceID, Score: r.Score}
	}
	return items
}

func handleSources(st Snapshot, v url.Values) (page, error) {
	q, err := BindQuery(v)
	if err != nil {
		return page{}, err
	}
	if err := checkCursorShards(st, v); err != nil {
		return page{}, err
	}
	res, err := st.QuerySources(q)
	if err != nil {
		return page{}, err
	}
	return page{AssessmentItems(res.Items), res.Total, res.Start, NextCursorOf(res, st.ShardCount())}, nil
}

func handleContributors(st Snapshot, v url.Values) (page, error) {
	q, err := BindQuery(v)
	if err != nil {
		return page{}, err
	}
	if err := checkCursorShards(st, v); err != nil {
		return page{}, err
	}
	res, err := st.QueryContributors(q)
	if err != nil {
		return page{}, err
	}
	return page{AssessmentItems(res.Items), res.Total, res.Start, NextCursorOf(res, st.ShardCount())}, nil
}

func handleInfluencers(st Snapshot, v url.Values) (page, error) {
	opts := quality.InfluencerOptions{Strategy: quality.Combined}
	switch strat := v.Get("strategy"); strat {
	case "", "combined":
	case "by-activity":
		opts.Strategy = quality.ByActivity
	case "by-relative":
		opts.Strategy = quality.ByRelative
	default:
		return page{}, fmt.Errorf("unknown strategy %q", strat)
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return page{}, err
	}
	if opts.MinInteractions, err = intParam(v, "min_interactions", 0); err != nil {
		return page{}, err
	}
	// Rank unbounded and truncate here, so Total keeps its envelope
	// meaning: qualifying influencers before top-k selection.
	ranked := st.Influencers(opts)
	total := len(ranked)
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return page{items: InfluencerItems(ranked), total: total}, nil
}

func handleSentiment(st Snapshot, v url.Values) (page, error) {
	items := SentimentItems(st.SentimentByCategory(), multiParam(v, "category"))
	return page{items: items, total: len(items)}, nil
}

func handleTrending(st Snapshot, v url.Values) (page, error) {
	category := v.Get("category")
	if category == "" {
		return page{}, fmt.Errorf("missing required parameter category")
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return page{}, err
	}
	items := TermItems(st.TrendingTerms(category, k))
	return page{items: items, total: len(items)}, nil
}

func handleSearch(st Snapshot, v url.Values) (page, error) {
	query := v.Get("q")
	if query == "" {
		return page{}, fmt.Errorf("missing required parameter q")
	}
	k, err := intParam(v, "k", 10)
	if err != nil {
		return page{}, err
	}
	items := SearchItems(st.Search(query, k))
	return page{items: items, total: len(items)}, nil
}

// BindQuery binds a URL query string to a quality.Query:
//
//	category=place&category=pulse     scope (repeatable)
//	kind=blog&id=3&id=17              scope (sources: kind; both repeatable)
//	min_score=0.6                     overall-score predicate
//	min_dim.time=0.5                  per-dimension predicate
//	min_att.relevance=0.4             per-attribute predicate
//	min_measure.src.time.liveliness=0.3
//	spam_resistance=0.25              contributor spam-resistance predicate
//	sort=score | dim.<name> | att.<name>
//	k=10&offset=0&limit=20            top-k bound and pagination window
//	cursor=<next_cursor>              keyset resume (excludes offset)
//	fields=scores | full              projection (default full)
//
// Exported so tests and other mounts can reuse the binding.
func BindQuery(v url.Values) (quality.Query, error) {
	var q quality.Query
	q.Categories = multiParam(v, "category")
	q.Kinds = multiParam(v, "kind")
	for _, s := range multiParam(v, "id") {
		id, err := strconv.Atoi(s)
		if err != nil {
			return q, fmt.Errorf("bad id %q", s)
		}
		q.IDs = append(q.IDs, id)
	}
	var err error
	if q.MinScore, err = floatParam(v, "min_score", 0); err != nil {
		return q, err
	}
	if q.MinSpamResistance, err = floatParam(v, "spam_resistance", 0); err != nil {
		return q, err
	}
	// Prefixed predicate families. Iterate sorted keys so error messages
	// are deterministic.
	keys := make([]string, 0, len(v))
	for key := range v {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		switch {
		case strings.HasPrefix(key, "min_dim."):
			name := strings.TrimPrefix(key, "min_dim.")
			d, ok := quality.ParseDimension(name)
			if !ok {
				return q, fmt.Errorf("unknown dimension %q", name)
			}
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinDimension == nil {
				q.MinDimension = map[quality.Dimension]float64{}
			}
			q.MinDimension[d] = val
		case strings.HasPrefix(key, "min_att."):
			name := strings.TrimPrefix(key, "min_att.")
			at, ok := quality.ParseAttribute(name)
			if !ok {
				return q, fmt.Errorf("unknown attribute %q", name)
			}
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinAttribute == nil {
				q.MinAttribute = map[quality.Attribute]float64{}
			}
			q.MinAttribute[at] = val
		case strings.HasPrefix(key, "min_measure."):
			id := strings.TrimPrefix(key, "min_measure.")
			val, err := strconv.ParseFloat(v.Get(key), 64)
			if err != nil {
				return q, fmt.Errorf("bad %s: %q", key, v.Get(key))
			}
			if q.MinMeasure == nil {
				q.MinMeasure = map[string]float64{}
			}
			q.MinMeasure[id] = val
		}
	}
	switch srt := v.Get("sort"); {
	case srt == "" || srt == "score":
	case strings.HasPrefix(srt, "dim."):
		d, ok := quality.ParseDimension(strings.TrimPrefix(srt, "dim."))
		if !ok {
			return q, fmt.Errorf("unknown sort %q", srt)
		}
		q.Sort = quality.SortKey{By: quality.SortByDimension, Dimension: d}
	case strings.HasPrefix(srt, "att."):
		at, ok := quality.ParseAttribute(strings.TrimPrefix(srt, "att."))
		if !ok {
			return q, fmt.Errorf("unknown sort %q", srt)
		}
		q.Sort = quality.SortKey{By: quality.SortByAttribute, Attribute: at}
	default:
		return q, fmt.Errorf("unknown sort %q", srt)
	}
	if q.TopK, err = intParam(v, "k", 0); err != nil {
		return q, err
	}
	if q.Offset, err = intParam(v, "offset", 0); err != nil {
		return q, err
	}
	if q.Limit, err = intParam(v, "limit", 0); err != nil {
		return q, err
	}
	if tok := v.Get("cursor"); tok != "" {
		if q.Offset != 0 {
			return q, fmt.Errorf("cursor and offset are mutually exclusive")
		}
		// The shard tag is validated against the serving snapshot by
		// checkCursorShards (410 semantics); the bound query itself is
		// shard-agnostic.
		c, _, err := DecodeCursor(tok)
		if err != nil {
			return q, err
		}
		q.After = &c
	}
	switch f := v.Get("fields"); f {
	case "", "full":
		q.Fields = quality.ProjectFull
	case "scores":
		q.Fields = quality.ProjectScores
	default:
		return q, fmt.Errorf("unknown fields %q (use full or scores)", f)
	}
	return q, nil
}

// EncodeQuery renders a bound query back into its canonical URL form: the
// exact inverse of BindQuery up to set order and number spelling. For any
// query BindQuery accepts, BindQuery(EncodeQuery(q)) succeeds and yields a
// query with the same CanonicalKey — the round-trip FuzzBindQuery pins.
// Default values are omitted, sets are sorted and deduplicated, and floats
// are spelled in their shortest exact form.
func EncodeQuery(q quality.Query) url.Values {
	v := url.Values{}
	for _, id := range sortedDedupInts(q.IDs) {
		v.Add("id", strconv.Itoa(id))
	}
	for _, cat := range sortedDedupStrings(q.Categories) {
		v.Add("category", cat)
	}
	for _, kind := range sortedDedupStrings(q.Kinds) {
		v.Add("kind", kind)
	}
	if q.MinScore != 0 {
		v.Set("min_score", formatFloat(q.MinScore))
	}
	if q.MinSpamResistance != 0 {
		v.Set("spam_resistance", formatFloat(q.MinSpamResistance))
	}
	for _, d := range sortedDimensions(q.MinDimension) {
		v.Set("min_dim."+d.String(), formatFloat(q.MinDimension[d]))
	}
	for _, at := range sortedAttributes(q.MinAttribute) {
		v.Set("min_att."+at.String(), formatFloat(q.MinAttribute[at]))
	}
	for _, id := range sortedDedupStrings(measureIDs(q.MinMeasure)) {
		v.Set("min_measure."+id, formatFloat(q.MinMeasure[id]))
	}
	switch q.Sort.By {
	case quality.SortByDimension:
		v.Set("sort", "dim."+q.Sort.Dimension.String())
	case quality.SortByAttribute:
		v.Set("sort", "att."+q.Sort.Attribute.String())
	}
	if q.TopK != 0 {
		v.Set("k", strconv.Itoa(q.TopK))
	}
	if q.Offset != 0 {
		v.Set("offset", strconv.Itoa(q.Offset))
	}
	if q.Limit != 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.After != nil {
		// A re-encoded query carries no snapshot context; tag for the
		// unsharded engine (the tag does not affect CanonicalKey, which is
		// what the FuzzBindQuery round-trip pins).
		v.Set("cursor", EncodeCursor(*q.After, 1))
	}
	if q.Fields == quality.ProjectScores {
		v.Set("fields", "scores")
	}
	return v
}

// formatFloat spells a float in the shortest form that parses back to the
// identical bit pattern.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func sortedDedupInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int(nil), xs...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func sortedDedupStrings(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	out := append([]string(nil), xs...)
	sort.Strings(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

func sortedDimensions(m map[quality.Dimension]float64) []quality.Dimension {
	out := make([]quality.Dimension, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAttributes(m map[quality.Attribute]float64) []quality.Attribute {
	out := make([]quality.Attribute, 0, len(m))
	for at := range m {
		out = append(out, at)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func measureIDs(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// multiParam collects a repeatable parameter, also splitting on commas.
func multiParam(v url.Values, key string) []string {
	var out []string
	for _, raw := range v[key] {
		for _, part := range strings.Split(raw, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func intParam(v url.Values, key string, def int) (int, error) {
	s := v.Get(key)
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", key, s)
	}
	return n, nil
}

func floatParam(v url.Values, key string, def float64) (float64, error) {
	s := v.Get(key)
	if s == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", key, s)
	}
	return f, nil
}

// writeError answers a JSON error body.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Watch long-poll tuning. The default wait keeps one request per ~25s per
// idle watcher; the cap bounds how long a handler can pin its goroutine;
// the registry poll interval is the subscription pump's cadence over bare
// providers (one registry-wide loop — handlers themselves never poll).
const (
	defaultWatchWait     = 25 * time.Second
	maxWatchWait         = 55 * time.Second
	registryPollInterval = 50 * time.Millisecond
)

// WatchEnvelope is the /api/v1/watch response: the rank movement of one
// standing query's window between the observer's last-seen assessment
// round ("since") and the answered one ("snapshot"). An empty Changes
// with snapshot == since means the wait deadline passed without a newer
// round — re-issue the request to keep watching.
type WatchEnvelope struct {
	APIVersion string       `json:"api_version"`
	Since      int64        `json:"since"`
	Snapshot   int64        `json:"snapshot"`
	Count      int          `json:"count"`
	Changes    []ChangeItem `json:"changes"`
}

// NewWatchEnvelope wraps one watch delta; exported so tests can reproduce
// a response byte for byte.
func NewWatchEnvelope(since, snapshot int64, changes []ChangeItem) WatchEnvelope {
	if changes == nil {
		changes = []ChangeItem{}
	}
	return WatchEnvelope{APIVersion: "v1", Since: since, Snapshot: snapshot, Count: len(changes), Changes: changes}
}

// ChangeItem is the wire form of one window movement: a row that entered,
// left, or moved within the watched window. Ranks are 1-based window
// positions; a zero (omitted) rank means the row was not in that round's
// window.
type ChangeItem struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	Event   string  `json:"event"` // "entered" | "left" | "moved"
	OldRank int     `json:"old_rank,omitempty"`
	NewRank int     `json:"new_rank,omitempty"`
	Score   float64 `json:"score"`
}

// ChangeItems converts window changes to their wire form.
func ChangeItems(changes []quality.WindowChange) []ChangeItem {
	items := make([]ChangeItem, len(changes))
	for i, c := range changes {
		items[i] = ChangeItem{
			ID:      c.ID,
			Name:    c.Name,
			Event:   c.Event(),
			OldRank: c.OldRank,
			NewRank: c.NewRank,
			Score:   c.Score,
		}
	}
	return items
}

// BindFilter binds the delta-filter parameters shared by every
// standing-query consumer (watch, stream and push sinks):
//
//	changes=entered           only rows entering the window
//	min_rank_jump=3           moved rows must jump at least 3 positions
//	min_score_delta=0.05      moved rows must change score by at least 0.05
//
// Entries and departures always pass the numeric thresholds; see
// subscribe.Filter. The zero filter passes everything.
func BindFilter(v url.Values) (subscribe.Filter, error) {
	var f subscribe.Filter
	switch ch := v.Get("changes"); ch {
	case "", "all":
	case "entered":
		f.EnteredOnly = true
	default:
		return f, fmt.Errorf("unknown changes %q (use entered or all)", ch)
	}
	var err error
	jump, err := intParam(v, "min_rank_jump", 0)
	if err != nil {
		return f, err
	}
	if jump < 0 {
		return f, fmt.Errorf("bad min_rank_jump: must not be negative")
	}
	f.MinRankJump = jump
	delta, err := floatParam(v, "min_score_delta", 0)
	if err != nil {
		return f, err
	}
	if delta < 0 {
		return f, fmt.Errorf("bad min_score_delta: must not be negative")
	}
	f.MinScoreDelta = delta
	return f, nil
}

// bindWatchQuery parses the shared validation of the standing-query
// transports: the since token (required unless optional), the wait bound,
// the query itself (bound exactly like /api/v1/sources; pagination
// positions are rejected — bound standing windows with k= or limit=) and
// the optional delta filter.
func bindWatchQuery(v url.Values, sinceRequired bool) (since int64, wait time.Duration, q quality.Query, f subscribe.Filter, err error) {
	sinceStr := v.Get("since")
	if sinceStr == "" {
		if sinceRequired {
			return 0, 0, q, f, fmt.Errorf("missing required parameter since (the last snapshot consumed)")
		}
	} else {
		if since, err = strconv.ParseInt(sinceStr, 10, 64); err != nil {
			return 0, 0, q, f, fmt.Errorf("bad since %q", sinceStr)
		}
	}
	wait = defaultWatchWait
	if ws := v.Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil {
			return 0, 0, q, f, fmt.Errorf("bad wait %q", ws)
		}
		if d < 0 {
			d = 0
		}
		if d > maxWatchWait {
			d = maxWatchWait
		}
		wait = d
	}
	if q, err = BindQuery(v); err != nil {
		return 0, 0, q, f, err
	}
	if q.After != nil || q.Offset != 0 {
		return 0, 0, q, f, fmt.Errorf("standing windows do not paginate; bound them with k or limit")
	}
	if f, err = BindFilter(v); err != nil {
		return 0, 0, q, f, err
	}
	return since, wait, q, f, nil
}

// handleWatch serves GET /api/v1/watch?since=N[&wait=30s]&<query...>: the
// long-poll transport of the standing-query subsystem. since names the
// last assessment round the observer has consumed. An observer behind the
// current round is answered immediately with the entered/left/moved rows
// between the retained since-round's window and the current one (410 Gone
// when since aged out of the ring — re-sync from a full read). An
// up-to-date observer parks as a registry subscriber: the next tick's
// delta — evaluated once per distinct query, however many watchers share
// it — answers the poll, or the wait deadline answers an empty delta.
// With a delta filter bound, ticks whose filtered delta is empty keep the
// poll parked (the eventual answer's since reflects the rounds consumed).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	since, wait, q, filter, err := bindWatchQuery(r.URL.Query(), true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A parked long-poll outlives the server's write timeout by design;
	// push the connection's write deadline past the wait bound instead
	// (no-op on writers without deadline support).
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(wait + 10*time.Second))
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		cur := s.observe()
		if cur.Version() < since {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("snapshot %d has not been published (current is %d)", since, cur.Version()))
			return
		}
		if cur.Version() > since {
			env, status, err := s.catchUp(since, cur, q, filter)
			if err != nil {
				writeError(w, status, err.Error())
				return
			}
			writeWatch(w, r, env)
			return
		}
		// Up to date: park on the shared subscription. Subscribe syncs the
		// registry to the provider's current round first, so the baseline
		// can never trail what we just observed.
		sub, err := s.subs.SubscribeWith(q, filter)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if sub.Since() != since {
			// A tick landed between observe and Subscribe: serve the gap
			// from the ring (the since round was registered just above).
			sub.Close()
			continue
		}
		select {
		case ev, ok := <-sub.Events():
			sub.Close()
			if !ok {
				continue // dropped before delivery; re-resolve via the ring
			}
			if snap, isAPI := ev.Snap.(Snapshot); isAPI {
				s.remember(snap) // keep event-delivered rounds addressable for catch-up
			}
			if !filter.Zero() && len(ev.Changes) == 0 {
				// Nothing passed the filter this tick: keep the poll
				// parked on the advanced token instead of answering an
				// empty delta.
				since = ev.Snapshot
				continue
			}
			writeWatch(w, r, NewWatchEnvelope(ev.Since, ev.Snapshot, ChangeItems(ev.Changes)))
			return
		case <-deadline.C:
			sub.Close()
			// Deadline with no newer round: empty delta, same token.
			writeWatch(w, r, NewWatchEnvelope(since, since, nil))
			return
		case <-r.Context().Done():
			sub.Close()
			return
		}
	}
}

// catchUp answers the delta between a retained past round and the current
// one — the shared re-sync path of both standing-query transports, so
// watch and stream agree on 410 semantics by construction. The delta
// filter applies to the spanning diff exactly as it would to the per-tick
// events it replaces.
func (s *Server) catchUp(since int64, cur Snapshot, q quality.Query, f subscribe.Filter) (WatchEnvelope, int, error) {
	old, ok := s.retained(since)
	if !ok {
		return WatchEnvelope{}, http.StatusGone, fmt.Errorf("snapshot %d is no longer retained; re-sync from the current round", since)
	}
	oldRes, err := old.QuerySources(q)
	if err != nil {
		return WatchEnvelope{}, http.StatusBadRequest, err
	}
	newRes, err := cur.QuerySources(q)
	if err != nil {
		return WatchEnvelope{}, http.StatusBadRequest, err
	}
	changes := f.Apply(quality.DiffWindows(oldRes.Items, newRes.Items), oldRes.Items)
	return NewWatchEnvelope(since, cur.Version(), ChangeItems(changes)), 0, nil
}

// writeWatch answers one watch envelope (gzip-compressed when the client
// accepts it and the delta is large enough to benefit).
func writeWatch(w http.ResponseWriter, r *http.Request, env WatchEnvelope) {
	body, err := json.Marshal(env)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Vary", "Accept-Encoding")
	h.Set("X-Informer-Snapshot", strconv.FormatInt(env.Snapshot, 10))
	if acceptsGzip(r) && len(body) >= gzipMinSize {
		h.Set("Content-Encoding", "gzip")
		body = gzipBytes(body)
	}
	w.Write(body)
}
