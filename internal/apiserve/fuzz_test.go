package apiserve

// Native Go fuzz targets hardening the two parsing surfaces a remote
// client controls: the query-string binding and the opaque cursor token.
// CI runs each for ~10s (-fuzz) on top of the checked-in seed corpus
// (testdata/fuzz/...), and the seeds run as plain unit cases in every
// ordinary `go test` invocation, so the harness cannot rot.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"net/url"
	"strings"
	"testing"

	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/quality"
)

// FuzzBindQuery pins two properties for arbitrary query strings: binding
// never panics, and every successfully bound query survives the
// bind → canonicalize → re-bind round-trip — EncodeQuery emits a canonical
// form that BindQuery accepts and that canonicalizes to the same key, so
// the per-snapshot cache can never split or alias a query by spelling.
func FuzzBindQuery(f *testing.F) {
	f.Add("min_score=0.55&k=10")
	f.Add("category=place,pulse&kind=blog&sort=dim.time&fields=scores&limit=7")
	f.Add("id=5&id=3&id=5&min_dim.time=0.5&min_att.relevance=0.4&offset=3&limit=4")
	f.Add("min_measure.src.time.liveliness=0.25&spam_resistance=0.3&sort=att.traffic")
	f.Add("cursor=" + EncodeCursor(quality.Cursor{Key: 0.731, ID: 42, Pos: 11}, 1) + "&limit=5&k=20")
	f.Add("cursor=" + EncodeCursor(quality.Cursor{Key: 0.5, ID: 7, Pos: 3}, 16) + "&limit=5")
	f.Add("cursor=AAAA&limit=5")
	f.Add("min_score=NaN&k=-3&offset=-1")
	f.Add("min_score=0x1p-2&min_dim.time=Inf")
	f.Add("%zz=&&&=;;;")
	f.Add("sort=dim.&min_dim.=1&min_measure.=0.1")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := BindQuery(v)
		if err != nil {
			return // cleanly rejected input
		}
		enc := EncodeQuery(q)
		q2, err := BindQuery(enc)
		if err != nil {
			t.Fatalf("canonical form of %q failed to re-bind: %v (encoded %q)", raw, err, enc.Encode())
		}
		if k1, k2 := q.CanonicalKey(), q2.CanonicalKey(); k1 != k2 {
			t.Fatalf("round-trip changed the canonical key for %q:\n first  %s\n second %s", raw, k1, k2)
		}
	})
}

// FuzzCursor pins the v2 cursor token contract for arbitrary strings:
// decode never panics, rejections are clean errors (including v1 tokens
// from before the shard tag), and every accepted token is the canonical
// encoding of an in-domain (cursor, shard count) pair — decode → encode
// is the identity on the accepted set, with the shard tag round-tripping
// exactly.
func FuzzCursor(f *testing.F) {
	f.Add(EncodeCursor(quality.Cursor{}, 1))
	f.Add(EncodeCursor(quality.Cursor{Key: 0.7313, ID: 42, Pos: 11}, 1))
	f.Add(EncodeCursor(quality.Cursor{Key: 0.7313, ID: 42, Pos: 11}, 2))
	f.Add(EncodeCursor(quality.Cursor{Key: -0.25, ID: 3, Pos: 0}, 7))
	f.Add(EncodeCursor(quality.Cursor{Key: math.Inf(-1), ID: 1 << 40, Pos: 999999}, 16))
	f.Add("")
	f.Add("not-a-cursor")
	f.Add(strings.Repeat("A", 200))
	f.Add("AQAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA") // v1-length token: stale layout
	f.Add(v1Token(quality.Cursor{Key: 0.5, ID: 9, Pos: 2}))
	f.Fuzz(func(t *testing.T, s string) {
		c, shards, err := DecodeCursor(s)
		if err != nil {
			return // cleanly rejected token
		}
		if math.IsNaN(c.Key) || c.ID < 0 || c.Pos < 0 || shards < 1 {
			t.Fatalf("accepted cursor out of domain: %+v shards=%d (from %q)", c, shards, s)
		}
		if s2 := EncodeCursor(c, shards); s2 != s {
			t.Fatalf("accepted token is not canonical: %q decodes to %+v shards=%d which encodes to %q", s, c, shards, s2)
		}
	})
}

// v1Token renders a cursor in the retired version-1 layout (no shard
// tag) with a valid checksum — the exact bytes an old client might still
// hold. DecodeCursor must reject it as an unknown version.
func v1Token(c quality.Cursor) string {
	buf := make([]byte, 1+8+8+8+4)
	buf[0] = 1
	binary.BigEndian.PutUint64(buf[1:], math.Float64bits(c.Key))
	binary.BigEndian.PutUint64(buf[9:], uint64(c.ID))
	binary.BigEndian.PutUint64(buf[17:], uint64(c.Pos))
	h := fnv.New32a()
	h.Write(buf[:25])
	binary.BigEndian.PutUint32(buf[25:], h.Sum32())
	return cursorEncoding.EncodeToString(buf)
}

// TestCursorV1Rejected pins the retirement of the untagged v1 layout: a
// well-formed, correctly checksummed v1 token is refused outright (clients
// restart their walks), never misparsed into a v2 cursor.
func TestCursorV1Rejected(t *testing.T) {
	tok := v1Token(quality.Cursor{Key: 0.731, ID: 42, Pos: 11})
	if _, _, err := DecodeCursor(tok); err == nil {
		t.Fatalf("v1 token %q was accepted", tok)
	}
}

// FuzzBindStories pins the stories binding for arbitrary query strings:
// it never panics, and every accepted query is in-domain — a positive
// page size, a min_sources of at least 2, and a cursor (when present)
// whose decoded form re-encodes to the exact token that was accepted.
func FuzzBindStories(f *testing.F) {
	f.Add("k=10&min_sources=2")
	f.Add("k=3")
	f.Add("cursor=" + EncodeStoryCursor(correlate.StoryCursor{LatestNano: 1_600_000_000_000_000_000, ID: 42}) + "&k=5")
	f.Add("cursor=" + EncodeStoryCursor(correlate.StoryCursor{LatestNano: -7, ID: 0}))
	f.Add("k=0")
	f.Add("k=-3&min_sources=1")
	f.Add("min_sources=999&k=2")
	f.Add("cursor=AAAA")
	f.Add("%zz=&&&=;;;")
	f.Fuzz(func(t *testing.T, raw string) {
		v, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := BindStoryQuery(v)
		if err != nil {
			return // cleanly rejected input
		}
		if q.Limit <= 0 || q.MinSources < 2 {
			t.Fatalf("accepted out-of-domain stories query %+v from %q", q, raw)
		}
		if q.After != nil {
			if tok := EncodeStoryCursor(*q.After); tok != v.Get("cursor") {
				t.Fatalf("accepted cursor %q is not canonical (re-encodes to %q)", v.Get("cursor"), tok)
			}
		}
	})
}

// FuzzStoryCursor pins the story token contract for arbitrary strings:
// decode never panics, rejections are clean errors — including every
// assessment-cursor token, whose layout length differs — and decode →
// encode is the identity on the accepted set.
func FuzzStoryCursor(f *testing.F) {
	f.Add(EncodeStoryCursor(correlate.StoryCursor{}))
	f.Add(EncodeStoryCursor(correlate.StoryCursor{LatestNano: 1_600_000_000_000_000_000, ID: 42}))
	f.Add(EncodeStoryCursor(correlate.StoryCursor{LatestNano: -1, ID: 7}))
	f.Add(EncodeCursor(quality.Cursor{Key: 0.7, ID: 3, Pos: 1}, 2)) // assessment token: wrong family
	f.Add("")
	f.Add("not-a-cursor")
	f.Add(strings.Repeat("A", 28))
	f.Fuzz(func(t *testing.T, s string) {
		c, err := DecodeStoryCursor(s)
		if err != nil {
			return // cleanly rejected token
		}
		if c.ID < 0 {
			t.Fatalf("accepted story cursor with negative ID from %q", s)
		}
		if s2 := EncodeStoryCursor(c); s2 != s {
			t.Fatalf("accepted token is not canonical: %q decodes to %+v which encodes to %q", s, c, s2)
		}
	})
}

// TestCursorFamiliesReject pins that the two token families can never be
// confused: an assessment cursor is refused by the story decoder and vice
// versa (distinct payload lengths make this structural, not incidental).
func TestCursorFamiliesReject(t *testing.T) {
	assess := EncodeCursor(quality.Cursor{Key: 0.731, ID: 42, Pos: 11}, 7)
	if _, err := DecodeStoryCursor(assess); err == nil {
		t.Fatal("story decoder accepted an assessment token")
	}
	story := EncodeStoryCursor(correlate.StoryCursor{LatestNano: 99, ID: 3})
	if _, _, err := DecodeCursor(story); err == nil {
		t.Fatal("assessment decoder accepted a story token")
	}
}
