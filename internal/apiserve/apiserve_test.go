package apiserve

// Unit contracts of the serving machinery against a stub snapshot source:
// query-string binding, envelopes, ETag/304, and the snapshot pin ring
// (stable pins, eviction to 410 Gone). End-to-end behaviour over a real
// corpus — including the byte-identity acceptance check and concurrent
// walks during Advance — is pinned by api_test.go at the repo root.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	"github.com/informing-observers/informer/internal/buzz"
	"github.com/informing-observers/informer/internal/correlate"
	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/search"
	"github.com/informing-observers/informer/internal/sentiment"
)

// stubSnapshot answers queries with canned data stamped with its version,
// so tests can tell which round served a response.
type stubSnapshot struct {
	version    int64
	lastQ      *quality.Query // records the bound query for binding assertions
	lastStoryQ correlate.StoryQuery
}

func (s *stubSnapshot) Version() int64 { return s.version }

func (s *stubSnapshot) ShardCount() int { return 1 }

func (s *stubSnapshot) QuerySources(q quality.Query) (*quality.QueryResult, error) {
	*s.lastQ = q
	as := &quality.Assessment{ID: int(s.version), Name: "src", Score: 0.5}
	start := q.Offset
	if start < 0 {
		start = 0
	}
	return &quality.QueryResult{Items: []*quality.Assessment{as}, Total: 7, Start: start}, nil
}

func (s *stubSnapshot) QueryContributors(q quality.Query) (*quality.QueryResult, error) {
	*s.lastQ = q
	return &quality.QueryResult{Items: []*quality.Assessment{}, Total: 0}, nil
}

func (s *stubSnapshot) Influencers(opts quality.InfluencerOptions) []quality.Influencer {
	return nil
}

func (s *stubSnapshot) Stories(q correlate.StoryQuery) *StoriesResult {
	s.lastStoryQ = q
	return &StoriesResult{
		Items: []StoryItem{{
			ID: 5, Size: 3, SourceID: 2, DiscussionID: 5, Title: "stub story",
			Members: []StoryMember{{SourceID: 2, Name: "a", Score: 0.9}, {SourceID: 4, Name: "b", Score: 0.4}},
		}},
		Total: 6,
		Next:  &correlate.StoryCursor{LatestNano: 1234, ID: 5},
	}
}

func (s *stubSnapshot) SentimentByCategory() map[string]sentiment.Indicator {
	return map[string]sentiment.Indicator{
		"place": {Category: "place", Mean: 0.25, N: 4},
		"pulse": {Category: "pulse", Mean: -0.5, N: 2},
	}
}

func (s *stubSnapshot) TrendingTerms(category string, k int) []buzz.Term {
	return []buzz.Term{{Word: "duomo", Score: 3, FgCount: 5, BgCount: 9}}
}

func (s *stubSnapshot) Search(query string, k int) []search.Result {
	return []search.Result{{SourceID: 3, Score: 1.5}}
}

// stubProvider serves a swappable current snapshot.
type stubProvider struct{ cur *stubSnapshot }

func (p *stubProvider) Snapshot() Snapshot { return p.cur }

func newStubServer(version int64) (*Server, *stubProvider, *quality.Query) {
	lastQ := &quality.Query{}
	p := &stubProvider{cur: &stubSnapshot{version: version, lastQ: lastQ}}
	return New(p), p, lastQ
}

func get(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) Envelope {
	t.Helper()
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope: %v\n%s", err, rec.Body.String())
	}
	return env
}

func TestBindQuery(t *testing.T) {
	v, err := url.ParseQuery("category=place,pulse&kind=blog&id=3&id=17&min_score=0.6" +
		"&min_dim.time=0.5&min_att.relevance=0.4&min_measure.src.time.liveliness=0.3" +
		"&spam_resistance=0.25&sort=dim.authority&k=10&offset=5&limit=20&fields=scores")
	if err != nil {
		t.Fatal(err)
	}
	q, err := BindQuery(v)
	if err != nil {
		t.Fatal(err)
	}
	want := quality.Query{
		IDs:               []int{3, 17},
		Categories:        []string{"place", "pulse"},
		Kinds:             []string{"blog"},
		MinScore:          0.6,
		MinDimension:      map[quality.Dimension]float64{quality.Time: 0.5},
		MinAttribute:      map[quality.Attribute]float64{quality.Relevance: 0.4},
		MinMeasure:        map[string]float64{"src.time.liveliness": 0.3},
		MinSpamResistance: 0.25,
		Sort:              quality.SortKey{By: quality.SortByDimension, Dimension: quality.Authority},
		TopK:              10,
		Offset:            5,
		Limit:             20,
		Fields:            quality.ProjectScores,
	}
	if !reflect.DeepEqual(q, want) {
		t.Fatalf("bound query:\n got  %+v\n want %+v", q, want)
	}
}

func TestBindQueryErrors(t *testing.T) {
	for _, bad := range []string{
		"min_score=abc",
		"min_dim.nope=0.5",
		"min_att.nope=0.5",
		"min_dim.time=x",
		"sort=nope",
		"sort=dim.nope",
		"fields=nope",
		"k=x",
		"id=x",
	} {
		v, err := url.ParseQuery(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := BindQuery(v); err == nil {
			t.Errorf("%q must fail to bind", bad)
		}
	}
}

func TestEndpointEnvelopeAndBinding(t *testing.T) {
	s, _, lastQ := newStubServer(3)
	rec := get(t, s, "/api/v1/sources?min_score=0.5&k=10&offset=2&limit=4", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	env := decodeEnvelope(t, rec)
	if env.APIVersion != "v1" || env.Snapshot != 3 || env.Total != 7 || env.Offset != 2 || env.Count != 1 {
		t.Fatalf("envelope %+v", env)
	}
	if lastQ.MinScore != 0.5 || lastQ.TopK != 10 || lastQ.Offset != 2 || lastQ.Limit != 4 {
		t.Fatalf("query did not reach the snapshot: %+v", lastQ)
	}
	if rec.Header().Get("X-Informer-Snapshot") != "3" {
		t.Fatal("missing snapshot header")
	}
	if rec.Header().Get("ETag") == "" {
		t.Fatal("missing ETag")
	}
}

func TestEndpointBadRequests(t *testing.T) {
	s, _, _ := newStubServer(1)
	for _, target := range []string{
		"/api/v1/sources?min_dim.nope=1",
		"/api/v1/trending",             // missing category
		"/api/v1/search",               // missing q
		"/api/v1/influencers?k=x",      // bad int
		"/api/v1/sources?snapshot=abc", // bad token
		"/api/v1/influencers?strategy=nope",
	} {
		if rec := get(t, s, target, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", target, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/api/v1/sources", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
}

// TestCursorShardMismatch410 pins the v2 token's fail-closed contract:
// a cursor minted under a different shard count than the serving
// snapshot's answers 410 Gone (restart the walk), on both windowed
// endpoints, while a matching tag keeps serving — and the page a
// matching walk mints is tagged with the snapshot's own shard count.
func TestCursorShardMismatch410(t *testing.T) {
	s, _, _ := newStubServer(1) // stubSnapshot serves ShardCount() == 1
	stale := EncodeCursor(quality.Cursor{Key: 0.5, ID: 1, Pos: 1}, 4)
	for _, target := range []string{
		"/api/v1/sources?cursor=" + stale,
		"/api/v1/contributors?cursor=" + stale,
	} {
		if rec := get(t, s, target, nil); rec.Code != http.StatusGone {
			t.Errorf("%s: status %d, want 410", target, rec.Code)
		}
	}
	ok := EncodeCursor(quality.Cursor{Key: 0.5, ID: 1, Pos: 1}, 1)
	rec := get(t, s, "/api/v1/sources?cursor="+ok, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("matching shard tag: status %d: %s", rec.Code, rec.Body.String())
	}
	if next := decodeEnvelope(t, rec).NextCursor; next != "" {
		if _, shards, err := DecodeCursor(next); err != nil || shards != 1 {
			t.Fatalf("minted next_cursor %q: shards=%d err=%v, want the snapshot's shard count 1", next, shards, err)
		}
	}
}

func TestETagConditionalGet(t *testing.T) {
	s, _, _ := newStubServer(1)
	first := get(t, s, "/api/v1/sentiment", nil)
	etag := first.Header().Get("ETag")
	again := get(t, s, "/api/v1/sentiment", map[string]string{"If-None-Match": etag})
	if again.Code != http.StatusNotModified {
		t.Fatalf("matching ETag: status %d, want 304", again.Code)
	}
	if again.Body.Len() != 0 {
		t.Fatal("304 must not carry a body")
	}
	miss := get(t, s, "/api/v1/sentiment", map[string]string{"If-None-Match": `"stale"`})
	if miss.Code != http.StatusOK || miss.Body.String() != first.Body.String() {
		t.Fatal("stale ETag must be answered with the full body")
	}
}

func TestSnapshotPinningAndEviction(t *testing.T) {
	s, p, lastQ := newStubServer(1)
	// Seed the ring with round 1, then advance the provider.
	if env := decodeEnvelope(t, get(t, s, "/api/v1/sources", nil)); env.Snapshot != 1 {
		t.Fatalf("snapshot %d, want 1", env.Snapshot)
	}
	p.cur = &stubSnapshot{version: 2, lastQ: lastQ}

	// Unpinned requests follow the current round; pinned ones stay put.
	if env := decodeEnvelope(t, get(t, s, "/api/v1/sources", nil)); env.Snapshot != 2 {
		t.Fatalf("current round: snapshot %d, want 2", env.Snapshot)
	}
	pinned := get(t, s, "/api/v1/sources?snapshot=1", nil)
	if env := decodeEnvelope(t, pinned); env.Snapshot != 1 {
		t.Fatalf("pinned round: snapshot %d, want 1", env.Snapshot)
	}

	// An unknown pin is Gone; after enough newer rounds, round 1 ages out.
	if rec := get(t, s, "/api/v1/sources?snapshot=99", nil); rec.Code != http.StatusGone {
		t.Fatalf("unknown pin: status %d, want 410", rec.Code)
	}
	for v := int64(3); v < 3+retainedSnapshots; v++ {
		p.cur = &stubSnapshot{version: v, lastQ: lastQ}
		get(t, s, "/api/v1/sources", nil)
	}
	if rec := get(t, s, "/api/v1/sources?snapshot=1", nil); rec.Code != http.StatusGone {
		t.Fatalf("evicted pin: status %d, want 410", rec.Code)
	}
}

func TestAllEndpointsServe(t *testing.T) {
	s, _, _ := newStubServer(1)
	for _, target := range []string{
		"/api/v1/sources",
		"/api/v1/contributors",
		"/api/v1/influencers",
		"/api/v1/sentiment",
		"/api/v1/trending?category=place",
		"/api/v1/search?q=duomo",
	} {
		rec := get(t, s, target, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", target, rec.Code, rec.Body.String())
			continue
		}
		env := decodeEnvelope(t, rec)
		if env.APIVersion != "v1" {
			t.Errorf("%s: bad api_version %q", target, env.APIVersion)
		}
	}
}

func TestSentimentCategoryFilterAndOrder(t *testing.T) {
	s, _, _ := newStubServer(1)
	env := decodeEnvelope(t, get(t, s, "/api/v1/sentiment", nil))
	items := env.Items.([]any)
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	if items[0].(map[string]any)["category"] != "place" {
		t.Fatal("sentiment items must be category-sorted")
	}
	env = decodeEnvelope(t, get(t, s, "/api/v1/sentiment?category=pulse", nil))
	if env.Count != 1 {
		t.Fatalf("filtered count = %d", env.Count)
	}
}

// TestStoriesEndpointBindingAndEnvelope pins the stories endpoint over
// the stub: parameter binding reaches the snapshot, the envelope carries
// the pre-pagination total, and the next cursor is the canonical token of
// the snapshot's resume position. Bad parameters answer 400.
func TestStoriesEndpointBindingAndEnvelope(t *testing.T) {
	s, p, _ := newStubServer(3)
	cur := EncodeStoryCursor(correlate.StoryCursor{LatestNano: 777, ID: 9})
	rec := get(t, s, "/api/v1/stories?k=4&min_sources=3&cursor="+cur, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	q := p.cur.lastStoryQ
	if q.Limit != 4 || q.MinSources != 3 || q.After == nil || q.After.LatestNano != 777 || q.After.ID != 9 {
		t.Fatalf("snapshot saw query %+v", q)
	}
	env := decodeEnvelope(t, rec)
	if env.Total != 6 {
		t.Errorf("total = %d, want the stub's 6", env.Total)
	}
	if want := EncodeStoryCursor(correlate.StoryCursor{LatestNano: 1234, ID: 5}); env.NextCursor != want {
		t.Errorf("next_cursor = %q, want %q", env.NextCursor, want)
	}
	items, ok := env.Items.([]any)
	if !ok || len(items) != 1 {
		t.Fatalf("items = %#v", env.Items)
	}
	story := items[0].(map[string]any)
	if story["title"] != "stub story" {
		t.Errorf("title = %v", story["title"])
	}
	if members := story["members"].([]any); len(members) != 2 {
		t.Errorf("members = %#v", members)
	}

	for _, bad := range []string{
		"/api/v1/stories?k=0",
		"/api/v1/stories?k=x",
		"/api/v1/stories?min_sources=1",
		"/api/v1/stories?cursor=not-a-token",
	} {
		if rec := get(t, s, bad, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}
