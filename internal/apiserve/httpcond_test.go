package apiserve

// Unit contracts of conditional and compressed serving: gzip negotiation
// with representation-specific ETags, and Last-Modified/If-Modified-Since
// derived from the snapshot tick timeline.

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestGzipNegotiation(t *testing.T) {
	// A window wide enough that the envelope clears gzipMinSize.
	ids := make([]int, 24)
	for i := range ids {
		ids[i] = i
	}
	p := newWatchProvider(watchWindow(1, ids...))
	s := New(p)
	defer s.Close()

	plain := get(t, s, "/api/v1/sources?k=30", nil)
	if plain.Code != http.StatusOK || plain.Header().Get("Content-Encoding") != "" {
		t.Fatalf("identity response: status %d, encoding %q", plain.Code, plain.Header().Get("Content-Encoding"))
	}
	if len(plain.Body.Bytes()) < gzipMinSize {
		t.Fatalf("test window too small to exercise gzip (%d bytes)", len(plain.Body.Bytes()))
	}
	if vary := plain.Header().Get("Vary"); vary != "Accept-Encoding" {
		t.Fatalf("Vary %q", vary)
	}

	gzRec := get(t, s, "/api/v1/sources?k=30", map[string]string{"Accept-Encoding": "gzip, deflate"})
	if gzRec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("gzip not negotiated: encoding %q", gzRec.Header().Get("Content-Encoding"))
	}
	if len(gzRec.Body.Bytes()) >= len(plain.Body.Bytes()) {
		t.Fatalf("gzip body (%d) not smaller than identity (%d)", len(gzRec.Body.Bytes()), len(plain.Body.Bytes()))
	}
	zr, err := gzip.NewReader(bytes.NewReader(gzRec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decoded, plain.Body.Bytes()) {
		t.Fatal("gzip representation decodes to different bytes than identity")
	}

	// Representation-specific strong ETags: the variants never share a
	// validator, and each honours If-None-Match for its own clients.
	plainTag, gzTag := plain.Header().Get("ETag"), gzRec.Header().Get("ETag")
	if plainTag == "" || gzTag == "" || plainTag == gzTag {
		t.Fatalf("variant tags %q / %q must differ", plainTag, gzTag)
	}
	if rec := get(t, s, "/api/v1/sources?k=30", map[string]string{"Accept-Encoding": "gzip", "If-None-Match": gzTag}); rec.Code != http.StatusNotModified {
		t.Fatalf("gzip INM: status %d, want 304", rec.Code)
	}
	if rec := get(t, s, "/api/v1/sources?k=30", map[string]string{"If-None-Match": plainTag}); rec.Code != http.StatusNotModified {
		t.Fatalf("identity INM: status %d, want 304", rec.Code)
	}
	// A validator from the other representation must not shortcut.
	if rec := get(t, s, "/api/v1/sources?k=30", map[string]string{"If-None-Match": gzTag}); rec.Code != http.StatusOK {
		t.Fatalf("cross-variant INM: status %d, want 200", rec.Code)
	}

	// Tiny responses are not worth the framing: identity even when the
	// client accepts gzip; an explicit q=0 opts out entirely.
	small := New(newWatchProvider(watchWindow(1, 1, 2)))
	defer small.Close()
	if rec := get(t, small, "/api/v1/sources?k=2", map[string]string{"Accept-Encoding": "gzip"}); rec.Header().Get("Content-Encoding") != "" {
		t.Fatal("sub-threshold body must not be compressed")
	}
	for _, refusal := range []string{"gzip;q=0", "gzip;q=0.0", "gzip; q=0.000", "identity"} {
		if rec := get(t, s, "/api/v1/sources?k=30", map[string]string{"Accept-Encoding": refusal}); rec.Header().Get("Content-Encoding") != "" {
			t.Fatalf("Accept-Encoding %q must not be compressed", refusal)
		}
	}
	if rec := get(t, s, "/api/v1/sources?k=30", map[string]string{"Accept-Encoding": "br, gzip;q=0.3"}); rec.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("a positive qvalue must still negotiate gzip")
	}
}

func TestLastModifiedConditional(t *testing.T) {
	p := newWatchProvider(watchWindow(1, 1, 2, 3))
	s := New(p)
	defer s.Close()

	rec := get(t, s, "/api/v1/sources?k=10", nil)
	lm := rec.Header().Get("Last-Modified")
	if lm == "" {
		t.Fatal("no Last-Modified header")
	}
	stamp, err := http.ParseTime(lm)
	if err != nil {
		t.Fatalf("bad Last-Modified %q: %v", lm, err)
	}
	if d := time.Since(stamp); d < 0 || d > time.Minute {
		t.Fatalf("Last-Modified %v is not the round's observation instant", stamp)
	}

	// Not modified since the stamp: 304. Stale validator: full response.
	if rec := get(t, s, "/api/v1/sources?k=10", map[string]string{"If-Modified-Since": lm}); rec.Code != http.StatusNotModified {
		t.Fatalf("IMS at stamp: status %d, want 304", rec.Code)
	}
	past := stamp.Add(-time.Hour).UTC().Format(http.TimeFormat)
	if rec := get(t, s, "/api/v1/sources?k=10", map[string]string{"If-Modified-Since": past}); rec.Code != http.StatusOK {
		t.Fatalf("stale IMS: status %d, want 200", rec.Code)
	}
	// If-None-Match wins over If-Modified-Since (RFC 9110): a mismatched
	// tag forces a full response however fresh the date is.
	if rec := get(t, s, "/api/v1/sources?k=10", map[string]string{"If-None-Match": `"nope"`, "If-Modified-Since": lm}); rec.Code != http.StatusOK {
		t.Fatalf("INM precedence: status %d, want 200", rec.Code)
	}
	// Garbage dates are ignored, not errors.
	if rec := get(t, s, "/api/v1/sources?k=10", map[string]string{"If-Modified-Since": "yesterday-ish"}); rec.Code != http.StatusOK {
		t.Fatalf("bad IMS: status %d, want 200", rec.Code)
	}

	// A new round moves the timeline: the old validator stops answering
	// 304 as soon as its round is succeeded by one observed later.
	p.swap(watchWindow(2, 3, 2, 1))
	rec2 := get(t, s, "/api/v1/sources?k=10", nil)
	if rec2.Header().Get("Last-Modified") == "" {
		t.Fatal("advanced round lost its Last-Modified")
	}
	if v := rec2.Header().Get("X-Informer-Snapshot"); v != "2" {
		t.Fatalf("advanced round version %s", v)
	}
}
