package apiserve

// Unit contracts of the cursor codec, the canonical query re-encoding and
// the /api/v1/watch long-poll against stub snapshots. End-to-end watch
// behaviour over a real corpus (deltas equal to the set difference of the
// two rounds' windows, concurrency under -race) is pinned at the repo
// root by api_test.go and watch_test.go.

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"
	"net/http"
	"net/url"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

func TestCursorRoundTrip(t *testing.T) {
	for _, c := range []quality.Cursor{
		{},
		{Key: 0.5, ID: 3, Pos: 10},
		{Key: -1.5e-300, ID: 0, Pos: 1},
		{Key: math.Inf(1), ID: 1 << 40, Pos: 123456789},
		{Key: math.Inf(-1), ID: math.MaxInt, Pos: math.MaxInt},
	} {
		for _, shards := range []int{1, 2, 7, 16} {
			tok := EncodeCursor(c, shards)
			got, gotShards, err := DecodeCursor(tok)
			if err != nil {
				t.Fatalf("%+v shards=%d: decode failed: %v", c, shards, err)
			}
			if got != c || gotShards != shards {
				t.Fatalf("round trip %+v shards=%d -> %q -> %+v shards=%d", c, shards, tok, got, gotShards)
			}
		}
	}
}

func TestCursorRejections(t *testing.T) {
	valid := EncodeCursor(quality.Cursor{Key: 0.5, ID: 3, Pos: 10}, 2)
	flip := byte('A')
	if valid[12] == 'A' {
		flip = 'B'
	}
	for name, tok := range map[string]string{
		"empty":          "",
		"not-base64":     "!!!!",
		"short":          valid[:len(valid)-4],
		"tampered":       valid[:12] + string(flip) + valid[13:],
		"wrong-version":  "Av" + valid[2:],
		"padding-abuse":  valid + "=",
		"trailing-bits":  valid[:len(valid)-1] + "/",
		"negative-id":    EncodeCursor(quality.Cursor{ID: -1}, 1),
		"negative-pos":   EncodeCursor(quality.Cursor{Pos: -1}, 1),
		"nan-key-forged": EncodeCursor(quality.Cursor{Key: math.NaN()}, 1),
		"zero-shards":    forgeShards(quality.Cursor{Key: 0.5, ID: 3, Pos: 10}, 0),
	} {
		if _, _, err := DecodeCursor(tok); err == nil {
			t.Errorf("%s (%q) must be rejected", name, tok)
		}
	}
}

// forgeShards re-stamps a token's shard tag (re-checksummed), producing
// a well-formed token with an arbitrary shard count — how a hostile
// client would forge one, and how tests mint out-of-domain tags.
func forgeShards(c quality.Cursor, shards uint32) string {
	buf, err := cursorEncoding.DecodeString(EncodeCursor(c, 1))
	if err != nil {
		panic(err)
	}
	binary.BigEndian.PutUint32(buf[1:], shards)
	h := fnv.New32a()
	h.Write(buf[:cursorSummed])
	binary.BigEndian.PutUint32(buf[cursorSummed:], h.Sum32())
	return cursorEncoding.EncodeToString(buf)
}

func TestEncodeQueryRoundTrip(t *testing.T) {
	raw := "category=pulse&category=place&id=17&id=3&id=17&kind=blog&min_score=0.6" +
		"&min_dim.time=0.5&min_att.relevance=0.4&min_measure.src.time.liveliness=0.3" +
		"&sort=dim.authority&k=10&limit=20&fields=scores"
	v, err := url.ParseQuery(raw)
	if err != nil {
		t.Fatal(err)
	}
	q, err := BindQuery(v)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := BindQuery(EncodeQuery(q))
	if err != nil {
		t.Fatalf("canonical form failed to re-bind: %v", err)
	}
	if q.CanonicalKey() != q2.CanonicalKey() {
		t.Fatalf("round trip changed the canonical key:\n %s\n %s", q.CanonicalKey(), q2.CanonicalKey())
	}
	// Sets are emitted sorted and deduplicated.
	enc := EncodeQuery(q)
	if !reflect.DeepEqual(enc["id"], []string{"3", "17"}) {
		t.Fatalf("ids not canonical: %v", enc["id"])
	}
	if !reflect.DeepEqual(enc["category"], []string{"place", "pulse"}) {
		t.Fatalf("categories not canonical: %v", enc["category"])
	}
}

// watchSnapshot is a Snapshot whose source window is fixed, so watch tests
// control both rounds exactly.
type watchSnapshot struct {
	stubSnapshot
	window []*quality.Assessment
}

func (s *watchSnapshot) QuerySources(q quality.Query) (*quality.QueryResult, error) {
	return &quality.QueryResult{Items: s.window, Total: len(s.window)}, nil
}

// watchProvider swaps snapshots under a lock and notifies watchers.
type watchProvider struct {
	mu  sync.Mutex
	cur Snapshot
	ch  chan struct{}
}

func newWatchProvider(cur Snapshot) *watchProvider {
	return &watchProvider{cur: cur, ch: make(chan struct{})}
}

func (p *watchProvider) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

func (p *watchProvider) Changed() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ch
}

func (p *watchProvider) swap(next Snapshot) {
	p.mu.Lock()
	old := p.ch
	p.cur, p.ch = next, make(chan struct{})
	p.mu.Unlock()
	close(old)
}

func watchWindow(version int64, ids ...int) *watchSnapshot {
	s := &watchSnapshot{stubSnapshot: stubSnapshot{version: version, lastQ: &quality.Query{}}}
	for i, id := range ids {
		s.window = append(s.window, &quality.Assessment{ID: id, Name: names(id), Score: 1 - float64(i)*0.1})
	}
	return s
}

func names(id int) string { return "src-" + string(rune('a'+id)) }

func decodeWatch(t *testing.T, body []byte) WatchEnvelope {
	t.Helper()
	var env WatchEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("bad watch envelope: %v\n%s", err, body)
	}
	return env
}

func TestWatchDiffAcrossRounds(t *testing.T) {
	old := watchWindow(1, 1, 2, 3, 4)
	p := newWatchProvider(old)
	s := New(p)
	defer s.Close()

	// Register round 1 in the ring, then publish round 2.
	get(t, s, "/api/v1/sources", nil)
	new_ := watchWindow(2, 1, 3, 5, 2)
	p.swap(new_)

	rec := get(t, s, "/api/v1/watch?since=1&k=10", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	env := decodeWatch(t, rec.Body.Bytes())
	if env.APIVersion != "v1" || env.Since != 1 || env.Snapshot != 2 {
		t.Fatalf("envelope %+v", env)
	}
	want := ChangeItems(quality.DiffWindows(old.window, new_.window))
	if env.Count != len(want) || !reflect.DeepEqual(env.Changes, want) {
		t.Fatalf("changes:\n got  %+v\n want %+v", env.Changes, want)
	}
	// Rows 2 (moved down), 3 (moved up), 5 (entered), 4 (left) moved; row
	// 1 held rank 1 and must be absent.
	events := map[int]string{}
	for _, c := range env.Changes {
		events[c.ID] = c.Event
	}
	if events[3] != "moved" || events[5] != "entered" || events[4] != "left" {
		t.Fatalf("events %+v", events)
	}
	if _, held := events[1]; held {
		t.Fatal("a row holding its rank must not appear in the delta")
	}
}

func TestWatchTimeoutAndErrors(t *testing.T) {
	p := newWatchProvider(watchWindow(5, 1, 2))
	s := New(p)
	defer s.Close()
	get(t, s, "/api/v1/sources", nil)

	// Same round within the wait: empty delta, same token.
	start := time.Now()
	rec := get(t, s, "/api/v1/watch?since=5&wait=40ms", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("timeout poll: status %d", rec.Code)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("long-poll returned after %v, before the wait deadline", d)
	}
	env := decodeWatch(t, rec.Body.Bytes())
	if env.Since != 5 || env.Snapshot != 5 || env.Count != 0 || len(env.Changes) != 0 {
		t.Fatalf("timeout envelope %+v", env)
	}

	for target, wantCode := range map[string]int{
		"/api/v1/watch":                       http.StatusBadRequest, // missing since
		"/api/v1/watch?since=abc":             http.StatusBadRequest,
		"/api/v1/watch?since=9":               http.StatusBadRequest, // not yet published
		"/api/v1/watch?since=5&wait=nope":     http.StatusBadRequest,
		"/api/v1/watch?since=5&offset=3":      http.StatusBadRequest, // watch does not paginate
		"/api/v1/watch?since=5&min_dim.z=0.5": http.StatusBadRequest,
		"/api/v1/watch?since=1":               http.StatusGone, // never retained
	} {
		if rec := get(t, s, target, nil); rec.Code != wantCode {
			t.Errorf("%s: status %d, want %d", target, rec.Code, wantCode)
		}
	}
	cursorTok := EncodeCursor(quality.Cursor{Key: 0.5, ID: 1, Pos: 1}, 1)
	if rec := get(t, s, "/api/v1/watch?since=5&cursor="+cursorTok, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("cursor on watch: status %d, want 400", rec.Code)
	}
}

func TestWatchWakesOnNotification(t *testing.T) {
	old := watchWindow(7, 1, 2, 3)
	p := newWatchProvider(old)
	s := New(p)
	defer s.Close()
	get(t, s, "/api/v1/sources", nil)

	go func() {
		time.Sleep(30 * time.Millisecond)
		p.swap(watchWindow(8, 3, 1, 2))
	}()
	start := time.Now()
	rec := get(t, s, "/api/v1/watch?since=7&wait=10s", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("watch did not wake on notification (took %v)", d)
	}
	env := decodeWatch(t, rec.Body.Bytes())
	if env.Snapshot != 8 || env.Count == 0 {
		t.Fatalf("woken envelope %+v", env)
	}
}

// bareProvider offers neither a ChangeNotifier nor a registry: the server
// observes it through the subscription registry's single poll loop (the
// historical per-request poll fallback is gone).
type bareProvider struct {
	mu  sync.Mutex
	cur Snapshot
}

func (p *bareProvider) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

func (p *bareProvider) set(next Snapshot) {
	p.mu.Lock()
	p.cur = next
	p.mu.Unlock()
}

func TestWatchBareProviderRegistryPoll(t *testing.T) {
	p := &bareProvider{cur: watchWindow(3, 1, 2)}
	s := New(p)
	defer s.Close()
	get(t, s, "/api/v1/sources", nil)

	go func() {
		time.Sleep(30 * time.Millisecond)
		p.set(watchWindow(4, 2, 1))
	}()
	rec := get(t, s, "/api/v1/watch?since=3&wait=10s&k=10", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	env := decodeWatch(t, rec.Body.Bytes())
	if env.Since != 3 || env.Snapshot != 4 || env.Count != 2 {
		t.Fatalf("polled envelope %+v", env)
	}
}
