// Package etag is the shared strong-ETag scheme of every HTTP surface:
// an FNV-1a content hash rendered as hex. internal/webserve (the
// crawlable world) and internal/apiserve (the /api/v1 quality API) must
// stamp identically-derived validators so conditional re-fetch behaves
// the same across the whole serving stack — sharing the implementation
// enforces that.
package etag

import "strconv"

// Hash renders the FNV-1a hash of a response body as hex.
func Hash(p []byte) string {
	var h uint64 = 14695981039346656037
	for _, b := range p {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return strconv.FormatUint(h, 16)
}
