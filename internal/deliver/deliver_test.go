package deliver

// Fault-injection contracts of the push-delivery engine: ordered
// at-least-once delivery under an injected fault mix (5xx bursts,
// per-attempt timeouts, connection drops), breaker trip/half-open/probe
// determinism, coalescing correctness (a spanning delta reconstructs the
// exact window that replaying the merged per-tick deltas would), eviction
// with fresh-sync re-registration, filter-skipped zero-byte ticks, flush
// semantics of Close, and zero goroutine leaks after shutdown.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/retry"
	"github.com/informing-observers/informer/internal/subscribe"
)

// --- harness: a registry fed deterministic ticks ---

type tickSnap struct {
	version int64
	items   []*quality.Assessment
}

func (s *tickSnap) Version() int64 { return s.version }

func (s *tickSnap) QuerySources(q quality.Query) (*quality.QueryResult, error) {
	return &quality.QueryResult{Items: s.items, Total: len(s.items)}, nil
}

// win builds a ranked window: ids in rank order, scores strictly
// descending so permutations are honest re-rankings.
func win(ids ...int) []*quality.Assessment {
	items := make([]*quality.Assessment, len(ids))
	for i, id := range ids {
		items[i] = &quality.Assessment{ID: id, Name: fmt.Sprintf("src-%d", id), Score: 1 - float64(i)*0.05}
	}
	return items
}

// harness owns a registry whose ticks the test publishes by hand.
type harness struct {
	mu  sync.Mutex
	cur subscribe.Snapshot
	reg *subscribe.Registry
}

func newHarness(ids ...int) *harness {
	h := &harness{cur: &tickSnap{version: 1, items: win(ids...)}}
	h.reg = subscribe.New(h.snapshot, subscribe.Options{})
	return h
}

func (h *harness) snapshot() subscribe.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cur
}

func (h *harness) tick(version int64, ids ...int) {
	sn := &tickSnap{version: version, items: win(ids...)}
	h.mu.Lock()
	h.cur = sn
	h.mu.Unlock()
	h.reg.Publish(sn)
}

// memSink records deliveries in-process; fail scripts per-call errors and
// gate, when set, blocks every call until released (or the attempt's
// context expires).
type memSink struct {
	mu    sync.Mutex
	calls int
	got   []*Delivery
	fail  func(call int) error
	gate  chan struct{}
}

func (s *memSink) Deliver(ctx context.Context, d *Delivery) error {
	s.mu.Lock()
	s.calls++
	n := s.calls
	gate := s.gate
	s.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if s.fail != nil {
		if err := s.fail(n); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.got = append(s.got, d)
	s.mu.Unlock()
	return nil
}

func (s *memSink) snapshot() (int, []*Delivery) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, append([]*Delivery(nil), s.got...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// replay applies a delivery chain (sync + deltas, possibly spanning) and
// returns the reconstructed window as ranked ids, verifying each link's
// since/snapshot continuity on the way.
func replay(t *testing.T, got []*Delivery) []int {
	t.Helper()
	if len(got) == 0 || got[0].Kind != "sync" {
		t.Fatalf("delivery chain must start with a sync, got %+v", got)
	}
	rank := map[int]int{}
	for i, a := range got[0].Window {
		rank[a.ID] = i + 1
	}
	at := got[0].Snapshot
	for _, d := range got[1:] {
		if d.Kind != "delta" {
			t.Fatalf("unexpected %q delivery mid-chain", d.Kind)
		}
		if d.Since != at {
			t.Fatalf("broken chain: delta starts at %d, previous delivery ended at %d", d.Since, at)
		}
		if d.Snapshot <= d.Since {
			t.Fatalf("non-advancing delta %d -> %d", d.Since, d.Snapshot)
		}
		at = d.Snapshot
		for _, c := range d.Changes {
			if c.NewRank == 0 {
				delete(rank, c.ID)
			} else {
				rank[c.ID] = c.NewRank
			}
		}
	}
	ids := make([]int, len(rank))
	for id, r := range rank {
		if r < 1 || r > len(rank) {
			t.Fatalf("reconstructed rank %d for id %d out of bounds", r, id)
		}
		ids[r-1] = id
	}
	return ids
}

func sameIDs(a []int, w []*quality.Assessment) bool {
	if len(a) != len(w) {
		return false
	}
	for i := range a {
		if a[i] != w[i].ID {
			return false
		}
	}
	return true
}

// --- the fault-injection matrix over HTTP ---

// faultServer injects a deterministic fault schedule: "ok" accepts and
// records the envelope, "500" rejects transiently, "drop" kills the
// connection mid-response, "stall" exceeds the per-attempt timeout.
type faultServer struct {
	mu       sync.Mutex
	schedule []string
	reqs     int
	accepted []Envelope
	srv      *httptest.Server
}

func newFaultServer(schedule []string) *faultServer {
	fs := &faultServer{schedule: schedule}
	fs.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fs.mu.Lock()
		mode := "ok"
		if len(fs.schedule) > 0 {
			mode = fs.schedule[fs.reqs%len(fs.schedule)]
		}
		fs.reqs++
		fs.mu.Unlock()
		switch mode {
		case "500":
			http.Error(w, "injected", http.StatusInternalServerError)
		case "drop":
			panic(http.ErrAbortHandler)
		case "stall":
			time.Sleep(300 * time.Millisecond)
			http.Error(w, "too late", http.StatusServiceUnavailable)
		default:
			var env Envelope
			if err := json.Unmarshal(body, &env); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			fs.mu.Lock()
			fs.accepted = append(fs.accepted, env)
			fs.mu.Unlock()
			w.WriteHeader(http.StatusOK)
		}
	}))
	return fs
}

func (fs *faultServer) snapshot() []Envelope {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]Envelope(nil), fs.accepted...)
}

// replayEnvelopes mirrors replay over the webhook wire form.
func replayEnvelopes(t *testing.T, got []Envelope) []int {
	t.Helper()
	ds := make([]*Delivery, len(got))
	for i, env := range got {
		d := &Delivery{Kind: env.Kind, Since: env.Since, Snapshot: env.Snapshot}
		for _, row := range env.Window {
			d.Window = append(d.Window, &quality.Assessment{ID: row.ID, Name: row.Name, Score: row.Score})
		}
		for _, c := range env.Changes {
			d.Changes = append(d.Changes, quality.WindowChange{ID: c.ID, Name: c.Name, OldRank: c.OldRank, NewRank: c.NewRank, Score: c.Score})
		}
		ds[i] = d
	}
	return replay(t, ds)
}

// TestDeliverOrderedUnderFaults drives 30% injected faults (5xx, dropped
// connections, stalls past the attempt timeout) against a webhook sink
// while a healthy in-process sink shares the same standing-query group,
// and requires both to converge on the exact final window through a
// contiguous in-order delivery chain — with evaluations still one per
// tick regardless of sink count.
func TestDeliverOrderedUnderFaults(t *testing.T) {
	h := newHarness(1, 2, 3, 4, 5, 6)
	defer h.reg.Close()
	fs := newFaultServer([]string{"ok", "500", "ok", "ok", "drop", "ok", "ok", "stall", "ok", "ok"})
	defer fs.srv.Close()

	m := NewManager(h.reg, Options{
		Queue:            8,
		Retry:            retry.Policy{Attempts: 5, Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, Jitter: 0.5},
		AttemptTimeout:   100 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerProbe:     10 * time.Millisecond,
		EvictAfter:       1000,
	})
	defer m.Close(context.Background())

	q := quality.Query{TopK: 6}
	flakyID, err := m.Register(SinkConfig{Name: "flaky", Sink: &WebhookSink{URL: fs.srv.URL}, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	healthy := &memSink{}
	if _, err := m.Register(SinkConfig{Name: "healthy", Sink: healthy, Query: q}); err != nil {
		t.Fatal(err)
	}

	// 15 ticks of rotations, entries and departures.
	windows := [][]int{
		{2, 1, 3, 4, 5, 6}, {2, 3, 1, 4, 5, 6}, {7, 2, 3, 1, 4, 5}, {7, 3, 2, 1, 4, 5},
		{3, 7, 2, 4, 1, 5}, {3, 2, 7, 4, 5, 8}, {8, 3, 2, 7, 4, 5}, {8, 2, 3, 4, 7, 5},
		{2, 8, 4, 3, 7, 5}, {2, 4, 8, 3, 5, 7}, {9, 2, 4, 8, 3, 5}, {9, 4, 2, 8, 5, 3},
		{4, 9, 2, 8, 5, 3}, {4, 2, 9, 5, 8, 3}, {4, 2, 5, 9, 8, 3},
	}
	final := int64(1 + len(windows))
	for i, ids := range windows {
		h.tick(int64(i+2), ids...)
	}

	waitFor(t, "flaky webhook sink to converge", func() bool {
		st, ok := m.Get(flakyID)
		return ok && st.LastDelivered == final && st.QueueDepth == 0
	})
	waitFor(t, "healthy sink to converge", func() bool {
		_, got := healthy.snapshot()
		return len(got) > 0 && got[len(got)-1].Snapshot == final
	})

	want := win(windows[len(windows)-1]...)
	if ids := replayEnvelopes(t, fs.snapshot()); !sameIDs(ids, want) {
		t.Fatalf("flaky sink reconstructed %v, want %v", ids, want)
	}
	_, got := healthy.snapshot()
	if ids := replay(t, got); !sameIDs(ids, want) {
		t.Fatalf("healthy sink reconstructed %v, want %v", ids, want)
	}

	// The fault mix must have actually exercised the retry loop.
	st, _ := m.Get(flakyID)
	if st.Retries == 0 {
		t.Fatal("fault schedule injected no retries")
	}
	if st.State != StateHealthy || st.ConsecutiveFailures != 0 {
		t.Fatalf("converged sink state %q (%d consecutive failures), want healthy/0", st.State, st.ConsecutiveFailures)
	}

	// One evaluation per tick however many sinks observe the group: the
	// shared-placement invariant of the registry survives push fan-out.
	rs := h.reg.Stats()
	if rs.Evaluations > rs.Ticks+2 { // +2 subscribe-time baselines
		t.Fatalf("evaluations %d over %d ticks: push sinks broke one-eval-per-tick", rs.Evaluations, rs.Ticks)
	}
}

// TestBreakerProbeSingleAttempt pins the breaker walk deterministically
// by counting sink calls: delivery 1 burns the full 3-attempt budget
// (calls 1-3) and trips the threshold-1 breaker; each half-open probe is
// exactly one call (call 4 fails and reopens, call 5 closes the breaker).
func TestBreakerProbeSingleAttempt(t *testing.T) {
	h := newHarness(1, 2, 3)
	defer h.reg.Close()
	sink := &memSink{fail: func(call int) error {
		if call <= 4 {
			return errors.New("injected")
		}
		return nil
	}}
	m := NewManager(h.reg, Options{
		Retry:            retry.Policy{Attempts: 3, Base: time.Millisecond},
		BreakerThreshold: 1,
		BreakerProbe:     5 * time.Millisecond,
		EvictAfter:       1000,
	})
	defer m.Close(context.Background())

	id, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "breaker to recover", func() bool {
		st, _ := m.Get(id)
		return st.Delivered == 1 && st.State == StateHealthy
	})
	calls, got := sink.snapshot()
	if calls != 5 {
		t.Fatalf("sink saw %d calls, want exactly 5 (3-attempt delivery, then single-attempt probes)", calls)
	}
	st, _ := m.Get(id)
	if st.Failures != 2 || st.Retries != 2 || st.Attempts != 5 {
		t.Fatalf("stats %+v, want 2 failures, 2 retries, 5 attempts", st)
	}
	if len(got) != 1 || got[0].Kind != "sync" {
		t.Fatalf("recovered delivery %+v, want the baseline sync", got)
	}
}

// TestBreakerOpensBetweenFailures: past the threshold the sink is left
// alone for the probe interval instead of being hammered.
func TestBreakerOpensBetweenFailures(t *testing.T) {
	h := newHarness(1, 2, 3)
	defer h.reg.Close()
	sink := &memSink{fail: func(int) error { return errors.New("injected") }}
	m := NewManager(h.reg, Options{
		Retry:            retry.Policy{Attempts: 1},
		BreakerThreshold: 2,
		BreakerProbe:     time.Hour, // the test must observe "open", not race past it
		EvictAfter:       1000,
	})
	id, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "breaker to trip open", func() bool {
		st, _ := m.Get(id)
		return st.State == StateOpen
	})
	st, _ := m.Get(id)
	if st.ConsecutiveFailures < 2 || st.LastError == "" {
		t.Fatalf("open breaker stats %+v, want the failure streak recorded", st)
	}
	calls, _ := sink.snapshot()
	time.Sleep(20 * time.Millisecond)
	if after, _ := sink.snapshot(); after != calls {
		t.Fatalf("open breaker kept calling the sink (%d -> %d)", calls, after)
	}
	// Force-stop cuts the probe wait short.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	m.Close(ctx)
}

// TestCoalescingSpanningDelta blocks a sink behind a gate while ten ticks
// land on a queue bounded at two, and requires the released sink to see
// exactly two deliveries — the baseline sync and one spanning delta —
// whose replay reconstructs the same window as replaying all ten per-tick
// deltas would.
func TestCoalescingSpanningDelta(t *testing.T) {
	h := newHarness(1, 2, 3, 4)
	defer h.reg.Close()
	gate := make(chan struct{})
	sink := &memSink{gate: gate}
	m := NewManager(h.reg, Options{
		Queue:          2,
		Retry:          retry.Policy{Attempts: 1},
		AttemptTimeout: time.Minute,
		EvictAfter:     1000,
	})
	defer m.Close(context.Background())

	id, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker take the sync in flight so the queue holds it plus
	// exactly one (growing) spanning delta.
	waitFor(t, "worker to pick up the baseline sync", func() bool {
		calls, _ := sink.snapshot()
		return calls == 1
	})
	windows := [][]int{
		{2, 1, 3, 4}, {2, 3, 1, 4}, {5, 2, 3, 1}, {5, 3, 2, 6},
		{3, 5, 6, 2}, {3, 6, 5, 2}, {6, 3, 2, 5}, {6, 2, 3, 7},
		{2, 6, 7, 3}, {2, 7, 6, 3},
	}
	for i, ids := range windows {
		h.tick(int64(i+2), ids...)
	}
	waitFor(t, "ticks to coalesce behind the gate", func() bool {
		st, _ := m.Get(id)
		return st.Coalesced == int64(len(windows)-1)
	})
	close(gate)

	final := int64(1 + len(windows))
	waitFor(t, "spanning delta to deliver", func() bool {
		st, _ := m.Get(id)
		return st.LastDelivered == final
	})
	_, got := sink.snapshot()
	if len(got) != 2 {
		t.Fatalf("sink saw %d deliveries, want 2 (sync + one spanning delta)", len(got))
	}
	if got[1].Since != 1 || got[1].Snapshot != final {
		t.Fatalf("spanning delta covers %d -> %d, want 1 -> %d", got[1].Since, got[1].Snapshot, final)
	}
	// Spanning delta == replaying the skipped deltas: both reconstruct
	// the final published window.
	if ids := replay(t, got); !sameIDs(ids, win(windows[len(windows)-1]...)) {
		t.Fatalf("spanning delta reconstructed %v, want %v", ids, windows[len(windows)-1])
	}
}

// TestFilterSkipsZeroBytes: a sink registered with an entered-only filter
// consumes pure-rotation ticks without a single network call, yet its
// delivered horizon advances; a genuine entry is pushed with only the
// qualifying rows.
func TestFilterSkipsZeroBytes(t *testing.T) {
	h := newHarness(1, 2, 3)
	defer h.reg.Close()
	sink := &memSink{}
	m := NewManager(h.reg, Options{Retry: retry.Policy{Attempts: 1}})
	defer m.Close(context.Background())

	id, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 3}, Filter: subscribe.Filter{EnteredOnly: true}})
	if err != nil {
		t.Fatal(err)
	}
	h.tick(2, 2, 1, 3) // rotation only: zero bytes for this sink
	h.tick(3, 3, 2, 1) // rotation only
	waitFor(t, "rotations to be consumed bytelessly", func() bool {
		st, _ := m.Get(id)
		return st.LastDelivered == 3 && st.Skipped == 2
	})
	calls, _ := sink.snapshot()
	if calls != 1 {
		t.Fatalf("sink saw %d calls across rotation ticks, want 1 (the sync)", calls)
	}

	h.tick(4, 9, 3, 2) // id 9 enters, id 1 leaves
	waitFor(t, "entry delta to deliver", func() bool {
		st, _ := m.Get(id)
		return st.LastDelivered == 4 && st.Delivered == 2
	})
	_, got := sink.snapshot()
	last := got[len(got)-1]
	if len(last.Changes) != 1 || last.Changes[0].ID != 9 || last.Changes[0].Event() != "entered" {
		t.Fatalf("filtered delta %+v, want only id 9 entering", last.Changes)
	}
}

// TestEvictionAndResync: a sink that stays broken is evicted without
// delaying a healthy sink on the same group, and re-registering it cuts a
// fresh sync baseline at the current round — the push-side mirror of the
// slow-consumer 410.
func TestEvictionAndResync(t *testing.T) {
	h := newHarness(1, 2, 3)
	defer h.reg.Close()
	broken := &memSink{fail: func(int) error { return errors.New("injected") }}
	healthy := &memSink{}
	m := NewManager(h.reg, Options{
		Retry:            retry.Policy{Attempts: 1},
		BreakerThreshold: 2,
		BreakerProbe:     time.Millisecond,
		EvictAfter:       4,
	})
	defer m.Close(context.Background())

	q := quality.Query{TopK: 3}
	brokenID, err := m.Register(SinkConfig{Name: "broken", Sink: broken, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(SinkConfig{Name: "healthy", Sink: healthy, Query: q}); err != nil {
		t.Fatal(err)
	}
	for v := int64(2); v <= 6; v++ {
		h.tick(v, []int{2, 1, 3, 3, 2, 1, 1, 3, 2, 2, 3, 1, 3, 1, 2}[(v-2)*3:(v-2)*3+3]...)
	}
	waitFor(t, "broken sink to evict", func() bool {
		st, ok := m.Get(brokenID)
		return ok && st.State == StateEvicted
	})
	st, _ := m.Get(brokenID)
	if st.QueueDepth != 0 || st.Delivered != 0 || st.ConsecutiveFailures != 4 {
		t.Fatalf("evicted stats %+v, want dropped queue and a 4-failure streak", st)
	}
	// The healthy sink observed every tick in order meanwhile.
	waitFor(t, "healthy sink to converge", func() bool {
		_, got := healthy.snapshot()
		return len(got) == 6 // sync + 5 deltas: nothing coalesced, nothing delayed
	})
	_, got := healthy.snapshot()
	if ids := replay(t, got); !sameIDs(ids, win(3, 1, 2)) {
		t.Fatalf("healthy sink reconstructed %v, want [3 1 2]", ids)
	}

	// Evicted sinks stay listed for observability until removed.
	stats := m.Stats()
	if len(stats) != 2 || stats[0].ID != brokenID || stats[0].State != StateEvicted {
		t.Fatalf("stats listing %+v, want the evicted sink first", stats)
	}
	if !m.Remove(brokenID) || m.Remove(brokenID) {
		t.Fatal("Remove must report the evicted id exactly once")
	}

	// Re-registration = resync: the first delivery is a fresh sync at the
	// current round, not a replay of the missed deltas.
	broken.mu.Lock()
	broken.fail = nil
	broken.mu.Unlock()
	againID, err := m.Register(SinkConfig{Name: "again", Sink: broken, Query: q})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-registered sink to sync", func() bool {
		st, _ := m.Get(againID)
		return st.Delivered == 1
	})
	_, got = broken.snapshot()
	d := got[len(got)-1]
	if d.Kind != "sync" || d.Snapshot != 6 || !sameIDs([]int{3, 1, 2}, d.Window) {
		t.Fatalf("resync delivery %+v, want a sync of the current round 6", d)
	}
}

// TestCloseFlushesPending: Close drains queued deliveries within its
// deadline; an expired deadline drops the backlog, aborts the in-flight
// attempt and still releases every goroutine.
func TestCloseFlushesPending(t *testing.T) {
	h := newHarness(1, 2, 3)
	sink := &memSink{}
	m := NewManager(h.reg, Options{Retry: retry.Policy{Attempts: 1}})
	id, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 3}})
	if err != nil {
		t.Fatal(err)
	}
	h.tick(2, 2, 1, 3)
	h.tick(3, 3, 2, 1)
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Get(id)
	if st.LastDelivered != 3 || st.QueueDepth != 0 {
		t.Fatalf("Close left stats %+v, want the backlog flushed through round 3", st)
	}
	if st.State != StateClosed {
		t.Fatalf("state %q after Close, want %q", st.State, StateClosed)
	}
	// Registering after Close refuses.
	if _, err := m.Register(SinkConfig{Sink: sink, Query: quality.Query{TopK: 3}}); err == nil {
		t.Fatal("Register after Close must refuse")
	}
	h.reg.Close()

	// Deadline path: a gated sink can't flush; Close returns the
	// context's error instead of hanging.
	h2 := newHarness(1, 2, 3)
	defer h2.reg.Close()
	gated := &memSink{gate: make(chan struct{})}
	m2 := NewManager(h2.reg, Options{AttemptTimeout: time.Minute})
	if _, err := m2.Register(SinkConfig{Sink: gated, Query: quality.Query{TopK: 3}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m2.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline Close err = %v, want DeadlineExceeded", err)
	}
}

// TestNoGoroutineLeaks exercises the full lifecycle — webhook faults,
// eviction, removal, flush — and requires the goroutine count to return
// to its baseline once manager and registry are closed.
func TestNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()

	h := newHarness(1, 2, 3, 4)
	fs := newFaultServer([]string{"ok", "500", "ok"})
	m := NewManager(h.reg, Options{
		Retry:            retry.Policy{Attempts: 2, Base: time.Millisecond},
		AttemptTimeout:   100 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerProbe:     time.Millisecond,
		EvictAfter:       3,
	})
	q := quality.Query{TopK: 4}
	if _, err := m.Register(SinkConfig{Sink: &WebhookSink{URL: fs.srv.URL}, Query: q}); err != nil {
		t.Fatal(err)
	}
	dead := &memSink{fail: func(int) error { return errors.New("injected") }}
	if _, err := m.Register(SinkConfig{Sink: dead, Query: q}); err != nil {
		t.Fatal(err)
	}
	removedID, err := m.Register(SinkConfig{Sink: &memSink{}, Query: quality.Query{TopK: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(2); v <= 8; v++ {
		h.tick(v, []int{1, 2, 3, 4, 2, 1, 4, 3}[v%2*4:v%2*4+4]...)
	}
	m.Remove(removedID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	h.reg.Close()
	fs.srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d alive, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// TestWebhookStatusClasses: 2xx accepts, 4xx fast-fails the delivery's
// remaining retries (Permanent), 5xx stays transient.
func TestWebhookStatusClasses(t *testing.T) {
	var status int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
	}))
	defer srv.Close()
	sink := &WebhookSink{URL: srv.URL}
	d := &Delivery{Kind: "delta", Since: 1, Snapshot: 2, Changes: []quality.WindowChange{{ID: 1, OldRank: 1, NewRank: 2}}}

	status = http.StatusOK
	if err := sink.Deliver(context.Background(), d); err != nil {
		t.Fatalf("2xx delivery err = %v", err)
	}
	status = http.StatusGone
	if err := sink.Deliver(context.Background(), d); !retry.IsPermanent(err) {
		t.Fatalf("4xx err = %v, want a Permanent fast-fail", err)
	}
	status = http.StatusBadGateway
	if err := sink.Deliver(context.Background(), d); err == nil || retry.IsPermanent(err) {
		t.Fatalf("5xx err = %v, want a transient failure", err)
	}
}

// TestEnvelopeWireForm pins the webhook JSON contract.
func TestEnvelopeWireForm(t *testing.T) {
	sync := NewEnvelope(&Delivery{Kind: "sync", Snapshot: 7, Window: win(3, 1)})
	if sync.APIVersion != "v1" || sync.Count != 2 || len(sync.Window) != 2 {
		t.Fatalf("sync envelope %+v", sync)
	}
	if sync.Window[0].ID != 3 || sync.Window[0].Rank != 1 || sync.Window[1].Rank != 2 {
		t.Fatalf("sync window rows %+v, want rank-ordered rows", sync.Window)
	}
	delta := NewEnvelope(&Delivery{Kind: "delta", Since: 7, Snapshot: 9, Changes: []quality.WindowChange{
		{ID: 5, Name: "src-5", OldRank: 0, NewRank: 1, Score: 0.9},
		{ID: 3, Name: "src-3", OldRank: 1, NewRank: 0, Score: 0.5},
	}})
	if delta.Since != 7 || delta.Snapshot != 9 || delta.Count != 2 {
		t.Fatalf("delta envelope %+v", delta)
	}
	if delta.Changes[0].Event != "entered" || delta.Changes[1].Event != "left" {
		t.Fatalf("delta change events %+v", delta.Changes)
	}
	b, err := json.Marshal(delta)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"api_version":"v1"`, `"kind":"delta"`, `"since":7`, `"snapshot":9`, `"event":"entered"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshalled delta %s missing %s", b, key)
		}
	}
}
