// Package deliver is the push side of the standing-query subsystem
// (DESIGN.md section 10): where internal/subscribe fans a tick's window
// delta out to consumers who hold an open connection (in-process
// channels, SSE streams), this package *pushes* the same deltas to remote
// sinks — webhook endpoints first, anything implementing Sink — that
// fail, stall and recover. It is the filter-placement setting of Erdös et
// al. (PAPERS.md) taken to production: one evaluation point per standing
// query feeds many unreliable downstream consumers, and no consumer's
// failure may delay the tick or any other consumer.
//
// A Manager attaches sinks to a subscribe.Registry. Each sink gets:
//
//   - a bounded per-sink queue that *coalesces* under backpressure: when
//     the queue is full, consecutive deltas merge into one spanning delta
//     (the queued item keeps the span's base and latest windows; the
//     spanning change set is DiffWindows(base, latest), provably equal to
//     replaying the skipped per-tick deltas) — deliveries are never
//     dropped, they converge;
//   - a delivery loop with bounded retries, exponential backoff plus
//     jitter (internal/retry — the crawler's inbound policy, applied
//     outbound) and a per-attempt timeout, so a stalled sink cannot pin a
//     delivery forever;
//   - a circuit breaker that trips open after consecutive failed
//     deliveries, half-opens after a probe interval, and closes again on
//     a successful single-attempt probe;
//   - eviction-with-resync mirroring subscribe.ErrSlowConsumer: a sink
//     that stays broken past the eviction bound is detached (its queue
//     dropped, its goroutines released) and keeps only its stats; on
//     re-registration it receives a fresh "sync" baseline delivery before
//     any delta, exactly the 410-Gone recovery of the HTTP transports.
//
// Delivery semantics: per sink, deliveries are in-order (one worker,
// FIFO queue) and at-least-once (a delivery whose response is lost is
// retried, so sinks must treat the since/snapshot tokens as idempotency
// keys). Sinks registered with a delta Filter receive only qualifying
// rows, and a tick whose filtered delta is empty costs zero bytes — it is
// consumed without a network call.
//
//informer:bounded
//informer:strict-errors
package deliver

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/informing-observers/informer/internal/quality"
	"github.com/informing-observers/informer/internal/retry"
	"github.com/informing-observers/informer/internal/subscribe"
)

// Delivery is one push to a sink. Kind "sync" carries the standing
// query's full ranked window at Snapshot — the baseline a (re)attached
// sink starts from; kind "delta" carries the window's movement between
// the Since and Snapshot rounds. Treat all slices as read-only: they are
// shared with the subscription registry.
type Delivery struct {
	Kind     string                 // "sync" | "delta"
	Since    int64                  // delta only: the round the delta starts at
	Snapshot int64                  // the round the delivery ends at
	Changes  []quality.WindowChange // delta only
	Window   []*quality.Assessment  // sync only: the full baseline window
}

// Sink receives deliveries. Deliver must honour the context's deadline
// (the per-attempt timeout) and return nil only once the delivery is
// durably accepted; any error counts as a failed attempt. Implementations
// are called from one goroutine per sink, in order.
type Sink interface {
	Deliver(ctx context.Context, d *Delivery) error
}

// Targeter optionally names a sink's destination for stats listings;
// WebhookSink returns its URL.
type Targeter interface {
	Target() string
}

// Sink lifecycle states reported by SinkStats.State.
const (
	StateHealthy  = "healthy"   // breaker closed, deliveries flowing
	StateOpen     = "open"      // breaker tripped, waiting for the probe interval
	StateHalfOpen = "half-open" // next delivery is a single-attempt probe
	StateEvicted  = "evicted"   // detached after staying broken; re-register to resync
	StateClosed   = "closed"    // removed, or manager shut down
)

// Options tunes a Manager. The zero value gets production-shaped
// defaults; tests shrink the timings.
type Options struct {
	// Queue bounds the per-sink queue (minimum 2, default 32). When the
	// queue is full, new deltas coalesce into the newest queued item
	// instead of dropping.
	Queue int
	// Retry is the per-delivery attempt policy (default 3 attempts,
	// 100ms base, 5s cap, 0.5 jitter).
	Retry retry.Policy
	// AttemptTimeout bounds one Deliver call (default 10s) — the
	// slow-read guard.
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive failed deliveries that trip
	// the breaker open (default 2).
	BreakerThreshold int
	// BreakerProbe is how long an open breaker waits before half-opening
	// for a single-attempt probe (default 5s).
	BreakerProbe time.Duration
	// EvictAfter is the consecutive failed deliveries after which the
	// sink is evicted (default 6; it should exceed BreakerThreshold).
	EvictAfter int
}

func (o Options) queue() int {
	if o.Queue < 2 {
		if o.Queue == 0 {
			return 32
		}
		return 2
	}
	return o.Queue
}

func (o Options) retryPolicy() retry.Policy {
	if o.Retry == (retry.Policy{}) {
		return retry.Policy{Attempts: 3, Base: 100 * time.Millisecond, Max: 5 * time.Second, Jitter: 0.5}
	}
	return o.Retry
}

func (o Options) attemptTimeout() time.Duration {
	if o.AttemptTimeout <= 0 {
		return 10 * time.Second
	}
	return o.AttemptTimeout
}

func (o Options) breakerThreshold() int {
	if o.BreakerThreshold <= 0 {
		return 2
	}
	return o.BreakerThreshold
}

func (o Options) breakerProbe() time.Duration {
	if o.BreakerProbe <= 0 {
		return 5 * time.Second
	}
	return o.BreakerProbe
}

func (o Options) evictAfter() int {
	if o.EvictAfter <= 0 {
		return 6
	}
	return o.EvictAfter
}

// SinkConfig registers one sink.
type SinkConfig struct {
	// Name is an optional label for listings.
	Name string
	// Sink receives the deliveries.
	Sink Sink
	// Query is the standing query whose window the sink observes; it
	// binds exactly like a subscription (no pagination position).
	Query quality.Query
	// Filter optionally narrows the delta rows pushed to this sink.
	Filter subscribe.Filter
}

// SinkStats is one sink's observable delivery state.
type SinkStats struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Target string `json:"target,omitempty"`
	State  string `json:"state"`
	// QueueDepth is the number of pending deliveries right now.
	QueueDepth int `json:"queue_depth"`
	// Delivered counts successful network deliveries; Skipped counts
	// deltas consumed without a network call because the sink's filter
	// passed nothing; Coalesced counts ticks merged into a spanning
	// delta under backpressure.
	Delivered int64 `json:"delivered"`
	Skipped   int64 `json:"skipped"`
	Coalesced int64 `json:"coalesced"`
	// Attempts counts Deliver calls; Retries counts the attempts beyond
	// each delivery's first; Failures counts deliveries that exhausted
	// their retry budget.
	Attempts int64 `json:"attempts"`
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`
	// Resyncs counts fresh sync baselines cut after the sink's own
	// subscription was dropped as a slow consumer.
	Resyncs int64 `json:"resyncs"`
	// ConsecutiveFailures drives the breaker and eviction bounds.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastError is the most recent delivery error ("" when healthy).
	LastError string `json:"last_error,omitempty"`
	// LastDelivered is the ending round of the last successful (or
	// filter-skipped) delivery, 0 before any.
	LastDelivered int64 `json:"last_delivered"`
}

// Manager owns the push sinks attached to one subscription registry.
type Manager struct {
	reg  *subscribe.Registry
	opts Options

	ctx    context.Context // cancelled on force-stop: aborts in-flight attempts
	cancel context.CancelFunc

	mu     sync.Mutex
	sinks  map[string]*sinkState
	seq    int
	closed bool
	wg     sync.WaitGroup
}

// NewManager builds a manager over the registry the serving layer already
// fans out of, so push sinks share the one-evaluation-per-tick groups
// with in-process and SSE subscribers.
func NewManager(reg *subscribe.Registry, opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{reg: reg, opts: opts, ctx: ctx, cancel: cancel, sinks: map[string]*sinkState{}}
}

// item is one queued delivery span: the window at the span's base round
// and at its latest round. The change set is computed at delivery time as
// DiffWindows(base, window), so coalescing two consecutive items is just
// dropping the middle windows — the spanning delta equals replaying the
// merged per-tick deltas by construction.
type item struct {
	sync    bool
	since   int64 // delta: base round
	base    []*quality.Assessment
	version int64 // ending round
	window  []*quality.Assessment
}

// sinkState is one attached sink: its subscription pump, its bounded
// queue and its delivery worker.
type sinkState struct {
	m      *Manager
	id     string
	name   string
	target string
	query  quality.Query
	filter subscribe.Filter
	sink   Sink

	mu       sync.Mutex
	cond     *sync.Cond
	sub      *subscribe.Subscription
	queue    []item
	tail     []*quality.Assessment // window at the newest queued round
	inflight bool                  // worker is delivering queue[0]
	state    string
	stopped  bool
	draining bool
	pumpDone bool // pump exited: no more events will be enqueued
	stopOnce sync.Once
	stopCh   chan struct{}

	stats SinkStats
}

// Register attaches a sink: it subscribes to the query's shared group,
// enqueues a "sync" delivery carrying the baseline window, and starts the
// sink's pump and delivery worker. The returned id addresses the sink in
// Stats/Get/Remove and the /api/v1/sinks endpoints. Re-registering after
// an eviction is exactly this: the new registration starts from a fresh
// baseline.
func (m *Manager) Register(cfg SinkConfig) (string, error) {
	if cfg.Sink == nil {
		return "", errors.New("deliver: nil sink")
	}
	sub, err := m.reg.SubscribeWith(cfg.Query, cfg.Filter)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		sub.Close()
		return "", errors.New("deliver: manager closed")
	}
	m.seq++
	id := fmt.Sprintf("sink-%d", m.seq)
	s := &sinkState{
		m: m, id: id, name: cfg.Name, query: cfg.Query, filter: cfg.Filter,
		sink: cfg.Sink, sub: sub, state: StateHealthy, stopCh: make(chan struct{}),
	}
	if t, ok := cfg.Sink.(Targeter); ok {
		s.target = t.Target()
	}
	s.cond = sync.NewCond(&s.mu)
	// The baseline sync is the first queued delivery; every later delta
	// chains off its window.
	s.queue = []item{{sync: true, version: sub.Since(), window: sub.Window()}}
	s.tail = sub.Window()
	m.sinks[id] = s
	m.wg.Add(2)
	m.mu.Unlock()
	go s.pump(sub)
	go s.worker()
	return id, nil
}

// Remove detaches a sink now: its subscription closes, its queue is
// dropped, its goroutines exit. Reports whether the id existed.
func (m *Manager) Remove(id string) bool {
	m.mu.Lock()
	s, ok := m.sinks[id]
	if ok {
		delete(m.sinks, id)
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.stop(StateClosed, false)
	return true
}

// Get returns one sink's stats.
func (m *Manager) Get(id string) (SinkStats, bool) {
	m.mu.Lock()
	s, ok := m.sinks[id]
	m.mu.Unlock()
	if !ok {
		return SinkStats{}, false
	}
	return s.snapshot(), true
}

// Stats lists every attached sink's delivery stats (evicted sinks stay
// listed until removed), ordered by registration.
func (m *Manager) Stats() []SinkStats {
	m.mu.Lock()
	out := make([]SinkStats, 0, len(m.sinks))
	for _, s := range m.sinks {
		out = append(out, s.snapshot())
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return sinkSeq(out[i].ID) < sinkSeq(out[j].ID)
	})
	return out
}

// sinkSeq orders sink ids ("sink-N") by registration sequence.
func sinkSeq(id string) int {
	var n int
	fmt.Sscanf(id, "sink-%d", &n) //informer:ignore errdrop a non-matching id deliberately sorts first with n=0
	return n
}

// Close shuts the manager down, flushing pending deliveries within the
// context's deadline: each sink keeps draining its queue until empty;
// when the deadline passes first, remaining queues are dropped and
// in-flight attempts aborted. Returns the context's error when the drain
// was cut short.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	sinks := make([]*sinkState, 0, len(m.sinks))
	for _, s := range m.sinks {
		sinks = append(sinks, s)
	}
	m.mu.Unlock()
	for _, s := range sinks {
		s.stop(StateClosed, true)
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.cancel()
		return nil
	case <-ctx.Done():
		// Deadline: stop draining, abort in-flight attempts.
		for _, s := range sinks {
			s.abortDrain()
		}
		m.cancel()
		<-done
		return ctx.Err()
	}
}

// stop transitions a sink to a terminal state. drain keeps the worker
// delivering the queued backlog before exiting; otherwise the queue is
// dropped.
func (s *sinkState) stop(state string, drain bool) {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		s.draining = drain
		if s.state != StateEvicted {
			s.state = state
		}
		s.sub.Close()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// abortDrain cuts a draining sink's flush short (Close deadline).
func (s *sinkState) abortDrain() {
	s.mu.Lock()
	s.draining = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *sinkState) snapshot() SinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ID, st.Name, st.Target, st.State = s.id, s.name, s.target, s.state
	st.QueueDepth = len(s.queue)
	return st
}

// pump drains the sink's subscription into the bounded queue. It can
// never be slow — enqueue is O(1) under the sink lock — but if the
// subscription is nevertheless dropped (ErrSlowConsumer), it
// resubscribes and rebases the sink on a fresh sync baseline, mirroring
// the HTTP transports' 410 recovery.
func (s *sinkState) pump(sub *subscribe.Subscription) {
	defer s.m.wg.Done()
	defer func() {
		// A draining worker must not exit while events could still land.
		s.mu.Lock()
		s.pumpDone = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	for {
		for ev := range sub.Events() {
			s.enqueue(ev)
		}
		if !errors.Is(sub.Err(), subscribe.ErrSlowConsumer) {
			return // clean close, sink stopped, or registry shut down
		}
		next, err := s.m.reg.SubscribeWith(s.query, s.filter)
		if err != nil {
			s.mu.Lock()
			s.stats.LastError = err.Error()
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			next.Close()
			return
		}
		s.sub = next
		s.resyncLocked(next)
		s.mu.Unlock()
		sub = next
	}
}

// resyncLocked rebases the queue on a fresh baseline: queued deltas are
// superseded (the since-chain broke when events were dropped), so only
// the in-flight head survives, followed by the new sync.
func (s *sinkState) resyncLocked(sub *subscribe.Subscription) {
	syncIt := item{sync: true, version: sub.Since(), window: sub.Window()}
	if s.inflight && len(s.queue) > 0 {
		s.queue = []item{s.queue[0], syncIt}
	} else {
		s.queue = []item{syncIt}
	}
	s.tail = sub.Window()
	s.stats.Resyncs++
	s.cond.Signal()
}

// enqueue adds one tick's delta to the queue, coalescing into the newest
// queued item when the queue is full: the merged item keeps its base
// round/window and adopts the new ending round/window, so its delivery
// spans every merged tick in one delta.
func (s *sinkState) enqueue(ev subscribe.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A draining sink still accepts the events already published before
	// the stop — flushing means delivering them.
	if s.stopped && !s.draining {
		return
	}
	if len(s.queue) >= s.m.opts.queue() {
		li := len(s.queue) - 1
		if li > 0 || !s.inflight {
			last := &s.queue[li]
			last.version, last.window = ev.Snapshot, ev.Window
			s.tail = ev.Window
			s.stats.Coalesced++
			return
		}
		// The only queued item is in flight: append past the bound (by
		// one) rather than mutate what the worker is delivering.
	}
	s.queue = append(s.queue, item{since: ev.Since, base: s.tail, version: ev.Snapshot, window: ev.Window})
	s.tail = ev.Window
	s.cond.Signal()
}

// worker is the sink's delivery loop: deliver the queue head, pop on
// success, thread failures through the breaker, evict when the sink
// stays broken.
func (s *sinkState) worker() {
	defer s.m.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && (!s.stopped || (s.draining && !s.pumpDone)) {
			s.cond.Wait()
		}
		if s.stopped && (!s.draining || len(s.queue) == 0) {
			s.queue = nil
			s.mu.Unlock()
			return
		}
		it := s.queue[0]
		s.inflight = true
		probe := s.state == StateHalfOpen
		s.mu.Unlock()

		d := s.buildDelivery(it)
		var err error
		if d != nil {
			err = s.deliver(d, probe)
		}
		if err == nil {
			s.settle(it, d != nil)
			continue
		}
		if s.recordFailure(err) {
			return // evicted
		}
		s.breakerWait()
	}
}

// buildDelivery renders one queued item, applying the sink's delta
// filter over the span. A delta whose filtered change set is empty
// returns nil: the tick is consumed for zero bytes.
func (s *sinkState) buildDelivery(it item) *Delivery {
	if it.sync {
		return &Delivery{Kind: "sync", Snapshot: it.version, Window: it.window}
	}
	changes := s.filter.Apply(quality.DiffWindows(it.base, it.window), it.base)
	if len(changes) == 0 {
		return nil
	}
	return &Delivery{Kind: "delta", Since: it.since, Snapshot: it.version, Changes: changes}
}

// deliver pushes one delivery through the retry policy (a single attempt
// when probing a half-open breaker), bounding every attempt with the
// per-attempt timeout.
func (s *sinkState) deliver(d *Delivery, probe bool) error {
	pol := s.m.opts.retryPolicy()
	if probe {
		pol = retry.Policy{Attempts: 1}
	}
	attempts := 0
	err := retry.Do(s.m.ctx, pol, func(ctx context.Context) error {
		attempts++
		actx, cancel := context.WithTimeout(ctx, s.m.opts.attemptTimeout())
		defer cancel()
		return s.sink.Deliver(actx, d)
	})
	s.mu.Lock()
	s.stats.Attempts += int64(attempts)
	if attempts > 1 {
		s.stats.Retries += int64(attempts - 1)
	}
	s.mu.Unlock()
	return err
}

// settle pops a completed head item: the breaker closes, the failure
// streak resets, and the sink's delivered horizon advances.
func (s *sinkState) settle(it item, posted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight = false
	if len(s.queue) > 0 {
		s.queue = s.queue[1:]
	}
	if posted {
		s.stats.Delivered++
	} else {
		s.stats.Skipped++
	}
	s.stats.LastDelivered = it.version
	s.stats.ConsecutiveFailures = 0
	s.stats.LastError = ""
	if !s.stopped && s.state != StateEvicted {
		s.state = StateHealthy
	}
}

// recordFailure accounts one exhausted delivery: the failure streak
// grows, the breaker trips past the threshold, and past the eviction
// bound the sink is detached (reporting whether it was). The failed item
// stays at the queue head — later ticks coalesce into the backlog — so a
// recovering sink resumes exactly where it broke.
func (s *sinkState) recordFailure(err error) (evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight = false
	s.stats.Failures++
	s.stats.ConsecutiveFailures++
	s.stats.LastError = err.Error()
	if s.stats.ConsecutiveFailures >= s.m.opts.evictAfter() {
		s.state = StateEvicted
		if !s.stopped {
			s.stopped = true
			s.draining = false
			s.sub.Close()
		}
		s.queue = nil
		s.cond.Broadcast()
		s.stopOnce.Do(func() { close(s.stopCh) })
		return true
	}
	if s.stats.ConsecutiveFailures >= s.m.opts.breakerThreshold() {
		s.state = StateOpen
	}
	return false
}

// breakerWait holds an open breaker for the probe interval, then
// half-opens. A draining or stopped sink skips the wait — eviction and
// the Close deadline bound it instead.
func (s *sinkState) breakerWait() {
	s.mu.Lock()
	open := s.state == StateOpen && !s.stopped
	s.mu.Unlock()
	if !open {
		return
	}
	t := time.NewTimer(s.m.opts.breakerProbe())
	defer t.Stop()
	select {
	case <-t.C:
	case <-s.stopCh:
		return
	}
	s.mu.Lock()
	if s.state == StateOpen {
		s.state = StateHalfOpen
	}
	s.mu.Unlock()
}
