package deliver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/informing-observers/informer/internal/retry"
)

// Envelope is the JSON body a WebhookSink POSTs: the same self-contained
// shape as the SSE frames (DESIGN.md section 10), so a receiver can treat
// pushed deliveries and streamed frames interchangeably. A "sync"
// envelope carries the full ranked window; a "delta" envelope carries the
// window's movement between the Since and Snapshot rounds.
type Envelope struct {
	APIVersion string           `json:"api_version"`
	Kind       string           `json:"kind"` // "sync" | "delta"
	Since      int64            `json:"since,omitempty"`
	Snapshot   int64            `json:"snapshot"`
	Count      int              `json:"count"`
	Window     []EnvelopeRow    `json:"window,omitempty"`
	Changes    []EnvelopeChange `json:"changes,omitempty"`
}

// EnvelopeRow is one ranked window row in a sync envelope.
type EnvelopeRow struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Rank  int     `json:"rank"`
	Score float64 `json:"score"`
}

// EnvelopeChange is one window movement in a delta envelope.
type EnvelopeChange struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	Event   string  `json:"event"` // "entered" | "left" | "moved"
	OldRank int     `json:"old_rank,omitempty"`
	NewRank int     `json:"new_rank,omitempty"`
	Score   float64 `json:"score"`
}

// NewEnvelope renders a Delivery into its wire form.
func NewEnvelope(d *Delivery) Envelope {
	env := Envelope{APIVersion: "v1", Kind: d.Kind, Since: d.Since, Snapshot: d.Snapshot}
	switch d.Kind {
	case "sync":
		env.Count = len(d.Window)
		env.Window = make([]EnvelopeRow, len(d.Window))
		for i, a := range d.Window {
			env.Window[i] = EnvelopeRow{ID: a.ID, Name: a.Name, Rank: i + 1, Score: a.Score}
		}
	default:
		env.Count = len(d.Changes)
		env.Changes = make([]EnvelopeChange, len(d.Changes))
		for i, c := range d.Changes {
			env.Changes[i] = EnvelopeChange{
				ID: c.ID, Name: c.Name, Event: c.Event(),
				OldRank: c.OldRank, NewRank: c.NewRank, Score: c.Score,
			}
		}
	}
	return env
}

// WebhookSink POSTs envelopes to a remote URL. A 2xx response accepts the
// delivery; 4xx responses fast-fail the delivery's remaining retries (the
// receiver rejected the payload — repeating it won't heal) while still
// counting against the breaker; everything else is transient.
type WebhookSink struct {
	// URL receives the POSTs.
	URL string
	// Client defaults to a shared client with a 30s Timeout backstop;
	// per-attempt deadlines come from the delivery context either way.
	Client *http.Client
}

// defaultWebhookClient backstops sinks that leave Client nil: the
// per-attempt context already bounds each POST, but a transport-level
// Timeout also covers paths the context cannot reach (e.g. a response
// body that stalls after the attempt's settle).
var defaultWebhookClient = &http.Client{Timeout: 30 * time.Second}

// Target reports the destination URL for stats listings.
func (w *WebhookSink) Target() string { return w.URL }

// Deliver POSTs one envelope.
func (w *WebhookSink) Deliver(ctx context.Context, d *Delivery) error {
	body, err := json.Marshal(NewEnvelope(d))
	if err != nil {
		return retry.Permanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL, bytes.NewReader(body))
	if err != nil {
		return retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("User-Agent", "informer-deliver/1.0")
	client := w.Client
	if client == nil {
		client = defaultWebhookClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err // net/timeout errors are transient
	}
	// Drain so the transport can reuse the connection across attempts.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //informer:ignore errdrop best-effort drain; a failed drain only costs connection reuse
	resp.Body.Close()                                    //informer:ignore errdrop close after drain; the delivery outcome is already decided by the status code
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	statusErr := fmt.Errorf("deliver: %s: status %d", w.URL, resp.StatusCode)
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		return retry.Permanent(statusErr)
	}
	return statusErr
}
