// Command calib is a development utility that checks the statistical
// calibration of the synthetic generators against the paper's published
// patterns across seeds: the Table 4 pairwise pattern per microblog seed,
// and the Section 4.1 / Table 3 outcomes for the default corpus. It exists
// to re-derive pinned seeds after generator changes; the user-facing
// driver is cmd/informer-experiments.
//
//	go run ./internal/tools/calib            # default: seeds 1..8 + corpus
//	go run ./internal/tools/calib -t4only
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/informing-observers/informer/internal/experiments"
)

// wantTable4 is the paper's 15-cell direction pattern in row order
// (P-B, P-N, N-B per measure).
var wantTable4 = map[string][3]string{
	"Interactions":                              {"> 0", "= 0", "> 0"},
	"Absolute mentions (replies received)":      {"> 0", "> 0", "= 0"},
	"Absolute retweets (feedbacks)":             {"= 0", "< 0", "> 0"},
	"Relative mentions (replies per comment)":   {"= 0", "= 0", "= 0"},
	"Relative retweets (feedbacks per comment)": {"= 0", "= 0", "= 0"},
}

func main() {
	var (
		t4only = flag.Bool("t4only", false, "only sweep Table 4 seeds")
		seeds  = flag.Int("seeds", 8, "number of microblog seeds to sweep")
	)
	flag.Parse()

	fmt.Println("Table 4 seed sweep (paper pattern = 15/15 cells):")
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		r, err := experiments.RunTable4(seed, 813)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calib:", err)
			os.Exit(1)
		}
		match := 0
		for _, row := range r.Rows {
			w := wantTable4[row.Measure]
			if row.DirPB == w[0] {
				match++
			}
			if row.DirPN == w[1] {
				match++
			}
			if row.DirNB == w[2] {
				match++
			}
		}
		marker := ""
		if match == 15 {
			marker = "  <-- full pattern"
		}
		fmt.Printf("  seed %2d: %2d/15 cells%s\n", seed, match, marker)
	}
	if *t4only {
		return
	}

	fmt.Println("\nSection 4.1 + Table 3 at the default corpus seed:")
	wb := experiments.NewWorkbench(experiments.Options{})
	r41, err := experiments.RunExp41(wb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calib:", err)
		os.Exit(1)
	}
	fmt.Println(r41.Render())
	t3, err := experiments.RunTable3(wb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calib:", err)
		os.Exit(1)
	}
	fmt.Println(t3.Render())
}
