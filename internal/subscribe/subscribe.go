// Package subscribe is the standing-query subscription registry behind
// the watch and stream serving paths (DESIGN.md section 9): observers are
// *standing* consumers — they keep watching one quality-filtered window of
// the corpus as it advances — so the filter should be evaluated once at a
// shared placement point and its output propagated, not re-evaluated per
// consumer (the Filter-Placement argument; Lerman's social information
// filtering frames consumption the same way, as subscription to filtered
// update streams).
//
// A Registry multiplexes any number of subscribers onto a set of *groups*,
// one per distinct standing query (keyed by Query.CanonicalKey over the
// standing form — pagination stripped, projection normalized, so every
// spelling of one filter lands in one group). When a new assessment round
// is published, each group's query is evaluated exactly once — against the
// snapshot's own per-round query cache, so even multiple registries share
// the underlying ranking work — its DiffWindows delta is computed once,
// and the same Event value is fanned to every subscriber in the group over
// buffered channels. Per-tick evaluation cost is therefore a function of
// the number of *distinct* standing queries, never of the number of
// subscribers; BenchmarkWatchFanout pins this.
//
// Slow consumers get 410-equivalent semantics: a subscriber that cannot
// drain its buffer before the next fan-out is dropped — its channel is
// closed and Err reports ErrSlowConsumer — and must re-sync from a full
// read of the current round, exactly the recovery an HTTP client performs
// after 410 Gone.
//
// A registry is fed either explicitly (the informer facade calls Publish
// from Advance, after the snapshot swap) or by its own pump: given a wake
// source (a ChangeNotifier-style rotating channel) or a poll interval, one
// goroutine — not one per waiter — observes the provider and publishes new
// rounds to every group.
//
//informer:bounded
package subscribe

import (
	"errors"
	"sync"
	"time"

	"github.com/informing-observers/informer/internal/quality"
)

// Snapshot is one immutable assessment round as the registry consumes it:
// a monotonic version plus standing-query evaluation. The informer
// facade's snapshot adapter and apiserve's Snapshot both satisfy it.
type Snapshot interface {
	Version() int64
	QuerySources(q quality.Query) (*quality.QueryResult, error)
}

// Event is one tick's delta for a standing query, shared by every
// subscriber of the group: the window's rank movement between the Since
// and Snapshot rounds. Changes is computed once per group per tick and
// fanned out by reference — treat it as read-only; subscriptions carrying
// a delta Filter receive the filtered view (also computed once per
// distinct filter per group per tick and shared). An Event with no
// Changes still advances the since-token (the window did not move that
// tick, or the filter passed nothing). Window is the standing query's
// full ranked window at the Snapshot round, shared by reference — the
// push-delivery engine uses it to coalesce skipped deltas into one
// spanning delta and to cut fresh resync baselines. Snap is the round the
// delta ends at, so transports can retain it for later catch-up diffs.
type Event struct {
	Since    int64
	Snapshot int64
	Changes  []quality.WindowChange
	Window   []*quality.Assessment
	Snap     Snapshot
}

// Filter is a per-subscription delta filter, applied on the shared
// per-group changes at fan-out: subscribers not interested in a class of
// movement receive events with the uninteresting rows already removed —
// zero bytes of change payload when nothing qualifies — while the group
// still evaluates its query exactly once per tick. The zero Filter passes
// everything. Conditions compose conjunctively; rows that entered or left
// the window always satisfy the magnitude conditions (their jump is the
// whole window).
type Filter struct {
	// EnteredOnly keeps only rows that entered the window.
	EnteredOnly bool
	// MinRankJump keeps rows whose rank moved at least this many
	// positions (entered/left rows always qualify). Zero disables.
	MinRankJump int
	// MinScoreDelta keeps rows whose overall score moved at least this
	// much between the two rounds (entered/left rows always qualify).
	// Zero disables.
	MinScoreDelta float64
}

// Zero reports whether the filter passes every change.
func (f Filter) Zero() bool { return f == Filter{} }

// Apply filters one tick's changes. old is the group's window at the
// delta's Since round — the score baseline MinScoreDelta compares
// against. The shared input slice is never mutated; a filter that passes
// everything returns it as-is.
func (f Filter) Apply(changes []quality.WindowChange, old []*quality.Assessment) []quality.WindowChange {
	if f.Zero() || len(changes) == 0 {
		return changes
	}
	var oldScore map[int]float64
	if f.MinScoreDelta > 0 {
		oldScore = make(map[int]float64, len(old))
		for _, a := range old {
			oldScore[a.ID] = a.Score
		}
	}
	kept := changes[:0:0] // fresh backing array: the input is shared
	for _, c := range changes {
		entered := c.OldRank == 0
		left := c.NewRank == 0
		if f.EnteredOnly && !entered {
			continue
		}
		if f.MinRankJump > 0 && !entered && !left {
			jump := c.NewRank - c.OldRank
			if jump < 0 {
				jump = -jump
			}
			if jump < f.MinRankJump {
				continue
			}
		}
		if f.MinScoreDelta > 0 && !entered && !left {
			d := c.Score - oldScore[c.ID]
			if d < 0 {
				d = -d
			}
			if d < f.MinScoreDelta {
				continue
			}
		}
		kept = append(kept, c)
	}
	return kept
}

// Errors a Subscription's Err reports after its channel closes.
var (
	// ErrSlowConsumer means the subscriber overflowed its event buffer and
	// was dropped: its since-chain is broken and it must re-sync from a
	// full read of the current round (the in-process 410 Gone).
	ErrSlowConsumer = errors.New("subscribe: event buffer overflowed; re-sync from the current round")
	// ErrClosed means the registry itself was shut down.
	ErrClosed = errors.New("subscribe: registry closed")
)

// defaultBuffer is the per-subscription event channel capacity: enough for
// a consumer to fall a dozen ticks behind before resync semantics kick in.
const defaultBuffer = 16

// Options tunes a Registry.
type Options struct {
	// Wake, when set, gives the registry's pump an event-driven wake-up: a
	// function returning a channel that is closed when a round newer than
	// the current one is published (the ChangeNotifier contract). The pump
	// re-grabs the channel before every observation, so no publication can
	// be missed.
	Wake func() <-chan struct{}
	// PollInterval is the pump's fallback cadence for providers without a
	// wake source. One registry-wide poll replaces the historical
	// per-request poll loop. Ignored when Wake is set; zero disables the
	// pump entirely (the owner feeds the registry via Publish).
	PollInterval time.Duration
	// Buffer overrides the per-subscription channel capacity
	// (defaultBuffer when zero).
	Buffer int
}

// Stats is a registry's observability counters.
type Stats struct {
	// Ticks counts published rounds; Evaluations counts standing-query
	// evaluations (group baselines at subscribe plus one per group per
	// tick — independent of subscriber count); Overflows counts dropped
	// slow consumers.
	Ticks, Evaluations, Overflows int64
	// Groups and Subscribers size the registry right now.
	Groups, Subscribers int
}

// Registry multiplexes standing-query subscribers; see the package
// comment. The zero value is not usable — construct with New.
type Registry struct {
	source func() Snapshot
	opts   Options

	mu      sync.Mutex
	groups  map[string]*group
	last    Snapshot      // last published round (nil before the first)
	changed chan struct{} // lazily created; rotated on every publish
	closed  bool
	closeCh chan struct{}
	pumping bool

	ticks, evals, overflows int64
}

// group is one distinct standing query and its current window: the shared
// placement point every subscriber of the query fans out of.
type group struct {
	q       quality.Query // standing form (see StandingForm)
	key     string
	window  []*quality.Assessment
	version int64
	subs    map[*Subscription]struct{}
}

// Subscription is one consumer's handle on a standing query: the baseline
// window at attach time plus the stream of per-tick deltas.
type Subscription struct {
	reg    *Registry
	grp    *group
	ch     chan Event
	filter Filter
	since  int64
	window []*quality.Assessment

	// closed and err are guarded by reg.mu.
	closed bool
	err    error
}

// New builds a registry over a snapshot source. source must return the
// provider's current round and be safe for concurrent use; it is consulted
// at every Subscribe (so a subscription always attaches to the current
// round) and by the pump, if Options enables one.
func New(source func() Snapshot, opts Options) *Registry {
	return &Registry{
		source:  source,
		opts:    opts,
		groups:  map[string]*group{},
		closeCh: make(chan struct{}),
	}
}

// StandingForm normalizes a query to the form a subscription group is
// keyed and evaluated by: standing windows do not paginate (Offset and
// After are stripped — Subscribe rejects them anyway) and the projection
// is folded to ProjectScores, because a window delta only ever reads ID,
// Name and Score. Every spelling of one filter therefore lands in one
// group, whatever fields= its transport asked for.
func StandingForm(q quality.Query) quality.Query {
	q.Offset = 0
	q.After = nil
	q.Fields = quality.ProjectScores
	return q
}

// Subscribe attaches a subscriber to q's group, creating the group — and
// evaluating its baseline window against the current round — if q is the
// first subscription of this standing query. The returned subscription's
// Since/Window are the round and window the delta stream starts from.
// Queries carrying a pagination position (Offset, After) are rejected:
// bound standing windows with TopK or Limit.
func (r *Registry) Subscribe(q quality.Query) (*Subscription, error) {
	return r.SubscribeWith(q, Filter{})
}

// SubscribeWith is Subscribe with a per-subscription delta filter: the
// subscriber joins q's group — the filter is NOT part of the group key,
// so filtered and unfiltered subscribers of one standing query share one
// evaluation per tick — and receives each tick's changes with the
// filtered-out rows removed (computed once per distinct filter per group
// per tick). Empty filtered deltas still arrive, advancing the
// since-token.
func (r *Registry) SubscribeWith(q quality.Query, f Filter) (*Subscription, error) {
	if q.After != nil || q.Offset != 0 {
		return nil, errors.New("subscribe: standing windows do not paginate; bound them with TopK or Limit")
	}
	sq := StandingForm(q)
	key := sq.CanonicalKey()

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	// Sync to the provider's current round first, so the subscription's
	// baseline can never trail a round the caller has already observed.
	r.publishLocked(r.source())
	if r.last == nil {
		return nil, errors.New("subscribe: no snapshot has been published")
	}
	g, ok := r.groups[key]
	if !ok {
		res, err := r.last.QuerySources(sq)
		if err != nil {
			return nil, err
		}
		r.evals++
		g = &group{q: sq, key: key, window: res.Items, version: r.last.Version(), subs: map[*Subscription]struct{}{}}
		r.groups[key] = g
	}
	buf := r.opts.Buffer
	if buf <= 0 {
		buf = defaultBuffer
	}
	s := &Subscription{reg: r, grp: g, ch: make(chan Event, buf), filter: f, since: g.version, window: g.window}
	g.subs[s] = struct{}{}
	r.startPumpLocked()
	return s, nil
}

// Publish feeds one round to the registry: if snap is newer than the last
// published round, every group's standing query is evaluated once against
// it, the window delta is computed once, and the same event is fanned to
// all of the group's subscribers. Older or equal rounds are no-ops, so
// Publish is idempotent per version and safe to call from both an owner
// (the facade's Advance) and a pump.
func (r *Registry) Publish(snap Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.publishLocked(snap)
}

func (r *Registry) publishLocked(snap Snapshot) {
	if snap == nil || r.closed {
		return
	}
	if r.last != nil && snap.Version() <= r.last.Version() {
		return
	}
	first := r.last == nil
	r.last = snap
	// Rotate the change-notification channel: everyone who grabbed it
	// before this publication wakes now.
	if r.changed != nil {
		close(r.changed)
		r.changed = nil
	}
	if first {
		return // baseline round: groups cannot predate it
	}
	r.ticks++
	for _, g := range r.groups {
		if g.version >= snap.Version() {
			continue
		}
		res, err := snap.QuerySources(g.q)
		if err != nil {
			// Standing queries are validated at Subscribe; an evaluation
			// error here is transient. Keep the group's baseline so the
			// next successful round diffs across the gap — subscribers
			// lose no movement, their since-token just spans two ticks.
			continue
		}
		r.evals++
		changes := quality.DiffWindows(g.window, res.Items)
		// One filtered view per distinct filter per tick, shared by every
		// subscriber carrying that filter (Filter is comparable).
		var filtered map[Filter][]quality.WindowChange
		for s := range g.subs {
			ch := changes
			if !s.filter.Zero() {
				fc, ok := filtered[s.filter]
				if !ok {
					fc = s.filter.Apply(changes, g.window)
					if filtered == nil {
						filtered = map[Filter][]quality.WindowChange{}
					}
					filtered[s.filter] = fc
				}
				ch = fc
			}
			ev := Event{Since: g.version, Snapshot: snap.Version(), Changes: ch, Window: res.Items, Snap: snap}
			select {
			case s.ch <- ev:
			default:
				// Slow consumer: drop it with resync semantics rather
				// than block the tick or grow the buffer without bound.
				r.overflows++
				delete(g.subs, s)
				s.closed = true
				s.err = ErrSlowConsumer
				close(s.ch)
			}
		}
		if len(g.subs) == 0 {
			// Every subscriber was dropped: retire the group now — the
			// dropped subscriptions' Close() is a no-op, so nobody else
			// will.
			delete(r.groups, g.key)
			continue
		}
		g.window, g.version = res.Items, snap.Version()
	}
}

// Changed returns a channel that is closed when a round newer than the
// current one is published — the rotating change-notification the watch
// long-poll historically got from the corpus itself. Grab the channel,
// then read the provider; a publication between the two closes the grabbed
// channel, so none can be missed.
func (r *Registry) Changed() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.changed == nil {
		r.changed = make(chan struct{})
	}
	return r.changed
}

// Stats reports the registry's counters; see Stats.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	subs := 0
	for _, g := range r.groups {
		subs += len(g.subs)
	}
	return Stats{Ticks: r.ticks, Evaluations: r.evals, Overflows: r.overflows, Groups: len(r.groups), Subscribers: subs}
}

// Close shuts the registry down: the pump exits, every subscription's
// channel is closed with ErrClosed, and further Subscribes fail.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	close(r.closeCh)
	if r.changed != nil {
		close(r.changed)
		r.changed = nil
	}
	for _, g := range r.groups {
		for s := range g.subs {
			s.closed = true
			s.err = ErrClosed
			close(s.ch)
		}
	}
	r.groups = map[string]*group{}
}

// startPumpLocked launches the registry's single observation goroutine on
// first demand. The pump exists only for registries over providers the
// owner does not feed explicitly; with neither a wake source nor a poll
// interval it never starts.
func (r *Registry) startPumpLocked() {
	if r.pumping || r.closed || (r.opts.Wake == nil && r.opts.PollInterval <= 0) {
		return
	}
	r.pumping = true
	go r.pump()
}

// pump is the registry's one observation loop: grab the wake channel (so
// a publication between observing and blocking cannot be missed), publish
// the provider's current round, block until woken — by the wake source,
// the poll timer, or Close.
func (r *Registry) pump() {
	for {
		var wake <-chan struct{}
		if r.opts.Wake != nil {
			wake = r.opts.Wake()
		}
		r.Publish(r.source())
		if wake == nil {
			timer := time.NewTimer(r.opts.PollInterval)
			select {
			case <-timer.C:
			case <-r.closeCh:
				timer.Stop()
				return
			}
		} else {
			select {
			case <-wake:
			case <-r.closeCh:
				return
			}
		}
	}
}

// Events is the subscription's delta stream: one Event per published round
// since the subscription attached (empty Changes when the window held).
// The channel closes when the subscription is dropped — check Err to tell
// a clean Close (nil) from resync semantics (ErrSlowConsumer, ErrClosed).
func (s *Subscription) Events() <-chan Event { return s.ch }

// Since is the round the subscription attached at: the delta stream's
// starting since-token. The first event's Since equals it.
func (s *Subscription) Since() int64 { return s.since }

// Window is the standing query's ranked window at the attach round — the
// baseline the first event's delta applies to. Shared and read-only.
func (s *Subscription) Window() []*quality.Assessment { return s.window }

// Err reports why the event channel closed: nil after Close,
// ErrSlowConsumer after a buffer overflow, ErrClosed after registry
// shutdown. Undefined while the channel is open.
func (s *Subscription) Err() error {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	return s.err
}

// Close detaches the subscription and closes its channel. Groups with no
// remaining subscribers are retired, so idle standing queries cost nothing
// at the next tick.
func (s *Subscription) Close() {
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	delete(s.grp.subs, s)
	close(s.ch)
	if len(s.grp.subs) == 0 {
		delete(r.groups, s.grp.key)
	}
}
